// Package topoctl is a Go implementation of "Local Approximation Schemes
// for Topology Control" (Damian, Pandit, Pemmaraju; PODC 2006): distributed
// construction of (1+ε)-spanners with constant maximum degree and weight
// O(w(MST)) on d-dimensional α-quasi unit ball graphs, in a polylogarithmic
// number of synchronous communication rounds.
//
// The package exposes the full pipeline:
//
//	net, err := topoctl.RandomNetwork(topoctl.NetworkSpec{N: 500, Dim: 2, Alpha: 0.75, Seed: 1})
//	res, err := topoctl.Build(net.Points, net.Graph, topoctl.Options{Epsilon: 0.5, Alpha: 0.75})
//	// res.Spanner is a (1.5)-spanner with O(1) degree and O(MST) weight.
//
// Use BuildDistributed for the round-counting distributed execution, and
// Baseline for the classical comparison topologies (Yao, Gabriel, RNG, XTC,
// LMST, MST, SEQ-GREEDY).
package topoctl

import (
	"fmt"

	"topoctl/internal/baseline"
	"topoctl/internal/core"
	"topoctl/internal/dist"
	"topoctl/internal/fault"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/metrics"
	"topoctl/internal/routing"
	"topoctl/internal/sim"
	"topoctl/internal/ubg"
)

// Point is a point in d-dimensional Euclidean space.
type Point = geom.Point

// Graph is an undirected weighted graph over vertices 0..n-1.
type Graph = graph.Graph

// Edge is an undirected weighted edge.
type Edge = graph.Edge

// Options configures a spanner build.
type Options struct {
	// Epsilon is the stretch slack: the output is a (1+Epsilon)-spanner.
	// Must be positive. Smaller values produce better spanners at the cost
	// of more edges and more phases.
	Epsilon float64
	// Alpha is the α of the underlying α-UBG (defaults to 1, the UDG/UBG
	// case). The algorithm never adds edges, so an Alpha below the true
	// value is safe but weakens the covered-edge filter.
	Alpha float64
	// Dim is the Euclidean dimension of the embedding (defaults to the
	// dimension of the first point).
	Dim int
	// EnergyGamma, when >= 1, switches edge weights to the energy metric
	// c·|uv|^γ of §1.6.2 (EnergyCoeff defaults to 1). Zero means plain
	// Euclidean weights.
	EnergyGamma float64
	// EnergyCoeff is the c of the energy metric (ignored when EnergyGamma
	// is zero).
	EnergyCoeff float64
	// Seed drives randomized subroutines of the distributed build.
	Seed int64
}

func (o Options) normalize(points []Point) (core.Options, error) {
	if len(points) == 0 {
		return core.Options{}, fmt.Errorf("topoctl: empty point set")
	}
	alpha := o.Alpha
	if alpha == 0 {
		alpha = 1
	}
	dim := o.Dim
	if dim == 0 {
		dim = points[0].Dim()
	}
	p, err := core.NewParams(o.Epsilon, alpha, dim)
	if err != nil {
		return core.Options{}, err
	}
	m := core.EuclideanMetric
	if o.EnergyGamma != 0 {
		c := o.EnergyCoeff
		if c == 0 {
			c = 1
		}
		m = core.Metric{Coeff: c, Gamma: o.EnergyGamma}
		if err := m.Validate(); err != nil {
			return core.Options{}, err
		}
	}
	return core.Options{Params: p, Metric: m}, nil
}

// Result is a completed sequential build.
type Result struct {
	// Spanner is the constructed (1+ε)-spanner. Edge weights are in the
	// configured metric (Euclidean unless EnergyGamma was set).
	Spanner *Graph
	// Stretch is t = 1+ε, the guaranteed stretch bound.
	Stretch float64
	// Phases is the number of bins in the schedule.
	Phases int
	// EdgesAdded and EdgesRemoved count spanner mutations.
	EdgesAdded, EdgesRemoved int
}

// Build runs the sequential relaxed greedy algorithm (paper §2) on the
// α-UBG g whose vertices are embedded at points (edge weights of g must be
// Euclidean lengths, as produced by RandomNetwork / BuildUBG).
func Build(points []Point, g *Graph, opts Options) (*Result, error) {
	copts, err := opts.normalize(points)
	if err != nil {
		return nil, err
	}
	res, err := core.Build(points, g, copts)
	if err != nil {
		return nil, err
	}
	return &Result{
		Spanner:      res.Spanner,
		Stretch:      res.Params.T,
		Phases:       res.Stats.Phases,
		EdgesAdded:   res.Stats.Added,
		EdgesRemoved: res.Stats.RemovedRedundant,
	}, nil
}

// DistResult is a completed distributed build with communication costs.
type DistResult struct {
	Result
	// Rounds is the number of synchronous communication rounds consumed.
	Rounds int
	// Messages and Words count point-to-point messages and O(log n)-bit
	// payload words.
	Messages, Words int64
	// PerStep breaks communication down by protocol step.
	PerStep map[string]*sim.StepCost
}

// BuildDistributed runs the distributed algorithm (paper §3) on the
// synchronous message-passing simulator and reports exact round and message
// counts alongside the spanner.
func BuildDistributed(points []Point, g *Graph, opts Options) (*DistResult, error) {
	copts, err := opts.normalize(points)
	if err != nil {
		return nil, err
	}
	res, err := dist.Build(points, g, dist.Options{
		Params: copts.Params,
		Metric: copts.Metric,
		Seed:   opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return &DistResult{
		Result: Result{
			Spanner:      res.Spanner,
			Stretch:      res.Params.T,
			Phases:       res.Stats.Phases,
			EdgesAdded:   res.Stats.Added,
			EdgesRemoved: res.Stats.RemovedRedundant,
		},
		Rounds:   res.Rounds,
		Messages: res.Messages,
		Words:    res.Words,
		PerStep:  res.PerStep,
	}, nil
}

// BaselineKind selects a classical topology-control baseline.
type BaselineKind = baseline.Kind

// Baseline kinds re-exported for callers.
const (
	BaselineMST     = baseline.KindMST
	BaselineYao     = baseline.KindYao
	BaselineGabriel = baseline.KindGabriel
	BaselineRNG     = baseline.KindRNG
	BaselineXTC     = baseline.KindXTC
	BaselineLMST    = baseline.KindLMST
	BaselineGreedy  = baseline.KindGreedy
)

// Baseline constructs the named classical topology over the α-UBG g. The
// stretch parameter t is used only by BaselineGreedy.
func Baseline(kind BaselineKind, points []Point, g *Graph, t float64) (*Graph, error) {
	return baseline.Build(kind, points, g, baseline.Options{T: t})
}

// FaultTolerantSpanner builds a k-fault-tolerant t-spanner (§1.6.1).
// vertexMode selects vertex faults (true) or edge faults (false).
func FaultTolerantSpanner(g *Graph, t float64, k int, vertexMode bool) (*Graph, error) {
	mode := fault.EdgeFaults
	if vertexMode {
		mode = fault.VertexFaults
	}
	return fault.Spanner(g, t, k, mode)
}

// Quality summarizes a topology against its base graph.
type Quality struct {
	Edges       int
	MaxDegree   int
	AvgDegree   float64
	Stretch     float64
	WeightRatio float64
	PowerRatio  float64
}

// Evaluate measures spanner quality: exact stretch over g's edges, degree
// statistics, total weight relative to MST(g), and power cost relative to
// the MST's power cost.
func Evaluate(g, spanner *Graph) Quality {
	r := metrics.Evaluate("", g, spanner)
	return Quality{
		Edges:       r.Edges,
		MaxDegree:   r.MaxDegree,
		AvgDegree:   r.AvgDegree,
		Stretch:     r.Stretch,
		WeightRatio: r.WeightRatio,
		PowerRatio:  r.PowerRatio,
	}
}

// RoutingScheme selects a packet-forwarding strategy for NewRouter.
type RoutingScheme = routing.Scheme

// Routing schemes re-exported for callers.
const (
	// RouteShortestPath routes along exact shortest paths.
	RouteShortestPath = routing.SchemeShortestPath
	// RouteGreedy is memoryless greedy geographic forwarding.
	RouteGreedy = routing.SchemeGreedy
	// RouteCompass is compass (angle-minimizing) routing.
	RouteCompass = routing.SchemeCompass
)

// Router routes packets over a fixed topology; see internal/routing for
// the scheme semantics.
type Router = routing.Router

// NewRouter builds a router over topology g embedded at points — typically
// a spanner produced by Build, which guarantees shortest-path routing costs
// within t of the full network.
func NewRouter(g *Graph, points []Point) (*Router, error) {
	return routing.NewRouter(g, points)
}

// NetworkSpec describes a synthetic α-UBG instance.
type NetworkSpec struct {
	// N is the node count.
	N int
	// Dim is the Euclidean dimension (default 2).
	Dim int
	// Alpha is the guaranteed-connectivity radius in (0, 1] (default 1).
	Alpha float64
	// Seed makes generation deterministic.
	Seed int64
	// Cloud selects the deployment pattern (default uniform).
	Cloud geom.Cloud
	// GreyZone selects how pairs in (α, 1] connect (default: all connected).
	GreyZone ubg.Model
	// GreyP is the Bernoulli probability for ubg.ModelBernoulli.
	GreyP float64
	// Deg targets this expected base degree: the bounding-box side is
	// derived from it (ubg.DensitySide), which is how a million-vertex
	// instance keeps its edge count — and memory — linear in N. Zero keeps
	// the generator default (≈ 8).
	Deg float64
}

// Network is a generated instance: a point embedding and the α-UBG over it.
type Network struct {
	Points []Point
	Graph  *Graph
}

// RandomNetwork generates a connected synthetic α-UBG instance.
func RandomNetwork(spec NetworkSpec) (*Network, error) {
	if spec.Dim == 0 {
		spec.Dim = 2
	}
	if spec.Alpha == 0 {
		spec.Alpha = 1
	}
	if spec.Cloud == 0 {
		spec.Cloud = geom.CloudUniform
	}
	if spec.GreyZone == 0 {
		spec.GreyZone = ubg.ModelAll
	}
	var side float64
	if spec.Deg > 0 {
		side = ubg.DensitySide(spec.N, spec.Dim, spec.Alpha, spec.Deg)
	}
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: spec.Cloud, N: spec.N, Dim: spec.Dim, Seed: spec.Seed, Side: side},
		ubg.Config{Alpha: spec.Alpha, Model: spec.GreyZone, P: spec.GreyP, Seed: spec.Seed},
	)
	if err != nil {
		return nil, err
	}
	return &Network{Points: inst.Points, Graph: inst.G}, nil
}

// BuildUBG constructs the α-UBG over caller-provided points with all
// grey-zone pairs connected. Use internal generation knobs via
// RandomNetwork for other grey-zone models.
func BuildUBG(points []Point, alpha float64) (*Graph, error) {
	return ubg.Build(points, ubg.Config{Alpha: alpha, Model: ubg.ModelAll})
}
