package topoctl

import (
	"math"
	"testing"
)

// TestPublicAPIQuickstart is the README quickstart, as a test.
func TestPublicAPIQuickstart(t *testing.T) {
	net, err := RandomNetwork(NetworkSpec{N: 100, Dim: 2, Alpha: 0.75, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(net.Points, net.Graph, Options{Epsilon: 0.5, Alpha: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	q := Evaluate(net.Graph, res.Spanner)
	if q.Stretch > res.Stretch+1e-9 {
		t.Errorf("stretch %v exceeds guarantee %v", q.Stretch, res.Stretch)
	}
	if q.Edges >= net.Graph.M() {
		t.Errorf("no sparsification: %d vs %d", q.Edges, net.Graph.M())
	}
}

func TestPublicAPIDistributed(t *testing.T) {
	net, err := RandomNetwork(NetworkSpec{N: 60, Dim: 2, Alpha: 0.75, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := BuildDistributed(net.Points, net.Graph, Options{Epsilon: 0.5, Alpha: 0.75, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rounds <= 0 || res.Messages <= 0 || len(res.PerStep) == 0 {
		t.Errorf("communication accounting missing: %+v", res)
	}
	q := Evaluate(net.Graph, res.Spanner)
	if q.Stretch > res.Stretch+1e-9 {
		t.Errorf("stretch %v exceeds guarantee %v", q.Stretch, res.Stretch)
	}
}

func TestPublicAPIBaselines(t *testing.T) {
	net, err := RandomNetwork(NetworkSpec{N: 80, Dim: 2, Alpha: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []BaselineKind{BaselineMST, BaselineYao, BaselineGabriel, BaselineRNG, BaselineXTC, BaselineLMST, BaselineGreedy} {
		g, err := Baseline(kind, net.Points, net.Graph, 1.5)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !g.Connected() {
			t.Errorf("%v disconnected", kind)
		}
	}
}

func TestPublicAPIEnergyMetric(t *testing.T) {
	net, err := RandomNetwork(NetworkSpec{N: 60, Dim: 2, Alpha: 0.75, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(net.Points, net.Graph, Options{Epsilon: 0.5, Alpha: 0.75, EnergyGamma: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Spanner edge weights must be squared distances.
	for _, e := range res.Spanner.Edges() {
		d, ok := net.Graph.EdgeWeight(e.U, e.V)
		if !ok {
			t.Fatal("spanner edge not in input")
		}
		if math.Abs(e.W-d*d) > 1e-12 {
			t.Fatalf("edge weight %v != %v", e.W, d*d)
		}
	}
}

func TestPublicAPIFaultTolerant(t *testing.T) {
	net, err := RandomNetwork(NetworkSpec{N: 50, Dim: 2, Alpha: 0.9, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := FaultTolerantSpanner(net.Graph, 1.5, 1, false)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := FaultTolerantSpanner(net.Graph, 1.5, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if ft.M() <= plain.M() {
		t.Errorf("fault tolerance did not add edges: %d vs %d", ft.M(), plain.M())
	}
}

func TestPublicAPIValidation(t *testing.T) {
	net, _ := RandomNetwork(NetworkSpec{N: 20, Dim: 2, Alpha: 0.75, Seed: 7})
	if _, err := Build(nil, net.Graph, Options{Epsilon: 0.5}); err == nil {
		t.Error("empty points accepted")
	}
	if _, err := Build(net.Points, net.Graph, Options{Epsilon: 0}); err == nil {
		t.Error("zero epsilon accepted")
	}
	if _, err := Build(net.Points, net.Graph, Options{Epsilon: 0.5, EnergyGamma: 0.5}); err == nil {
		t.Error("gamma < 1 accepted")
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	net, err := RandomNetwork(NetworkSpec{N: 40, Seed: 8}) // all defaults
	if err != nil {
		t.Fatal(err)
	}
	if net.Points[0].Dim() != 2 {
		t.Errorf("default dim = %d", net.Points[0].Dim())
	}
	res, err := Build(net.Points, net.Graph, Options{Epsilon: 1}) // alpha defaults to 1
	if err != nil {
		t.Fatal(err)
	}
	if res.Stretch != 2 {
		t.Errorf("stretch = %v, want 2", res.Stretch)
	}
}

func TestBuildUBGFromPoints(t *testing.T) {
	pts := []Point{{0, 0}, {0.3, 0}, {0.9, 0}, {5, 5}}
	g, err := BuildUBG(pts, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) {
		t.Error("close pair missing")
	}
	if !g.HasEdge(1, 2) { // 0.6 in grey zone, ModelAll connects
		t.Error("grey-zone pair missing under ModelAll")
	}
	if g.HasEdge(0, 2) == false && g.HasEdge(2, 3) {
		t.Error("far pair connected")
	}
	if g.Degree(3) != 0 {
		t.Error("distant vertex should be isolated")
	}
}
