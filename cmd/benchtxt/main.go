// Command benchtxt converts `go test -json` benchmark output — the framing
// `make bench-json` emits and CI archives — back into the plain text
// benchmark format that benchstat consumes. It reads the JSON event stream
// on stdin and writes the benchmark result lines (plus the goos/goarch/
// pkg/cpu header benchstat uses to group configurations) to stdout,
// dropping everything else: test chatter, PASS/ok trailers, and any
// non-JSON noise interleaved by the harness.
//
// test2json splits a single benchmark result line across several output
// events (the name fragment ends in a tab, the measurements follow in the
// next event), so the filter reassembles each package's output stream
// before splitting it into lines.
//
// CI uses it to diff the committed BENCH_baseline.json against the current
// run:
//
//	go run ./cmd/benchtxt < BENCH_baseline.json > old.txt
//	go run ./cmd/benchtxt < bench.json > new.txt
//	benchstat old.txt new.txt
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// event is the subset of the test2json event schema benchtxt cares about.
type event struct {
	Action  string
	Package string
	Output  string
}

// keepPrefixes selects the reassembled lines that belong in a benchstat
// input file. Result lines start with "Benchmark"; the four header lines
// scope results to a machine and package. (Benchmark *announcement* lines
// — a bare name with no measurements — also match, but benchstat ignores
// lines that do not parse as results, so they are harmless.)
var keepPrefixes = []string{"Benchmark", "goos:", "goarch:", "pkg:", "cpu:"}

// run filters the JSON event stream from r into benchmark text on w.
func run(r io.Reader, w io.Writer) error {
	in := bufio.NewScanner(r)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	streams := map[string]*strings.Builder{}
	var order []string
	for in.Scan() {
		var ev event
		if err := json.Unmarshal(in.Bytes(), &ev); err != nil {
			continue // tolerate non-JSON lines (build output, warnings)
		}
		if ev.Action != "output" {
			continue
		}
		b := streams[ev.Package]
		if b == nil {
			b = &strings.Builder{}
			streams[ev.Package] = b
			order = append(order, ev.Package)
		}
		b.WriteString(ev.Output)
	}
	if err := in.Err(); err != nil {
		return err
	}
	out := bufio.NewWriter(w)
	for _, pkg := range order {
		for _, line := range strings.Split(streams[pkg].String(), "\n") {
			for _, p := range keepPrefixes {
				if strings.HasPrefix(line, p) {
					fmt.Fprintln(out, line)
					break
				}
			}
		}
	}
	return out.Flush()
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtxt:", err)
		os.Exit(1)
	}
}
