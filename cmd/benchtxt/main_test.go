package main

import (
	"strings"
	"testing"
)

func TestRunReassemblesAndFilters(t *testing.T) {
	// A benchmark result line split across events, the way test2json frames
	// it (name fragment ends in a tab, measurements follow separately),
	// interleaved with a second package.
	in := strings.Join([]string{
		`{"Action":"start","Package":"topoctl"}`,
		`{"Action":"output","Package":"topoctl","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"goarch: amd64\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"pkg: topoctl\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"cpu: Intel(R) Xeon(R)\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"BenchmarkSeqGreedy/n=128\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"BenchmarkSeqGreedy/n=128 \t"}`,
		`{"Action":"output","Package":"topoctl/internal/service","Output":"pkg: topoctl/internal/service\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"      10\t    472631 ns/op\t   48421 B/op\t     373 allocs/op\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"PASS\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"ok  \ttopoctl\t0.405s\n"}`,
		`not json at all`,
		`{"Action":"pass","Package":"topoctl"}`,
	}, "\n")
	var out strings.Builder
	if err := run(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	want := "goos: linux\ngoarch: amd64\npkg: topoctl\ncpu: Intel(R) Xeon(R)\nBenchmarkSeqGreedy/n=128\nBenchmarkSeqGreedy/n=128 \t      10\t    472631 ns/op\t   48421 B/op\t     373 allocs/op\npkg: topoctl/internal/service\n"
	if got != want {
		t.Fatalf("filtered output:\n%q\nwant:\n%q", got, want)
	}
	if strings.Contains(got, "PASS") || strings.Contains(got, "ok  ") {
		t.Fatal("trailer lines leaked through")
	}
}
