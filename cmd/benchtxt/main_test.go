package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite testdata golden files from current output")

func TestRunReassemblesAndFilters(t *testing.T) {
	// A benchmark result line split across events, the way test2json frames
	// it (name fragment ends in a tab, measurements follow separately),
	// interleaved with a second package.
	in := strings.Join([]string{
		`{"Action":"start","Package":"topoctl"}`,
		`{"Action":"output","Package":"topoctl","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"goarch: amd64\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"pkg: topoctl\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"cpu: Intel(R) Xeon(R)\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"BenchmarkSeqGreedy/n=128\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"BenchmarkSeqGreedy/n=128 \t"}`,
		`{"Action":"output","Package":"topoctl/internal/service","Output":"pkg: topoctl/internal/service\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"      10\t    472631 ns/op\t   48421 B/op\t     373 allocs/op\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"PASS\n"}`,
		`{"Action":"output","Package":"topoctl","Output":"ok  \ttopoctl\t0.405s\n"}`,
		`not json at all`,
		`{"Action":"pass","Package":"topoctl"}`,
	}, "\n")
	var out strings.Builder
	if err := run(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	want := "goos: linux\ngoarch: amd64\npkg: topoctl\ncpu: Intel(R) Xeon(R)\nBenchmarkSeqGreedy/n=128\nBenchmarkSeqGreedy/n=128 \t      10\t    472631 ns/op\t   48421 B/op\t     373 allocs/op\npkg: topoctl/internal/service\n"
	if got != want {
		t.Fatalf("filtered output:\n%q\nwant:\n%q", got, want)
	}
	if strings.Contains(got, "PASS") || strings.Contains(got, "ok  ") {
		t.Fatal("trailer lines leaked through")
	}
}

// TestGolden pins the full conversion of a realistic `go test -json`
// stream — split result lines, two interleaved packages, non-JSON noise,
// --- BENCH log blocks — against a committed golden file. Regenerate with
// `go test ./cmd/benchtxt -update` after an intentional format change.
func TestGolden(t *testing.T) {
	in, err := os.Open(filepath.Join("testdata", "sample.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	var out strings.Builder
	if err := run(in, &out); err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "golden.txt")
	if *update {
		if err := os.WriteFile(goldenPath, []byte(out.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	golden, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(golden) {
		t.Fatalf("output drifted from %s (rerun with -update if intended):\ngot:\n%s\nwant:\n%s",
			goldenPath, out.String(), golden)
	}
}

// TestCommittedBaselineConverts feeds the repo's own BENCH_baseline.json —
// the exact input of CI's bench-delta step — through run and asserts the
// conversion yields something benchstat can chew on: machine/package
// headers plus a result line for every benchmark family the `bench`
// Makefile target tracks. A baseline refresh that drops a family, or a
// filter change that eats result lines, fails here instead of silently
// producing an empty benchstat table in CI.
func TestCommittedBaselineConverts(t *testing.T) {
	in, err := os.Open(filepath.Join("..", "..", "BENCH_baseline.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer in.Close()
	var out strings.Builder
	if err := run(in, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"goos: ", "goarch: ", "pkg: topoctl\n", "cpu: "} {
		if !strings.Contains(got, want) {
			t.Errorf("converted baseline lacks header %q", want)
		}
	}
	families := []string{
		"BenchmarkSeqGreedy", "BenchmarkStretchVerification", "BenchmarkCoreBuild",
		"BenchmarkUBGBuild", "BenchmarkChurn", "BenchmarkService",
		"BenchmarkRouteUncached", "BenchmarkRouteLabel", "BenchmarkLabelBuild",
	}
	for _, fam := range families {
		found := false
		for _, line := range strings.Split(got, "\n") {
			if strings.HasPrefix(line, fam) && strings.Contains(line, "ns/op") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %s result line survived conversion", fam)
		}
	}
	for _, line := range strings.Split(strings.TrimSuffix(got, "\n"), "\n") {
		ok := false
		for _, p := range keepPrefixes {
			if strings.HasPrefix(line, p) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("line escaped the prefix filter: %q", line)
		}
	}
}
