// Command experiments regenerates every table in EXPERIMENTS.md: the full
// theorem-validation and figure-validation suite of DESIGN.md §4.
//
// Usage:
//
//	experiments [-quick] [-only T1-stretch,...] [-seed N]
//
// Output is plain text, one table per experiment, identical in format to
// the blocks recorded in EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"topoctl/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced instance sizes")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all); see -list")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	seed := flag.Int64("seed", 0, "seed offset for all instances (0 = the recorded tables)")
	flag.Parse()

	if *list {
		for _, n := range exp.Names() {
			fmt.Println(n)
		}
		return
	}

	cfg := exp.Config{Quick: *quick, Seed: *seed}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	tables, err := exp.All(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		if len(want) > 0 && !want[t.ID] {
			continue
		}
		fmt.Println(t.Render())
	}
}
