// Command experiments regenerates every table in EXPERIMENTS.md: the full
// theorem-validation and figure-validation suite of DESIGN.md §4. It is
// also the churn scenario runner for the incremental maintenance engine
// (internal/dynamic).
//
// Usage:
//
//	experiments [-quick] [-only T1-stretch,...] [-seed N]
//	experiments -churn [-churn-n N] [-churn-ops N] [-churn-arrival R]
//	            [-churn-departure R] [-churn-mobility R] [-churn-batch K]
//	            [-churn-epsilon E] [-churn-check K] [-seed N]
//
// Output is plain text, one table per experiment, identical in format to
// the blocks recorded in EXPERIMENTS.md; -churn prints the scenario result
// table instead. Identical flags (including -seed) reproduce identical
// churn streams and topologies.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"topoctl/internal/dynamic"
	"topoctl/internal/exp"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced instance sizes")
	only := flag.String("only", "", "comma-separated experiment IDs (default: all); see -list")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	seed := flag.Int64("seed", 0, "seed offset for all instances (0 = the recorded tables)")
	churn := flag.Bool("churn", false, "run the churn scenario instead of the experiment tables")
	churnN := flag.Int("churn-n", 200, "churn: initial node count")
	churnOps := flag.Int("churn-ops", 500, "churn: number of operations")
	churnArrival := flag.Float64("churn-arrival", 1, "churn: relative join rate")
	churnDeparture := flag.Float64("churn-departure", 1, "churn: relative leave rate")
	churnMobility := flag.Float64("churn-mobility", 2, "churn: relative move rate")
	churnBatch := flag.Int("churn-batch", 1, "churn: operations coalesced per repair pass")
	churnEps := flag.Float64("churn-epsilon", 0.5, "churn: stretch slack (target stretch 1+ε)")
	churnCheck := flag.Int("churn-check", 100, "churn: verify the stretch invariant every K ops (0 = end only)")
	flag.Parse()

	if *list {
		for _, n := range exp.Names() {
			fmt.Println(n)
		}
		return
	}

	if *churn {
		res, err := dynamic.RunScenario(dynamic.ScenarioConfig{
			N:             *churnN,
			Ops:           *churnOps,
			T:             1 + *churnEps,
			ArrivalRate:   *churnArrival,
			DepartureRate: *churnDeparture,
			MobilityRate:  *churnMobility,
			Batch:         *churnBatch,
			Seed:          *seed,
			CheckEvery:    *churnCheck,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(res)
		if res.Violations > 0 {
			fmt.Fprintf(os.Stderr, "experiments: stretch invariant violated\n")
			os.Exit(1)
		}
		return
	}

	cfg := exp.Config{Quick: *quick, Seed: *seed}
	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	tables, err := exp.All(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		if len(want) > 0 && !want[t.ID] {
			continue
		}
		fmt.Println(t.Render())
	}
}
