package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExperimentsCLI compiles the harness and checks -list plus one quick
// table run.
func TestExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "T1-stretch") || !strings.Contains(string(out), "F5-doubling") {
		t.Fatalf("-list incomplete:\n%s", out)
	}

	out, err = exec.Command(bin, "-quick", "-only", "T2-degree").CombinedOutput()
	if err != nil {
		t.Fatalf("quick run: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "T2-degree") || !strings.Contains(s, "worst spanner maxdeg") {
		t.Fatalf("table missing:\n%s", s)
	}
	if strings.Contains(s, "T1-stretch") {
		t.Fatal("-only filter leaked other tables")
	}
}
