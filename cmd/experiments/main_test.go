package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestExperimentsCLI compiles the harness and checks -list plus one quick
// table run.
func TestExperimentsCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "experiments")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("-list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "T1-stretch") || !strings.Contains(string(out), "F5-doubling") {
		t.Fatalf("-list incomplete:\n%s", out)
	}

	out, err = exec.Command(bin, "-quick", "-only", "T2-degree").CombinedOutput()
	if err != nil {
		t.Fatalf("quick run: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "T2-degree") || !strings.Contains(s, "worst spanner maxdeg") {
		t.Fatalf("table missing:\n%s", s)
	}
	if strings.Contains(s, "T1-stretch") {
		t.Fatal("-only filter leaked other tables")
	}

	// Churn scenario runner: reproducible under a fixed seed, zero
	// invariant violations.
	churnArgs := []string{"-churn", "-churn-n", "40", "-churn-ops", "30", "-churn-check", "10", "-seed", "3"}
	out, err = exec.Command(bin, churnArgs...).CombinedOutput()
	if err != nil {
		t.Fatalf("churn run: %v\n%s", err, out)
	}
	s = string(out)
	if !strings.Contains(s, "churn scenario") || !strings.Contains(s, "0 violations") {
		t.Fatalf("churn output missing expected lines:\n%s", s)
	}
	out2, err := exec.Command(bin, churnArgs...).CombinedOutput()
	if err != nil {
		t.Fatalf("churn rerun: %v\n%s", err, out2)
	}
	stripTimes := func(s string) string {
		// The repair-timing line is wall-clock and may differ between runs.
		var kept []string
		for _, line := range strings.Split(s, "\n") {
			if !strings.Contains(line, "repair") {
				kept = append(kept, line)
			}
		}
		return strings.Join(kept, "\n")
	}
	if stripTimes(string(out)) != stripTimes(string(out2)) {
		t.Fatalf("churn runner not reproducible under fixed seed:\n%s\nvs\n%s", out, out2)
	}
}
