package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildBinary compiles the CLI once per test binary into a temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "topoctl")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("topoctl %s: %v\n%s", strings.Join(args, " "), err, out)
	}
	return string(out)
}

// TestCLIEndToEnd drives the full pipeline: generate to file, build from
// the file (sequential and distributed), sweep, and visualize.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	bin := buildBinary(t)
	dir := t.TempDir()
	ubgFile := filepath.Join(dir, "net.ubg")
	dotFile := filepath.Join(dir, "net.dot")

	run(t, bin, "gen", "-n", "60", "-alpha", "0.75", "-seed", "3", "-o", ubgFile)
	data, err := os.ReadFile(ubgFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(data), "ubg n=60 d=2 alpha=0.75") {
		t.Fatalf("unexpected gen header: %.60s", data)
	}

	out := run(t, bin, "build", "-in", ubgFile, "-eps", "0.5", "-algo", "relaxed")
	if !strings.Contains(out, "stretch=") || !strings.Contains(out, "relaxed greedy") {
		t.Fatalf("build output missing fields:\n%s", out)
	}

	// The same pipeline through a gzip-compressed instance file.
	gzFile := filepath.Join(dir, "net.topo.gz")
	run(t, bin, "gen", "-n", "60", "-alpha", "0.75", "-seed", "3", "-o", gzFile)
	gz, err := os.ReadFile(gzFile)
	if err != nil {
		t.Fatal(err)
	}
	if len(gz) < 2 || gz[0] != 0x1f || gz[1] != 0x8b {
		t.Fatalf("gen -o %s did not gzip (leading bytes % x)", gzFile, gz[:2])
	}
	gzOut := run(t, bin, "build", "-in", gzFile, "-eps", "0.5", "-algo", "relaxed")
	if gzOut != out {
		t.Fatalf("compressed instance built differently:\n%s\nvs\n%s", gzOut, out)
	}

	out = run(t, bin, "build", "-in", ubgFile, "-eps", "0.5", "-algo", "dist", "-v")
	if !strings.Contains(out, "rounds=") || !strings.Contains(out, "phase/gather") {
		t.Fatalf("dist build output missing fields:\n%s", out)
	}

	out = run(t, bin, "build", "-in", ubgFile, "-algo", "yao")
	if !strings.Contains(out, "output:") {
		t.Fatalf("baseline build output missing fields:\n%s", out)
	}

	out = run(t, bin, "sweep", "-n", "50", "-alpha", "1", "-seed", "2")
	for _, want := range []string{"relaxed-greedy", "mst", "yao", "gabriel", "rng", "xtc", "lmst", "seq-greedy", "input"} {
		if !strings.Contains(out, want) {
			t.Fatalf("sweep missing %q:\n%s", want, out)
		}
	}

	run(t, bin, "viz", "-in", ubgFile, "-eps", "0.5", "-o", dotFile)
	dot, err := os.ReadFile(dotFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(dot), "graph topoctl {") {
		t.Fatalf("viz output not DOT: %.40s", dot)
	}
}

// TestCLIErrors: bad usage must exit non-zero.
func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	bin := buildBinary(t)
	for _, args := range [][]string{
		{"bogus"},
		{"build", "-in", "/nonexistent.ubg"},
		{"build", "-n", "30", "-algo", "no-such-algo"},
	} {
		if err := exec.Command(bin, args...).Run(); err == nil {
			t.Errorf("topoctl %v should fail", args)
		}
	}
}
