// Command topoctl builds and inspects topology-control structures on
// synthetic α-UBG instances from the command line.
//
// Subcommands:
//
//	gen    generate an α-UBG instance and print/save it
//	build  generate (or read) an instance, build a topology, report quality
//	sweep  build every topology on one instance and print the comparison
//	viz    export an instance (and optionally its spanner) as Graphviz DOT
//
// Examples:
//
//	topoctl gen -n 200 -alpha 0.75 -seed 1 -o net.ubg
//	topoctl build -in net.ubg -eps 0.5 -algo relaxed
//	topoctl build -n 200 -eps 0.5 -algo dist -v
//	topoctl sweep -n 300 -alpha 1
//	topoctl viz -n 150 -eps 0.5 -o net.dot     # render: neato -n -Tsvg net.dot
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"topoctl"
	"topoctl/internal/baseline"
	"topoctl/internal/metrics"
	"topoctl/internal/netio"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "gen":
		err = cmdGen(os.Args[2:])
	case "build":
		err = cmdBuild(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "viz":
		err = cmdViz(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "topoctl: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "topoctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: topoctl <gen|build|sweep|viz> [flags]
  gen    -n N -d D -alpha A -seed S [-deg DEG] [-o FILE]  generate an instance (netio text format)
  build  [-in FILE | -n N] -eps E -algo KIND [-v]   build one topology and report quality
         KIND: relaxed | dist | mst | yao | gabriel | rng | xtc | lmst | seq-greedy
  sweep  -n N -alpha A [-eps E]                     compare every topology on one instance
  viz    [-in FILE | -n N] [-eps E] -o FILE         export Graphviz DOT (spanner highlighted)`)
}

type genFlags struct {
	n, d  int
	alpha float64
	deg   float64
	seed  int64
	in    string
}

func addGenFlags(fs *flag.FlagSet) *genFlags {
	gf := &genFlags{}
	fs.IntVar(&gf.n, "n", 200, "node count")
	fs.IntVar(&gf.d, "d", 2, "dimension")
	fs.Float64Var(&gf.alpha, "alpha", 0.75, "alpha in (0, 1]")
	fs.Float64Var(&gf.deg, "deg", 0, "target expected base degree; keeps edge count linear at large -n (0 = default 8)")
	fs.Int64Var(&gf.seed, "seed", 1, "instance seed")
	fs.StringVar(&gf.in, "in", "", "read the instance from this file instead of generating")
	return gf
}

// network loads or generates the instance; reading a file overrides
// generation flags (and alpha, when the file records one).
func (gf *genFlags) network() (*topoctl.Network, error) {
	if gf.in == "" {
		return topoctl.RandomNetwork(topoctl.NetworkSpec{
			N: gf.n, Dim: gf.d, Alpha: gf.alpha, Seed: gf.seed, Deg: gf.deg,
		})
	}
	inst, err := netio.ReadFrom(gf.in) // .gz transparently decompressed
	if err != nil {
		return nil, err
	}
	if inst.Alpha > 0 {
		gf.alpha = inst.Alpha
	}
	if len(inst.Points) > 0 {
		gf.d = inst.Points[0].Dim()
	}
	gf.n = len(inst.Points)
	return &topoctl.Network{Points: inst.Points, Graph: inst.G}, nil
}

func cmdGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	gf := addGenFlags(fs)
	out := fs.String("o", "", "write to this file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := gf.network()
	if err != nil {
		return err
	}
	inst := &netio.Instance{Points: net.Points, G: net.Graph, Alpha: gf.alpha}
	if *out != "" {
		return netio.WriteTo(*out, inst) // .gz compresses by extension
	}
	return netio.Write(os.Stdout, inst)
}

func cmdViz(args []string) error {
	fs := flag.NewFlagSet("viz", flag.ExitOnError)
	gf := addGenFlags(fs)
	eps := fs.Float64("eps", 0.5, "stretch slack for the highlighted spanner (0 = no spanner)")
	out := fs.String("o", "", "output DOT file (default: stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := gf.network()
	if err != nil {
		return err
	}
	var highlight *topoctl.Graph
	if *eps > 0 {
		res, err := topoctl.Build(net.Points, net.Graph, topoctl.Options{Epsilon: *eps, Alpha: gf.alpha, Dim: gf.d})
		if err != nil {
			return err
		}
		highlight = res.Spanner
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return netio.WriteDOT(w, net.Points, net.Graph, highlight)
}

func cmdBuild(args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	gf := addGenFlags(fs)
	eps := fs.Float64("eps", 0.5, "stretch slack (t = 1+eps)")
	algo := fs.String("algo", "relaxed", "algorithm / baseline kind")
	verbose := fs.Bool("v", false, "print per-step communication costs (dist only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := gf.network()
	if err != nil {
		return err
	}
	opts := topoctl.Options{Epsilon: *eps, Alpha: gf.alpha, Dim: gf.d, Seed: gf.seed}

	var sp *topoctl.Graph
	switch *algo {
	case "relaxed":
		res, err := topoctl.Build(net.Points, net.Graph, opts)
		if err != nil {
			return err
		}
		sp = res.Spanner
		fmt.Printf("relaxed greedy: t=%.3f phases=%d added=%d removed=%d\n",
			res.Stretch, res.Phases, res.EdgesAdded, res.EdgesRemoved)
	case "dist":
		res, err := topoctl.BuildDistributed(net.Points, net.Graph, opts)
		if err != nil {
			return err
		}
		sp = res.Spanner
		fmt.Printf("distributed relaxed greedy: t=%.3f rounds=%d messages=%d words=%d\n",
			res.Stretch, res.Rounds, res.Messages, res.Words)
		if *verbose {
			var steps []string
			for s := range res.PerStep {
				steps = append(steps, s)
			}
			sort.Strings(steps)
			for _, s := range steps {
				c := res.PerStep[s]
				fmt.Printf("  %-22s rounds=%-6d messages=%-10d words=%d\n", s, c.Rounds, c.Messages, c.Words)
			}
		}
	default:
		kind, ok := baselineKind(*algo)
		if !ok {
			return fmt.Errorf("unknown algorithm %q", *algo)
		}
		sp, err = topoctl.Baseline(kind, net.Points, net.Graph, 1+*eps)
		if err != nil {
			return err
		}
	}
	q := topoctl.Evaluate(net.Graph, sp)
	fmt.Printf("input:  n=%d edges=%d maxdeg=%d\n", net.Graph.N(), net.Graph.M(), net.Graph.MaxDegree())
	fmt.Printf("output: edges=%d maxdeg=%d avgdeg=%.2f stretch=%.4f w/mst=%.3f power/mst=%.3f\n",
		q.Edges, q.MaxDegree, q.AvgDegree, q.Stretch, q.WeightRatio, q.PowerRatio)
	return nil
}

func baselineKind(name string) (topoctl.BaselineKind, bool) {
	for _, k := range baseline.Kinds() {
		if k.String() == name {
			return k, true
		}
	}
	return 0, false
}

func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	gf := addGenFlags(fs)
	eps := fs.Float64("eps", 0.5, "stretch slack for the spanner algorithms")
	if err := fs.Parse(args); err != nil {
		return err
	}
	net, err := gf.network()
	if err != nil {
		return err
	}
	res, err := topoctl.Build(net.Points, net.Graph, topoctl.Options{Epsilon: *eps, Alpha: gf.alpha, Dim: gf.d})
	if err != nil {
		return err
	}
	fmt.Println(metrics.Evaluate("relaxed-greedy", net.Graph, res.Spanner))
	for _, kind := range baseline.Kinds() {
		sp, err := topoctl.Baseline(kind, net.Points, net.Graph, 1+*eps)
		if err != nil {
			return err
		}
		fmt.Println(metrics.Evaluate(kind.String(), net.Graph, sp))
	}
	fmt.Println(metrics.Evaluate("input", net.Graph, net.Graph))
	return nil
}
