package main

import (
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"topoctl/internal/geom"
	"topoctl/internal/netio"
	"topoctl/internal/ubg"
)

// buildBinary compiles the daemon once per test into a temp dir.
func buildBinary(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "topoctld")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	cmd.Env = os.Environ()
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

// daemons maps a running daemon's base URL to its process so tests can
// kill one abruptly (crash-recovery scenarios).
var (
	daemonsMu sync.Mutex
	daemons   = map[string]*exec.Cmd{}
)

// startDaemon launches the daemon on an ephemeral port and waits for
// /healthz, returning the base URL.
func startDaemon(t *testing.T, bin string, extra ...string) string {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0", "-n", "64", "-seed", "1"}, extra...)
	cmd := exec.Command(bin, args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	})
	// The startup line reports the bound address: "serving on 127.0.0.1:NNN: ...".
	var addr string
	buf := make([]byte, 4096)
	deadline := time.Now().Add(10 * time.Second)
	var logged strings.Builder
	for addr == "" && time.Now().Before(deadline) {
		n, err := stderr.Read(buf)
		if n > 0 {
			logged.Write(buf[:n])
			if i := strings.Index(logged.String(), "serving on "); i >= 0 {
				rest := logged.String()[i+len("serving on "):]
				if j := strings.Index(rest, ":"); j >= 0 {
					if k := strings.Index(rest[j+1:], ":"); k >= 0 {
						addr = rest[:j+1+k]
					}
				}
			}
		}
		if err != nil {
			break
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address; log so far:\n%s", logged.String())
	}
	base := "http://" + addr
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				daemonsMu.Lock()
				daemons[base] = cmd
				daemonsMu.Unlock()
				return base
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became healthy", base)
	return ""
}

// TestDaemonEndToEnd boots the real binary and exercises every endpoint,
// then drives it with a short bench run (the load generator doubles as an
// integration client).
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and boots a daemon")
	}
	bin := buildBinary(t)
	base := startDaemon(t, bin)

	get := func(path string) map[string]any {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		var m map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return m
	}

	if st := get("/stats"); st["nodes"].(float64) != 64 {
		t.Fatalf("stats = %v", st)
	}
	if nb := get("/node/3/neighbors"); nb["id"].(float64) != 3 {
		t.Fatalf("neighbors = %v", nb)
	}
	resp, err := http.Post(base+"/route", "application/json",
		strings.NewReader(`{"src":0,"dst":11}`))
	if err != nil {
		t.Fatal(err)
	}
	var route map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&route); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || route["delivered"] != true {
		t.Fatalf("route: status %d body %v", resp.StatusCode, route)
	}

	// Mutate over the wire and watch the version advance.
	resp, err = http.Post(base+"/mutate", "application/json",
		strings.NewReader(`{"ops":[{"op":"move","id":5,"point":[1.0,1.0]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var mres map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&mres); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if mres["version"].(float64) != 2 || mres["applied"].(float64) != 1 {
		t.Fatalf("mutate = %v", mres)
	}

	// A short bench run against the live daemon.
	out, err := exec.Command(bin, "bench", "-addr", base,
		"-clients", "4", "-duration", "300ms", "-mutate", "20").CombinedOutput()
	if err != nil {
		t.Fatalf("bench: %v\n%s", err, out)
	}
	for _, want := range []string{"QPS", "p99", "delivered"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("bench output missing %q:\n%s", want, out)
		}
	}
}

// TestDaemonServesGzipInstance round-trips a .topo.gz deployment through
// the daemon.
func TestDaemonServesGzipInstance(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and boots a daemon")
	}
	// Generate a compressed instance with the sibling CLI's netio format.
	dir := t.TempDir()
	gz := filepath.Join(dir, "net.topo.gz")
	genInstance(t, gz, 48)

	bin := buildBinary(t)
	base := startDaemon(t, bin, "-in", gz)
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st["nodes"].(float64) != 48 {
		t.Fatalf("daemon loaded %v nodes from %s, want 48", st["nodes"], gz)
	}
}

// TestDaemonWALRecoveryAndFollower boots the real binary with a WAL,
// mutates, kills it with SIGKILL, restarts on the same directory, and
// asserts the acknowledged version survived. A follower process then
// replicates the recovered leader; its /readyz flips from 503 to 200
// once the first snapshot is applied.
func TestDaemonWALRecoveryAndFollower(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles and boots daemons")
	}
	bin := buildBinary(t)
	walDir := t.TempDir()

	base := startDaemon(t, bin, "-wal", walDir, "-fsync", "always")
	resp, err := http.Post(base+"/mutate", "application/json",
		strings.NewReader(`{"ops":[{"op":"move","id":5,"point":[1.0,1.0]},{"op":"leave","id":9}]}`))
	if err != nil {
		t.Fatal(err)
	}
	var mres map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&mres); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	acked := mres["version"].(float64)
	if acked < 2 {
		t.Fatalf("mutate = %v", mres)
	}

	// SIGKILL: no shutdown path runs; the fsync-per-mutation log is all
	// that survives.
	killDaemon(t, base)

	base2 := startDaemon(t, bin, "-wal", walDir, "-fsync", "always")
	var st map[string]any
	resp, err = http.Get(base2 + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st["version"].(float64) != acked {
		t.Fatalf("recovered at version %v, want acknowledged %v", st["version"], acked)
	}

	// A follower replicating the recovered leader.
	folBase := startFollowerDaemon(t, bin, base2)
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(folBase + "/stats")
		if err != nil {
			t.Fatal(err)
		}
		var fst map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&fst); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v, _ := fst["version"].(float64); v >= acked {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached version %v", acked)
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Ready now; and followers refuse writes.
	resp, err = http.Get(folBase + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("follower /readyz after catch-up: %d, want 200", resp.StatusCode)
	}
	resp, err = http.Post(folBase+"/mutate", "application/json",
		strings.NewReader(`{"ops":[{"op":"move","id":1,"point":[0.5,0.5]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("follower POST /mutate: %d, want 503", resp.StatusCode)
	}
}

// killDaemon SIGKILLs the daemon serving base (looked up from the
// registry startDaemon maintains) and waits for the port to die.
func killDaemon(t *testing.T, base string) {
	t.Helper()
	daemonsMu.Lock()
	cmd := daemons[base]
	delete(daemons, base)
	daemonsMu.Unlock()
	if cmd == nil {
		t.Fatalf("no daemon registered for %s", base)
	}
	cmd.Process.Kill()
	cmd.Wait()
}

// startFollowerDaemon launches `topoctld follow` against leader and waits
// for /readyz — which must answer 503 (not refuse connections) while the
// follower is still bootstrapping.
func startFollowerDaemon(t *testing.T, bin, leader string) string {
	t.Helper()
	cmd := exec.Command(bin, "follow", "-addr", "127.0.0.1:0", "-leader", leader)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Signal(syscall.SIGTERM)
		cmd.Wait()
	})
	// "following URL on 127.0.0.1:NNN ..." reports the bound address.
	var addr string
	buf := make([]byte, 4096)
	deadline := time.Now().Add(10 * time.Second)
	var logged strings.Builder
	for addr == "" && time.Now().Before(deadline) {
		n, rerr := stderr.Read(buf)
		if n > 0 {
			logged.Write(buf[:n])
			if i := strings.Index(logged.String(), " on 127.0.0.1:"); i >= 0 {
				rest := logged.String()[i+len(" on "):]
				if j := strings.IndexAny(rest, " \n("); j >= 0 {
					addr = rest[:j]
				}
			}
		}
		if rerr != nil {
			break
		}
	}
	if addr == "" {
		t.Fatalf("follower never reported its address; log so far:\n%s", logged.String())
	}
	base := "http://" + addr
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			// 503 while bootstrapping and 200 after are both proof of life.
			if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusServiceUnavailable {
				return base
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("follower at %s never answered /readyz", base)
	return ""
}

// TestCLIErrors: bad usage must exit non-zero.
func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles a binary")
	}
	bin := buildBinary(t)
	for _, args := range [][]string{
		{"bogus"},
		{"serve", "-in", "/nonexistent.topo.gz"},
		{"bench", "-addr", "http://127.0.0.1:1", "-duration", "100ms"},
		{"bench", "-self", "-scheme", "warp"},
	} {
		if err := exec.Command(bin, args...).Run(); err == nil {
			t.Errorf("topoctld %v should fail", args)
		}
	}
}

// genInstance writes a small gzip-compressed instance using the library.
func genInstance(t *testing.T, path string, n int) {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Seed: 5},
		ubg.Config{Alpha: 1, Model: ubg.ModelAll, Seed: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := netio.WriteTo(path, &netio.Instance{Points: inst.Points, G: inst.G, Alpha: 1}); err != nil {
		t.Fatal(err)
	}
}
