// Command topoctld is the topology query daemon: it loads (or generates) a
// network deployment, builds and incrementally maintains its t-spanner,
// and serves concurrent route / neighborhood / statistics queries over
// HTTP while mutation batches stream in.
//
// Subcommands:
//
//	serve  start the daemon
//	bench  drive a running daemon with a concurrent zipfian route workload
//
// Examples:
//
//	topoctld serve -addr :7077 -n 512 -seed 1
//	topoctld serve -addr :7077 -in net.topo.gz -t 1.5
//	topoctld bench -addr http://127.0.0.1:7077 -clients 32 -duration 5s
//	topoctld bench -self -n 512 -clients 32 -duration 5s -mutate 50
//
// The serving core is internal/service: an RCU-style snapshot of the
// topology is swapped atomically after every mutation batch, so reads
// never block on writers; see that package for the design.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"topoctl/internal/geom"
	"topoctl/internal/netio"
	"topoctl/internal/service"
	"topoctl/internal/ubg"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topoctld: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "topoctld: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: topoctld <serve|bench> [flags]
  serve  [-addr :7077] [-in FILE(.gz) | -n N -d D -deg DEG -seed S] [-t T] [-radius R] [-cache C]
         start the daemon; without -in a uniform deployment of N nodes is generated
  bench  [-addr URL | -self [serve flags]] [-clients C] [-duration D] [-zipf S] [-scheme NAME] [-mutate OPS/S]
         drive a daemon with C concurrent zipfian clients and report QPS + latency percentiles`)
}

// serveFlags configures the daemon core (shared by serve and bench -self;
// the listen address is a serve-only flag, bench has its own -addr).
type serveFlags struct {
	in     string
	n, d   int
	deg    float64
	seed   int64
	t      float64
	radius float64
	cache  int
	sample int
}

func addServeFlags(fs *flag.FlagSet) *serveFlags {
	sf := &serveFlags{}
	fs.StringVar(&sf.in, "in", "", "load the deployment from this netio file (.gz supported) instead of generating")
	fs.IntVar(&sf.n, "n", 256, "generated node count")
	fs.IntVar(&sf.d, "d", 2, "generated dimension")
	fs.Float64Var(&sf.deg, "deg", 8, "generated expected base degree")
	fs.Int64Var(&sf.seed, "seed", 1, "generation seed")
	fs.Float64Var(&sf.t, "t", 1.5, "spanner stretch bound (> 1)")
	fs.Float64Var(&sf.radius, "radius", 1, "connectivity radius of the maintained base graph")
	fs.IntVar(&sf.cache, "cache", 8192, "route cache capacity per snapshot")
	fs.IntVar(&sf.sample, "stretch-sample", 256, "base-edge sample size for the /stats stretch estimate")
	return sf
}

// points loads or generates the deployment. The daemon maintains its own
// radius-model base graph over the point set, so only positions are taken
// from an input file (its edge list documents how the instance was
// generated, not what the daemon must serve).
func (sf *serveFlags) points() ([]geom.Point, error) {
	if sf.in != "" {
		inst, err := netio.ReadFrom(sf.in)
		if err != nil {
			return nil, err
		}
		return inst.Points, nil
	}
	side := ubg.DensitySide(sf.n, sf.d, sf.radius, sf.deg)
	return geom.GeneratePoints(geom.CloudConfig{
		Kind: geom.CloudUniform, N: sf.n, Dim: sf.d, Side: side, Seed: sf.seed,
	}), nil
}

// newService builds the serving core from the flags.
func (sf *serveFlags) newService() (*service.Service, error) {
	pts, err := sf.points()
	if err != nil {
		return nil, err
	}
	// service.New infers the dimension from the points; -d only matters
	// for generation.
	return service.New(pts, service.Options{
		T:             sf.t,
		Radius:        sf.radius,
		Dim:           sf.d,
		CacheSize:     sf.cache,
		StretchSample: sf.sample,
		Seed:          sf.seed,
	})
}

// newHTTPServer wraps the service handler with the timeouts a long-lived
// daemon needs: slow or idle clients must not pin goroutines and file
// descriptors forever.
func newHTTPServer(svc *service.Service) *http.Server {
	return &http.Server{
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7077", "listen address")
	sf := addServeFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	svc, err := sf.newService()
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	st := svc.Stats()
	log.Printf("serving on %s: %d nodes, %d base links, %d spanner links (t=%.3g, max degree %d)",
		ln.Addr(), st.Nodes, st.BaseEdges, st.SpannerEdges, st.StretchBound, st.MaxDegree)

	srv := newHTTPServer(svc)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(ctx)
	}
}
