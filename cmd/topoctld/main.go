// Command topoctld is the topology query daemon: it loads (or generates) a
// network deployment, builds and incrementally maintains its t-spanner,
// and serves concurrent route / neighborhood / statistics queries over
// HTTP while mutation batches stream in. The /analyze family answers
// operational what-ifs over the same frozen snapshots: failure impact
// (/analyze/impact), k-hop neighborhoods as Cytoscape JSON
// (/analyze/around), per-hop route explanations (/analyze/route), and
// base-vs-spanner divergence (/analyze/divergence).
//
// Subcommands:
//
//	serve   start the daemon (leader; with -wal, durable and replicable)
//	follow  start a read-only follower replicating a leader's WAL
//	bench   drive a running daemon with a concurrent zipfian route workload
//
// Examples:
//
//	topoctld serve -addr :7077 -n 512 -seed 1
//	topoctld serve -addr :7077 -in net.topo.gz -t 1.5
//	topoctld serve -addr :7077 -wal /var/lib/topoctl/wal -fsync always
//	topoctld follow -addr :7078 -leader http://127.0.0.1:7077
//	topoctld bench -addr http://127.0.0.1:7077 -clients 32 -duration 5s
//	topoctld bench -self -n 512 -clients 32 -duration 5s -mutate 50
//
// The serving core is internal/service: an RCU-style snapshot of the
// topology is swapped atomically after every mutation batch, so reads
// never block on writers; see that package for the design.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // profiling side listener, see startPprof
	"os"
	"os/signal"
	"syscall"
	"time"

	"topoctl/internal/dynamic"
	"topoctl/internal/geom"
	"topoctl/internal/netio"
	"topoctl/internal/replica"
	"topoctl/internal/service"
	"topoctl/internal/shard"
	"topoctl/internal/ubg"
	"topoctl/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("topoctld: ")
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "follow":
		err = cmdFollow(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "topoctld: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		log.Fatal(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: topoctld <serve|follow|bench> [flags]
  serve   [-addr :7077] [-in FILE(.gz) | -n N -d D -deg DEG -seed S] [-t T] [-radius R] [-cache C]
          [-shards K] [-portal-refresh N] [-wal DIR] [-fsync always|interval|never] [-checkpoint-every N]
          [-pprof ADDR]
          start the daemon; without -in a uniform deployment of N nodes is generated.
          With -shards K the deployment is split into K grid-aligned regions, each with
          its own engine, snapshot, and route cache; cross-region routes stitch through
          precomputed portal tables (exact, with global-search fallback mid-refresh).
          With -wal every mutation batch is logged durably and recovered on restart,
          and followers may replicate from GET /wal/checkpoint + /wal/stream
  follow  [-addr :7078] -leader URL [-cache C]
          start a read-only follower that replicates the leader's WAL stream;
          /readyz answers 503 until the first snapshot has been applied
  bench   [-addr URL | -self [serve flags]] [-clients C] [-duration D] [-zipf S] [-scheme NAME] [-mutate OPS/S]
          drive a daemon with C concurrent zipfian clients and report QPS + latency percentiles`)
}

// startPprof starts the net/http/pprof side listener when addr is
// non-empty. Profiles are served from http.DefaultServeMux (where the
// pprof import registers) on a dedicated port, so the main API handler —
// an explicit mux — never exposes them. The listener runs for the process
// lifetime; profiling a shutting-down daemon is not supported.
func startPprof(addr string) error {
	if addr == "" {
		return nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("pprof listener: %w", err)
	}
	log.Printf("pprof on http://%s/debug/pprof/", ln.Addr())
	go func() {
		if err := http.Serve(ln, nil); err != nil {
			log.Printf("pprof listener: %v", err)
		}
	}()
	return nil
}

// serveFlags configures the daemon core (shared by serve and bench -self;
// the listen address is a serve-only flag, bench has its own -addr).
type serveFlags struct {
	in        string
	n, d      int
	deg       float64
	seed      int64
	t         float64
	radius    float64
	cache     int
	sample    int
	labels    bool
	labelsMax int
	shards    int
	refresh   int
}

func addServeFlags(fs *flag.FlagSet) *serveFlags {
	sf := &serveFlags{}
	fs.StringVar(&sf.in, "in", "", "load the deployment from this netio file (.gz supported) instead of generating")
	fs.IntVar(&sf.n, "n", 256, "generated node count")
	fs.IntVar(&sf.d, "d", 2, "generated dimension")
	fs.Float64Var(&sf.deg, "deg", 8, "generated expected base degree")
	fs.Int64Var(&sf.seed, "seed", 1, "generation seed")
	fs.Float64Var(&sf.t, "t", 1.5, "spanner stretch bound (> 1)")
	fs.Float64Var(&sf.radius, "radius", 1, "connectivity radius of the maintained base graph")
	fs.IntVar(&sf.cache, "cache", 8192, "route cache capacity per snapshot")
	fs.IntVar(&sf.sample, "stretch-sample", 256, "base-edge sample size for the /stats stretch estimate")
	fs.BoolVar(&sf.labels, "labels", true, "maintain the hub-label distance oracle (exact /distance answers without a search)")
	fs.IntVar(&sf.labelsMax, "labels-max", 0, "largest deployment the oracle is built for (label builds grow ~quadratically; 0 = library default, negative = no cap)")
	fs.IntVar(&sf.shards, "shards", 1, "spatial shard count: >1 runs one engine+snapshot+cache per grid-aligned region, stitching cross-shard routes through portal vertices")
	fs.IntVar(&sf.refresh, "portal-refresh", 1, "rebuild the inter-portal distance table every Nth publish (sharded mode; in between, cross-shard routes fall back to the global search)")
	return sf
}

// points loads or generates the deployment. The daemon maintains its own
// radius-model base graph over the point set, so only positions are taken
// from an input file (its edge list documents how the instance was
// generated, not what the daemon must serve).
func (sf *serveFlags) points() ([]geom.Point, error) {
	if sf.in != "" {
		inst, err := netio.ReadFrom(sf.in)
		if err != nil {
			return nil, err
		}
		return inst.Points, nil
	}
	side := ubg.DensitySide(sf.n, sf.d, sf.radius, sf.deg)
	return geom.GeneratePoints(geom.CloudConfig{
		Kind: geom.CloudUniform, N: sf.n, Dim: sf.d, Side: side, Seed: sf.seed,
	}), nil
}

// newService builds the serving core from the flags.
func (sf *serveFlags) newService() (*service.Service, error) {
	pts, err := sf.points()
	if err != nil {
		return nil, err
	}
	// service.New infers the dimension from the points; -d only matters
	// for generation.
	return service.New(pts, service.Options{
		T:             sf.t,
		Radius:        sf.radius,
		Dim:           sf.d,
		CacheSize:     sf.cache,
		StretchSample: sf.sample,
		Seed:          sf.seed,
		Labels:        sf.labels,
		LabelsMaxN:    sf.labelsMax,
		Shards:        sf.shards,
		PortalRefresh: sf.refresh,
	})
}

// newHTTPServer wraps a handler with the timeouts a long-lived daemon
// needs: slow or idle clients must not pin goroutines and file
// descriptors forever. ReadTimeout is header-only via ReadHeaderTimeout;
// no WriteTimeout because /wal/stream connections are deliberately
// long-lived.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// walFlags are the durability flags on serve.
type walFlags struct {
	dir       string
	fsync     string
	ckptEvery int
}

func addWalFlags(fs *flag.FlagSet) *walFlags {
	wf := &walFlags{}
	fs.StringVar(&wf.dir, "wal", "", "write-ahead-log directory; empty disables durability")
	fs.StringVar(&wf.fsync, "fsync", "always", "WAL fsync policy: always|interval|never")
	fs.IntVar(&wf.ckptEvery, "checkpoint-every", 64, "full-snapshot checkpoint every N logged frames")
	return wf
}

// buildLeader constructs the serving core, durable when -wal is set: an
// existing log recovers the pre-crash topology (ignoring -in/-n), a fresh
// directory bootstraps a genesis checkpoint from the initial deployment.
// The returned leader is nil without -wal.
func buildLeader(sf *serveFlags, wf *walFlags) (*service.Service, *replica.Leader, http.Handler, error) {
	if wf.dir == "" {
		svc, err := sf.newService()
		return svc, nil, svc.Handler(), err
	}
	policy, err := wal.ParseSyncPolicy(wf.fsync)
	if err != nil {
		return nil, nil, nil, err
	}
	rec, recovered, err := wal.Open(wal.Options{Dir: wf.dir, Sync: policy, CheckpointEvery: wf.ckptEvery})
	if err != nil {
		return nil, nil, nil, err
	}
	// The leader is bound through a closure because sharded recovery
	// re-checkpoints and constructs it from the re-sharded state, after
	// the service exists; no mutation can publish before serve starts.
	var ld *replica.Leader
	opts := service.Options{
		T: sf.t, Radius: sf.radius, Dim: sf.d,
		CacheSize: sf.cache, StretchSample: sf.sample, Seed: sf.seed,
		Labels: sf.labels, LabelsMaxN: sf.labelsMax, Shards: sf.shards, PortalRefresh: sf.refresh,
		OnPublish: func(snap *service.Snapshot, applied []service.Op, touched []int) {
			ld.OnPublish(snap, applied, touched)
		},
	}
	var svc *service.Service
	if recovered != nil {
		// The log is the source of truth: its geometry parameters win over
		// the flags, and the version sequence continues at the recovered
		// epoch.
		side := recovered.Clone()
		opts.InitialVersion = recovered.Epoch
		if sf.shards > 1 {
			// Re-sharding re-partitions the recovered deployment and
			// rebuilds per-shard spanners (global ids preserved); the
			// combined topology is a t-spanner of the same base graph but
			// not row-identical to the checkpoint, so write a fresh
			// checkpoint for followers before any frame appends.
			grp, err := shard.Restore(side.Points, side.Alive, shard.Options{
				Dynamic:       dynamic.Options{T: recovered.T, Radius: recovered.Radius, Dim: recovered.Dim},
				K:             sf.shards,
				PortalRefresh: sf.refresh,
			})
			if err != nil {
				rec.Close(nil)
				return nil, nil, nil, fmt.Errorf("wal recovery (sharded): %w", err)
			}
			svc, err = service.NewFromGroup(grp, opts)
			if err != nil {
				rec.Close(nil)
				return nil, nil, nil, err
			}
			snap := svc.Snapshot()
			st := &wal.State{
				Epoch: recovered.Epoch, Chain: recovered.Chain,
				T: recovered.T, Radius: recovered.Radius, Dim: recovered.Dim,
				Points: snap.Points, Alive: snap.Alive, Live: snap.Live(),
				Base: snap.Base, Spanner: snap.Spanner,
			}
			if err := rec.Checkpoint(st); err != nil {
				svc.Close()
				rec.Close(nil)
				return nil, nil, nil, fmt.Errorf("wal recovery (sharded re-checkpoint): %w", err)
			}
			ld = replica.NewLeader(rec, st)
			log.Printf("recovered epoch %d from %s (%d live nodes), re-sharded into %d regions",
				recovered.Epoch, wf.dir, recovered.Live, sf.shards)
		} else {
			eng, err := dynamic.Restore(side.Points, side.Alive, side.Base.Thaw(), side.Spanner.Thaw(),
				dynamic.Options{T: recovered.T, Radius: recovered.Radius, Dim: recovered.Dim})
			if err != nil {
				rec.Close(nil)
				return nil, nil, nil, fmt.Errorf("wal recovery: %w", err)
			}
			svc, err = service.NewFromEngine(eng, opts)
			if err != nil {
				rec.Close(nil)
				return nil, nil, nil, err
			}
			ld = replica.NewLeader(rec, recovered)
			log.Printf("recovered epoch %d from %s (%d live nodes)", recovered.Epoch, wf.dir, recovered.Live)
		}
	} else {
		pts, err := sf.points()
		if err != nil {
			rec.Close(nil)
			return nil, nil, nil, err
		}
		svc, err = service.New(pts, opts)
		if err != nil {
			rec.Close(nil)
			return nil, nil, nil, err
		}
		ld = replica.NewLeader(rec, nil)
		snap := svc.Snapshot()
		dim := sf.d
		if len(snap.Points) > 0 {
			dim = snap.Points[0].Dim()
		}
		if err := ld.Genesis(sf.t, sf.radius, dim, snap); err != nil {
			svc.Close()
			rec.Close(nil)
			return nil, nil, nil, err
		}
		log.Printf("bootstrapped WAL in %s at epoch %d", wf.dir, snap.Version)
	}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.HandleFunc("GET /wal/checkpoint", rec.HandleCheckpoint)
	mux.HandleFunc("GET /wal/stream", rec.HandleStream)
	return svc, ld, mux, nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":7077", "listen address")
	pprofAddr := fs.String("pprof", "", "pprof side-listener address (e.g. 127.0.0.1:6060); empty disables profiling")
	sf := addServeFlags(fs)
	wf := addWalFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := startPprof(*pprofAddr); err != nil {
		return err
	}
	svc, ld, handler, err := buildLeader(sf, wf)
	if err != nil {
		return err
	}
	// Shutdown order matters: the service stops its writer first, then the
	// leader writes the final checkpoint and closes the recorder.
	closeAll := func() error {
		svc.Close()
		if ld != nil {
			return ld.Close()
		}
		return nil
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		closeAll()
		return err
	}
	st := svc.Stats()
	log.Printf("serving on %s: %d nodes, %d base links, %d spanner links (t=%.3g, max degree %d)",
		ln.Addr(), st.Nodes, st.BaseEdges, st.SpannerEdges, st.StretchBound, st.MaxDegree)
	if sf.labels && !st.LabelsEnabled {
		log.Printf("hub-label oracle skipped: %d nodes exceed the build cap (label builds grow ~quadratically; raise with -labels-max, silence with -labels=false)", st.Nodes)
	}

	srv := newHTTPServer(handler)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		closeAll()
		return err
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		serr := srv.Shutdown(ctx)
		if cerr := closeAll(); cerr != nil {
			return cerr
		}
		return serr
	}
}

func cmdFollow(args []string) error {
	fs := flag.NewFlagSet("follow", flag.ExitOnError)
	addr := fs.String("addr", ":7078", "listen address")
	leader := fs.String("leader", "", "leader base URL (required), e.g. http://127.0.0.1:7077")
	cache := fs.Int("cache", 8192, "route cache capacity per snapshot")
	sample := fs.Int("stretch-sample", 256, "base-edge sample size for the /stats stretch estimate")
	pprofAddr := fs.String("pprof", "", "pprof side-listener address (e.g. 127.0.0.1:6060); empty disables profiling")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *leader == "" {
		return fmt.Errorf("follow: -leader is required")
	}
	if err := startPprof(*pprofAddr); err != nil {
		return err
	}
	fol := service.NewFollower(service.Options{CacheSize: *cache, StretchSample: *sample})
	defer fol.Close()
	cl, err := replica.New(replica.Options{
		Leader:  *leader,
		Service: fol,
		Logf:    log.Printf,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); cl.Run(ctx) }()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("following %s on %s (read-only; /readyz gates on the first applied snapshot)", *leader, ln.Addr())

	srv := newHTTPServer(fol.Handler())
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		cancel()
		<-done
		return err
	case sig := <-sigc:
		log.Printf("received %v, shutting down", sig)
		cancel()
		<-done
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		return srv.Shutdown(sctx)
	}
}
