package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"topoctl/internal/service"
)

// benchFlags configures the load generator.
type benchFlags struct {
	addr     string
	self     bool
	clients  int
	duration time.Duration
	zipfS    float64
	scheme   string
	mutate   int
	mutBatch int
}

func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	bf := &benchFlags{}
	fs.StringVar(&bf.addr, "addr", "http://127.0.0.1:7077", "base URL of the daemon to drive")
	fs.BoolVar(&bf.self, "self", false, "start an in-process daemon on a loopback port and drive that")
	fs.IntVar(&bf.clients, "clients", 32, "concurrent clients")
	fs.DurationVar(&bf.duration, "duration", 5*time.Second, "measurement window")
	fs.Float64Var(&bf.zipfS, "zipf", 1.2, "zipf skew of the src/dst mix (> 1)")
	fs.StringVar(&bf.scheme, "scheme", "shortest-path", "forwarding scheme to request")
	fs.IntVar(&bf.mutate, "mutate", 0, "background churn rate in ops/sec through /mutate (0 = read-only)")
	fs.IntVar(&bf.mutBatch, "mutate-batch", 4, "ops per background mutation batch")
	pprofAddr := fs.String("pprof", "", "pprof side-listener address for the in-process daemon (-self); empty disables profiling")
	sf := addServeFlags(fs) // -n, -t, ... honored with -self
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := startPprof(*pprofAddr); err != nil {
		return err
	}
	if _, err := service.ParseScheme(bf.scheme); err != nil {
		return err
	}
	if bf.zipfS <= 1 {
		return fmt.Errorf("-zipf %v: skew must exceed 1", bf.zipfS)
	}

	base := bf.addr
	if bf.self {
		svc, err := sf.newService()
		if err != nil {
			return err
		}
		defer svc.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		srv := newHTTPServer(svc.Handler())
		go srv.Serve(ln)
		defer srv.Close()
		base = "http://" + ln.Addr().String()
		log.Printf("self-hosted daemon on %s", base)
	}
	return runBench(bf, base)
}

// benchStats is the subset of /stats the generator needs: deployment shape
// up front, server-side cache counters before/after the window so the
// summary can report the cache behaviour this run induced (the server
// counters are lifetime aggregates; the delta isolates this window).
type benchStats struct {
	Nodes          int                  `json:"nodes"`
	Slots          int                  `json:"slots"`
	BBoxLo         []float64            `json:"bbox_lo"`
	BBoxHi         []float64            `json:"bbox_hi"`
	CacheHits      uint64               `json:"cache_hits"`
	CacheMisses    uint64               `json:"cache_misses"`
	CacheEvictions uint64               `json:"cache_evictions"`
	ShardCount     int                  `json:"shard_count"`
	Shards         []service.ShardStats `json:"shards"`

	// Stretch fields of the post-window snapshot, for the summary line
	// (computing the estimate is the server's first /stats touch on that
	// snapshot; at a million edges it is sampled, never exact).
	StretchBound          float64 `json:"stretch_bound"`
	StretchEstimate       float64 `json:"stretch_estimate"`
	StretchExact          bool    `json:"stretch_exact"`
	StretchSampled        int     `json:"stretch_sampled"`
	StretchViolationBound float64 `json:"stretch_violation_bound"`
	StretchConfidence     float64 `json:"stretch_confidence"`
}

func runBench(bf *benchFlags, base string) error {
	tr := &http.Transport{
		MaxIdleConns:        bf.clients * 2,
		MaxIdleConnsPerHost: bf.clients * 2,
	}
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}

	var st benchStats
	if err := getStats(client, base, &st); err != nil {
		return fmt.Errorf("daemon not reachable at %s: %w", base, err)
	}
	if st.Slots < 2 {
		return fmt.Errorf("daemon serves %d slots; nothing to route", st.Slots)
	}
	log.Printf("driving %s: %d nodes (%d slots), %d clients, zipf %.2f, %v window, churn %d ops/s",
		base, st.Nodes, st.Slots, bf.clients, bf.zipfS, bf.duration, bf.mutate)

	var (
		wg        sync.WaitGroup
		stopFlag  atomic.Bool
		requests  atomic.Uint64
		delivered atomic.Uint64
		cached    atomic.Uint64
		rejected  atomic.Uint64 // 404: zipf drew a departed slot
		failures  atomic.Uint64
		mutations atomic.Uint64
	)
	lats := make([][]time.Duration, bf.clients)

	// Optional background churn: move-only batches keep the node count
	// stable while forcing continuous snapshot swaps.
	if bf.mutate > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(999))
			interval := time.Duration(float64(bf.mutBatch) / float64(bf.mutate) * float64(time.Second))
			if interval <= 0 {
				interval = time.Millisecond
			}
			for !stopFlag.Load() {
				ops := make([]service.Op, bf.mutBatch)
				for i := range ops {
					p := make([]float64, len(st.BBoxLo))
					for d := range p {
						p[d] = st.BBoxLo[d] + rng.Float64()*(st.BBoxHi[d]-st.BBoxLo[d])
					}
					ops[i] = service.Op{Kind: service.OpMove, ID: rng.Intn(st.Slots), Point: p}
				}
				body, _ := json.Marshal(service.MutateRequest{Ops: ops})
				resp, err := client.Post(base+"/mutate", "application/json", bytes.NewReader(body))
				if err == nil {
					var mres service.MutateResult
					if resp.StatusCode == http.StatusOK &&
						json.NewDecoder(resp.Body).Decode(&mres) == nil {
						mutations.Add(uint64(mres.Applied))
					}
					io.Copy(io.Discard, resp.Body) // keep the connection reusable
					resp.Body.Close()
				}
				time.Sleep(interval)
			}
		}()
	}

	start := time.Now()
	for c := 0; c < bf.clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7000 + id)))
			zipf := rand.NewZipf(rng, bf.zipfS, 1, uint64(st.Slots-1))
			buf := make([]byte, 0, 128)
			mine := make([]time.Duration, 0, 1<<15)
			for !stopFlag.Load() {
				src, dst := int(zipf.Uint64()), int(zipf.Uint64())
				if src == dst {
					dst = (dst + 1) % st.Slots
				}
				buf = buf[:0]
				buf = fmt.Appendf(buf, `{"scheme":%q,"src":%d,"dst":%d}`, bf.scheme, src, dst)
				t0 := time.Now()
				resp, err := client.Post(base+"/route", "application/json", bytes.NewReader(buf))
				if err != nil {
					failures.Add(1)
					continue
				}
				var rr service.RouteResponse
				decErr := json.NewDecoder(resp.Body).Decode(&rr)
				resp.Body.Close()
				lat := time.Since(t0)
				requests.Add(1)
				switch {
				case resp.StatusCode == http.StatusOK && decErr == nil:
					mine = append(mine, lat)
					if rr.Delivered {
						delivered.Add(1)
					}
					if rr.Cached {
						cached.Add(1)
					}
				case resp.StatusCode == http.StatusNotFound:
					rejected.Add(1)
				default:
					failures.Add(1)
				}
			}
			lats[id] = mine
		}(c)
	}

	time.Sleep(bf.duration)
	stopFlag.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	for _, l := range lats {
		all = append(all, l...)
	}
	if len(all) == 0 {
		return fmt.Errorf("no successful requests (failures: %d)", failures.Load())
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration {
		i := int(p * float64(len(all)-1))
		return all[i]
	}
	total := requests.Load()
	qps := float64(total) / elapsed.Seconds()
	fmt.Printf("requests  %d in %v (%.0f QPS)\n", total, elapsed.Round(time.Millisecond), qps)
	fmt.Printf("latency   p50 %v  p95 %v  p99 %v  max %v\n",
		pct(0.50).Round(time.Microsecond), pct(0.95).Round(time.Microsecond),
		pct(0.99).Round(time.Microsecond), all[len(all)-1].Round(time.Microsecond))
	fmt.Printf("delivered %d (%.1f%%), cache hits %d (%.1f%%), rejected %d, failures %d\n",
		delivered.Load(), 100*float64(delivered.Load())/float64(total),
		cached.Load(), 100*float64(cached.Load())/float64(total),
		rejected.Load(), failures.Load())
	var end benchStats
	if err := getStats(client, base, &end); err == nil {
		switch {
		case end.StretchEstimate < 0:
			fmt.Printf("stretch   disconnected spanner observed (bound t=%.3g)\n", end.StretchBound)
		case end.StretchExact:
			fmt.Printf("stretch   %.4f exact over all base edges (bound t=%.3g)\n",
				end.StretchEstimate, end.StretchBound)
		default:
			fmt.Printf("stretch   %.4f sampled over %d edges (bound t=%.3g; ≤%.2f%% of edges may exceed, %.0f%% confidence)\n",
				end.StretchEstimate, end.StretchSampled, end.StretchBound,
				100*end.StretchViolationBound, 100*end.StretchConfidence)
		}
		hits, misses := end.CacheHits-st.CacheHits, end.CacheMisses-st.CacheMisses
		ratio := 0.0
		if hits+misses > 0 {
			ratio = 100 * float64(hits) / float64(hits+misses)
		}
		fmt.Printf("cache     server-side: %d hits / %d misses (%.1f%% hit rate), %d evictions\n",
			hits, misses, ratio, end.CacheEvictions-st.CacheEvictions)
		// Per-shard breakdown for sharded deployments: the window delta of
		// each shard's query/hit counters against the pre-run snapshot.
		if end.ShardCount > 1 && len(end.Shards) == len(st.Shards) {
			for i, sh := range end.Shards {
				q := sh.Queries - st.Shards[i].Queries
				h := sh.CacheHits - st.Shards[i].CacheHits
				hr := 0.0
				if q > 0 {
					hr = 100 * float64(h) / float64(q)
				}
				fmt.Printf("  shard %d  %d nodes, %d portals, %d queries (%.1f%% cached), swap epoch %d\n",
					sh.Shard, sh.Nodes, sh.Portals, q, hr, sh.LastSwapEpoch)
			}
		}
	}
	if bf.mutate > 0 {
		fmt.Printf("churn     %d mutation ops applied during the window\n", mutations.Load())
	}
	return nil
}

func getStats(client *http.Client, base string, dst *benchStats) error {
	resp, err := client.Get(base + "/stats")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/stats: status %d", resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}
