# Development targets. `make check` is the tier-1 gate; `make ci` is what a
# CI job should run (check + race + benchmark smoke).

GO ?= go

.PHONY: all build check vet fmt test race bench bench-json serve-smoke ci

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test: build
	$(GO) test ./...

check: vet fmt test

# Race-detector pass over the packages that exercise concurrency
# (parallel stretch verification, pooled searchers, parallel experiment
# reps), the dynamic engine, and the serving layer, whose stress test runs
# ≥8 concurrent readers against a live mutator.
race:
	$(GO) test -race ./internal/graph/ ./internal/metrics/ ./internal/exp/ ./internal/dynamic/ ./internal/service/ .

# Benchmark smoke: one iteration of each micro-benchmark with allocation
# accounting, to catch perf regressions that change allocs/op.
BENCH_PATTERN = BenchmarkSeqGreedy|BenchmarkStretchVerification|BenchmarkCoreBuild|BenchmarkUBGBuild|BenchmarkChurn|BenchmarkService
BENCH_PKGS = . ./internal/service/
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=10x $(BENCH_PKGS)

# Machine-readable benchmark output (one JSON event per line, go test -json
# framing) for trend tracking; pipe to a file or a collector. The recipe is
# @-silenced so stdout is pure JSON.
bench-json:
	@$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=10x -json $(BENCH_PKGS)

# End-to-end smoke of the topology daemon: boot it on SMOKE_ADDR, poll
# /healthz until live, route one packet, read /stats, and shut it down.
SMOKE_ADDR ?= 127.0.0.1:7079
serve-smoke:
	@set -e; \
	bin=$$(mktemp -t topoctld.XXXXXX); \
	$(GO) build -o $$bin ./cmd/topoctld; \
	log=$$(mktemp -t topoctld-log.XXXXXX); \
	$$bin serve -addr $(SMOKE_ADDR) -n 64 -seed 1 >$$log 2>&1 & \
	pid=$$!; \
	trap "kill $$pid 2>/dev/null || true; rm -f $$bin $$log" EXIT; \
	ok=0; i=0; while [ $$i -lt 50 ]; do \
		if curl -fsS http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.1; i=$$((i+1)); \
	done; \
	if [ $$ok -ne 1 ]; then echo "daemon never became healthy:"; cat $$log; exit 1; fi; \
	if ! kill -0 $$pid 2>/dev/null; then \
		echo "daemon we started is dead; a stale listener answered on $(SMOKE_ADDR):"; cat $$log; exit 1; \
	fi; \
	curl -fsS http://$(SMOKE_ADDR)/healthz; \
	curl -fsS -X POST -d '{"scheme":"shortest-path","src":0,"dst":13}' http://$(SMOKE_ADDR)/route; \
	curl -fsS http://$(SMOKE_ADDR)/stats; \
	echo "serve-smoke OK"

ci: check race bench serve-smoke
