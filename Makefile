# Development targets. `make check` is the tier-1 gate; `make ci` is what a
# CI job should run (check + race + benchmark smoke).

GO ?= go

.PHONY: all build check vet fmt test race bench ci

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test: build
	$(GO) test ./...

check: vet fmt test

# Race-detector pass over the packages that exercise concurrency
# (parallel stretch verification, pooled searchers, parallel experiment reps).
race:
	$(GO) test -race ./internal/graph/ ./internal/metrics/ ./internal/exp/ .

# Benchmark smoke: one iteration of each micro-benchmark with allocation
# accounting, to catch perf regressions that change allocs/op.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkSeqGreedy|BenchmarkStretchVerification|BenchmarkCoreBuild|BenchmarkUBGBuild' -benchmem -benchtime=10x .

ci: check race bench
