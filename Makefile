# Development targets. `make check` is the tier-1 gate; `make ci` is what a
# CI job should run (check + race + benchmark smoke).

GO ?= go

.PHONY: all build check vet fmt test race fuzz-short cover bench bench-json bench-save bench-compare serve-smoke recover-smoke build-large-smoke ci

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test: build
	$(GO) test ./...

check: vet fmt test

# Race-detector pass over the packages that exercise concurrency
# (parallel stretch verification, pooled searchers, parallel experiment
# reps), the dynamic engine, the serving layer — whose stress tests run
# ≥8 concurrent readers against a live mutator and slam Close into live
# Mutate/Route traffic — and the WAL + replication layer, whose stream
# subscribers race the log writer. internal/labels rides along because its
# differential harness churns a live dynamic engine while querying the
# oracle the same way concurrent service readers do. internal/analyze is
# here for its parallel edge scans and the differential impact fuzz.
# internal/shard runs per-shard writer goroutines and portal-table builds
# under the detector. The second line re-runs the mutate-while-route
# stress pair with GOMAXPROCS=4 so the sharded snapshot swap and portal
# fallback race under real scheduler parallelism even on 1-core CI hosts.
race:
	$(GO) test -race ./internal/graph/ ./internal/metrics/ ./internal/exp/ ./internal/dynamic/ ./internal/shard/ ./internal/service/ ./internal/analyze/ ./internal/wal/ ./internal/replica/ ./internal/labels/ .
	GOMAXPROCS=4 $(GO) test -race -run 'TestConcurrentMutateWhileRoute' ./internal/service/

# Short native-fuzz pass over the untrusted-byte decode surfaces: the WAL
# record/frame/checkpoint decoders (what a follower reads off the wire and
# recovery reads off disk) and the netio instance parser (operator files).
# Each target explores for a few seconds on top of the committed seed
# corpora in testdata/fuzz/; go only allows one -fuzz pattern per
# invocation, hence one line per target. New crashers land in the
# package's testdata and fail `go test` until fixed.
FUZZ_TIME ?= 5s
fuzz-short:
	$(GO) test -run '^$$' -fuzz '^FuzzRecordStream$$' -fuzztime $(FUZZ_TIME) ./internal/wal/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeFrame$$' -fuzztime $(FUZZ_TIME) ./internal/wal/
	$(GO) test -run '^$$' -fuzz '^FuzzDecodeState$$' -fuzztime $(FUZZ_TIME) ./internal/wal/
	$(GO) test -run '^$$' -fuzz '^FuzzRead$$' -fuzztime $(FUZZ_TIME) ./internal/netio/
	$(GO) test -run '^$$' -fuzz '^FuzzReadFrom$$' -fuzztime $(FUZZ_TIME) ./internal/netio/

# Coverage over the whole module: the test run prints the per-package
# percentages (the trend worth reading in a CI log), the profile feeds the
# module-wide total and the HTML drill-down.
COVER_PROFILE ?= coverage.out
cover:
	$(GO) test -coverprofile=$(COVER_PROFILE) -covermode=atomic ./...
	@$(GO) tool cover -func=$(COVER_PROFILE) | tail -1
	@echo "wrote $(COVER_PROFILE); open with: $(GO) tool cover -html=$(COVER_PROFILE)"

# Benchmark smoke: one iteration of each micro-benchmark with allocation
# accounting, to catch perf regressions that change allocs/op. BENCH_CPU
# runs every benchmark at 1 and 4 procs: the -cpu=4 rows are what the
# shard layer's scaling claim is judged on (BenchmarkServiceRouteParallel
# in particular), the -cpu=1 rows guard the sequential hot path.
BENCH_PATTERN = BenchmarkSeqGreedy|BenchmarkStretchVerification|BenchmarkCoreBuild|BenchmarkUBGBuild|BenchmarkChurn|BenchmarkService|BenchmarkRouteUncached|BenchmarkRouteLabel|BenchmarkLabelBuild|BenchmarkAnalyze
BENCH_PKGS = . ./internal/service/
BENCH_CPU ?= 1,4
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=10x -cpu=$(BENCH_CPU) $(BENCH_PKGS)

# Machine-readable benchmark output (one JSON event per line, go test -json
# framing) for trend tracking; pipe to a file or a collector. The recipe is
# @-silenced so stdout is pure JSON.
bench-json:
	@$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=10x -cpu=$(BENCH_CPU) -json $(BENCH_PKGS)

# Old-vs-new benchmark workflow (see README "Comparing benchmarks across
# changes"): `make bench-save` on the baseline tree writes $(BENCH_OLD);
# `make bench-compare` on the changed tree writes $(BENCH_NEW) and runs
# benchstat over the pair. BENCH_COUNT samples per side give benchstat
# enough runs for its significance test.
BENCH_OLD ?= bench.old.txt
BENCH_NEW ?= bench.new.txt
BENCH_COUNT ?= 5
# The runs write to a temp file first: a failed bench run (compile error,
# b.Fatal) must fail the target and must not clobber a good baseline —
# piping through tee would swallow go test's exit status under plain sh.
bench-save:
	@$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) -cpu=$(BENCH_CPU) $(BENCH_PKGS) > $(BENCH_OLD).tmp || \
		{ cat $(BENCH_OLD).tmp; rm -f $(BENCH_OLD).tmp; echo "bench-save failed; $(BENCH_OLD) left untouched"; exit 1; }
	@mv $(BENCH_OLD).tmp $(BENCH_OLD)
	@cat $(BENCH_OLD)
bench-compare:
	@$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=$(BENCH_COUNT) -cpu=$(BENCH_CPU) $(BENCH_PKGS) > $(BENCH_NEW).tmp || \
		{ cat $(BENCH_NEW).tmp; rm -f $(BENCH_NEW).tmp; echo "bench-compare failed; $(BENCH_NEW) left untouched"; exit 1; }
	@mv $(BENCH_NEW).tmp $(BENCH_NEW)
	@cat $(BENCH_NEW)
	@if command -v benchstat >/dev/null 2>&1; then \
		benchstat $(BENCH_OLD) $(BENCH_NEW); \
	else \
		echo "benchstat not found: wrote $(BENCH_OLD) / $(BENCH_NEW);"; \
		echo "install it with: go install golang.org/x/perf/cmd/benchstat@latest"; \
	fi

# End-to-end smoke of the topology daemon: boot it on SMOKE_ADDR, poll
# /healthz until live, route one packet, read /stats, and shut it down.
SMOKE_ADDR ?= 127.0.0.1:7079
serve-smoke:
	@set -e; \
	bin=$$(mktemp -t topoctld.XXXXXX); \
	$(GO) build -o $$bin ./cmd/topoctld; \
	log=$$(mktemp -t topoctld-log.XXXXXX); \
	$$bin serve -addr $(SMOKE_ADDR) -n 64 -seed 1 >$$log 2>&1 & \
	pid=$$!; \
	trap "kill $$pid 2>/dev/null || true; rm -f $$bin $$log" EXIT; \
	ok=0; i=0; while [ $$i -lt 50 ]; do \
		if curl -fsS http://$(SMOKE_ADDR)/healthz >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.1; i=$$((i+1)); \
	done; \
	if [ $$ok -ne 1 ]; then echo "daemon never became healthy:"; cat $$log; exit 1; fi; \
	if ! kill -0 $$pid 2>/dev/null; then \
		echo "daemon we started is dead; a stale listener answered on $(SMOKE_ADDR):"; cat $$log; exit 1; \
	fi; \
	curl -fsS http://$(SMOKE_ADDR)/healthz; \
	curl -fsS -X POST -d '{"scheme":"shortest-path","src":0,"dst":13}' http://$(SMOKE_ADDR)/route; \
	curl -fsS http://$(SMOKE_ADDR)/stats; \
	curl -fsS -X POST -d '{"vertices":[3]}' http://$(SMOKE_ADDR)/analyze/impact >/dev/null; \
	curl -fsS -X POST -d '{"center":0,"hops":2}' http://$(SMOKE_ADDR)/analyze/around >/dev/null; \
	curl -fsS -X POST -d '{"src":0,"dst":13}' http://$(SMOKE_ADDR)/analyze/route; \
	curl -fsS 'http://$(SMOKE_ADDR)/analyze/divergence?sample=64' >/dev/null; \
	echo "serve-smoke OK"

# Crash-recovery smoke of the durable daemon: boot it with a WAL, mutate,
# kill -9 (no shutdown path at all), restart on the same directory, and
# assert the acknowledged epoch survived and routes still answer. This is
# the scripted version of the kill-recover loop the replica tests run
# in-process with fault injection.
RECOVER_ADDR ?= 127.0.0.1:7081
recover-smoke:
	@set -e; \
	bin=$$(mktemp -t topoctld.XXXXXX); \
	$(GO) build -o $$bin ./cmd/topoctld; \
	waldir=$$(mktemp -d -t topoctl-wal.XXXXXX); \
	log=$$(mktemp -t topoctld-log.XXXXXX); \
	$$bin serve -addr $(RECOVER_ADDR) -n 64 -seed 1 -wal $$waldir -fsync always >$$log 2>&1 & \
	pid=$$!; \
	trap "kill -9 $$pid 2>/dev/null || true; rm -rf $$bin $$log $$waldir" EXIT; \
	ok=0; i=0; while [ $$i -lt 50 ]; do \
		if curl -fsS http://$(RECOVER_ADDR)/readyz >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.1; i=$$((i+1)); \
	done; \
	if [ $$ok -ne 1 ]; then echo "daemon never became ready:"; cat $$log; exit 1; fi; \
	ver=$$(curl -fsS -X POST -d '{"ops":[{"op":"move","id":5,"point":[1.0,1.0]},{"op":"leave","id":7}]}' \
		http://$(RECOVER_ADDR)/mutate | grep -o '"version":[0-9]*' | head -1 | cut -d: -f2); \
	if [ -z "$$ver" ]; then echo "mutation did not report a version"; cat $$log; exit 1; fi; \
	kill -9 $$pid; wait $$pid 2>/dev/null || true; \
	$$bin serve -addr $(RECOVER_ADDR) -n 64 -seed 1 -wal $$waldir -fsync always >>$$log 2>&1 & \
	pid=$$!; \
	ok=0; i=0; while [ $$i -lt 50 ]; do \
		if curl -fsS http://$(RECOVER_ADDR)/readyz >/dev/null 2>&1; then ok=1; break; fi; \
		sleep 0.1; i=$$((i+1)); \
	done; \
	if [ $$ok -ne 1 ]; then echo "daemon never recovered:"; cat $$log; exit 1; fi; \
	got=$$(curl -fsS http://$(RECOVER_ADDR)/stats | grep -o '"version":[0-9]*' | head -1 | cut -d: -f2); \
	if [ "$$got" != "$$ver" ]; then \
		echo "recovered at version $$got, want acknowledged $$ver"; cat $$log; exit 1; \
	fi; \
	curl -fsS -X POST -d '{"scheme":"shortest-path","src":0,"dst":13}' http://$(RECOVER_ADDR)/route; \
	if ! grep -q "recovered epoch $$ver" $$log; then \
		echo "recovery log line missing:"; cat $$log; exit 1; \
	fi; \
	echo "recover-smoke OK (epoch $$ver survived kill -9)"

# Large-build smoke: the million-vertex machinery at a size CI can afford
# (n=131072: parallel frozen-CSR build, dynamic bulk load, SEQ-GREEDY
# spanner, sampled stretch verification) under a hard time budget. The
# test is opt-in via BUILD_LARGE so the tier-1 `go test ./...` run never
# pays for it.
build-large-smoke:
	BUILD_LARGE=1 $(GO) test -run '^TestBuildLargeSmoke$$' -v -timeout 300s .

ci: check race bench serve-smoke recover-smoke build-large-smoke
