# Development targets. `make check` is the tier-1 gate; `make ci` is what a
# CI job should run (check + race + benchmark smoke).

GO ?= go

.PHONY: all build check vet fmt test race bench bench-json ci

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

test: build
	$(GO) test ./...

check: vet fmt test

# Race-detector pass over the packages that exercise concurrency
# (parallel stretch verification, pooled searchers, parallel experiment
# reps) plus the dynamic engine, whose differential test leans on them all.
race:
	$(GO) test -race ./internal/graph/ ./internal/metrics/ ./internal/exp/ ./internal/dynamic/ .

# Benchmark smoke: one iteration of each micro-benchmark with allocation
# accounting, to catch perf regressions that change allocs/op.
BENCH_PATTERN = BenchmarkSeqGreedy|BenchmarkStretchVerification|BenchmarkCoreBuild|BenchmarkUBGBuild|BenchmarkChurn
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=10x .

# Machine-readable benchmark output (one JSON event per line, go test -json
# framing) for trend tracking; pipe to a file or a collector. The recipe is
# @-silenced so stdout is pure JSON.
bench-json:
	@$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=10x -json .

ci: check race bench
