package topoctl

// Large-scale build smoke test, exercised by `make build-large-smoke` (and
// the CI step of the same name). It is opt-in via the BUILD_LARGE
// environment variable so the tier-1 `go test ./...` run stays fast; the
// point is a budgeted end-to-end pass over the million-vertex machinery at
// a size CI can afford: parallel frozen-CSR build, dynamic bulk load,
// spanner construction, and sampled stretch verification.

import (
	"os"
	"testing"
	"time"

	"topoctl/internal/dynamic"
	"topoctl/internal/geom"
	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

func TestBuildLargeSmoke(t *testing.T) {
	if os.Getenv("BUILD_LARGE") == "" {
		t.Skip("set BUILD_LARGE=1 to run the large build smoke test")
	}
	if testing.Short() {
		t.Skip("skipping large build in -short mode")
	}
	const n = 131072
	start := time.Now()
	pts := geom.GeneratePoints(geom.CloudConfig{
		Kind: geom.CloudUniform, N: n, Dim: 2, Side: ubg.DensitySide(n, 2, 1, 8), Seed: 1,
	})
	f, err := ubg.BuildFrozen(pts, ubg.Config{Alpha: 1})
	if err != nil {
		t.Fatal(err)
	}
	buildDone := time.Now()
	if f.N() != n || f.M() == 0 {
		t.Fatalf("degenerate build: n=%d m=%d", f.N(), f.M())
	}
	avgDeg := 2 * float64(f.M()) / float64(n)
	if avgDeg < 4 || avgDeg > 16 {
		t.Fatalf("average degree %.1f far from the density target 8", avgDeg)
	}

	const stretchT = 1.5
	eng, err := dynamic.New(pts, dynamic.Options{T: stretchT})
	if err != nil {
		t.Fatal(err)
	}
	engineDone := time.Now()
	base, sp := eng.Base(), eng.Spanner()
	if base.M() != f.M() {
		t.Fatalf("bulk engine base has %d edges, frozen build %d", base.M(), f.M())
	}
	if sp.M() == 0 || sp.M() > base.M() {
		t.Fatalf("implausible spanner: %d edges of %d base", sp.M(), base.M())
	}

	// Sampled verification: 4096 draws bound stretch violations to ≤0.12%
	// of base edges at 99% confidence, and the observed maximum must obey
	// the configured bound.
	res := metrics.StretchSampled(base, sp, 4096, 1)
	if res.Disconnected {
		t.Fatal("sampled a base edge with no spanner path")
	}
	if res.Estimate > stretchT+1e-9 {
		t.Fatalf("sampled stretch %.4f exceeds bound %v", res.Estimate, stretchT)
	}
	t.Logf("n=%d m=%d: build %v, engine+spanner %v, sampled stretch %.4f over %d edges (≤%.2f%% may exceed, %.0f%% confidence)",
		n, f.M(), buildDone.Sub(start).Round(time.Millisecond),
		engineDone.Sub(buildDone).Round(time.Millisecond),
		res.Estimate, res.Sampled, 100*res.ViolationFraction, 100*res.Confidence)
}
