package topoctl

// Benchmark harness: one benchmark per experiment of DESIGN.md §4 (the
// tables recorded in EXPERIMENTS.md), plus micro-benchmarks for the core
// building blocks. Experiment benchmarks run the exp suite in Quick mode so
// `go test -bench=.` regenerates every table's workload; run
// `go run ./cmd/experiments` for the full-size tables.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"topoctl/internal/baseline"
	"topoctl/internal/core"
	"topoctl/internal/dist"
	"topoctl/internal/dynamic"
	"topoctl/internal/exp"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/greedy"
	"topoctl/internal/labels"
	"topoctl/internal/metrics"
	"topoctl/internal/netio"
	"topoctl/internal/routing"
	"topoctl/internal/ubg"
)

// benchExperiment runs one experiment table per iteration and reports a
// one-line digest so the bench log doubles as a sanity record.
func benchExperiment(b *testing.B, f func(exp.Config) (*exp.Table, error)) {
	b.Helper()
	cfg := exp.Config{Quick: true}
	for i := 0; i < b.N; i++ {
		t, err := f(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("%s: %d rows", t.ID, len(t.Rows))
		}
	}
}

func BenchmarkExpT1Stretch(b *testing.B)    { benchExperiment(b, exp.T1Stretch) }
func BenchmarkExpT2Degree(b *testing.B)     { benchExperiment(b, exp.T2Degree) }
func BenchmarkExpT3Weight(b *testing.B)     { benchExperiment(b, exp.T3Weight) }
func BenchmarkExpT4Rounds(b *testing.B)     { benchExperiment(b, exp.T4Rounds) }
func BenchmarkExpT5Baselines(b *testing.B)  { benchExperiment(b, exp.T5Baselines) }
func BenchmarkExpT6Alpha(b *testing.B)      { benchExperiment(b, exp.T6Alpha) }
func BenchmarkExpT7Dimension(b *testing.B)  { benchExperiment(b, exp.T7Dimension) }
func BenchmarkExpT8Power(b *testing.B)      { benchExperiment(b, exp.T8Power) }
func BenchmarkExpT9Fault(b *testing.B)      { benchExperiment(b, exp.T9Fault) }
func BenchmarkExpT10Energy(b *testing.B)    { benchExperiment(b, exp.T10Energy) }
func BenchmarkExpT11SeqVsDist(b *testing.B) { benchExperiment(b, exp.T11SeqVsDist) }
func BenchmarkExpT12Ablation(b *testing.B)  { benchExperiment(b, exp.T12Ablation) }
func BenchmarkExpT13Clouds(b *testing.B)    { benchExperiment(b, exp.T13Clouds) }
func BenchmarkExpT14Messages(b *testing.B)  { benchExperiment(b, exp.T14Messages) }

func BenchmarkExpF1CzumajZhao(b *testing.B)   { benchExperiment(b, exp.F1CzumajZhao) }
func BenchmarkExpF2ClusterGraph(b *testing.B) { benchExperiment(b, exp.F2ClusterGraph) }
func BenchmarkExpF4Leapfrog(b *testing.B)     { benchExperiment(b, exp.F4Leapfrog) }
func BenchmarkExpF5Doubling(b *testing.B)     { benchExperiment(b, exp.F5Doubling) }

// --- micro-benchmarks ---

func benchInstance(b *testing.B, n int) *ubg.Instance {
	b.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Seed: 1},
		ubg.Config{Alpha: 0.75, Model: ubg.ModelAll, Seed: 1},
	)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// benchInstanceDensity generates a connected instance at expected degree
// ~deg (unit radius), the density every realistic deployment harness in the
// repo targets. The default unit-box instance of benchInstance is nearly
// complete past n≈512, so the large point-to-point benchmarks use this
// instead: constant density keeps the edge count linear in n and the
// shortest paths long, which is the regime the bidirectional search core is
// built for.
func benchInstanceDensity(b *testing.B, n int, deg float64) *ubg.Instance {
	b.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Side: ubg.DensitySide(n, 2, 1, deg), Seed: 1},
		ubg.Config{Alpha: 0.75, Model: ubg.ModelAll, Seed: 1},
	)
	if err != nil {
		b.Fatal(err)
	}
	return inst
}

// BenchmarkCoreBuild measures the sequential relaxed greedy across n.
func BenchmarkCoreBuild(b *testing.B) {
	for _, n := range []int{64, 128, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inst := benchInstance(b, n)
			p, err := core.NewParams(0.5, 0.75, 2)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(inst.Points, inst.G, core.Options{Params: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDistBuild measures the distributed pipeline (simulation included).
func BenchmarkDistBuild(b *testing.B) {
	for _, n := range []int{64, 128} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inst := benchInstance(b, n)
			p, err := core.NewParams(0.5, 0.75, 2)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := dist.Build(inst.Points, inst.G, dist.Options{Params: p, Seed: 1}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSeqGreedy measures the exact greedy baseline. n ≤ 512 runs on
// the dense unit-box instance (the historical series); n ≥ 1024 on
// expected-degree-8 instances, where a dense box would be nearly complete
// and the benchmark would measure edge sorting instead of search.
func BenchmarkSeqGreedy(b *testing.B) {
	for _, n := range []int{128, 256, 512} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inst := benchInstance(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				greedy.Spanner(inst.G, 1.5)
			}
		})
	}
	for _, n := range []int{1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inst := benchInstanceDensity(b, n, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				greedy.Spanner(inst.G, 1.5)
			}
		})
	}
}

// BenchmarkRouteUncached measures the point-to-point serving primitive with
// the route cache out of the picture: shortest-path routes over a frozen
// spanner between uniform random pairs — exactly what a topoctld cache miss
// pays. Constant density (expected degree 8) keeps routes long as n grows,
// so this benchmark scales the search work rather than the topology
// construction.
func BenchmarkRouteUncached(b *testing.B) {
	for _, n := range []int{512, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inst := benchInstanceDensity(b, n, 8)
			sp := graph.Freeze(greedy.Spanner(inst.G, 1.5))
			router, err := routing.NewRouter(sp, inst.Points)
			if err != nil {
				b.Fatal(err)
			}
			queries := routing.RandomQueries(n, 256, 7)
			srch := graph.NewSearcher(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := queries[i%len(queries)]
				rt, err := router.RouteWith(srch, routing.SchemeShortestPath, q.S, q.T)
				if err != nil {
					b.Fatal(err)
				}
				if !rt.Delivered {
					b.Fatalf("undelivered %d->%d", q.S, q.T)
				}
			}
		})
	}
}

// labelQueries draws a query workload over n vertices: "uniform" is the
// RandomQueries distribution BenchmarkRouteUncached uses; "zipf" skews
// sources and destinations toward a hot set (PODS-style overlay traffic —
// the distribution the label oracle is supposed to win under, since hot
// pairs hit the same short label runs over and over).
func labelQueries(n int, mix string) []routing.Query {
	if mix == "uniform" {
		return routing.RandomQueries(n, 256, 7)
	}
	rng := rand.New(rand.NewSource(7))
	z := rand.NewZipf(rng, 1.3, 1, uint64(n-1))
	out := make([]routing.Query, 0, 256)
	for len(out) < 256 {
		s, t := int(z.Uint64()), int(z.Uint64())
		if s != t {
			out = append(out, routing.Query{S: s, T: t})
		}
	}
	return out
}

// BenchmarkRouteLabel measures the point-to-point distance primitive with
// and without the hub-label oracle, at constant density (expected degree
// 8) and under both uniform and zipfian query mixes. The labels arm is the
// acceptance target: ≥5× under the bidi arm at n=4096 with 0 allocs/op.
// label-B/vtx reports the oracle's storage cost, fallbacks/op how many
// queries the oracle declined (0 for a freshly built oracle).
func BenchmarkRouteLabel(b *testing.B) {
	for _, n := range []int{512, 1024, 4096} {
		inst := benchInstanceDensity(b, n, 8)
		sp := graph.Freeze(greedy.Spanner(inst.G, 1.5))
		oracle := labels.Build(sp, labels.Options{})
		st := oracle.Stats()
		for _, mix := range []string{"uniform", "zipf"} {
			queries := labelQueries(n, mix)
			for _, arm := range []string{"labels", "bidi"} {
				b.Run(fmt.Sprintf("n=%d/mix=%s/%s", n, mix, arm), func(b *testing.B) {
					router, err := routing.NewRouter(sp, inst.Points)
					if err != nil {
						b.Fatal(err)
					}
					if arm == "labels" {
						router.SetDistanceOracle(oracle)
						b.ReportMetric(st.BytesPerVertex, "label-B/vtx")
					}
					srch := graph.NewSearcher(n)
					fallbacks := 0
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						q := queries[i%len(queries)]
						d, fromLabels, err := router.Distance(srch, q.S, q.T)
						if err != nil {
							b.Fatal(err)
						}
						if d >= graph.Inf {
							b.Fatalf("unreachable %d->%d on a connected instance", q.S, q.T)
						}
						if !fromLabels {
							fallbacks++
						}
					}
					if arm == "labels" {
						b.ReportMetric(float64(fallbacks)/float64(b.N), "fallbacks/op")
					}
				})
			}
		}
	}
}

// BenchmarkLabelBuild measures full hub-label construction at the freeze
// boundary — the cost a labels-enabled topoctld pays per oracle rebuild
// (stale horizon), not per mutation (additions maintain incrementally).
func BenchmarkLabelBuild(b *testing.B) {
	for _, n := range []int{512, 1024, 4096} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			inst := benchInstanceDensity(b, n, 8)
			sp := graph.Freeze(greedy.Spanner(inst.G, 1.5))
			b.ResetTimer()
			var st labels.Stats
			for i := 0; i < b.N; i++ {
				st = labels.Build(sp, labels.Options{}).Stats()
			}
			b.ReportMetric(float64(st.Entries)/float64(n), "entries/vtx")
			b.ReportMetric(st.BytesPerVertex, "label-B/vtx")
		})
	}
}

// BenchmarkBaselines measures each classical construction.
func BenchmarkBaselines(b *testing.B) {
	inst := benchInstance(b, 256)
	for _, kind := range baseline.Kinds() {
		b.Run(kind.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := baseline.Build(kind, inst.Points, inst.G, baseline.Options{T: 1.5}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStretchVerification measures the exact stretch metric, the
// workhorse of the test suite.
func BenchmarkStretchVerification(b *testing.B) {
	inst := benchInstance(b, 256)
	sp := greedy.Spanner(inst.G, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s := metrics.Stretch(inst.G, sp); s > 1.5+1e-9 {
			b.Fatal("stretch violation")
		}
	}
}

// BenchmarkUBGBuild measures grid-accelerated network construction.
func BenchmarkUBGBuild(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Side: 4, Seed: 1})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ubg.Build(pts, ubg.Config{Alpha: 0.75, Model: ubg.ModelAll}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRouting measures the routing schemes over a spanner.
func BenchmarkRouting(b *testing.B) {
	inst := benchInstance(b, 256)
	sp := greedy.Spanner(inst.G, 1.5)
	router, err := routing.NewRouter(sp, inst.Points)
	if err != nil {
		b.Fatal(err)
	}
	queries := routing.RandomQueries(inst.G.N(), 50, 1)
	for _, scheme := range []routing.Scheme{routing.SchemeShortestPath, routing.SchemeGreedy, routing.SchemeCompass} {
		b.Run(scheme.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := router.Evaluate(scheme, queries, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChurn compares incremental spanner maintenance (internal/dynamic)
// against rebuild-from-scratch for single-operation updates: each iteration
// moves one node a small step, then either repairs locally or rebuilds the
// α-UBG and greedy spanner on the updated point set.
func BenchmarkChurn(b *testing.B) {
	const t = 1.5
	for _, n := range []int{128, 256, 512, 1024, 4096} {
		// Expected degree ~8 at unit radius — the density every other
		// harness in the repo targets. At realistic densities the t·R
		// repair ball is a vanishing fraction of the deployment, which is
		// exactly the locality the incremental engine exploits.
		side := ubg.DensitySide(n, 2, 1, 8)
		pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Side: side, Seed: 1})

		b.Run(fmt.Sprintf("incremental/n=%d", n), func(b *testing.B) {
			eng, err := dynamic.New(pts, dynamic.Options{T: t})
			if err != nil {
				b.Fatal(err)
			}
			rng := rand.New(rand.NewSource(2))
			ids := eng.IDs(nil)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := ids[rng.Intn(len(ids))]
				p := eng.Point(id).Clone()
				p[0] += rng.NormFloat64() * 0.1
				p[1] += rng.NormFloat64() * 0.1
				if err := eng.Move(id, p); err != nil {
					b.Fatal(err)
				}
			}
		})

		b.Run(fmt.Sprintf("rebuild/n=%d", n), func(b *testing.B) {
			cur := make([]geom.Point, len(pts))
			for i, p := range pts {
				cur[i] = p.Clone()
			}
			rng := rand.New(rand.NewSource(2))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := rng.Intn(len(cur))
				cur[id][0] += rng.NormFloat64() * 0.1
				cur[id][1] += rng.NormFloat64() * 0.1
				g, err := ubg.Build(cur, ubg.Config{Alpha: 1, Model: ubg.ModelAll})
				if err != nil {
					b.Fatal(err)
				}
				greedy.Spanner(g, t)
			}
		})
	}
}

// BenchmarkChurnExport measures the commit+export cycle the serving layer
// runs per mutation batch on n=512: one committed Move followed by a
// snapshot publish. The full variant deep-copies both graphs and every
// point (the pre-frozen Export path, kept as the reference); the frozen
// variant delta-rebuilds only the adjacency rows the repair touched and
// shares everything else with the previous snapshot, which is what drops
// the per-commit allocation count by orders of magnitude.
func BenchmarkChurnExport(b *testing.B) {
	const n, t = 512, 1.5
	side := ubg.DensitySide(n, 2, 1, 8)
	pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Side: side, Seed: 1})

	run := func(b *testing.B, export func(eng *dynamic.Engine) int) {
		eng, err := dynamic.New(pts, dynamic.Options{T: t})
		if err != nil {
			b.Fatal(err)
		}
		rng := rand.New(rand.NewSource(2))
		ids := eng.IDs(nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := ids[rng.Intn(len(ids))]
			p := eng.Point(id).Clone()
			p[0] += rng.NormFloat64() * 0.1
			p[1] += rng.NormFloat64() * 0.1
			if err := eng.Move(id, p); err != nil {
				b.Fatal(err)
			}
			if export(eng) == 0 {
				b.Fatal("empty export")
			}
		}
	}

	b.Run("full", func(b *testing.B) {
		run(b, func(eng *dynamic.Engine) int {
			_, _, base, sp := eng.Export()
			return base.N() + sp.M()
		})
	})
	b.Run("frozen", func(b *testing.B) {
		run(b, func(eng *dynamic.Engine) int {
			_, _, base, sp := eng.ExportFrozen()
			return base.N() + sp.M()
		})
	})
}

// BenchmarkNetIORoundTrip measures instance serialization.
func BenchmarkNetIORoundTrip(b *testing.B) {
	inst := benchInstance(b, 512)
	in := &netio.Instance{Points: inst.Points, G: inst.G, Alpha: 0.75}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := netio.Write(&buf, in); err != nil {
			b.Fatal(err)
		}
		if _, err := netio.Read(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgeConnectivity measures the fault-structure verifier.
func BenchmarkEdgeConnectivity(b *testing.B) {
	inst := benchInstance(b, 96)
	sp := greedy.Spanner(inst.G, 1.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if metrics.EdgeConnectivity(sp) < 1 {
			b.Fatal("disconnected spanner")
		}
	}
}

// BenchmarkFaultTolerantBuild measures the k-fault-tolerant relaxed build.
func BenchmarkFaultTolerantBuild(b *testing.B) {
	inst := benchInstance(b, 96)
	p, err := core.NewParams(0.5, 0.75, 2)
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 2} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Build(inst.Points, inst.G, core.Options{Params: p, FaultK: k}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuildLarge measures the million-vertex build path: the parallel
// slab-backed frozen-CSR α-UBG construction at constant density (expected
// base degree ~8). It reports bytes per vertex of the finished snapshot —
// the figure that decides whether n=10^6 fits commodity memory — alongside
// allocs/op, which must stay sublinear in the edge count (the point of the
// two-pass pre-sized build). The engine arm adds the dynamic bulk load on
// top: frozen build + thaw + SEQ-GREEDY spanner.
func BenchmarkBuildLarge(b *testing.B) {
	// The million-vertex arm is opt-in (BUILD_LARGE=1, same gate as the
	// build-large smoke test) so routine bench runs stay fast; run it with
	// -benchtime=1x unless you want several multi-second samples.
	sizes := []int{65536, 262144}
	if os.Getenv("BUILD_LARGE") != "" {
		sizes = append(sizes, 1<<20)
	}
	for _, n := range sizes {
		pts := geom.GeneratePoints(geom.CloudConfig{
			Kind: geom.CloudUniform, N: n, Dim: 2, Side: ubg.DensitySide(n, 2, 1, 8), Seed: 1,
		})
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			var f *graph.Frozen
			for i := 0; i < b.N; i++ {
				var err error
				f, err = ubg.BuildFrozen(pts, ubg.Config{Alpha: 1})
				if err != nil {
					b.Fatal(err)
				}
			}
			// CSR footprint: 16 bytes per halfedge (two per edge) plus an
			// 8-byte row span per vertex.
			bytes := 16*2*int64(f.M()) + 8*int64(f.N())
			b.ReportMetric(float64(bytes)/float64(n), "B/vtx")
			b.ReportMetric(float64(f.M())/float64(n), "edges/vtx")
		})
	}
	b.Run("engine/n=65536", func(b *testing.B) {
		n := 65536
		pts := geom.GeneratePoints(geom.CloudConfig{
			Kind: geom.CloudUniform, N: n, Dim: 2, Side: ubg.DensitySide(n, 2, 1, 8), Seed: 1,
		})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			eng, err := dynamic.New(pts, dynamic.Options{T: 1.5})
			if err != nil {
				b.Fatal(err)
			}
			if eng.Base().M() == 0 {
				b.Fatal("empty base graph")
			}
		}
	})
}
