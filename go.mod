module topoctl

go 1.24
