// Package exp implements the experiment suite of DESIGN.md §4: one
// regenerable table per theorem/figure of the paper. Each experiment
// returns a Table that cmd/experiments renders (these are the tables
// recorded in EXPERIMENTS.md) and bench_test.go wraps one benchmark around
// each.
package exp

import (
	"fmt"
	"strings"
)

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "T1-stretch").
	ID string
	// Title describes what the table shows and which paper claim it checks.
	Title string
	// Header labels the columns.
	Header []string
	// Rows hold the measurements, one formatted cell per column.
	Rows [][]string
	// Notes are appended caveats (substitutions, bands, interpretation).
	Notes []string
}

// AddRow appends a row of values formatted with %v-ish defaults: floats get
// 4 significant digits, everything else fmt.Sprint.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render formats the table as aligned plain text with a title line.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\nnote: %s\n", n)
	}
	return b.String()
}

// Config scales the experiment suite.
type Config struct {
	// Quick shrinks instance sizes for fast benchmark iterations; the full
	// configuration is what EXPERIMENTS.md records.
	Quick bool
	// Seed offsets all instance seeds (default 0 = the recorded tables).
	Seed int64
	// Reps overrides the number of independent instances aggregated per
	// table cell in the scaling experiments (default: 3 full, 1 quick).
	Reps int
}

// reps returns the per-cell repetition count.
func (c Config) reps() int {
	if c.Reps > 0 {
		return c.Reps
	}
	if c.Quick {
		return 1
	}
	return 3
}

// sizes returns the instance-size ladder for scaling experiments.
func (c Config) sizes() []int {
	if c.Quick {
		return []int{48, 96}
	}
	return []int{64, 128, 256, 512}
}

// distSizes returns the (smaller) ladder for distributed-round experiments.
func (c Config) distSizes() []int {
	if c.Quick {
		return []int{32, 64}
	}
	return []int{32, 64, 128, 256}
}

func (c Config) baseN() int {
	if c.Quick {
		return 96
	}
	return 256
}
