package exp

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

var quick = Config{Quick: true}

// TestAllExperimentsRunQuick executes the entire suite in quick mode: every
// experiment must produce a non-empty, well-formed table.
func TestAllExperimentsRunQuick(t *testing.T) {
	tables, err := All(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Names()) {
		t.Fatalf("got %d tables, want %d", len(tables), len(Names()))
	}
	for i, tb := range tables {
		if tb.ID != Names()[i] {
			t.Errorf("table %d ID %q, want %q", i, tb.ID, Names()[i])
		}
		if len(tb.Rows) == 0 {
			t.Errorf("%s: empty table", tb.ID)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Errorf("%s: row width %d != header %d", tb.ID, len(row), len(tb.Header))
			}
		}
		if !strings.Contains(tb.Render(), tb.ID) {
			t.Errorf("%s: render missing ID", tb.ID)
		}
	}
}

// column returns the parsed float values of a named column.
func column(t *testing.T, tb *Table, name string) []float64 {
	t.Helper()
	idx := -1
	for i, h := range tb.Header {
		if h == name {
			idx = i
			break
		}
	}
	if idx == -1 {
		t.Fatalf("%s: no column %q in %v", tb.ID, name, tb.Header)
	}
	var out []float64
	for _, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[idx], 64)
		if err != nil {
			if row[idx] == "inf" {
				v = math.Inf(1)
			} else {
				t.Fatalf("%s: cell %q not a number", tb.ID, row[idx])
			}
		}
		out = append(out, v)
	}
	return out
}

// TestT1MarginsNonNegative: the stretch guarantee must hold in the recorded
// table itself.
func TestT1MarginsNonNegative(t *testing.T) {
	tb, err := T1Stretch(quick)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range column(t, tb, "min margin") {
		if m < -1e-9 {
			t.Errorf("row %d: negative margin %v", i, m)
		}
	}
}

// TestT9FaultTableShape: k >= 1 rows must be violation-free.
func TestT9FaultTableShape(t *testing.T) {
	tb, err := T9Fault(quick)
	if err != nil {
		t.Fatal(err)
	}
	ks := column(t, tb, "k")
	vs := column(t, tb, "violations")
	for i := range ks {
		if ks[i] >= 1 && vs[i] > 0 {
			t.Errorf("row %d: k=%v had %v violations", i, ks[i], vs[i])
		}
	}
}

// TestF1NoViolations: the geometric lemma must hold exactly.
func TestF1NoViolations(t *testing.T) {
	tb, err := F1CzumajZhao(quick)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range column(t, tb, "violations") {
		if v != 0 {
			t.Errorf("row %d: %v Czumaj–Zhao violations", i, v)
		}
	}
	for i, tested := range column(t, tb, "triples") {
		if tested < 100 {
			t.Errorf("row %d: only %v triples tested", i, tested)
		}
	}
}

// TestF2ClusterGraphBounds: Lemma 5 must hold exactly; the Lemma 7
// distortion must stay in a constant band (the stated (1+6δ)/(1−2δ) factor
// is optimistic on discrete sparse spanners at small δ — see the table
// note — but O(1) is what the algorithm's guarantees need).
func TestF2ClusterGraphBounds(t *testing.T) {
	tb, err := F2ClusterGraph(quick)
	if err != nil {
		t.Fatal(err)
	}
	dist := column(t, tb, "max distortion")
	bound := column(t, tb, "Lemma 7 bound")
	for i := range dist {
		if dist[i] < 1-1e-9 {
			t.Errorf("row %d: distortion %v < 1 (H shorter than G')", i, dist[i])
		}
		if dist[i] > 2*bound[i]+2 {
			t.Errorf("row %d: distortion %v outside the constant band (Lemma 7 bound %v)", i, dist[i], bound[i])
		}
	}
	for i, r := range column(t, tb, "max inter w / (2δ+1)W") {
		if r > 1+1e-9 {
			t.Errorf("row %d: Lemma 5 ratio %v > 1", i, r)
		}
	}
}

// TestF4NoLeapfrogViolations on the real output.
func TestF4NoLeapfrogViolations(t *testing.T) {
	tb, err := F4Leapfrog(quick)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range column(t, tb, "violations") {
		if v != 0 {
			t.Errorf("row %d: %v leapfrog violations", i, v)
		}
	}
}

// TestTableRenderAlignment: rendered rows line up.
func TestTableRenderAlignment(t *testing.T) {
	tb := &Table{ID: "X", Title: "test", Header: []string{"a", "bbbb"}}
	tb.AddRow(1, 2.5)
	tb.AddRow("xx", "y")
	out := tb.Render()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title, blank, header, rule, 2 rows.
	if len(lines) != 6 {
		t.Fatalf("render lines = %d: %q", len(lines), out)
	}
	if len(lines[2]) != len(lines[3]) {
		t.Errorf("header and rule lengths differ: %q vs %q", lines[2], lines[3])
	}
}

func TestLogStar(t *testing.T) {
	if logStar(2) != 1 || logStar(4) != 2 || logStar(16) != 3 || logStar(65536) != 4 {
		t.Errorf("logStar wrong: %v %v %v %v", logStar(2), logStar(4), logStar(16), logStar(65536))
	}
}
