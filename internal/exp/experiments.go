package exp

import (
	"fmt"
	"math"

	"strings"
	"topoctl/internal/baseline"
	"topoctl/internal/core"
	"topoctl/internal/dist"
	"topoctl/internal/fault"
	"topoctl/internal/geom"
	"topoctl/internal/graph"

	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

// instance generates the standard connected α-UBG workload.
func instance(n, d int, alpha float64, kind geom.Cloud, model ubg.Model, seed int64) (*ubg.Instance, error) {
	if kind == 0 {
		kind = geom.CloudUniform
	}
	return ubg.GenerateConnected(
		geom.CloudConfig{Kind: kind, N: n, Dim: d, Seed: seed},
		ubg.Config{Alpha: alpha, Model: model, P: 0.5, Seed: seed},
	)
}

func buildSeq(inst *ubg.Instance, eps float64, opts core.Options) (*core.Result, error) {
	p, err := core.NewParams(eps, inst.Alpha, inst.Dim)
	if err != nil {
		return nil, err
	}
	opts.Params = p
	return core.Build(inst.Points, inst.G, opts)
}

// T1Stretch — Theorem 10: the output is a (1+ε)-spanner for every ε.
func T1Stretch(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T1-stretch",
		Title:  "Theorem 10: measured stretch vs guarantee t = 1+ε (d=2, α=0.75, uniform)",
		Header: []string{"eps", "n", "t", "worst stretch", "min margin", "reps", "avg spanner edges"},
		Notes:  []string{"stretch is exact (max over all base-graph edges) and aggregated as the worst over independent instances; min margin = t − worst stretch must be ≥ 0"},
	}
	for _, eps := range []float64{0.25, 0.5, 1.0} {
		for _, n := range cfg.sizes() {
			type repOut struct {
				stretch, t float64
				edges      int
			}
			outs, err := parallelReps(cfg.reps(), func(rep int) (repOut, error) {
				inst, err := instance(n, 2, 0.75, 0, ubg.ModelAll, 100+cfg.Seed+int64(n)+int64(rep)*7919)
				if err != nil {
					return repOut{}, err
				}
				res, err := buildSeq(inst, eps, core.Options{})
				if err != nil {
					return repOut{}, err
				}
				return repOut{stretch: metrics.Stretch(inst.G, res.Spanner), t: res.Params.T, edges: res.Spanner.M()}, nil
			})
			if err != nil {
				return nil, err
			}
			worst := 0.0
			var tParam, edgeSum float64
			for _, o := range outs {
				if o.stretch > worst {
					worst = o.stretch
				}
				tParam = o.t
				edgeSum += float64(o.edges)
			}
			t.AddRow(eps, n, tParam, worst, tParam-worst, cfg.reps(), edgeSum/float64(cfg.reps()))
		}
	}
	return t, nil
}

// T2Degree — Theorem 11: Δ(G') = O(1), independent of n.
func T2Degree(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T2-degree",
		Title:  "Theorem 11: maximum spanner degree stays constant as n grows (ε=0.5)",
		Header: []string{"n", "worst input maxdeg", "worst spanner maxdeg", "avg spanner avgdeg", "reps"},
	}
	for _, n := range cfg.sizes() {
		type repOut struct {
			inDeg int
			deg   metrics.DegreeStats
		}
		outs, err := parallelReps(cfg.reps(), func(rep int) (repOut, error) {
			inst, err := instance(n, 2, 0.75, 0, ubg.ModelAll, 200+cfg.Seed+int64(n)+int64(rep)*7919)
			if err != nil {
				return repOut{}, err
			}
			res, err := buildSeq(inst, 0.5, core.Options{})
			if err != nil {
				return repOut{}, err
			}
			return repOut{inDeg: inst.G.MaxDegree(), deg: metrics.Degrees(res.Spanner)}, nil
		})
		if err != nil {
			return nil, err
		}
		inDeg, outDeg := 0, 0
		var avgSum float64
		for _, o := range outs {
			if o.inDeg > inDeg {
				inDeg = o.inDeg
			}
			if o.deg.Max > outDeg {
				outDeg = o.deg.Max
			}
			avgSum += o.deg.Avg
		}
		t.AddRow(n, inDeg, outDeg, avgSum/float64(cfg.reps()), cfg.reps())
	}
	return t, nil
}

// T3Weight — Theorem 13: w(G') = O(w(MST)), ratio constant in n.
func T3Weight(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T3-weight",
		Title:  "Theorem 13: spanner weight over MST weight stays constant as n grows (ε=0.5)",
		Header: []string{"n", "avg w(G)", "avg w(MST)", "avg w(G')", "worst w(G')/w(MST)", "reps"},
	}
	for _, n := range cfg.sizes() {
		type repOut struct {
			wg, wmst, wsp float64
		}
		outs, err := parallelReps(cfg.reps(), func(rep int) (repOut, error) {
			inst, err := instance(n, 2, 0.75, 0, ubg.ModelAll, 300+cfg.Seed+int64(n)+int64(rep)*7919)
			if err != nil {
				return repOut{}, err
			}
			res, err := buildSeq(inst, 0.5, core.Options{})
			if err != nil {
				return repOut{}, err
			}
			return repOut{wg: inst.G.TotalWeight(), wmst: inst.G.MSTWeight(), wsp: res.Spanner.TotalWeight()}, nil
		})
		if err != nil {
			return nil, err
		}
		var wg, wmst, wsp, worst float64
		for _, o := range outs {
			wg += o.wg
			wmst += o.wmst
			wsp += o.wsp
			if r := o.wsp / o.wmst; r > worst {
				worst = r
			}
		}
		r := float64(cfg.reps())
		t.AddRow(n, wg/r, wmst/r, wsp/r, worst, cfg.reps())
	}
	return t, nil
}

// T4Rounds — Theorems 14–21: distributed round complexity.
func T4Rounds(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T4-rounds",
		Title:  "Theorems 14–21: distributed rounds vs n (ε=0.5, Luby MIS substitution)",
		Header: []string{"n", "rounds", "messages", "phases", "rounds/log²n", "rounds/(logn·log*n)"},
		Notes: []string{
			"Luby MIS (O(log n) w.h.p.) substitutes the O(log* n) KMW MIS; the paper's bound predicts rounds/(log n·log* n) constant, ours predicts rounds/log² n approximately constant — both normalizations are shown",
			"empty bins cost no rounds: no node has a query to initiate, so no protocol step runs (DESIGN.md §3.4)",
		},
	}
	for _, n := range cfg.distSizes() {
		inst, err := instance(n, 2, 0.75, 0, ubg.ModelAll, 400+cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		p, err := core.NewParams(0.5, 0.75, 2)
		if err != nil {
			return nil, err
		}
		res, err := dist.Build(inst.Points, inst.G, dist.Options{Params: p, Seed: cfg.Seed + 1})
		if err != nil {
			return nil, err
		}
		l := math.Log2(float64(n))
		t.AddRow(n, res.Rounds, res.Messages, len(res.Phases),
			float64(res.Rounds)/(l*l), float64(res.Rounds)/(l*logStar(float64(n))))
	}
	return t, nil
}

// logStar is the iterated logarithm (base 2).
func logStar(x float64) float64 {
	s := 0.0
	for x > 1 {
		x = math.Log2(x)
		s++
	}
	if s == 0 {
		return 1
	}
	return s
}

// T5Baselines — §1.3: head-to-head against classical topologies.
func T5Baselines(cfg Config) (*Table, error) {
	n := cfg.baseN()
	inst, err := instance(n, 2, 1.0, 0, ubg.ModelAll, 500+cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "T5-baselines",
		Title:  fmt.Sprintf("Baseline comparison on one UDG instance (n=%d, α=1)", n),
		Header: []string{"topology", "edges", "maxdeg", "avgdeg", "stretch", "w/MST", "power/MST"},
		Notes: []string{
			"relaxed-greedy is the paper's algorithm (ε=0.5 → t=1.5); seq-greedy is the exact Das–Narasimhan greedy at the same t",
			"MST/RNG/LMST have unbounded worst-case stretch (visible here); Yao/Gabriel bound stretch only in weaker senses",
		},
	}
	add := func(name string, sp *graph.Graph) {
		r := metrics.Evaluate(name, inst.G, sp)
		stretch := fmt.Sprintf("%.4g", r.Stretch)
		if math.IsInf(r.Stretch, 1) {
			stretch = "inf"
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(r.Edges), fmt.Sprint(r.MaxDegree),
			fmt.Sprintf("%.3g", r.AvgDegree), stretch,
			fmt.Sprintf("%.4g", r.WeightRatio), fmt.Sprintf("%.4g", r.PowerRatio),
		})
	}
	res, err := buildSeq(inst, 0.5, core.Options{})
	if err != nil {
		return nil, err
	}
	add("relaxed-greedy", res.Spanner)
	for _, kind := range baseline.Kinds() {
		sp, err := baseline.Build(kind, inst.Points, inst.G, baseline.Options{T: 1.5})
		if err != nil {
			return nil, err
		}
		add(kind.String(), sp)
	}
	add("input-UDG", inst.G)
	return t, nil
}

// T6Alpha — α-UBG generality across α and grey-zone models.
func T6Alpha(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T6-alpha",
		Title:  "α-UBG generality: guarantees hold across α and every grey-zone model (n=base, ε=0.5)",
		Header: []string{"alpha", "grey-zone", "edges", "stretch", "t", "maxdeg", "w/MST"},
	}
	n := cfg.baseN()
	models := []ubg.Model{ubg.ModelAll, ubg.ModelBernoulli, ubg.ModelFalloff, ubg.ModelNone}
	for _, alpha := range []float64{0.5, 0.65, 0.8, 1.0} {
		for _, model := range models {
			if alpha == 1.0 && model != ubg.ModelAll {
				continue // no grey zone at alpha = 1
			}
			inst, err := instance(n, 2, alpha, 0, model, 600+cfg.Seed)
			if err != nil {
				return nil, err
			}
			res, err := buildSeq(inst, 0.5, core.Options{})
			if err != nil {
				return nil, err
			}
			s := metrics.Stretch(inst.G, res.Spanner)
			t.AddRow(alpha, model.String(), inst.G.M(), s, res.Params.T,
				res.Spanner.MaxDegree(), metrics.WeightRatio(inst.G, res.Spanner))
		}
	}
	return t, nil
}

// T7Dimension — d >= 2 generality.
func T7Dimension(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T7-dimension",
		Title:  "Dimension generality: d = 2, 3, 4 (ε=0.5, α=0.75)",
		Header: []string{"d", "n", "edges", "stretch", "maxdeg", "w/MST"},
	}
	n := cfg.baseN() / 2
	for _, d := range []int{2, 3, 4} {
		inst, err := instance(n, d, 0.75, 0, ubg.ModelAll, 700+cfg.Seed)
		if err != nil {
			return nil, err
		}
		res, err := buildSeq(inst, 0.5, core.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(d, n, inst.G.M(), metrics.Stretch(inst.G, res.Spanner),
			res.Spanner.MaxDegree(), metrics.WeightRatio(inst.G, res.Spanner))
	}
	return t, nil
}

// T8Power — §1.6.3: power cost of the output vs MST and input.
func T8Power(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T8-power",
		Title:  "§1.6.3 power-cost measure: Σ_u max incident weight, relative to MST (ε=0.5)",
		Header: []string{"n", "power(G)", "power(MST)", "power(G')", "G'/MST"},
		Notes:  []string{"the extension claims the output is lightweight under power cost too: the ratio must stay in a constant band"},
	}
	for _, n := range cfg.sizes() {
		inst, err := instance(n, 2, 0.75, 0, ubg.ModelAll, 800+cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		res, err := buildSeq(inst, 0.5, core.Options{})
		if err != nil {
			return nil, err
		}
		mst := graph.FromEdges(inst.G.N(), inst.G.MST())
		pm := metrics.PowerCost(mst)
		t.AddRow(n, metrics.PowerCost(inst.G), pm, metrics.PowerCost(res.Spanner),
			metrics.PowerCost(res.Spanner)/pm)
	}
	return t, nil
}

// T9Fault — §1.6.1: k-fault-tolerant spanners under random fault injection.
func T9Fault(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T9-fault",
		Title:  "§1.6.1 fault tolerance: violations under random fault injection (t=1.5)",
		Header: []string{"mode", "k", "edges", "trials", "violations", "worst stretch"},
		Notes:  []string{"k=0 rows are the negative control: the plain greedy spanner may break under faults; k≥1 rows must show zero violations"},
	}
	n := cfg.baseN() / 2
	inst, err := instance(n, 2, 0.9, 0, ubg.ModelAll, 900+cfg.Seed)
	if err != nil {
		return nil, err
	}
	trials := 30
	if cfg.Quick {
		trials = 8
	}
	addRow := func(name string, k int, sp *graph.Graph, mode fault.Mode) {
		kf := k
		if kf == 0 {
			kf = 2 // stress the control with 2 faults
		}
		res := fault.CheckFaults(inst.G, sp, 1.5, kf, trials, mode, 42+cfg.Seed)
		worst := fmt.Sprintf("%.4g", res.WorstStretch)
		if res.WorstStretch > 1e17 {
			worst = "disconnected"
		}
		t.Rows = append(t.Rows, []string{
			name, fmt.Sprint(k), fmt.Sprint(sp.M()),
			fmt.Sprint(res.Trials), fmt.Sprint(res.Violations), worst,
		})
	}
	for _, mode := range []fault.Mode{fault.EdgeFaults, fault.VertexFaults} {
		for _, k := range []int{0, 1, 2} {
			sp, err := fault.Spanner(inst.G, 1.5, k, mode)
			if err != nil {
				return nil, err
			}
			addRow("greedy/"+mode.String(), k, sp, mode)
		}
	}
	// The relaxed algorithm's own fault-tolerant variant, both modes.
	for _, k := range []int{1, 2} {
		res, err := buildSeq(inst, 0.5, core.Options{FaultK: k})
		if err != nil {
			return nil, err
		}
		addRow("relaxed/edge", k, res.Spanner, fault.EdgeFaults)
	}
	for _, k := range []int{1, 2} {
		res, err := buildSeq(inst, 0.5, core.Options{FaultK: k, FaultVertexMode: true})
		if err != nil {
			return nil, err
		}
		addRow("relaxed/vertex", k, res.Spanner, fault.VertexFaults)
	}
	return t, nil
}

// T10Energy — §1.6.2: energy metric c·|uv|^γ.
func T10Energy(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T10-energy",
		Title:  "§1.6.2 energy metric w = |uv|^γ: the output t-spans the energy metric (ε=0.5)",
		Header: []string{"gamma", "edges", "energy stretch", "t", "energy w/MST(energy)"},
	}
	n := cfg.baseN() / 2
	for _, gamma := range []float64{1, 2, 3, 4} {
		inst, err := instance(n, 2, 0.75, 0, ubg.ModelAll, 1000+cfg.Seed)
		if err != nil {
			return nil, err
		}
		m := core.Metric{Coeff: 1, Gamma: gamma}
		res, err := buildSeq(inst, 0.5, core.Options{Metric: m})
		if err != nil {
			return nil, err
		}
		s := metrics.StretchVsWeights(inst.G, res.Spanner, func(_, _ int, d float64) float64 {
			return m.Weight(d)
		})
		// Energy-weighted base graph for the MST comparison.
		eg := graph.New(inst.G.N())
		for _, e := range inst.G.EdgesUnordered() {
			eg.AddEdge(e.U, e.V, m.Weight(e.W))
		}
		t.AddRow(gamma, res.Spanner.M(), s, res.Params.T, res.Spanner.TotalWeight()/eg.MSTWeight())
	}
	return t, nil
}

// T11SeqVsDist — §2 vs §3: both pipelines on identical instances.
func T11SeqVsDist(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T11-seq-vs-dist",
		Title:  "Sequential (§2) vs distributed (§3) on identical instances (ε=0.5)",
		Header: []string{"n", "seq edges", "dist edges", "seq stretch", "dist stretch", "seq maxdeg", "dist maxdeg", "rounds"},
		Notes:  []string{"outputs differ (greedy peeling vs MIS cluster covers) but both must satisfy all three guarantees"},
	}
	for _, n := range cfg.distSizes() {
		inst, err := instance(n, 2, 0.75, 0, ubg.ModelAll, 1100+cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		p, err := core.NewParams(0.5, 0.75, 2)
		if err != nil {
			return nil, err
		}
		seq, err := core.Build(inst.Points, inst.G, core.Options{Params: p})
		if err != nil {
			return nil, err
		}
		dst, err := dist.Build(inst.Points, inst.G, dist.Options{Params: p, Seed: cfg.Seed + 2})
		if err != nil {
			return nil, err
		}
		t.AddRow(n, seq.Spanner.M(), dst.Spanner.M(),
			metrics.Stretch(inst.G, seq.Spanner), metrics.Stretch(inst.G, dst.Spanner),
			seq.Spanner.MaxDegree(), dst.Spanner.MaxDegree(), dst.Rounds)
	}
	return t, nil
}

// T13Clouds — workload-shape robustness: the guarantees must hold on every
// deployment pattern, not just uniform scatter.
func T13Clouds(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T13-clouds",
		Title:  "Deployment-shape robustness: all guarantees across point-cloud workloads (ε=0.5, α=0.75)",
		Header: []string{"cloud", "n", "edges", "stretch", "maxdeg", "w/MST"},
		Notes:  []string{"clustered stresses the cluster covers, corridor maximizes hop paths, grid-jitter is the engineered-deployment pattern"},
	}
	n := cfg.baseN()
	for _, kind := range []geom.Cloud{geom.CloudUniform, geom.CloudClustered, geom.CloudCorridor, geom.CloudGridJitter} {
		inst, err := instance(n, 2, 0.75, kind, ubg.ModelAll, 1700+cfg.Seed)
		if err != nil {
			return nil, err
		}
		res, err := buildSeq(inst, 0.5, core.Options{})
		if err != nil {
			return nil, err
		}
		t.AddRow(kind.String(), n, inst.G.M(), metrics.Stretch(inst.G, res.Spanner),
			res.Spanner.MaxDegree(), metrics.WeightRatio(inst.G, res.Spanner))
	}
	return t, nil
}

// T14Messages — message complexity of the distributed protocol, broken down
// by step, across n.
func T14Messages(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T14-messages",
		Title:  "Distributed message complexity by protocol step (ε=0.5)",
		Header: []string{"n", "total msgs", "gather %", "mis %", "clustergraph %", "other %", "words/msg"},
		Notes:  []string{"the k-hop gathers dominate, as the paper's information-gathering structure predicts; MIS traffic is comparatively tiny"},
	}
	for _, n := range cfg.distSizes() {
		inst, err := instance(n, 2, 0.75, 0, ubg.ModelAll, 1800+cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		p, err := core.NewParams(0.5, 0.75, 2)
		if err != nil {
			return nil, err
		}
		res, err := dist.Build(inst.Points, inst.G, dist.Options{Params: p, Seed: cfg.Seed + 3})
		if err != nil {
			return nil, err
		}
		var gather, misMsgs, cgMsgs, other int64
		for step, c := range res.PerStep {
			switch {
			case strings.Contains(step, "gather"):
				gather += c.Messages
			case strings.Contains(step, "mis"):
				misMsgs += c.Messages
			case strings.Contains(step, "clustergraph"):
				cgMsgs += c.Messages
			default:
				other += c.Messages
			}
		}
		total := float64(res.Messages)
		t.AddRow(n, res.Messages,
			fmt.Sprintf("%.1f", 100*float64(gather)/total),
			fmt.Sprintf("%.2f", 100*float64(misMsgs)/total),
			fmt.Sprintf("%.1f", 100*float64(cgMsgs)/total),
			fmt.Sprintf("%.1f", 100*float64(other)/total),
			fmt.Sprintf("%.1f", float64(res.Words)/total))
	}
	return t, nil
}

// T12Ablation — contribution of each design ingredient.
func T12Ablation(cfg Config) (*Table, error) {
	n := cfg.baseN()
	inst, err := instance(n, 2, 0.75, 0, ubg.ModelAll, 1200+cfg.Seed)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:     "T12-ablation",
		Title:  fmt.Sprintf("Ablation of design ingredients (n=%d, ε=0.5)", n),
		Header: []string{"variant", "edges", "stretch", "maxdeg", "w/MST", "queried", "covered", "removed"},
		Notes: []string{
			"covered-edge filter (Lemma 3) is the main query reducer; the per-cluster-pair query rule (Lemma 4) caps degree; redundancy removal (§2.2.5) trims weight; eager-updates is the non-distributable exact variant",
			"bin ratio r=2 violates the Theorem 13 constraint r < (tδ+1)/2 — the spanner stays correct but the weight band may widen",
		},
	}
	variants := []struct {
		name string
		opts core.Options
	}{
		{"paper (full)", core.Options{}},
		{"no covered filter", core.Options{DisableCoveredFilter: true}},
		{"no query filter", core.Options{DisableQueryFilter: true}},
		{"no redundancy rm", core.Options{DisableRedundancy: true}},
		{"eager updates", core.Options{EagerUpdates: true}},
		{"bin ratio r=2", core.Options{BinRatio: 2}},
	}
	for _, v := range variants {
		res, err := buildSeq(inst, 0.5, v.opts)
		if err != nil {
			return nil, err
		}
		t.AddRow(v.name, res.Spanner.M(), metrics.Stretch(inst.G, res.Spanner),
			res.Spanner.MaxDegree(), metrics.WeightRatio(inst.G, res.Spanner),
			res.Stats.Queried, res.Stats.Covered, res.Stats.RemovedRedundant)
	}
	return t, nil
}
