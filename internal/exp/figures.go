package exp

import (
	"fmt"
	"math/rand"

	"topoctl/internal/cluster"
	"topoctl/internal/core"
	"topoctl/internal/geom"
	"topoctl/internal/greedy"
	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

// F1CzumajZhao — Figures 1 & 3 / Lemma 3: random geometric triples that
// satisfy the covered-edge preconditions must satisfy the spanner-path
// inequality |uz| + t·|zv| <= t·|uv|.
func F1CzumajZhao(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "F1-czumaj-zhao",
		Title:  "Figures 1/3, Lemma 3 (Czumaj–Zhao): |uz| + t·|zv| ≤ t·|uv| under the preconditions",
		Header: []string{"eps", "theta", "triples", "violations", "max slack used"},
		Notes:  []string{"'max slack used' is the largest (|uz|+t·|zv|)/(t·|uv|) over all tested triples — it must stay ≤ 1"},
	}
	trials := 200000
	if cfg.Quick {
		trials = 20000
	}
	rng := rand.New(rand.NewSource(1300 + cfg.Seed))
	for _, eps := range []float64{0.25, 0.5, 1.0} {
		p, err := core.NewParams(eps, 0.75, 2)
		if err != nil {
			return nil, err
		}
		checked, violations := 0, 0
		maxSlack := 0.0
		for i := 0; i < trials; i++ {
			u := geom.Point{0, 0}
			v := geom.Point{rng.Float64(), rng.Float64()}
			z := geom.Point{rng.Float64()*2 - 0.5, rng.Float64()*2 - 0.5}
			duv, duz, dzv := geom.Dist(u, v), geom.Dist(u, z), geom.Dist(z, v)
			if duv == 0 || duz == 0 || duz > duv || geom.Angle(u, v, z) > p.Theta {
				continue
			}
			checked++
			slack := (duz + p.T*dzv) / (p.T * duv)
			if slack > maxSlack {
				maxSlack = slack
			}
			if slack > 1+1e-9 {
				violations++
			}
		}
		t.AddRow(eps, p.Theta, checked, violations, maxSlack)
	}
	return t, nil
}

// F2ClusterGraph — Figure 2 / Lemmas 5–7: measured cluster-graph distortion
// against the (1+6δ)/(1−2δ) bound, across δ.
func F2ClusterGraph(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "F2-clustergraph",
		Title:  "Figure 2, Lemmas 5/6/7: Das–Narasimhan cluster graph quality vs δ",
		Header: []string{"delta", "clusters", "inter-edges", "max inter w / (2δ+1)W", "max distortion", "Lemma 7 bound"},
		Notes: []string{
			"Lemma 5 (inter-edge weight ≤ (2δ+1)W) holds under its precondition (all G'-edges ≤ W, ensured here by a radius-0.3 UBG): column 4 must stay ≤ 1",
			"measured distortion can exceed the stated (1+6δ)/(1−2δ) at small δ: on a discrete sparse partial spanner a path of length ≈W needs two condition-(i) jumps of weight ≤W each, giving ratio ≈2 — the Das–Narasimhan proof assumes their complete-Euclidean greedy context; what the degree/weight/round arguments require is only that distortion is O(1), which the column shows (it never grows with n or shrinks the band)",
		},
	}
	n := cfg.baseN()
	inst, err := instance(n, 2, 0.3, 0, ubg.ModelNone, 1400+cfg.Seed)
	if err != nil {
		return nil, err
	}
	sp := greedy.Spanner(inst.G, 1.5)
	w := 0.35
	for _, delta := range []float64{0.02, 0.05, 0.1, 0.2} {
		cov := cluster.GreedyCover(sp, delta*w)
		cg := cluster.BuildClusterGraph(sp, cov, w, (2*delta+1)*w, 0)
		// Measure distortion on query-edge-like pairs: Lemma 7 speaks about
		// endpoints of bin-i edges, i.e. pairs at Euclidean distance in
		// (W_{i-1}, W_i] — shorter pairs are outside its precondition.
		maxDist := 1.0
		for u := 0; u < sp.N(); u += 3 {
			dg := sp.DijkstraBounded(u, 3*w)
			for v, l1 := range dg {
				if v == u {
					continue
				}
				duv := geom.Dist(inst.Points[u], inst.Points[v])
				if duv <= w || duv > 1.3*w {
					continue
				}
				l2, ok := cg.H.DijkstraTarget(u, v, 8*l1)
				if !ok {
					continue
				}
				if r := l2 / l1; r > maxDist {
					maxDist = r
				}
			}
		}
		bound := (1 + 6*delta) / (1 - 2*delta)
		t.AddRow(delta, len(cov.Centers), cg.InterEdges,
			cg.MaxInterWeight/((2*delta+1)*w), maxDist, bound)
	}
	return t, nil
}

// F4Leapfrog — Figure 4 / definition (6): sampled leapfrog checks on the
// paper algorithm's actual output.
func F4Leapfrog(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "F4-leapfrog",
		Title:  "Figure 4, definition (6): (t2, t)-leapfrog property of the output edge set",
		Header: []string{"t2", "subset size", "samples", "violations"},
		Notes:  []string{"the weight proof (Theorem 13) rests on this property; violations must be zero for admissible t2"},
	}
	n := cfg.baseN()
	inst, err := instance(n, 2, 0.75, 0, ubg.ModelAll, 1500+cfg.Seed)
	if err != nil {
		return nil, err
	}
	res, err := buildSeq(inst, 0.5, core.Options{})
	if err != nil {
		return nil, err
	}
	samples := 500
	if cfg.Quick {
		samples = 100
	}
	pos := func(i int) []float64 { return inst.Points[i] }
	for _, t2 := range []float64{1.02, 1.05, 1.1} {
		for _, size := range []int{2, 3, 5} {
			v := metrics.LeapfrogViolations(res.Spanner.Edges(), pos, t2, res.Params.T, samples, size, 77+cfg.Seed)
			t.AddRow(t2, size, samples, v)
		}
	}
	return t, nil
}

// F5Doubling — Figures 5 & 6 / Lemmas 15 & 20: the derived cluster-cover
// graph J lives in a metric of constant doubling dimension. We measure the
// empirical doubling constant: how many half-radius balls a greedy cover
// needs for random metric balls, across scales — it must not grow with n.
func F5Doubling(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "F5-doubling",
		Title:  "Figures 5/6, Lemmas 15/20: empirical doubling constant of the derived metric",
		Header: []string{"n", "radius R", "balls sampled", "max half-R balls", "avg half-R balls"},
		Notes:  []string{"the metric is sp_{G'} (the cluster-cover derived metric of Lemma 15); a constant max across n and R certifies bounded doubling dimension, which is what the O(log* n) MIS of [11] needs"},
	}
	rng := rand.New(rand.NewSource(1600 + cfg.Seed))
	for _, n := range cfg.sizes() {
		inst, err := instance(n, 2, 0.8, 0, ubg.ModelAll, 1600+cfg.Seed+int64(n))
		if err != nil {
			return nil, err
		}
		sp := greedy.Spanner(inst.G, 1.5)
		for _, r := range []float64{0.3, 0.6} {
			samples := 20
			if cfg.Quick {
				samples = 8
			}
			maxB, sumB := 0, 0
			for s := 0; s < samples; s++ {
				center := rng.Intn(n)
				ball := sp.DijkstraBounded(center, r)
				// Greedy half-radius cover of the ball.
				covered := make(map[int]bool)
				count := 0
				for v := range ball {
					if covered[v] {
						continue
					}
					count++
					for w := range sp.DijkstraBounded(v, r/2) {
						if _, in := ball[w]; in {
							covered[w] = true
						}
					}
				}
				if count > maxB {
					maxB = count
				}
				sumB += count
			}
			t.AddRow(n, r, samples, maxB, fmt.Sprintf("%.2f", float64(sumB)/float64(samples)))
		}
	}
	return t, nil
}

// All runs every experiment in order.
func All(cfg Config) ([]*Table, error) {
	type fn struct {
		name string
		f    func(Config) (*Table, error)
	}
	fns := []fn{
		{"T1", T1Stretch}, {"T2", T2Degree}, {"T3", T3Weight}, {"T4", T4Rounds},
		{"T5", T5Baselines}, {"T6", T6Alpha}, {"T7", T7Dimension}, {"T8", T8Power},
		{"T9", T9Fault}, {"T10", T10Energy}, {"T11", T11SeqVsDist}, {"T12", T12Ablation},
		{"T13", T13Clouds}, {"T14", T14Messages},
		{"F1", F1CzumajZhao}, {"F2", F2ClusterGraph}, {"F4", F4Leapfrog}, {"F5", F5Doubling},
	}
	var out []*Table
	for _, e := range fns {
		tb, err := e.f(cfg)
		if err != nil {
			return nil, fmt.Errorf("exp %s: %w", e.name, err)
		}
		out = append(out, tb)
	}
	return out, nil
}

// Names lists the experiment IDs in run order.
func Names() []string {
	return []string{
		"T1-stretch", "T2-degree", "T3-weight", "T4-rounds", "T5-baselines",
		"T6-alpha", "T7-dimension", "T8-power", "T9-fault", "T10-energy",
		"T11-seq-vs-dist", "T12-ablation", "T13-clouds", "T14-messages",
		"F1-czumaj-zhao", "F2-clustergraph", "F4-leapfrog", "F5-doubling",
	}
}
