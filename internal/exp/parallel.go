package exp

import (
	"runtime"
	"sync"
)

// parallelReps runs fn for every rep 0..reps-1 across a worker pool and
// returns the per-rep results in rep order (so aggregation — including
// floating-point sums — is independent of scheduling). Reps are
// independent instances by construction: each generates its own network
// from its own seed. The first error by rep order wins.
func parallelReps[T any](reps int, fn func(rep int) (T, error)) ([]T, error) {
	out := make([]T, reps)
	errs := make([]error, reps)
	workers := runtime.GOMAXPROCS(0)
	if workers > reps {
		workers = reps
	}
	if workers <= 1 {
		for rep := 0; rep < reps; rep++ {
			var err error
			if out[rep], err = fn(rep); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for rep := w; rep < reps; rep += workers {
				out[rep], errs[rep] = fn(rep)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
