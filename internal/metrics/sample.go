package metrics

import (
	"math"
	"runtime"
	"sort"

	"topoctl/internal/graph"
)

// StretchSample is the result of a sampled stretch verification: the worst
// observed per-edge stretch over a uniform random subset of base edges,
// with the guarantee its size buys spelled out.
//
// The estimate is one-sided: it never exceeds the true stretch, and the
// standard coupon argument bounds how much of the edge population can hide
// above it. If k edges are drawn uniformly (with replacement) and F is the
// fraction of all edges whose stretch exceeds the sampled maximum, then
// the probability all k samples missed that set is (1-F)^k ≤ e^{-Fk}, so
// with confidence 1−δ at most F = ln(1/δ)/k of the base edges exceed
// Estimate. ViolationFraction reports that F for δ = 1−Confidence.
type StretchSample struct {
	// Estimate is the maximum stretch observed over the sampled edges
	// (exactly the stretch when Exact).
	Estimate float64
	// Exact is true when every base edge was evaluated — the sample budget
	// covered the edge set, so Estimate is the true stretch.
	Exact bool
	// Sampled is the number of edge evaluations performed.
	Sampled int
	// Edges is the base edge population size.
	Edges int
	// Confidence is the guarantee level 1−δ of ViolationFraction.
	Confidence float64
	// ViolationFraction bounds, with probability Confidence, the fraction
	// of base edges whose stretch may exceed Estimate. Zero when Exact.
	ViolationFraction float64
	// Disconnected is true when a sampled edge had no spanner path at all
	// (Estimate is +Inf).
	Disconnected bool
}

// sampleConfidence is the guarantee level reported by StretchSampled.
const sampleConfidence = 0.99

// StretchSampled estimates the stretch of sp relative to g from at most k
// uniformly sampled base edges. When k covers the edge set it degrades to
// the exact computation (same answer as Stretch); otherwise it draws k
// distinct edges with a seeded partial Fisher–Yates over edge ranks —
// O(k) memory, no materialized edge list — and evaluates only those. The
// result is deterministic for a fixed (g, sp, k, seed).
func StretchSampled(g, sp graph.Topology, k int, seed int64) StretchSample {
	return StretchSampledParallel(g, sp, k, seed, runtime.GOMAXPROCS(0))
}

// StretchSampledParallel is StretchSampled with an explicit worker count
// (<= 1 runs sequentially). The sample set depends only on (g, k, seed);
// workers only affect evaluation scheduling, and max is order-independent,
// so the result is identical for any worker count.
func StretchSampledParallel(g, sp graph.Topology, k int, seed int64, workers int) StretchSample {
	m := g.M()
	out := StretchSample{Sampled: k, Edges: m, Confidence: sampleConfidence}
	eval := func(s *graph.Searcher, e graph.Edge) float64 {
		if sp.HasEdge(e.U, e.V) {
			return 1
		}
		return edgeStretch(s, sp, e.U, e.V, e.W)
	}
	if k <= 0 || k >= m {
		// Budget covers the population: exact.
		out.Exact = true
		out.Sampled = m
		out.Estimate = worstOverEdges(g.EdgesUnordered(), workers, eval)
		out.Disconnected = math.IsInf(out.Estimate, 1)
		return out
	}
	edges := sampleEdges(g, k, seed)
	out.Estimate = worstOverEdges(edges, workers, eval)
	out.ViolationFraction = math.Log(1/(1-sampleConfidence)) / float64(k)
	out.Disconnected = math.IsInf(out.Estimate, 1)
	return out
}

// sampleEdges draws k distinct edges of g uniformly at random, determined
// entirely by (g, k, seed). Edge ranks are the canonical row order a
// Frozen or Graph enumerates (u < h.To), so the draw needs no materialized
// edge list: a partial Fisher–Yates over [0, m) with a sparse overlay map
// picks k ranks in O(k) space, and one adjacency walk collects exactly the
// selected edges.
func sampleEdges(g graph.Topology, k int, seed int64) []graph.Edge {
	m := g.M()
	rng := newSplitMix(uint64(seed))
	// Partial Fisher–Yates: swap a random survivor into position i; the
	// overlay records displaced values only for the O(k) touched slots.
	overlay := make(map[int]int, 2*k)
	at := func(i int) int {
		if v, ok := overlay[i]; ok {
			return v
		}
		return i
	}
	ranks := make([]int, k)
	for i := 0; i < k; i++ {
		j := i + int(rng.next()%uint64(m-i))
		ranks[i] = at(j)
		overlay[j] = at(i)
	}
	sort.Ints(ranks)

	edges := make([]graph.Edge, 0, k)
	rank, next := 0, 0
	n := g.N()
	for u := 0; u < n && next < k; u++ {
		for _, h := range g.Neighbors(u) {
			if u >= h.To {
				continue
			}
			if rank == ranks[next] {
				edges = append(edges, graph.Edge{U: u, V: h.To, W: h.W})
				next++
				if next == k {
					break
				}
			}
			rank++
		}
	}
	return edges
}
