// Package metrics measures the quality of a constructed topology against
// the three guarantees of the paper (stretch, degree, weight) plus the
// power-cost measure of §1.6.3 and the leapfrog property (§2.3) that
// underlies the weight proof. It is the verification backbone of the test
// suite and the experiment harness.
package metrics

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"topoctl/internal/graph"
)

// Stretch computes the exact stretch factor of spanner sp relative to the
// base graph g: max over edges {u,v} of g of sp_sp(u,v) / w_g(u,v).
//
// Checking only the edges of g is sufficient: any shortest path in g
// decomposes into g-edges, so if every g-edge is t-spanned by sp then every
// pair is (the standard spanner argument). Each edge query is a bounded
// bidirectional Dijkstra (two half-radius frontiers instead of one full
// ball; the CSR fast path when sp is a *graph.Frozen), so the cost is
// proportional to the number of edges times the local ball size rather
// than n², which keeps exact verification feasible throughout the test
// suite. Edge queries are independent, so they are fanned out over a
// worker pool (one Searcher per worker); the result is deterministic
// regardless of worker count because each per-edge value is computed
// identically and max is order-independent.
//
// Both graphs must share a vertex set. If some edge's endpoints are
// disconnected in sp the stretch is +Inf.
func Stretch(g, sp graph.Topology) float64 {
	return StretchParallel(g, sp, runtime.GOMAXPROCS(0))
}

// StretchParallel is Stretch with an explicit worker count (<= 1 runs
// sequentially). All workers only read g and sp.
func StretchParallel(g, sp graph.Topology, workers int) float64 {
	return worstOverEdges(g.EdgesUnordered(), workers, func(s *graph.Searcher, e graph.Edge) float64 {
		if sp.HasEdge(e.U, e.V) {
			return 1
		}
		return edgeStretch(s, sp, e.U, e.V, e.W)
	})
}

// edgeStretch returns sp_sp(u,v)/w, expanding the search budget
// geometrically until the path is found so the common case (small stretch)
// stays cheap; +Inf when no path exists.
func edgeStretch(s *graph.Searcher, sp graph.Topology, u, v int, w float64) float64 {
	bound := 2 * w
	for i := 0; i < 24; i++ {
		if d, ok := s.DijkstraTarget(sp, u, v, bound); ok {
			return d / w
		}
		bound *= 2
	}
	return math.Inf(1)
}

// StretchVsWeights is Stretch with an explicit base weight per edge of g:
// weight(u, v, euclid) maps an edge to its metric weight, letting callers
// verify energy-metric spanners whose base graph carries Euclidean weights.
// weight must be safe for concurrent calls.
func StretchVsWeights(g, sp graph.Topology, weight func(u, v int, euclid float64) float64) float64 {
	workers := runtime.GOMAXPROCS(0)
	return worstOverEdges(g.EdgesUnordered(), workers, func(s *graph.Searcher, e graph.Edge) float64 {
		w := weight(e.U, e.V, e.W)
		return edgeStretch(s, sp, e.U, e.V, w)
	})
}

// HopStretch returns the maximum ratio, over edges {u,v} of g, of the
// minimum hop count between u and v in sp to 1 (the hop count in g). This
// is the latency analogue of Stretch: a weight-spanner can still force
// many short hops, which matters when per-hop processing dominates
// propagation delay. +Inf if some edge's endpoints are disconnected in sp.
func HopStretch(g, sp graph.Topology) float64 {
	workers := runtime.GOMAXPROCS(0)
	return worstOverEdges(g.EdgesUnordered(), workers, func(s *graph.Searcher, e graph.Edge) float64 {
		if sp.HasEdge(e.U, e.V) {
			return 1
		}
		h, ok := s.HopsTo(sp, e.U, e.V)
		if !ok {
			return math.Inf(1)
		}
		return float64(h)
	})
}

// worstOverEdges evaluates eval on every edge and returns the maximum (at
// least 1), fanning the edges out over min(workers, len(edges)) goroutines
// with one Searcher each. A worker stops early once it observes +Inf —
// nothing can exceed it. eval must not mutate shared state.
func worstOverEdges(edges []graph.Edge, workers int, eval func(*graph.Searcher, graph.Edge) float64) float64 {
	if len(edges) == 0 {
		return 1
	}
	if workers > len(edges) {
		workers = len(edges)
	}
	if workers <= 1 {
		s := graph.AcquireSearcher(0)
		defer graph.ReleaseSearcher(s)
		return worstOfRange(edges, s, eval)
	}
	worsts := make([]float64, workers)
	chunk := (len(edges) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(edges) {
			hi = len(edges)
		}
		if lo >= hi {
			worsts[w] = 1
			continue
		}
		wg.Add(1)
		go func(w int, part []graph.Edge) {
			defer wg.Done()
			s := graph.AcquireSearcher(0)
			defer graph.ReleaseSearcher(s)
			worsts[w] = worstOfRange(part, s, eval)
		}(w, edges[lo:hi])
	}
	wg.Wait()
	worst := 1.0
	for _, v := range worsts {
		if v > worst {
			worst = v
		}
	}
	return worst
}

func worstOfRange(edges []graph.Edge, s *graph.Searcher, eval func(*graph.Searcher, graph.Edge) float64) float64 {
	worst := 1.0
	for _, e := range edges {
		if v := eval(s, e); v > worst {
			worst = v
			if math.IsInf(v, 1) {
				break
			}
		}
	}
	return worst
}

// DegreeStats summarizes the degree distribution.
type DegreeStats struct {
	Max int
	Avg float64
}

// Degrees returns max and average degree of g.
func Degrees(g graph.Topology) DegreeStats {
	ds := DegreeStats{Max: g.MaxDegree()}
	if g.N() > 0 {
		ds.Avg = 2 * float64(g.M()) / float64(g.N())
	}
	return ds
}

// WeightRatio returns w(sp) / w(MST(g)) — the Theorem 13 quantity. The MST
// is computed on g with g's weights; sp's total weight uses sp's weights, so
// callers must keep both graphs in the same metric.
func WeightRatio(g, sp graph.Topology) float64 {
	mst := graph.MSTWeightOf(g)
	if mst == 0 {
		return 1
	}
	return sp.TotalWeight() / mst
}

// PowerCost returns Σ_u max_{v∈N(u)} w(u,v), the power-cost measure of
// §1.6.3 (each radio transmits at the power needed to reach its farthest
// chosen neighbor). Isolated vertices contribute zero.
func PowerCost(g graph.Topology) float64 {
	var total float64
	for u := 0; u < g.N(); u++ {
		var max float64
		for _, h := range g.Neighbors(u) {
			if h.W > max {
				max = h.W
			}
		}
		total += max
	}
	return total
}

// Report is a one-line quality summary of a topology against its base graph.
type Report struct {
	Name        string
	Edges       int
	MaxDegree   int
	AvgDegree   float64
	Stretch     float64
	WeightRatio float64
	PowerRatio  float64
}

// Evaluate builds a Report for spanner sp over base g. PowerRatio compares
// sp's power cost to that of the MST of g (the sparsest connected
// benchmark).
func Evaluate(name string, g, sp graph.Topology) Report {
	deg := Degrees(sp)
	mstG := graph.FromEdges(g.N(), graph.MSTOf(g))
	pcMST := PowerCost(mstG)
	pr := math.Inf(1)
	if pcMST > 0 {
		pr = PowerCost(sp) / pcMST
	} else if PowerCost(sp) == 0 {
		pr = 1
	}
	return Report{
		Name:        name,
		Edges:       sp.M(),
		MaxDegree:   deg.Max,
		AvgDegree:   deg.Avg,
		Stretch:     Stretch(g, sp),
		WeightRatio: WeightRatio(g, sp),
		PowerRatio:  pr,
	}
}

// String renders the report as a fixed-width row.
func (r Report) String() string {
	return fmt.Sprintf("%-16s edges=%-5d maxdeg=%-3d avgdeg=%-6.2f stretch=%-7.4f weight/mst=%-7.3f power/mst=%-7.3f",
		r.Name, r.Edges, r.MaxDegree, r.AvgDegree, r.Stretch, r.WeightRatio, r.PowerRatio)
}

// LeapfrogViolations samples subsets S of the spanner's edge set and checks
// the (t2, t)-leapfrog inequality (paper definition (6)):
//
//	t2·|u1v1| < Σ_{i>=2} |uivi| + t·(Σ |vi u_{i+1}| + |vs u1|)
//
// for every sampled ordered subset with {u1,v1} a longest edge. It returns
// the number of violated samples out of the given trials. The sampler draws
// geometrically close edge groups (violations, if any, are local), orders
// the longest edge first, and tries both orientations of every other edge,
// taking the adversarial (minimizing) right-hand side.
func LeapfrogViolations(edges []graph.Edge, pos func(v int) []float64, t2, t float64, trials, subsetSize int, seed int64) int {
	if len(edges) < 2 {
		return 0
	}
	rng := newSplitMix(uint64(seed))
	dist := func(a, b int) float64 {
		pa, pb := pos(a), pos(b)
		var s float64
		for i := range pa {
			d := pa[i] - pb[i]
			s += d * d
		}
		return math.Sqrt(s)
	}
	violations := 0
	for trial := 0; trial < trials; trial++ {
		// Pick a focus edge, then its geometrically nearest edges.
		f := edges[int(rng.next()%uint64(len(edges)))]
		type cand struct {
			e graph.Edge
			d float64
		}
		var cands []cand
		for _, e := range edges {
			if e == f {
				continue
			}
			d := math.Min(math.Min(dist(f.U, e.U), dist(f.U, e.V)), math.Min(dist(f.V, e.U), dist(f.V, e.V)))
			cands = append(cands, cand{e: e, d: d})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].d < cands[j].d })
		k := subsetSize - 1
		if k > len(cands) {
			k = len(cands)
		}
		group := []graph.Edge{f}
		for i := 0; i < k; i++ {
			group = append(group, cands[i].e)
		}
		// Longest edge first.
		sort.Slice(group, func(i, j int) bool {
			return dist(group[i].U, group[i].V) > dist(group[j].U, group[j].V)
		})
		if leapfrogViolated(group, dist, t2, t) {
			violations++
		}
	}
	return violations
}

// leapfrogViolated checks whether some orientation of the given edge cycle
// violates the leapfrog inequality for the first (longest) edge. It
// enumerates orientations of each subsequent edge greedily to minimize the
// connector terms — a heuristic adversary; exact minimization over
// orderings is exponential and unnecessary for a validation metric.
func leapfrogViolated(group []graph.Edge, dist func(a, b int) float64, t2, t float64) bool {
	u1, v1 := group[0].U, group[0].V
	lhs := t2 * dist(u1, v1)
	var sumEdges, sumConn float64
	prevV := v1
	for _, e := range group[1:] {
		// Orient e to minimize the connector from prevV.
		dU, dV := dist(prevV, e.U), dist(prevV, e.V)
		if dU <= dV {
			sumConn += dU
			prevV = e.V
		} else {
			sumConn += dV
			prevV = e.U
		}
		sumEdges += dist(e.U, e.V)
	}
	sumConn += dist(prevV, u1)
	rhs := sumEdges + t*sumConn
	return lhs >= rhs
}

// splitMix is a tiny deterministic PRNG so metrics stays independent of
// math/rand ordering guarantees.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
