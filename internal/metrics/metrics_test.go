package metrics

import (
	"math"
	"math/rand"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/greedy"
	"topoctl/internal/ubg"
)

func metInstance(t testing.TB, n int, seed int64) *ubg.Instance {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Seed: seed},
		ubg.Config{Alpha: 0.8, Model: ubg.ModelAll, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// bruteForceStretch computes stretch over all connected pairs via
// Floyd–Warshall — the reference for the edge-restricted Stretch.
func bruteForceStretch(g, sp *graph.Graph) float64 {
	dg := g.FloydWarshall()
	ds := sp.FloydWarshall()
	worst := 1.0
	for u := 0; u < g.N(); u++ {
		for v := u + 1; v < g.N(); v++ {
			if math.IsInf(dg[u][v], 1) || dg[u][v] == 0 {
				continue
			}
			if math.IsInf(ds[u][v], 1) {
				return math.Inf(1)
			}
			if s := ds[u][v] / dg[u][v]; s > worst {
				worst = s
			}
		}
	}
	return worst
}

// TestStretchMatchesBruteForce: the edge-restricted computation must agree
// with the all-pairs definition (the classical spanner lemma).
func TestStretchMatchesBruteForce(t *testing.T) {
	inst := metInstance(t, 40, 60_000)
	for _, tval := range []float64{1.2, 1.5, 2.5} {
		sp := greedy.Spanner(inst.G, tval)
		fast := Stretch(inst.G, sp)
		slow := bruteForceStretch(inst.G, sp)
		if math.Abs(fast-slow) > 1e-9 {
			t.Errorf("t=%v: edge-restricted stretch %v != all-pairs %v", tval, fast, slow)
		}
	}
}

func TestStretchIdentity(t *testing.T) {
	inst := metInstance(t, 30, 61_000)
	if s := Stretch(inst.G, inst.G); s != 1 {
		t.Errorf("self stretch = %v, want 1", s)
	}
}

func TestStretchDisconnectedIsInf(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	sp := graph.New(3)
	sp.AddEdge(0, 1, 1)
	if s := Stretch(g, sp); !math.IsInf(s, 1) {
		t.Errorf("stretch of disconnected spanner = %v, want +Inf", s)
	}
}

func TestStretchVsWeightsEnergy(t *testing.T) {
	// Path 0-1-2 with unit edges; spanner misses 0-2 (Euclidean weight 2).
	// Under γ=2 weights the base edge weighs 4, the detour 1+1=2: stretch
	// 0.5 → clamped to 1? No: max(1, ...) — worst stays 1.
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 2)
	sp := graph.New(3)
	sp.AddEdge(0, 1, 1)
	sp.AddEdge(1, 2, 1)
	s := StretchVsWeights(g, sp, func(_, _ int, d float64) float64 { return d * d })
	if s != 1 {
		t.Errorf("energy stretch = %v, want 1 (detour cheaper in energy)", s)
	}
	// Euclidean stretch of the same pair is 1 (2/2), of course.
	if got := Stretch(g, sp); got != 1 {
		t.Errorf("euclidean stretch = %v", got)
	}
}

func TestDegreesAndWeightRatio(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	ds := Degrees(g)
	if ds.Max != 3 || math.Abs(ds.Avg-1.5) > 1e-12 {
		t.Errorf("Degrees = %+v", ds)
	}
	// WeightRatio of the graph vs itself: MST is 3 (star), total 3.
	if r := WeightRatio(g, g); math.Abs(r-1) > 1e-12 {
		t.Errorf("WeightRatio = %v", r)
	}
}

func TestPowerCost(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 2)
	g.AddEdge(1, 2, 3)
	// power(0)=2, power(1)=3, power(2)=3.
	if got := PowerCost(g); got != 8 {
		t.Errorf("PowerCost = %v, want 8", got)
	}
	if got := PowerCost(graph.New(2)); got != 0 {
		t.Errorf("PowerCost of empty = %v", got)
	}
}

func TestEvaluateReport(t *testing.T) {
	inst := metInstance(t, 50, 62_000)
	sp := greedy.Spanner(inst.G, 1.5)
	r := Evaluate("greedy", inst.G, sp)
	if r.Stretch > 1.5+1e-9 || r.Edges != sp.M() || r.MaxDegree != sp.MaxDegree() {
		t.Errorf("report inconsistent: %+v", r)
	}
	if r.WeightRatio < 1-1e-9 {
		t.Errorf("weight ratio below 1: %v", r.WeightRatio)
	}
	if r.PowerRatio <= 0 {
		t.Errorf("power ratio %v", r.PowerRatio)
	}
	if r.String() == "" {
		t.Error("empty String()")
	}
}

// TestLeapfrogViolationsDetectsPlantedViolation: two nearly-parallel close
// segments of equal length massively violate leapfrog for t2 near t — the
// detector must fire.
func TestLeapfrogViolationsDetectsPlantedViolation(t *testing.T) {
	pts := [][]float64{
		{0, 0}, {1, 0}, // edge A
		{0, 0.001}, {1, 0.001}, // edge B, parallel and adjacent
	}
	edges := []graph.Edge{
		{U: 0, V: 1, W: 1},
		{U: 2, V: 3, W: 1},
	}
	v := LeapfrogViolations(edges, func(i int) []float64 { return pts[i] }, 1.5, 1.6, 50, 2, 7)
	if v == 0 {
		t.Error("planted leapfrog violation not detected")
	}
}

// TestLeapfrogHoldsOnGreedyOutput: greedy spanner segments are the
// canonical leapfrog family.
func TestLeapfrogHoldsOnGreedyOutput(t *testing.T) {
	inst := metInstance(t, 60, 63_000)
	sp := greedy.Spanner(inst.G, 1.5)
	v := LeapfrogViolations(sp.Edges(), func(i int) []float64 { return inst.Points[i] }, 1.05, 1.5, 200, 4, 8)
	if v > 0 {
		t.Errorf("%d leapfrog violations on greedy output", v)
	}
}

func TestLeapfrogTrivialCases(t *testing.T) {
	if v := LeapfrogViolations(nil, nil, 1.1, 1.5, 10, 3, 1); v != 0 {
		t.Errorf("empty edge set: %d", v)
	}
	one := []graph.Edge{{U: 0, V: 1, W: 1}}
	if v := LeapfrogViolations(one, func(int) []float64 { return []float64{0, 0} }, 1.1, 1.5, 10, 3, 1); v != 0 {
		t.Errorf("single edge: %d", v)
	}
}

// TestStretchRandomizedAgainstBrute: fuzz the fast stretch on random sparse
// subgraphs (not just greedy outputs).
func TestStretchRandomizedAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(64_000))
	inst := metInstance(t, 30, 64_001)
	for trial := 0; trial < 10; trial++ {
		sp := graph.New(inst.G.N())
		// Random connected-ish subgraph: keep MST plus random extras.
		for _, e := range inst.G.MST() {
			sp.AddEdge(e.U, e.V, e.W)
		}
		for _, e := range inst.G.Edges() {
			if rng.Float64() < 0.2 && !sp.HasEdge(e.U, e.V) {
				sp.AddEdge(e.U, e.V, e.W)
			}
		}
		fast := Stretch(inst.G, sp)
		slow := bruteForceStretch(inst.G, sp)
		if math.Abs(fast-slow) > 1e-9 {
			t.Fatalf("trial %d: %v != %v", trial, fast, slow)
		}
	}
}

func TestHopStretch(t *testing.T) {
	// Base: triangle; spanner: path 0-1-2 (edge 0-2 needs 2 hops).
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1.5)
	sp := graph.New(3)
	sp.AddEdge(0, 1, 1)
	sp.AddEdge(1, 2, 1)
	if got := HopStretch(g, sp); got != 2 {
		t.Errorf("HopStretch = %v, want 2", got)
	}
	if got := HopStretch(g, g); got != 1 {
		t.Errorf("self HopStretch = %v, want 1", got)
	}
	// Disconnected spanner.
	empty := graph.New(3)
	if got := HopStretch(g, empty); !math.IsInf(got, 1) {
		t.Errorf("disconnected HopStretch = %v, want +Inf", got)
	}
}

// TestHopStretchOnGreedySpanner: sanity band on a real instance.
func TestHopStretchOnGreedySpanner(t *testing.T) {
	inst := metInstance(t, 60, 65_000)
	sp := greedy.Spanner(inst.G, 1.5)
	hs := HopStretch(inst.G, sp)
	if hs < 1 || hs > 50 {
		t.Errorf("hop stretch %v implausible", hs)
	}
}
