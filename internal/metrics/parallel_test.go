package metrics

// Race and determinism coverage for the parallel stretch verifier: the
// worst-stretch result must be bit-identical regardless of worker count,
// and concurrent verification over shared graphs must be race-clean (this
// file is exercised under -race by the CI target).

import (
	"math"
	"sync"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/greedy"
	"topoctl/internal/ubg"
)

func stretchInstance(t *testing.T, n int, seed int64) (*graph.Graph, *graph.Graph) {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Seed: seed},
		ubg.Config{Alpha: 0.75, Model: ubg.ModelAll, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst.G, greedy.Spanner(inst.G, 1.5)
}

func TestStretchParallelWorkerCountInvariant(t *testing.T) {
	g, sp := stretchInstance(t, 150, 5)
	want := StretchParallel(g, sp, 1)
	if want <= 1 || want > 1.5+1e-9 {
		t.Fatalf("sequential stretch %v outside (1, 1.5]", want)
	}
	for workers := 2; workers <= 16; workers *= 2 {
		if got := StretchParallel(g, sp, workers); got != want {
			t.Fatalf("workers=%d: stretch %v != sequential %v", workers, got, want)
		}
	}
	if got := Stretch(g, sp); got != want {
		t.Fatalf("Stretch (default workers) %v != sequential %v", got, want)
	}
}

func TestStretchParallelDisconnected(t *testing.T) {
	g, _ := stretchInstance(t, 60, 7)
	empty := graph.New(g.N())
	for workers := 1; workers <= 8; workers *= 2 {
		if got := StretchParallel(g, empty, workers); !math.IsInf(got, 1) {
			t.Fatalf("workers=%d: stretch of empty spanner = %v, want +Inf", workers, got)
		}
	}
}

// TestStretchConcurrentCallers runs several full verifications over the
// same shared graphs at once — the pattern the parallel experiment harness
// produces — so the race detector sees overlapping pooled Searchers.
func TestStretchConcurrentCallers(t *testing.T) {
	g, sp := stretchInstance(t, 100, 9)
	want := StretchParallel(g, sp, 1)
	var wg sync.WaitGroup
	results := make([]float64, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = StretchParallel(g, sp, 4)
		}(i)
	}
	wg.Wait()
	for i, got := range results {
		if got != want {
			t.Fatalf("concurrent caller %d: stretch %v != %v", i, got, want)
		}
	}
}

func TestHopStretchParallelMatchesDirect(t *testing.T) {
	g, sp := stretchInstance(t, 80, 13)
	got := HopStretch(g, sp)
	// Reference: sequential BFS per edge via the map API.
	worst := 1.0
	for _, e := range g.Edges() {
		if sp.HasEdge(e.U, e.V) {
			continue
		}
		h, ok := sp.BFSHops(e.U, -1)[e.V]
		if !ok {
			worst = math.Inf(1)
			break
		}
		if fh := float64(h); fh > worst {
			worst = fh
		}
	}
	if got != worst {
		t.Fatalf("HopStretch %v != reference %v", got, worst)
	}
}
