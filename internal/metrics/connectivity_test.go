package metrics

import (
	"math/rand"
	"testing"

	"topoctl/internal/fault"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/ubg"
)

func cycleGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		g.AddEdge(i, (i+1)%n, 1)
	}
	return g
}

func completeGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(i, j, 1)
		}
	}
	return g
}

func TestEdgeConnectivityKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"path", graph.FromEdges(4, []graph.Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 2, V: 3, W: 1}}), 1},
		{"cycle-5", cycleGraph(5), 2},
		{"complete-5", completeGraph(5), 4},
		{"disconnected", graph.FromEdges(3, []graph.Edge{{U: 0, V: 1, W: 1}}), 0},
		{"single vertex", graph.New(1), 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := EdgeConnectivity(tc.g); got != tc.want {
				t.Errorf("EdgeConnectivity = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestPairEdgeConnectivityThetaGraph(t *testing.T) {
	// Three parallel 2-hop paths 0→1: connectivity 3.
	g := graph.New(5)
	for i := 2; i <= 4; i++ {
		g.AddEdge(0, i, 1)
		g.AddEdge(i, 1, 1)
	}
	if got := PairEdgeConnectivity(g, 0, 1); got != 3 {
		t.Errorf("pair connectivity = %d, want 3", got)
	}
	if got := PairEdgeConnectivity(g, 0, 0); got != 0 {
		t.Errorf("self connectivity = %d, want 0", got)
	}
}

func TestVertexConnectivityKnownGraphs(t *testing.T) {
	// Two internally disjoint paths plus a direct edge: vertex conn 3.
	g := graph.New(4)
	g.AddEdge(0, 2, 1)
	g.AddEdge(2, 1, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(3, 1, 1)
	g.AddEdge(0, 1, 1)
	if got := VertexConnectivity(g, 0, 1); got != 3 {
		t.Errorf("vertex connectivity = %d, want 3", got)
	}
	// A single cut vertex: conn 1.
	h := graph.New(3)
	h.AddEdge(0, 2, 1)
	h.AddEdge(2, 1, 1)
	if got := VertexConnectivity(h, 0, 1); got != 1 {
		t.Errorf("vertex connectivity through cut vertex = %d, want 1", got)
	}
}

// TestVertexLeqEdgeConnectivityProperty: Whitney's inequality
// κ(u,v) <= λ(u,v) on random graphs.
func TestVertexLeqEdgeConnectivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(86_000))
	for trial := 0; trial < 25; trial++ {
		n := 5 + rng.Intn(10)
		g := graph.New(n)
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if rng.Float64() < 0.35 {
					g.AddEdge(u, v, 1)
				}
			}
		}
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		kv := VertexConnectivity(g, u, v)
		ke := PairEdgeConnectivity(g, u, v)
		if kv > ke {
			t.Fatalf("trial %d: vertex connectivity %d > edge connectivity %d", trial, kv, ke)
		}
		deg := g.Degree(u)
		if dv := g.Degree(v); dv < deg {
			deg = dv
		}
		if ke > deg {
			t.Fatalf("trial %d: edge connectivity %d > min degree %d", trial, ke, deg)
		}
	}
}

// TestFaultSpannerConnectivityStructure: a k-edge-fault-tolerant spanner of
// a (k+1)-edge-connected base graph must itself be (k+1)-edge-connected —
// otherwise k failures could disconnect it.
func TestFaultSpannerConnectivityStructure(t *testing.T) {
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: 50, Dim: 2, Seed: 87_000},
		ubg.Config{Alpha: 0.9, Model: ubg.ModelAll, Seed: 87_000},
	)
	if err != nil {
		t.Fatal(err)
	}
	base := EdgeConnectivity(inst.G)
	if base < 3 {
		t.Skipf("instance only %d-connected; need >= 3", base)
	}
	for _, k := range []int{1, 2} {
		sp, err := fault.Spanner(inst.G, 1.5, k, fault.EdgeFaults)
		if err != nil {
			t.Fatal(err)
		}
		if got := EdgeConnectivity(sp); got < k+1 {
			t.Errorf("k=%d spanner is only %d-edge-connected", k, got)
		}
	}
}
