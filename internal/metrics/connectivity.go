package metrics

import (
	"topoctl/internal/graph"
)

// EdgeConnectivity returns the edge connectivity of g: the minimum number
// of edges whose removal disconnects it (0 for disconnected or trivial
// graphs). Computed as min over vertices v != 0 of maxflow(0, v) with unit
// capacities — correct because a global min cut separates vertex 0 from
// someone. Intended for verification of fault-tolerant constructions
// (a k-edge-fault-tolerant spanner of a connected graph must be at least
// (k+1)-edge-connected), so it favours clarity over speed.
func EdgeConnectivity(g *graph.Graph) int {
	n := g.N()
	if n <= 1 || !g.Connected() {
		return 0
	}
	best := -1
	for v := 1; v < n; v++ {
		f := maxFlowUnit(g, 0, v)
		if best == -1 || f < best {
			best = f
		}
		if best == 0 {
			break
		}
	}
	return best
}

// PairEdgeConnectivity returns the maximum number of pairwise edge-disjoint
// paths between u and v (unit-capacity max flow).
func PairEdgeConnectivity(g *graph.Graph, u, v int) int {
	if u == v {
		return 0
	}
	return maxFlowUnit(g, u, v)
}

// maxFlowUnit computes s-t max flow with unit capacity per undirected edge
// (each undirected edge becomes two directed arcs sharing capacity via the
// standard residual construction), using Edmonds–Karp.
func maxFlowUnit(g *graph.Graph, s, t int) int {
	n := g.N()
	// Residual capacities: cap[u][v]. Undirected unit edge u~v becomes
	// cap 1 in both directions (standard for undirected flow).
	cap_ := make([]map[int]int, n)
	for u := 0; u < n; u++ {
		cap_[u] = make(map[int]int)
	}
	for u := 0; u < n; u++ {
		for _, h := range g.Neighbors(u) {
			cap_[u][h.To] = 1
		}
	}
	flow := 0
	for {
		// BFS for an augmenting path.
		prev := make([]int, n)
		for i := range prev {
			prev[i] = -1
		}
		prev[s] = s
		queue := []int{s}
		for len(queue) > 0 && prev[t] == -1 {
			u := queue[0]
			queue = queue[1:]
			for v, c := range cap_[u] {
				if c > 0 && prev[v] == -1 {
					prev[v] = u
					queue = append(queue, v)
				}
			}
		}
		if prev[t] == -1 {
			return flow
		}
		// Unit capacities: augment by exactly 1.
		for v := t; v != s; v = prev[v] {
			u := prev[v]
			cap_[u][v]--
			cap_[v][u]++
		}
		flow++
	}
}

// VertexConnectivity returns the vertex connectivity between a specific
// pair (maximum number of internally vertex-disjoint uv-paths), via the
// standard vertex-splitting reduction to edge connectivity. For adjacent
// vertices the direct edge contributes one path.
func VertexConnectivity(g *graph.Graph, u, v int) int {
	if u == v {
		return 0
	}
	n := g.N()
	// Split every vertex x (except u, v) into x_in = x, x_out = x + n with
	// a unit arc in->out; edges use out->in arcs.
	cap_ := make([]map[int]int, 2*n)
	for i := range cap_ {
		cap_[i] = make(map[int]int)
	}
	in := func(x int) int { return x }
	out := func(x int) int {
		if x == u || x == v {
			return x // endpoints are not split
		}
		return x + n
	}
	for x := 0; x < n; x++ {
		if x != u && x != v {
			cap_[in(x)][out(x)] = 1
		}
	}
	// Unit edge arcs suffice: vertex-disjoint paths never share an edge.
	for x := 0; x < n; x++ {
		for _, h := range g.Neighbors(x) {
			cap_[out(x)][in(h.To)] = 1
		}
	}
	// Edmonds–Karp on the split graph from out(u)... u unsplit: source is u.
	s, t := u, v
	flow := 0
	for {
		prev := make([]int, 2*n)
		for i := range prev {
			prev[i] = -1
		}
		prev[s] = s
		queue := []int{s}
		for len(queue) > 0 && prev[t] == -1 {
			x := queue[0]
			queue = queue[1:]
			for y, c := range cap_[x] {
				if c > 0 && prev[y] == -1 {
					prev[y] = x
					queue = append(queue, y)
				}
			}
		}
		if prev[t] == -1 {
			return flow
		}
		for y := t; y != s; y = prev[y] {
			x := prev[y]
			cap_[x][y]--
			cap_[y][x]++
		}
		flow++
	}
}
