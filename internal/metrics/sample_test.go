package metrics

import (
	"math"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/greedy"
	"topoctl/internal/ubg"
)

// sampleInstance builds a fuzzed α-UBG plus its greedy spanner.
func sampleInstance(t testing.TB, n int, seed int64) (base, sp *graph.Graph) {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Seed: seed},
		ubg.Config{Alpha: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst.G, greedy.Spanner(inst.G, 1.5)
}

// TestStretchSampledDifferential pins the sampler against exact Stretch on
// fuzzed instances: a full-budget sample is exactly the stretch, and a
// partial sample is a lower bound that reaches the exact value once the
// budget covers the edge set.
func TestStretchSampledDifferential(t *testing.T) {
	for _, tc := range []struct {
		n    int
		seed int64
	}{
		{64, 1}, {128, 2}, {256, 3}, {512, 4}, {1024, 5},
	} {
		base, sp := sampleInstance(t, tc.n, tc.seed)
		exact := Stretch(base, sp)
		m := base.M()

		// Full budget (k >= m, and k == 0 meaning "all") must be exact.
		for _, k := range []int{0, m, m + 100} {
			got := StretchSampled(base, sp, k, tc.seed)
			if !got.Exact || got.Estimate != exact || got.Sampled != m || got.ViolationFraction != 0 {
				t.Fatalf("n=%d k=%d: exact path diverges: %+v vs stretch %v", tc.n, k, got, exact)
			}
		}

		// Partial budgets: one-sided estimate within (1, exact], never
		// above, and the reported bound matches ln(1/δ)/k.
		for _, k := range []int{1, 8, m / 4, m - 1} {
			if k <= 0 {
				continue
			}
			got := StretchSampled(base, sp, k, tc.seed)
			if got.Exact {
				t.Fatalf("n=%d k=%d < m=%d reported exact", tc.n, k, m)
			}
			if got.Estimate > exact || got.Estimate < 1 {
				t.Fatalf("n=%d k=%d: estimate %v outside [1, %v]", tc.n, k, got.Estimate, exact)
			}
			wantF := math.Log(100) / float64(k)
			if d := got.ViolationFraction - wantF; d > 1e-12 || d < -1e-12 {
				t.Fatalf("n=%d k=%d: violation fraction %v, want %v", tc.n, k, got.ViolationFraction, wantF)
			}
			if got.Confidence != 0.99 || got.Sampled != k || got.Edges != m {
				t.Fatalf("n=%d k=%d: metadata wrong: %+v", tc.n, k, got)
			}
		}

		// A half-budget sample should land close to exact in practice:
		// stretch violations concentrate on many edges, not one. Loose,
		// CI-stable margin — the guarantee tested above is the bound.
		got := StretchSampled(base, sp, m/2, tc.seed)
		if got.Estimate < 1 || got.Estimate > exact {
			t.Fatalf("n=%d: half-budget estimate %v outside [1, %v]", tc.n, got.Estimate, exact)
		}
	}
}

// TestStretchSampledDeterministic requires identical output for a fixed
// seed regardless of worker count, and different (typical) samples for
// different seeds.
func TestStretchSampledDeterministic(t *testing.T) {
	base, sp := sampleInstance(t, 512, 9)
	m := base.M()
	k := m / 3

	ref := StretchSampledParallel(base, sp, k, 1234, 1)
	for _, workers := range []int{1, 2, 4, 8} {
		got := StretchSampledParallel(base, sp, k, 1234, workers)
		if got != ref {
			t.Fatalf("workers=%d: %+v, want %+v", workers, got, ref)
		}
	}
	for i := 0; i < 3; i++ {
		if got := StretchSampled(base, sp, k, 1234); got != ref {
			t.Fatalf("repeat call diverged: %+v vs %+v", got, ref)
		}
	}

	// Different seeds draw different edge sets (the estimates may rarely
	// coincide; the drawn ranks must not all).
	a := sampleEdges(base, k, 1)
	b := sampleEdges(base, k, 2)
	same := len(a) == len(b)
	if same {
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 drew identical samples")
	}
}

// TestSampleEdgesUniform sanity-checks the partial Fisher–Yates draw:
// k distinct edges, all real edges of g, and every edge reachable across
// seeds.
func TestSampleEdgesUniform(t *testing.T) {
	base, _ := sampleInstance(t, 128, 7)
	m := base.M()
	k := m / 2
	hit := make(map[[2]int]bool)
	for seed := int64(0); seed < 64; seed++ {
		es := sampleEdges(base, k, seed)
		if len(es) != k {
			t.Fatalf("seed %d: drew %d edges, want %d", seed, len(es), k)
		}
		seen := make(map[[2]int]bool, k)
		for _, e := range es {
			key := [2]int{e.U, e.V}
			if seen[key] {
				t.Fatalf("seed %d: duplicate edge %v", seed, key)
			}
			seen[key] = true
			if w, ok := base.EdgeWeight(e.U, e.V); !ok || w != e.W {
				t.Fatalf("seed %d: sampled non-edge %+v", seed, e)
			}
			hit[key] = true
		}
	}
	if len(hit) != m {
		t.Fatalf("64 half-budget draws covered %d/%d edges; sampler looks biased", len(hit), m)
	}
}

// TestStretchSampledDisconnected checks the +Inf path: a spanner missing
// a bridge reports Disconnected once the severed edge is drawn.
func TestStretchSampledDisconnected(t *testing.T) {
	base := graph.New(4)
	base.AddEdge(0, 1, 1)
	base.AddEdge(1, 2, 1)
	base.AddEdge(2, 3, 1)
	sp := graph.New(4)
	sp.AddEdge(0, 1, 1)
	sp.AddEdge(2, 3, 1) // 1-2 severed

	got := StretchSampled(base, sp, 0, 1)
	if !got.Exact || !got.Disconnected || !math.IsInf(got.Estimate, 1) {
		t.Fatalf("disconnected spanner not detected: %+v", got)
	}
}
