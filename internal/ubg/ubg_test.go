package ubg

import (
	"math"
	"testing"

	"topoctl/internal/geom"
)

func testPoints(n int, seed int64) []geom.Point {
	return geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Side: 3, Seed: seed})
}

// TestUBGContract verifies the defining α-UBG properties for every grey
// zone model: pairs within α are always connected, pairs beyond 1 never.
func TestUBGContract(t *testing.T) {
	pts := testPoints(120, 40)
	for _, model := range []Model{ModelAll, ModelNone, ModelBernoulli, ModelFalloff, ModelObstacle} {
		cfg := Config{Alpha: 0.6, Model: model, P: 0.5, Seed: 9}
		g, err := Build(pts, cfg)
		if err != nil {
			t.Fatalf("%v: %v", model, err)
		}
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				d := geom.Dist(pts[i], pts[j])
				has := g.HasEdge(i, j)
				if d <= 0.6 && !has {
					t.Fatalf("%v: pair at distance %v <= alpha not connected", model, d)
				}
				if d > 1 && has {
					t.Fatalf("%v: pair at distance %v > 1 connected", model, d)
				}
			}
		}
	}
}

func TestUBGEdgeWeightsAreEuclidean(t *testing.T) {
	pts := testPoints(60, 41)
	g, err := Build(pts, Config{Alpha: 0.7, Model: ModelAll})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		if math.Abs(e.W-geom.Dist(pts[e.U], pts[e.V])) > 1e-12 {
			t.Fatalf("edge weight %v != distance", e.W)
		}
	}
}

func TestModelAllVsNoneOrdering(t *testing.T) {
	pts := testPoints(100, 42)
	all, _ := Build(pts, Config{Alpha: 0.5, Model: ModelAll})
	none, _ := Build(pts, Config{Alpha: 0.5, Model: ModelNone})
	bern, _ := Build(pts, Config{Alpha: 0.5, Model: ModelBernoulli, P: 0.5, Seed: 1})
	if !(none.M() <= bern.M() && bern.M() <= all.M()) {
		t.Errorf("edge counts should be ordered: none=%d bern=%d all=%d", none.M(), bern.M(), all.M())
	}
	if none.M() == all.M() {
		t.Skip("degenerate instance: no grey-zone pairs")
	}
}

func TestModelNoneIsRadiusAlpha(t *testing.T) {
	pts := testPoints(80, 43)
	g, _ := Build(pts, Config{Alpha: 0.5, Model: ModelNone})
	for _, e := range g.Edges() {
		if e.W > 0.5 {
			t.Fatalf("ModelNone kept grey-zone edge of length %v", e.W)
		}
	}
}

func TestBernoulliDeterministicAcrossRebuilds(t *testing.T) {
	pts := testPoints(100, 44)
	a, _ := Build(pts, Config{Alpha: 0.4, Model: ModelBernoulli, P: 0.3, Seed: 7})
	b, _ := Build(pts, Config{Alpha: 0.4, Model: ModelBernoulli, P: 0.3, Seed: 7})
	if a.M() != b.M() {
		t.Fatalf("same seed, different graphs: %d vs %d", a.M(), b.M())
	}
	c, _ := Build(pts, Config{Alpha: 0.4, Model: ModelBernoulli, P: 0.3, Seed: 8})
	if a.M() == c.M() {
		t.Log("different seeds produced equal edge count (possible but unlikely); checking structure")
		same := true
		for _, e := range a.Edges() {
			if !c.HasEdge(e.U, e.V) {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical graphs")
		}
	}
}

func TestBernoulliExtremes(t *testing.T) {
	pts := testPoints(100, 45)
	p0, _ := Build(pts, Config{Alpha: 0.5, Model: ModelBernoulli, P: 0, Seed: 1})
	none, _ := Build(pts, Config{Alpha: 0.5, Model: ModelNone})
	if p0.M() != none.M() {
		t.Errorf("P=0 should equal ModelNone: %d vs %d", p0.M(), none.M())
	}
	p1, _ := Build(pts, Config{Alpha: 0.5, Model: ModelBernoulli, P: 1, Seed: 1})
	all, _ := Build(pts, Config{Alpha: 0.5, Model: ModelAll})
	if p1.M() != all.M() {
		t.Errorf("P=1 should equal ModelAll: %d vs %d", p1.M(), all.M())
	}
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Alpha: 0},
		{Alpha: -1},
		{Alpha: 1.5},
		{Alpha: 0.5, Model: ModelBernoulli, P: -0.1},
		{Alpha: 0.5, Model: ModelBernoulli, P: 1.1},
	} {
		if _, err := Build(testPoints(5, 1), cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestDimensionMismatchRejected(t *testing.T) {
	pts := []geom.Point{{0, 0}, {1, 1, 1}}
	if _, err := Build(pts, Config{Alpha: 0.5}); err == nil {
		t.Error("mixed dimensions should be rejected")
	}
}

func TestEmptyPointSet(t *testing.T) {
	g, err := Build(nil, Config{Alpha: 0.5})
	if err != nil || g.N() != 0 {
		t.Errorf("empty build: %v, n=%d", err, g.N())
	}
}

func TestGenerateConnected(t *testing.T) {
	for _, d := range []int{2, 3} {
		inst, err := GenerateConnected(
			geom.CloudConfig{Kind: geom.CloudUniform, N: 60, Dim: d, Seed: 5},
			Config{Alpha: 0.7, Model: ModelAll, Seed: 5},
		)
		if err != nil {
			t.Fatalf("d=%d: %v", d, err)
		}
		if !inst.G.Connected() {
			t.Fatalf("d=%d: instance not connected", d)
		}
		if inst.G.N() != 60 {
			t.Fatalf("d=%d: n=%d", d, inst.G.N())
		}
	}
}

func TestGenerateConnectedGreyModels(t *testing.T) {
	for _, m := range []Model{ModelBernoulli, ModelFalloff, ModelObstacle} {
		inst, err := GenerateConnected(
			geom.CloudConfig{Kind: geom.CloudUniform, N: 50, Dim: 2, Seed: 6},
			Config{Alpha: 0.6, Model: m, P: 0.5, Seed: 6},
		)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if !inst.G.Connected() {
			t.Fatalf("%v: not connected", m)
		}
	}
}

func TestObstacleModelBlocksSomething(t *testing.T) {
	// A dense corridor with obstacles should lose at least one grey edge
	// relative to ModelAll for some seed; try a few.
	pts := testPoints(150, 47)
	all, _ := Build(pts, Config{Alpha: 0.4, Model: ModelAll})
	blockedAny := false
	for seed := int64(0); seed < 5; seed++ {
		obs, _ := Build(pts, Config{Alpha: 0.4, Model: ModelObstacle, Seed: seed, Obstacles: 20})
		if obs.M() < all.M() {
			blockedAny = true
			break
		}
	}
	if !blockedAny {
		t.Error("obstacle model never blocked any edge across 5 seeds")
	}
}

func TestPairRandProperties(t *testing.T) {
	// Symmetric in (u, v) and in [0, 1).
	for u := 0; u < 20; u++ {
		for v := u + 1; v < 20; v++ {
			a := pairRand(3, u, v)
			b := pairRand(3, v, u)
			if a != b {
				t.Fatalf("pairRand not symmetric for (%d,%d)", u, v)
			}
			if a < 0 || a >= 1 {
				t.Fatalf("pairRand out of range: %v", a)
			}
		}
	}
}

func TestBallVolume(t *testing.T) {
	// V_2(r) = πr², V_3(r) = 4/3·πr³.
	if math.Abs(ballVolume(2, 1)-math.Pi) > 1e-9 {
		t.Errorf("V_2(1) = %v", ballVolume(2, 1))
	}
	if math.Abs(ballVolume(3, 1)-4*math.Pi/3) > 1e-9 {
		t.Errorf("V_3(1) = %v", ballVolume(3, 1))
	}
}

func TestModelString(t *testing.T) {
	tests := map[Model]string{
		ModelAll: "all", ModelNone: "none", ModelBernoulli: "bernoulli",
		ModelFalloff: "falloff", ModelObstacle: "obstacle", Model(0): "unknown",
	}
	for m, want := range tests {
		if got := m.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", m, got, want)
		}
	}
}
