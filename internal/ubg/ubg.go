// Package ubg generates d-dimensional α-quasi unit ball graphs, the network
// model of the paper (§1.1): vertices are points in R^d; every pair at
// distance <= α is connected, no pair at distance > 1 is connected, and
// pairs in the "grey zone" (α, 1] may or may not be connected — the model
// deliberately leaves that open to capture transmission errors, fading
// signal strength, and physical obstruction.
//
// This package makes the grey zone pluggable (Model) so experiments can
// sweep the entire space of behaviours the definition allows, including an
// adversarial obstacle model.
package ubg

import (
	"fmt"
	"math"
	"math/rand"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// Model selects how grey-zone pairs (distance in (α, 1]) are connected.
type Model int

// Grey-zone models.
const (
	// ModelAll connects every grey-zone pair; with α = 1 or ModelAll the
	// graph is the classical unit ball graph (UDG when d = 2).
	ModelAll Model = iota + 1
	// ModelNone connects no grey-zone pair; the graph is a UBG with radius α.
	ModelNone
	// ModelBernoulli connects each grey-zone pair independently with
	// probability P.
	ModelBernoulli
	// ModelFalloff connects a pair at distance x ∈ (α, 1] with probability
	// (1-x)/(1-α): certain at distance α, impossible at distance 1 — a
	// linear signal-strength fade.
	ModelFalloff
	// ModelObstacle drops grey-zone pairs whose segment crosses any of a
	// set of random axis-aligned slab obstacles — a crude but adversarial
	// physical-obstruction model (obstacles never block pairs within α,
	// preserving the α-UBG contract).
	ModelObstacle
)

// String names the model.
func (m Model) String() string {
	switch m {
	case ModelAll:
		return "all"
	case ModelNone:
		return "none"
	case ModelBernoulli:
		return "bernoulli"
	case ModelFalloff:
		return "falloff"
	case ModelObstacle:
		return "obstacle"
	default:
		return "unknown"
	}
}

// Config parameterizes α-UBG construction.
type Config struct {
	// Alpha is the guaranteed-connectivity radius, 0 < Alpha <= 1.
	Alpha float64
	// Model selects grey-zone behaviour (default ModelAll).
	Model Model
	// P is the Bernoulli parameter for ModelBernoulli.
	P float64
	// Seed drives grey-zone randomness (Bernoulli/falloff/obstacles).
	Seed int64
	// Obstacles is the obstacle count for ModelObstacle (default 8).
	Obstacles int
}

// Validate checks config invariants.
func (c Config) Validate() error {
	if !(c.Alpha > 0 && c.Alpha <= 1) {
		return fmt.Errorf("ubg: alpha %v outside (0, 1]", c.Alpha)
	}
	if c.Model == ModelBernoulli && (c.P < 0 || c.P > 1) {
		return fmt.Errorf("ubg: bernoulli p %v outside [0, 1]", c.P)
	}
	return nil
}

// slab is an axis-aligned obstacle: it blocks segments that cross the
// hyperplane coordinate axis = pos within the band [lo, hi] on axis 0.
type slab struct {
	axis     int
	pos      float64
	band     [2]float64
	bandAxis int
}

// Build constructs the α-UBG over the given points as a mutable graph.
// Edge weights are Euclidean distances; only pairs within distance 1 are
// ever examined. Build is BuildFrozen + Thaw: the construction itself runs
// grid-cell-parallel straight into pre-sized CSR slabs (see parallel.go),
// and the thawed copy packs its rows into one shared slab, so the whole
// path performs O(cells) small allocations rather than O(n + m).
func Build(points []geom.Point, cfg Config) (*graph.Graph, error) {
	f, err := BuildFrozen(points, cfg)
	if err != nil {
		return nil, err
	}
	return f.Thaw(), nil
}

// obstacleSlabs draws the random axis-aligned obstacles of ModelObstacle.
// The draw sequence is pinned to cfg.Seed so obstacle instances are
// reproducible across the sequential and parallel build paths.
func obstacleSlabs(points []geom.Point, cfg Config) []slab {
	nObs := cfg.Obstacles
	if nObs <= 0 {
		nObs = 8
	}
	d := points[0].Dim()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Obstacles live in the bounding box of the points.
	lo, hi := boundingBox(points)
	slabs := make([]slab, 0, nObs)
	for i := 0; i < nObs; i++ {
		ax := rng.Intn(d)
		bandAx := (ax + 1) % d
		pos := lo[ax] + rng.Float64()*(hi[ax]-lo[ax])
		c := lo[bandAx] + rng.Float64()*(hi[bandAx]-lo[bandAx])
		half := (hi[bandAx] - lo[bandAx]) * (0.05 + 0.15*rng.Float64())
		slabs = append(slabs, slab{axis: ax, pos: pos, band: [2]float64{c - half, c + half}, bandAxis: bandAx})
	}
	return slabs
}

// pairRand returns a deterministic pseudo-random float in [0,1) for an
// unordered vertex pair, so edge presence is independent of iteration order.
func pairRand(seed int64, u, v int) float64 {
	if u > v {
		u, v = v, u
	}
	h := uint64(seed)*0x9E3779B97F4A7C15 ^ uint64(u)*0xBF58476D1CE4E5B9 ^ uint64(v)*0x94D049BB133111EB
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// blocked reports whether segment pq crosses any obstacle slab.
func blocked(p, q geom.Point, slabs []slab) bool {
	for _, s := range slabs {
		a, b := p[s.axis], q[s.axis]
		if (a-s.pos)*(b-s.pos) > 0 {
			continue // both endpoints on the same side
		}
		den := b - a
		var cross float64
		if den == 0 {
			cross = p[s.bandAxis]
		} else {
			t := (s.pos - a) / den
			cross = p[s.bandAxis] + t*(q[s.bandAxis]-p[s.bandAxis])
		}
		if cross >= s.band[0] && cross <= s.band[1] {
			return true
		}
	}
	return false
}

func boundingBox(points []geom.Point) (lo, hi geom.Point) {
	d := points[0].Dim()
	lo = make(geom.Point, d)
	hi = make(geom.Point, d)
	copy(lo, points[0])
	copy(hi, points[0])
	for _, p := range points[1:] {
		for i, c := range p {
			if c < lo[i] {
				lo[i] = c
			}
			if c > hi[i] {
				hi[i] = c
			}
		}
	}
	return lo, hi
}

// Instance bundles a generated network: the points and the α-UBG over them.
type Instance struct {
	Points []geom.Point
	G      *graph.Graph
	Alpha  float64
	Dim    int
}

// GenerateConnected repeatedly generates a point cloud and α-UBG until the
// graph is connected, growing density (shrinking the bounding box) if
// needed. It is the workhorse instance generator for tests and experiments:
// the paper's guarantees are per-component, but connected instances make
// stretch measurement unambiguous.
func GenerateConnected(cloud geom.CloudConfig, cfg Config) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	side := cloud.Side
	if side <= 0 {
		// Default: aim for expected degree ~ 8 under radius alpha.
		side = DensitySide(cloud.N, cloud.Dim, cfg.Alpha, 8)
	}
	for attempt := 0; attempt < 40; attempt++ {
		c := cloud
		c.Side = side
		c.Seed = cloud.Seed + int64(attempt)*1000003
		pts := geom.GeneratePoints(c)
		g, err := Build(pts, cfg)
		if err != nil {
			return nil, err
		}
		if g.Connected() {
			return &Instance{Points: pts, G: g, Alpha: cfg.Alpha, Dim: cloud.Dim}, nil
		}
		side *= 0.9 // densify and retry
	}
	return nil, fmt.Errorf("ubg: could not generate a connected instance (n=%d d=%d alpha=%v)", cloud.N, cloud.Dim, cfg.Alpha)
}

// DensitySide returns the box side so that n balls of radius r in
// dimension d give expected degree approximately deg. It is the density
// target shared by GenerateConnected, the churn scenario runner, and the
// churn benchmarks.
func DensitySide(n, d int, r float64, deg float64) float64 {
	// Expected neighbors ≈ n * volume(ball r) / side^d = deg.
	vol := ballVolume(d, r)
	side := math.Pow(float64(n)*vol/deg, 1/float64(d))
	if side < r {
		side = r
	}
	return side
}

func ballVolume(d int, r float64) float64 {
	// V_d(r) = π^{d/2} / Γ(d/2+1) · r^d
	return math.Pow(math.Pi, float64(d)/2) / math.Gamma(float64(d)/2+1) * math.Pow(r, float64(d))
}
