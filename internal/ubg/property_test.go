package ubg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"topoctl/internal/geom"
)

// TestUBGContractProperty drives random configurations through Build and
// re-checks the α-UBG definition each time: the contract must hold for any
// admissible (alpha, model, p, seed) combination and any cloud shape.
func TestUBGContractProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(85_000))
	clouds := []geom.Cloud{geom.CloudUniform, geom.CloudClustered, geom.CloudCorridor, geom.CloudGridJitter}
	models := []Model{ModelAll, ModelNone, ModelBernoulli, ModelFalloff, ModelObstacle}
	f := func(aRaw, pRaw uint8, cloudSel, modelSel uint8, seed int16) bool {
		alpha := 0.1 + float64(aRaw)/255.0*0.9
		p := float64(pRaw) / 255.0
		cloud := clouds[int(cloudSel)%len(clouds)]
		model := models[int(modelSel)%len(models)]
		pts := geom.GeneratePoints(geom.CloudConfig{
			Kind: cloud, N: 40, Dim: 2, Side: 2, Seed: int64(seed),
		})
		g, err := Build(pts, Config{Alpha: alpha, Model: model, P: p, Seed: int64(seed)})
		if err != nil {
			return false
		}
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				d := geom.Dist(pts[i], pts[j])
				has := g.HasEdge(i, j)
				if d <= alpha && !has {
					return false
				}
				if d > 1 && has {
					return false
				}
				// Weight must be the Euclidean distance when present.
				if has {
					if w, _ := g.EdgeWeight(i, j); w != d {
						return false
					}
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestBuildIdempotentProperty: Build with identical inputs must produce
// identical graphs (grey-zone randomness is pair-keyed, not order-keyed).
func TestBuildIdempotentProperty(t *testing.T) {
	f := func(seed int16) bool {
		pts := geom.GeneratePoints(geom.CloudConfig{
			Kind: geom.CloudUniform, N: 50, Dim: 2, Side: 2, Seed: int64(seed),
		})
		cfg := Config{Alpha: 0.4, Model: ModelBernoulli, P: 0.5, Seed: int64(seed)}
		a, err1 := Build(pts, cfg)
		b, err2 := Build(pts, cfg)
		if err1 != nil || err2 != nil || a.M() != b.M() {
			return false
		}
		for _, e := range a.Edges() {
			if !b.HasEdge(e.U, e.V) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
