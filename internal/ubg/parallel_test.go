package ubg

import (
	"math"
	"runtime"
	"sort"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// naiveEdges is the quadratic reference: every pair within distance 1
// tested directly against the grey-zone acceptance rule.
func naiveEdges(t *testing.T, points []geom.Point, cfg Config) []graph.Edge {
	t.Helper()
	if cfg.Model == 0 {
		cfg.Model = ModelAll
	}
	keep := greyKeep(points, cfg)
	var es []graph.Edge
	for u := range points {
		for v := u + 1; v < len(points); v++ {
			d2 := geom.DistSq(points[u], points[v])
			if d2 > 1 {
				continue
			}
			d := math.Sqrt(d2)
			if keep != nil && !keep(u, v, d) {
				continue
			}
			es = append(es, graph.Edge{U: u, V: v, W: d})
		}
	}
	return es
}

func sortEdges(es []graph.Edge) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}

func edgesEqual(t *testing.T, got, want []graph.Edge, label string) {
	t.Helper()
	sortEdges(got)
	sortEdges(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d edges, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].U != want[i].U || got[i].V != want[i].V || got[i].W != want[i].W {
			t.Fatalf("%s: edge %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestBuildFrozenMatchesNaive pins the parallel slab-backed path against
// the quadratic reference for every grey-zone model in 2 and 3 dimensions.
func TestBuildFrozenMatchesNaive(t *testing.T) {
	cfgs := []Config{
		{Alpha: 1, Model: ModelAll},
		{Alpha: 0.6, Model: ModelAll},
		{Alpha: 0.6, Model: ModelNone},
		{Alpha: 0.5, Model: ModelBernoulli, P: 0.4, Seed: 9},
		{Alpha: 0.5, Model: ModelFalloff, Seed: 11},
		{Alpha: 0.5, Model: ModelObstacle, Seed: 13, Obstacles: 6},
	}
	for _, d := range []int{2, 3} {
		pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: 250, Dim: d, Seed: int64(41 + d), Side: 3})
		for _, cfg := range cfgs {
			f, err := BuildFrozen(pts, cfg)
			if err != nil {
				t.Fatalf("BuildFrozen(%v): %v", cfg.Model, err)
			}
			label := cfg.Model.String()
			edgesEqual(t, f.EdgesUnordered(), naiveEdges(t, pts, cfg), label)
			if f.N() != len(pts) {
				t.Fatalf("%s: N = %d, want %d", label, f.N(), len(pts))
			}
			// Build (the mutable wrapper) must agree with its own snapshot.
			g, err := Build(pts, cfg)
			if err != nil {
				t.Fatalf("Build(%v): %v", cfg.Model, err)
			}
			edgesEqual(t, g.EdgesUnordered(), f.EdgesUnordered(), label+"/thaw")
			if g.M() != f.M() || g.MaxDegree() != f.MaxDegree() {
				t.Fatalf("%s: thawed aggregates diverge", label)
			}
		}
	}
}

// TestBuildFrozenDeterministic requires bit-identical output regardless of
// worker count: acceptance is per-pair deterministic, cells are owned by
// single workers, and row fill order follows the fixed neighbor-cell scan.
func TestBuildFrozenDeterministic(t *testing.T) {
	pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: 400, Dim: 2, Seed: 5, Side: 4})
	cfg := Config{Alpha: 0.6, Model: ModelBernoulli, P: 0.5, Seed: 77}

	prev := runtime.GOMAXPROCS(1)
	seq, err := BuildFrozen(pts, cfg)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	runtime.GOMAXPROCS(8)
	par, err := BuildFrozen(pts, cfg)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	if seq.M() != par.M() || seq.TotalWeight() != par.TotalWeight() {
		t.Fatalf("worker count changed the graph: m %d/%d", seq.M(), par.M())
	}
	for u := 0; u < seq.N(); u++ {
		a, b := seq.Neighbors(u), par.Neighbors(u)
		if len(a) != len(b) {
			t.Fatalf("vertex %d: row lengths differ across worker counts", u)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("vertex %d: row order differs across worker counts", u)
			}
		}
	}
}

func TestBuildRadius(t *testing.T) {
	pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: 200, Dim: 2, Seed: 3, Side: 3})
	const radius = 0.45
	f, err := BuildRadius(pts, radius)
	if err != nil {
		t.Fatal(err)
	}
	var want []graph.Edge
	for u := range pts {
		for v := u + 1; v < len(pts); v++ {
			if d2 := geom.DistSq(pts[u], pts[v]); d2 <= radius*radius {
				want = append(want, graph.Edge{U: u, V: v, W: math.Sqrt(d2)})
			}
		}
	}
	edgesEqual(t, f.EdgesUnordered(), want, "radius")

	if _, err := BuildRadius(pts, 0); err == nil {
		t.Fatal("BuildRadius(0) must fail")
	}
	if _, err := BuildRadius([]geom.Point{{0, 0}, {1}}, 1); err == nil {
		t.Fatal("mixed dimensions must fail")
	}
}

func TestBuildFrozenEdgeCases(t *testing.T) {
	// Empty and singleton inputs.
	f, err := BuildFrozen(nil, Config{Alpha: 1})
	if err != nil || f.N() != 0 || f.M() != 0 {
		t.Fatalf("empty build: %v n=%d m=%d", err, f.N(), f.M())
	}
	f, err = BuildFrozen([]geom.Point{{0.5, 0.5}}, Config{Alpha: 1})
	if err != nil || f.N() != 1 || f.M() != 0 {
		t.Fatalf("singleton build: %v n=%d m=%d", err, f.N(), f.M())
	}
	// Invalid config and mixed dimensions surface as errors.
	if _, err := BuildFrozen(nil, Config{Alpha: 0}); err == nil {
		t.Fatal("alpha 0 must fail")
	}
	if _, err := BuildFrozen([]geom.Point{{0, 0}, {1}}, Config{Alpha: 1}); err == nil {
		t.Fatal("mixed dimensions must fail")
	}
	// Coincident points: distance 0 pairs connect, self never does.
	f, err = BuildFrozen([]geom.Point{{1, 1}, {1, 1}, {1, 1}}, Config{Alpha: 0.5})
	if err != nil || f.M() != 3 {
		t.Fatalf("coincident build: %v m=%d, want 3", err, f.M())
	}
}
