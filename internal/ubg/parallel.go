package ubg

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// BuildFrozen constructs the α-UBG over the given points directly as an
// immutable CSR snapshot — the million-vertex build path. Candidate edges
// are generated grid-cell-parallel straight into a pre-sized append-only
// slab: a counting pass accumulates per-vertex degrees, a fill pass writes
// each adjacency row in place, and no intermediate edge list, map, or
// per-edge allocation exists at any point. Every grey-zone model is
// supported; acceptance is deterministic and symmetric per unordered pair
// (pairRand and the obstacle test are order-independent by construction),
// so the result is identical regardless of worker count and bit-identical
// to the sequential path's edge set.
func BuildFrozen(points []geom.Point, cfg Config) (*graph.Frozen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Model == 0 {
		cfg.Model = ModelAll
	}
	if err := checkDims(points); err != nil {
		return nil, err
	}
	return buildCSR(points, 1.0, greyKeep(points, cfg)), nil
}

// BuildRadius constructs the deterministic ball graph at the given radius —
// every pair at distance ≤ radius connected, Euclidean weights — as a
// frozen CSR snapshot via the same parallel path. It is the bulk
// construction primitive behind the dynamic engines' initial base graph
// (the ModelAll graph at Options.Radius).
func BuildRadius(points []geom.Point, radius float64) (*graph.Frozen, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("ubg: radius %v must be positive", radius)
	}
	if err := checkDims(points); err != nil {
		return nil, err
	}
	return buildCSR(points, radius, nil), nil
}

// checkDims validates that all points share the first point's dimension.
func checkDims(points []geom.Point) error {
	if len(points) == 0 {
		return nil
	}
	d := points[0].Dim()
	for i, p := range points {
		if p.Dim() != d {
			return fmt.Errorf("ubg: point %d has dimension %d, want %d", i, p.Dim(), d)
		}
	}
	return nil
}

// greyKeep compiles cfg into the per-pair acceptance predicate buildCSR
// evaluates on every in-radius candidate, or nil when every pair is kept
// (ModelAll — the predicate call is skipped entirely). The predicate must
// be deterministic and symmetric in (u, v): both directed scans of a pair
// must agree, and the counting and fill passes must agree.
func greyKeep(points []geom.Point, cfg Config) func(u, v int, dist float64) bool {
	alpha := cfg.Alpha
	switch cfg.Model {
	case ModelNone:
		return func(u, v int, dist float64) bool {
			return dist <= alpha
		}
	case ModelBernoulli:
		seed, p := cfg.Seed, cfg.P
		return func(u, v int, dist float64) bool {
			return dist <= alpha || pairRand(seed, u, v) < p
		}
	case ModelFalloff:
		seed := cfg.Seed
		return func(u, v int, dist float64) bool {
			return dist <= alpha || pairRand(seed, u, v) < (1-dist)/(1-alpha)
		}
	case ModelObstacle:
		if len(points) == 0 {
			return nil
		}
		slabs := obstacleSlabs(points, cfg)
		return func(u, v int, dist float64) bool {
			return dist <= alpha || !blocked(points[u], points[v], slabs)
		}
	default: // ModelAll
		return nil
	}
}

// csrCellChunk is how many grid cells a worker claims per atomic fetch —
// coarse enough that the counter never contends, fine enough to balance
// ragged cell occupancies across workers.
const csrCellChunk = 16

// buildCSR is the shared parallel construction core: bucket the points
// into radius-sized cells (geom.CellGrid), then two passes over the cells
// — degree count, then row fill — with cells fanned out across
// GOMAXPROCS workers. A vertex belongs to exactly one cell and a cell is
// claimed by exactly one worker per pass, so every Deg[u] increment and
// every row write is single-writer without locks. Distances are
// recomputed in the fill pass instead of buffered between passes: at 16
// bytes per halfedge a candidate buffer would dwarf the output slab, and
// the second DistSq/sqrt is cheaper than that memory traffic. keep (when
// non-nil) must be deterministic and symmetric so the passes and the two
// directed scans of each pair all agree; pair inclusion matches Grid
// semantics exactly (DistSq ≤ radius²).
func buildCSR(points []geom.Point, radius float64, keep func(u, v int, dist float64) bool) *graph.Frozen {
	n := len(points)
	b := graph.NewCSRBuilder(n)
	if n == 0 {
		return b.Finish()
	}
	cg := geom.NewCellGrid(points, radius)
	cells := cg.Cells()
	workers := runtime.GOMAXPROCS(0)
	if max := (cells + csrCellChunk - 1) / csrCellChunk; workers > max {
		workers = max
	}
	r2 := radius * radius

	// pass scans every cell once: for each vertex u owned by a claimed
	// cell, every candidate v in the 3^d neighbor block is tested and the
	// accepted (u, v, dist) triples are handed to emit. emit writes only
	// u-indexed state, so the single-writer argument above applies.
	pass := func(emit func(u, v int32, d float64)) {
		var next atomic.Int64
		scan := func() {
			sc := cg.NewScan()
			var ncells []int32
			for {
				lo := int(next.Add(csrCellChunk)) - csrCellChunk
				if lo >= cells {
					return
				}
				hi := lo + csrCellChunk
				if hi > cells {
					hi = cells
				}
				for c := lo; c < hi; c++ {
					ncells = cg.NeighborCells(ncells[:0], c, sc)
					for _, u := range cg.CellIDs(c) {
						pu := points[u]
						for _, nc := range ncells {
							for _, v := range cg.CellIDs(int(nc)) {
								if v == u {
									continue
								}
								d2 := geom.DistSq(pu, points[v])
								if d2 > r2 {
									continue
								}
								d := math.Sqrt(d2)
								if keep != nil && !keep(int(u), int(v), d) {
									continue
								}
								emit(u, v, d)
							}
						}
					}
				}
			}
		}
		if workers <= 1 {
			scan()
			return
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scan()
			}()
		}
		wg.Wait()
	}

	pass(func(u, v int32, d float64) { b.Deg[u]++ })
	b.Alloc()
	fill := make([]int32, n) // row cursors; each written by u's owner only
	pass(func(u, v int32, d float64) {
		b.Row(int(u))[fill[u]] = graph.Halfedge{To: int(v), W: d}
		fill[u]++
	})
	return b.Finish()
}
