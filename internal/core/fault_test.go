package core

import (
	"testing"

	"topoctl/internal/fault"
	"topoctl/internal/graph"
	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

// TestFaultTolerantRelaxedBuild validates the §1.6.1 extension on the
// relaxed algorithm itself: the FaultK=k output must survive k random edge
// faults with its stretch intact, across injection trials.
func TestFaultTolerantRelaxedBuild(t *testing.T) {
	inst := buildInstance(t, 90, 2, 0.9, ubg.ModelAll, 90_000)
	p := mustParams(t, 0.5, 0.9, 2)
	for _, k := range []int{1, 2} {
		res, err := Build(inst.Points, inst.G, Options{Params: p, FaultK: k})
		if err != nil {
			t.Fatal(err)
		}
		// Base property first.
		if s := metrics.Stretch(inst.G, res.Spanner); s > p.T+1e-9 {
			t.Errorf("k=%d: base stretch %v > t", k, s)
		}
		chk := fault.CheckFaults(inst.G, res.Spanner, p.T, k, 30, fault.EdgeFaults, 11)
		if chk.Violations > 0 {
			t.Errorf("k=%d: %d/%d fault trials violated (worst %v)",
				k, chk.Violations, chk.Trials, chk.WorstStretch)
		}
	}
}

// TestFaultTolerantRelaxedDenser: tolerance must cost edges, monotonically
// in k.
func TestFaultTolerantRelaxedDenser(t *testing.T) {
	inst := buildInstance(t, 90, 2, 0.9, ubg.ModelAll, 91_000)
	p := mustParams(t, 0.5, 0.9, 2)
	var prev int
	for _, k := range []int{0, 1, 2} {
		res, err := Build(inst.Points, inst.G, Options{Params: p, FaultK: k})
		if err != nil {
			t.Fatal(err)
		}
		if res.Spanner.M() < prev {
			t.Errorf("k=%d spanner (%d edges) sparser than k-1 (%d)", k, res.Spanner.M(), prev)
		}
		prev = res.Spanner.M()
	}
}

// TestFaultTolerantDegreeStillModest: k+1 query edges per cluster pair must
// keep the degree bounded (Lemma 4 argument scales by k+1).
func TestFaultTolerantDegreeStillModest(t *testing.T) {
	inst := buildInstance(t, 120, 2, 0.9, ubg.ModelAll, 92_000)
	p := mustParams(t, 0.5, 0.9, 2)
	res, err := Build(inst.Points, inst.G, Options{Params: p, FaultK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.Spanner.MaxDegree(); d > 24 {
		t.Errorf("k=1 max degree %d outside the constant band", d)
	}
}

func TestNeedsEdgeRules(t *testing.T) {
	// H: a 4-cycle with unit edges; query edge 0-2 with weight 1.9.
	h := graph.New(4)
	h.AddEdge(0, 1, 1)
	h.AddEdge(1, 2, 1)
	h.AddEdge(2, 3, 1)
	h.AddEdge(3, 0, 1)
	q := EdgeInfo{U: 0, V: 2, Dist: 1.9, W: 1.9}
	// t = 1.1: bound 2.09; one 2-path exists → not needed for k=0.
	if NeedsEdge(h, q, 1.1, 0, fault.EdgeFaults) {
		t.Error("k=0: edge demanded despite a t-path")
	}
	// k=1: needs two edge-disjoint paths — the cycle has exactly two → ok.
	if NeedsEdge(h, q, 1.1, 1, fault.EdgeFaults) {
		t.Error("k=1: edge demanded despite two disjoint t-paths")
	}
	// k=2: only two disjoint paths exist → needed.
	if !NeedsEdge(h, q, 1.1, 2, fault.EdgeFaults) {
		t.Error("k=2: edge not demanded with only two disjoint paths")
	}
	// Tight bound excludes the paths entirely.
	if !NeedsEdge(h, q, 1.0, 0, fault.EdgeFaults) {
		t.Error("bound too tight but edge not demanded")
	}
}

// TestInsertScoredKeepsBest exercises the per-pair top-(k+1) buffer.
func TestInsertScoredKeepsBest(t *testing.T) {
	var list []scoredEdge
	for i, s := range []float64{5, 3, 4, 1, 2} {
		list = insertScored(list, scoredEdge{e: EdgeInfo{U: i, V: i + 10}, score: s}, 3)
	}
	if len(list) != 3 {
		t.Fatalf("len = %d", len(list))
	}
	want := []float64{1, 2, 3}
	for i, w := range want {
		if list[i].score != w {
			t.Errorf("list[%d].score = %v, want %v", i, list[i].score, w)
		}
	}
}

// TestSelectQueriesPerPairExtra: with PerPairExtra = 1 each populated
// cluster pair contributes up to two query edges.
func TestSelectQueriesPerPairExtra(t *testing.T) {
	inst := buildInstance(t, 80, 2, 0.8, ubg.ModelAll, 93_000)
	p := mustParams(t, 0.5, 0.8, 2)
	one, err := Build(inst.Points, inst.G, Options{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Build(inst.Points, inst.G, Options{Params: p, FaultK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if two.Stats.Queried <= one.Stats.Queried {
		t.Errorf("k=1 queried %d <= k=0 queried %d", two.Stats.Queried, one.Stats.Queried)
	}
}

// TestFaultTolerantRelaxedVertexMode: the strictly stronger vertex-fault
// guarantee on the relaxed algorithm.
func TestFaultTolerantRelaxedVertexMode(t *testing.T) {
	inst := buildInstance(t, 80, 2, 0.9, ubg.ModelAll, 94_000)
	p := mustParams(t, 0.5, 0.9, 2)
	res, err := Build(inst.Points, inst.G, Options{Params: p, FaultK: 1, FaultVertexMode: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := metrics.Stretch(inst.G, res.Spanner); s > p.T+1e-9 {
		t.Errorf("base stretch %v > t", s)
	}
	chk := fault.CheckFaults(inst.G, res.Spanner, p.T, 1, 25, fault.VertexFaults, 13)
	if chk.Violations > 0 {
		t.Errorf("%d/%d vertex-fault trials violated (worst %v)", chk.Violations, chk.Trials, chk.WorstStretch)
	}
	// Vertex mode must be at least as dense as edge mode.
	edge, err := Build(inst.Points, inst.G, Options{Params: p, FaultK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Spanner.M() < edge.Spanner.M() {
		t.Errorf("vertex-mode spanner (%d) sparser than edge-mode (%d)", res.Spanner.M(), edge.Spanner.M())
	}
}
