package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testBins(t *testing.T, n int, eps, alpha float64) Bins {
	t.Helper()
	p, err := NewParams(eps, alpha, 2)
	if err != nil {
		t.Fatal(err)
	}
	return NewBins(n, p)
}

// TestBinIndexPartitionProperty: every length in (0, 1] lands in exactly
// the bin whose interval contains it: bin 0 is (0, W0], bin i is
// (W_{i-1}, W_i].
func TestBinIndexPartitionProperty(t *testing.T) {
	b := testBins(t, 500, 0.5, 0.75)
	rng := rand.New(rand.NewSource(70))
	f := func(_ uint8) bool {
		d := rng.Float64()
		if d == 0 {
			d = 1e-9
		}
		i := b.Index(d)
		if i < 0 || i > b.M {
			return false
		}
		if i == 0 {
			return d <= b.W0
		}
		return d > b.Ceiling(i-1) && d <= b.Ceiling(i)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestBinBoundariesExact(t *testing.T) {
	b := testBins(t, 100, 0.5, 0.8)
	// Exactly W0 goes to bin 0.
	if got := b.Index(b.W0); got != 0 {
		t.Errorf("Index(W0) = %d, want 0", got)
	}
	// Just above W0 goes to bin 1.
	if got := b.Index(b.W0 * 1.0000001); got != 1 {
		t.Errorf("Index(W0+) = %d, want 1", got)
	}
	// Exactly W_i goes to bin i.
	for i := 1; i <= 5; i++ {
		if got := b.Index(b.Ceiling(i)); got != i {
			t.Errorf("Index(W_%d) = %d, want %d", i, got, i)
		}
	}
}

// TestBinsCoverUnitLength: W_M must reach 1 so every α-UBG edge (length
// <= 1) has a bin.
func TestBinsCoverUnitLength(t *testing.T) {
	for _, n := range []int{10, 100, 1000} {
		for _, alpha := range []float64{0.3, 0.75, 1.0} {
			b := testBins(t, n, 0.5, alpha)
			if b.Ceiling(b.M) < 1-1e-9 {
				t.Errorf("n=%d alpha=%v: W_M = %v < 1", n, alpha, b.Ceiling(b.M))
			}
			if got := b.Index(1.0); got > b.M {
				t.Errorf("n=%d alpha=%v: Index(1) = %d > M = %d", n, alpha, got, b.M)
			}
		}
	}
}

// TestBinCountLogarithmic: M must scale as log n (the phase bound the
// paper's round complexity rests on).
func TestBinCountLogarithmic(t *testing.T) {
	m100 := testBins(t, 100, 0.5, 0.75).M
	m10k := testBins(t, 10000, 0.5, 0.75).M
	// log(10000)/log(100) = 2, allow slack.
	if float64(m10k) > 2.6*float64(m100) {
		t.Errorf("bin count not logarithmic: M(100)=%d M(10000)=%d", m100, m10k)
	}
}

func TestBinsMonotoneCeilings(t *testing.T) {
	b := testBins(t, 200, 1.0, 0.6)
	for i := 1; i <= b.M; i++ {
		if b.Ceiling(i) <= b.Ceiling(i-1) {
			t.Fatalf("ceilings not increasing at %d", i)
		}
	}
}
