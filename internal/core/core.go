package core

import (
	"fmt"
	"sort"

	"topoctl/internal/cluster"
	"topoctl/internal/fault"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/greedy"
	"topoctl/internal/mis"
)

// Options configures a sequential relaxed-greedy build. The zero value of
// the ablation flags is the paper's algorithm; each flag disables one design
// ingredient so the T12 ablation experiment can measure its contribution.
type Options struct {
	// Params are the derived constants (see NewParams).
	Params Params
	// Metric is the edge-weight metric (default Euclidean).
	Metric Metric
	// DisableCoveredFilter skips the Czumaj–Zhao covered-edge filter
	// (§2.2.2, Lemma 3): every non-spanner bin edge becomes a candidate.
	DisableCoveredFilter bool
	// DisableQueryFilter skips the one-query-edge-per-cluster-pair rule
	// (formula (1)): every candidate edge is queried.
	DisableQueryFilter bool
	// DisableRedundancy skips mutually-redundant edge removal (§2.2.5).
	DisableRedundancy bool
	// EagerUpdates abandons lazy updating: candidates are tested one at a
	// time against the live spanner with exact Dijkstra queries instead of
	// in parallel against the frozen cluster graph. This is the variant
	// that cannot be distributed; it serves as the "exact" reference arm
	// of the ablation.
	EagerUpdates bool
	// BinRatio overrides the derived bin ratio r when > 1 (ablation: the
	// theory requires r < (tδ+1)/2; larger r means fewer, coarser bins).
	BinRatio float64
	// FaultK, when positive, builds a k-fault-tolerant spanner (§1.6.1,
	// after Czumaj–Zhao): phase 0 requires k+1 disjoint t-paths per clique
	// edge, k+1 query edges are kept per cluster pair, a query edge is
	// rejected only when the partial spanner already packs k+1 disjoint
	// t-paths, and redundancy removal is skipped (a removed edge's
	// surviving counterpart is a single point of failure). Disjointness is
	// packed on the partial spanner, not the cluster graph — see NeedsEdge.
	FaultK int
	// FaultVertexMode switches FaultK to vertex faults (internally
	// vertex-disjoint path packing), the strictly stronger guarantee.
	FaultVertexMode bool
}

// faultMode maps the options to the fault model.
func (o Options) faultMode() fault.Mode {
	if o.FaultVertexMode {
		return fault.VertexFaults
	}
	return fault.EdgeFaults
}

// Stats counts what the algorithm did; the experiment harness reports them.
type Stats struct {
	// Phases is the total number of bins in the schedule (M+1).
	Phases int
	// NonEmptyPhases is how many bins actually contained edges.
	NonEmptyPhases int
	// EdgesTotal and EdgesShort count input edges and bin-0 edges.
	EdgesTotal, EdgesShort int
	// AlreadyInSpanner counts bin edges skipped because an earlier phase
	// (e.g. a phase-0 clique spanner) already retained them.
	AlreadyInSpanner int
	// SameCluster counts bin edges with both endpoints in one cluster
	// (always already t-spanned; see DESIGN.md §3.3 step 2).
	SameCluster int
	// Covered counts edges dropped by the Czumaj–Zhao filter.
	Covered int
	// Candidates counts candidate query edges after filtering.
	Candidates int
	// Queried counts selected query edges actually tested.
	Queried int
	// Added counts edges added to the spanner (including phase 0).
	Added int
	// RemovedRedundant counts edges deleted by redundancy removal.
	RemovedRedundant int
	// MaxInterDegree is the largest cluster-graph inter-cluster degree
	// observed (Lemma 6 quantity).
	MaxInterDegree int
	// MaxQueryEdgesPerCluster is the largest number of selected query
	// edges incident to one cluster in any phase (Lemma 4 quantity).
	MaxQueryEdgesPerCluster int
}

// Result is a completed build.
type Result struct {
	// Spanner is the output G' with weights in the chosen metric.
	Spanner *graph.Graph
	// Params echoes the constants used.
	Params Params
	// Bins echoes the bin schedule.
	Bins Bins
	// Stats reports work counters.
	Stats Stats
}

// Build runs the sequential relaxed greedy algorithm (paper §2) on the
// α-UBG g whose vertices are embedded at points. Edge weights of g must be
// Euclidean lengths (as produced by internal/ubg); the output spanner's
// weights are in opts.Metric units.
func Build(points []geom.Point, g *graph.Graph, opts Options) (*Result, error) {
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.Metric == (Metric{}) {
		opts.Metric = EuclideanMetric
	}
	if err := opts.Metric.Validate(); err != nil {
		return nil, err
	}
	if len(points) != g.N() {
		return nil, fmt.Errorf("core: %d points but %d vertices", len(points), g.N())
	}
	b := &builder{
		points: points,
		g:      g,
		opts:   opts,
		p:      opts.Params,
		sp:     graph.New(g.N()),
	}
	if opts.BinRatio > 1 {
		b.p.R = opts.BinRatio
	}
	b.run()
	return &Result{Spanner: b.sp, Params: b.p, Bins: b.bins, Stats: b.stats}, nil
}

// builder carries the mutable state of one build.
type builder struct {
	points []geom.Point
	g      *graph.Graph // input α-UBG, Euclidean weights
	opts   Options
	p      Params
	sp     *graph.Graph // output spanner, metric weights
	bins   Bins
	stats  Stats
}

func (b *builder) run() {
	n := b.g.N()
	b.bins = NewBins(n, b.p)
	b.stats.Phases = b.bins.M + 1

	// Distribute edges into bins by Euclidean length.
	byBin := BinEdges(b.g, b.bins, b.opts.Metric)
	b.stats.EdgesTotal = b.g.M()
	b.stats.EdgesShort = len(byBin[0])

	added := Phase0(b.points, b.sp, byBin[0], b.p.T, b.opts.Metric, b.opts.FaultK, b.opts.faultMode())
	b.stats.Added += added

	// Remaining bins in increasing order, skipping empty ones (pure
	// optimization: an empty phase performs no queries and no updates).
	var phases []int
	for i := range byBin {
		if i > 0 {
			phases = append(phases, i)
		}
	}
	sort.Ints(phases)
	for _, i := range phases {
		b.stats.NonEmptyPhases++
		b.phase(i, byBin[i])
	}
}

// BinEdges distributes the edges of g (Euclidean weights) into the bin
// schedule, annotating each with its metric weight. Edge order within a
// bin is irrelevant (every consumer sorts or groups deterministically), so
// the unsorted edge enumeration suffices.
func BinEdges(g *graph.Graph, bins Bins, m Metric) map[int][]EdgeInfo {
	byBin := make(map[int][]EdgeInfo)
	for _, e := range g.EdgesUnordered() {
		i := bins.Index(e.W)
		byBin[i] = append(byBin[i], EdgeInfo{U: e.U, V: e.V, Dist: e.W, W: m.Weight(e.W)})
	}
	return byBin
}

// Phase0 implements PROCESS-SHORT-EDGES (§2.1): the connected components of
// the bin-0 graph are cliques in G (Lemma 1); each is t-spanned by
// SEQ-GREEDY over its full clique (the k-fault-tolerant greedy when
// faultK > 0). Retained edges are inserted into sp with metric weights;
// the number added is returned. Exported because the distributed algorithm
// runs the identical local computation per component (Theorem 14).
func Phase0(points []geom.Point, sp *graph.Graph, short []EdgeInfo, t float64, m Metric, faultK int, faultMode fault.Mode) int {
	if len(short) == 0 {
		return 0
	}
	g0 := graph.New(sp.N())
	for _, e := range short {
		g0.AddEdge(e.U, e.V, e.Dist)
	}
	added := 0
	for _, comp := range g0.Components() {
		if len(comp) < 2 {
			continue
		}
		edges := greedy.CliqueEdges(comp, func(u, v int) float64 {
			return m.Weight(geom.Dist(points[u], points[v]))
		})
		if faultK > 0 {
			added += len(fault.Run(sp, edges, t, faultK, faultMode))
		} else {
			added += len(greedy.Run(sp, edges, t))
		}
	}
	return added
}

// phase implements PROCESS-LONG-EDGES (§2.2) for one bin.
func (b *builder) phase(i int, edges []EdgeInfo) {
	if b.opts.EagerUpdates {
		b.phaseEager(edges)
		return
	}

	wPrev := b.opts.Metric.Weight(b.bins.Ceiling(i - 1)) // W_{i-1}, metric units
	radius := b.p.Delta * wPrev
	crossBound := (2*b.p.Delta + 1) * wPrev

	// Step (i): cluster cover of G'_{i-1}.
	cov := cluster.GreedyCover(b.sp, radius)

	// Step (iii) [built before queries are answered]: cluster graph H_{i-1}.
	// Inter-edges heavier than t·W_i can never serve a query in this phase.
	rescueBound := b.p.T * b.opts.Metric.Weight(b.bins.Ceiling(i))
	cg := cluster.BuildClusterGraph(b.sp, cov, wPrev, crossBound, rescueBound)
	if d := cg.MaxInterDegree(); d > b.stats.MaxInterDegree {
		b.stats.MaxInterDegree = d
	}

	// Step (ii): select query edges. Fault-tolerant builds disable the
	// covered-edge filter: coverage rests on a single spanner edge {u,z},
	// a single point of failure.
	queries, st := SelectQueries(b.points, b.sp, cov, edges, SelectOpts{
		T: b.p.T, Theta: b.p.Theta, Alpha: b.p.Alpha,
		DisableCoveredFilter: b.opts.DisableCoveredFilter || b.opts.FaultK > 0,
		DisableQueryFilter:   b.opts.DisableQueryFilter,
		PerPairExtra:         b.opts.FaultK,
	})
	b.absorbSelectStats(st)

	// Step (iv): answer shortest path queries on H_{i-1}; lazy updates —
	// the spanner is only modified after every query has been answered.
	// Fault-tolerant builds pack disjoint paths on the partial spanner
	// itself: edge-disjoint H-paths do not certify edge-disjoint G'-paths
	// (distinct H edges can expand to overlapping G' segments).
	var added []EdgeInfo
	for _, q := range queries {
		b.stats.Queried++
		if b.opts.FaultK > 0 {
			if !NeedsEdge(b.sp, q, b.p.T, b.opts.FaultK, b.opts.faultMode()) {
				continue
			}
		} else if !NeedsEdge(cg.H, q, b.p.T, 0, fault.EdgeFaults) {
			continue
		}
		added = append(added, q)
	}
	for _, e := range added {
		b.sp.AddEdge(e.U, e.V, e.W)
		b.stats.Added++
	}

	// Step (v): remove mutually redundant edges among this phase's
	// additions. Skipped for fault-tolerant builds: a removed edge relies
	// on exactly one surviving counterpart, a single point of failure.
	if !b.opts.DisableRedundancy && b.opts.FaultK == 0 && len(added) > 1 {
		bound := b.p.T1 * b.opts.Metric.Weight(b.bins.Ceiling(i))
		pairs := FindRedundantPairs(cg.H, added, b.p.T1, bound)
		b.stats.RemovedRedundant += RemoveNonMIS(b.sp, added, pairs, mis.Greedy)
	}
}

func (b *builder) absorbSelectStats(st SelectStats) {
	b.stats.AlreadyInSpanner += st.AlreadyInSpanner
	b.stats.SameCluster += st.SameCluster
	b.stats.Covered += st.Covered
	b.stats.Candidates += st.Candidates
	if st.MaxPerCluster > b.stats.MaxQueryEdgesPerCluster {
		b.stats.MaxQueryEdgesPerCluster = st.MaxPerCluster
	}
}

// NeedsEdge is the query-answering rule shared by the sequential and
// distributed implementations: edge q must be added unless graph h already
// contains a t-path (faultK = 0), or k+1 disjoint t-paths under the given
// fault mode (faultK = k > 0, the §1.6.1 extension). For faultK = 0
// callers pass the frozen cluster graph H; for faultK > 0 they must pass
// the partial spanner itself, because disjointness on H does not certify
// disjointness in G'. Both searches stay inside the metric ball of radius
// t·w(q) around the endpoints, so the computation remains local (Theorem 9).
func NeedsEdge(h *graph.Graph, q EdgeInfo, t float64, faultK int, mode fault.Mode) bool {
	bound := t * q.W
	if faultK == 0 {
		return !h.ReachableWithin(q.U, q.V, bound)
	}
	return !fault.DisjointPathsAtLeast(h, q.U, q.V, bound, faultK+1, mode)
}

// RemoveNonMIS builds the conflict graph over added edges from the given
// redundant pairs, computes an MIS with the supplied backend, and removes
// from sp every conflicted edge outside the MIS. It returns the number of
// removed edges. Removed edges form an independent set's complement within
// the conflict graph, so every removed edge retains a surviving mutually
// redundant counterpart — the property Theorem 10's proof needs. Exported
// because the distributed implementation runs the identical removal rule
// with its own (round-counted) MIS backend.
func RemoveNonMIS(sp *graph.Graph, added []EdgeInfo, pairs [][2]int, misFn func([][]int) []bool) int {
	if len(pairs) == 0 {
		return 0
	}
	adj := make([][]int, len(added))
	for _, p := range pairs {
		adj[p[0]] = append(adj[p[0]], p[1])
		adj[p[1]] = append(adj[p[1]], p[0])
	}
	inMIS := misFn(adj)
	removed := 0
	for i, e := range added {
		if len(adj[i]) > 0 && !inMIS[i] {
			sp.RemoveEdge(e.U, e.V)
			removed++
		}
	}
	return removed
}

// phaseEager is the non-lazy ablation arm: candidates are tested one by one
// with exact queries on the live spanner (cover filtering still applies so
// the comparison isolates the lazy-update ingredient).
func (b *builder) phaseEager(edges []EdgeInfo) {
	sort.Slice(edges, func(x, y int) bool {
		a, c := edges[x], edges[y]
		if a.W != c.W {
			return a.W < c.W
		}
		if a.U != c.U {
			return a.U < c.U
		}
		return a.V < c.V
	})
	for _, e := range edges {
		if b.sp.HasEdge(e.U, e.V) {
			b.stats.AlreadyInSpanner++
			continue
		}
		if !b.opts.DisableCoveredFilter && Covered(b.points, b.sp, e.U, e.V, e.Dist, b.p.Alpha, b.p.Theta) {
			b.stats.Covered++
			continue
		}
		b.stats.Queried++
		if b.sp.ReachableWithin(e.U, e.V, b.p.T*e.W) {
			continue
		}
		b.sp.AddEdge(e.U, e.V, e.W)
		b.stats.Added++
	}
}
