package core

import (
	"math/rand"
	"testing"

	"topoctl/internal/cluster"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// TestCoveredCzumajZhaoLemma validates Lemma 3 itself (Figures 1 and 3):
// for random triples (u, v, z) satisfying the covered-edge preconditions,
// the edge {u,z} followed by an exact t-spanner path z→v is a t-spanner
// path u→v. We verify the triangle-inequality form:
// |uz| + t·|zv| <= t·|uv| whenever ∠vuz <= θ, |uz| <= |uv| and
// t >= 1/(cos θ − sin θ).
func TestCoveredCzumajZhaoLemma(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for _, eps := range []float64{0.25, 0.5, 1.0} {
		p, err := NewParams(eps, 0.75, 2)
		if err != nil {
			t.Fatal(err)
		}
		checked := 0
		for trial := 0; trial < 20000; trial++ {
			u := geom.Point{0, 0}
			v := geom.Point{rng.Float64(), rng.Float64()}
			z := geom.Point{rng.Float64()*2 - 0.5, rng.Float64()*2 - 0.5}
			duv, duz, dzv := geom.Dist(u, v), geom.Dist(u, z), geom.Dist(z, v)
			if duv == 0 || duz == 0 {
				continue
			}
			if duz > duv || geom.Angle(u, v, z) > p.Theta {
				continue
			}
			checked++
			if duz+p.T*dzv > p.T*duv+1e-9 {
				t.Fatalf("eps=%v: Czumaj–Zhao violated: |uz|=%v |zv|=%v |uv|=%v theta=%v angle=%v",
					eps, duz, dzv, duv, p.Theta, geom.Angle(u, v, z))
			}
		}
		if checked < 100 {
			t.Fatalf("eps=%v: only %d triples satisfied preconditions", eps, checked)
		}
	}
}

// selectFixture builds a small two-cluster scene for selection tests.
type selectFixture struct {
	points []geom.Point
	sp     *graph.Graph
	cov    *cluster.Cover
}

func newSelectFixture(t *testing.T) *selectFixture {
	t.Helper()
	// Two tight clusters of 3 nodes each, far apart.
	points := []geom.Point{
		{0, 0}, {0.02, 0}, {0, 0.02}, // cluster around 0
		{0.9, 0}, {0.92, 0}, {0.9, 0.02}, // cluster around 3
	}
	sp := graph.New(6)
	// Spanner so far: intra-cluster stars.
	sp.AddEdge(0, 1, 0.02)
	sp.AddEdge(0, 2, 0.02)
	sp.AddEdge(3, 4, 0.02)
	sp.AddEdge(3, 5, 0.02)
	cov := cluster.GreedyCover(sp, 0.05)
	return &selectFixture{points: points, sp: sp, cov: cov}
}

func TestSelectQueriesOnePerClusterPair(t *testing.T) {
	fx := newSelectFixture(t)
	var edges []EdgeInfo
	for _, pr := range [][2]int{{0, 3}, {0, 4}, {1, 3}, {1, 4}, {2, 5}} {
		d := geom.Dist(fx.points[pr[0]], fx.points[pr[1]])
		edges = append(edges, EdgeInfo{U: pr[0], V: pr[1], Dist: d, W: d})
	}
	got, st := SelectQueries(fx.points, fx.sp, fx.cov, edges, SelectOpts{
		T: 1.5, Theta: 0.15, Alpha: 1.0, DisableCoveredFilter: true,
	})
	if len(got) != 1 {
		t.Fatalf("selected %d query edges, want 1 (one per cluster pair): %v", len(got), got)
	}
	if st.Candidates != 5 {
		t.Errorf("candidates = %d, want 5", st.Candidates)
	}
	// Formula (1): minimize t·w − d(a,x) − d(b,y). All weights are close;
	// the winner must be the one maximizing d(a,x)+d(b,y) adjusted by t·w.
	best := got[0]
	bestScore := 1.5*best.W - fx.cov.Dist[best.U] - fx.cov.Dist[best.V]
	for _, e := range edges {
		score := 1.5*e.W - fx.cov.Dist[e.U] - fx.cov.Dist[e.V]
		if score < bestScore-1e-12 {
			t.Errorf("edge %v has score %v < selected %v", e, score, bestScore)
		}
	}
}

func TestSelectQueriesSkipsSameCluster(t *testing.T) {
	fx := newSelectFixture(t)
	d := geom.Dist(fx.points[1], fx.points[2])
	got, st := SelectQueries(fx.points, fx.sp, fx.cov, []EdgeInfo{{U: 1, V: 2, Dist: d, W: d}}, SelectOpts{
		T: 1.5, Theta: 0.15, Alpha: 1.0,
	})
	if len(got) != 0 || st.SameCluster != 1 {
		t.Errorf("same-cluster edge not skipped: %v, %+v", got, st)
	}
}

func TestSelectQueriesSkipsSpannerEdges(t *testing.T) {
	fx := newSelectFixture(t)
	got, st := SelectQueries(fx.points, fx.sp, fx.cov, []EdgeInfo{{U: 0, V: 1, Dist: 0.02, W: 0.02}}, SelectOpts{
		T: 1.5, Theta: 0.15, Alpha: 1.0,
	})
	if len(got) != 0 || st.AlreadyInSpanner != 1 {
		t.Errorf("spanner edge not skipped: %v, %+v", got, st)
	}
}

func TestCoveredDetectsCoverage(t *testing.T) {
	// u at origin; spanner edge u-z short and nearly parallel to u-v;
	// z close to v.
	points := []geom.Point{
		{0, 0},      // u = 0
		{0.8, 0},    // v = 1
		{0.3, 0.01}, // z = 2: angle(v,u,z) tiny, |vz| = ~0.5 <= alpha
	}
	sp := graph.New(3)
	sp.AddEdge(0, 2, geom.Dist(points[0], points[2]))
	duv := geom.Dist(points[0], points[1])
	if !Covered(points, sp, 0, 1, duv, 0.75, 0.15) {
		t.Error("clearly covered edge not detected")
	}
	// Symmetric case: spanner edge at v instead.
	sp2 := graph.New(3)
	points2 := []geom.Point{
		{0, 0},      // u
		{0.8, 0},    // v
		{0.5, 0.01}, // z near the u side of v
	}
	sp2.AddEdge(1, 2, geom.Dist(points2[1], points2[2]))
	if !Covered(points2, sp2, 0, 1, 0.8, 0.75, 0.15) {
		t.Error("symmetric covered edge not detected")
	}
}

func TestCoveredRejectsLongSpannerEdge(t *testing.T) {
	// z collinear but BEYOND v: |uz| > |uv| must disqualify (Lemma 3
	// precondition).
	points := []geom.Point{
		{0, 0},   // u
		{0.5, 0}, // v
		{0.9, 0}, // z: angle 0, |vz| = 0.4 <= alpha, but |uz| > |uv|
	}
	sp := graph.New(3)
	sp.AddEdge(0, 2, 0.9)
	if Covered(points, sp, 0, 1, 0.5, 0.75, 0.15) {
		t.Error("edge covered by a longer spanner edge — Lemma 3 precondition ignored")
	}
}

func TestCoveredRejectsWideAngle(t *testing.T) {
	points := []geom.Point{
		{0, 0},   // u
		{0.5, 0}, // v
		{0, 0.3}, // z: angle π/2
	}
	sp := graph.New(3)
	sp.AddEdge(0, 2, 0.3)
	if Covered(points, sp, 0, 1, 0.5, 0.75, 0.15) {
		t.Error("edge covered despite angle > theta")
	}
}

func TestCoveredRejectsFarZ(t *testing.T) {
	points := []geom.Point{
		{0, 0},       // u
		{0.95, 0},    // v
		{0.1, 0.001}, // z: tiny angle but |vz| = 0.85 > alpha = 0.5
	}
	sp := graph.New(3)
	sp.AddEdge(0, 2, geom.Dist(points[0], points[2]))
	if Covered(points, sp, 0, 1, 0.95, 0.5, 0.15) {
		t.Error("edge covered despite |vz| > alpha")
	}
}

func TestFindRedundantPairsDetectsMutualRedundancy(t *testing.T) {
	// Two parallel edges of equal weight w joined by near-zero connectors:
	// s = 0-ish, so s + w <= t1·w holds both ways for any t1 > 1.
	h := graph.New(4)
	h.AddEdge(0, 2, 0.001) // u ~ u'
	h.AddEdge(1, 3, 0.001) // v ~ v'
	added := []EdgeInfo{
		{U: 0, V: 1, Dist: 0.5, W: 0.5},
		{U: 2, V: 3, Dist: 0.5, W: 0.5},
	}
	pairs := FindRedundantPairs(h, added, 1.25, 1.0)
	if len(pairs) != 1 {
		t.Fatalf("pairs = %v, want one", pairs)
	}
}

func TestFindRedundantPairsCrossPairing(t *testing.T) {
	// Same scene but the second edge is recorded with swapped endpoints:
	// the cross pairing (u↔v', v↔u') must still find it.
	h := graph.New(4)
	h.AddEdge(0, 2, 0.001)
	h.AddEdge(1, 3, 0.001)
	added := []EdgeInfo{
		{U: 0, V: 1, Dist: 0.5, W: 0.5},
		{U: 3, V: 2, Dist: 0.5, W: 0.5},
	}
	pairs := FindRedundantPairs(h, added, 1.25, 1.0)
	if len(pairs) != 1 {
		t.Fatalf("cross-pairing missed: %v", pairs)
	}
}

func TestFindRedundantPairsRespectsT1(t *testing.T) {
	// Connectors too long for t1 = 1.25: 2×0.2 + 0.5 = 0.9 > 0.625.
	h := graph.New(4)
	h.AddEdge(0, 2, 0.2)
	h.AddEdge(1, 3, 0.2)
	added := []EdgeInfo{
		{U: 0, V: 1, Dist: 0.5, W: 0.5},
		{U: 2, V: 3, Dist: 0.5, W: 0.5},
	}
	if pairs := FindRedundantPairs(h, added, 1.25, 1.0); len(pairs) != 0 {
		t.Fatalf("non-redundant pair flagged: %v", pairs)
	}
}

func TestFindRedundantPairsDisconnected(t *testing.T) {
	h := graph.New(4)
	added := []EdgeInfo{
		{U: 0, V: 1, Dist: 0.5, W: 0.5},
		{U: 2, V: 3, Dist: 0.5, W: 0.5},
	}
	if pairs := FindRedundantPairs(h, added, 1.25, 1.0); len(pairs) != 0 {
		t.Fatalf("disconnected endpoints flagged: %v", pairs)
	}
}
