package core

import (
	"testing"
	"testing/quick"

	"topoctl/internal/geom"
	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

// TestBuildStretchProperty is the randomized end-to-end guarantee check:
// for random (ε, α, seed) draws on small instances, the output must always
// be a (1+ε)-spanner. This is the single most important property in the
// repository; it fuzzes the parameter schedule, the bin boundaries, the
// covered-edge filter and the cluster machinery together.
func TestBuildStretchProperty(t *testing.T) {
	f := func(epsRaw, alphaRaw uint8, seed int16) bool {
		eps := 0.15 + float64(epsRaw)/255.0*1.85 // [0.15, 2]
		alpha := 0.4 + float64(alphaRaw)/255.0*0.6
		inst, err := ubg.GenerateConnected(
			geom.CloudConfig{Kind: geom.CloudUniform, N: 40, Dim: 2, Seed: int64(seed)},
			ubg.Config{Alpha: alpha, Model: ubg.ModelAll, Seed: int64(seed)},
		)
		if err != nil {
			return false
		}
		p, err := NewParams(eps, alpha, 2)
		if err != nil {
			return false
		}
		res, err := Build(inst.Points, inst.G, Options{Params: p})
		if err != nil {
			return false
		}
		return metrics.Stretch(inst.G, res.Spanner) <= p.T+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestBuildSubgraphProperty: the spanner never invents edges, under random
// configurations.
func TestBuildSubgraphProperty(t *testing.T) {
	f := func(seed int16) bool {
		inst, err := ubg.GenerateConnected(
			geom.CloudConfig{Kind: geom.CloudUniform, N: 35, Dim: 2, Seed: int64(seed)},
			ubg.Config{Alpha: 0.7, Model: ubg.ModelBernoulli, P: 0.5, Seed: int64(seed)},
		)
		if err != nil {
			return false
		}
		p, err := NewParams(0.5, 0.7, 2)
		if err != nil {
			return false
		}
		res, err := Build(inst.Points, inst.G, Options{Params: p})
		if err != nil {
			return false
		}
		for _, e := range res.Spanner.Edges() {
			if !inst.G.HasEdge(e.U, e.V) {
				return false
			}
		}
		// Connected input must yield a connected spanner (it t-spans
		// every input edge).
		return res.Spanner.Connected()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
