package core

import (
	"math"
	"testing"
)

func TestMetricWeightKnownValues(t *testing.T) {
	tests := []struct {
		m    Metric
		d    float64
		want float64
	}{
		{EuclideanMetric, 0.5, 0.5},
		{Metric{Coeff: 2, Gamma: 1}, 0.5, 1.0},
		{Metric{Coeff: 1, Gamma: 2}, 0.5, 0.25},
		{Metric{Coeff: 3, Gamma: 3}, 0.5, 0.375},
		{Metric{Coeff: 1, Gamma: 4}, 2, 16},
	}
	for _, tc := range tests {
		if got := tc.m.Weight(tc.d); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%+v.Weight(%v) = %v, want %v", tc.m, tc.d, got, tc.want)
		}
	}
}

func TestMetricValidate(t *testing.T) {
	for _, bad := range []Metric{{Coeff: 0, Gamma: 1}, {Coeff: -1, Gamma: 2}, {Coeff: 1, Gamma: 0.5}} {
		if bad.Validate() == nil {
			t.Errorf("%+v should be invalid", bad)
		}
	}
	if EuclideanMetric.Validate() != nil {
		t.Error("Euclidean metric rejected")
	}
	if !EuclideanMetric.IsEuclidean() || (Metric{Coeff: 2, Gamma: 1}).IsEuclidean() {
		t.Error("IsEuclidean wrong")
	}
}

// TestMetricWeightMonotone: the metric must preserve the length order —
// that is what lets the bin schedule double as a weight order.
func TestMetricWeightMonotone(t *testing.T) {
	for _, m := range []Metric{EuclideanMetric, {Coeff: 2, Gamma: 2}, {Coeff: 0.5, Gamma: 3}} {
		prev := -1.0
		for d := 0.01; d <= 1.0; d += 0.01 {
			w := m.Weight(d)
			if w <= prev {
				t.Fatalf("%+v not monotone at %v", m, d)
			}
			prev = w
		}
	}
}

// TestHopBoundEuclidean reproduces the paper's §2.2.4 bound: a path of
// length l in an α-UBG has at most ⌈2l/α⌉+1 hops.
func TestHopBoundEuclidean(t *testing.T) {
	m := EuclideanMetric
	if got := m.HopBound(1.0, 0.5); got != 5 {
		t.Errorf("HopBound(1, 0.5) = %d, want 5", got)
	}
	if got := m.HopBound(0.3, 0.75); got != 2 {
		t.Errorf("HopBound(0.3, 0.75) = %d, want 2", got)
	}
}

// TestHopBoundIsConservative: simulate worst-case paths (alternating just
// over α/2 edge lengths) and check the bound holds under the energy metric
// too.
func TestHopBoundIsConservative(t *testing.T) {
	alpha := 0.6
	for _, m := range []Metric{EuclideanMetric, {Coeff: 1, Gamma: 2}, {Coeff: 2, Gamma: 3}} {
		// Build a chain of h hops each of Euclidean length alpha/2 + ε —
		// the densest packing that keeps two-hop separation > alpha.
		edge := alpha/2 + 1e-6
		for h := 1; h <= 40; h++ {
			weight := float64(h) * m.Weight(edge)
			if got := m.HopBound(weight, alpha); got < h {
				t.Fatalf("%+v: HopBound(%v) = %d < actual %d hops", m, weight, got, h)
			}
		}
	}
}

func TestHopBoundGammaFormula(t *testing.T) {
	// γ=2, c=1, α=1: pair weight = 2^{-1}·1 = 0.5, so HopBound(l) =
	// ceil(4l)+1.
	m := Metric{Coeff: 1, Gamma: 2}
	if got := m.HopBound(1, 1); got != 5 {
		t.Errorf("HopBound = %d, want 5", got)
	}
}
