package core

import (
	"fmt"
	"math"
)

// Metric maps Euclidean edge lengths to edge weights. The paper's extension
// §1.6.2 observes the algorithm works unchanged when Euclidean distances
// |uv| are replaced by c·|uv|^γ for c > 0, γ >= 1 — the "energy metric"
// used to build power-efficient topologies (radio transmission energy grows
// polynomially with distance). γ = 1, c = 1 recovers the Euclidean case.
type Metric struct {
	// Coeff is c > 0.
	Coeff float64
	// Gamma is γ >= 1.
	Gamma float64
}

// EuclideanMetric is the identity metric (c = 1, γ = 1).
var EuclideanMetric = Metric{Coeff: 1, Gamma: 1}

// Validate checks c > 0 and γ >= 1.
func (m Metric) Validate() error {
	if m.Coeff <= 0 {
		return fmt.Errorf("core: metric coefficient must be positive, got %v", m.Coeff)
	}
	if m.Gamma < 1 {
		return fmt.Errorf("core: metric exponent must be >= 1, got %v", m.Gamma)
	}
	return nil
}

// Weight returns w = c·d^γ for Euclidean length d.
func (m Metric) Weight(d float64) float64 {
	if m.Gamma == 1 {
		return m.Coeff * d
	}
	return m.Coeff * math.Pow(d, m.Gamma)
}

// IsEuclidean reports whether the metric is the identity.
func (m Metric) IsEuclidean() bool { return m.Coeff == 1 && m.Gamma == 1 }

// HopBound returns an upper bound on the number of hops of any path in an
// α-UBG whose total weight (under this metric) is at most l.
//
// Derivation (generalizing §2.2.4): any two vertices two hops apart on a
// shortest path are more than α apart in Euclidean space, so consecutive
// edge pairs have Euclidean lengths a+b > α and hence weight
// c(a^γ + b^γ) >= c·2^{1−γ}(a+b)^γ > c·2^{1−γ}·α^γ. A path of weight l
// therefore has at most ⌈2l/(c·2^{1−γ}α^γ)⌉ + 1 hops. For γ = 1 this is the
// paper's ⌈2l/α⌉ + 1.
func (m Metric) HopBound(l, alpha float64) int {
	pairWeight := m.Coeff * math.Pow(2, 1-m.Gamma) * math.Pow(alpha, m.Gamma)
	return int(math.Ceil(2*l/pairWeight)) + 1
}
