package core

import (
	"math"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

func buildInstance(t testing.TB, n, d int, alpha float64, model ubg.Model, seed int64) *ubg.Instance {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: d, Seed: seed},
		ubg.Config{Alpha: alpha, Model: model, P: 0.5, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func mustParams(t testing.TB, eps, alpha float64, d int) Params {
	t.Helper()
	p, err := NewParams(eps, alpha, d)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestBuildStretchAcrossEpsilons is the Theorem 10 sweep: the output must be
// a (1+ε)-spanner for every ε, on several instance seeds.
func TestBuildStretchAcrossEpsilons(t *testing.T) {
	for _, eps := range []float64{0.25, 0.5, 1.0, 2.0} {
		for seed := int64(0); seed < 3; seed++ {
			inst := buildInstance(t, 80, 2, 0.75, ubg.ModelAll, 1000+seed)
			p := mustParams(t, eps, 0.75, 2)
			res, err := Build(inst.Points, inst.G, Options{Params: p})
			if err != nil {
				t.Fatal(err)
			}
			if s := metrics.Stretch(inst.G, res.Spanner); s > p.T+1e-9 {
				t.Errorf("eps=%v seed=%d: stretch %v > t=%v", eps, seed, s, p.T)
			}
		}
	}
}

// TestBuildStretchAcrossAlphas exercises the α-UBG generality (T6), with
// every grey-zone model.
func TestBuildStretchAcrossAlphas(t *testing.T) {
	for _, alpha := range []float64{0.5, 0.75, 1.0} {
		for _, model := range []ubg.Model{ubg.ModelAll, ubg.ModelNone, ubg.ModelBernoulli, ubg.ModelFalloff} {
			inst := buildInstance(t, 70, 2, alpha, model, 2000)
			p := mustParams(t, 0.5, alpha, 2)
			res, err := Build(inst.Points, inst.G, Options{Params: p})
			if err != nil {
				t.Fatal(err)
			}
			if s := metrics.Stretch(inst.G, res.Spanner); s > p.T+1e-9 {
				t.Errorf("alpha=%v model=%v: stretch %v > t", alpha, model, s)
			}
		}
	}
}

// TestBuildStretchAcrossDimensions is the d >= 2 generality check (T7).
func TestBuildStretchAcrossDimensions(t *testing.T) {
	for _, d := range []int{2, 3, 4} {
		inst := buildInstance(t, 60, d, 0.75, ubg.ModelAll, 3000)
		p := mustParams(t, 0.5, 0.75, d)
		res, err := Build(inst.Points, inst.G, Options{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		if s := metrics.Stretch(inst.G, res.Spanner); s > p.T+1e-9 {
			t.Errorf("d=%d: stretch %v > t", d, s)
		}
	}
}

// TestBuildDegreeStaysBounded is the Theorem 11 scaling check: max degree
// must not grow with n.
func TestBuildDegreeStaysBounded(t *testing.T) {
	var degs []int
	for _, n := range []int{50, 100, 200, 400} {
		inst := buildInstance(t, n, 2, 0.75, ubg.ModelAll, 4000)
		p := mustParams(t, 0.5, 0.75, 2)
		res, err := Build(inst.Points, inst.G, Options{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		degs = append(degs, res.Spanner.MaxDegree())
	}
	for _, d := range degs {
		if d > 16 {
			t.Errorf("max degrees %v: some exceed the empirical constant band", degs)
			break
		}
	}
	if degs[len(degs)-1] > degs[0]*3+4 {
		t.Errorf("max degree appears to grow with n: %v", degs)
	}
}

// TestBuildWeightRatioBounded is the Theorem 13 scaling check: w(G')/w(MST)
// must stay in a constant band as n grows.
func TestBuildWeightRatioBounded(t *testing.T) {
	var ratios []float64
	for _, n := range []int{50, 100, 200, 400} {
		inst := buildInstance(t, n, 2, 0.75, ubg.ModelAll, 5000)
		p := mustParams(t, 0.5, 0.75, 2)
		res, err := Build(inst.Points, inst.G, Options{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, metrics.WeightRatio(inst.G, res.Spanner))
	}
	for _, r := range ratios {
		if r > 10 {
			t.Errorf("weight ratios %v: some exceed the empirical constant band", ratios)
			break
		}
	}
	if ratios[len(ratios)-1] > 2.5*ratios[0] {
		t.Errorf("weight ratio appears to grow with n: %v", ratios)
	}
}

// TestBuildSpannerIsSubgraphWithMetricWeights: output edges must be input
// edges, reweighted by the metric.
func TestBuildSpannerIsSubgraphWithMetricWeights(t *testing.T) {
	inst := buildInstance(t, 60, 2, 0.75, ubg.ModelAll, 6000)
	p := mustParams(t, 0.5, 0.75, 2)
	m := Metric{Coeff: 2, Gamma: 2}
	res, err := Build(inst.Points, inst.G, Options{Params: p, Metric: m})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Spanner.Edges() {
		dw, ok := inst.G.EdgeWeight(e.U, e.V)
		if !ok {
			t.Fatalf("spanner edge {%d,%d} not in input graph", e.U, e.V)
		}
		if math.Abs(e.W-m.Weight(dw)) > 1e-12 {
			t.Fatalf("edge weight %v != metric weight %v", e.W, m.Weight(dw))
		}
	}
}

// TestBuildEnergyMetricSpanner verifies the §1.6.2 extension: under
// w = c·|uv|^γ the output must t-span the energy metric.
func TestBuildEnergyMetricSpanner(t *testing.T) {
	for _, gamma := range []float64{2, 3} {
		inst := buildInstance(t, 70, 2, 0.75, ubg.ModelAll, 7000)
		p := mustParams(t, 0.5, 0.75, 2)
		m := Metric{Coeff: 1, Gamma: gamma}
		res, err := Build(inst.Points, inst.G, Options{Params: p, Metric: m})
		if err != nil {
			t.Fatal(err)
		}
		s := metrics.StretchVsWeights(inst.G, res.Spanner, func(_, _ int, d float64) float64 {
			return m.Weight(d)
		})
		if s > p.T+1e-9 {
			t.Errorf("gamma=%v: energy stretch %v > t", gamma, s)
		}
	}
}

// TestBuildAblationsPreserveStretch: disabling each optional filter must
// never break the spanner property (they only trade off edges/time).
func TestBuildAblationsPreserveStretch(t *testing.T) {
	inst := buildInstance(t, 70, 2, 0.75, ubg.ModelAll, 8000)
	p := mustParams(t, 0.5, 0.75, 2)
	variants := []Options{
		{Params: p, DisableCoveredFilter: true},
		{Params: p, DisableQueryFilter: true},
		{Params: p, DisableRedundancy: true},
		{Params: p, EagerUpdates: true},
		{Params: p, DisableCoveredFilter: true, DisableQueryFilter: true, DisableRedundancy: true},
	}
	for i, opt := range variants {
		res, err := Build(inst.Points, inst.G, opt)
		if err != nil {
			t.Fatal(err)
		}
		if s := metrics.Stretch(inst.G, res.Spanner); s > p.T+1e-9 {
			t.Errorf("variant %d: stretch %v > t", i, s)
		}
	}
}

// TestBuildCoarseBinRatioStillSpanner: the r < (tδ+1)/2 constraint protects
// the weight bound, not correctness; a coarse override must still produce a
// t-spanner.
func TestBuildCoarseBinRatioStillSpanner(t *testing.T) {
	inst := buildInstance(t, 70, 2, 0.75, ubg.ModelAll, 9000)
	p := mustParams(t, 0.5, 0.75, 2)
	res, err := Build(inst.Points, inst.G, Options{Params: p, BinRatio: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if s := metrics.Stretch(inst.G, res.Spanner); s > p.T+1e-9 {
		t.Errorf("coarse bins: stretch %v > t", s)
	}
	fine, err := Build(inst.Points, inst.G, Options{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if resBins, fineBins := res.Bins.M, fine.Bins.M; resBins >= fineBins {
		t.Errorf("coarse schedule (%d bins) not coarser than derived (%d)", resBins, fineBins)
	}
}

// TestBuildClusteredAndCorridorClouds exercises the non-uniform workloads.
func TestBuildClusteredAndCorridorClouds(t *testing.T) {
	for _, kind := range []geom.Cloud{geom.CloudClustered, geom.CloudCorridor, geom.CloudGridJitter} {
		inst, err := ubg.GenerateConnected(
			geom.CloudConfig{Kind: kind, N: 80, Dim: 2, Seed: 10_000},
			ubg.Config{Alpha: 0.75, Model: ubg.ModelAll, Seed: 10_000},
		)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		p := mustParams(t, 0.5, 0.75, 2)
		res, err := Build(inst.Points, inst.G, Options{Params: p})
		if err != nil {
			t.Fatal(err)
		}
		if s := metrics.Stretch(inst.G, res.Spanner); s > p.T+1e-9 {
			t.Errorf("%v: stretch %v > t", kind, s)
		}
	}
}

// TestBuildLeapfrogProperty samples edge subsets of the output and checks
// the (t2, t)-leapfrog inequality (definition (6), Figure 4) for a valid
// t2 — the geometric property the weight proof rests on.
func TestBuildLeapfrogProperty(t *testing.T) {
	inst := buildInstance(t, 90, 2, 0.75, ubg.ModelAll, 11_000)
	p := mustParams(t, 0.5, 0.75, 2)
	res, err := Build(inst.Points, inst.G, Options{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	t2 := 1.05 // a modest t2 in (1, t)
	v := metrics.LeapfrogViolations(res.Spanner.Edges(), func(i int) []float64 {
		return inst.Points[i]
	}, t2, p.T, 300, 4, 42)
	if v > 0 {
		t.Errorf("%d leapfrog violations out of 300 samples", v)
	}
}

// TestBuildStatsConsistency: counter identities that must always hold.
func TestBuildStatsConsistency(t *testing.T) {
	inst := buildInstance(t, 80, 2, 0.75, ubg.ModelAll, 12_000)
	p := mustParams(t, 0.5, 0.75, 2)
	res, err := Build(inst.Points, inst.G, Options{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.EdgesTotal != inst.G.M() {
		t.Errorf("EdgesTotal = %d, want %d", st.EdgesTotal, inst.G.M())
	}
	if res.Spanner.M() != st.Added-st.RemovedRedundant {
		t.Errorf("spanner edges %d != added %d - removed %d", res.Spanner.M(), st.Added, st.RemovedRedundant)
	}
	if st.NonEmptyPhases > st.Phases {
		t.Errorf("non-empty phases %d > phases %d", st.NonEmptyPhases, st.Phases)
	}
	if st.Queried > st.Candidates && st.Candidates > 0 {
		t.Errorf("queried %d > candidates %d", st.Queried, st.Candidates)
	}
}

// TestBuildDeterministic: identical inputs must give identical outputs.
func TestBuildDeterministic(t *testing.T) {
	inst := buildInstance(t, 70, 2, 0.75, ubg.ModelAll, 13_000)
	p := mustParams(t, 0.5, 0.75, 2)
	a, err := Build(inst.Points, inst.G, Options{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(inst.Points, inst.G, Options{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Spanner.Edges(), b.Spanner.Edges()
	if len(ae) != len(be) {
		t.Fatalf("edge counts differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, ae[i], be[i])
		}
	}
}

// TestBuildInputValidation: bad inputs must be rejected with errors.
func TestBuildInputValidation(t *testing.T) {
	inst := buildInstance(t, 20, 2, 0.75, ubg.ModelAll, 14_000)
	good := mustParams(t, 0.5, 0.75, 2)
	if _, err := Build(inst.Points[:10], inst.G, Options{Params: good}); err == nil {
		t.Error("mismatched point count accepted")
	}
	bad := good
	bad.R = 0.5
	if _, err := Build(inst.Points, inst.G, Options{Params: bad}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := Build(inst.Points, inst.G, Options{Params: good, Metric: Metric{Coeff: -1, Gamma: 1}}); err == nil {
		t.Error("invalid metric accepted")
	}
}

// TestBuildTinyGraphs: degenerate inputs must not crash.
func TestBuildTinyGraphs(t *testing.T) {
	p := mustParams(t, 0.5, 0.75, 2)
	// Single vertex.
	g1 := graph.New(1)
	if res, err := Build([]geom.Point{{0, 0}}, g1, Options{Params: p}); err != nil || res.Spanner.M() != 0 {
		t.Errorf("single vertex: %v", err)
	}
	// Two vertices, one edge.
	g2 := graph.New(2)
	g2.AddEdge(0, 1, 0.5)
	res, err := Build([]geom.Point{{0, 0}, {0.5, 0}}, g2, Options{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Spanner.HasEdge(0, 1) {
		t.Error("two-vertex spanner must keep the only edge")
	}
	// Empty edge set.
	g3 := graph.New(3)
	if res, err := Build([]geom.Point{{0, 0}, {5, 5}, {9, 9}}, g3, Options{Params: p}); err != nil || res.Spanner.M() != 0 {
		t.Errorf("edgeless graph: %v", err)
	}
}

// TestBuildCoveredFilterReducesQueries: with the filter on, strictly fewer
// (or equal) queries should be issued than with it off, and output should
// be sparser or equal.
func TestBuildCoveredFilterReducesQueries(t *testing.T) {
	inst := buildInstance(t, 90, 2, 0.75, ubg.ModelAll, 15_000)
	p := mustParams(t, 0.5, 0.75, 2)
	on, err := Build(inst.Points, inst.G, Options{Params: p})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Build(inst.Points, inst.G, Options{Params: p, DisableCoveredFilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.Covered == 0 {
		t.Error("covered filter never fired on a dense instance")
	}
	if on.Stats.Queried > off.Stats.Queried {
		t.Errorf("filter increased queries: %d > %d", on.Stats.Queried, off.Stats.Queried)
	}
}
