package core

import (
	"math"
	"sort"

	"topoctl/internal/cluster"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// EdgeInfo is an input edge annotated with its Euclidean length and its
// metric weight. It is the unit of work shared by the sequential (§2) and
// distributed (§3) implementations.
type EdgeInfo struct {
	U, V int
	// Dist is the Euclidean length |uv|.
	Dist float64
	// W is the metric weight w(u,v).
	W float64
}

// SelectOpts parameterizes query-edge selection.
type SelectOpts struct {
	// T, Theta, Alpha are the stretch, covered-edge angle and UBG radius.
	T, Theta, Alpha float64
	// DisableCoveredFilter and DisableQueryFilter are ablation switches
	// (see Options).
	DisableCoveredFilter bool
	DisableQueryFilter   bool
	// PerPairExtra keeps this many query edges per cluster pair beyond the
	// usual single minimizer of formula (1). The k-fault-tolerant variant
	// (§1.6.1, after Czumaj–Zhao) keeps k+1 query edges per pair so that k
	// failures leave a usable one.
	PerPairExtra int
}

// SelectStats reports what the selection filtered.
type SelectStats struct {
	AlreadyInSpanner int
	SameCluster      int
	Covered          int
	Candidates       int
	// MaxPerCluster is the largest number of selected query edges incident
	// to one cluster (the Lemma 4 quantity).
	MaxPerCluster int
}

// Covered implements the Czumaj–Zhao filter (§2.2.2) for edge {u,v} of
// Euclidean length duv: the edge is covered if some spanner neighbor z of u
// satisfies |uz| <= |uv|, |vz| <= α and ∠vuz <= θ, or symmetrically at v.
//
// The |uz| <= |uv| precondition of Lemma 3 is checked explicitly: phase-0
// clique spanners may retain edges of length up to α, which can exceed the
// current bin ceiling, so it does not follow from bin ordering alone.
func Covered(points []geom.Point, sp *graph.Graph, u, v int, duv, alpha, theta float64) bool {
	return coveredAt(points, sp, u, v, duv, alpha, theta) ||
		coveredAt(points, sp, v, u, duv, alpha, theta)
}

func coveredAt(points []geom.Point, sp *graph.Graph, u, v int, duv, alpha, theta float64) bool {
	pu, pv := points[u], points[v]
	for _, h := range sp.Neighbors(u) {
		z := h.To
		if z == v {
			continue
		}
		pz := points[z]
		if geom.Dist(pu, pz) > duv {
			continue
		}
		if geom.Dist(pv, pz) > alpha {
			continue
		}
		if geom.Angle(pu, pv, pz) <= theta {
			return true
		}
	}
	return false
}

// SelectQueries implements §2.2.2: it drops edges already in the spanner,
// intra-cluster edges (always already t-spanned), and covered edges, then
// keeps exactly one query edge per cluster pair — the minimizer of
// t·w(x,y) − sp(a,x) − sp(b,y) (formula (1)) with deterministic
// lexicographic tie-breaking, so independent executions (e.g. the two
// cluster heads of a pair in the distributed algorithm) select the same
// edge. The result is sorted deterministically.
func SelectQueries(points []geom.Point, sp *graph.Graph, cov *cluster.Cover, edges []EdgeInfo, o SelectOpts) ([]EdgeInfo, SelectStats) {
	type key struct{ a, b int }
	keep := 1 + o.PerPairExtra
	var st SelectStats
	perPair := make(map[key][]scoredEdge)
	var all, sameCluster []EdgeInfo
	for _, e := range edges {
		if sp.HasEdge(e.U, e.V) {
			st.AlreadyInSpanner++
			continue
		}
		ca, cb := cov.Center[e.U], cov.Center[e.V]
		if ca == cb {
			// Plain builds skip intra-cluster edges: sp(u,v) <= 2δW_{i-1}
			// already t-spans them. That certificate is a single path, so
			// fault-tolerant builds must query these edges too.
			if o.PerPairExtra > 0 {
				sameCluster = append(sameCluster, e)
			} else {
				st.SameCluster++
			}
			continue
		}
		if !o.DisableCoveredFilter && Covered(points, sp, e.U, e.V, e.Dist, o.Alpha, o.Theta) {
			st.Covered++
			continue
		}
		st.Candidates++
		if o.DisableQueryFilter {
			all = append(all, e)
			continue
		}
		score := o.T*e.W - cov.Dist[e.U] - cov.Dist[e.V]
		k := key{a: ca, b: cb}
		if k.a > k.b {
			k.a, k.b = k.b, k.a
		}
		perPair[k] = insertScored(perPair[k], scoredEdge{e: e, score: score}, keep)
	}
	if o.DisableQueryFilter {
		all = append(all, sameCluster...)
		sortEdgeInfos(all)
		return all, st
	}
	perCluster := make(map[int]int)
	out := append([]EdgeInfo(nil), sameCluster...)
	for k, vs := range perPair {
		for _, v := range vs {
			out = append(out, v.e)
		}
		perCluster[k.a] += len(vs)
		perCluster[k.b] += len(vs)
	}
	for _, c := range perCluster {
		if c > st.MaxPerCluster {
			st.MaxPerCluster = c
		}
	}
	sortEdgeInfos(out)
	return out, st
}

// insertScored keeps the `keep` best entries (lowest score, lexicographic
// tie-break) in ascending order.
func insertScored(list []scoredEdge, s scoredEdge, keep int) []scoredEdge {
	pos := len(list)
	for i, cur := range list {
		if s.score < cur.score ||
			(s.score == cur.score && (s.e.U < cur.e.U || (s.e.U == cur.e.U && s.e.V < cur.e.V))) {
			pos = i
			break
		}
	}
	list = append(list, scoredEdge{})
	copy(list[pos+1:], list[pos:])
	list[pos] = s
	if len(list) > keep {
		list = list[:keep]
	}
	return list
}

// scoredEdge pairs a candidate with its formula-(1) score.
type scoredEdge struct {
	e     EdgeInfo
	score float64
}

func sortEdgeInfos(es []EdgeInfo) {
	sort.Slice(es, func(i, j int) bool {
		if es[i].U != es[j].U {
			return es[i].U < es[j].U
		}
		return es[i].V < es[j].V
	})
}

// FindRedundantPairs implements the mutual-redundancy test of §2.2.5 over
// the edges added in one phase, measuring distances on the frozen cluster
// graph h exactly as the queries were. Pair (i, j) is reported when, for
// the better of the two endpoint pairings (the d_J minimum of Lemma 20),
//
//	sp_H(u,u') + sp_H(v,v') + w' <= t1·w  and
//	sp_H(u,u') + sp_H(v,v') + w  <= t1·w'.
//
// bound caps the Dijkstra searches: any distance relevant to the conditions
// is at most t1·W_i.
func FindRedundantPairs(h *graph.Graph, added []EdgeInfo, t1, bound float64) [][2]int {
	s := graph.AcquireSearcher(h.N())
	defer graph.ReleaseSearcher(s)
	endpoints := make(map[int]map[int]float64)
	for _, e := range added {
		for _, v := range [2]int{e.U, e.V} {
			if _, ok := endpoints[v]; !ok {
				ball := s.Ball(h, v, bound)
				m := make(map[int]float64, len(ball))
				for _, vd := range ball {
					m[vd.V] = vd.D
				}
				endpoints[v] = m
			}
		}
	}
	dist := func(x, y int) float64 {
		if d, ok := endpoints[x][y]; ok {
			return d
		}
		return math.Inf(1)
	}
	var pairs [][2]int
	for i := 0; i < len(added); i++ {
		for j := i + 1; j < len(added); j++ {
			a, c := added[i], added[j]
			s1 := dist(a.U, c.U) + dist(a.V, c.V)
			s2 := dist(a.U, c.V) + dist(a.V, c.U)
			s := math.Min(s1, s2)
			if s+c.W <= t1*a.W && s+a.W <= t1*c.W {
				pairs = append(pairs, [2]int{i, j})
			}
		}
	}
	return pairs
}
