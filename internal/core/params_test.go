package core

import (
	"math"
	"testing"
	"testing/quick"
)

// TestNewParamsSatisfiesAllConstraintsProperty drives random ε/α/d through
// the derivation and asserts every theorem constraint holds — the feasible
// region is non-trivial and it is easy to get a boundary wrong.
func TestNewParamsSatisfiesAllConstraintsProperty(t *testing.T) {
	f := func(epsRaw, alphaRaw uint16, dRaw uint8) bool {
		eps := 0.01 + float64(epsRaw)/65535.0*10 // (0.01, 10]
		alpha := 0.05 + float64(alphaRaw)/65535.0*0.95
		d := 2 + int(dRaw)%4
		p, err := NewParams(eps, alpha, d)
		if err != nil {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNewParamsRejectsInvalid(t *testing.T) {
	cases := []struct {
		eps, alpha float64
		d          int
	}{
		{0, 0.5, 2},
		{-1, 0.5, 2},
		{0.5, 0, 2},
		{0.5, 1.5, 2},
		{0.5, -0.1, 2},
		{0.5, 0.5, 1},
		{0.5, 0.5, 0},
	}
	for _, c := range cases {
		if _, err := NewParams(c.eps, c.alpha, c.d); err == nil {
			t.Errorf("NewParams(%v, %v, %d) should fail", c.eps, c.alpha, c.d)
		}
	}
}

func TestParamsKnownValues(t *testing.T) {
	p, err := NewParams(0.5, 0.75, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.T != 1.5 || p.T1 != 1.25 {
		t.Errorf("t=%v t1=%v", p.T, p.T1)
	}
	if !(p.Delta > 0 && p.Delta <= 0.0625) { // (t-t1)/4 = 0.0625
		t.Errorf("delta=%v outside (0, 0.0625]", p.Delta)
	}
	if !(p.R > 1 && p.R < (p.TDelta+1)/2) {
		t.Errorf("r=%v outside (1, %v)", p.R, (p.TDelta+1)/2)
	}
	// Czumaj–Zhao: t >= 1/(cos θ − sin θ).
	if 1/(math.Cos(p.Theta)-math.Sin(p.Theta)) > p.T+1e-12 {
		t.Errorf("theta=%v violates Lemma 3 precondition", p.Theta)
	}
}

func TestValidateCatchesCorruptions(t *testing.T) {
	base, err := NewParams(0.5, 0.75, 2)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := []func(*Params){
		func(p *Params) { p.T = 0.9 },
		func(p *Params) { p.T1 = p.T },
		func(p *Params) { p.T1 = 1 },
		func(p *Params) { p.Delta = 0 },
		func(p *Params) { p.Delta = 1 },
		func(p *Params) { p.R = 1 },
		func(p *Params) { p.R = 100 },
		func(p *Params) { p.TDelta = 0.99 },
		func(p *Params) { p.Theta = 0 },
		func(p *Params) { p.Theta = math.Pi / 3 },
		func(p *Params) { p.Alpha = 0 },
		func(p *Params) { p.Alpha = 2 },
		func(p *Params) { p.Dim = 1 },
	}
	for i, fn := range corrupt {
		p := base
		fn(&p)
		if p.Validate() == nil {
			t.Errorf("corruption %d not caught: %+v", i, p)
		}
	}
}

// TestSmallEpsilonStillFeasible: even for very small ε the derived schedule
// must remain valid (the paper's "for any ε > 0").
func TestSmallEpsilonStillFeasible(t *testing.T) {
	for _, eps := range []float64{0.01, 0.05, 0.1} {
		p, err := NewParams(eps, 0.9, 2)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if p.R <= 1 {
			t.Fatalf("eps=%v: r=%v", eps, p.R)
		}
	}
}
