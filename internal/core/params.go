// Package core implements the paper's primary contribution: the relaxed
// greedy spanner algorithm of §2. Given an n-node d-dimensional α-UBG and
// ε > 0 it computes a (1+ε)-spanner with O(1) maximum degree and weight
// O(w(MST)) by processing edges in O(log n) geometric weight bins; inside a
// bin edges are examined in arbitrary order against the spanner frozen at
// the end of the previous bin (lazy updating), which is exactly what makes
// the distributed implementation in internal/dist possible.
package core

import (
	"fmt"
	"math"
)

// Params bundles the derived constants of the algorithm. All constraints
// come from the paper's theorems:
//
//   - Theorem 10 (stretch) requires 0 < δ <= (t−t1)/4;
//   - Theorem 13 (weight) requires δ < (t−1)/(6+2t) and
//     1 < r < (tδ+1)/2 where tδ = t1·(1−2δ)/(1+6δ), which in turn forces
//     δ < (t1−1)/(6+2t1) so that tδ > 1;
//   - the covered-edge filter (Lemma 3, Czumaj–Zhao) requires 0 < θ < π/4
//     and t >= 1/(cos θ − sin θ).
type Params struct {
	// Eps is the requested stretch slack; the output is a (1+Eps)-spanner.
	Eps float64
	// T = 1 + Eps is the stretch factor t.
	T float64
	// T1 is the redundancy-removal stretch, 1 < T1 < T.
	T1 float64
	// Delta is the cluster-cover radius coefficient δ.
	Delta float64
	// R is the geometric bin ratio r > 1.
	R float64
	// TDelta is tδ = t1(1−2δ)/(1+6δ), recorded for the weight analysis.
	TDelta float64
	// Theta is the covered-edge half angle θ.
	Theta float64
	// Alpha is the α of the underlying α-UBG.
	Alpha float64
	// Dim is the Euclidean dimension d >= 2.
	Dim int
}

// NewParams derives a valid parameter set from ε, α and d, choosing each
// constant at a safe interior point of its feasible interval (midpoints and
// 0.9-fractions, so floating-point noise cannot push a constraint over its
// boundary).
func NewParams(eps, alpha float64, d int) (Params, error) {
	if eps <= 0 {
		return Params{}, fmt.Errorf("core: eps must be positive, got %v", eps)
	}
	if !(alpha > 0 && alpha <= 1) {
		return Params{}, fmt.Errorf("core: alpha must be in (0, 1], got %v", alpha)
	}
	if d < 2 {
		return Params{}, fmt.Errorf("core: dimension must be >= 2, got %d", d)
	}
	t := 1 + eps
	t1 := 1 + eps/2

	// δ must satisfy all three upper bounds; take half of the minimum.
	dMax := math.Min((t-t1)/4, math.Min((t-1)/(6+2*t), (t1-1)/(6+2*t1)))
	delta := dMax / 2

	tDelta := t1 * (1 - 2*delta) / (1 + 6*delta)
	if tDelta <= 1 {
		return Params{}, fmt.Errorf("core: internal error: tδ = %v <= 1 for eps=%v", tDelta, eps)
	}
	rMax := (tDelta + 1) / 2
	r := 1 + (rMax-1)/2
	if r <= 1 {
		return Params{}, fmt.Errorf("core: internal error: r = %v <= 1 for eps=%v", r, eps)
	}

	// θ: need cos θ − sin θ >= 1/t, i.e. √2·cos(θ+π/4) >= 1/t,
	// i.e. θ <= arccos(1/(√2·t)) − π/4; also θ < π/4.
	thetaMax := math.Acos(1/(math.Sqrt2*t)) - math.Pi/4
	theta := 0.9 * math.Min(thetaMax, math.Pi/4)
	if theta <= 0 {
		return Params{}, fmt.Errorf("core: internal error: theta = %v <= 0 for eps=%v", theta, eps)
	}

	return Params{
		Eps: eps, T: t, T1: t1,
		Delta: delta, R: r, TDelta: tDelta, Theta: theta,
		Alpha: alpha, Dim: d,
	}, nil
}

// Validate re-checks every theorem constraint; it returns nil exactly when
// the parameter set is admissible. Property tests drive random ε through
// NewParams and assert Validate passes.
func (p Params) Validate() error {
	switch {
	case p.T <= 1:
		return fmt.Errorf("core: t = %v <= 1", p.T)
	case p.T1 <= 1 || p.T1 >= p.T:
		return fmt.Errorf("core: t1 = %v outside (1, t)", p.T1)
	case p.Delta <= 0 || p.Delta > (p.T-p.T1)/4:
		return fmt.Errorf("core: delta = %v outside (0, (t-t1)/4]", p.Delta)
	case p.Delta >= (p.T-1)/(6+2*p.T):
		return fmt.Errorf("core: delta = %v >= (t-1)/(6+2t)", p.Delta)
	case p.TDelta <= 1:
		return fmt.Errorf("core: tδ = %v <= 1", p.TDelta)
	case p.R <= 1 || p.R >= (p.TDelta+1)/2:
		return fmt.Errorf("core: r = %v outside (1, (tδ+1)/2)", p.R)
	case p.Theta <= 0 || p.Theta >= math.Pi/4:
		return fmt.Errorf("core: theta = %v outside (0, π/4)", p.Theta)
	case math.Cos(p.Theta)-math.Sin(p.Theta) < 1/p.T:
		return fmt.Errorf("core: cos θ − sin θ = %v < 1/t", math.Cos(p.Theta)-math.Sin(p.Theta))
	case !(p.Alpha > 0 && p.Alpha <= 1):
		return fmt.Errorf("core: alpha = %v outside (0, 1]", p.Alpha)
	case p.Dim < 2:
		return fmt.Errorf("core: dim = %d < 2", p.Dim)
	}
	return nil
}

// Bins is the geometric bin schedule over Euclidean edge lengths: W_i =
// r^i·α/n, bin 0 holds lengths (0, α/n], bin i holds (W_{i−1}, W_i], and
// every edge of an α-UBG (length <= 1) lands in a bin 0..M.
type Bins struct {
	// W0 is the bin-0 ceiling α/n.
	W0 float64
	// R is the geometric ratio.
	R float64
	// M is the last bin index, M = ⌈log_r(n/α)⌉.
	M int
}

// NewBins builds the schedule for n vertices.
func NewBins(n int, p Params) Bins {
	w0 := p.Alpha / float64(n)
	m := int(math.Ceil(math.Log(float64(n)/p.Alpha) / math.Log(p.R)))
	if m < 1 {
		m = 1
	}
	return Bins{W0: w0, R: p.R, M: m}
}

// Ceiling returns W_i, the top of bin i.
func (b Bins) Ceiling(i int) float64 {
	return b.W0 * math.Pow(b.R, float64(i))
}

// Index returns the bin of an edge of Euclidean length d (0 < d <= 1
// expected; longer lengths are clamped into the last bin, shorter into 0).
func (b Bins) Index(d float64) int {
	if d <= b.W0 {
		return 0
	}
	i := int(math.Ceil(math.Log(d/b.W0) / math.Log(b.R)))
	// Guard against floating-point edge effects at bin boundaries.
	for i > 0 && d <= b.Ceiling(i-1) {
		i--
	}
	for d > b.Ceiling(i) {
		i++
	}
	if i > b.M {
		i = b.M
	}
	return i
}
