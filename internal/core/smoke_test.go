package core

import (
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

// TestSmokeBuild is the first end-to-end check: on a modest random α-UBG the
// relaxed greedy output must be a t-spanner with reasonable degree and
// weight. Deeper suites live in build_test.go.
func TestSmokeBuild(t *testing.T) {
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: 96, Dim: 2, Seed: 7},
		ubg.Config{Alpha: 0.75, Model: ubg.ModelAll, Seed: 7},
	)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	p, err := NewParams(0.5, 0.75, 2)
	if err != nil {
		t.Fatalf("params: %v", err)
	}
	res, err := Build(inst.Points, inst.G, Options{Params: p})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	s := metrics.Stretch(inst.G, res.Spanner)
	if s > p.T+1e-9 {
		t.Errorf("stretch %v exceeds t=%v", s, p.T)
	}
	if res.Spanner.M() == 0 {
		t.Error("empty spanner")
	}
	t.Logf("n=%d m=%d spanner=%d stretch=%.4f maxdeg=%d weight/mst=%.3f phases=%d nonempty=%d covered=%d added=%d removed=%d",
		inst.G.N(), inst.G.M(), res.Spanner.M(), s, res.Spanner.MaxDegree(),
		metrics.WeightRatio(inst.G, res.Spanner), res.Stats.Phases, res.Stats.NonEmptyPhases,
		res.Stats.Covered, res.Stats.Added, res.Stats.RemovedRedundant)
}
