package netio

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/ubg"
)

func testInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: 40, Dim: 2, Seed: 80_000},
		ubg.Config{Alpha: 0.7, Model: ubg.ModelAll, Seed: 80_000},
	)
	if err != nil {
		t.Fatal(err)
	}
	return &Instance{Points: inst.Points, G: inst.G, Alpha: inst.Alpha}
}

func TestRoundTrip(t *testing.T) {
	in := testInstance(t)
	var buf bytes.Buffer
	if err := Write(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Alpha != in.Alpha || len(out.Points) != len(in.Points) || out.G.M() != in.G.M() {
		t.Fatalf("shape mismatch: alpha %v/%v n %d/%d m %d/%d",
			out.Alpha, in.Alpha, len(out.Points), len(in.Points), out.G.M(), in.G.M())
	}
	for i := range in.Points {
		if geom.Dist(in.Points[i], out.Points[i]) != 0 {
			t.Fatalf("point %d not exactly preserved", i)
		}
	}
	for _, e := range in.G.Edges() {
		w, ok := out.G.EdgeWeight(e.U, e.V)
		if !ok || math.Abs(w-e.W) != 0 {
			t.Fatalf("edge %v not exactly preserved (got %v, %v)", e, w, ok)
		}
	}
}

func TestRoundTrip3D(t *testing.T) {
	pts := []geom.Point{{0, 0, 0}, {0.5, 0.1, 0.2}}
	g := graph.New(2)
	g.AddEdge(0, 1, geom.Dist(pts[0], pts[1]))
	var buf bytes.Buffer
	if err := Write(&buf, &Instance{Points: pts, G: g, Alpha: 0.9}); err != nil {
		t.Fatal(err)
	}
	out, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.Points[1].Dim() != 3 {
		t.Errorf("dimension lost: %d", out.Points[1].Dim())
	}
}

func TestReadCommentsAndBlanks(t *testing.T) {
	src := `# a comment
ubg n=2 d=2 alpha=0.5

v 0 0 0
# another
v 1 1 0
e 0 1 1
`
	inst, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if inst.G.M() != 1 || inst.Alpha != 0.5 {
		t.Errorf("parsed wrong: m=%d alpha=%v", inst.G.M(), inst.Alpha)
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"missing header":    "v 0 0 0\n",
		"no header at all":  "",
		"dup header":        "ubg n=1 d=2 alpha=1\nubg n=1 d=2 alpha=1\nv 0 0 0\n",
		"bad header field":  "ubg n=1 d=2 alpha=1 bogus=2\nv 0 0 0\n",
		"bad vertex id":     "ubg n=1 d=2 alpha=1\nv 5 0 0\n",
		"wrong coord count": "ubg n=1 d=2 alpha=1\nv 0 0\n",
		"dup vertex":        "ubg n=1 d=2 alpha=1\nv 0 0 0\nv 0 1 1\n",
		"missing vertex":    "ubg n=2 d=2 alpha=1\nv 0 0 0\n",
		"edge out of range": "ubg n=2 d=2 alpha=1\nv 0 0 0\nv 1 1 0\ne 0 5 1\n",
		"self loop":         "ubg n=2 d=2 alpha=1\nv 0 0 0\nv 1 1 0\ne 1 1 1\n",
		"dup edge":          "ubg n=2 d=2 alpha=1\nv 0 0 0\nv 1 1 0\ne 0 1 1\ne 1 0 1\n",
		"unknown record":    "ubg n=1 d=2 alpha=1\nv 0 0 0\nz 1 2\n",
		"malformed edge":    "ubg n=2 d=2 alpha=1\nv 0 0 0\nv 1 1 0\ne 0 x 1\n",
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	in := testInstance(t)
	sub := graph.New(in.G.N())
	es := in.G.Edges()
	sub.AddEdge(es[0].U, es[0].V, es[0].W)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, in.Points, in.G, sub); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "graph topoctl {") || !strings.HasSuffix(strings.TrimSpace(out), "}") {
		t.Error("not a DOT graph")
	}
	if !strings.Contains(out, "pos=") {
		t.Error("positions missing")
	}
	if !strings.Contains(out, "#0050b0") {
		t.Error("highlight missing")
	}
	// Edge count: every input edge appears exactly once.
	if got := strings.Count(out, " -- "); got != in.G.M() {
		t.Errorf("DOT has %d edges, want %d", got, in.G.M())
	}
}

func TestWriteDOTNoHighlight(t *testing.T) {
	in := testInstance(t)
	var buf bytes.Buffer
	if err := WriteDOT(&buf, in.Points, in.G, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "#0050b0") {
		t.Error("unexpected highlight edges")
	}
}

// sameInstance fails the test unless a and b are exactly equal.
func sameInstance(t *testing.T, a, b *Instance) {
	t.Helper()
	if b.Alpha != a.Alpha || len(b.Points) != len(a.Points) || b.G.M() != a.G.M() {
		t.Fatalf("shape mismatch: alpha %v/%v n %d/%d m %d/%d",
			b.Alpha, a.Alpha, len(b.Points), len(a.Points), b.G.M(), a.G.M())
	}
	for i := range a.Points {
		if geom.Dist(a.Points[i], b.Points[i]) != 0 {
			t.Fatalf("point %d not exactly preserved", i)
		}
	}
	for _, e := range a.G.Edges() {
		w, ok := b.G.EdgeWeight(e.U, e.V)
		if !ok || w != e.W {
			t.Fatalf("edge %v not exactly preserved (got %v, %v)", e, w, ok)
		}
	}
}

func TestFileRoundTripGzip(t *testing.T) {
	in := testInstance(t)
	dir := t.TempDir()
	for _, name := range []string{"inst.topo", "inst.topo.gz"} {
		path := filepath.Join(dir, name)
		if err := WriteTo(path, in); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out, err := ReadFrom(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sameInstance(t, in, out)
	}

	// The .gz file must actually be gzip (magic bytes) and smaller than the
	// plain encoding of the same instance.
	plain, err := os.ReadFile(filepath.Join(dir, "inst.topo"))
	if err != nil {
		t.Fatal(err)
	}
	packed, err := os.ReadFile(filepath.Join(dir, "inst.topo.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) < 2 || packed[0] != 0x1f || packed[1] != 0x8b {
		t.Fatal("compressed file lacks gzip magic")
	}
	if len(packed) >= len(plain) {
		t.Errorf("gzip did not shrink instance: %d >= %d bytes", len(packed), len(plain))
	}

	// Mislabeled files must load correctly in both directions: ReadFrom
	// sniffs the gzip magic bytes instead of trusting the extension.
	plainAsGz := filepath.Join(dir, "plain-content.topo.gz")
	if err := os.WriteFile(plainAsGz, plain, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := ReadFrom(plainAsGz)
	if err != nil {
		t.Fatalf("plain content named .gz: %v", err)
	}
	sameInstance(t, in, out)

	gzAsPlain := filepath.Join(dir, "gzip-content.topo")
	if err := os.WriteFile(gzAsPlain, packed, 0o644); err != nil {
		t.Fatal(err)
	}
	out, err = ReadFrom(gzAsPlain)
	if err != nil {
		t.Fatalf("gzip content without .gz suffix: %v", err)
	}
	sameInstance(t, in, out)

	// Content that merely starts with the gzip magic but is not a valid
	// stream must still fail loudly, not parse garbage.
	corrupt := filepath.Join(dir, "corrupt.topo.gz")
	if err := os.WriteFile(corrupt, append([]byte{0x1f, 0x8b}, plain...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrom(corrupt); err == nil {
		t.Error("corrupt gzip stream parsed without error")
	}
}
