// Package netio serializes network instances and topologies.
//
// The text format is line-oriented and self-describing, designed for
// round-tripping instances between cmd/topoctl runs and for feeding
// externally-generated deployments into the library:
//
//	# free-form comments
//	ubg n=<int> d=<int> alpha=<float>
//	v <id> <x1> <x2> ... <xd>
//	e <u> <v> <weight>
//
// Vertices must be declared before edges reference them; IDs must be dense
// 0..n-1. WriteDOT exports any topology as Graphviz with positional pinning
// for quick visual inspection.
package netio

import (
	"bufio"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// Instance is a serializable network: an embedding plus a topology.
type Instance struct {
	Points []geom.Point
	G      *graph.Graph
	Alpha  float64
}

// Write serializes the instance in the text format.
func Write(w io.Writer, inst *Instance) error {
	bw := bufio.NewWriter(w)
	d := 0
	if len(inst.Points) > 0 {
		d = inst.Points[0].Dim()
	}
	fmt.Fprintf(bw, "ubg n=%d d=%d alpha=%g\n", len(inst.Points), d, inst.Alpha)
	for i, p := range inst.Points {
		fmt.Fprintf(bw, "v %d", i)
		for _, c := range p {
			fmt.Fprintf(bw, " %.17g", c)
		}
		fmt.Fprintln(bw)
	}
	for _, e := range inst.G.Edges() {
		fmt.Fprintf(bw, "e %d %d %.17g\n", e.U, e.V, e.W)
	}
	return bw.Flush()
}

// Read parses an instance from the text format.
func Read(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	inst := &Instance{}
	var n, d int
	headerSeen := false
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "ubg":
			if headerSeen {
				return nil, fmt.Errorf("netio: line %d: duplicate header", line)
			}
			headerSeen = true
			for _, kv := range fields[1:] {
				parts := strings.SplitN(kv, "=", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("netio: line %d: malformed header field %q", line, kv)
				}
				val := parts[1]
				var err error
				switch parts[0] {
				case "n":
					n, err = strconv.Atoi(val)
				case "d":
					d, err = strconv.Atoi(val)
				case "alpha":
					inst.Alpha, err = strconv.ParseFloat(val, 64)
				default:
					return nil, fmt.Errorf("netio: line %d: unknown header field %q", line, parts[0])
				}
				if err != nil {
					return nil, fmt.Errorf("netio: line %d: %w", line, err)
				}
			}
			// d == 0 is only meaningful for an empty instance — it is what
			// Write emits when there are no points to infer a dimension
			// from, so Read must take it back (fuzz-found asymmetry).
			if n < 0 || d < 0 || (d == 0 && n > 0) {
				return nil, fmt.Errorf("netio: line %d: invalid header n=%d d=%d", line, n, d)
			}
			inst.Points = make([]geom.Point, n)
			inst.G = graph.New(n)
		case "v":
			if !headerSeen {
				return nil, fmt.Errorf("netio: line %d: vertex before header", line)
			}
			if len(fields) != 2+d {
				return nil, fmt.Errorf("netio: line %d: vertex needs %d coordinates", line, d)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 || id >= n {
				return nil, fmt.Errorf("netio: line %d: bad vertex id %q", line, fields[1])
			}
			p := make(geom.Point, d)
			for i := 0; i < d; i++ {
				p[i], err = strconv.ParseFloat(fields[2+i], 64)
				if err != nil {
					return nil, fmt.Errorf("netio: line %d: %w", line, err)
				}
			}
			if inst.Points[id] != nil {
				return nil, fmt.Errorf("netio: line %d: duplicate vertex %d", line, id)
			}
			inst.Points[id] = p
		case "e":
			if !headerSeen {
				return nil, fmt.Errorf("netio: line %d: edge before header", line)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("netio: line %d: edge needs u v w", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("netio: line %d: malformed edge", line)
			}
			if u < 0 || u >= n || v < 0 || v >= n || u == v {
				return nil, fmt.Errorf("netio: line %d: edge (%d,%d) out of range", line, u, v)
			}
			if inst.G.HasEdge(u, v) {
				return nil, fmt.Errorf("netio: line %d: duplicate edge (%d,%d)", line, u, v)
			}
			inst.G.AddEdge(u, v, w)
		default:
			return nil, fmt.Errorf("netio: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netio: %w", err)
	}
	if !headerSeen {
		return nil, fmt.Errorf("netio: missing header")
	}
	for i, p := range inst.Points {
		if p == nil {
			return nil, fmt.Errorf("netio: vertex %d missing", i)
		}
	}
	return inst, nil
}

// compressed reports whether path names a gzip-compressed instance file.
// Instances compress ~4x (coordinates and weights share long digit runs),
// which is what makes shipping large deployments to a remote topoctld
// daemon cheap; `.topo.gz` is the conventional extension but any `.gz`
// suffix triggers compression. The extension only decides what WriteTo
// produces — ReadFrom sniffs the gzip magic bytes instead of trusting the
// name, so mislabeled files load correctly in both directions.
func compressed(path string) bool { return strings.HasSuffix(path, ".gz") }

// WriteTo serializes the instance to the named file, gzip-compressing when
// the path ends in .gz (conventionally .topo.gz).
func WriteTo(path string, inst *Instance) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	if !compressed(path) {
		return Write(f, inst)
	}
	zw := gzip.NewWriter(f)
	if err := Write(zw, inst); err != nil {
		return err
	}
	return zw.Close()
}

// ReadFrom parses an instance from the named file, transparently
// decompressing gzip content. Compression is detected by sniffing the
// two-byte gzip magic number (0x1f 0x8b), not by the file extension, so a
// plain-text file mislabeled `.gz` and a gzip stream without the suffix
// both load correctly.
func ReadFrom(path string) (*Instance, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	magic, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, fmt.Errorf("netio: %s: %w", path, err)
	}
	if len(magic) < 2 || magic[0] != 0x1f || magic[1] != 0x8b {
		return Read(br)
	}
	zr, err := gzip.NewReader(br)
	if err != nil {
		return nil, fmt.Errorf("netio: %s: %w", path, err)
	}
	defer zr.Close()
	inst, err := Read(zr)
	if err != nil {
		return nil, err
	}
	// Surface trailing-garbage / checksum errors the scanner already
	// consumed past.
	if err := zr.Close(); err != nil {
		return nil, fmt.Errorf("netio: %s: %w", path, err)
	}
	return inst, nil
}

// WriteDOT exports the topology as a Graphviz graph. For 2-dimensional
// embeddings vertices are pinned to their coordinates (render with
// `neato -n`); higher dimensions fall back to unpinned layout with the
// first two coordinates as hints. highlight, when non-nil, draws the given
// subgraph's edges bold/colored over the base topology — the intended use
// is spanner-over-network figures.
func WriteDOT(w io.Writer, points []geom.Point, g *graph.Graph, highlight *graph.Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph topoctl {")
	fmt.Fprintln(bw, "  node [shape=point width=0.06];")
	const scale = 10.0
	for i, p := range points {
		x, y := 0.0, 0.0
		if p.Dim() >= 1 {
			x = p[0]
		}
		if p.Dim() >= 2 {
			y = p[1]
		}
		fmt.Fprintf(bw, "  %d [pos=\"%.3f,%.3f!\"];\n", i, x*scale, y*scale)
	}
	for _, e := range g.Edges() {
		if highlight != nil && highlight.HasEdge(e.U, e.V) {
			continue // drawn below, on top
		}
		fmt.Fprintf(bw, "  %d -- %d [color=gray80 penwidth=0.4];\n", e.U, e.V)
	}
	if highlight != nil {
		for _, e := range highlight.Edges() {
			fmt.Fprintf(bw, "  %d -- %d [color=\"#0050b0\" penwidth=1.4];\n", e.U, e.V)
		}
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
