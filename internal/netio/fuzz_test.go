package netio

// Native fuzz targets for the instance parser — the surface that reads
// operator-supplied files (topoctld -in, topoctl convert). The contract
// under fuzzing: arbitrary bytes either parse or fail with a clean error;
// no panics, no misparsed instances (anything accepted must re-serialize
// and re-parse to the same shape). FuzzReadFrom additionally drives the
// gzip-sniffing file path, since a .gz header on garbage must fail
// gracefully too.

import (
	"bytes"
	"compress/gzip"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// fuzzSeedInstance serializes a small valid instance.
func fuzzSeedInstance(tb testing.TB) []byte {
	g := graph.New(3)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(1, 2, 0.25)
	inst := &Instance{
		Points: []geom.Point{{0, 0}, {1, 0.5}, {2, 2}},
		G:      g,
		Alpha:  0.75,
	}
	var buf bytes.Buffer
	if err := Write(&buf, inst); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

func netioSeeds(tb testing.TB) [][]byte {
	valid := fuzzSeedInstance(tb)
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(valid)
	zw.Close()
	return [][]byte{
		{},
		valid,
		gz.Bytes(),
		[]byte("ubg n=2 d=2 alpha=0.5\nv 0 0 0\n"),             // fewer vertices than declared
		[]byte("ubg n=1 d=2 alpha=0.5\nv 0 0 0\ne 0 0 1\n"),    // self-loop edge
		[]byte("ubg n=2 d=1 alpha=x\n"),                        // bad alpha
		[]byte("# comment only\n"),                             // no header
		[]byte("ubg n=2 d=2 alpha=0.5\nv 1 0 0\nv 0 1 1\n"),    // out-of-order ids
		[]byte{0x1f, 0x8b, 0xff, 0xff},                         // gzip magic, garbage body
		[]byte("ubg n=2 d=2 alpha=0.5\nv 0 0 0\nv 0 1 1\n"),    // duplicate id
		[]byte("ubg n=2 d=2 alpha=0.5\nv 0 0\nv 1 1 1\nq x\n"), // wrong dim + unknown line
	}
}

// FuzzRead fuzzes the text parser on arbitrary bytes. Accepted inputs
// must survive a Write/Read round trip unchanged in shape (n, edges,
// alpha) — the parser and serializer agreeing on the format is what makes
// the corpus files in the repo trustworthy.
func FuzzRead(f *testing.F) {
	for _, s := range netioSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		inst, err := Read(bytes.NewReader(data))
		if err != nil {
			return // clean rejection is the common, correct outcome
		}
		var buf bytes.Buffer
		if err := Write(&buf, inst); err != nil {
			t.Fatalf("re-serializing an accepted instance failed: %v", err)
		}
		inst2, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-parsing a serialized instance failed: %v", err)
		}
		if len(inst2.Points) != len(inst.Points) || inst2.G.M() != inst.G.M() || inst2.Alpha != inst.Alpha {
			t.Fatalf("round trip changed shape: n %d->%d, m %d->%d, alpha %v->%v",
				len(inst.Points), len(inst2.Points), inst.G.M(), inst2.G.M(), inst.Alpha, inst2.Alpha)
		}
	})
}

// FuzzReadFrom feeds arbitrary bytes through the file-opening path with
// its gzip magic sniffing: plain bytes parse as text, bytes with a gzip
// header must decompress first or fail cleanly — never panic, never hang.
func FuzzReadFrom(f *testing.F) {
	for _, s := range netioSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "inst.txt")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadFrom(path); err != nil {
			return
		}
	})
}

// TestWriteSeedCorpus materializes the in-code seeds as committed corpus
// files under testdata/fuzz/ (see the wal package's twin for rationale).
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	seeds := netioSeeds(t)
	for _, target := range []string{"FuzzRead", "FuzzReadFrom"} {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		for i, s := range seeds {
			body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
			if err := os.WriteFile(filepath.Join(dir, "seed-"+strconv.Itoa(i)), []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}
