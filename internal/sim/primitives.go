package sim

// Convergecast charges the cost of every member reporting wordsPer words to
// its assigned center along a shortest hop path: center[v] gives each
// vertex's destination (centers have center[c] == c), and maxHops bounds
// the tree depth (rounds charged). Message count is exact for per-hop
// relaying without aggregation: one message per hop of each member's path.
//
// This is the "members report to their cluster head" step of §3.2.2/§3.2.3;
// the paper's heads gather information from a constant hop radius, which is
// exactly maxHops here.
func (nw *Network) Convergecast(step string, center []int, maxHops int, wordsPer int64) {
	nw.chargeTreeTraffic(step, center, maxHops, wordsPer)
}

// Broadcast charges the reverse flow: each center sends wordsPer words to
// every member, relayed hop by hop. Cost structure is identical to
// Convergecast (same tree, opposite direction).
func (nw *Network) Broadcast(step string, center []int, maxHops int, wordsPer int64) {
	nw.chargeTreeTraffic(step, center, maxHops, wordsPer)
}

// chargeTreeTraffic computes, for every vertex, its hop distance to its
// center (BFS from each center, restricted to that center's members), and
// charges one message per hop per member plus maxHops rounds.
func (nw *Network) chargeTreeTraffic(step string, center []int, maxHops int, wordsPer int64) {
	if maxHops < 1 {
		maxHops = 1
	}
	var messages int64
	// Group members by center.
	members := make(map[int][]int)
	for v, c := range center {
		if c >= 0 && c != v {
			members[c] = append(members[c], v)
		}
	}
	for c, mem := range members {
		hops := nw.g.BFSHops(c, maxHops)
		for _, v := range mem {
			if h, ok := hops[v]; ok {
				messages += int64(h)
			} else {
				// Member beyond the hop bound (possible when cluster
				// paths leave the cluster); fall back to the bound.
				messages += int64(maxHops)
			}
		}
	}
	nw.Charge(step, maxHops, messages, messages*wordsPer)
}

// DerivedMISRound charges one communication round of a distributed MIS
// running on a derived graph: derived-graph neighbors are at most hop hops
// apart in the communication graph, so one derived round costs hop real
// rounds and one relayed message per derived edge direction per hop.
// degSum is the sum of derived-graph degrees (2× derived edges).
func (nw *Network) DerivedMISRound(step string, degSum int64, hop int) {
	if hop < 1 {
		hop = 1
	}
	nw.Charge(step, hop, degSum*int64(hop), degSum*int64(hop))
}

// HopDistance returns the hop distance between u and v in the
// communication graph, capped at max (-1 if farther than max).
func (nw *Network) HopDistance(u, v, max int) int {
	hops := nw.g.BFSHops(u, max)
	if h, ok := hops[v]; ok {
		return h
	}
	return -1
}
