package sim

import (
	"testing"

	"topoctl/internal/graph"
)

// starWorld: center 0 with 3 leaves, plus a 2-hop tail 3-4.
func starWorld() *graph.Graph {
	g := graph.New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	g.AddEdge(3, 4, 1)
	return g
}

func TestConvergecastExactCosts(t *testing.T) {
	g := starWorld()
	nw := NewNetwork(g)
	// Everyone assigned to center 0: members 1,2,3 at 1 hop, 4 at 2 hops.
	center := []int{0, 0, 0, 0, 0}
	nw.Convergecast("cc", center, 2, 3)
	if nw.Rounds() != 2 {
		t.Errorf("rounds = %d, want 2", nw.Rounds())
	}
	// Messages: 1+1+1+2 = 5 hops; words = 5*3.
	if nw.Messages() != 5 {
		t.Errorf("messages = %d, want 5", nw.Messages())
	}
	if nw.Words() != 15 {
		t.Errorf("words = %d, want 15", nw.Words())
	}
}

func TestBroadcastMirrorsConvergecast(t *testing.T) {
	g := starWorld()
	a := NewNetwork(g)
	b := NewNetwork(g)
	center := []int{0, 0, 0, 0, 0}
	a.Convergecast("x", center, 2, 1)
	b.Broadcast("x", center, 2, 1)
	if a.Messages() != b.Messages() || a.Rounds() != b.Rounds() {
		t.Errorf("asymmetric costs: %s vs %s", a, b)
	}
}

func TestConvergecastMultipleCenters(t *testing.T) {
	g := starWorld()
	nw := NewNetwork(g)
	// Two clusters: {0,1,2} centered at 0, {3,4} centered at 3.
	center := []int{0, 0, 0, 3, 3}
	nw.Convergecast("cc", center, 1, 1)
	// Members: 1,2 at 1 hop of 0; 4 at 1 hop of 3 → 3 messages.
	if nw.Messages() != 3 {
		t.Errorf("messages = %d, want 3", nw.Messages())
	}
	if nw.Rounds() != 1 {
		t.Errorf("rounds = %d, want 1", nw.Rounds())
	}
}

func TestConvergecastBeyondBoundFallsBack(t *testing.T) {
	g := starWorld()
	nw := NewNetwork(g)
	// Vertex 4 is 2 hops from 0, but we cap at 1: its cost falls back to
	// the bound rather than being dropped.
	center := []int{0, 0, 0, 0, 0}
	nw.Convergecast("cc", center, 1, 1)
	if nw.Messages() != 4 { // 1+1+1+1(fallback)
		t.Errorf("messages = %d, want 4", nw.Messages())
	}
}

func TestDerivedMISRound(t *testing.T) {
	nw := NewNetwork(starWorld())
	nw.DerivedMISRound("mis", 10, 3)
	if nw.Rounds() != 3 || nw.Messages() != 30 {
		t.Errorf("costs = %s", nw)
	}
	nw.DerivedMISRound("mis", 10, 0) // hop clamped to 1
	if nw.Rounds() != 4 {
		t.Errorf("hop clamp broken: rounds = %d", nw.Rounds())
	}
}

func TestHopDistance(t *testing.T) {
	nw := NewNetwork(starWorld())
	if got := nw.HopDistance(1, 4, 5); got != 3 {
		t.Errorf("hop(1,4) = %d, want 3", got)
	}
	if got := nw.HopDistance(1, 4, 2); got != -1 {
		t.Errorf("capped hop = %d, want -1", got)
	}
	if got := nw.HopDistance(2, 2, 1); got != 0 {
		t.Errorf("self hop = %d, want 0", got)
	}
}
