// Package sim implements the paper's communication model (§1.1): a
// synchronous message-passing network in which time is divided into rounds
// and, in each round, every node may send a (different) message to each of
// its neighbors and perform arbitrary local computation. The cost of an
// algorithm is its number of rounds; the simulator additionally counts
// messages and message "words" (one word = one O(log n)-bit record) so the
// bandwidth the algorithms actually consume is visible.
//
// The central primitive is the k-hop gather (Gather): after k rounds of
// flooding every node knows the full weighted topology, and any piggybacked
// per-node state, of its k-hop neighborhood. Synchronous flooding is
// deterministic, so the simulator computes the resulting local views
// directly via BFS and charges exactly the rounds/messages/words that the
// flooding protocol would use; this is an exact account, not an estimate.
package sim

import (
	"fmt"

	"topoctl/internal/graph"
)

// Network wraps a communication graph with cost accounting.
type Network struct {
	g *graph.Graph

	rounds   int
	messages int64
	words    int64

	// perStep accumulates costs by named step for reporting.
	perStep map[string]*StepCost
}

// StepCost is the accumulated cost of one named algorithm step.
type StepCost struct {
	Rounds   int
	Messages int64
	Words    int64
}

// NewNetwork returns a network over communication graph g with zeroed
// counters. The graph is not copied; callers must not mutate it while the
// network is in use.
func NewNetwork(g *graph.Graph) *Network {
	return &Network{g: g, perStep: make(map[string]*StepCost)}
}

// G returns the underlying communication graph.
func (nw *Network) G() *graph.Graph { return nw.g }

// Rounds returns the total number of communication rounds consumed.
func (nw *Network) Rounds() int { return nw.rounds }

// Messages returns the total number of point-to-point messages sent.
func (nw *Network) Messages() int64 { return nw.messages }

// Words returns the total number of O(log n)-bit words carried by all
// messages.
func (nw *Network) Words() int64 { return nw.words }

// PerStep returns accumulated costs keyed by step name. The returned map is
// live; callers should treat it as read-only.
func (nw *Network) PerStep() map[string]*StepCost { return nw.perStep }

// Charge adds cost to the counters under the given step name. Algorithms
// use Charge for protocol steps whose communication pattern is known exactly
// (e.g. "each node sends one message to each neighbor": rounds=1,
// messages=2M, words=2M).
func (nw *Network) Charge(step string, rounds int, messages, words int64) {
	nw.rounds += rounds
	nw.messages += messages
	nw.words += words
	sc := nw.perStep[step]
	if sc == nil {
		sc = &StepCost{}
		nw.perStep[step] = sc
	}
	sc.Rounds += rounds
	sc.Messages += messages
	sc.Words += words
}

// NeighborExchange charges one round in which every node sends words wordsPer
// to each neighbor (the standard "tell all neighbors" step).
func (nw *Network) NeighborExchange(step string, wordsPer int64) {
	m := int64(2 * nw.g.M()) // one message per directed edge
	nw.Charge(step, 1, m, m*wordsPer)
}

// LocalView is the knowledge a node has after a k-hop gather: the hop
// distance of every known vertex and the full adjacency (with weights) of
// every known vertex. Known vertices are exactly those within k hops of the
// root; since adjacency of a vertex at hop k is known, edges to hop-(k+1)
// vertices are visible as "dangling" endpoints, matching what flooding
// delivers.
type LocalView struct {
	Root  int
	Depth int
	// Hops maps known vertex -> hop distance from Root (<= Depth).
	Hops map[int]int
}

// Knows reports whether vertex v is inside the view.
func (lv *LocalView) Knows(v int) bool {
	_, ok := lv.Hops[v]
	return ok
}

// Gather performs a k-hop flooding gather and returns the local view of
// every node. The protocol being accounted: in round 1 every node sends its
// own record (one word per incident edge plus one) to all neighbors; in each
// later round every node forwards the records it learned in the previous
// round to all neighbors. After k rounds node u holds the records of every
// vertex within k hops.
//
// Rounds charged: k. Messages: for every ordered pair (w, x) of neighbors
// and every record origin v, w forwards v's record to x in the round after w
// first learned it, provided that happens within the k-round budget; v's
// record is forwarded by all w with hop(v,w) <= k-1. Words: each record of
// vertex v costs deg(v)+1 words.
func (nw *Network) Gather(step string, k int) []*LocalView {
	n := nw.g.N()
	views := make([]*LocalView, n)
	var messages, words int64
	for v := 0; v < n; v++ {
		hops := nw.g.BFSHops(v, k)
		views[v] = &LocalView{Root: v, Depth: k, Hops: hops}
	}
	// Cost: record of v is rebroadcast by every node w with hop(v,w) <= k-1
	// to all of w's neighbors.
	for v := 0; v < n; v++ {
		recWords := int64(nw.g.Degree(v) + 1)
		inner := nw.g.BFSHops(v, k-1)
		for w := range inner {
			deg := int64(nw.g.Degree(w))
			messages += deg
			words += deg * recWords
		}
	}
	nw.Charge(step, k, messages, words)
	return views
}

// Subgraph materializes the view as a standalone graph over the original
// vertex IDs: it contains every edge of the communication graph whose both
// endpoints are known to the view. Computations a node performs "locally"
// run against this graph, which makes locality violations structurally
// impossible rather than merely asserted.
func (lv *LocalView) Subgraph(g *graph.Graph) *graph.Graph {
	sub := graph.New(g.N())
	for v := range lv.Hops {
		for _, h := range g.Neighbors(v) {
			if v < h.To && lv.Knows(h.To) {
				sub.AddEdge(v, h.To, h.W)
			}
		}
	}
	return sub
}

// String summarizes the network counters.
func (nw *Network) String() string {
	return fmt.Sprintf("rounds=%d messages=%d words=%d", nw.rounds, nw.messages, nw.words)
}
