package sim

import (
	"testing"

	"topoctl/internal/graph"
)

// lineGraph returns a path 0-1-2-...-(n-1) with unit weights.
func lineGraph(n int) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddEdge(i, i+1, 1)
	}
	return g
}

func TestGatherDepthSemantics(t *testing.T) {
	g := lineGraph(7)
	nw := NewNetwork(g)
	views := nw.Gather("test", 2)
	// Node 3 must know exactly {1,2,3,4,5} after 2 rounds.
	v := views[3]
	want := map[int]int{1: 2, 2: 1, 3: 0, 4: 1, 5: 2}
	if len(v.Hops) != len(want) {
		t.Fatalf("view size %d, want %d: %v", len(v.Hops), len(want), v.Hops)
	}
	for x, h := range want {
		if v.Hops[x] != h {
			t.Errorf("hop[%d] = %d, want %d", x, v.Hops[x], h)
		}
	}
	if !v.Knows(4) || v.Knows(6) {
		t.Error("Knows semantics wrong")
	}
}

func TestGatherRoundsCharged(t *testing.T) {
	g := lineGraph(5)
	nw := NewNetwork(g)
	nw.Gather("a", 3)
	if nw.Rounds() != 3 {
		t.Errorf("rounds = %d, want 3", nw.Rounds())
	}
	nw.Gather("b", 2)
	if nw.Rounds() != 5 {
		t.Errorf("rounds = %d, want 5", nw.Rounds())
	}
	if nw.PerStep()["a"].Rounds != 3 || nw.PerStep()["b"].Rounds != 2 {
		t.Error("per-step round attribution wrong")
	}
}

// TestGatherMessageAccounting checks the flooding cost formula on a graph
// small enough to count by hand: a triangle, k=1. Each node's record is
// forwarded only by the origin itself (hop <= 0), to deg(origin) = 2
// neighbors: 6 messages total, each carrying deg+1 = 3 words.
func TestGatherMessageAccounting(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(0, 2, 1)
	nw := NewNetwork(g)
	nw.Gather("t", 1)
	if nw.Messages() != 6 {
		t.Errorf("messages = %d, want 6", nw.Messages())
	}
	if nw.Words() != 18 {
		t.Errorf("words = %d, want 18", nw.Words())
	}
}

// TestGatherMessageAccountingDepth2 extends the hand count: on a path
// 0-1-2, k=2. Records: 0's record forwarded by 0 (deg 1) and by 1 (deg 2,
// hop 1): 3 messages; symmetric for 2's record: 3; 1's record forwarded by
// all three nodes (hops 0,1,1): deg sum = 1+2+1 = 4 messages. Total 10.
func TestGatherMessageAccountingDepth2(t *testing.T) {
	g := lineGraph(3)
	nw := NewNetwork(g)
	nw.Gather("t", 2)
	if nw.Messages() != 10 {
		t.Errorf("messages = %d, want 10", nw.Messages())
	}
}

func TestSubgraphRestriction(t *testing.T) {
	g := lineGraph(6)
	nw := NewNetwork(g)
	views := nw.Gather("t", 2)
	sub := views[0].Subgraph(g)
	// View of 0 at depth 2 knows {0,1,2}; edges 0-1, 1-2 present, 2-3 not.
	if !sub.HasEdge(0, 1) || !sub.HasEdge(1, 2) {
		t.Error("expected edges missing from view subgraph")
	}
	if sub.HasEdge(2, 3) {
		t.Error("edge outside view present in subgraph")
	}
	if sub.N() != g.N() {
		t.Error("subgraph should keep the global vertex numbering")
	}
}

func TestChargeAccumulates(t *testing.T) {
	nw := NewNetwork(lineGraph(3))
	nw.Charge("x", 2, 10, 20)
	nw.Charge("x", 1, 5, 10)
	nw.Charge("y", 1, 1, 1)
	if nw.Rounds() != 4 || nw.Messages() != 16 || nw.Words() != 31 {
		t.Errorf("totals wrong: %s", nw)
	}
	x := nw.PerStep()["x"]
	if x.Rounds != 3 || x.Messages != 15 || x.Words != 30 {
		t.Errorf("per-step wrong: %+v", x)
	}
}

func TestNeighborExchange(t *testing.T) {
	g := lineGraph(4) // 3 edges
	nw := NewNetwork(g)
	nw.NeighborExchange("ex", 2)
	if nw.Rounds() != 1 {
		t.Errorf("rounds = %d", nw.Rounds())
	}
	if nw.Messages() != 6 { // one per directed edge
		t.Errorf("messages = %d, want 6", nw.Messages())
	}
	if nw.Words() != 12 {
		t.Errorf("words = %d, want 12", nw.Words())
	}
}

func TestGatherViewContainsBall(t *testing.T) {
	// On a random-ish graph every view must exactly equal the BFS ball.
	g := graph.New(10)
	edges := [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {7, 8}, {8, 9}, {2, 6}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1], 1)
	}
	nw := NewNetwork(g)
	for k := 1; k <= 4; k++ {
		views := nw.Gather("t", k)
		for v := 0; v < g.N(); v++ {
			want := g.BFSHops(v, k)
			if len(views[v].Hops) != len(want) {
				t.Fatalf("k=%d v=%d: view size %d, want %d", k, v, len(views[v].Hops), len(want))
			}
		}
	}
}

func TestStringFormat(t *testing.T) {
	nw := NewNetwork(lineGraph(2))
	nw.Charge("s", 1, 2, 3)
	if got := nw.String(); got != "rounds=1 messages=2 words=3" {
		t.Errorf("String = %q", got)
	}
}
