// Package analyze implements the read-side topology health and
// failure-impact analytics behind topoctld's /analyze API family: failure
// impact (which vertices go dark and which pairs lose their stretch
// guarantee if a vertex set or region dies), k-hop subgraph extraction
// shaped for a Cytoscape-style viewer, per-hop route explanation against
// the base-graph optimum, and spanner-vs-base divergence reports.
//
// Every query is a pure function over a View — an immutable bundle of the
// topology state one serving snapshot holds (positions, liveness, base
// graph, spanner, stretch bound) through the graph.Topology read interface,
// so the same code runs on the mutable *graph.Graph builders use and the
// frozen CSR snapshots the daemon serves. Nothing here mutates shared
// state: fault sets are applied to working copies (internal/fault's
// appliers), searches run on pooled Searcher scratch, and the expensive
// scans fan out across a caller-supplied searcher pool with an optional
// wall-clock cap, so an analysis query can never stall the writer or
// another reader.
package analyze

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/routing"
)

// ErrBadQuery reports a malformed analysis request (out-of-range knob,
// half-specified region, unknown graph selector).
var ErrBadQuery = errors.New("analyze: bad query")

// ErrUnknownVertex reports a query naming a dead or out-of-range vertex.
var ErrUnknownVertex = errors.New("analyze: unknown vertex")

// View is one immutable topology version under analysis: the exact bundle
// a serving snapshot holds. All fields are read-only for the duration of
// the query; the serving layer hands in frozen graphs, tests hand in
// mutable ones.
type View struct {
	// Points holds slot-indexed positions; nil entries are free slots.
	Points []geom.Point
	// Alive marks which slots hold live vertices; nil means all are live.
	Alive []bool
	// Base is the connectivity graph, Spanner the maintained t-spanner.
	Base    graph.Topology
	Spanner graph.Topology
	// T is the spanner stretch bound health checks compare against.
	T float64
	// Oracle, when set, is the hub-label distance oracle over Spanner;
	// route explanations cross-check it against the search answer.
	Oracle routing.DistanceOracle
}

// n returns the vertex count of the view.
func (v View) n() int { return v.Spanner.N() }

// alive reports whether x names a live vertex.
func (v View) alive(x int) bool {
	return x >= 0 && x < v.n() && (v.Alive == nil || v.Alive[x])
}

// liveCount counts live vertices.
func (v View) liveCount() int {
	if v.Alive == nil {
		return v.n()
	}
	live := 0
	for _, a := range v.Alive {
		if a {
			live++
		}
	}
	return live
}

// Searchers supplies reusable search scratch to the parallel scans. The
// serving layer adapts its per-process searcher pool; the zero Options
// default pulls from the package-level pool in internal/graph.
type Searchers interface {
	Acquire() *graph.Searcher
	Release(*graph.Searcher)
}

// poolSearchers is the default Searchers, backed by graph's sync.Pool.
type poolSearchers struct{ n int }

func (p poolSearchers) Acquire() *graph.Searcher  { return graph.AcquireSearcher(p.n) }
func (p poolSearchers) Release(s *graph.Searcher) { graph.ReleaseSearcher(s) }

// Options tunes resource usage of a query; the zero value is ready to use.
type Options struct {
	// Parallelism bounds the worker goroutines of the edge scans
	// (default GOMAXPROCS).
	Parallelism int
	// Searchers supplies search scratch (default: internal/graph's pool).
	Searchers Searchers
	// MaxDuration caps the wall-clock time of the stretch scans; when
	// exceeded the report is returned with Truncated set and counts
	// reflecting the edges actually checked. Zero means no cap.
	MaxDuration time.Duration
}

func (o *Options) normalize(n int) {
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Searchers == nil {
		o.Searchers = poolSearchers{n: n}
	}
}

// StretchWitness is one base-graph pair pinned as evidence by a stretch
// scan: the surviving spanner distance between the endpoints against the
// base edge weight. Reachable false means no surviving spanner path at all
// (Distance and Stretch are then 0 — JSON carries no infinity).
type StretchWitness struct {
	U          int     `json:"u"`
	V          int     `json:"v"`
	BaseWeight float64 `json:"base_weight"`
	Distance   float64 `json:"distance"`
	Reachable  bool    `json:"reachable"`
	Stretch    float64 `json:"stretch"`
}

// witnessWorse ranks witnesses most-severe first: unreachable pairs before
// any finite stretch, then by stretch descending, with the vertex pair as
// the deterministic tiebreak.
func witnessWorse(a, b StretchWitness) bool {
	if a.Reachable != b.Reachable {
		return !a.Reachable
	}
	if a.Stretch != b.Stretch {
		return a.Stretch > b.Stretch
	}
	if a.U != b.U {
		return a.U < b.U
	}
	return a.V < b.V
}

// scanParallel strides fn over 0..count-1 across workers, each holding one
// pooled Searcher for its whole stripe. A non-zero deadline is checked
// every few items; once it passes, workers stop picking up new items.
// It returns how many items were processed and whether the scan was cut
// short. With one worker (or few items) it runs inline on the caller's
// goroutine.
func scanParallel(opts Options, count int, deadline time.Time, fn func(srch *graph.Searcher, i int)) (processed int, truncated bool) {
	const deadlineStride = 32
	workers := opts.Parallelism
	if workers > count {
		workers = count
	}
	var expired atomic.Bool
	checkDeadline := func(i int) bool {
		if deadline.IsZero() {
			return false
		}
		if expired.Load() {
			return true
		}
		if i%deadlineStride == 0 && time.Now().After(deadline) {
			expired.Store(true)
			return true
		}
		return false
	}
	if workers <= 1 {
		srch := opts.Searchers.Acquire()
		defer opts.Searchers.Release(srch)
		for i := 0; i < count; i++ {
			if checkDeadline(i) {
				return processed, true
			}
			fn(srch, i)
			processed++
		}
		return processed, false
	}
	var done atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			srch := opts.Searchers.Acquire()
			defer opts.Searchers.Release(srch)
			for i := w; i < count; i += workers {
				if checkDeadline(i) {
					return
				}
				fn(srch, i)
				done.Add(1)
			}
		}(w)
	}
	wg.Wait()
	return int(done.Load()), expired.Load()
}
