package analyze

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/greedy"
)

// lineView builds a 5-vertex path graph 0-1-2-3-4 with unit weights and
// 1-D positions at x = vertex id; spanner == base.
func lineView() View {
	g := graph.New(5)
	for i := 0; i < 4; i++ {
		g.AddEdge(i, i+1, 1)
	}
	pts := make([]geom.Point, 5)
	for i := range pts {
		pts[i] = geom.Point{float64(i), 0}
	}
	return View{Points: pts, Base: g, Spanner: g, T: 2}
}

func TestImpactRegionBox(t *testing.T) {
	v := lineView()
	rep, err := Impact(v, ImpactRequest{
		BoxLo: geom.Point{0.5, -1},
		BoxHi: geom.Point{2.5, 1},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(rep.Faulted, []int{1, 2}) {
		t.Fatalf("box faulted %v, want [1 2]", rep.Faulted)
	}
	// Killing 1 and 2 leaves {0} and {3,4}; the main fragment is {3,4},
	// so vertex 0 is newly unreachable.
	if !equalInts(rep.Unreachable, []int{0}) || rep.UnreachableCount != 1 {
		t.Fatalf("unreachable %v (count %d), want [0]", rep.Unreachable, rep.UnreachableCount)
	}
	if rep.ComponentsBefore != 1 || rep.ComponentsAfter != 2 {
		t.Fatalf("components %d -> %d, want 1 -> 2", rep.ComponentsBefore, rep.ComponentsAfter)
	}
}

func TestImpactBadRequests(t *testing.T) {
	v := lineView()
	if _, err := Impact(v, ImpactRequest{BoxLo: geom.Point{0}}, Options{}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("half box: err = %v, want ErrBadQuery", err)
	}
	if _, err := Impact(v, ImpactRequest{Vertices: []int{99}}, Options{}); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("out of range: err = %v, want ErrUnknownVertex", err)
	}
}

func TestImpactRespectsAliveMaskAndCaps(t *testing.T) {
	v := lineView()
	v.Alive = []bool{true, true, true, true, false} // vertex 4 already dead
	// Faulting an already-dead vertex is a no-op, not an error.
	rep, err := Impact(v, ImpactRequest{Vertices: []int{4, 1}, MaxUnreachable: 0}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !equalInts(rep.Faulted, []int{1}) {
		t.Fatalf("faulted %v, want [1]", rep.Faulted)
	}
	if rep.Survivors != 3 {
		t.Fatalf("survivors %d, want 3", rep.Survivors)
	}
	// Killing 1 leaves {0} and {2,3}: vertex 0 is cut off.
	if !equalInts(rep.Unreachable, []int{0}) {
		t.Fatalf("unreachable %v, want [0]", rep.Unreachable)
	}

	capped, err := Impact(v, ImpactRequest{Vertices: []int{1}, MaxUnreachable: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(capped.Unreachable) != 1 || capped.UnreachableCount != 1 {
		t.Fatalf("capped unreachable %v count %d", capped.Unreachable, capped.UnreachableCount)
	}
}

func TestImpactTimeCapTruncates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i), 0.1+rng.Float64())
	}
	for i := 0; i < 4*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v, 0.1+rng.Float64())
		}
	}
	v := View{Base: g, Spanner: g, T: 2}
	rep, err := Impact(v, ImpactRequest{Vertices: []int{0}}, Options{MaxDuration: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("1ns cap did not truncate the scan")
	}
	if rep.BaseEdgesChecked >= g.M() {
		t.Fatalf("truncated scan claims %d of %d edges checked", rep.BaseEdgesChecked, g.M())
	}
}

func TestAroundShapesCytoscapeJSON(t *testing.T) {
	v := lineView()
	rep, err := Around(v, AroundRequest{Center: 2, Hops: 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 3 || rep.Edges != 2 || rep.Truncated {
		t.Fatalf("ball around 2: %d nodes %d edges truncated=%v", rep.Nodes, rep.Edges, rep.Truncated)
	}
	if rep.Elements.Nodes[0].Data.ID != "n2" || !rep.Elements.Nodes[0].Data.Center {
		t.Fatalf("first node should be the center: %+v", rep.Elements.Nodes[0])
	}
	if rep.Elements.Nodes[0].Position == nil || rep.Elements.Nodes[0].Position.X != 2 {
		t.Fatalf("center position %+v, want x=2", rep.Elements.Nodes[0].Position)
	}
	// The wire shape must be loadable as Cytoscape elements JSON.
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Elements struct {
			Nodes []struct {
				Data struct {
					ID string `json:"id"`
				} `json:"data"`
			} `json:"nodes"`
			Edges []struct {
				Data struct {
					Source string  `json:"source"`
					Target string  `json:"target"`
					Weight float64 `json:"weight"`
				} `json:"data"`
			} `json:"edges"`
		} `json:"elements"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Elements.Nodes) != 3 || len(decoded.Elements.Edges) != 2 {
		t.Fatalf("decoded %d nodes %d edges", len(decoded.Elements.Nodes), len(decoded.Elements.Edges))
	}
	for _, e := range decoded.Elements.Edges {
		if e.Data.Weight != 1 {
			t.Fatalf("edge weight %v, want 1", e.Data.Weight)
		}
	}
}

func TestAroundTruncationAndSelectors(t *testing.T) {
	v := lineView()
	rep, err := Around(v, AroundRequest{Center: 0, Hops: 4, MaxNodes: 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated || rep.Nodes != 2 {
		t.Fatalf("max_nodes=2: %d nodes truncated=%v", rep.Nodes, rep.Truncated)
	}
	if _, err := Around(v, AroundRequest{Center: 0, Graph: "nope"}, Options{}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("bad selector: err = %v", err)
	}
	if _, err := Around(v, AroundRequest{Center: -1}, Options{}); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("bad center: err = %v", err)
	}
	base, err := Around(v, AroundRequest{Center: 2, Hops: 2, Graph: "base"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Graph != "base" || base.Nodes != 5 {
		t.Fatalf("base ball: %+v", base)
	}
}

func TestAroundMatchesOnBothRepresentations(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(30)
		g := graph.New(n)
		for i := 1; i < n; i++ {
			g.AddEdge(i, rng.Intn(i), 0.1+rng.Float64())
		}
		sp := greedy.Spanner(g, 1.5)
		req := AroundRequest{Center: rng.Intn(n), Hops: rng.Intn(4)}
		m, err := Around(View{Base: g, Spanner: sp, T: 1.5}, req, Options{})
		if err != nil {
			t.Fatal(err)
		}
		f, err := Around(View{Base: graph.Freeze(g), Spanner: graph.Freeze(sp), T: 1.5}, req, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, f) {
			t.Fatalf("trial %d: representations disagree", trial)
		}
	}
}

func TestExplainRoute(t *testing.T) {
	// Triangle detour: base has the direct edge 0-2 (weight 1.9), spanner
	// only the two-hop path through 1 (cost 2).
	base := graph.New(3)
	base.AddEdge(0, 1, 1)
	base.AddEdge(1, 2, 1)
	base.AddEdge(0, 2, 1.9)
	sp := graph.New(3)
	sp.AddEdge(0, 1, 1)
	sp.AddEdge(1, 2, 1)
	v := View{Base: base, Spanner: sp, T: 1.2}

	exp, err := Explain(v, 0, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !exp.Reachable || exp.SpannerCost != 2 {
		t.Fatalf("spanner cost %v reachable %v", exp.SpannerCost, exp.Reachable)
	}
	want := []HopDetail{{From: 0, To: 1, Weight: 1, Cumulative: 1}, {From: 1, To: 2, Weight: 1, Cumulative: 2}}
	if !reflect.DeepEqual(exp.Path, want) {
		t.Fatalf("path %+v", exp.Path)
	}
	if !exp.BaseReachable || exp.BaseCost != 1.9 {
		t.Fatalf("base cost %v", exp.BaseCost)
	}
	// 2/1.9 ≈ 1.053 is within the t = 1.2 bound.
	if !close(exp.Stretch, 2/1.9) || !exp.WithinBound {
		t.Fatalf("stretch %v within=%v", exp.Stretch, exp.WithinBound)
	}
}

func TestExplainSelfAndDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	v := View{Base: g, Spanner: g, T: 2}
	self, err := Explain(v, 1, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !self.Reachable || self.SpannerCost != 0 || self.Stretch != 1 || !self.WithinBound {
		t.Fatalf("self route: %+v", self)
	}
	disc, err := Explain(v, 0, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if disc.Reachable || disc.BaseReachable || len(disc.Path) != 0 {
		t.Fatalf("disconnected route: %+v", disc)
	}
	if _, err := Explain(v, 0, 9, Options{}); !errors.Is(err, ErrUnknownVertex) {
		t.Fatalf("unknown dst: err = %v", err)
	}
}

// fakeOracle answers a fixed distance for every pair.
type fakeOracle struct{ d float64 }

func (f fakeOracle) Query(s, t int) (float64, bool) { return f.d, true }

func TestExplainOracleAgreement(t *testing.T) {
	g := graph.New(2)
	g.AddEdge(0, 1, 3)
	v := View{Base: g, Spanner: g, T: 2, Oracle: fakeOracle{d: 3}}
	exp, err := Explain(v, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !exp.OracleChecked || !exp.OracleAgrees || exp.OracleDistance != 3 {
		t.Fatalf("agreeing oracle: %+v", exp)
	}
	v.Oracle = fakeOracle{d: 4}
	exp, err = Explain(v, 0, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !exp.OracleChecked || exp.OracleAgrees {
		t.Fatalf("disagreeing oracle not flagged: %+v", exp)
	}
}

func TestDivergenceExactOnSmallGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 30
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i), 0.1+rng.Float64())
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v, 0.1+rng.Float64())
		}
	}
	tt := 1.7
	sp := greedy.Spanner(g, tt)
	v := View{Base: g, Spanner: sp, T: tt}
	rep, err := Divergence(v, DivergenceRequest{Sample: g.M() + 10, Buckets: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Exact || rep.SampledEdges != g.M() {
		t.Fatalf("exact scan: %+v", rep)
	}
	if rep.BaseEdges != g.M() || rep.SpannerEdges != sp.M() {
		t.Fatalf("edge counts: %+v", rep)
	}
	if rep.SharedEdges != sp.M() || rep.SpannerOnly != 0 || rep.BaseOnly != g.M()-sp.M() {
		t.Fatalf("diff partition: %+v", rep)
	}
	// The greedy spanner guarantees every base edge is within stretch t.
	if rep.OverBound != 0 || rep.DisconnectedPairs != 0 {
		t.Fatalf("greedy spanner violated its bound: %+v", rep)
	}
	if rep.WorstStretch > tt || rep.WorstStretch < 1 {
		t.Fatalf("worst stretch %v outside [1, %v]", rep.WorstStretch, tt)
	}
	total := 0
	for _, b := range rep.Histogram {
		total += b.Count
	}
	if total != g.M() {
		t.Fatalf("histogram sums to %d, want %d", total, g.M())
	}
	// Same seed, same sample: deterministic across representations.
	fr, err := Divergence(View{Base: graph.Freeze(g), Spanner: graph.Freeze(sp), T: tt},
		DivergenceRequest{Sample: g.M() + 10, Buckets: 4}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, fr) {
		t.Fatalf("representations disagree:\n%+v\n%+v", rep, fr)
	}
}

func TestDivergenceSampleIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 60
	g := graph.New(n)
	for i := 1; i < n; i++ {
		g.AddEdge(i, rng.Intn(i), 0.1+rng.Float64())
	}
	for i := 0; i < 5*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v, 0.1+rng.Float64())
		}
	}
	sp := greedy.Spanner(g, 2)
	v := View{Base: g, Spanner: sp, T: 2}
	req := DivergenceRequest{Sample: 40, Seed: 99}
	a, err := Divergence(v, req, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Divergence(v, req, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different reports")
	}
	if a.Exact || a.SampledEdges != 40 {
		t.Fatalf("sampled scan: %+v", a)
	}
	if _, err := Divergence(v, DivergenceRequest{Sample: -1}, Options{}); !errors.Is(err, ErrBadQuery) {
		t.Fatalf("negative sample: err = %v", err)
	}
}
