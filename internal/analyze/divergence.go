package analyze

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"topoctl/internal/graph"
)

// DivergenceRequest tunes the spanner-vs-base comparison.
type DivergenceRequest struct {
	// Sample is how many base edges to probe for stretch (default 256); a
	// sample at least the base edge count makes the scan exact.
	Sample int `json:"sample,omitempty"`
	// Seed selects the deterministic sample (same seed, same pairs).
	Seed int64 `json:"seed,omitempty"`
	// Buckets is the stretch-histogram resolution over [1, t] (default 8).
	Buckets int `json:"buckets,omitempty"`
	// MaxWitnesses caps the worst-pair witness list (default 8).
	MaxWitnesses int `json:"max_witnesses,omitempty"`
}

// HistBucket is one stretch-histogram bin over [Lo, Hi).
type HistBucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count int     `json:"count"`
}

// DivergenceReport compares the maintained spanner against the base graph:
// the edge diff, total-weight ratio, and a sampled distribution of the
// realized stretch over base edges.
type DivergenceReport struct {
	BaseEdges    int `json:"base_edges"`
	SpannerEdges int `json:"spanner_edges"`
	// SharedEdges/BaseOnly/SpannerOnly partition the edge sets.
	SharedEdges int `json:"shared_edges"`
	BaseOnly    int `json:"base_only"`
	SpannerOnly int `json:"spanner_only"`
	// Weight totals and their ratio (the spanner's "lightness" here).
	BaseWeight    float64 `json:"base_weight"`
	SpannerWeight float64 `json:"spanner_weight"`
	WeightRatio   float64 `json:"weight_ratio"`
	// SampledEdges is how many base edges were probed; Exact is set when
	// that is every base edge.
	SampledEdges int  `json:"sampled_edges"`
	Exact        bool `json:"exact"`
	// Histogram bins realized stretch over [1, t]; OverBound counts
	// probed pairs beyond t, DisconnectedPairs pairs the spanner cannot
	// connect at all.
	Histogram         []HistBucket `json:"histogram"`
	OverBound         int          `json:"over_bound"`
	DisconnectedPairs int          `json:"disconnected_pairs"`
	WorstStretch      float64      `json:"worst_stretch"`
	// Witnesses pins the worst sampled pairs.
	Witnesses []StretchWitness `json:"witnesses,omitempty"`
	// Truncated is set when the time cap cut the probe short.
	Truncated bool `json:"truncated"`
}

// Divergence diffs the spanner against the base graph and probes a
// deterministic sample of base edges for their realized spanner stretch.
func Divergence(v View, req DivergenceRequest, opts Options) (*DivergenceReport, error) {
	opts.normalize(v.n())
	if req.Sample < 0 || req.Buckets < 0 || req.MaxWitnesses < 0 {
		return nil, fmt.Errorf("%w: negative knob", ErrBadQuery)
	}
	sample := req.Sample
	if sample == 0 {
		sample = 256
	}
	buckets := req.Buckets
	if buckets == 0 {
		buckets = 8
	}
	maxWitnesses := req.MaxWitnesses
	if maxWitnesses == 0 {
		maxWitnesses = 8
	}

	rep := &DivergenceReport{WorstStretch: 1}
	baseEdges := graph.SortedEdges(v.Base)
	rep.BaseEdges = len(baseEdges)
	rep.SpannerEdges = v.Spanner.M()
	for _, e := range baseEdges {
		rep.BaseWeight += e.W
		if v.Spanner.HasEdge(e.U, e.V) {
			rep.SharedEdges++
		} else {
			rep.BaseOnly++
		}
	}
	rep.SpannerWeight = v.Spanner.TotalWeight()
	rep.SpannerOnly = rep.SpannerEdges - rep.SharedEdges
	if rep.BaseWeight > 0 {
		rep.WeightRatio = rep.SpannerWeight / rep.BaseWeight
	}

	// Deterministic sample: partial Fisher–Yates over a copy of the sorted
	// edge list, so the same seed probes the same pairs on either
	// representation.
	probe := baseEdges
	if sample < len(baseEdges) {
		rng := rand.New(rand.NewSource(req.Seed))
		probe = append([]graph.Edge(nil), baseEdges...)
		for i := 0; i < sample; i++ {
			j := i + rng.Intn(len(probe)-i)
			probe[i], probe[j] = probe[j], probe[i]
		}
		probe = probe[:sample]
	} else {
		rep.Exact = true
	}

	var deadline time.Time
	if opts.MaxDuration > 0 {
		deadline = time.Now().Add(opts.MaxDuration)
	}
	results := make([]StretchWitness, len(probe))
	filled := make([]bool, len(probe))
	rep.SampledEdges, rep.Truncated = scanParallel(opts, len(probe), deadline, func(srch *graph.Searcher, i int) {
		e := probe[i]
		w := StretchWitness{U: e.U, V: e.V, BaseWeight: e.W}
		if d, ok := srch.DijkstraTarget(v.Spanner, e.U, e.V, graph.Inf); ok {
			w.Reachable, w.Distance = true, d
			if e.W > 0 {
				w.Stretch = d / e.W
			} else {
				w.Stretch = 1
			}
		}
		results[i] = w
		filled[i] = true
	})
	if rep.Truncated {
		rep.Exact = false
	}

	hist := make([]HistBucket, buckets)
	span := v.T - 1
	if span <= 0 {
		span = 1
	}
	for b := range hist {
		hist[b].Lo = 1 + span*float64(b)/float64(buckets)
		hist[b].Hi = 1 + span*float64(b+1)/float64(buckets)
	}
	var probed []StretchWitness
	for i, w := range results {
		if !filled[i] {
			continue
		}
		probed = append(probed, w)
		switch {
		case !w.Reachable:
			rep.DisconnectedPairs++
		case w.Stretch > v.T:
			rep.OverBound++
		default:
			b := int(float64(buckets) * (w.Stretch - 1) / span)
			if b >= buckets {
				b = buckets - 1
			}
			if b < 0 {
				b = 0
			}
			hist[b].Count++
		}
		if w.Reachable && w.Stretch > rep.WorstStretch {
			rep.WorstStretch = w.Stretch
		}
	}
	rep.Histogram = hist
	sort.Slice(probed, func(i, j int) bool { return witnessWorse(probed[i], probed[j]) })
	if len(probed) > maxWitnesses {
		probed = probed[:maxWitnesses]
	}
	rep.Witnesses = probed
	return rep, nil
}
