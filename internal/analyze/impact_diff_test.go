package analyze

import (
	"math/rand"
	"reflect"
	"testing"

	"topoctl/internal/graph"
	"topoctl/internal/greedy"
)

// TestImpactDifferential is the acceptance pin for /analyze/impact: over
// 200+ fuzzed graphs and fault sets, the report must (a) be identical on
// the mutable and frozen representations and (b) match a brute-force
// recompute — independent BFS components for the unreachable set, a fresh
// unidirectional Dijkstra per base edge for the over-stretch and
// disconnected counts.
func TestImpactDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trials := 200
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		n := 6 + rng.Intn(30)
		tt := 1.2 + 2*rng.Float64()
		g := graph.New(n)
		for i := 1; i < n; i++ {
			// Random attachment keeps most trials connected...
			g.AddEdge(i, rng.Intn(i), 0.1+rng.Float64())
		}
		extra := rng.Intn(2 * n)
		for i := 0; i < extra; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v, 0.1+rng.Float64())
			}
		}
		if trial%5 == 0 {
			// ...but every fifth trial splits the graph outright.
			cut := 1 + rng.Intn(n-2)
			for _, e := range graph.SortedEdges(g) {
				if (e.U < cut) != (e.V < cut) {
					g.RemoveEdge(e.U, e.V)
				}
			}
		}
		sp := greedy.Spanner(g, tt)

		k := rng.Intn(4)
		req := ImpactRequest{MaxWitnesses: n * n}
		for i := 0; i < k; i++ {
			req.Vertices = append(req.Vertices, rng.Intn(n))
		}

		mutable := View{Base: g, Spanner: sp, T: tt}
		frozen := View{Base: graph.Freeze(g), Spanner: graph.Freeze(sp), T: tt}
		repM, err := Impact(mutable, req, Options{})
		if err != nil {
			t.Fatalf("trial %d: mutable impact: %v", trial, err)
		}
		repF, err := Impact(frozen, req, Options{})
		if err != nil {
			t.Fatalf("trial %d: frozen impact: %v", trial, err)
		}
		if !reflect.DeepEqual(repM, repF) {
			t.Fatalf("trial %d: representations disagree:\nmutable: %+v\nfrozen:  %+v", trial, repM, repF)
		}
		checkImpactBruteForce(t, trial, g, sp, tt, repM)
	}
}

// checkImpactBruteForce recomputes every claim of rep from scratch.
func checkImpactBruteForce(t *testing.T, trial int, g, sp *graph.Graph, tt float64, rep *ImpactReport) {
	t.Helper()
	n := g.N()
	down := make(map[int]bool, len(rep.Faulted))
	for _, x := range rep.Faulted {
		down[x] = true
	}
	if rep.Survivors != n-len(down) {
		t.Fatalf("trial %d: survivors %d, want %d", trial, rep.Survivors, n-len(down))
	}

	// Apply the fault set to an independent copy of the spanner.
	sf := sp.Clone()
	for x := range down {
		for _, h := range append([]graph.Halfedge(nil), sf.Neighbors(x)...) {
			sf.RemoveEdge(x, h.To)
		}
	}

	// Components via map-based BFS, before (all vertices) and after
	// (survivors only).
	before := bfsComponents(sp, func(int) bool { return true })
	after := bfsComponents(sf, func(x int) bool { return !down[x] })
	if rep.ComponentsBefore != len(before) || rep.ComponentsAfter != len(after) {
		t.Fatalf("trial %d: components %d/%d, want %d/%d",
			trial, rep.ComponentsBefore, rep.ComponentsAfter, len(before), len(after))
	}
	if rep.LargestBefore != largest(before) || rep.LargestAfter != largest(after) {
		t.Fatalf("trial %d: largest %d/%d, want %d/%d",
			trial, rep.LargestBefore, rep.LargestAfter, largest(before), largest(after))
	}

	// Newly unreachable: survivors outside the main surviving fragment of
	// their pre-fault component (largest; ties toward the fragment holding
	// the smallest vertex).
	memberBefore := membership(before, n)
	memberAfter := membership(after, n)
	mainOf := make(map[int]int) // pre-fault component index -> post index
	for bi := range before {
		bestIdx, bestSize, bestMin := -1, -1, -1
		for ai, frag := range after {
			if !down[frag[0]] && memberBefore[frag[0]] == bi {
				sz, mn := len(frag), minOf(frag)
				if sz > bestSize || (sz == bestSize && mn < bestMin) {
					bestIdx, bestSize, bestMin = ai, sz, mn
				}
			}
		}
		mainOf[bi] = bestIdx
	}
	var wantUnreachable []int
	for x := 0; x < n; x++ {
		if down[x] || memberAfter[x] < 0 {
			continue
		}
		if mainOf[memberBefore[x]] != memberAfter[x] {
			wantUnreachable = append(wantUnreachable, x)
		}
	}
	if rep.UnreachableCount != len(wantUnreachable) || !equalInts(rep.Unreachable, wantUnreachable) {
		t.Fatalf("trial %d: unreachable %v (count %d), want %v",
			trial, rep.Unreachable, rep.UnreachableCount, wantUnreachable)
	}

	// Stretch claims: fresh unidirectional Dijkstra per surviving base
	// edge on the fault-applied spanner.
	srch := graph.NewSearcher(n)
	wantChecked, wantOver, wantDisc := 0, 0, 0
	wantWorst := 1.0
	for _, e := range graph.SortedEdges(g) {
		if down[e.U] || down[e.V] {
			continue
		}
		wantChecked++
		d, ok := srch.DijkstraTargetUni(sf, e.U, e.V, graph.Inf)
		if !ok {
			wantDisc++
			continue
		}
		s := d / e.W
		if s > tt {
			wantOver++
		}
		if s > wantWorst {
			wantWorst = s
		}
	}
	if rep.BaseEdgesChecked != wantChecked || rep.OverStretch != wantOver || rep.DisconnectedPairs != wantDisc {
		t.Fatalf("trial %d: checked/over/disc %d/%d/%d, want %d/%d/%d",
			trial, rep.BaseEdgesChecked, rep.OverStretch, rep.DisconnectedPairs,
			wantChecked, wantOver, wantDisc)
	}
	// Distances from the bidirectional kernel may differ from the
	// unidirectional reference in the last ulp (different association
	// order), so float comparisons are relative.
	if !close(rep.WorstStretch, wantWorst) {
		t.Fatalf("trial %d: worst stretch %v, want %v", trial, rep.WorstStretch, wantWorst)
	}
	if want := wantOver + wantDisc; len(rep.Witnesses) != want {
		t.Fatalf("trial %d: %d witnesses, want %d", trial, len(rep.Witnesses), want)
	}
	for _, w := range rep.Witnesses {
		d, ok := srch.DijkstraTargetUni(sf, w.U, w.V, graph.Inf)
		if ok != w.Reachable || (ok && !close(d, w.Distance)) {
			t.Fatalf("trial %d: witness %+v, reference %v/%v", trial, w, d, ok)
		}
	}
	if rep.Truncated {
		t.Fatalf("trial %d: truncated without a time cap", trial)
	}
}

// bfsComponents groups included vertices into components, each sorted
// ascending, components ordered by smallest member.
func bfsComponents(g *graph.Graph, include func(int) bool) [][]int {
	seen := make(map[int]bool)
	var comps [][]int
	for root := 0; root < g.N(); root++ {
		if seen[root] || !include(root) {
			continue
		}
		comp := []int{root}
		seen[root] = true
		for i := 0; i < len(comp); i++ {
			for _, h := range g.Neighbors(comp[i]) {
				if !seen[h.To] && include(h.To) {
					seen[h.To] = true
					comp = append(comp, h.To)
				}
			}
		}
		// BFS discovery order is not sorted; normalize.
		for i := 1; i < len(comp); i++ {
			for j := i; j > 0 && comp[j] < comp[j-1]; j-- {
				comp[j], comp[j-1] = comp[j-1], comp[j]
			}
		}
		comps = append(comps, comp)
	}
	return comps
}

func membership(comps [][]int, n int) []int {
	m := make([]int, n)
	for i := range m {
		m[i] = -1
	}
	for ci, comp := range comps {
		for _, x := range comp {
			m[x] = ci
		}
	}
	return m
}

func largest(comps [][]int) int {
	best := 0
	for _, c := range comps {
		if len(c) > best {
			best = len(c)
		}
	}
	return best
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+b)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
