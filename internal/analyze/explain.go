package analyze

import (
	"fmt"

	"topoctl/internal/graph"
)

// HopDetail is one hop of an explained route with its running total.
type HopDetail struct {
	From       int     `json:"from"`
	To         int     `json:"to"`
	Weight     float64 `json:"weight"`
	Cumulative float64 `json:"cumulative"`
}

// RouteExplanation breaks a spanner route down hop by hop and compares it
// against the base-graph optimum and, when a hub-label oracle is attached,
// the oracle's answer for the same pair.
type RouteExplanation struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
	// Reachable reports whether the spanner connects the pair; when false
	// the cost fields are 0.
	Reachable   bool        `json:"reachable"`
	SpannerCost float64     `json:"spanner_cost"`
	Path        []HopDetail `json:"path,omitempty"`
	// BaseCost is the base-graph shortest-path cost (the optimum the
	// spanner is allowed to stretch by at most t).
	BaseReachable bool    `json:"base_reachable"`
	BaseCost      float64 `json:"base_cost"`
	// Stretch is SpannerCost/BaseCost when both are reachable; Bound is
	// the spanner's t, WithinBound whether the guarantee held here.
	Stretch     float64 `json:"stretch"`
	Bound       float64 `json:"bound"`
	WithinBound bool    `json:"within_bound"`
	// Oracle cross-check: when a distance oracle is attached and answered
	// (OracleChecked), OracleAgrees reports whether its distance matches
	// the search answer to within a relative tolerance.
	OracleChecked  bool    `json:"oracle_checked"`
	OracleDistance float64 `json:"oracle_distance,omitempty"`
	OracleAgrees   bool    `json:"oracle_agrees,omitempty"`
}

// oracleTol is the relative tolerance for oracle-vs-search agreement;
// both compute the same float sums in different orders.
const oracleTol = 1e-9

// Explain routes src→dst on the spanner and annotates the result: per-hop
// costs, the base-graph optimum for comparison, whether the stretch bound
// held for this pair, and whether the label oracle (if any) agrees with
// the search.
func Explain(v View, src, dst int, opts Options) (*RouteExplanation, error) {
	opts.normalize(v.n())
	if !v.alive(src) {
		return nil, fmt.Errorf("%w: vertex %d", ErrUnknownVertex, src)
	}
	if !v.alive(dst) {
		return nil, fmt.Errorf("%w: vertex %d", ErrUnknownVertex, dst)
	}
	exp := &RouteExplanation{Src: src, Dst: dst, Bound: v.T}

	srch := opts.Searchers.Acquire()
	defer opts.Searchers.Release(srch)

	path, cost, ok := srch.PathTo(v.Spanner, src, dst, graph.Inf)
	if ok {
		exp.Reachable, exp.SpannerCost = true, cost
		run := 0.0
		for i := 0; i+1 < len(path); i++ {
			w, _ := v.Spanner.EdgeWeight(path[i], path[i+1])
			run += w
			exp.Path = append(exp.Path, HopDetail{
				From: path[i], To: path[i+1], Weight: w, Cumulative: run,
			})
		}
	}
	if d, ok := srch.DijkstraTarget(v.Base, src, dst, graph.Inf); ok {
		exp.BaseReachable, exp.BaseCost = true, d
	}
	if exp.Reachable && exp.BaseReachable {
		if exp.BaseCost > 0 {
			exp.Stretch = exp.SpannerCost / exp.BaseCost
		} else {
			exp.Stretch = 1
		}
		exp.WithinBound = exp.Stretch <= v.T*(1+oracleTol)
	}
	if src == dst {
		exp.Stretch, exp.WithinBound = 1, true
	}

	if v.Oracle != nil {
		if d, ok := v.Oracle.Query(src, dst); ok {
			exp.OracleChecked, exp.OracleDistance = true, d
			want := exp.SpannerCost
			if !exp.Reachable {
				exp.OracleAgrees = false
			} else if want == 0 {
				exp.OracleAgrees = d == 0
			} else {
				diff := d - want
				if diff < 0 {
					diff = -diff
				}
				exp.OracleAgrees = diff <= oracleTol*want
			}
		}
	}
	return exp, nil
}
