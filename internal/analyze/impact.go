package analyze

import (
	"fmt"
	"sort"
	"time"

	"topoctl/internal/fault"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// ImpactRequest describes a hypothetical failure: an explicit vertex set,
// a coordinate box (every live vertex inside dies), or both.
type ImpactRequest struct {
	// Vertices lists vertex ids assumed down. Entries naming already-dead
	// vertices are ignored; out-of-range ids are rejected.
	Vertices []int `json:"vertices,omitempty"`
	// BoxLo/BoxHi, when both set, select every live vertex whose position
	// lies inside the axis-aligned box (inclusive).
	BoxLo geom.Point `json:"box_lo,omitempty"`
	BoxHi geom.Point `json:"box_hi,omitempty"`
	// MaxWitnesses caps the over-stretch witness list (default 16).
	MaxWitnesses int `json:"max_witnesses,omitempty"`
	// MaxUnreachable caps the newly-unreachable vertex list; 0 means no
	// cap. The count is exact either way.
	MaxUnreachable int `json:"max_unreachable,omitempty"`
}

// ImpactReport answers "what breaks if these vertices die".
type ImpactReport struct {
	// Faulted is the resolved, sorted fault set actually applied.
	Faulted      []int `json:"faulted"`
	FaultedCount int   `json:"faulted_count"`
	// Survivors counts live vertices outside the fault set.
	Survivors int `json:"survivors"`
	// Component structure of the spanner over live vertices, before and
	// after the fault (faulted vertices excluded from the "after" side).
	ComponentsBefore int `json:"components_before"`
	ComponentsAfter  int `json:"components_after"`
	LargestBefore    int `json:"largest_before"`
	LargestAfter     int `json:"largest_after"`
	// Unreachable lists survivors cut off from the main surviving fragment
	// of their original component, sorted ascending (possibly capped;
	// UnreachableCount is exact).
	Unreachable      []int `json:"unreachable"`
	UnreachableCount int   `json:"unreachable_count"`
	// BaseEdgesChecked counts surviving base edges whose stretch was
	// re-verified against the faulted spanner.
	BaseEdgesChecked int `json:"base_edges_checked"`
	// OverStretch counts checked pairs still connected but with stretch
	// beyond t; DisconnectedPairs counts checked pairs with no surviving
	// spanner path at all.
	OverStretch       int     `json:"over_stretch"`
	DisconnectedPairs int     `json:"disconnected_pairs"`
	WorstStretch      float64 `json:"worst_stretch"`
	// Witnesses pins the worst offending pairs as evidence.
	Witnesses []StretchWitness `json:"witnesses,omitempty"`
	// Truncated is set when the time cap cut the stretch scan short.
	Truncated bool `json:"truncated"`
}

// Impact simulates the failure of a vertex set and reports the damage:
// component split, survivors newly cut off from the bulk of their original
// component, and surviving base-graph pairs whose spanner detour now
// exceeds the stretch bound t.
func Impact(v View, req ImpactRequest, opts Options) (*ImpactReport, error) {
	opts.normalize(v.n())
	faulted, err := resolveFaults(v, req)
	if err != nil {
		return nil, err
	}
	maxWitnesses := req.MaxWitnesses
	if maxWitnesses == 0 {
		maxWitnesses = 16
	}

	isFaulted := make([]bool, v.n())
	for _, x := range faulted {
		isFaulted[x] = true
	}
	rep := &ImpactReport{
		Faulted:      faulted,
		FaultedCount: len(faulted),
		Survivors:    v.liveCount() - len(faulted),
		WorstStretch: 1,
	}

	// Component split: label spanner components over live vertices before
	// the fault and over survivors after, then mark every survivor whose
	// post-fault fragment is not the main (largest) fragment of its
	// pre-fault component as newly unreachable.
	before := components(v.Spanner, v.alive)
	after := components(v.Spanner, func(x int) bool { return v.alive(x) && !isFaulted[x] })
	rep.ComponentsBefore, rep.LargestBefore = before.count, before.largest
	rep.ComponentsAfter, rep.LargestAfter = after.count, after.largest

	main := mainFragments(before, after)
	for x := 0; x < v.n(); x++ {
		if after.id[x] < 0 || isFaulted[x] {
			continue
		}
		if main[before.id[x]] != after.id[x] {
			rep.UnreachableCount++
			if req.MaxUnreachable <= 0 || len(rep.Unreachable) < req.MaxUnreachable {
				rep.Unreachable = append(rep.Unreachable, x)
			}
		}
	}

	// Stretch scan: materialize the faulted spanner once, then verify each
	// surviving base edge's detour in parallel. A mutable *graph.Graph is
	// safe for any number of concurrent readers.
	sf := fault.ApplyVertexFaults(v.Spanner, faulted)
	edges := graph.SortedEdges(v.Base)
	check := edges[:0]
	for _, e := range edges {
		if v.alive(e.U) && v.alive(e.V) && !isFaulted[e.U] && !isFaulted[e.V] {
			check = append(check, e)
		}
	}

	var deadline time.Time
	if opts.MaxDuration > 0 {
		deadline = time.Now().Add(opts.MaxDuration)
	}
	results := make([]StretchWitness, len(check))
	filled := make([]bool, len(check))
	rep.BaseEdgesChecked, rep.Truncated = scanParallel(opts, len(check), deadline, func(srch *graph.Searcher, i int) {
		e := check[i]
		w := StretchWitness{U: e.U, V: e.V, BaseWeight: e.W}
		if d, ok := srch.DijkstraTarget(sf, e.U, e.V, v.T*e.W); ok {
			w.Reachable, w.Distance, w.Stretch = true, d, d/e.W
		} else if d, ok := srch.DijkstraTarget(sf, e.U, e.V, graph.Inf); ok {
			// Connected but beyond the bound: an over-stretch offender.
			w.Reachable, w.Distance, w.Stretch = true, d, d/e.W
		}
		results[i] = w
		filled[i] = true
	})

	var offenders []StretchWitness
	for i, w := range results {
		if !filled[i] {
			continue // slot skipped by a truncated scan
		}
		switch {
		case !w.Reachable:
			rep.DisconnectedPairs++
			offenders = append(offenders, w)
		case w.Stretch > v.T:
			rep.OverStretch++
			offenders = append(offenders, w)
		}
		if w.Reachable && w.Stretch > rep.WorstStretch {
			rep.WorstStretch = w.Stretch
		}
	}
	sort.Slice(offenders, func(i, j int) bool { return witnessWorse(offenders[i], offenders[j]) })
	if len(offenders) > maxWitnesses {
		offenders = offenders[:maxWitnesses]
	}
	rep.Witnesses = offenders
	return rep, nil
}

// resolveFaults expands an ImpactRequest into the sorted, deduplicated set
// of live vertices assumed down.
func resolveFaults(v View, req ImpactRequest) ([]int, error) {
	hasLo, hasHi := len(req.BoxLo) > 0, len(req.BoxHi) > 0
	if hasLo != hasHi {
		return nil, fmt.Errorf("%w: region needs both box_lo and box_hi", ErrBadQuery)
	}
	if hasLo && len(req.BoxLo) != len(req.BoxHi) {
		return nil, fmt.Errorf("%w: box_lo and box_hi dimensions differ", ErrBadQuery)
	}
	set := make(map[int]bool)
	for _, x := range req.Vertices {
		if x < 0 || x >= v.n() {
			return nil, fmt.Errorf("%w: vertex %d", ErrUnknownVertex, x)
		}
		if v.alive(x) {
			set[x] = true
		}
	}
	if hasLo {
		for x, p := range v.Points {
			if v.alive(x) && inBox(p, req.BoxLo, req.BoxHi) {
				set[x] = true
			}
		}
	}
	faulted := make([]int, 0, len(set))
	for x := range set {
		faulted = append(faulted, x)
	}
	sort.Ints(faulted)
	return faulted, nil
}

func inBox(p geom.Point, lo, hi geom.Point) bool {
	if len(p) < len(lo) {
		return false
	}
	for d := range lo {
		if p[d] < lo[d] || p[d] > hi[d] {
			return false
		}
	}
	return true
}

// componentLabels is a component labelling of a masked topology: id[x] is
// the component of vertex x (-1 for masked-out vertices), sizes[c] its
// population. Components are numbered in order of their smallest vertex,
// so ids are deterministic across representations.
type componentLabels struct {
	id      []int
	sizes   []int
	count   int
	largest int
}

// components labels connected components of t restricted to vertices where
// include returns true, by BFS from ascending roots.
func components(t graph.Topology, include func(int) bool) componentLabels {
	n := t.N()
	lab := componentLabels{id: make([]int, n)}
	for i := range lab.id {
		lab.id[i] = -1
	}
	var queue []int
	for root := 0; root < n; root++ {
		if lab.id[root] >= 0 || !include(root) {
			continue
		}
		c := lab.count
		lab.count++
		size := 1
		lab.id[root] = c
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			x := queue[0]
			queue = queue[1:]
			for _, h := range t.Neighbors(x) {
				if lab.id[h.To] < 0 && include(h.To) {
					lab.id[h.To] = c
					size++
					queue = append(queue, h.To)
				}
			}
		}
		lab.sizes = append(lab.sizes, size)
		if size > lab.largest {
			lab.largest = size
		}
	}
	return lab
}

// mainFragments maps each pre-fault component to its main surviving
// fragment: the largest post-fault component inside it, ties broken toward
// the fragment containing the smallest vertex id (which is the
// lowest-numbered fragment, since both labellings number components by
// ascending root). Survivors outside the main fragment are "newly
// unreachable" — cut off from the bulk of their original component.
func mainFragments(before, after componentLabels) []int {
	main := make([]int, before.count)
	best := make([]int, before.count)
	for i := range main {
		main[i] = -1
	}
	for x := range after.id {
		a := after.id[x]
		if a < 0 || before.id[x] < 0 {
			continue
		}
		b := before.id[x]
		if main[b] == a {
			continue
		}
		// The first fragment seen for b is its lowest-numbered one; a later
		// fragment replaces it only when strictly larger.
		if sz := after.sizes[a]; main[b] < 0 || sz > best[b] {
			main[b], best[b] = a, sz
		}
	}
	return main
}
