package analyze

import (
	"fmt"
)

// AroundRequest asks for the k-hop neighborhood of a vertex.
type AroundRequest struct {
	// Center is the vertex to explore around.
	Center int `json:"center"`
	// Hops is the BFS radius in edges (callers default/cap this).
	Hops int `json:"hops"`
	// Graph selects the topology: "spanner" (default) or "base".
	Graph string `json:"graph,omitempty"`
	// MaxNodes truncates the ball in BFS order; 0 means no cap.
	MaxNodes int `json:"max_nodes,omitempty"`
}

// CytoElements is the neighborhood subgraph in the Cytoscape.js elements
// shape: {"elements":{"nodes":[...],"edges":[...]}} loads directly into a
// viewer.
type CytoElements struct {
	Nodes []CytoNode `json:"nodes"`
	Edges []CytoEdge `json:"edges"`
}

// CytoNode is one vertex with its embedding position.
type CytoNode struct {
	Data     CytoNodeData  `json:"data"`
	Position *CytoPosition `json:"position,omitempty"`
}

// CytoNodeData carries per-vertex attributes.
type CytoNodeData struct {
	// ID is "n<vertex>"; Cytoscape ids are strings.
	ID string `json:"id"`
	// Vertex is the numeric id, Hops its BFS distance from the center.
	Vertex int `json:"vertex"`
	Hops   int `json:"hops"`
	// Degree is the vertex degree in the selected topology.
	Degree int `json:"degree"`
	// Center marks the query vertex.
	Center bool `json:"center,omitempty"`
}

// CytoPosition is the first two embedding coordinates.
type CytoPosition struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// CytoEdge is one edge of the induced subgraph.
type CytoEdge struct {
	Data CytoEdgeData `json:"data"`
}

// CytoEdgeData carries per-edge attributes; Source/Target reference node
// ids.
type CytoEdgeData struct {
	ID     string  `json:"id"`
	Source string  `json:"source"`
	Target string  `json:"target"`
	Weight float64 `json:"weight"`
}

// AroundReport is the k-hop neighborhood plus summary counts.
type AroundReport struct {
	Center int `json:"center"`
	Hops   int `json:"hops"`
	// Graph echoes the resolved topology selector.
	Graph string `json:"graph"`
	// Nodes/Edges count the returned subgraph; Truncated is set when
	// MaxNodes cut the ball short.
	Nodes     int          `json:"nodes"`
	Edges     int          `json:"edges"`
	Truncated bool         `json:"truncated"`
	Elements  CytoElements `json:"elements"`
}

// Around extracts the induced subgraph within req.Hops edges of a center
// vertex, shaped for a Cytoscape-style topology viewer: every reached
// vertex becomes a positioned node, every edge of the selected topology
// with both endpoints in the ball becomes an edge.
func Around(v View, req AroundRequest, opts Options) (*AroundReport, error) {
	opts.normalize(v.n())
	if !v.alive(req.Center) {
		return nil, fmt.Errorf("%w: vertex %d", ErrUnknownVertex, req.Center)
	}
	if req.Hops < 0 {
		return nil, fmt.Errorf("%w: hops must be non-negative", ErrBadQuery)
	}
	topo := v.Spanner
	name := req.Graph
	switch name {
	case "", "spanner":
		name = "spanner"
	case "base":
		topo = v.Base
	default:
		return nil, fmt.Errorf("%w: unknown graph %q", ErrBadQuery, req.Graph)
	}

	srch := opts.Searchers.Acquire()
	ball := srch.HopBall(topo, req.Center, req.Hops)
	rep := &AroundReport{Center: req.Center, Hops: req.Hops, Graph: name}
	if req.MaxNodes > 0 && len(ball) > req.MaxNodes {
		// HopBall returns BFS order, so a prefix is the nearest subset.
		ball = ball[:req.MaxNodes]
		rep.Truncated = true
	}

	inBall := make(map[int]int, len(ball)) // vertex -> hops
	for _, vh := range ball {
		inBall[vh.V] = vh.Hops
	}
	nodes := make([]CytoNode, 0, len(ball))
	var edges []CytoEdge
	for _, vh := range ball {
		node := CytoNode{Data: CytoNodeData{
			ID:     fmt.Sprintf("n%d", vh.V),
			Vertex: vh.V,
			Hops:   vh.Hops,
			Degree: topo.Degree(vh.V),
			Center: vh.V == req.Center,
		}}
		if vh.V < len(v.Points) {
			if p := v.Points[vh.V]; len(p) >= 2 {
				node.Position = &CytoPosition{X: p[0], Y: p[1]}
			}
		}
		nodes = append(nodes, node)
		for _, h := range topo.Neighbors(vh.V) {
			if h.To > vh.V { // each undirected edge once
				if _, ok := inBall[h.To]; ok {
					edges = append(edges, CytoEdge{Data: CytoEdgeData{
						ID:     fmt.Sprintf("e%d-%d", vh.V, h.To),
						Source: fmt.Sprintf("n%d", vh.V),
						Target: fmt.Sprintf("n%d", h.To),
						Weight: h.W,
					}})
				}
			}
		}
	}
	// Release only after the last use of ball: HopBall's result aliases
	// the searcher's scratch.
	opts.Searchers.Release(srch)

	rep.Nodes, rep.Edges = len(nodes), len(edges)
	rep.Elements = CytoElements{Nodes: nodes, Edges: edges}
	return rep, nil
}
