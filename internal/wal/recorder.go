package wal

import (
	"crypto/sha256"
	"fmt"
	"io"
	"path"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// SyncPolicy selects when appended frames become durable.
type SyncPolicy int

const (
	// SyncAlways fsyncs after every appended frame: a mutation reply
	// implies durability. The safest and slowest policy.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs on a background ticker (Options.SyncEvery): a
	// crash loses at most the last interval's frames; recovery truncates
	// the torn tail and serves the last durable epoch.
	SyncInterval
	// SyncNever leaves syncing to the OS (and to checkpoints and Close).
	SyncNever
)

// ParseSyncPolicy maps the -fsync flag values to a policy.
func ParseSyncPolicy(name string) (SyncPolicy, error) {
	switch name {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "never":
		return SyncNever, nil
	default:
		return 0, fmt.Errorf("wal: unknown fsync policy %q (want always|interval|never)", name)
	}
}

// Options configures a Recorder.
type Options struct {
	// Dir is the WAL directory (created if missing).
	Dir string
	// FS is the filesystem; nil means the real one. Tests inject faultfs.
	FS FS
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval period (default 100ms).
	SyncEvery time.Duration
	// CheckpointEvery writes a full checkpoint and rotates the log every
	// this many frames (default 64).
	CheckpointEvery int
	// Retain is how many recent frames stay in memory for follower
	// streaming (default 4×CheckpointEvery). A follower further behind
	// than this re-bootstraps from the checkpoint.
	Retain int
	// Keep is how many checkpoint generations stay on disk (default 2,
	// so a partial or bit-rotted newest checkpoint falls back to the
	// previous one at the cost of a longer replay).
	Keep int
}

func (o *Options) normalize() error {
	if o.Dir == "" {
		return fmt.Errorf("wal: Options.Dir required")
	}
	if o.FS == nil {
		o.FS = OS
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 100 * time.Millisecond
	}
	if o.CheckpointEvery <= 0 {
		o.CheckpointEvery = 64
	}
	if o.Retain <= 0 {
		o.Retain = 4 * o.CheckpointEvery
	}
	if o.Keep <= 0 {
		o.Keep = 2
	}
	return nil
}

func ckptName(epoch uint64) string { return fmt.Sprintf("checkpoint-%016d.ckpt", epoch) }
func logName(epoch uint64) string  { return fmt.Sprintf("wal-%016d.log", epoch) }

// parseGen extracts the epoch from a checkpoint or log file name.
func parseGen(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	e, err := strconv.ParseUint(name[len(prefix):len(name)-len(suffix)], 10, 64)
	return e, err == nil
}

type ringEntry struct {
	epoch uint64
	rec   []byte // full record envelope, ready to write to a stream
}

// Recorder owns the on-disk log: it appends sealed frames, fsyncs per
// policy, writes periodic checkpoints that rotate the log, retains recent
// frames in memory for follower streaming, and recovers all of it after a
// crash. One writer (the service's writer goroutine, via the publish
// hook) calls Append; stream subscribers attach concurrently.
type Recorder struct {
	opts Options

	mu        sync.Mutex
	cur       File
	epoch     uint64
	chain     [sha256.Size]byte
	sinceCkpt int
	dirty     bool // unsynced appended bytes (interval/never policies)
	lastCkpt  []byte
	ring      []ringEntry
	subs      map[chan []byte]struct{}
	closed    bool

	syncStop chan struct{}
	syncDone chan struct{}
}

// Open recovers (or initializes) the WAL directory and returns the
// recorder plus the recovered state — nil state means the directory was
// empty and the caller must Bootstrap with the initial topology before
// appending. After a successful recovery Open immediately writes a fresh
// checkpoint at the recovered epoch, converging the directory to a
// canonical layout whatever the crash left behind.
func Open(opts Options) (*Recorder, *State, error) {
	if err := opts.normalize(); err != nil {
		return nil, nil, err
	}
	fs := opts.FS
	if err := fs.MkdirAll(opts.Dir); err != nil {
		return nil, nil, err
	}
	st, err := recoverDir(fs, opts.Dir)
	if err != nil {
		return nil, nil, err
	}
	r := &Recorder{
		opts:     opts,
		subs:     map[chan []byte]struct{}{},
		syncStop: make(chan struct{}),
		syncDone: make(chan struct{}),
	}
	if st != nil {
		r.epoch, r.chain = st.Epoch, st.Chain
		if err := r.checkpointLocked(st); err != nil {
			return nil, nil, err
		}
	}
	if opts.Sync == SyncInterval {
		go r.syncLoop()
	} else {
		close(r.syncDone)
	}
	return r, st, nil
}

// Bootstrap initializes a fresh log from the initial topology state: the
// state's chain becomes the genesis hash and the first checkpoint is
// written. Only valid on an empty directory (Open returned a nil state).
func (r *Recorder) Bootstrap(st *State) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.lastCkpt != nil {
		return fmt.Errorf("wal: bootstrap of a non-empty log")
	}
	st.Chain = st.Hash()
	r.epoch, r.chain = st.Epoch, st.Chain
	return r.checkpointLocked(st)
}

// Epoch returns the last appended (or recovered) epoch and chain value —
// what the next frame must be sealed against.
func (r *Recorder) Epoch() (uint64, [sha256.Size]byte) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch, r.chain
}

// Append writes one sealed frame. st must be the post-frame state; it is
// only encoded when a periodic checkpoint is due. With SyncAlways the
// frame is durable when Append returns.
func (r *Recorder) Append(f *Frame, st *State) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("wal: append on closed recorder")
	}
	if r.cur == nil {
		return fmt.Errorf("wal: append before bootstrap")
	}
	if f.Epoch != r.epoch+1 {
		return fmt.Errorf("%w: appending epoch %d after %d", ErrEpochGap, f.Epoch, r.epoch)
	}
	rec := encodeRecord(kindFrame, f.Encode())
	if _, err := r.cur.Write(rec); err != nil {
		return err
	}
	if r.opts.Sync == SyncAlways {
		if err := r.cur.Sync(); err != nil {
			return err
		}
	} else {
		r.dirty = true
	}
	r.epoch, r.chain = f.Epoch, f.Chain
	r.ring = append(r.ring, ringEntry{epoch: f.Epoch, rec: rec})
	if len(r.ring) > r.opts.Retain {
		r.ring = append(r.ring[:0:0], r.ring[len(r.ring)-r.opts.Retain:]...)
	}
	for sub := range r.subs {
		select {
		case sub <- rec:
		default:
			// The subscriber is not draining; cut it loose. It reconnects
			// and catches up from the ring (or re-bootstraps).
			delete(r.subs, sub)
			close(sub)
		}
	}
	r.sinceCkpt++
	if r.sinceCkpt >= r.opts.CheckpointEvery {
		return r.checkpointLocked(st)
	}
	return nil
}

// Checkpoint forces a full-snapshot checkpoint of st and rotates the log.
func (r *Recorder) Checkpoint(st *State) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return fmt.Errorf("wal: checkpoint on closed recorder")
	}
	return r.checkpointLocked(st)
}

// checkpointLocked writes checkpoint-<epoch>, rotates to a fresh log, and
// prunes generations beyond Keep. The checkpoint file is written to a
// temp name, synced, then renamed — a crash mid-write leaves the previous
// checkpoint as the newest valid one.
func (r *Recorder) checkpointLocked(st *State) error {
	fs := r.opts.FS
	if st.Epoch != r.epoch {
		return fmt.Errorf("wal: checkpoint state epoch %d != log epoch %d", st.Epoch, r.epoch)
	}
	// Sync the outgoing log first: the fallback path (previous checkpoint
	// + this log) must be able to replay everything the new checkpoint
	// captures.
	if r.cur != nil {
		if r.dirty {
			if err := r.cur.Sync(); err != nil {
				return err
			}
			r.dirty = false
		}
		r.cur.Close()
		r.cur = nil
	}
	rec := encodeRecord(kindCheckpoint, st.Encode())
	tmp := path.Join(r.opts.Dir, ckptName(st.Epoch)+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(rec); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path.Join(r.opts.Dir, ckptName(st.Epoch))); err != nil {
		return err
	}
	cur, err := fs.Create(path.Join(r.opts.Dir, logName(st.Epoch)))
	if err != nil {
		return err
	}
	r.cur = cur
	r.sinceCkpt = 0
	r.lastCkpt = rec
	r.pruneLocked(st.Epoch)
	return nil
}

// pruneLocked deletes checkpoints beyond the Keep newest and any log not
// reachable from the oldest kept checkpoint.
func (r *Recorder) pruneLocked(newest uint64) {
	fs := r.opts.FS
	names, err := fs.ReadDir(r.opts.Dir)
	if err != nil {
		return // pruning is best-effort
	}
	var ckpts []uint64
	for _, name := range names {
		if e, ok := parseGen(name, "checkpoint-", ".ckpt"); ok && e <= newest {
			ckpts = append(ckpts, e)
		}
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	if len(ckpts) <= r.opts.Keep {
		ckpts = ckpts[:0]
	} else {
		ckpts = ckpts[r.opts.Keep:] // the victims
	}
	victims := map[string]struct{}{}
	for _, e := range ckpts {
		victims[ckptName(e)] = struct{}{}
	}
	// The oldest kept checkpoint bounds which logs are still useful.
	oldestKept := newest
	for _, name := range names {
		if e, ok := parseGen(name, "checkpoint-", ".ckpt"); ok {
			if _, gone := victims[name]; !gone && e < oldestKept {
				oldestKept = e
			}
		}
	}
	for _, name := range names {
		if _, gone := victims[name]; gone {
			fs.Remove(path.Join(r.opts.Dir, name))
			continue
		}
		if e, ok := parseGen(name, "wal-", ".log"); ok && e < oldestKept {
			fs.Remove(path.Join(r.opts.Dir, name))
		}
		if strings.HasSuffix(name, ".tmp") {
			fs.Remove(path.Join(r.opts.Dir, name))
		}
	}
}

// Close writes a final checkpoint of st (when non-nil and the log is
// bootstrapped), stops the sync loop, and closes the log file.
func (r *Recorder) Close(st *State) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	var err error
	if st != nil && r.cur != nil {
		err = r.checkpointLocked(st)
	}
	if r.cur != nil {
		if r.dirty {
			if serr := r.cur.Sync(); err == nil {
				err = serr
			}
		}
		if cerr := r.cur.Close(); err == nil {
			err = cerr
		}
		r.cur = nil
	}
	for sub := range r.subs {
		delete(r.subs, sub)
		close(sub)
	}
	r.mu.Unlock()
	if r.opts.Sync == SyncInterval {
		close(r.syncStop)
		<-r.syncDone
	}
	return err
}

func (r *Recorder) syncLoop() {
	defer close(r.syncDone)
	tick := time.NewTicker(r.opts.SyncEvery)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			r.mu.Lock()
			if r.dirty && r.cur != nil {
				r.cur.Sync()
				r.dirty = false
			}
			r.mu.Unlock()
		case <-r.syncStop:
			return
		}
	}
}

// recoverDir loads the newest valid checkpoint and replays the log tail,
// truncating the first torn or corrupt trailing record. A nil state with
// nil error means a fresh directory.
func recoverDir(fs FS, dir string) (*State, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var ckpts []uint64
	var logs []uint64
	for _, name := range names {
		if e, ok := parseGen(name, "checkpoint-", ".ckpt"); ok {
			ckpts = append(ckpts, e)
		}
		if e, ok := parseGen(name, "wal-", ".log"); ok {
			logs = append(logs, e)
		}
	}
	if len(ckpts) == 0 {
		return nil, nil // fresh directory (stray logs without any checkpoint are unusable)
	}
	sort.Slice(ckpts, func(i, j int) bool { return ckpts[i] > ckpts[j] })
	var st *State
	for _, e := range ckpts {
		st = loadCheckpoint(fs, path.Join(dir, ckptName(e)), e)
		if st != nil {
			break
		}
	}
	if st == nil {
		return nil, fmt.Errorf("wal: no valid checkpoint among %d candidates in %s", len(ckpts), dir)
	}
	sort.Slice(logs, func(i, j int) bool { return logs[i] < logs[j] })
	for _, e := range logs {
		if e < st.Epoch {
			continue
		}
		done, err := replayLog(fs, path.Join(dir, logName(e)), st)
		if err != nil {
			return nil, err
		}
		if done {
			break // tail truncated; anything later cannot chain
		}
	}
	return st, nil
}

// loadCheckpoint reads and validates one checkpoint file; nil on any
// damage (the caller falls back to an older generation).
func loadCheckpoint(fs FS, name string, epoch uint64) *State {
	f, err := fs.Open(name)
	if err != nil {
		return nil
	}
	defer f.Close()
	rr := newRecordReader(f)
	kind, payload, err := rr.next()
	if err != nil || kind != kindCheckpoint {
		return nil
	}
	st, err := DecodeState(payload)
	if err != nil || st.Epoch != epoch {
		return nil
	}
	return st
}

// replayLog applies one log file's frames to st. It returns done=true
// when it hit (and truncated) a torn or corrupt tail — replay must stop
// there, since later frames cannot chain onto a truncated prefix.
func replayLog(fs FS, name string, st *State) (done bool, err error) {
	f, err := fs.Open(name)
	if err != nil {
		return false, err
	}
	rr := newRecordReader(f)
	for {
		kind, payload, rerr := rr.next()
		if rerr == io.EOF {
			f.Close()
			return false, nil
		}
		if rerr != nil {
			break // torn or corrupt: truncate at the last good boundary
		}
		if kind != kindFrame {
			break
		}
		frame, derr := DecodeFrame(payload)
		if derr != nil {
			break
		}
		if aerr := st.Apply(frame); aerr != nil {
			// An epoch gap or chain mismatch means the record is not a
			// valid successor — same treatment as a corrupt tail.
			break
		}
	}
	good := rr.Good
	f.Close()
	if size, serr := fs.Size(name); serr == nil && size > good {
		if terr := fs.Truncate(name, good); terr != nil {
			return true, terr
		}
	}
	return true, nil
}
