package wal

import (
	"crypto/sha256"
	"fmt"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// State is the replicated topology state machine: slot-indexed positions
// and liveness plus the frozen base graph and spanner, stamped with the
// epoch and hash-chain value that produced them. Leader recovery and
// followers run the exact same State.Apply over the exact same frames, so
// both converge to element-identical snapshots — that shared code path is
// what the differential tests pin.
type State struct {
	Epoch uint64
	Chain [sha256.Size]byte
	// T, Radius, Dim are the engine options the topology was built under;
	// a follower needs them to serve stats and to hand a recovered state
	// back to an engine.
	T      float64
	Radius float64
	Dim    int

	Points  []geom.Point
	Alive   []bool
	Live    int
	Base    *graph.Frozen
	Spanner *graph.Frozen
}

// Apply advances the state by one frame: verifies epoch succession and
// the hash chain, then replaces the changed slots and adjacency rows.
// On error the state is unchanged.
func (s *State) Apply(f *Frame) error {
	if f.Epoch != s.Epoch+1 {
		return fmt.Errorf("%w: frame epoch %d onto state epoch %d", ErrEpochGap, f.Epoch, s.Epoch)
	}
	if want := chainNext(s.Chain, f.appendBody(nil)); want != f.Chain {
		return fmt.Errorf("%w: at epoch %d", ErrChainMismatch, f.Epoch)
	}
	slots := int(f.Slots)
	if slots < len(s.Alive) {
		return fmt.Errorf("%w: slot space shrank %d -> %d", ErrCorrupt, len(s.Alive), slots)
	}
	points := append([]geom.Point(nil), s.Points...)
	alive := append([]bool(nil), s.Alive...)
	for len(points) < slots {
		points = append(points, nil)
		alive = append(alive, false)
	}
	baseUps := make([]graph.RowUpdate, 0, len(f.Deltas))
	spUps := make([]graph.RowUpdate, 0, len(f.Deltas))
	for _, vd := range f.Deltas {
		v := int(vd.V)
		if v < 0 || v >= slots {
			return fmt.Errorf("%w: delta vertex %d outside %d slots", ErrCorrupt, v, slots)
		}
		if vd.Alive {
			points[v] = vd.Point
			alive[v] = true
		} else {
			points[v] = nil
			alive[v] = false
		}
		baseUps = append(baseUps, graph.RowUpdate{V: v, Row: vd.Base})
		spUps = append(spUps, graph.RowUpdate{V: v, Row: vd.Spanner})
	}
	s.Base = graph.ApplyRows(s.Base, slots, baseUps)
	s.Spanner = graph.ApplyRows(s.Spanner, slots, spUps)
	s.Points = points
	s.Alive = alive
	s.Live = int(f.Live)
	s.Epoch = f.Epoch
	s.Chain = f.Chain
	return nil
}

// appendBody encodes everything except the chain value, in canonical
// form: options, slot metadata, then the base and spanner rows in vertex
// order (each row in its stored halfedge order). Two states with the same
// body bytes serve byte-identical topologies — this encoding is both the
// checkpoint format and the byte-identity oracle the differential tests
// compare leaders and followers with.
func (s *State) appendBody(b []byte) []byte {
	b = appendU64(b, s.Epoch)
	b = appendF64(b, s.T)
	b = appendF64(b, s.Radius)
	b = appendU16(b, uint16(s.Dim))
	b = appendU32(b, uint32(len(s.Alive)))
	for v, a := range s.Alive {
		live := uint8(0)
		if a {
			live = 1
		}
		b = appendU8(b, live)
		if a {
			b = appendPoint(b, s.Points[v])
		}
	}
	b = appendFrozen(b, s.Base, len(s.Alive))
	b = appendFrozen(b, s.Spanner, len(s.Alive))
	return b
}

func appendFrozen(b []byte, f *graph.Frozen, slots int) []byte {
	for v := 0; v < slots; v++ {
		var row []graph.Halfedge
		if f != nil && v < f.N() {
			row = f.Neighbors(v)
		}
		b = appendRow(b, row)
	}
	return b
}

// Encode serializes the state for a checkpoint: chain value, then body.
func (s *State) Encode() []byte {
	b := make([]byte, 0, 64)
	b = append(b, s.Chain[:]...)
	return s.appendBody(b)
}

// Hash returns the digest of the state body — the genesis value of the
// hash chain for a freshly bootstrapped log.
func (s *State) Hash() [sha256.Size]byte {
	return sha256.Sum256(s.appendBody(nil))
}

// DecodeState parses a checkpoint payload.
func DecodeState(b []byte) (*State, error) {
	d := &decoder{b: b}
	s := &State{}
	copy(s.Chain[:], d.take(sha256.Size))
	s.Epoch = d.u64()
	s.T = d.f64()
	s.Radius = d.f64()
	s.Dim = int(d.u16())
	slots := d.count(1)
	s.Points = make([]geom.Point, slots)
	s.Alive = make([]bool, slots)
	for v := 0; v < slots && d.err == nil; v++ {
		if d.u8() == 1 {
			s.Alive[v] = true
			s.Points[v] = d.point()
			s.Live++
		}
	}
	var err error
	if s.Base, err = decodeFrozen(d, slots); err != nil {
		return nil, err
	}
	if s.Spanner, err = decodeFrozen(d, slots); err != nil {
		return nil, err
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after checkpoint", ErrCorrupt, len(b)-d.off)
	}
	return s, nil
}

func decodeFrozen(d *decoder, slots int) (*graph.Frozen, error) {
	rows := make([][]graph.Halfedge, slots)
	for v := 0; v < slots && d.err == nil; v++ {
		rows[v] = d.row()
	}
	if d.err != nil {
		return nil, d.err
	}
	return graph.FrozenFromRows(rows), nil
}

// Clone returns an independent copy sharing only the immutable frozen
// graphs (per-slot points are treated as immutable everywhere).
func (s *State) Clone() *State {
	c := *s
	c.Points = append([]geom.Point(nil), s.Points...)
	c.Alive = append([]bool(nil), s.Alive...)
	return &c
}
