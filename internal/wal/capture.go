package wal

import (
	"crypto/sha256"
	"sort"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// BuildFrame assembles and seals the delta frame for one published
// commit. touched lists the vertices whose adjacency rows the commit
// changed (dynamic.Engine.LastExportTouched); the slots named by the ops
// are merged in so that joins and leaves of isolated nodes — which touch
// no adjacency row — still replicate their liveness and position. The
// delta list is sorted and deduplicated, making the frame encoding
// canonical for the hash chain.
//
// alive, points, base, and spanner must be the post-commit published
// snapshot (immutable), so the rows the frame carries are exactly the
// rows the leader serves at this epoch.
func BuildFrame(
	epoch uint64, prevChain [sha256.Size]byte,
	ops []Op, touched []int,
	points []geom.Point, alive []bool, live int,
	base, spanner *graph.Frozen,
) *Frame {
	seen := make(map[int]struct{}, len(touched)+len(ops))
	for _, v := range touched {
		seen[v] = struct{}{}
	}
	for _, op := range ops {
		seen[int(op.ID)] = struct{}{}
	}
	vs := make([]int, 0, len(seen))
	for v := range seen {
		if v >= 0 && v < len(alive) {
			vs = append(vs, v)
		}
	}
	sort.Ints(vs)

	f := &Frame{
		Epoch: epoch,
		Slots: int32(len(alive)),
		Live:  int32(live),
		Ops:   ops,
	}
	for _, v := range vs {
		vd := VertexDelta{V: int32(v), Alive: alive[v]}
		if alive[v] {
			vd.Point = points[v]
		}
		if v < base.N() {
			vd.Base = base.Neighbors(v)
		}
		if v < spanner.N() {
			vd.Spanner = spanner.Neighbors(v)
		}
		f.Deltas = append(f.Deltas, vd)
	}
	f.Seal(prevChain)
	return f
}
