package wal_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/wal"
	"topoctl/internal/wal/faultfs"
)

// ckptname mirrors the recorder's on-disk naming; the format is part of
// the durable layout, so hardcoding it here doubles as a pin.
func ckptname(epoch uint64) string { return fmt.Sprintf("checkpoint-%016d.ckpt", epoch) }

// genesis builds a small ring topology state at epoch 0 with the chain
// set to its genesis hash.
func genesis(slots int) *wal.State {
	points := make([]geom.Point, slots)
	alive := make([]bool, slots)
	rows := make([][]graph.Halfedge, slots)
	for v := 0; v < slots; v++ {
		points[v] = geom.Point{float64(v), 0}
		alive[v] = true
		prev, next := (v+slots-1)%slots, (v+1)%slots
		rows[v] = []graph.Halfedge{{To: prev, W: 1}, {To: next, W: 1}}
	}
	st := &wal.State{
		Epoch: 0, T: 1.5, Radius: 2, Dim: 2,
		Points: points, Alive: alive, Live: slots,
		Base: graph.FrozenFromRows(rows), Spanner: graph.FrozenFromRows(rows),
	}
	st.Chain = st.Hash()
	return st
}

// nextFrame seals a frame that moves one vertex (rows unchanged).
func nextFrame(st *wal.State) *wal.Frame {
	seq := st.Epoch + 1
	v := int(seq) % len(st.Alive)
	pt := geom.Point{float64(v), float64(seq) * 0.25}
	f := &wal.Frame{
		Epoch: seq,
		Slots: int32(len(st.Alive)),
		Live:  int32(st.Live),
		Ops:   []wal.Op{{Kind: wal.OpMove, ID: int32(v), Point: pt}},
		Deltas: []wal.VertexDelta{{
			V: int32(v), Alive: true, Point: pt,
			Base:    st.Base.Neighbors(v),
			Spanner: st.Spanner.Neighbors(v),
		}},
	}
	f.Seal(st.Chain)
	return f
}

// advance applies n frames to st through the recorder.
func advance(t *testing.T, r *wal.Recorder, st *wal.State, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		f := nextFrame(st)
		if err := st.Apply(f); err != nil {
			t.Fatalf("apply epoch %d: %v", f.Epoch, err)
		}
		if err := r.Append(f, st); err != nil {
			t.Fatalf("append epoch %d: %v", f.Epoch, err)
		}
	}
}

// TestRecorderCycle drives bootstrap → appends → close → reopen on the
// fault filesystem and checks full recovery of epoch, chain, and body.
func TestRecorderCycle(t *testing.T) {
	fs := faultfs.New()
	opts := wal.Options{Dir: "wal", FS: fs, Sync: wal.SyncAlways, CheckpointEvery: 4, Keep: 2}

	r, st, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if st != nil {
		t.Fatal("fresh dir returned a state")
	}
	st = genesis(8)
	if err := r.Bootstrap(st); err != nil {
		t.Fatal(err)
	}
	advance(t, r, st, 11) // crosses two checkpoint boundaries (4, 8)
	wantBody := st.Encode()
	if err := r.Close(st); err != nil {
		t.Fatal(err)
	}

	r2, st2, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close(nil)
	if st2 == nil || st2.Epoch != 11 {
		t.Fatalf("recovered epoch = %+v, want 11", st2)
	}
	if !bytes.Equal(st2.Encode(), wantBody) {
		t.Fatal("recovered state differs from the pre-close state")
	}
	// The log keeps accepting frames after recovery.
	advance(t, r2, st2, 3)
	if st2.Epoch != 14 {
		t.Fatalf("epoch after post-recovery appends = %d, want 14", st2.Epoch)
	}
}

// TestRecoverAfterCrash kills the recorder (no Close) with SyncAlways:
// every acknowledged append must survive.
func TestRecoverAfterCrash(t *testing.T) {
	fs := faultfs.New()
	opts := wal.Options{Dir: "wal", FS: fs, Sync: wal.SyncAlways, CheckpointEvery: 5}
	r, _, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := genesis(6)
	if err := r.Bootstrap(st); err != nil {
		t.Fatal(err)
	}
	advance(t, r, st, 7)
	want := st.Encode()
	fs.Crash() // power cut: no Close, unsynced bytes vanish

	_, st2, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if st2 == nil || st2.Epoch != 7 {
		t.Fatalf("recovered epoch %v, want 7 (SyncAlways must lose nothing)", st2)
	}
	if !bytes.Equal(st2.Encode(), want) {
		t.Fatal("recovered state body differs")
	}
}

// TestTornTailTruncated crashes with unsynced appended frames
// (SyncNever): recovery must truncate the torn tail and land on the last
// durable epoch, and the directory must keep working afterwards.
func TestTornTailTruncated(t *testing.T) {
	fs := faultfs.New()
	opts := wal.Options{Dir: "wal", FS: fs, Sync: wal.SyncNever, CheckpointEvery: 100}
	r, _, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := genesis(6)
	if err := r.Bootstrap(st); err != nil {
		t.Fatal(err)
	}
	advance(t, r, st, 4)
	fs.SyncAll() // everything up to epoch 4 is durable
	durable := st.Encode()
	advance(t, r, st, 3) // epochs 5..7 never synced
	fs.Crash()

	_, st2, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if st2 == nil || st2.Epoch != 4 {
		t.Fatalf("recovered epoch %v, want 4 (last durable)", st2)
	}
	if !bytes.Equal(st2.Encode(), durable) {
		t.Fatal("recovered state differs from last durable state")
	}
}

// TestMidRecordTear wedges the filesystem partway through a record write,
// leaving a torn half-record on disk; recovery truncates it.
func TestMidRecordTear(t *testing.T) {
	for _, cutback := range []int64{1, 5, 13} {
		fs := faultfs.New()
		opts := wal.Options{Dir: "wal", FS: fs, Sync: wal.SyncAlways, CheckpointEvery: 100}
		r, _, err := wal.Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		st := genesis(6)
		if err := r.Bootstrap(st); err != nil {
			t.Fatal(err)
		}
		advance(t, r, st, 3)
		want := st.Encode()

		// Wedge mid-way through the next frame's record write.
		fs.SetWriteBudget(cutback)
		f := nextFrame(st)
		side := st.Clone()
		if err := side.Apply(f); err != nil {
			t.Fatal(err)
		}
		if err := r.Append(f, side); err == nil {
			t.Fatal("append through a wedged filesystem succeeded")
		}
		fs.Crash()

		_, st2, err := wal.Open(opts)
		if err != nil {
			t.Fatalf("cutback %d: %v", cutback, err)
		}
		if st2 == nil || st2.Epoch != 3 {
			t.Fatalf("cutback %d: recovered epoch %v, want 3", cutback, st2)
		}
		if !bytes.Equal(st2.Encode(), want) {
			t.Fatalf("cutback %d: recovered state differs", cutback)
		}
	}
}

// TestCheckpointFallback bit-rots the newest checkpoint; recovery must
// fall back to the previous generation and replay its log.
func TestCheckpointFallback(t *testing.T) {
	fs := faultfs.New()
	opts := wal.Options{Dir: "wal", FS: fs, Sync: wal.SyncAlways, CheckpointEvery: 4, Keep: 2}
	r, _, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := genesis(8)
	if err := r.Bootstrap(st); err != nil {
		t.Fatal(err)
	}
	advance(t, r, st, 9) // checkpoints at 4 and 8, log holds 9
	want := st.Encode()
	fs.Crash()

	// Rot the newest checkpoint (epoch 8). Recovery must fall back to the
	// epoch-4 checkpoint — and the full tail still replays: the epoch-4
	// log reaches epoch 8 and wal-8.log carries epoch 9.
	if err := fs.FlipBit("wal/"+ckptname(8), 40, 3); err != nil {
		t.Fatal(err)
	}
	_, st2, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if st2 == nil || st2.Epoch != 9 {
		t.Fatalf("recovered epoch %v, want 9 via fallback checkpoint", st2)
	}
	if !bytes.Equal(st2.Encode(), want) {
		t.Fatal("fallback recovery produced a different state")
	}
}

// TestPartialCheckpointIgnored models a crash mid-checkpoint: the tmp
// file exists but was never renamed. Recovery ignores it and cleans up.
func TestPartialCheckpointIgnored(t *testing.T) {
	fs := faultfs.New()
	opts := wal.Options{Dir: "wal", FS: fs, Sync: wal.SyncAlways, CheckpointEvery: 1000}
	r, _, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := genesis(5)
	if err := r.Bootstrap(st); err != nil {
		t.Fatal(err)
	}
	advance(t, r, st, 2)
	want := st.Encode()

	// A checkpoint attempt that wedges mid-write leaves only a tmp file.
	fs.SetWriteBudget(30)
	if err := r.Checkpoint(st); err == nil {
		t.Fatal("checkpoint through a wedged filesystem succeeded")
	}
	fs.Crash()

	_, st2, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	if st2 == nil || st2.Epoch != 2 {
		t.Fatalf("recovered epoch %v, want 2", st2)
	}
	if !bytes.Equal(st2.Encode(), want) {
		t.Fatal("recovered state differs")
	}
	for _, name := range fs.Files() {
		if strings.HasSuffix(name, ".tmp") {
			t.Fatalf("tmp checkpoint %s survived recovery", name)
		}
	}
}

// TestPrune checks that old generations are deleted but Keep checkpoint
// generations (and their logs) survive.
func TestPrune(t *testing.T) {
	fs := faultfs.New()
	opts := wal.Options{Dir: "wal", FS: fs, Sync: wal.SyncAlways, CheckpointEvery: 2, Keep: 2}
	r, _, err := wal.Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	st := genesis(4)
	if err := r.Bootstrap(st); err != nil {
		t.Fatal(err)
	}
	advance(t, r, st, 10) // checkpoints at 2,4,6,8,10
	var ckpts, logs int
	for _, name := range fs.Files() {
		if strings.HasSuffix(name, ".ckpt") {
			ckpts++
		}
		if strings.HasSuffix(name, ".log") {
			logs++
		}
	}
	if ckpts != 2 {
		t.Fatalf("%d checkpoints on disk, want Keep=2", ckpts)
	}
	if logs != 2 {
		t.Fatalf("%d logs on disk, want 2 (from the oldest kept checkpoint on)", logs)
	}
	if err := r.Close(st); err != nil {
		t.Fatal(err)
	}
}

// TestCrashPointMatrix sweeps the write budget across an entire
// append+checkpoint burst: wherever the power dies, recovery must come
// back to a valid prefix of the acknowledged history and keep accepting
// frames. This is the headline "no partial write is fatal" sweep.
func TestCrashPointMatrix(t *testing.T) {
	// First measure the total bytes a clean run writes.
	clean := faultfs.New()
	opts := func(fs *faultfs.FS) wal.Options {
		return wal.Options{Dir: "wal", FS: fs, Sync: wal.SyncAlways, CheckpointEvery: 3, Keep: 2}
	}
	r, _, err := wal.Open(opts(clean))
	if err != nil {
		t.Fatal(err)
	}
	st := genesis(6)
	if err := r.Bootstrap(st); err != nil {
		t.Fatal(err)
	}
	advance(t, r, st, 8)
	total := int64(0)
	for _, name := range clean.Files() {
		total += clean.SizeNow(name)
	}

	// Now re-run with the budget cut at every 37-byte step (finer sweeps
	// multiply runtime without covering new code paths: every record is
	// longer than 37 bytes, so each interval still lands inside one).
	for budget := int64(1); budget < total; budget += 37 {
		fs := faultfs.New()
		fs.SetWriteBudget(budget)
		r, _, err := wal.Open(opts(fs))
		if err != nil {
			continue // wedged during Open: nothing acknowledged, nothing owed
		}
		st := genesis(6)
		acked := uint64(0)
		ackBody := map[uint64][]byte{}
		if err := r.Bootstrap(st); err == nil {
			ackBody[0] = st.Encode()
			for i := 0; i < 8; i++ {
				f := nextFrame(st)
				if err := st.Apply(f); err != nil {
					t.Fatal(err)
				}
				if err := r.Append(f, st); err != nil {
					break
				}
				acked = st.Epoch
				ackBody[acked] = st.Encode()
			}
		}
		fs.Crash()

		r2, st2, err := wal.Open(opts(fs))
		if err != nil {
			t.Fatalf("budget %d: recovery failed: %v", budget, err)
		}
		if len(ackBody) > 0 {
			if st2 == nil {
				t.Fatalf("budget %d: acknowledged epoch %d but recovered nothing", budget, acked)
			}
			if st2.Epoch < acked {
				t.Fatalf("budget %d: recovered epoch %d < acknowledged %d (SyncAlways)", budget, st2.Epoch, acked)
			}
			if want, ok := ackBody[st2.Epoch]; ok && !bytes.Equal(st2.Encode(), want) {
				t.Fatalf("budget %d: recovered epoch %d body differs from acknowledged", budget, st2.Epoch)
			}
		}
		if st2 != nil {
			// The recovered directory must accept new frames.
			advance(t, r2, st2, 1)
			r2.Close(st2)
		} else {
			r2.Close(nil)
		}
	}
}
