package wal

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"hash/crc32"
	"io"
)

// Record envelope, the unit of both the on-disk log and the follower
// stream:
//
//	u32  magic "TWF1"
//	u8   kind (frame | checkpoint)
//	u32  compressed payload length
//	u32  CRC32 (IEEE) of the compressed payload
//	...  gzip(payload)
//
// The length lets a reader skip to the next record; the CRC catches bit
// rot and torn interiors; a short read against the length is the torn-
// tail signal recovery truncates on. Payloads are gzip-compressed the
// same way netio ships instances — adjacency rows share long runs of
// float bit patterns and compress well.
const (
	recordMagic   = 0x31465754 // "TWF1" little-endian
	recordHdrSize = 13
	// maxPayload bounds a single record so a corrupt length field cannot
	// become a giant allocation. Checkpoints of million-node topologies
	// fit comfortably.
	maxPayload = 1 << 30
)

// Record kinds.
const (
	kindFrame      = 1
	kindCheckpoint = 2
)

// encodeRecord wraps payload in the record envelope.
func encodeRecord(kind uint8, payload []byte) []byte {
	var z bytes.Buffer
	zw := gzip.NewWriter(&z)
	zw.Write(payload)
	zw.Close()
	comp := z.Bytes()

	b := make([]byte, 0, recordHdrSize+len(comp))
	b = appendU32(b, recordMagic)
	b = appendU8(b, kind)
	b = appendU32(b, uint32(len(comp)))
	b = appendU32(b, crc32.ChecksumIEEE(comp))
	return append(b, comp...)
}

// recordReader iterates the records of one log or checkpoint stream,
// tracking the byte offset of the last fully valid record so recovery can
// truncate a torn tail exactly at the record boundary.
type recordReader struct {
	r *bufio1
	// Good is the offset just past the last record returned without error.
	Good int64
}

// bufio1 is the minimal buffered reader recordReader needs: io.ReadFull
// semantics over an io.Reader with a byte count.
type bufio1 struct {
	r io.Reader
	n int64
}

func (b *bufio1) full(p []byte) error {
	n, err := io.ReadFull(b.r, p)
	b.n += int64(n)
	return err
}

func newRecordReader(r io.Reader) *recordReader {
	return &recordReader{r: &bufio1{r: r}}
}

// next returns the kind and decompressed payload of the next record.
// io.EOF means a clean end exactly at a record boundary; ErrTorn means the
// stream ended mid-record; ErrCorrupt means the bytes are wrong.
func (rr *recordReader) next() (kind uint8, payload []byte, err error) {
	hdr := make([]byte, recordHdrSize)
	if err := rr.r.full(hdr); err != nil {
		if err == io.EOF {
			return 0, nil, io.EOF
		}
		return 0, nil, fmt.Errorf("%w: header cut short: %v", ErrTorn, err)
	}
	d := &decoder{b: hdr}
	magic := d.u32()
	kind = d.u8()
	clen := int(d.u32())
	crc := d.u32()
	if magic != recordMagic {
		return 0, nil, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, magic)
	}
	if kind != kindFrame && kind != kindCheckpoint {
		return 0, nil, fmt.Errorf("%w: unknown record kind %d", ErrCorrupt, kind)
	}
	if clen < 0 || clen > maxPayload {
		return 0, nil, fmt.Errorf("%w: implausible record length %d", ErrCorrupt, clen)
	}
	comp := make([]byte, clen)
	if err := rr.r.full(comp); err != nil {
		return 0, nil, fmt.Errorf("%w: body cut short: %v", ErrTorn, err)
	}
	if got := crc32.ChecksumIEEE(comp); got != crc {
		return 0, nil, fmt.Errorf("%w: crc mismatch %#x != %#x", ErrCorrupt, got, crc)
	}
	zr, err := gzip.NewReader(bytes.NewReader(comp))
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	payload, err = io.ReadAll(io.LimitReader(zr, maxPayload))
	if cerr := zr.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return 0, nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	rr.Good = rr.r.n
	return kind, payload, nil
}

// RecordReader is the exported face of the record scanner, for consumers
// outside the package (the follower client reads the same envelope
// format off the replication stream that the recorder writes to disk).
type RecordReader struct {
	rr *recordReader
}

// NewRecordReader scans records from r.
func NewRecordReader(r io.Reader) *RecordReader {
	return &RecordReader{rr: newRecordReader(r)}
}

// NextFrame returns the next frame record. io.EOF means a clean end;
// ErrTorn a mid-record cut; ErrCorrupt damaged bytes or an unexpected
// record kind.
func (r *RecordReader) NextFrame() (*Frame, error) {
	kind, payload, err := r.rr.next()
	if err != nil {
		return nil, err
	}
	if kind != kindFrame {
		return nil, fmt.Errorf("%w: record kind %d, want frame", ErrCorrupt, kind)
	}
	return DecodeFrame(payload)
}

// NextCheckpoint returns the next checkpoint record's state.
func (r *RecordReader) NextCheckpoint() (*State, error) {
	kind, payload, err := r.rr.next()
	if err != nil {
		return nil, err
	}
	if kind != kindCheckpoint {
		return nil, fmt.Errorf("%w: record kind %d, want checkpoint", ErrCorrupt, kind)
	}
	return DecodeState(payload)
}
