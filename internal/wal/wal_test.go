package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// testGenesis builds a small ring topology state at epoch 0 with the
// chain set to its genesis hash.
func testGenesis(slots int) *State {
	points := make([]geom.Point, slots)
	alive := make([]bool, slots)
	rows := make([][]graph.Halfedge, slots)
	for v := 0; v < slots; v++ {
		points[v] = geom.Point{float64(v), 0}
		alive[v] = true
		prev, next := (v+slots-1)%slots, (v+1)%slots
		rows[v] = []graph.Halfedge{{To: prev, W: 1}, {To: next, W: 1}}
	}
	st := &State{
		Epoch: 0, T: 1.5, Radius: 2, Dim: 2,
		Points: points, Alive: alive, Live: slots,
		Base: graph.FrozenFromRows(rows), Spanner: graph.FrozenFromRows(rows),
	}
	st.Chain = st.Hash()
	return st
}

// testFrame seals a frame that moves one vertex (rows unchanged) — enough
// to advance the epoch and change the state body deterministically.
func testFrame(st *State, seq uint64) *Frame {
	v := int(seq) % len(st.Alive)
	pt := geom.Point{float64(v), float64(seq) * 0.25}
	f := &Frame{
		Epoch: st.Epoch + 1,
		Slots: int32(len(st.Alive)),
		Live:  int32(st.Live),
		Ops:   []Op{{Kind: OpMove, ID: int32(v), Point: pt}},
		Deltas: []VertexDelta{{
			V: int32(v), Alive: true, Point: pt,
			Base:    st.Base.Neighbors(v),
			Spanner: st.Spanner.Neighbors(v),
		}},
	}
	f.Seal(st.Chain)
	return f
}

func TestRecordRoundtrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("alpha"), bytes.Repeat([]byte{0xAB}, 4096), {}}
	for _, p := range payloads {
		buf.Write(encodeRecord(kindFrame, p))
	}
	rr := newRecordReader(bytes.NewReader(buf.Bytes()))
	for i, want := range payloads {
		kind, got, err := rr.next()
		if err != nil || kind != kindFrame {
			t.Fatalf("record %d: kind=%d err=%v", i, kind, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("record %d: payload mismatch", i)
		}
	}
	if _, _, err := rr.next(); err != io.EOF {
		t.Fatalf("clean end: err=%v, want io.EOF", err)
	}
	if rr.Good != int64(buf.Len()) {
		t.Fatalf("Good=%d, want %d", rr.Good, buf.Len())
	}
}

func TestRecordTornTail(t *testing.T) {
	rec := encodeRecord(kindFrame, []byte("first"))
	full := append(append([]byte{}, rec...), encodeRecord(kindFrame, []byte("second"))...)
	// Every strict prefix that cuts into the second record must yield the
	// first record, then ErrTorn/ErrCorrupt with Good at the boundary.
	for cut := len(rec) + 1; cut < len(full); cut++ {
		rr := newRecordReader(bytes.NewReader(full[:cut]))
		if _, _, err := rr.next(); err != nil {
			t.Fatalf("cut %d: first record unreadable: %v", cut, err)
		}
		_, _, err := rr.next()
		if !errors.Is(err, ErrTorn) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut %d: err=%v, want torn or corrupt", cut, err)
		}
		if rr.Good != int64(len(rec)) {
			t.Fatalf("cut %d: Good=%d, want %d", cut, rr.Good, len(rec))
		}
	}
}

func TestRecordBitFlip(t *testing.T) {
	rec := encodeRecord(kindFrame, []byte("payload under test"))
	for off := 0; off < len(rec); off++ {
		mut := append([]byte{}, rec...)
		mut[off] ^= 0x10
		rr := newRecordReader(bytes.NewReader(mut))
		_, got, err := rr.next()
		if err == nil && bytes.Equal(got, []byte("payload under test")) {
			t.Fatalf("bit flip at %d went undetected", off)
		}
	}
}

func TestFrameRoundtripAndChain(t *testing.T) {
	st := testGenesis(6)
	f := testFrame(st, 1)
	enc := f.Encode()
	got, err := DecodeFrame(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Epoch != f.Epoch || got.Chain != f.Chain || got.Slots != f.Slots || got.Live != f.Live {
		t.Fatalf("header mismatch: %+v vs %+v", got, f)
	}
	if len(got.Ops) != 1 || got.Ops[0].Kind != OpMove || got.Ops[0].ID != f.Ops[0].ID {
		t.Fatalf("ops mismatch: %+v", got.Ops)
	}
	if len(got.Deltas) != 1 || got.Deltas[0].V != f.Deltas[0].V || len(got.Deltas[0].Spanner) != 2 {
		t.Fatalf("deltas mismatch: %+v", got.Deltas)
	}
	// The decoded frame must apply cleanly (chain verifies).
	if err := st.Clone().Apply(got); err != nil {
		t.Fatalf("decoded frame rejected: %v", err)
	}
	// Any tampering with the decoded frame must break the chain.
	got.Deltas[0].Point = geom.Point{99, 99}
	if err := st.Clone().Apply(got); !errors.Is(err, ErrChainMismatch) {
		t.Fatalf("tampered frame: err=%v, want chain mismatch", err)
	}
}

func TestStateRoundtrip(t *testing.T) {
	st := testGenesis(5)
	advanceNoLog(t, st, 3)
	dec, err := DecodeState(st.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), st.Encode()) {
		t.Fatal("state roundtrip not byte-identical")
	}
	if dec.Epoch != st.Epoch || dec.Chain != st.Chain || dec.Live != st.Live {
		t.Fatalf("decoded header mismatch: %+v", dec)
	}
}

func advanceNoLog(t *testing.T, st *State, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		f := testFrame(st, st.Epoch+1)
		if err := st.Apply(f); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEpochGapRejected(t *testing.T) {
	st := testGenesis(4)
	f := testFrame(st, 1)
	f.Epoch = 5 // skips ahead; seal is over the wrong epoch anyway
	f.Seal(st.Chain)
	if err := st.Apply(f); !errors.Is(err, ErrEpochGap) {
		t.Fatalf("err=%v, want epoch gap", err)
	}
}
