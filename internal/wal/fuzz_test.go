package wal

// Native fuzz targets for the decode surfaces that face untrusted bytes: a
// follower reads the record stream straight off a network socket, and
// recovery reads whatever a crash left on disk. The contract under fuzzing
// is "no panics, clean errors": every input either decodes or fails with
// an error — never an index panic, never unbounded work. The committed
// seed corpora in testdata/fuzz/ pin the interesting shapes (valid
// records, torn tails, flipped bytes, truncated frames); run a real
// exploration with `make fuzz-short` or `go test -fuzz <Target>
// ./internal/wal/`.

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// fuzzSeedFrame builds a small sealed frame covering every field shape:
// all three op kinds, live and dead deltas, empty and multi-entry rows.
func fuzzSeedFrame() *Frame {
	f := &Frame{
		Epoch: 2,
		Slots: 3,
		Live:  2,
		Ops: []Op{
			{Kind: OpJoin, ID: 2, Point: geom.Point{0.5, 1.5}},
			{Kind: OpLeave, ID: 1},
			{Kind: OpMove, ID: 0, Point: geom.Point{2, 3}},
		},
		Deltas: []VertexDelta{
			{V: 0, Alive: true, Point: geom.Point{2, 3},
				Base:    []graph.Halfedge{{To: 2, W: 1.25}},
				Spanner: []graph.Halfedge{{To: 2, W: 1.25}}},
			{V: 1, Alive: false},
			{V: 2, Alive: true, Point: geom.Point{0.5, 1.5},
				Base: []graph.Halfedge{{To: 0, W: 1.25}, {To: 1, W: 0.5}}},
		},
	}
	f.Seal([32]byte{1, 2, 3})
	return f
}

// recordSeeds returns byte-stream seeds for the record scanner: a clean
// two-record stream, a torn tail, a flipped CRC, and junk.
func recordSeeds(t testing.TB) [][]byte {
	frame := encodeRecord(kindFrame, fuzzSeedFrame().Encode())
	stream := append(append([]byte(nil), frame...), frame...)
	torn := stream[:len(stream)-7]
	flipped := append([]byte(nil), frame...)
	flipped[len(flipped)-3] ^= 0x40
	badKind := append([]byte(nil), frame...)
	badKind[4] = 9
	return [][]byte{
		{},
		stream,
		torn,
		flipped,
		badKind,
		[]byte("TWF1 but not really"),
		bytes.Repeat([]byte{0xff}, 64),
	}
}

// FuzzRecordStream feeds arbitrary bytes to the exported record scanner —
// the follower's network-facing read path. It must always terminate with
// a clean error (io.EOF for a clean end, ErrTorn/ErrCorrupt otherwise,
// io.ErrUnexpectedEOF from a reader cut inside the buffered layer) and
// never panic.
func FuzzRecordStream(f *testing.F) {
	for _, s := range recordSeeds(f) {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewRecordReader(bytes.NewReader(data))
		frames := 0
		for {
			fr, err := rr.NextFrame()
			if err != nil {
				checkStreamErr(t, err)
				break
			}
			if fr == nil {
				t.Fatal("NextFrame returned nil frame with nil error")
			}
			frames++
			if frames > len(data) {
				t.Fatal("decoded more frames than input bytes; scanner is not consuming")
			}
		}
		// The same bytes through the checkpoint lens: kind mismatches must
		// surface as ErrCorrupt, not as misparsed state.
		rr = NewRecordReader(bytes.NewReader(data))
		for {
			if _, err := rr.NextCheckpoint(); err != nil {
				checkStreamErr(t, err)
				break
			}
		}
	})
}

func checkStreamErr(t *testing.T, err error) {
	t.Helper()
	switch {
	case errors.Is(err, io.EOF),
		errors.Is(err, io.ErrUnexpectedEOF),
		errors.Is(err, ErrTorn),
		errors.Is(err, ErrCorrupt):
	default:
		t.Fatalf("record scan failed with unclassified error: %v", err)
	}
}

// FuzzDecodeFrame fuzzes the frame payload decoder directly (post-gzip
// bytes). Beyond no-panic, it pins the encode→decode→encode fixed point:
// anything DecodeFrame accepts must re-encode to a stable canonical form
// (byte equality with the input is NOT required — e.g. a nonzero alive
// byte decodes to true and re-encodes as 1 — but one round trip must
// reach the fixed point, or the hash chain would be ill-defined).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	valid := fuzzSeedFrame().Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	mangled := append([]byte(nil), valid...)
	mangled[8] ^= 0xff
	f.Add(mangled)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := DecodeFrame(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTorn) {
				t.Fatalf("DecodeFrame failed with unclassified error: %v", err)
			}
			return
		}
		e1 := fr.Encode()
		fr2, err := DecodeFrame(e1)
		if err != nil {
			t.Fatalf("re-decoding an accepted frame's encoding failed: %v", err)
		}
		if e2 := fr2.Encode(); !bytes.Equal(e1, e2) {
			t.Fatalf("encode→decode→encode is not a fixed point:\n e1=%x\n e2=%x", e1, e2)
		}
	})
}

// FuzzDecodeState fuzzes the checkpoint payload decoder the same way —
// it parses whole frozen graphs, the largest decode surface in the
// package.
func FuzzDecodeState(f *testing.F) {
	f.Add([]byte{})
	g := graph.New(3)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(1, 2, 0.5)
	st := &State{
		Epoch: 5, T: 1.5, Radius: 1, Dim: 2,
		Points:  []geom.Point{{0, 0}, {1, 0}, nil},
		Alive:   []bool{true, true, false},
		Live:    2,
		Base:    graph.Freeze(g),
		Spanner: graph.Freeze(g),
	}
	valid := st.Encode()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := DecodeState(data)
		if err != nil {
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTorn) {
				t.Fatalf("DecodeState failed with unclassified error: %v", err)
			}
			return
		}
		e1 := st.Encode()
		st2, err := DecodeState(e1)
		if err != nil {
			t.Fatalf("re-decoding an accepted state's encoding failed: %v", err)
		}
		if e2 := st2.Encode(); !bytes.Equal(e1, e2) {
			t.Fatal("state encode→decode→encode is not a fixed point")
		}
	})
}

// TestWriteSeedCorpus materializes the in-code seeds as committed corpus
// files under testdata/fuzz/<Target>/ (the `go test fuzz v1` format), so
// plain `go test` and CI fuzz-short runs start from the interesting
// shapes without re-deriving them. Run with WRITE_FUZZ_CORPUS=1 to
// refresh after changing the seeds; the generated files are committed.
func TestWriteSeedCorpus(t *testing.T) {
	if os.Getenv("WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set WRITE_FUZZ_CORPUS=1 to regenerate testdata/fuzz")
	}
	valid := fuzzSeedFrame().Encode()
	mangled := append([]byte(nil), valid...)
	mangled[8] ^= 0xff
	writeCorpus(t, "FuzzRecordStream", recordSeeds(t))
	writeCorpus(t, "FuzzDecodeFrame", [][]byte{valid, valid[:len(valid)-5], mangled})
	g := graph.New(3)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(1, 2, 0.5)
	st := &State{Epoch: 5, T: 1.5, Radius: 1, Dim: 2,
		Points: []geom.Point{{0, 0}, {1, 0}, nil}, Alive: []bool{true, true, false},
		Live: 2, Base: graph.Freeze(g), Spanner: graph.Freeze(g)}
	sv := st.Encode()
	writeCorpus(t, "FuzzDecodeState", [][]byte{sv, sv[:len(sv)/2]})
}

func writeCorpus(t *testing.T, target string, seeds [][]byte) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", target)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		body := "go test fuzz v1\n[]byte(" + strconv.Quote(string(s)) + ")\n"
		if err := os.WriteFile(filepath.Join(dir, "seed-"+strconv.Itoa(i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
