// Package wal is the durability and replication substrate of the serving
// layer: every committed mutation batch becomes an epoch-stamped delta
// frame appended to an on-disk log, periodic full-snapshot checkpoints
// bound replay time, and the same frames stream to follower processes
// that rebuild identical frozen topologies locally.
//
// The design goals, in order:
//
//   - Crash recovery from any prefix of the log. Records carry a length
//     and CRC32; recovery loads the newest valid checkpoint, replays the
//     log tail, and truncates the first torn or corrupt trailing record
//     instead of failing — from any crash point the daemon converges back
//     to a correct serving state (the self-stabilization bar: SSS 2005).
//   - Deterministic replication. A frame carries the post-commit adjacency
//     rows of every vertex the commit touched (plus the slot metadata the
//     ops changed), so applying a frame is pure row replacement — no
//     repair logic runs on followers, and a follower's snapshot is
//     element-identical to the leader's at every epoch by construction.
//   - Accountability. Frames form a hash chain: each frame's Chain is
//     SHA-256 over the previous chain value and the frame's canonical
//     encoding (the pod-consensus idea of an accountable log, scoped down
//     to single-leader streaming). A follower that verifies the chain and
//     starts from a trusted checkpoint cannot silently diverge.
//
// File layout under the WAL directory: checkpoint-<epoch>.ckpt files
// (one record holding the full canonical state) and wal-<epoch>.log files
// (frames with epochs strictly greater than <epoch>). A checkpoint
// rotates the log; the last two generations are kept so a partial or
// bit-rotted newest checkpoint falls back to the previous one.
package wal

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// Errors the decode and apply paths distinguish.
var (
	// ErrTorn reports a record cut short by a crash: the bytes run out
	// mid-record. Recovery truncates the tail at the record boundary.
	ErrTorn = errors.New("wal: torn record")
	// ErrCorrupt reports a record whose CRC, magic, or structure is
	// invalid: the bytes are there but wrong.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrEpochGap reports a frame that does not directly succeed the state
	// it is being applied to.
	ErrEpochGap = errors.New("wal: epoch gap")
	// ErrChainMismatch reports a frame whose hash chain does not extend
	// the applied state's chain.
	ErrChainMismatch = errors.New("wal: hash chain mismatch")
)

// OpKind discriminates mutation ops inside a frame.
type OpKind uint8

// Op kinds. Values are part of the on-disk format; never renumber.
const (
	OpJoin  OpKind = 1
	OpLeave OpKind = 2
	OpMove  OpKind = 3
)

// Op is one applied mutation, with its resolved slot id (joins record the
// id the engine assigned). Ops are the audit record of what produced the
// frame; application itself uses only the Deltas.
type Op struct {
	Kind  OpKind
	ID    int32
	Point geom.Point // set for join and move, nil for leave
}

// VertexDelta is the post-commit state of one slot: its liveness and
// position, and its full base and spanner adjacency rows in the leader's
// row order. A frame carries a delta for every vertex whose adjacency the
// commit touched and for every slot an op changed.
type VertexDelta struct {
	V       int32
	Alive   bool
	Point   geom.Point // nil unless Alive
	Base    []graph.Halfedge
	Spanner []graph.Halfedge
}

// Frame is one committed mutation batch: the delta between topology epoch
// Epoch-1 and Epoch.
type Frame struct {
	// Epoch is the topology version this frame produces (leader snapshot
	// versions and WAL epochs are the same counter).
	Epoch uint64
	// Chain is SHA-256(previous chain value || canonical frame body).
	Chain [sha256.Size]byte
	// Slots is the slot-space size after this frame (alive/points length).
	Slots int32
	// Live is the live node count after this frame.
	Live int32
	// Ops are the applied mutations, in batch order.
	Ops []Op
	// Deltas are the changed slots, in increasing V order.
	Deltas []VertexDelta
}

// Seal computes and stores the frame's chain value over prev.
func (f *Frame) Seal(prev [sha256.Size]byte) {
	f.Chain = chainNext(prev, f.appendBody(nil))
}

// chainNext extends the hash chain with one frame body.
func chainNext(prev [sha256.Size]byte, body []byte) [sha256.Size]byte {
	h := sha256.New()
	h.Write(prev[:])
	h.Write(body)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// --- binary encoding ------------------------------------------------------
//
// All integers are little-endian fixed width; floats are IEEE-754 bits.
// The encoding is canonical: one valid byte string per frame, so the hash
// chain is well defined.

func appendU8(b []byte, v uint8) []byte   { return append(b, v) }
func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }
func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendPoint(b []byte, p geom.Point) []byte {
	b = appendU16(b, uint16(len(p)))
	for _, c := range p {
		b = appendF64(b, c)
	}
	return b
}

func appendRow(b []byte, row []graph.Halfedge) []byte {
	b = appendU32(b, uint32(len(row)))
	for _, h := range row {
		b = appendU32(b, uint32(h.To))
		b = appendF64(b, h.W)
	}
	return b
}

// decoder is a bounds-checked cursor over an encoded payload. The first
// overrun latches err; subsequent reads return zero values, and callers
// check err once at the end.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: payload truncated at byte %d", ErrCorrupt, d.off)
	}
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || d.off+n > len(d.b) || n < 0 {
		d.fail()
		return nil
	}
	s := d.b[d.off : d.off+n]
	d.off += n
	return s
}

func (d *decoder) u8() uint8 {
	s := d.take(1)
	if s == nil {
		return 0
	}
	return s[0]
}

func (d *decoder) u16() uint16 {
	s := d.take(2)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(s)
}

func (d *decoder) u32() uint32 {
	s := d.take(4)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(s)
}

func (d *decoder) u64() uint64 {
	s := d.take(8)
	if s == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(s)
}

func (d *decoder) f64() float64 { return math.Float64frombits(d.u64()) }

// count reads a u32 element count and sanity-checks it against the bytes
// remaining at elemSize each, so a corrupt count cannot become a huge
// allocation.
func (d *decoder) count(elemSize int) int {
	n := int(d.u32())
	if d.err == nil && n*elemSize > len(d.b)-d.off {
		d.fail()
		return 0
	}
	return n
}

func (d *decoder) point() geom.Point {
	n := int(d.u16())
	if d.err != nil || n == 0 {
		return nil
	}
	if n*8 > len(d.b)-d.off {
		d.fail()
		return nil
	}
	p := make(geom.Point, n)
	for i := range p {
		p[i] = d.f64()
	}
	return p
}

func (d *decoder) row() []graph.Halfedge {
	n := d.count(12)
	if d.err != nil || n == 0 {
		return nil
	}
	row := make([]graph.Halfedge, n)
	for i := range row {
		row[i].To = int(d.u32())
		row[i].W = d.f64()
	}
	return row
}

// appendBody encodes everything except the chain value — the bytes the
// hash chain covers.
func (f *Frame) appendBody(b []byte) []byte {
	b = appendU64(b, f.Epoch)
	b = appendU32(b, uint32(f.Slots))
	b = appendU32(b, uint32(f.Live))
	b = appendU32(b, uint32(len(f.Ops)))
	for _, op := range f.Ops {
		b = appendU8(b, uint8(op.Kind))
		b = appendU32(b, uint32(op.ID))
		b = appendPoint(b, op.Point)
	}
	b = appendU32(b, uint32(len(f.Deltas)))
	for _, vd := range f.Deltas {
		b = appendU32(b, uint32(vd.V))
		alive := uint8(0)
		if vd.Alive {
			alive = 1
		}
		b = appendU8(b, alive)
		if vd.Alive {
			b = appendPoint(b, vd.Point)
		}
		b = appendRow(b, vd.Base)
		b = appendRow(b, vd.Spanner)
	}
	return b
}

// Encode serializes the frame: body followed by the chain value.
func (f *Frame) Encode() []byte {
	b := f.appendBody(nil)
	return append(b, f.Chain[:]...)
}

// DecodeFrame parses an encoded frame. Structural damage surfaces as
// ErrCorrupt; chain verification happens at apply time.
func DecodeFrame(b []byte) (*Frame, error) {
	d := &decoder{b: b}
	f := &Frame{
		Epoch: d.u64(),
		Slots: int32(d.u32()),
		Live:  int32(d.u32()),
	}
	nops := d.count(5)
	for i := 0; i < nops && d.err == nil; i++ {
		op := Op{Kind: OpKind(d.u8()), ID: int32(d.u32())}
		op.Point = d.point()
		f.Ops = append(f.Ops, op)
	}
	nd := d.count(13)
	for i := 0; i < nd && d.err == nil; i++ {
		vd := VertexDelta{V: int32(d.u32())}
		vd.Alive = d.u8() == 1
		if vd.Alive {
			vd.Point = d.point()
		}
		vd.Base = d.row()
		vd.Spanner = d.row()
		f.Deltas = append(f.Deltas, vd)
	}
	chain := d.take(sha256.Size)
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes after frame", ErrCorrupt, len(b)-d.off)
	}
	copy(f.Chain[:], chain)
	if f.Slots < 0 || f.Live < 0 || f.Live > f.Slots {
		return nil, fmt.Errorf("%w: implausible slots=%d live=%d", ErrCorrupt, f.Slots, f.Live)
	}
	return f, nil
}
