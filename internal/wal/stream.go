package wal

import (
	"net/http"
	"strconv"
)

// Replication surface. The leader mounts these next to the service
// handler:
//
//	GET /wal/checkpoint       the latest full-snapshot checkpoint record
//	GET /wal/stream?from=E    frame records with epoch > E, then live tail
//
// Both endpoints speak the record envelope format — the same bytes that
// live on disk. A follower bootstraps from the checkpoint, then streams
// frames from its applied epoch; if it has fallen further behind than the
// in-memory retention window, the stream answers 410 Gone and the
// follower re-bootstraps.

// EpochHeader carries the leader's current epoch on replication
// responses, letting a catching-up follower report its lag.
const EpochHeader = "X-Topoctl-Epoch"

func (r *Recorder) epochNow() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// HandleCheckpoint serves the latest checkpoint record.
func (r *Recorder) HandleCheckpoint(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	rec := r.lastCkpt
	epoch := r.epoch
	r.mu.Unlock()
	if rec == nil {
		http.Error(w, "wal: not bootstrapped", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(EpochHeader, strconv.FormatUint(epoch, 10))
	w.Write(rec)
}

// HandleStream serves frames with epoch > from as a chunked stream that
// stays open and follows the live log tail. The connection ends when the
// recorder closes, the client goes away, or the subscriber falls too far
// behind the writer (it should reconnect and catch up from the ring).
func (r *Recorder) HandleStream(w http.ResponseWriter, req *http.Request) {
	from, err := strconv.ParseUint(req.URL.Query().Get("from"), 10, 64)
	if err != nil {
		http.Error(w, "wal: bad from epoch", http.StatusBadRequest)
		return
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		http.Error(w, "wal: closed", http.StatusServiceUnavailable)
		return
	}
	ringStart := r.epoch + 1
	if len(r.ring) > 0 {
		ringStart = r.ring[0].epoch
	}
	if from+1 < ringStart {
		// The follower is behind the retention window; it must take a
		// fresh checkpoint.
		r.mu.Unlock()
		http.Error(w, "wal: epoch out of retention, re-bootstrap from checkpoint", http.StatusGone)
		return
	}
	var backlog [][]byte
	for _, ent := range r.ring {
		if ent.epoch > from {
			backlog = append(backlog, ent.rec)
		}
	}
	sub := make(chan []byte, 256)
	r.subs[sub] = struct{}{}
	r.mu.Unlock()

	defer func() {
		r.mu.Lock()
		if _, ok := r.subs[sub]; ok {
			delete(r.subs, sub)
			// Drain a concurrent send racing the delete; the recorder
			// never sends after removal.
		}
		r.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(EpochHeader, strconv.FormatUint(r.epochNow(), 10))
	flusher, _ := w.(http.Flusher)
	// Flush the headers now: with an empty backlog the first frame may be
	// far off, and the subscriber should learn promptly that the stream is
	// established.
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}
	send := func(rec []byte) bool {
		if _, err := w.Write(rec); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, rec := range backlog {
		if !send(rec) {
			return
		}
	}
	ctx := req.Context()
	for {
		select {
		case rec, ok := <-sub:
			if !ok {
				return // recorder closed, or we fell behind and were cut
			}
			if !send(rec) {
				return
			}
		case <-ctx.Done():
			return
		}
	}
}
