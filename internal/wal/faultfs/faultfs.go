// Package faultfs is an in-memory filesystem with precise crash
// semantics, the substrate of the WAL fault-injection suite. It models
// the property journaled filesystems actually guarantee for appended
// data: bytes written but not yet fsynced may vanish at a crash, in
// arbitrary (prefix) amounts, while synced bytes survive. On top of that
// it injects the failure modes the recovery path must absorb:
//
//   - Write budgets: after a configured number of bytes, the next write
//     applies only a prefix (a torn record) and the filesystem wedges —
//     every later operation fails, as if the process were dying mid-step.
//   - Crash(): discard all unsynced state, unwedge, and continue — the
//     "kill -9 and restart" transition recovery is tested against.
//   - FlipBit: corrupt a durable byte, modeling bit rot that CRCs must
//     catch (checkpoint fallback, log-tail truncation).
//
// Renames are modeled as atomic and durable (the journaled-metadata
// assumption the real recorder leans on via fsync-before-rename).
package faultfs

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"topoctl/internal/wal"
)

// ErrInjected is returned by every operation once the filesystem has
// wedged (write budget exhausted).
var ErrInjected = errors.New("faultfs: injected failure")

type file struct {
	data    []byte
	durable int // bytes that survive Crash
}

// FS implements wal.FS in memory with durability tracking.
type FS struct {
	mu     sync.Mutex
	files  map[string]*file
	budget int64 // bytes until wedge; <0 = unlimited
	wedged bool

	// Writes counts successful Write calls, so tests can enumerate crash
	// points ("wedge after the k-th write").
	writes int
}

var _ wal.FS = (*FS)(nil)

// New returns an empty filesystem with no fault armed.
func New() *FS {
	return &FS{files: map[string]*file{}, budget: -1}
}

// SetWriteBudget arms the torn-write fault: the next n bytes of writes
// succeed; the write that crosses the boundary applies only its prefix
// and wedges the filesystem. Negative disarms.
func (fs *FS) SetWriteBudget(n int64) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.budget = n
	fs.wedged = false
}

// Wedged reports whether the armed fault has fired.
func (fs *FS) Wedged() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.wedged
}

// WriteCount returns the number of Write calls that have fully applied.
func (fs *FS) WriteCount() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes
}

// Crash simulates a process kill and restart: every file reverts to its
// durable prefix, and the filesystem unwedges with no fault armed.
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		f.data = f.data[:f.durable]
	}
	fs.budget = -1
	fs.wedged = false
}

// SyncAll makes the current content of every file durable — the
// "clean shutdown" baseline faults are measured against.
func (fs *FS) SyncAll() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	for _, f := range fs.files {
		f.durable = len(f.data)
	}
}

// FlipBit XORs one bit of name's durable content.
func (fs *FS) FlipBit(name string, off int64, bit uint) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok || off < 0 || off >= int64(len(f.data)) {
		return fmt.Errorf("faultfs: flip %s@%d: no such byte", name, off)
	}
	f.data[off] ^= 1 << (bit % 8)
	return nil
}

// Files returns the names of all files, sorted.
func (fs *FS) Files() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SizeNow returns a file's current (volatile) length.
func (fs *FS) SizeNow(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[name]; ok {
		return int64(len(f.data))
	}
	return 0
}

func (fs *FS) MkdirAll(dir string) error { return nil }

func (fs *FS) ReadDir(dir string) ([]string, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.wedged {
		return nil, ErrInjected
	}
	prefix := strings.TrimSuffix(dir, "/") + "/"
	var names []string
	for n := range fs.files {
		if strings.HasPrefix(n, prefix) && !strings.Contains(n[len(prefix):], "/") {
			names = append(names, n[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (fs *FS) Open(name string) (io.ReadCloser, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.wedged {
		return nil, ErrInjected
	}
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("faultfs: open %s: no such file", name)
	}
	return io.NopCloser(bytes.NewReader(append([]byte(nil), f.data...))), nil
}

func (fs *FS) Create(name string) (wal.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.wedged {
		return nil, ErrInjected
	}
	fs.files[name] = &file{}
	return &handle{fs: fs, name: name}, nil
}

func (fs *FS) Append(name string) (wal.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.wedged {
		return nil, ErrInjected
	}
	if _, ok := fs.files[name]; !ok {
		fs.files[name] = &file{}
	}
	return &handle{fs: fs, name: name}, nil
}

func (fs *FS) Rename(oldpath, newpath string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.wedged {
		return ErrInjected
	}
	f, ok := fs.files[oldpath]
	if !ok {
		return fmt.Errorf("faultfs: rename %s: no such file", oldpath)
	}
	delete(fs.files, oldpath)
	// Renames are modeled durable: the real recorder syncs content before
	// renaming and the OS adapter syncs the directory after.
	f.durable = len(f.data)
	fs.files[newpath] = f
	return nil
}

func (fs *FS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.wedged {
		return ErrInjected
	}
	delete(fs.files, name)
	return nil
}

func (fs *FS) Truncate(name string, size int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.wedged {
		return ErrInjected
	}
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("faultfs: truncate %s: no such file", name)
	}
	if size < 0 || size > int64(len(f.data)) {
		return fmt.Errorf("faultfs: truncate %s to %d (len %d)", name, size, len(f.data))
	}
	f.data = f.data[:size]
	if f.durable > int(size) {
		f.durable = int(size)
	}
	return nil
}

func (fs *FS) Size(name string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.wedged {
		return 0, ErrInjected
	}
	f, ok := fs.files[name]
	if !ok {
		return 0, fmt.Errorf("faultfs: stat %s: no such file", name)
	}
	return int64(len(f.data)), nil
}

// handle is an open file. Writes append (the WAL's only write pattern —
// Create starts from an empty file).
type handle struct {
	fs   *FS
	name string
}

func (h *handle) Write(p []byte) (int, error) {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.wedged {
		return 0, ErrInjected
	}
	f, ok := fs.files[h.name]
	if !ok {
		return 0, fmt.Errorf("faultfs: write %s: file removed", h.name)
	}
	n := len(p)
	if fs.budget >= 0 && int64(n) > fs.budget {
		// The fault fires: a prefix lands, then the filesystem wedges.
		n = int(fs.budget)
		f.data = append(f.data, p[:n]...)
		fs.wedged = true
		fs.budget = 0
		return n, ErrInjected
	}
	if fs.budget >= 0 {
		fs.budget -= int64(n)
	}
	f.data = append(f.data, p...)
	fs.writes++
	return n, nil
}

func (h *handle) Sync() error {
	fs := h.fs
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.wedged {
		return ErrInjected
	}
	if f, ok := fs.files[h.name]; ok {
		f.durable = len(f.data)
	}
	return nil
}

func (h *handle) Close() error { return nil }
