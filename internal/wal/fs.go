package wal

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// FS is the slice of filesystem behavior the WAL needs, factored out so
// the fault-injection harness (wal/faultfs) can substitute an in-memory
// filesystem with precise crash semantics: writes that vanish unless
// synced, torn final writes, and bit flips. Production code uses OS.
type FS interface {
	// MkdirAll creates dir and parents.
	MkdirAll(dir string) error
	// ReadDir returns the sorted base names of dir's entries. A missing
	// directory returns an empty list, not an error.
	ReadDir(dir string) ([]string, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if missing.
	Append(name string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes name; removing a missing file is not an error.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// Size returns name's length in bytes.
	Size(name string) (int64, error)
}

// File is a writable log or checkpoint file. Sync must make previously
// written bytes durable (survive a crash).
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (osFS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

func (osFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

func (osFS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

// Rename renames and then fsyncs the parent directory, so the rename
// itself is durable — the checkpoint-publication step depends on it.
func (osFS) Rename(oldpath, newpath string) error {
	if err := os.Rename(oldpath, newpath); err != nil {
		return err
	}
	if d, err := os.Open(filepath.Dir(newpath)); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}

func (osFS) Remove(name string) error {
	err := os.Remove(name)
	if os.IsNotExist(err) {
		return nil
	}
	return err
}

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) Size(name string) (int64, error) {
	fi, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
