// Package routing implements the routing schemes that motivate topology
// control (paper §1.3): shortest-path routing over a chosen topology, and
// the memoryless geographic schemes (greedy forwarding and compass routing)
// whose delivery behaviour is why the literature cares about spanner and
// planarity properties of control structures [9].
//
// The package is the application layer of the repository: examples and
// experiments use it to quantify what routing over a sparse spanner costs
// relative to the full network.
package routing

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// ErrOutOfRange is returned (wrapped, with the offending endpoints) when a
// route request names a vertex outside [0, n). Callers distinguish it from
// other failures with errors.Is; the serving layer maps it to 400/404
// responses instead of treating a bad request as an internal error.
var ErrOutOfRange = errors.New("routing: endpoint out of range")

// Scheme selects a forwarding strategy.
type Scheme int

// Forwarding schemes.
const (
	// SchemeShortestPath routes along exact shortest paths (global
	// knowledge; the quality yardstick).
	SchemeShortestPath Scheme = iota + 1
	// SchemeGreedy is memoryless greedy geographic forwarding: always move
	// to the neighbor strictly closest (Euclidean) to the destination;
	// fails in a local minimum.
	SchemeGreedy
	// SchemeCompass is compass routing: move to the neighbor whose
	// direction minimizes the angle to the destination direction; fails
	// when it revisits a vertex (loop detection).
	SchemeCompass
)

// String names the scheme.
func (s Scheme) String() string {
	switch s {
	case SchemeShortestPath:
		return "shortest-path"
	case SchemeGreedy:
		return "greedy"
	case SchemeCompass:
		return "compass"
	default:
		return "unknown"
	}
}

// Route is the result of routing one packet.
type Route struct {
	// Delivered reports whether the packet reached its destination.
	Delivered bool
	// Path is the vertex sequence traversed (source first; for undelivered
	// packets, the prefix until failure).
	Path []int
	// Cost is the total edge weight traversed.
	Cost float64
}

// Hops returns the number of edges traversed.
func (r Route) Hops() int {
	if len(r.Path) == 0 {
		return 0
	}
	return len(r.Path) - 1
}

// DistanceOracle answers point-to-point distances over the router's
// topology without searching. Query returns the exact distance (graph.Inf
// when unreachable) and true when it can certify the answer; false means
// the caller must fall back to a direct search. internal/labels.Oracle is
// the implementation; the interface keeps routing free of that dependency.
type DistanceOracle interface {
	Query(s, t int) (float64, bool)
}

// Router routes packets over a fixed topology with node positions. Any
// read-only topology works: the serving layer hands it frozen (immutable
// CSR) snapshots, tests and experiments hand it mutable graphs.
type Router struct {
	g      graph.Topology
	pts    []geom.Point
	oracle DistanceOracle
}

// NewRouter builds a router for topology g embedded at pts.
func NewRouter(g graph.Topology, pts []geom.Point) (*Router, error) {
	if g.N() != len(pts) {
		return nil, fmt.Errorf("routing: %d vertices but %d points", g.N(), len(pts))
	}
	return &Router{g: g, pts: pts}, nil
}

// SetDistanceOracle attaches a distance oracle for Distance to consult
// before searching. The oracle must answer for the router's own topology;
// nil detaches. Set it before sharing the router across goroutines.
func (r *Router) SetDistanceOracle(o DistanceOracle) { r.oracle = o }

// Distance returns the exact shortest-path distance from s to t over the
// router's topology: the attached oracle when it certifies the answer
// (allocation-free label intersection), otherwise one bidirectional
// Dijkstra with the caller's Searcher. fromLabels reports which path
// answered — the value is exact either way, graph.Inf when unreachable.
func (r *Router) Distance(srch *graph.Searcher, s, t int) (d float64, fromLabels bool, err error) {
	if s < 0 || s >= r.g.N() || t < 0 || t >= r.g.N() {
		return 0, false, fmt.Errorf("%w: endpoints (%d,%d), n=%d", ErrOutOfRange, s, t, r.g.N())
	}
	if r.oracle != nil {
		if d, ok := r.oracle.Query(s, t); ok {
			return d, true, nil
		}
	}
	d, ok := srch.DijkstraTarget(r.g, s, t, graph.Inf)
	if !ok {
		d = graph.Inf
	}
	return d, false, nil
}

// Route routes one packet from s to t under the scheme. Out-of-range
// endpoints yield an error wrapping ErrOutOfRange, never a zero Route.
func (r *Router) Route(scheme Scheme, s, t int) (Route, error) {
	if scheme == SchemeShortestPath {
		srch := graph.AcquireSearcher(r.g.N())
		defer graph.ReleaseSearcher(srch)
		return r.RouteWith(srch, scheme, s, t)
	}
	return r.RouteWith(nil, scheme, s, t)
}

// RouteWith is Route with a caller-supplied Searcher. Only the
// shortest-path scheme searches — the geographic schemes ignore srch, and
// it may be nil for them. Concurrent callers that route many packets hand
// the same Searcher to consecutive calls and skip the package-level pool
// entirely.
func (r *Router) RouteWith(srch *graph.Searcher, scheme Scheme, s, t int) (Route, error) {
	if s < 0 || s >= r.g.N() || t < 0 || t >= r.g.N() {
		return Route{}, fmt.Errorf("%w: endpoints (%d,%d), n=%d", ErrOutOfRange, s, t, r.g.N())
	}
	if s == t {
		return Route{Delivered: true, Path: []int{s}}, nil
	}
	switch scheme {
	case SchemeShortestPath:
		return r.shortest(srch, s, t), nil
	case SchemeGreedy:
		return r.greedy(s, t), nil
	case SchemeCompass:
		return r.compass(s, t), nil
	default:
		return Route{}, fmt.Errorf("routing: unknown scheme %d", scheme)
	}
}

// shortest routes along an exact shortest path (bidirectional Dijkstra
// with parents on both frontiers). AppendPathTo sizes the result exactly,
// so a delivered route costs one allocation — the path the caller keeps.
func (r *Router) shortest(srch *graph.Searcher, s, t int) Route {
	path, cost, ok := srch.AppendPathTo(nil, r.g, s, t, graph.Inf)
	if !ok {
		return Route{Delivered: false, Path: []int{s}}
	}
	return Route{Delivered: true, Path: path, Cost: cost}
}

// greedy is memoryless greedy geographic forwarding.
func (r *Router) greedy(s, t int) Route {
	route := Route{Path: []int{s}}
	cur := s
	for cur != t && len(route.Path) <= r.g.N() {
		bestV, bestD := -1, geom.Dist(r.pts[cur], r.pts[t])
		var bestW float64
		for _, h := range r.g.Neighbors(cur) {
			if d := geom.Dist(r.pts[h.To], r.pts[t]); d < bestD {
				bestV, bestD, bestW = h.To, d, h.W
			}
		}
		if bestV == -1 {
			return route // local minimum
		}
		cur = bestV
		route.Path = append(route.Path, cur)
		route.Cost += bestW
	}
	route.Delivered = cur == t
	return route
}

// compass routes by angular proximity, failing on the first revisit.
func (r *Router) compass(s, t int) Route {
	route := Route{Path: []int{s}}
	visited := map[int]bool{s: true}
	cur := s
	for cur != t {
		bestV, bestA := -1, math.Inf(1)
		var bestW float64
		for _, h := range r.g.Neighbors(cur) {
			if h.To == t {
				bestV, bestA, bestW = t, -1, h.W
				break
			}
			a := geom.Angle(r.pts[cur], r.pts[t], r.pts[h.To])
			if a < bestA || (a == bestA && h.To < bestV) {
				bestV, bestA, bestW = h.To, a, h.W
			}
		}
		if bestV == -1 {
			return route // isolated
		}
		cur = bestV
		route.Path = append(route.Path, cur)
		route.Cost += bestW
		if cur != t && visited[cur] {
			return route // loop: compass routing failed
		}
		visited[cur] = true
	}
	route.Delivered = true
	return route
}

// Stats aggregates routing quality over a query workload.
type Stats struct {
	Scheme    Scheme
	Queries   int
	Delivered int
	// AvgCost and AvgHops are over delivered packets.
	AvgCost float64
	AvgHops float64
	// AvgStretch is the mean delivered cost over the full-graph shortest
	// path cost (requires the caller to supply base costs; 0 if absent).
	AvgStretch float64
}

// DeliveryRate returns delivered/queries (1 for an empty workload).
func (s Stats) DeliveryRate() float64 {
	if s.Queries == 0 {
		return 1
	}
	return float64(s.Delivered) / float64(s.Queries)
}

// Query is a source/destination pair.
type Query struct{ S, T int }

// RandomQueries draws q distinct-endpoint queries uniformly.
func RandomQueries(n, q int, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Query, 0, q)
	for len(out) < q {
		s, t := rng.Intn(n), rng.Intn(n)
		if s != t {
			out = append(out, Query{S: s, T: t})
		}
	}
	return out
}

// Evaluate routes the workload under the scheme. baseCosts, when non-nil,
// must hold the full-network shortest-path cost of each query (for the
// stretch column); entries <= 0 are skipped for stretch.
func (r *Router) Evaluate(scheme Scheme, queries []Query, baseCosts []float64) (Stats, error) {
	st := Stats{Scheme: scheme, Queries: len(queries)}
	var cost, hops, stretch float64
	var stretchN int
	for i, q := range queries {
		route, err := r.Route(scheme, q.S, q.T)
		if err != nil {
			return Stats{}, err
		}
		if !route.Delivered {
			continue
		}
		st.Delivered++
		cost += route.Cost
		hops += float64(route.Hops())
		if baseCosts != nil && i < len(baseCosts) && baseCosts[i] > 0 {
			stretch += route.Cost / baseCosts[i]
			stretchN++
		}
	}
	if st.Delivered > 0 {
		st.AvgCost = cost / float64(st.Delivered)
		st.AvgHops = hops / float64(st.Delivered)
	}
	if stretchN > 0 {
		st.AvgStretch = stretch / float64(stretchN)
	}
	return st, nil
}
