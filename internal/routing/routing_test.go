package routing

import (
	"errors"
	"math"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/greedy"
	"topoctl/internal/ubg"
)

// lineWorld is a 4-node path embedded on a line.
func lineWorld() (*graph.Graph, []geom.Point) {
	pts := []geom.Point{{0, 0}, {1, 0}, {2, 0}, {3, 0}}
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	return g, pts
}

func TestShortestPathRoute(t *testing.T) {
	g, pts := lineWorld()
	g.AddEdge(0, 3, 10) // expensive shortcut
	r, err := NewRouter(g, pts)
	if err != nil {
		t.Fatal(err)
	}
	route, err := r.Route(SchemeShortestPath, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !route.Delivered || route.Cost != 3 || route.Hops() != 3 {
		t.Errorf("route = %+v", route)
	}
	want := []int{0, 1, 2, 3}
	for i, v := range want {
		if route.Path[i] != v {
			t.Errorf("path = %v", route.Path)
			break
		}
	}
}

func TestShortestPathUnreachable(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	r, _ := NewRouter(g, []geom.Point{{0, 0}, {1, 0}, {9, 9}})
	route, err := r.Route(SchemeShortestPath, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if route.Delivered {
		t.Error("unreachable destination reported delivered")
	}
}

func TestGreedyDeliversOnPath(t *testing.T) {
	g, pts := lineWorld()
	r, _ := NewRouter(g, pts)
	route, _ := r.Route(SchemeGreedy, 0, 3)
	if !route.Delivered || route.Hops() != 3 {
		t.Errorf("route = %+v", route)
	}
}

// TestGreedyLocalMinimum: a classical void — the only progress requires
// moving away from the destination first.
func TestGreedyLocalMinimum(t *testing.T) {
	// s at origin; t to the east; s's only neighbor is west of it.
	pts := []geom.Point{{0, 0}, {-1, 0}, {2, 0}}
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 3)
	r, _ := NewRouter(g, pts)
	route, _ := r.Route(SchemeGreedy, 0, 2)
	if route.Delivered {
		t.Error("greedy escaped a local minimum — impossible")
	}
	// Shortest path still delivers.
	sp, _ := r.Route(SchemeShortestPath, 0, 2)
	if !sp.Delivered {
		t.Error("shortest path should deliver")
	}
}

func TestCompassDeliversOnPath(t *testing.T) {
	g, pts := lineWorld()
	r, _ := NewRouter(g, pts)
	route, _ := r.Route(SchemeCompass, 0, 3)
	if !route.Delivered {
		t.Errorf("route = %+v", route)
	}
}

func TestCompassLoopDetection(t *testing.T) {
	// Compass can loop; at minimum it must terminate and report failure on
	// a graph where the best-angle step oscillates.
	pts := []geom.Point{{0, 0}, {1, 0.5}, {1, -0.5}, {3, 0}}
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(1, 2, 1)
	// No edge to 3: all schemes must fail but terminate.
	r, _ := NewRouter(g, pts)
	route, _ := r.Route(SchemeCompass, 0, 3)
	if route.Delivered {
		t.Error("delivered to a disconnected destination")
	}
	if route.Hops() > 10 {
		t.Errorf("compass did not terminate promptly: %d hops", route.Hops())
	}
}

func TestRouteSelfAndValidation(t *testing.T) {
	g, pts := lineWorld()
	r, _ := NewRouter(g, pts)
	route, err := r.Route(SchemeGreedy, 2, 2)
	if err != nil || !route.Delivered || route.Hops() != 0 {
		t.Errorf("self route = %+v, %v", route, err)
	}
	if _, err := r.Route(SchemeGreedy, -1, 2); err == nil {
		t.Error("negative source accepted")
	}
	if _, err := r.Route(Scheme(99), 0, 1); err == nil {
		t.Error("unknown scheme accepted")
	}
	if _, err := NewRouter(g, pts[:2]); err == nil {
		t.Error("mismatched points accepted")
	}
}

// TestShortestPathMatchesDijkstra on a random instance.
func TestShortestPathMatchesDijkstra(t *testing.T) {
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: 60, Dim: 2, Seed: 70_000},
		ubg.Config{Alpha: 0.8, Model: ubg.ModelAll, Seed: 70_000},
	)
	if err != nil {
		t.Fatal(err)
	}
	r, _ := NewRouter(inst.G, inst.Points)
	d0 := inst.G.Dijkstra(0)
	for v := 1; v < inst.G.N(); v += 7 {
		route, _ := r.Route(SchemeShortestPath, 0, v)
		if !route.Delivered {
			t.Fatalf("0->%d undelivered", v)
		}
		if math.Abs(route.Cost-d0[v]) > 1e-9 {
			t.Fatalf("0->%d cost %v != %v", v, route.Cost, d0[v])
		}
		// Path must be consistent: sum of edge weights equals cost.
		var sum float64
		for i := 0; i+1 < len(route.Path); i++ {
			w, ok := inst.G.EdgeWeight(route.Path[i], route.Path[i+1])
			if !ok {
				t.Fatalf("path uses non-edge %d-%d", route.Path[i], route.Path[i+1])
			}
			sum += w
		}
		if math.Abs(sum-route.Cost) > 1e-9 {
			t.Fatalf("path sum %v != cost %v", sum, route.Cost)
		}
	}
}

// TestSpannerRoutingWithinT: shortest-path routing over a t-spanner must
// stay within t of the full network on every query.
func TestSpannerRoutingWithinT(t *testing.T) {
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: 80, Dim: 2, Seed: 71_000},
		ubg.Config{Alpha: 0.8, Model: ubg.ModelAll, Seed: 71_000},
	)
	if err != nil {
		t.Fatal(err)
	}
	const tval = 1.5
	sp := greedy.Spanner(inst.G, tval)
	full, _ := NewRouter(inst.G, inst.Points)
	sparse, _ := NewRouter(sp, inst.Points)
	queries := RandomQueries(inst.G.N(), 100, 3)
	for _, q := range queries {
		a, _ := full.Route(SchemeShortestPath, q.S, q.T)
		b, _ := sparse.Route(SchemeShortestPath, q.S, q.T)
		if !b.Delivered {
			t.Fatalf("spanner failed to deliver %v", q)
		}
		if b.Cost > tval*a.Cost+1e-9 {
			t.Fatalf("query %v: spanner cost %v > t × %v", q, b.Cost, a.Cost)
		}
	}
}

func TestEvaluateAggregates(t *testing.T) {
	g, pts := lineWorld()
	r, _ := NewRouter(g, pts)
	queries := []Query{{S: 0, T: 3}, {S: 3, T: 0}, {S: 1, T: 2}}
	base := []float64{3, 3, 1}
	st, err := r.Evaluate(SchemeShortestPath, queries, base)
	if err != nil {
		t.Fatal(err)
	}
	if st.Delivered != 3 || st.DeliveryRate() != 1 {
		t.Errorf("stats = %+v", st)
	}
	if math.Abs(st.AvgStretch-1) > 1e-12 {
		t.Errorf("AvgStretch = %v, want 1", st.AvgStretch)
	}
	if math.Abs(st.AvgCost-7.0/3) > 1e-12 {
		t.Errorf("AvgCost = %v", st.AvgCost)
	}
}

func TestRandomQueriesProperties(t *testing.T) {
	qs := RandomQueries(10, 50, 1)
	if len(qs) != 50 {
		t.Fatalf("len = %d", len(qs))
	}
	for _, q := range qs {
		if q.S == q.T || q.S < 0 || q.S >= 10 || q.T < 0 || q.T >= 10 {
			t.Fatalf("bad query %+v", q)
		}
	}
	// Deterministic under seed.
	qs2 := RandomQueries(10, 50, 1)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestSchemeString(t *testing.T) {
	if SchemeShortestPath.String() != "shortest-path" || SchemeGreedy.String() != "greedy" ||
		SchemeCompass.String() != "compass" || Scheme(0).String() != "unknown" {
		t.Error("scheme strings wrong")
	}
}

func TestRouteOutOfRange(t *testing.T) {
	g, pts := lineWorld()
	r, err := NewRouter(g, pts)
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	cases := []struct {
		name    string
		s, d    int
		wantErr bool
	}{
		{"negative src", -1, 1, true},
		{"negative dst", 1, -1, true},
		{"src == n", n, 1, true},
		{"dst == n", 1, n, true},
		{"src far out", n + 100, 0, true},
		{"both out", -3, n + 3, true},
		{"first vertex ok", 0, n - 1, false},
		{"last vertex ok", n - 1, 0, false},
		{"self route ok", 2, 2, false},
	}
	for _, scheme := range []Scheme{SchemeShortestPath, SchemeGreedy, SchemeCompass} {
		for _, c := range cases {
			route, err := r.Route(scheme, c.s, c.d)
			if c.wantErr {
				if !errors.Is(err, ErrOutOfRange) {
					t.Errorf("%s/%s: err = %v, want ErrOutOfRange", scheme, c.name, err)
				}
				continue
			}
			if err != nil {
				t.Errorf("%s/%s: unexpected error %v", scheme, c.name, err)
			} else if len(route.Path) == 0 || route.Path[0] != c.s {
				t.Errorf("%s/%s: route = %+v", scheme, c.name, route)
			}
		}
	}
	if _, err := r.Route(Scheme(99), 0, 1); err == nil || errors.Is(err, ErrOutOfRange) {
		t.Errorf("unknown scheme: err = %v, want non-range error", err)
	}
}

func TestRouteWithReusesSearcher(t *testing.T) {
	g, pts := lineWorld()
	r, err := NewRouter(g, pts)
	if err != nil {
		t.Fatal(err)
	}
	srch := graph.NewSearcher(g.N())
	for i := 0; i < 3; i++ {
		route, err := r.RouteWith(srch, SchemeShortestPath, 0, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !route.Delivered || route.Cost != 3 {
			t.Errorf("pass %d: route = %+v", i, route)
		}
	}
}

// fixedOracle certifies a canned answer for one pair and declines others.
type fixedOracle struct {
	s, t int
	d    float64
}

func (o fixedOracle) Query(s, t int) (float64, bool) {
	if (s == o.s && t == o.t) || (s == o.t && t == o.s) {
		return o.d, true
	}
	return 0, false
}

func TestDistanceOracleFirstThenFallback(t *testing.T) {
	g, pts := lineWorld()
	r, err := NewRouter(g, pts)
	if err != nil {
		t.Fatal(err)
	}
	srch := graph.NewSearcher(g.N())

	// No oracle: fallback search answers, fromLabels false.
	d, fromLabels, err := r.Distance(srch, 0, 3)
	if err != nil || fromLabels || d != 3 {
		t.Fatalf("Distance(0,3) = %v, fromLabels=%v, err=%v; want 3 via search", d, fromLabels, err)
	}

	// Oracle certifies one pair; that pair short-circuits, others search.
	r.SetDistanceOracle(fixedOracle{s: 0, t: 3, d: 3})
	d, fromLabels, err = r.Distance(srch, 0, 3)
	if err != nil || !fromLabels || d != 3 {
		t.Fatalf("Distance(0,3) = %v, fromLabels=%v, err=%v; want 3 via labels", d, fromLabels, err)
	}
	d, fromLabels, err = r.Distance(srch, 1, 3)
	if err != nil || fromLabels || d != 2 {
		t.Fatalf("Distance(1,3) = %v, fromLabels=%v, err=%v; want 2 via fallback", d, fromLabels, err)
	}

	// Out-of-range endpoints wrap ErrOutOfRange, like Route.
	if _, _, err := r.Distance(srch, 0, 99); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("Distance(0,99) err = %v, want ErrOutOfRange", err)
	}

	// Unreachable pairs report graph.Inf, not an error.
	g2 := graph.New(2)
	r2, err := NewRouter(g2, pts[:2])
	if err != nil {
		t.Fatal(err)
	}
	d, _, err = r2.Distance(graph.NewSearcher(2), 0, 1)
	if err != nil || !math.IsInf(d, 1) {
		t.Fatalf("disconnected Distance = %v, err=%v; want +Inf", d, err)
	}
}
