package greedy

import (
	"math"
	"math/rand"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

func testInstance(t *testing.T, n int, seed int64) ([]geom.Point, *graph.Graph) {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Seed: seed},
		ubg.Config{Alpha: 0.8, Model: ubg.ModelAll, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst.Points, inst.G
}

// TestSpannerStretchGuarantee: SEQ-GREEDY output must be an exact t-spanner
// across several stretch values and instances.
func TestSpannerStretchGuarantee(t *testing.T) {
	for _, tval := range []float64{1.1, 1.5, 2.0, 3.0} {
		for seed := int64(0); seed < 3; seed++ {
			_, g := testInstance(t, 70, 100+seed)
			sp := Spanner(g, tval)
			if s := metrics.Stretch(g, sp); s > tval+1e-9 {
				t.Errorf("t=%v seed=%d: stretch %v", tval, seed, s)
			}
		}
	}
}

// TestSpannerSparsification: larger t must never produce more edges, and
// any t produces at most the input edges and at least n-1 (connected input).
func TestSpannerSparsification(t *testing.T) {
	_, g := testInstance(t, 80, 200)
	prev := math.MaxInt
	for _, tval := range []float64{1.05, 1.2, 1.5, 2, 4} {
		sp := Spanner(g, tval)
		if sp.M() > prev {
			t.Errorf("t=%v: %d edges, more than smaller t (%d)", tval, sp.M(), prev)
		}
		prev = sp.M()
		if sp.M() < g.N()-1 {
			t.Errorf("t=%v: spanner disconnected? %d edges", tval, sp.M())
		}
		if !sp.Connected() {
			t.Errorf("t=%v: spanner disconnected", tval)
		}
	}
}

// TestSpannerContainsMST: the greedy spanner always contains a minimum
// spanning tree (the classical fact: an edge whose endpoints have no
// t-path is in particular the current lightest cut edge).
func TestSpannerContainsMST(t *testing.T) {
	_, g := testInstance(t, 60, 300)
	sp := Spanner(g, 1.5)
	mstW := g.MSTWeight()
	spMstW := sp.MSTWeight()
	if math.Abs(mstW-spMstW) > 1e-9 {
		t.Errorf("MST weight through spanner %v != graph MST %v", spMstW, mstW)
	}
}

func TestSpannerIsSubgraph(t *testing.T) {
	_, g := testInstance(t, 50, 400)
	sp := Spanner(g, 1.3)
	if !sp.IsSubgraphOf(g) {
		t.Error("spanner contains non-input edges")
	}
}

// TestSpannerDegreeBounded: on a clique (complete Euclidean graph) greedy
// yields constant degree; check it stays modest as n grows.
func TestSpannerDegreeBoundedOnClique(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{20, 40, 80} {
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{rng.Float64(), rng.Float64()}
		}
		g := graph.New(n)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				g.AddEdge(i, j, geom.Dist(pts[i], pts[j]))
			}
		}
		sp := Spanner(g, 1.5)
		if d := sp.MaxDegree(); d > 14 {
			t.Errorf("n=%d: clique greedy degree %d suspiciously high", n, d)
		}
	}
}

func TestRunSkipsExistingEdges(t *testing.T) {
	sp := graph.New(3)
	sp.AddEdge(0, 1, 1)
	added := Run(sp, []graph.Edge{{U: 0, V: 1, W: 1}}, 2)
	if len(added) != 0 {
		t.Errorf("re-added existing edge: %v", added)
	}
}

func TestRunRespectsExistingPaths(t *testing.T) {
	sp := graph.New(3)
	sp.AddEdge(0, 1, 1)
	sp.AddEdge(1, 2, 1)
	// 0-2 weight 2: path 0-1-2 has length 2 <= t*2 for t >= 1.
	added := Run(sp, []graph.Edge{{U: 0, V: 2, W: 2}}, 1.0001)
	if len(added) != 0 {
		t.Error("edge added despite existing t-path")
	}
	// But with weight 1.5 the path (2) exceeds t*1.5 for t = 1.2.
	added = Run(sp, []graph.Edge{{U: 0, V: 2, W: 1.5}}, 1.2)
	if len(added) != 1 {
		t.Error("edge not added although no t-path exists")
	}
}

func TestSortEdgesDeterministic(t *testing.T) {
	edges := []graph.Edge{
		{U: 2, V: 3, W: 1}, {U: 0, V: 1, W: 1}, {U: 0, V: 2, W: 0.5},
	}
	SortEdges(edges)
	if edges[0].W != 0.5 || edges[1].U != 0 || edges[2].U != 2 {
		t.Errorf("sort order wrong: %v", edges)
	}
}

func TestCliqueEdgesComplete(t *testing.T) {
	members := []int{3, 1, 5}
	edges := CliqueEdges(members, func(u, v int) float64 { return float64(u + v) })
	if len(edges) != 3 {
		t.Fatalf("clique edge count = %d, want 3", len(edges))
	}
	for _, e := range edges {
		if e.U >= e.V {
			t.Errorf("non-canonical edge %+v", e)
		}
	}
	// Sorted by weight: 1+3=4, 1+5=6, 3+5=8.
	if edges[0].W != 4 || edges[1].W != 6 || edges[2].W != 8 {
		t.Errorf("weights wrong: %v", edges)
	}
}

// TestSpannerWeightNearMST: greedy spanner weight should be a small multiple
// of the MST weight (Das–Narasimhan; here just an empirical band).
func TestSpannerWeightNearMST(t *testing.T) {
	_, g := testInstance(t, 100, 500)
	sp := Spanner(g, 1.5)
	ratio := sp.TotalWeight() / g.MSTWeight()
	if ratio > 8 {
		t.Errorf("weight ratio %v implausibly high for t=1.5", ratio)
	}
}

// TestAcceptMatchesRun pins the extracted acceptance rule against Run: an
// edge is accepted exactly when Run would have added it at that point.
func TestAcceptMatchesRun(t *testing.T) {
	_, g := testInstance(t, 60, 7)
	edges := g.Edges()
	const tt = 1.5
	sp := graph.New(g.N())
	ref := graph.New(g.N())
	refAdded := Run(ref, edges, tt)
	s := graph.AcquireSearcher(g.N())
	defer graph.ReleaseSearcher(s)
	var added []graph.Edge
	for _, e := range edges {
		if Accept(s, sp, e, tt) {
			sp.AddEdge(e.U, e.V, e.W)
			added = append(added, e)
		}
	}
	if len(added) != len(refAdded) {
		t.Fatalf("Accept loop added %d edges, Run added %d", len(added), len(refAdded))
	}
	for i := range added {
		if added[i] != refAdded[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, added[i], refAdded[i])
		}
	}
	// Accept must not mutate the spanner.
	m := sp.M()
	Accept(s, sp, edges[0], tt)
	if sp.M() != m {
		t.Fatal("Accept mutated the spanner")
	}
}
