// Package greedy implements the classical sequential greedy spanner
// algorithm SEQ-GREEDY (paper §1.4, after Das–Narasimhan):
//
//	order edges by non-decreasing weight; for each edge {u,v}, add it to
//	the spanner unless the spanner already contains a uv-path of length
//	at most t·w(u,v).
//
// On complete Euclidean graphs (and, as the paper shows, on α-UBGs) the
// output is a t-spanner with O(1) maximum degree and weight O(w(MST)).
// SEQ-GREEDY is used three ways in this repository: as the strongest
// sequential baseline, as the per-clique solver inside phase 0 of the
// relaxed greedy algorithm (PROCESS-SHORT-EDGES), and as the reference
// implementation differential tests compare against.
package greedy

import (
	"topoctl/internal/graph"
)

// Run processes edges in the given order against the (mutable) spanner sp:
// an edge is added unless sp already contains a path between its endpoints
// of length at most t times the edge weight. Already-present edges are
// skipped. It returns the edges actually added.
//
// Run is the shared greedy core: SEQ-GREEDY is Run over all edges sorted by
// weight starting from an empty spanner, and phase 0 of the relaxed
// algorithm is Run over each short-edge clique.
func Run(sp *graph.Graph, edges []graph.Edge, t float64) []graph.Edge {
	// One Searcher serves every per-edge query: greedy makes O(m) of them,
	// so sharing the scratch arrays keeps the loop allocation-free.
	s := graph.AcquireSearcher(sp.N())
	defer graph.ReleaseSearcher(s)
	var added []graph.Edge
	for _, e := range edges {
		if !Accept(s, sp, e, t) {
			continue
		}
		sp.AddEdge(e.U, e.V, e.W)
		added = append(added, e)
	}
	return added
}

// RunCount is Run for callers that only need how many edges were added:
// it never accumulates the added slice, so a full SEQ-GREEDY pass performs
// zero allocations beyond what AddEdge needs for row growth.
func RunCount(sp *graph.Graph, edges []graph.Edge, t float64) int {
	s := graph.AcquireSearcher(sp.N())
	defer graph.ReleaseSearcher(s)
	added := 0
	for _, e := range edges {
		if !Accept(s, sp, e, t) {
			continue
		}
		sp.AddEdge(e.U, e.V, e.W)
		added++
	}
	return added
}

// Accept is the greedy edge-acceptance rule in isolation: edge e belongs in
// spanner sp iff sp neither contains it nor t-spans it (no path between its
// endpoints of length at most t·w(e)). Accept does not modify sp; callers
// that accept the edge must add it themselves. It is shared by Run and by
// the incremental repair passes of internal/dynamic, which replay the rule
// over only the edges whose certifying paths a topology change may have
// broken.
//
// The rule only needs existence, not the exact detour length, so it runs
// on the bidirectional existence kernel (Searcher.ReachableWithin), which
// stops at the first meeting within the bound.
func Accept(s *graph.Searcher, sp *graph.Graph, e graph.Edge, t float64) bool {
	if sp.HasEdge(e.U, e.V) {
		return false
	}
	return !s.ReachableWithin(sp, e.U, e.V, t*e.W)
}

// Spanner runs SEQ-GREEDY on g with stretch factor t and returns the
// resulting spanner as a new graph on the same vertex set. g only needs to
// be readable; the spanner itself is always built as a mutable graph.
func Spanner(g graph.Topology, t float64) *graph.Graph {
	// Greedy spanners of the metrics this repository builds on have O(1)
	// maximum degree; pre-reserving a few halfedges per row in one shared
	// slab removes the per-row append growth that otherwise dominates the
	// build's allocation count.
	sp := graph.NewWithDegree(g.N(), 8)
	RunCount(sp, graph.SortedEdges(g), t)
	return sp
}

// SortEdges sorts an edge slice in the canonical greedy order: by weight,
// then (U, V) lexicographically for determinism. It is the same order as
// graph.SortEdgesCanonical and delegates to it (generic sort, no
// reflection) — candidate sorting is on the SEQ-GREEDY and repair hot
// paths.
func SortEdges(edges []graph.Edge) {
	graph.SortEdgesCanonical(edges)
}

// CliqueEdges returns all pairwise edges among the given members, weighted
// by the provided weight function, in canonical greedy order. It is the
// input builder for phase 0: by Lemma 1 every connected component of the
// short-edge graph G_0 induces a clique in G, so all pairwise edges exist in
// the underlying α-UBG.
func CliqueEdges(members []int, weight func(u, v int) float64) []graph.Edge {
	var edges []graph.Edge
	for i := 0; i < len(members); i++ {
		for j := i + 1; j < len(members); j++ {
			u, v := members[i], members[j]
			edges = append(edges, graph.NewEdge(u, v, weight(u, v)))
		}
	}
	SortEdges(edges)
	return edges
}
