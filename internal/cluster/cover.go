// Package cluster implements the clustering machinery of the paper: cluster
// covers of the partial spanner (§2.2.1, §3.2.1) and the Das–Narasimhan
// cluster graph used to answer shortest-path queries approximately
// (§2.2.3). Both the sequential peeling construction and the MIS-based
// distributed construction are provided; they produce different covers but
// both satisfy the cover contract (radius bound, full coverage, separated
// centers), which is what all downstream steps rely on.
package cluster

import (
	"fmt"
	"sort"

	"topoctl/internal/graph"
)

// Cover is a cluster cover of a graph: every vertex belongs to exactly one
// cluster (we materialize the cover as a partition; the paper allows
// overlap, and a partition is a special case), every cluster has
// shortest-path radius at most Radius around its center, and distinct
// centers are more than Radius apart in the underlying graph metric
// (guaranteed by both constructions below).
type Cover struct {
	// Radius is the cover radius (in the graph's weight units).
	Radius float64
	// Center[v] is the cluster center vertex of v (Center[c] == c for
	// centers).
	Center []int
	// Dist[v] is the shortest-path distance from Center[v] to v in the
	// clustered graph; Dist[c] == 0 for centers.
	Dist []float64
	// Centers lists all cluster centers in increasing vertex order.
	Centers []int
	// Members maps each center to its member vertices (including itself),
	// sorted.
	Members map[int][]int
}

// IsCenter reports whether v is a cluster center.
func (c *Cover) IsCenter(v int) bool { return c.Center[v] == v }

// finalize populates Centers and Members from Center.
func (c *Cover) finalize() {
	c.Members = make(map[int][]int)
	for v, ctr := range c.Center {
		c.Members[ctr] = append(c.Members[ctr], v)
	}
	c.Centers = c.Centers[:0]
	for ctr, mem := range c.Members {
		sort.Ints(mem)
		c.Centers = append(c.Centers, ctr)
	}
	sort.Ints(c.Centers)
}

// GreedyCover builds a cluster cover of g with the given radius by
// sequential peeling (§2.2.1): repeatedly take the smallest-ID uncovered
// vertex u, make it a center, and claim every still-uncovered vertex within
// shortest-path distance radius of u. Centers are pairwise more than radius
// apart because a later center was, by construction, not claimed by any
// earlier one.
func GreedyCover(g graph.Topology, radius float64) *Cover {
	n := g.N()
	c := &Cover{Radius: radius, Center: make([]int, n), Dist: make([]float64, n)}
	for i := range c.Center {
		c.Center[i] = -1
	}
	s := graph.AcquireSearcher(n)
	defer graph.ReleaseSearcher(s)
	for u := 0; u < n; u++ {
		if c.Center[u] != -1 {
			continue
		}
		for _, vd := range s.Ball(g, u, radius) {
			if c.Center[vd.V] == -1 {
				c.Center[vd.V] = u
				c.Dist[vd.V] = vd.D
			}
		}
	}
	c.finalize()
	return c
}

// CentersBySize returns the cluster centers ordered by decreasing member
// count, ties broken by increasing vertex id. Big clusters first is the
// landmark-quality heuristic the hub-label oracle (internal/labels) seeds
// its vertex ordering with: a center that covers many vertices sits on many
// shortest paths, so ranking it early keeps the pruned label sets small.
func (c *Cover) CentersBySize() []int {
	out := append([]int(nil), c.Centers...)
	sort.Slice(out, func(i, j int) bool {
		si, sj := len(c.Members[out[i]]), len(c.Members[out[j]])
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// CoverFromCenters builds a cover with the given centers: every vertex
// attaches to the center with the highest ID among those within radius
// (matching the paper's distributed attachment rule, §3.2.1). It returns an
// error if some vertex is not within radius of any center — i.e. the center
// set is not dominating at this radius.
func CoverFromCenters(g graph.Topology, radius float64, centers []int) (*Cover, error) {
	n := g.N()
	c := &Cover{Radius: radius, Center: make([]int, n), Dist: make([]float64, n)}
	for i := range c.Center {
		c.Center[i] = -1
	}
	s := graph.AcquireSearcher(n)
	defer graph.ReleaseSearcher(s)
	for _, ctr := range centers {
		for _, vd := range s.Ball(g, ctr, radius) {
			// Highest-ID center within radius wins the attachment.
			if cur := c.Center[vd.V]; cur == -1 || ctr > cur {
				c.Center[vd.V], c.Dist[vd.V] = ctr, vd.D
			}
		}
	}
	// Centers own themselves. When centers come from an MIS of the
	// "within radius" graph no center lies in another's ball, so this only
	// matters for hand-constructed center sets.
	for _, ctr := range centers {
		c.Center[ctr], c.Dist[ctr] = ctr, 0
	}
	for v := 0; v < n; v++ {
		if c.Center[v] == -1 {
			return nil, fmt.Errorf("cluster: vertex %d not covered by any center at radius %v", v, radius)
		}
	}
	c.finalize()
	return c, nil
}

// Check verifies the cover contract against g and returns a list of
// violations (empty means the cover is valid): every vertex covered, all
// member distances within radius and consistent with shortest paths, and
// centers pairwise more than radius apart.
func (c *Cover) Check(g graph.Topology) []string {
	var out []string
	const eps = 1e-9
	for v, ctr := range c.Center {
		if ctr == -1 {
			out = append(out, fmt.Sprintf("vertex %d uncovered", v))
			continue
		}
		if c.Dist[v] > c.Radius+eps {
			out = append(out, fmt.Sprintf("vertex %d at distance %v > radius %v", v, c.Dist[v], c.Radius))
		}
	}
	s := graph.AcquireSearcher(g.N())
	defer graph.ReleaseSearcher(s)
	for _, ctr := range c.Centers {
		ball := make(map[int]float64)
		for _, vd := range s.Ball(g, ctr, c.Radius) {
			ball[vd.V] = vd.D
		}
		for _, other := range c.Centers {
			if other == ctr {
				continue
			}
			if d, ok := ball[other]; ok && d <= c.Radius+eps {
				out = append(out, fmt.Sprintf("centers %d and %d within radius (%v)", ctr, other, d))
			}
		}
		// Member distances must match shortest paths.
		for _, v := range c.Members[ctr] {
			d, ok := ball[v]
			if !ok {
				out = append(out, fmt.Sprintf("member %d unreachable from center %d within radius", v, ctr))
				continue
			}
			if diff := c.Dist[v] - d; diff > eps || diff < -eps {
				out = append(out, fmt.Sprintf("member %d distance %v != shortest path %v", v, c.Dist[v], d))
			}
		}
	}
	return out
}
