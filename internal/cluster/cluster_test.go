package cluster

import (
	"math"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/greedy"
	"topoctl/internal/mis"
	"topoctl/internal/ubg"
)

// testSpanner builds a partial spanner to cluster over: a greedy 1.5-spanner
// of a random UBG (a realistic G'_{i-1}).
func testSpanner(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Seed: seed},
		ubg.Config{Alpha: 0.8, Model: ubg.ModelAll, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return greedy.Spanner(inst.G, 1.5)
}

func TestGreedyCoverContract(t *testing.T) {
	sp := testSpanner(t, 90, 600)
	for _, radius := range []float64{0.05, 0.2, 0.5, 1.5} {
		cov := GreedyCover(sp, radius)
		if errs := cov.Check(sp); len(errs) > 0 {
			t.Errorf("radius %v: %v", radius, errs)
		}
	}
}

func TestGreedyCoverExtremes(t *testing.T) {
	sp := testSpanner(t, 50, 601)
	// Radius 0: every vertex is its own center.
	cov := GreedyCover(sp, 0)
	if len(cov.Centers) != sp.N() {
		t.Errorf("radius 0: %d centers, want %d", len(cov.Centers), sp.N())
	}
	// Huge radius on a connected graph: one center.
	cov = GreedyCover(sp, 1e9)
	if len(cov.Centers) != 1 {
		t.Errorf("huge radius: %d centers, want 1", len(cov.Centers))
	}
	if cov.Centers[0] != 0 {
		t.Errorf("huge radius center = %d, want 0 (smallest ID first)", cov.Centers[0])
	}
}

func TestGreedyCoverDisconnected(t *testing.T) {
	g := graph.New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	cov := GreedyCover(g, 10)
	if len(cov.Centers) != 2 {
		t.Errorf("disconnected cover: %d centers, want 2", len(cov.Centers))
	}
	if errs := cov.Check(g); len(errs) > 0 {
		t.Errorf("violations: %v", errs)
	}
}

// TestCoverFromCentersMatchesPaperRule verifies the distributed attachment:
// centers from an MIS of the radius-proximity graph, members attach to the
// highest-ID center in range.
func TestCoverFromCentersMatchesPaperRule(t *testing.T) {
	sp := testSpanner(t, 80, 602)
	radius := 0.3
	// Build the proximity graph J.
	n := sp.N()
	adj := make([][]int, n)
	for u := 0; u < n; u++ {
		for v := range sp.DijkstraBounded(u, radius) {
			if v != u {
				adj[u] = append(adj[u], v)
			}
		}
	}
	in := mis.Greedy(adj)
	var centers []int
	for v, ok := range in {
		if ok {
			centers = append(centers, v)
		}
	}
	cov, err := CoverFromCenters(sp, radius, centers)
	if err != nil {
		t.Fatal(err)
	}
	if errs := cov.Check(sp); len(errs) > 0 {
		t.Errorf("violations: %v", errs)
	}
	// Attachment rule: every non-center attaches to the highest-ID center
	// within radius.
	for v := 0; v < n; v++ {
		if cov.IsCenter(v) {
			continue
		}
		ball := sp.DijkstraBounded(v, radius)
		bestCenter := -1
		for x := range ball {
			if in[x] && x > bestCenter {
				bestCenter = x
			}
		}
		if cov.Center[v] != bestCenter {
			t.Fatalf("vertex %d attached to %d, want %d", v, cov.Center[v], bestCenter)
		}
	}
}

func TestCoverFromCentersRejectsNonDominating(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1)
	// Vertex 2 isolated; centers {0} cannot cover it.
	if _, err := CoverFromCenters(g, 5, []int{0}); err == nil {
		t.Error("non-dominating center set accepted")
	}
}

// TestClusterGraphLemma5InterWeightBound checks the Lemma 5 bound under its
// own precondition: every G'-edge is no longer than W_{i-1} (we build the
// spanner from a radius-0.3 UBG and use w >= 0.3, so no rescue edges arise).
func TestClusterGraphLemma5InterWeightBound(t *testing.T) {
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: 100, Dim: 2, Seed: 603},
		ubg.Config{Alpha: 0.3, Model: ubg.ModelNone, Seed: 603},
	)
	if err != nil {
		t.Fatal(err)
	}
	sp := greedy.Spanner(inst.G, 1.5)
	delta := 0.1
	for _, w := range []float64{0.3, 0.4, 0.8} {
		cov := GreedyCover(sp, delta*w)
		cg := BuildClusterGraph(sp, cov, w, (2*delta+1)*w, 0)
		if cg.MaxInterWeight > (2*delta+1)*w+1e-9 {
			t.Errorf("w=%v: inter weight %v exceeds Lemma 5 bound %v", w, cg.MaxInterWeight, (2*delta+1)*w)
		}
	}
}

// TestClusterGraphRescuePass: a crossing G'-edge longer than W_{i-1} (the
// phase-0 clique situation) must still produce an inter-cluster edge, so H
// stays faithful to the paper's unconditional condition (ii).
func TestClusterGraphRescuePass(t *testing.T) {
	// Two tight clumps joined by one long edge of length 0.8 >> w = 0.1.
	g := graph.New(4)
	g.AddEdge(0, 1, 0.01)
	g.AddEdge(2, 3, 0.01)
	g.AddEdge(1, 2, 0.8)
	delta := 0.1
	w := 0.1
	cov := GreedyCover(g, delta*w)
	cg := BuildClusterGraph(g, cov, w, (2*delta+1)*w, 0)
	// Centers of 1 and 2 differ; the crossing edge must yield an H inter-
	// edge despite sp(center(1), center(2)) ≈ 0.8 > crossBound.
	a, b := cov.Center[1], cov.Center[2]
	if a == b {
		t.Fatal("test scene broken: endpoints share a cluster")
	}
	if wgt, ok := cg.H.EdgeWeight(a, b); !ok || wgt < 0.8-0.03 {
		t.Errorf("rescue inter-edge missing or mis-weighted: %v %v", wgt, ok)
	}
	// With a rescueBound below the edge weight the rescue must be skipped.
	cg2 := BuildClusterGraph(g, cov, w, (2*delta+1)*w, 0.5)
	if _, ok := cg2.H.EdgeWeight(a, b); ok {
		t.Error("rescueBound did not cap the rescue search")
	}
}

// TestClusterGraphLemma7Distortion: for query-edge-like pairs (Euclidean
// distance in (W, r·W], the Lemma 7 precondition), the H-path must satisfy
// L1 <= L2 and stay within a constant distortion band. The stated
// (1+6δ)/(1−2δ) factor is checked with a 2×+1 cushion: on discrete sparse
// partial spanners a length-≈W path can need two condition-(i) jumps,
// pushing the ratio toward 2 regardless of δ (the Das–Narasimhan proof
// assumes their complete-Euclidean context); the algorithm's guarantees
// only need O(1), which this asserts.
func TestClusterGraphLemma7Distortion(t *testing.T) {
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: 90, Dim: 2, Seed: 604},
		ubg.Config{Alpha: 0.8, Model: ubg.ModelAll, Seed: 604},
	)
	if err != nil {
		t.Fatal(err)
	}
	sp := greedy.Spanner(inst.G, 1.5)
	delta := 0.08
	w := 0.35
	cov := GreedyCover(sp, delta*w)
	cg := BuildClusterGraph(sp, cov, w, (2*delta+1)*w, 0)
	factor := (1 + 6*delta) / (1 - 2*delta)
	checked := 0
	for u := 0; u < sp.N(); u += 3 {
		dg := sp.DijkstraBounded(u, 3*w)
		for v, l1 := range dg {
			if v == u {
				continue
			}
			duv := geom.Dist(inst.Points[u], inst.Points[v])
			if duv <= w || duv > 1.3*w {
				continue
			}
			l2, found := cg.H.DijkstraTarget(u, v, 8*factor*l1)
			if !found {
				t.Fatalf("no H-path for pair (%d,%d) with G'-distance %v", u, v, l1)
			}
			if l2 < l1-1e-9 {
				t.Fatalf("H-path shorter than G'-path: %v < %v", l2, l1)
			}
			if l2 > (2*factor+1)*l1 {
				t.Fatalf("H distortion %v/%v = %v outside the constant band (Lemma 7 factor %v)", l2, l1, l2/l1, factor)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no pairs checked")
	}
}

// TestClusterGraphLemma6InterDegreeConstant: inter-cluster degree must not
// grow with n.
func TestClusterGraphLemma6InterDegreeConstant(t *testing.T) {
	delta := 0.1
	w := 0.3
	var degs []int
	for _, n := range []int{60, 120, 240} {
		sp := testSpanner(t, n, 605)
		cov := GreedyCover(sp, delta*w)
		cg := BuildClusterGraph(sp, cov, w, (2*delta+1)*w, 0)
		degs = append(degs, cg.MaxInterDegree())
	}
	if degs[2] > 3*degs[0]+6 {
		t.Errorf("inter-cluster degree grows with n: %v", degs)
	}
}

// TestClusterGraphQueryConsistentWithSpanner: a "yes" answer on H implies a
// G'-path within the same bound (Lemma 7 first inequality).
func TestClusterGraphQueryConsistentWithSpanner(t *testing.T) {
	sp := testSpanner(t, 80, 606)
	delta := 0.1
	w := 0.4
	cov := GreedyCover(sp, delta*w)
	cg := BuildClusterGraph(sp, cov, w, (2*delta+1)*w, 0)
	for u := 0; u < sp.N(); u += 5 {
		for v := u + 3; v < sp.N(); v += 11 {
			bound := 1.5 * w
			if _, ok := cg.Query(u, v, bound); ok {
				if _, ok2 := sp.DijkstraTarget(u, v, bound); !ok2 {
					t.Fatalf("H said yes within %v but G' has no such path (%d,%d)", bound, u, v)
				}
			}
		}
	}
}

func TestClusterGraphIntraEdgesMatchCoverDistances(t *testing.T) {
	sp := testSpanner(t, 70, 607)
	cov := GreedyCover(sp, 0.25)
	cg := BuildClusterGraph(sp, cov, 0.5, 0.7, 0)
	for _, ctr := range cov.Centers {
		for _, v := range cov.Members[ctr] {
			if v == ctr {
				continue
			}
			got, ok := cg.H.EdgeWeight(ctr, v)
			if !ok {
				t.Fatalf("missing intra edge %d-%d", ctr, v)
			}
			if math.Abs(got-cov.Dist[v]) > 1e-12 {
				t.Fatalf("intra weight %v != cover distance %v", got, cov.Dist[v])
			}
		}
	}
}

func TestCentersBySize(t *testing.T) {
	sp := testSpanner(t, 90, 604)
	cov := GreedyCover(sp, 0.3)
	order := cov.CentersBySize()
	if len(order) != len(cov.Centers) {
		t.Fatalf("CentersBySize returned %d centers, cover has %d", len(order), len(cov.Centers))
	}
	seen := make(map[int]bool)
	for i, c := range order {
		if seen[c] {
			t.Fatalf("center %d repeated", c)
		}
		seen[c] = true
		if _, ok := cov.Members[c]; !ok {
			t.Fatalf("ordered vertex %d is not a center", c)
		}
		if i > 0 {
			prev := order[i-1]
			sp1, s := len(cov.Members[prev]), len(cov.Members[c])
			if sp1 < s || (sp1 == s && prev > c) {
				t.Fatalf("order violated at %d: center %d (size %d) before %d (size %d)", i, prev, sp1, c, s)
			}
		}
	}
	// The original Centers slice must stay untouched (sorted by id).
	for i := 1; i < len(cov.Centers); i++ {
		if cov.Centers[i-1] >= cov.Centers[i] {
			t.Fatal("CentersBySize disturbed Cover.Centers ordering")
		}
	}
}
