package cluster

import (
	"topoctl/internal/graph"
)

// ClusterGraph is the Das–Narasimhan approximation H of a partial spanner
// G' (paper §2.2.3, Figure 2). Its vertex set is that of G'; its edges are:
//
//   - intra-cluster edges {a, x} for each cluster center a and member x,
//     weighted sp_{G'}(a, x);
//   - inter-cluster edges {a, b} between centers with either
//     sp_{G'}(a, b) <= W (condition (i)) or some G'-edge crossing the two
//     clusters (condition (ii)), weighted sp_{G'}(a, b).
//
// Lemma 5 bounds every inter-cluster weight by (2δ+1)W; Lemma 7 shows paths
// in H overestimate paths in G' by at most (1+6δ)/(1−2δ); Lemma 8 shows the
// relevant query paths have O(1) hops. All three are validated empirically
// by this package's tests and the F2 experiment.
type ClusterGraph struct {
	// H is the cluster graph itself.
	H *graph.Graph
	// Cover is the cluster cover H was built from.
	Cover *Cover
	// W is the bin width W_{i-1} used for condition (i).
	W float64
	// InterEdges counts inter-cluster edges (for Lemma 6 checks).
	InterEdges int
	// MaxInterWeight is the largest inter-cluster edge weight seen (for
	// Lemma 5 checks).
	MaxInterWeight float64
}

// BuildClusterGraph constructs H for the partial spanner gp under the given
// cover. w is the current bin floor W_{i-1}; crossBound is the Lemma 5
// bound (2δ+1)·W_{i-1} used to truncate the per-center Dijkstra searches.
//
// Lemma 5's bound presumes every G'-edge is no longer than W_{i-1}, but
// phase-0 clique spanners may retain edges up to length α, so a crossing
// pair's center distance can exceed crossBound. The paper's condition (ii)
// is unconditional, so such pairs get a "rescue" point-to-point search
// bounded by (crossBound − w) + (weight of the lightest crossing edge) — a
// valid upper bound on sp(a, b) — further capped by rescueBound: inter-
// edges heavier than rescueBound can never participate in a query answer
// (queries are bounded by t·W_i), so omitting them is sound and keeps the
// construction local. Pass rescueBound <= 0 to disable the cap.
func BuildClusterGraph(gp graph.Topology, cov *Cover, w, crossBound, rescueBound float64) *ClusterGraph {
	n := gp.N()
	cg := &ClusterGraph{H: graph.New(n), Cover: cov, W: w}

	// Intra-cluster edges: center -> member with the cover's recorded
	// shortest-path distance.
	for _, ctr := range cov.Centers {
		for _, v := range cov.Members[ctr] {
			if v != ctr {
				cg.H.AddEdge(ctr, v, cov.Dist[v])
			}
		}
	}

	// Candidate inter-cluster pairs from condition (ii): a G'-edge with
	// endpoints in different clusters; remember the lightest crossing
	// weight for the rescue bound.
	crossing := make(map[[2]int]float64)
	for u := 0; u < n; u++ {
		cu := cov.Center[u]
		for _, h := range gp.Neighbors(u) {
			if u >= h.To {
				continue
			}
			cv := cov.Center[h.To]
			if cu == cv {
				continue
			}
			a, b := cu, cv
			if a > b {
				a, b = b, a
			}
			key := [2]int{a, b}
			if cur, ok := crossing[key]; !ok || h.W < cur {
				crossing[key] = h.W
			}
		}
	}

	// One bounded Dijkstra per center discovers condition (i) pairs
	// (centers within distance w) and the in-range condition (ii) pairs.
	isCenter := make([]bool, n)
	for _, ctr := range cov.Centers {
		isCenter[ctr] = true
	}
	type interEdge struct {
		a, b int
		w    float64
	}
	var inters []interEdge
	seen := make(map[[2]int]bool)
	s := graph.AcquireSearcher(n)
	defer graph.ReleaseSearcher(s)
	for _, a := range cov.Centers {
		for _, vd := range s.Ball(gp, a, crossBound) {
			if vd.V == a || !isCenter[vd.V] {
				continue
			}
			lo, hi := a, vd.V
			if lo > hi {
				lo, hi = hi, lo
			}
			key := [2]int{lo, hi}
			if seen[key] {
				continue
			}
			_, isCrossing := crossing[key]
			if vd.D <= w || isCrossing {
				seen[key] = true
				inters = append(inters, interEdge{a: lo, b: hi, w: vd.D})
			}
		}
	}
	// Rescue pass: crossing pairs whose center distance exceeds crossBound
	// (possible only via long phase-0 edges).
	for key, minCross := range crossing {
		if seen[key] {
			continue
		}
		bound := (crossBound - w) + minCross
		if rescueBound > 0 && bound > rescueBound {
			bound = rescueBound
		}
		if d, ok := s.DijkstraTarget(gp, key[0], key[1], bound); ok {
			inters = append(inters, interEdge{a: key[0], b: key[1], w: d})
		}
	}
	for _, e := range inters {
		cg.H.AddEdge(e.a, e.b, e.w)
		cg.InterEdges++
		if e.w > cg.MaxInterWeight {
			cg.MaxInterWeight = e.w
		}
	}
	return cg
}

// Query reports whether H contains a path between x and y of length at most
// bound, and its length if so. This is the approximate shortest-path query
// of §2.2.4: a "yes" is always safe (paths in H are no shorter than in G'),
// and a "no" is at most a (1+6δ)/(1−2δ) overestimate by Lemma 7.
func (cg *ClusterGraph) Query(x, y int, bound float64) (float64, bool) {
	return cg.H.DijkstraTarget(x, y, bound)
}

// PathDist returns sp_H(x, y) truncated at bound (graph.Inf, false beyond).
func (cg *ClusterGraph) PathDist(x, y int, bound float64) (float64, bool) {
	return cg.H.DijkstraTarget(x, y, bound)
}

// MaxInterDegree returns the maximum number of inter-cluster edges incident
// to any single center (the Lemma 6 quantity).
func (cg *ClusterGraph) MaxInterDegree() int {
	isCenter := make([]bool, cg.H.N())
	for _, ctr := range cg.Cover.Centers {
		isCenter[ctr] = true
	}
	max := 0
	for _, ctr := range cg.Cover.Centers {
		deg := 0
		for _, h := range cg.H.Neighbors(ctr) {
			if isCenter[h.To] {
				deg++
			}
		}
		if deg > max {
			max = deg
		}
	}
	return max
}
