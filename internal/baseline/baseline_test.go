package baseline

import (
	"math"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

func blInstance(t testing.TB, n int, alpha float64, seed int64) *ubg.Instance {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Seed: seed},
		ubg.Config{Alpha: alpha, Model: ubg.ModelAll, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestClassicalInclusionChain: MST ⊆ RNG ⊆ Gabriel — the textbook proximity
// graph hierarchy, here restricted to UDG edges (alpha = 1 keeps the
// restriction immaterial for MST edges).
func TestClassicalInclusionChain(t *testing.T) {
	inst := blInstance(t, 120, 1.0, 40_000)
	mst := graph.FromEdges(inst.G.N(), inst.G.MST())
	rng := RNG(inst.Points, inst.G)
	gg := Gabriel(inst.Points, inst.G)
	if !mst.IsSubgraphOf(rng) {
		t.Error("MST ⊄ RNG")
	}
	if !rng.IsSubgraphOf(gg) {
		t.Error("RNG ⊄ Gabriel")
	}
	if !gg.IsSubgraphOf(inst.G) {
		t.Error("Gabriel ⊄ G")
	}
}

// TestAllBaselinesConnectedOnUDG: on a connected UDG every baseline must
// stay connected (all contain an MST or are known connectivity-preserving).
func TestAllBaselinesConnectedOnUDG(t *testing.T) {
	inst := blInstance(t, 100, 1.0, 41_000)
	for _, kind := range Kinds() {
		g, err := Build(kind, inst.Points, inst.G, Options{T: 1.5})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if !g.Connected() {
			t.Errorf("%v: disconnected output", kind)
		}
		if !g.IsSubgraphOf(inst.G) {
			t.Errorf("%v: output is not a subgraph", kind)
		}
	}
}

// TestYaoDegreeAndSparsity: Yao keeps at most one outgoing edge per cone, so
// edge count is at most n·cones and out-degree per cone is 1 (total degree
// may exceed it due to incoming edges).
func TestYaoDegreeAndSparsity(t *testing.T) {
	inst := blInstance(t, 150, 1.0, 42_000)
	theta := math.Pi / 3
	yao := Yao(inst.Points, inst.G, theta)
	cones := geom.NewConePartition(2, theta).NumCones()
	if yao.M() > inst.G.N()*cones {
		t.Errorf("Yao too dense: %d edges", yao.M())
	}
	if yao.M() >= inst.G.M() && inst.G.M() > inst.G.N()*cones {
		t.Errorf("Yao did not sparsify: %d vs %d", yao.M(), inst.G.M())
	}
}

// TestYaoKeepsShortestPerCone: hand-built scene where node 0 sees two
// neighbors in one cone (keeps the closer) and node 2 has a closer
// same-cone alternative (so the union symmetrization does not resurrect the
// long edge).
func TestYaoKeepsShortestPerCone(t *testing.T) {
	points := []geom.Point{{0, 0}, {0.5, 0.01}, {0.9, 0.0}, {0.7, 0.0}}
	g := graph.New(4)
	g.AddEdge(0, 1, geom.Dist(points[0], points[1]))
	g.AddEdge(0, 2, geom.Dist(points[0], points[2]))
	g.AddEdge(2, 3, geom.Dist(points[2], points[3]))
	yao := Yao(points, g, math.Pi/3)
	if !yao.HasEdge(0, 1) {
		t.Error("closer same-cone neighbor dropped")
	}
	if !yao.HasEdge(2, 3) {
		t.Error("node 2's pick dropped")
	}
	if yao.HasEdge(0, 2) {
		t.Error("farther same-cone neighbor kept")
	}
}

// TestGabrielWitnessRule on a hand-built scene: the midpoint witness kills
// the long edge.
func TestGabrielWitnessRule(t *testing.T) {
	points := []geom.Point{{0, 0}, {1, 0}, {0.5, 0.05}}
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			g.AddEdge(i, j, geom.Dist(points[i], points[j]))
		}
	}
	gg := Gabriel(points, g)
	if gg.HasEdge(0, 1) {
		t.Error("edge with in-ball witness survived")
	}
	if !gg.HasEdge(0, 2) || !gg.HasEdge(1, 2) {
		t.Error("witness edges dropped")
	}
}

// TestRNGLuneRule: a witness in the lune kills the edge even when it is
// outside the diameter ball (RNG is stricter than Gabriel).
func TestRNGLuneRule(t *testing.T) {
	points := []geom.Point{{0, 0}, {1, 0}, {0.5, 0.6}}
	g := graph.New(3)
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			g.AddEdge(i, j, geom.Dist(points[i], points[j]))
		}
	}
	rng := RNG(points, g)
	gg := Gabriel(points, g)
	if rng.HasEdge(0, 1) {
		t.Error("RNG kept edge with lune witness")
	}
	if !gg.HasEdge(0, 1) {
		t.Error("Gabriel dropped edge whose witness is outside the diameter ball")
	}
}

// TestXTCSymmetricAndSparse: XTC output must be symmetric (by construction
// it is a simple undirected graph) and strictly sparser than a dense input.
func TestXTCSparse(t *testing.T) {
	inst := blInstance(t, 120, 1.0, 43_000)
	xtc := XTC(inst.G)
	if xtc.M() >= inst.G.M() {
		t.Errorf("XTC did not sparsify: %d vs %d", xtc.M(), inst.G.M())
	}
	// Known fact: on UDGs, XTC ⊆ RNG.
	rng := RNG(inst.Points, inst.G)
	if !xtc.IsSubgraphOf(rng) {
		t.Error("XTC ⊄ RNG on a UDG")
	}
}

// TestXTCWitnessRule on a triangle: the two short edges survive, the long
// one is dropped.
func TestXTCWitnessRule(t *testing.T) {
	g := graph.New(3)
	g.AddEdge(0, 1, 1.0)
	g.AddEdge(1, 2, 0.6)
	g.AddEdge(0, 2, 0.5)
	xtc := XTC(g)
	if xtc.HasEdge(0, 1) {
		t.Error("long triangle edge survived XTC")
	}
	if !xtc.HasEdge(1, 2) || !xtc.HasEdge(0, 2) {
		t.Error("short triangle edges dropped")
	}
}

// TestLMSTLowDegree: LMST is famously degree-<=6 in the plane; allow a
// small numerical cushion.
func TestLMSTLowDegree(t *testing.T) {
	inst := blInstance(t, 150, 1.0, 44_000)
	lmst := LMST(inst.G)
	if d := lmst.MaxDegree(); d > 6 {
		t.Errorf("LMST max degree %d > 6", d)
	}
	if !lmst.Connected() {
		t.Error("LMST disconnected")
	}
}

// TestGreedyBaselineStretch: the SEQ-GREEDY baseline honours its stretch.
func TestGreedyBaselineStretch(t *testing.T) {
	inst := blInstance(t, 90, 0.8, 45_000)
	sp, err := Build(KindGreedy, inst.Points, inst.G, Options{T: 1.4})
	if err != nil {
		t.Fatal(err)
	}
	if s := metrics.Stretch(inst.G, sp); s > 1.4+1e-9 {
		t.Errorf("greedy stretch %v", s)
	}
}

// TestMSTBaselineIsLightest: every other baseline weighs at least the MST.
func TestMSTBaselineIsLightest(t *testing.T) {
	inst := blInstance(t, 100, 1.0, 46_000)
	mst, _ := Build(KindMST, inst.Points, inst.G, Options{})
	w := mst.TotalWeight()
	for _, kind := range Kinds()[1:] {
		g, err := Build(kind, inst.Points, inst.G, Options{T: 1.5})
		if err != nil {
			t.Fatal(err)
		}
		if g.TotalWeight() < w-1e-9 {
			t.Errorf("%v weighs %v < MST %v", kind, g.TotalWeight(), w)
		}
	}
}

func TestBuildUnknownKind(t *testing.T) {
	inst := blInstance(t, 10, 1.0, 47_000)
	if _, err := Build(Kind(99), inst.Points, inst.G, Options{}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestKindString(t *testing.T) {
	want := map[Kind]string{
		KindMST: "mst", KindYao: "yao", KindGabriel: "gabriel", KindRNG: "rng",
		KindXTC: "xtc", KindLMST: "lmst", KindGreedy: "seq-greedy", Kind(0): "unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
}

// TestYaoEmptyAndTiny: degenerate inputs.
func TestYaoEmptyAndTiny(t *testing.T) {
	if Yao(nil, graph.New(0), 1).N() != 0 {
		t.Error("empty Yao wrong")
	}
	points := []geom.Point{{0, 0}, {0.5, 0}}
	g := graph.New(2)
	g.AddEdge(0, 1, 0.5)
	if !Yao(points, g, 1).HasEdge(0, 1) {
		t.Error("two-node Yao must keep the edge")
	}
}
