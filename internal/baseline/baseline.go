// Package baseline implements the classical topology-control structures the
// paper positions itself against (§1.3–1.4): Yao graphs, Gabriel graphs,
// relative neighborhood graphs (RNG), XTC (Wattenhofer–Zollinger), LMST
// (local MST), the plain MST, and the exact sequential greedy spanner.
// The T5 experiment compares all of them against the relaxed greedy output
// on stretch, degree, weight and power cost.
package baseline

import (
	"fmt"
	"sort"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/greedy"
)

// Kind names a baseline construction.
type Kind int

// Baseline kinds.
const (
	// KindMST is the minimum spanning tree of the input graph: the weight
	// lower bound for every connected topology, with unbounded stretch.
	KindMST Kind = iota + 1
	// KindYao keeps, per node and per cone of a Yao partition, the
	// shortest outgoing edge; the result is symmetrized by union.
	KindYao
	// KindGabriel keeps edge {u,v} iff the ball with diameter uv contains
	// no other node.
	KindGabriel
	// KindRNG keeps edge {u,v} iff no witness w has max(|uw|,|wv|) < |uv|
	// (the relative neighborhood graph, a subgraph of Gabriel).
	KindRNG
	// KindXTC is Wattenhofer–Zollinger's XTC: u drops its link to v iff
	// some w ranks better than v in both u's and v's orderings.
	KindXTC
	// KindLMST is Li–Hou–Sha's local MST: u keeps {u,v} iff v is u's
	// MST-neighbor in the MST of u's closed 1-hop neighborhood; the result
	// is symmetrized by intersection (the standard LMST- variant made
	// symmetric).
	KindLMST
	// KindGreedy is the exact sequential greedy t-spanner (SEQ-GREEDY).
	KindGreedy
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindMST:
		return "mst"
	case KindYao:
		return "yao"
	case KindGabriel:
		return "gabriel"
	case KindRNG:
		return "rng"
	case KindXTC:
		return "xtc"
	case KindLMST:
		return "lmst"
	case KindGreedy:
		return "seq-greedy"
	default:
		return "unknown"
	}
}

// Kinds lists every baseline in presentation order.
func Kinds() []Kind {
	return []Kind{KindMST, KindYao, KindGabriel, KindRNG, KindXTC, KindLMST, KindGreedy}
}

// Options tunes baseline construction.
type Options struct {
	// Theta is the cone angle for Yao (default π/3, i.e. >= 6 cones in the
	// plane, the classical choice guaranteeing connectivity).
	Theta float64
	// T is the stretch parameter for KindGreedy (default 1.5).
	T float64
}

// Build constructs the requested baseline topology over the α-UBG g
// embedded at points. Edge weights of the result are copied from g
// (Euclidean lengths).
func Build(kind Kind, points []geom.Point, g graph.Topology, opts Options) (*graph.Graph, error) {
	if opts.Theta <= 0 {
		opts.Theta = 1.0471975511965976 // π/3
	}
	if opts.T <= 1 {
		opts.T = 1.5
	}
	switch kind {
	case KindMST:
		return graph.FromEdges(g.N(), graph.MSTOf(g)), nil
	case KindYao:
		return Yao(points, g, opts.Theta), nil
	case KindGabriel:
		return Gabriel(points, g), nil
	case KindRNG:
		return RNG(points, g), nil
	case KindXTC:
		return XTC(g), nil
	case KindLMST:
		return LMST(g), nil
	case KindGreedy:
		return greedy.Spanner(g, opts.T), nil
	default:
		return nil, fmt.Errorf("baseline: unknown kind %d", kind)
	}
}

// Yao builds the Yao graph restricted to g's edges: for every node and
// every cone of a theta-partition, the shortest incident g-edge whose
// direction falls in the cone is kept. The union over directions makes the
// result symmetric.
func Yao(points []geom.Point, g graph.Topology, theta float64) *graph.Graph {
	if g.N() == 0 {
		return graph.New(0)
	}
	cp := geom.NewConePartition(points[0].Dim(), theta)
	out := graph.New(g.N())
	type pick struct {
		v int
		w float64
	}
	for u := 0; u < g.N(); u++ {
		best := make(map[int]pick)
		for _, h := range g.Neighbors(u) {
			c := cp.AssignEdge(points[u], points[h.To])
			cur, ok := best[c]
			if !ok || h.W < cur.w || (h.W == cur.w && h.To < cur.v) {
				best[c] = pick{v: h.To, w: h.W}
			}
		}
		for _, p := range best {
			if !out.HasEdge(u, p.v) {
				out.AddEdge(u, p.v, p.w)
			}
		}
	}
	return out
}

// Gabriel builds the Gabriel graph restricted to g's edges: {u,v} survives
// iff no third node lies strictly inside the ball with diameter uv. The
// witness search is restricted to the graph-neighbors of u and v, which is
// exhaustive on an α-UBG whenever |uv| <= α (every witness inside the
// diameter ball is within |uv| of both endpoints); for grey-zone edges the
// restriction can only keep extra edges, never drop a valid one.
func Gabriel(points []geom.Point, g graph.Topology) *graph.Graph {
	out := graph.New(g.N())
	for _, e := range g.EdgesUnordered() {
		mid := geom.Midpoint(points[e.U], points[e.V])
		r := e.W / 2
		if !hasWitnessInBall(points, g, e.U, e.V, mid, r) {
			out.AddEdge(e.U, e.V, e.W)
		}
	}
	return out
}

func hasWitnessInBall(points []geom.Point, g graph.Topology, u, v int, center geom.Point, r float64) bool {
	const eps = 1e-12
	check := func(w int) bool {
		return w != u && w != v && geom.Dist(points[w], center) < r-eps
	}
	for _, h := range g.Neighbors(u) {
		if check(h.To) {
			return true
		}
	}
	for _, h := range g.Neighbors(v) {
		if check(h.To) {
			return true
		}
	}
	return false
}

// RNG builds the relative neighborhood graph restricted to g's edges:
// {u,v} survives iff no witness w (again drawn from the neighbors of u and
// v, exhaustive by the lune geometry on an α-UBG) satisfies
// max(|uw|, |wv|) < |uv|.
func RNG(points []geom.Point, g graph.Topology) *graph.Graph {
	const eps = 1e-12
	out := graph.New(g.N())
	for _, e := range g.EdgesUnordered() {
		pu, pv := points[e.U], points[e.V]
		witness := false
		scan := func(w int) bool {
			if w == e.U || w == e.V {
				return false
			}
			pw := points[w]
			return geom.Dist(pu, pw) < e.W-eps && geom.Dist(pv, pw) < e.W-eps
		}
		for _, h := range g.Neighbors(e.U) {
			if scan(h.To) {
				witness = true
				break
			}
		}
		if !witness {
			for _, h := range g.Neighbors(e.V) {
				if scan(h.To) {
					witness = true
					break
				}
			}
		}
		if !witness {
			out.AddEdge(e.U, e.V, e.W)
		}
	}
	return out
}

// XTC implements Wattenhofer–Zollinger's XTC protocol: each node u orders
// its neighbors by (weight, id); u keeps its link to v unless some w exists
// that is better-ranked than v at BOTH u and v. The construction is
// symmetric by design and preserves connectivity of the input.
func XTC(g graph.Topology) *graph.Graph {
	n := g.N()
	// rank[u][w] = position of w in u's order; absent = not a neighbor.
	rank := make([]map[int]int, n)
	for u := 0; u < n; u++ {
		hs := append([]graph.Halfedge(nil), g.Neighbors(u)...)
		sort.Slice(hs, func(i, j int) bool {
			if hs[i].W != hs[j].W {
				return hs[i].W < hs[j].W
			}
			return hs[i].To < hs[j].To
		})
		rank[u] = make(map[int]int, len(hs))
		for i, h := range hs {
			rank[u][h.To] = i
		}
	}
	out := graph.New(n)
	for _, e := range g.EdgesUnordered() {
		u, v := e.U, e.V
		drop := false
		// A witness must be a common neighbor ranked above the partner at
		// both endpoints.
		for w, ru := range rank[u] {
			if w == v {
				continue
			}
			rv, ok := rank[v][w]
			if !ok {
				continue
			}
			if ru < rank[u][v] && rv < rank[v][u] {
				drop = true
				break
			}
		}
		if !drop {
			out.AddEdge(u, v, e.W)
		}
	}
	return out
}

// LMST implements the symmetric local MST: node u computes the MST of the
// subgraph induced by its closed neighborhood N[u] and nominates its tree
// neighbors; edge {u,v} survives iff each endpoint nominates the other.
func LMST(g graph.Topology) *graph.Graph {
	n := g.N()
	nominates := make([]map[int]bool, n)
	for u := 0; u < n; u++ {
		nominates[u] = localMSTNeighbors(g, u)
	}
	out := graph.New(n)
	for _, e := range g.EdgesUnordered() {
		if nominates[e.U][e.V] && nominates[e.V][e.U] {
			out.AddEdge(e.U, e.V, e.W)
		}
	}
	return out
}

// localMSTNeighbors returns the set of MST-neighbors of u in the subgraph
// induced by u's closed neighborhood.
func localMSTNeighbors(g graph.Topology, u int) map[int]bool {
	members := []int{u}
	for _, h := range g.Neighbors(u) {
		members = append(members, h.To)
	}
	idx := make(map[int]int, len(members))
	for i, v := range members {
		idx[v] = i
	}
	local := graph.New(len(members))
	for i, v := range members {
		for _, h := range g.Neighbors(v) {
			if j, ok := idx[h.To]; ok && i < j {
				local.AddEdge(i, j, h.W)
			}
		}
	}
	out := make(map[int]bool)
	for _, e := range local.MST() {
		if e.U == 0 {
			out[members[e.V]] = true
		} else if e.V == 0 {
			out[members[e.U]] = true
		}
	}
	return out
}
