package graph

import "sort"

// UnionFind is a disjoint-set forest with path compression and union by
// rank. It backs Kruskal's MST and connected-component computations.
type UnionFind struct {
	parent []int
	rank   []int
	count  int
}

// NewUnionFind returns a union-find over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{parent: make([]int, n), rank: make([]int, n), count: n}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing x and y, reporting whether a merge
// happened (false if they were already in the same set).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Count returns the number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// MST returns a minimum spanning forest of g as an edge list (Kruskal).
// For a connected graph this is a minimum spanning tree. Ties are broken
// deterministically by the canonical edge order.
func (g *Graph) MST() []Edge { return MSTOf(g) }

// MSTWeight returns the total weight of a minimum spanning forest of g.
func (g *Graph) MSTWeight() float64 { return MSTWeightOf(g) }

// MSTOf returns a minimum spanning forest of any read-only topology as an
// edge list (Kruskal over the canonical edge order).
func MSTOf(t Topology) []Edge {
	edges := SortedEdges(t)
	n := t.N()
	uf := NewUnionFind(n)
	var mst []Edge
	for _, e := range edges {
		if uf.Union(e.U, e.V) {
			mst = append(mst, e)
			if len(mst) == n-1 {
				break
			}
		}
	}
	return mst
}

// MSTWeightOf returns the total weight of a minimum spanning forest of t.
func MSTWeightOf(t Topology) float64 {
	var s float64
	for _, e := range MSTOf(t) {
		s += e.W
	}
	return s
}

// Components returns the connected components of g, each a sorted vertex
// slice; components are ordered by their smallest vertex.
func (g *Graph) Components() [][]int {
	uf := NewUnionFind(g.n)
	for u, hs := range g.adj {
		for _, h := range hs {
			uf.Union(u, h.To)
		}
	}
	byRoot := make(map[int][]int)
	for v := 0; v < g.n; v++ {
		r := uf.Find(v)
		byRoot[r] = append(byRoot[r], v)
	}
	comps := make([][]int, 0, len(byRoot))
	for _, c := range byRoot {
		sort.Ints(c)
		comps = append(comps, c)
	}
	sort.Slice(comps, func(i, j int) bool { return comps[i][0] < comps[j][0] })
	return comps
}

// Connected reports whether g is connected (vacuously true for n <= 1).
func (g *Graph) Connected() bool {
	if g.n <= 1 {
		return true
	}
	return len(g.BFSHops(0, -1)) == g.n
}

// IsSubgraphOf reports whether every edge of g appears in h (with any
// weight). Both graphs must have the same vertex count.
func (g *Graph) IsSubgraphOf(h *Graph) bool {
	if g.n != h.n {
		return false
	}
	for u, hs := range g.adj {
		for _, e := range hs {
			if u < e.To && !h.HasEdge(u, e.To) {
				return false
			}
		}
	}
	return true
}
