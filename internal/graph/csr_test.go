package graph

import (
	"math/rand"
	"testing"
)

// randEdges draws a random simple undirected weighted graph on n vertices.
func randEdges(n, m int, seed int64) []Edge {
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]bool)
	es := make([]Edge, 0, m)
	for len(es) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		es = append(es, Edge{U: u, V: v, W: 0.1 + rng.Float64()})
	}
	return es
}

func frozenEqual(t *testing.T, a, b *Frozen) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() || a.MaxDegree() != b.MaxDegree() {
		t.Fatalf("aggregates differ: n %d/%d m %d/%d maxdeg %d/%d",
			a.N(), b.N(), a.M(), b.M(), a.MaxDegree(), b.MaxDegree())
	}
	if da := a.TotalWeight() - b.TotalWeight(); da > 1e-9 || da < -1e-9 {
		t.Fatalf("total weight differs: %v vs %v", a.TotalWeight(), b.TotalWeight())
	}
	for u := 0; u < a.N(); u++ {
		ra, rb := a.Neighbors(u), b.Neighbors(u)
		if len(ra) != len(rb) {
			t.Fatalf("vertex %d degree differs: %d vs %d", u, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("vertex %d halfedge %d differs: %+v vs %+v", u, i, ra[i], rb[i])
			}
		}
	}
}

// TestCSRBuilderMatchesFreeze builds the same graph once through the
// mutable Graph + Freeze path and once through the count/Alloc/fill
// CSRBuilder path, and requires identical snapshots.
func TestCSRBuilderMatchesFreeze(t *testing.T) {
	const n, m = 200, 900
	es := randEdges(n, m, 7)

	g := New(n)
	for _, e := range es {
		g.AddEdge(e.U, e.V, e.W)
	}
	want := Freeze(g)

	b := NewCSRBuilder(n)
	for _, e := range es {
		b.Deg[e.U]++
		b.Deg[e.V]++
	}
	b.Alloc()
	fill := make([]int32, n)
	for _, e := range es {
		b.Row(e.U)[fill[e.U]] = Halfedge{To: e.V, W: e.W}
		fill[e.U]++
		b.Row(e.V)[fill[e.V]] = Halfedge{To: e.U, W: e.W}
		fill[e.V]++
	}
	got := b.Finish()
	frozenEqual(t, got, want)
}

func TestCSRBuilderEmpty(t *testing.T) {
	f := NewCSRBuilder(0).Finish()
	if f.N() != 0 || f.M() != 0 || f.MaxDegree() != 0 || f.TotalWeight() != 0 {
		t.Fatalf("empty CSR not empty: %d %d", f.N(), f.M())
	}
	// All-isolated: Finish without Alloc must still produce valid rows.
	f = NewCSRBuilder(5).Finish()
	if f.N() != 5 || f.M() != 0 {
		t.Fatalf("isolated CSR: n=%d m=%d", f.N(), f.M())
	}
	for u := 0; u < 5; u++ {
		if len(f.Neighbors(u)) != 0 {
			t.Fatalf("vertex %d not isolated", u)
		}
	}
}

func TestCSRBuilderRowCapacityClamped(t *testing.T) {
	b := NewCSRBuilder(3)
	b.Deg[0], b.Deg[1], b.Deg[2] = 1, 1, 2
	b.Alloc()
	r := b.Row(0)
	if cap(r) != 1 {
		t.Fatalf("row capacity %d leaks into the next row", cap(r))
	}
}

// TestNewWithDegreeEquivalent checks the pre-sized constructors behave
// exactly like New under AddEdge, including growth past the hint.
func TestNewWithDegreeEquivalent(t *testing.T) {
	const n = 64
	es := randEdges(n, 400, 11)

	plain := New(n)
	hinted := NewWithDegree(n, 4) // deliberately too small: rows must grow
	degs := make([]int32, n)
	for _, e := range es {
		degs[e.U]++
		degs[e.V]++
	}
	exact := NewWithDegrees(degs)
	for _, e := range es {
		plain.AddEdge(e.U, e.V, e.W)
		hinted.AddEdge(e.U, e.V, e.W)
		exact.AddEdge(e.U, e.V, e.W)
	}
	frozenEqual(t, Freeze(hinted), Freeze(plain))
	frozenEqual(t, Freeze(exact), Freeze(plain))

	// Removing from a slab-backed row must not corrupt neighbors.
	e := es[0]
	plain.RemoveEdge(e.U, e.V)
	hinted.RemoveEdge(e.U, e.V)
	exact.RemoveEdge(e.U, e.V)
	frozenEqual(t, Freeze(hinted), Freeze(plain))
	frozenEqual(t, Freeze(exact), Freeze(plain))
}

// TestThawSharedSlab checks the slab-backed Thaw: the thawed graph equals
// the frozen source, and mutating one thawed row never clobbers another
// (capacity clamping).
func TestThawSharedSlab(t *testing.T) {
	const n = 50
	es := randEdges(n, 200, 13)
	g := New(n)
	for _, e := range es {
		g.AddEdge(e.U, e.V, e.W)
	}
	f := Freeze(g)
	th := f.Thaw()
	frozenEqual(t, Freeze(th), f)

	// Grow one row: appends must copy out, not overwrite the shared slab.
	before := append([]Halfedge(nil), th.Neighbors(1)...)
	th.AddEdge(0, 49, 0.5)
	th.RemoveEdge(0, 49)
	got := th.Neighbors(1)
	if len(got) != len(before) {
		t.Fatalf("row 1 length changed by edits to row 0")
	}
	for i := range got {
		if got[i] != before[i] {
			t.Fatalf("row 1 corrupted by edits to row 0")
		}
	}
}
