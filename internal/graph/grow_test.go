package graph

import (
	"math/rand"
	"testing"
)

// TestGrowEdgeOpsOnGrownRange pins the interaction of Grow with the edge
// mutators and predicates across the old/new vertex boundary: edges may be
// added, queried, and removed on grown slots exactly like original ones,
// and out-of-range queries stay false rather than panicking.
func TestGrowEdgeOpsOnGrownRange(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)

	// Before growing, the future range is out of range for the predicates.
	if g.HasEdge(0, 5) || g.HasEdge(5, 0) {
		t.Fatal("HasEdge true beyond vertex range")
	}
	if g.RemoveEdge(2, 2) {
		t.Fatal("removed a self-loop that cannot exist")
	}

	g.Grow(8)
	if g.N() != 8 || g.M() != 2 {
		t.Fatalf("after Grow: n=%d m=%d", g.N(), g.M())
	}

	// Grown slots start isolated.
	for v := 3; v < 8; v++ {
		if g.Degree(v) != 0 {
			t.Fatalf("grown vertex %d has degree %d", v, g.Degree(v))
		}
	}

	// Cross-boundary and new-range edges behave like any other edge.
	g.AddEdge(2, 6, 3) // old <-> new
	g.AddEdge(6, 7, 4) // new <-> new
	if !g.HasEdge(6, 2) || !g.HasEdge(7, 6) {
		t.Fatal("edges on grown range not visible")
	}
	if w, ok := g.EdgeWeight(2, 6); !ok || w != 3 {
		t.Fatalf("cross-boundary weight %v/%v", w, ok)
	}
	if !g.RemoveEdge(6, 2) {
		t.Fatal("cross-boundary edge not removable")
	}
	if g.HasEdge(2, 6) || g.M() != 3 {
		t.Fatalf("removal left state n=%d m=%d", g.N(), g.M())
	}
	// Removing it again reports false.
	if g.RemoveEdge(2, 6) {
		t.Fatal("double remove reported true")
	}
	// The pre-existing edges survived the grow and the churn above.
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatal("original edges lost")
	}

	// A second Grow (and a no-op shrink attempt) keeps everything.
	g.Grow(8) // no-op
	g.Grow(4) // no-op: Grow never shrinks
	if g.N() != 8 {
		t.Fatalf("no-op grows changed n to %d", g.N())
	}
	g.Grow(12)
	if !g.HasEdge(6, 7) || g.M() != 3 {
		t.Fatal("second grow lost edges")
	}
	g.AddEdge(11, 0, 5)
	if !g.HasEdge(0, 11) {
		t.Fatal("edge to newest range missing")
	}
}

// TestGrowRemoveFuzz cross-checks RemoveEdge/HasEdge against the map-based
// reference while interleaving Grow calls, so the invariants hold across
// arbitrary grow points.
func TestGrowRemoveFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g := New(4)
	ref := newRef(4)
	for step := 0; step < 3000; step++ {
		switch r := rng.Float64(); {
		case r < 0.05:
			n := g.N() + 1 + rng.Intn(4)
			g.Grow(n)
			ref.n = n
		case r < 0.6:
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			if u == v || g.HasEdge(u, v) {
				continue
			}
			w := rng.Float64()
			g.AddEdge(u, v, w)
			ref.add(u, v, w)
		default:
			u, v := rng.Intn(g.N()), rng.Intn(g.N())
			got := g.RemoveEdge(u, v)
			want := ref.remove(u, v)
			if got != want {
				t.Fatalf("step %d: RemoveEdge(%d,%d) = %v, ref %v", step, u, v, got, want)
			}
		}
		if g.M() != len(ref.edges) {
			t.Fatalf("step %d: m=%d, ref %d", step, g.M(), len(ref.edges))
		}
	}
	// Full predicate sweep at the end.
	for u := 0; u < g.N(); u++ {
		for v := 0; v < g.N(); v++ {
			if u == v {
				continue
			}
			_, want := ref.edges[ref.key(u, v)]
			if got := g.HasEdge(u, v); got != want {
				t.Fatalf("HasEdge(%d,%d) = %v, ref %v", u, v, got, want)
			}
		}
	}
}
