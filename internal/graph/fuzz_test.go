package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// refGraph is a trivially-correct reference implementation: an edge map.
type refGraph struct {
	n     int
	edges map[[2]int]float64
}

func newRef(n int) *refGraph { return &refGraph{n: n, edges: map[[2]int]float64{}} }

func (r *refGraph) key(u, v int) [2]int {
	if u > v {
		u, v = v, u
	}
	return [2]int{u, v}
}

func (r *refGraph) add(u, v int, w float64) { r.edges[r.key(u, v)] = w }
func (r *refGraph) remove(u, v int) bool {
	k := r.key(u, v)
	if _, ok := r.edges[k]; !ok {
		return false
	}
	delete(r.edges, k)
	return true
}
func (r *refGraph) has(u, v int) bool { _, ok := r.edges[r.key(u, v)]; return ok }
func (r *refGraph) degree(u int) int {
	d := 0
	for k := range r.edges {
		if k[0] == u || k[1] == u {
			d++
		}
	}
	return d
}
func (r *refGraph) total() float64 {
	var s float64
	for _, w := range r.edges {
		s += w
	}
	return s
}

// TestGraphModelBasedFuzz drives random operation sequences through Graph
// and the reference map simultaneously, checking observable state after
// every operation. This is the mutation-correctness backstop for the
// adjacency-list swap-delete logic in RemoveEdge.
func TestGraphModelBasedFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		g := New(n)
		ref := newRef(n)
		for op := 0; op < 300; op++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			switch rng.Intn(3) {
			case 0: // add (skip duplicates to keep set semantics)
				if !ref.has(u, v) {
					w := rng.Float64()
					g.AddEdge(u, v, w)
					ref.add(u, v, w)
				}
			case 1: // remove
				got := g.RemoveEdge(u, v)
				want := ref.remove(u, v)
				if got != want {
					t.Fatalf("trial %d op %d: RemoveEdge(%d,%d) = %v, want %v", trial, op, u, v, got, want)
				}
			case 2: // probe
				if g.HasEdge(u, v) != ref.has(u, v) {
					t.Fatalf("trial %d op %d: HasEdge(%d,%d) mismatch", trial, op, u, v)
				}
			}
			// Invariants after every op.
			if g.M() != len(ref.edges) {
				t.Fatalf("trial %d op %d: M = %d, want %d", trial, op, g.M(), len(ref.edges))
			}
		}
		// Final deep comparison.
		for x := 0; x < n; x++ {
			if g.Degree(x) != ref.degree(x) {
				t.Fatalf("trial %d: degree(%d) = %d, want %d", trial, x, g.Degree(x), ref.degree(x))
			}
		}
		if d := g.TotalWeight() - ref.total(); d > 1e-9 || d < -1e-9 {
			t.Fatalf("trial %d: total weight off by %v", trial, d)
		}
		for _, e := range g.Edges() {
			w, ok := ref.edges[[2]int{e.U, e.V}]
			if !ok || w != e.W {
				t.Fatalf("trial %d: edge %+v not in reference", trial, e)
			}
		}
	}
}

// TestDijkstraAfterMutations: shortest paths must remain consistent with
// Floyd–Warshall after interleaved adds and removes (the spanner builders
// mutate graphs between queries constantly).
func TestDijkstraAfterMutations(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	g := New(10)
	for step := 0; step < 40; step++ {
		u, v := rng.Intn(10), rng.Intn(10)
		if u == v {
			continue
		}
		if g.HasEdge(u, v) {
			g.RemoveEdge(u, v)
		} else {
			g.AddEdge(u, v, 0.1+rng.Float64())
		}
		fw := g.FloydWarshall()
		src := rng.Intn(10)
		d := g.Dijkstra(src)
		for x := 0; x < 10; x++ {
			a, b := d[x], fw[src][x]
			if fmt.Sprintf("%.9f", a) != fmt.Sprintf("%.9f", b) {
				t.Fatalf("step %d: dist(%d,%d) = %v, want %v", step, src, x, a, b)
			}
		}
	}
}
