package graph_test

// Work-reduction and allocation pins for the bidirectional search core:
// the settled-vertex counter (Searcher.Stats) asserts the ≥2x exploration
// saving by count, independent of benchmark noise, and the steady-state
// allocation contract extends to the two-frontier kernels and the
// append-style path reconstruction.

import (
	"math"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/ubg"
)

// densityUBG generates a connected expected-degree-8 instance in the given
// dimension — constant realistic density, so point-to-point distances grow
// with n and the searches are non-trivial.
func densityUBG(t *testing.T, n, dim int, seed int64) *ubg.Instance {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: dim, Side: ubg.DensitySide(n, dim, 1, 8), Seed: seed},
		ubg.Config{Alpha: 0.75, Model: ubg.ModelAll, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestBidiSettlesFewer pins the point of the bidirectional kernel: over a
// fuzzed point-to-point query set — unbounded hits, tightly bounded
// misses, and spanner-style t·w acceptance probes, across the 2-D and 3-D
// deployments the repo serves — it settles at most 60% of the vertices the
// unidirectional reference kernel settles, on both the adjacency-list and
// the frozen CSR representation. The saving is dimension-dependent (two
// half-radius balls: ~πd²/2 vs πd² in the plane, ~d³/4 vs d³ in 3-D,
// degraded near deployment boundaries), which is why the pin is an
// aggregate over both dimensions; the per-dimension ratios are logged.
func TestBidiSettlesFewer(t *testing.T) {
	oracle := graph.NewSearcher(0) // distance lookups only; not compared
	uni := graph.NewSearcher(0)
	bidi := graph.NewSearcher(0)
	bidiF := graph.NewSearcher(0)
	for _, dim := range []int{2, 3} {
		dimMark := uni.Stats().Settled
		dimMarkB := bidi.Stats().Settled
		for _, seed := range []int64{1, 2, 3} {
			inst := densityUBG(t, 512, dim, seed)
			g := inst.G
			f := graph.Freeze(g)
			rng := newQueryRNG(seed)
			for q := 0; q < 200; q++ {
				src, dst := rng.pair(g.N())
				d, conn := oracle.DijkstraTargetUni(g, src, dst, graph.Inf)
				bounds := []float64{graph.Inf}
				if conn {
					// A failing probe half the distance out, and a
					// greedy-style acceptance bound.
					bounds = append(bounds, d/2, 1.5*d)
				}
				// Identical query triples through all three compared kernels.
				for _, b := range bounds {
					uni.DijkstraTargetUni(g, src, dst, b)
					bidi.DijkstraTarget(g, src, dst, b)
					bidiF.DijkstraTarget(f, src, dst, b)
				}
			}
		}
		du := uni.Stats().Settled - dimMark
		db := bidi.Stats().Settled - dimMarkB
		t.Logf("dim=%d: uni settled %d, bidi %d (ratio %.3f)", dim, du, db, float64(db)/float64(du))
	}
	us, bs, fs := uni.Stats(), bidi.Stats(), bidiF.Stats()
	if us.Settled == 0 || bs.Settled == 0 {
		t.Fatalf("degenerate query set: uni settled %d, bidi %d", us.Settled, bs.Settled)
	}
	if us.Searches != bs.Searches || us.Searches != fs.Searches {
		t.Fatalf("query sets diverged: %d/%d/%d searches", us.Searches, bs.Searches, fs.Searches)
	}
	if ratio := float64(bs.Settled) / float64(us.Settled); ratio > 0.6 {
		t.Fatalf("bidirectional settled %d vertices vs unidirectional %d (ratio %.2f, want <= 0.60)",
			bs.Settled, us.Settled, ratio)
	}
	if ratio := float64(fs.Settled) / float64(us.Settled); ratio > 0.6 {
		t.Fatalf("frozen bidirectional settled %d vertices vs unidirectional %d (ratio %.2f, want <= 0.60)",
			fs.Settled, us.Settled, ratio)
	}
	// The generic and CSR loops are the same algorithm over the same
	// adjacency order: their work must match exactly, not just on average.
	if bs.Settled != fs.Settled {
		t.Fatalf("generic loop settled %d, frozen loop %d — loops out of lockstep", bs.Settled, fs.Settled)
	}
}

// queryRNG is a tiny deterministic generator so the settled-count pin does
// not depend on math/rand stream stability.
type queryRNG struct{ s uint64 }

func newQueryRNG(seed int64) *queryRNG { return &queryRNG{s: uint64(seed)*0x9E3779B9 + 1} }

func (r *queryRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

func (r *queryRNG) pair(n int) (int, int) {
	src := int(r.next() % uint64(n))
	dst := int(r.next() % uint64(n))
	for dst == src {
		dst = int(r.next() % uint64(n))
	}
	return src, dst
}

// TestBidiSteadyStateAllocs extends the zero-allocation contract to the
// bidirectional kernels: once the scratch (both label sets, both heaps)
// has warmed, DijkstraTarget and AppendPathTo with a reused buffer
// allocate nothing, on both representations.
func TestBidiSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is perturbed under -race")
	}
	inst := randomUBG(t, 80, 31)
	g := inst.G
	f := graph.Freeze(g)
	s := graph.NewSearcher(g.N())
	var buf []int
	warm := func(tp graph.Topology) {
		for i := 0; i < 10; i++ {
			s.DijkstraTarget(tp, 0, g.N()-1, math.Inf(1))
			buf, _, _ = s.AppendPathTo(buf[:0], tp, 0, g.N()-1, math.Inf(1))
		}
	}
	for _, tp := range []graph.Topology{g, f} {
		warm(tp)
		if allocs := testing.AllocsPerRun(100, func() {
			s.DijkstraTarget(tp, 0, g.N()-1, math.Inf(1))
		}); allocs != 0 {
			t.Fatalf("%T: DijkstraTarget allocates %v per op in steady state, want 0", tp, allocs)
		}
		if allocs := testing.AllocsPerRun(100, func() {
			buf, _, _ = s.AppendPathTo(buf[:0], tp, 0, g.N()-1, math.Inf(1))
		}); allocs != 0 {
			t.Fatalf("%T: AppendPathTo with warmed buffer allocates %v per op, want 0", tp, allocs)
		}
	}
}
