package graph

import "math"

// RowUpdate replaces one vertex's adjacency row wholesale. It is the unit
// of replication: a WAL delta frame carries the post-commit rows of every
// vertex the commit touched, and a follower applies them verbatim — same
// halfedges, same within-row order — so its frozen snapshots stay
// element-identical to the leader's without re-running any repair logic.
type RowUpdate struct {
	V   int
	Row []Halfedge
}

// FrozenFromRows builds a Frozen directly from explicit per-vertex
// adjacency rows (rows[u] is u's full halfedge row; nil means isolated).
// Every undirected edge must appear in both endpoint rows with equal
// weight — the encoding invariant of checkpoints and delta frames — or the
// cached edge count and total weight will be wrong. The rows are copied
// into a fresh contiguous slab.
func FrozenFromRows(rows [][]Halfedge) *Frozen {
	total := 0
	for _, r := range rows {
		total += len(r)
	}
	f := &Frozen{
		rows: make([]rowSpan, len(rows)),
		slab: make([]Halfedge, 0, total),
		m:    total / 2,
	}
	for u, r := range rows {
		f.rows[u] = rowSpan{off: int32(len(f.slab)), deg: int32(len(r))}
		f.slab = append(f.slab, r...)
		if len(r) > f.maxDeg {
			f.maxDeg = len(r)
		}
		for _, h := range r {
			if u < h.To {
				f.weight += h.W
			}
		}
	}
	return f
}

// ApplyRows is the replication-side counterpart of UpdateFrozen: it
// produces the successor snapshot of prev after replacing the given rows,
// with n the new vertex count (>= len updates' ids + 1; rows beyond prev's
// count start empty). Like UpdateFrozen it appends only genuinely changed
// rows to the shared slab, returns prev unchanged when nothing differs,
// and compacts into a fresh contiguous slab when appended garbage exceeds
// the threshold. Updates must contain both endpoint rows of every changed
// edge (the WAL touched-set invariant), so the cached edge count and
// weight can be maintained from the row delta alone.
//
// prev == nil builds from the updates over an otherwise empty graph.
func ApplyRows(prev *Frozen, n int, updates []RowUpdate) *Frozen {
	if prev == nil {
		rows := make([][]Halfedge, n)
		for _, up := range updates {
			if up.V >= 0 && up.V < n {
				rows[up.V] = up.Row
			}
		}
		return FrozenFromRows(rows)
	}
	anyDirty := n != len(prev.rows)
	if !anyDirty {
		for _, up := range updates {
			if up.V < 0 || up.V >= n {
				continue
			}
			if !prev.rowEqual(up.V, up.Row) {
				anyDirty = true
				break
			}
		}
	}
	if !anyDirty {
		return prev
	}
	f := &Frozen{
		rows: make([]rowSpan, n),
		slab: prev.slab,
	}
	copy(f.rows, prev.rows) // rows beyond len(prev.rows) start empty
	// Both endpoints of every changed edge are in updates, so half the
	// dirty-row degree and weight deltas are exactly the edge-level deltas
	// (the same argument UpdateFrozen relies on).
	var sumOld, sumNew float64
	degDelta := 0
	for _, up := range updates {
		if up.V < 0 || up.V >= n {
			continue
		}
		if f.rowEqual(up.V, up.Row) {
			continue // unchanged, or a duplicate update already applied
		}
		if up.V < len(prev.rows) {
			old := prev.row(up.V)
			degDelta -= len(old)
			for _, h := range old {
				sumOld += h.W
			}
		}
		degDelta += len(up.Row)
		for _, h := range up.Row {
			sumNew += h.W
		}
		f.rows[up.V] = rowSpan{off: int32(len(f.slab)), deg: int32(len(up.Row))}
		f.slab = append(f.slab, up.Row...)
	}
	f.m = prev.m + degDelta/2
	f.weight = prev.weight + (sumNew-sumOld)/2
	for _, r := range f.rows {
		if int(r.deg) > f.maxDeg {
			f.maxDeg = int(r.deg)
		}
	}
	live := 2 * f.m
	if len(f.slab) > 3*live+64 || len(f.slab) > math.MaxInt32/2 {
		return f.compact()
	}
	return f
}

// compact rewrites f into an exactly-sized contiguous slab, dropping the
// garbage rows earlier delta applications left behind. Aggregates are
// recomputed exactly, flushing any floating-point drift the incremental
// weight maintenance accumulated.
func (f *Frozen) compact() *Frozen {
	c := &Frozen{
		rows: make([]rowSpan, len(f.rows)),
		slab: make([]Halfedge, 0, 2*f.m),
		m:    f.m,
	}
	for u := range f.rows {
		r := f.row(u)
		c.rows[u] = rowSpan{off: int32(len(c.slab)), deg: int32(len(r))}
		c.slab = append(c.slab, r...)
		if len(r) > c.maxDeg {
			c.maxDeg = len(r)
		}
		for _, h := range r {
			if u < h.To {
				c.weight += h.W
			}
		}
	}
	return c
}
