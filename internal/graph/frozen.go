package graph

import (
	"fmt"
	"math"
)

// Topology is the narrow read-only view of an undirected weighted graph
// that every query-side consumer in the repository runs on: searches
// (Searcher), routing, metrics verification, cluster construction, and the
// baseline structures. Both the mutable *Graph (the builders' working
// representation) and the immutable *Frozen (the serving representation)
// implement it, so algorithms written against Topology work unchanged on
// either side of the freeze boundary.
//
// Implementations must be safe for concurrent readers as long as no writer
// mutates them; *Frozen is immutable and therefore always safe.
type Topology interface {
	// N returns the number of vertices.
	N() int
	// M returns the number of undirected edges.
	M() int
	// Degree returns the degree of u.
	Degree(u int) int
	// Neighbors returns the adjacency list of u. The returned slice is
	// owned by the topology and must not be modified.
	Neighbors(u int) []Halfedge
	// HasEdge reports whether the undirected edge {u, v} exists.
	HasEdge(u, v int) bool
	// EdgeWeight returns the weight of edge {u, v} and whether it exists.
	EdgeWeight(u, v int) (float64, bool)
	// EdgesUnordered returns all undirected edges in canonical (U < V)
	// form, in adjacency order.
	EdgesUnordered() []Edge
	// MaxDegree returns the maximum vertex degree (0 for an empty graph).
	MaxDegree() int
	// TotalWeight returns the sum of all edge weights.
	TotalWeight() float64
}

// Compile-time interface checks: the mutable and frozen representations
// must stay interchangeable on the read path.
var (
	_ Topology = (*Graph)(nil)
	_ Topology = (*Frozen)(nil)
)

// rowSpan locates one vertex's adjacency row inside a Frozen's halfedge
// slab. Offsets are explicit (rather than a prefix sum) so a delta rebuild
// can leave unchanged rows pointing at their old slab positions while new
// rows are appended at the end — the structural sharing that makes
// snapshot-per-commit affordable under churn.
type rowSpan struct{ off, deg int32 }

// Frozen is an immutable compressed-sparse-row graph: a flat offset table
// (rows) into one flat halfedge slab, plus cached aggregates (M,
// TotalWeight, MaxDegree). It is the serving-side counterpart of Graph:
// builders mutate a Graph and call Freeze at the boundary; every read-only
// consumer then runs on the Frozen through the Topology interface.
//
// Compared to Graph's [][]Halfedge, a Frozen has no per-vertex slice
// headers to chase and its rows are contiguous after a full Freeze, so
// searches walk memory linearly; and because it is immutable it may be
// shared across any number of concurrent readers without synchronization.
//
// Successive Frozens produced by UpdateFrozen share their halfedge slab:
// only rows whose adjacency actually changed are appended to the slab, and
// everything else aliases the previous snapshot's storage. The slab is
// append-only, so older snapshots remain valid while newer ones grow it.
type Frozen struct {
	rows   []rowSpan
	slab   []Halfedge
	m      int
	weight float64
	maxDeg int
}

// Freeze builds a Frozen copy of g with a fresh, exactly-sized, contiguous
// slab. The result shares no memory with g.
func Freeze(g *Graph) *Frozen {
	f := &Frozen{
		rows: make([]rowSpan, g.n),
		slab: make([]Halfedge, 0, 2*g.m),
		m:    g.m,
	}
	for u, hs := range g.adj {
		f.rows[u] = rowSpan{off: int32(len(f.slab)), deg: int32(len(hs))}
		f.slab = append(f.slab, hs...)
		if len(hs) > f.maxDeg {
			f.maxDeg = len(hs)
		}
		for _, h := range hs {
			if u < h.To {
				f.weight += h.W
			}
		}
	}
	return f
}

// UpdateFrozen rebuilds only the touched rows of prev against g and
// returns the resulting snapshot. touched must contain every vertex whose
// adjacency changed since prev was taken (both endpoints of every added or
// removed edge qualify — the Graph mutators rewrite both rows); extra
// entries, duplicates, and out-of-range ids are harmless. Unchanged rows
// keep their spans into the shared slab; rows whose adjacency really
// differs are appended to it. The cost is O(n) for the span table plus
// O(Σ deg) over the touched rows — independent of the untouched part of
// the edge set — and the allocation count is O(1) regardless of graph
// size.
//
// If no touched row actually changed (and the vertex count is unchanged),
// prev itself is returned, so a churn batch with zero net effect publishes
// the prior snapshot by pointer identity.
//
// The cached total weight is maintained from the dirty-row delta, so it
// can drift from the exact sum by accumulated floating-point error across
// a long update chain; slab compaction (a full Freeze, triggered when
// appended garbage exceeds twice the live edge set) recomputes it exactly.
//
// prev == nil falls back to a full Freeze. Updates must form a linear
// chain: prev must be the newest snapshot derived from this slab, because
// two updates forked from the same prev would append rows into the same
// slab positions. (Snapshot-per-commit publishing, with one writer owning
// the chain, is exactly this shape; readers of any older snapshot are
// unaffected since their rows are never overwritten.)
func UpdateFrozen(prev *Frozen, g *Graph, touched []int) *Frozen {
	if prev == nil {
		return Freeze(g)
	}
	// Detect whether anything actually changed before allocating: a row is
	// dirty iff its current adjacency differs element-for-element from the
	// frozen one. Mutators rewrite rows in place, so an untouched row
	// always compares equal.
	anyDirty := g.n != len(prev.rows)
	if !anyDirty {
		for _, u := range touched {
			if u < 0 || u >= g.n {
				continue
			}
			if !prev.rowEqual(u, g.adj[u]) {
				anyDirty = true
				break
			}
		}
	}
	if !anyDirty {
		return prev
	}
	live := 2 * g.m
	if len(prev.slab) > 3*live+64 || len(prev.slab) > math.MaxInt32/2 {
		return Freeze(g) // compact: too much appended garbage in the slab
	}
	f := &Frozen{
		rows: make([]rowSpan, g.n),
		slab: prev.slab,
		m:    g.m,
	}
	copy(f.rows, prev.rows) // rows beyond len(prev.rows) start empty
	// Every changed edge dirties both endpoint rows, and an unchanged edge
	// incident to a dirty row contributes identically to the old and new
	// sums, so half the dirty-row weight delta is exactly the edge-weight
	// delta.
	var sumOld, sumNew float64
	for _, u := range touched {
		if u < 0 || u >= g.n {
			continue
		}
		row := g.adj[u]
		if f.rowEqual(u, row) {
			continue // unchanged, or a duplicate touched entry already rebuilt
		}
		if u < len(prev.rows) {
			for _, h := range prev.row(u) {
				sumOld += h.W
			}
		}
		for _, h := range row {
			sumNew += h.W
		}
		f.rows[u] = rowSpan{off: int32(len(f.slab)), deg: int32(len(row))}
		f.slab = append(f.slab, row...)
	}
	f.weight = prev.weight + (sumNew-sumOld)/2
	for _, r := range f.rows {
		if int(r.deg) > f.maxDeg {
			f.maxDeg = int(r.deg)
		}
	}
	return f
}

// rowEqual reports whether u's frozen row (empty when u is beyond the
// frozen vertex count) matches hs element-for-element.
func (f *Frozen) rowEqual(u int, hs []Halfedge) bool {
	var old []Halfedge
	if u < len(f.rows) {
		old = f.row(u)
	}
	if len(old) != len(hs) {
		return false
	}
	for i, h := range hs {
		if old[i] != h {
			return false
		}
	}
	return true
}

// row returns u's adjacency without the defensive capacity clamp.
func (f *Frozen) row(u int) []Halfedge {
	r := f.rows[u]
	return f.slab[r.off : r.off+r.deg]
}

// N returns the number of vertices.
func (f *Frozen) N() int { return len(f.rows) }

// M returns the number of undirected edges.
func (f *Frozen) M() int { return f.m }

// Degree returns the degree of u.
func (f *Frozen) Degree(u int) int {
	f.check(u)
	return int(f.rows[u].deg)
}

// Neighbors returns the adjacency row of u. The slice aliases the frozen
// slab with capacity clamped to its length, so callers cannot grow into
// (or overwrite) neighboring rows.
func (f *Frozen) Neighbors(u int) []Halfedge {
	f.check(u)
	r := f.rows[u]
	return f.slab[r.off : r.off+r.deg : r.off+r.deg]
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (f *Frozen) HasEdge(u, v int) bool {
	_, ok := f.EdgeWeight(u, v)
	return ok
}

// EdgeWeight returns the weight of edge {u, v} and whether it exists.
func (f *Frozen) EdgeWeight(u, v int) (float64, bool) {
	n := len(f.rows)
	if u < 0 || u >= n || v < 0 || v >= n {
		return 0, false
	}
	// Scan the smaller row.
	if f.rows[u].deg > f.rows[v].deg {
		u, v = v, u
	}
	for _, h := range f.row(u) {
		if h.To == v {
			return h.W, true
		}
	}
	return 0, false
}

// EdgesUnordered returns all undirected edges in canonical (U < V) form in
// row order.
func (f *Frozen) EdgesUnordered() []Edge {
	es := make([]Edge, 0, f.m)
	for u := range f.rows {
		for _, h := range f.row(u) {
			if u < h.To {
				es = append(es, Edge{U: u, V: h.To, W: h.W})
			}
		}
	}
	return es
}

// Edges returns all undirected edges sorted by weight then
// lexicographically, matching Graph.Edges.
func (f *Frozen) Edges() []Edge {
	es := f.EdgesUnordered()
	SortEdgesCanonical(es)
	return es
}

// MaxDegree returns the cached maximum vertex degree.
func (f *Frozen) MaxDegree() int { return f.maxDeg }

// TotalWeight returns the cached sum of all edge weights.
func (f *Frozen) TotalWeight() float64 { return f.weight }

// Thaw returns a mutable deep copy of f — the inverse of Freeze, for
// callers that need to edit a served topology offline. The copy's rows are
// packed into one shared slab (capacity clamped per row, so a later
// AddEdge reallocates just the row it grows): thawing costs O(1)
// allocations regardless of graph size, which keeps it viable as the
// bridge from the parallel CSR build path to the mutable engines.
func (f *Frozen) Thaw() *Graph {
	g := New(len(f.rows))
	g.m = f.m
	var live int64
	for _, r := range f.rows {
		live += int64(r.deg)
	}
	slab := make([]Halfedge, 0, live)
	for u := range f.rows {
		lo := int64(len(slab))
		slab = append(slab, f.row(u)...)
		g.adj[u] = slab[lo:len(slab):len(slab)]
	}
	return g
}

func (f *Frozen) check(u int) {
	if u < 0 || u >= len(f.rows) {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, len(f.rows)))
	}
}
