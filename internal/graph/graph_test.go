package graph

import (
	"testing"
)

func TestAddHasRemoveEdge(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(1, 2, 2.5)
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("HasEdge should be symmetric")
	}
	if g.HasEdge(0, 2) {
		t.Error("absent edge reported present")
	}
	if g.M() != 2 {
		t.Errorf("M = %d, want 2", g.M())
	}
	if w, ok := g.EdgeWeight(1, 2); !ok || w != 2.5 {
		t.Errorf("EdgeWeight = %v, %v", w, ok)
	}
	if !g.RemoveEdge(0, 1) {
		t.Error("RemoveEdge reported failure")
	}
	if g.HasEdge(0, 1) || g.M() != 1 {
		t.Error("edge not removed")
	}
	if g.RemoveEdge(0, 1) {
		t.Error("double remove should fail")
	}
	if g.RemoveEdge(0, 3) {
		t.Error("removing absent edge should fail")
	}
}

func TestEdgeWeightOutOfRange(t *testing.T) {
	g := New(2)
	if _, ok := g.EdgeWeight(-1, 0); ok {
		t.Error("negative vertex should miss")
	}
	if g.HasEdge(0, 5) {
		t.Error("out-of-range vertex should miss")
	}
}

func TestSelfLoopPanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on self-loop")
		}
	}()
	g.AddEdge(1, 1, 1)
}

func TestOutOfRangePanics(t *testing.T) {
	g := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range vertex")
		}
	}()
	g.AddEdge(0, 5, 1)
}

func TestNegativeVertexCountPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative n")
		}
	}()
	New(-1)
}

func TestDegrees(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(0, 2, 1)
	g.AddEdge(0, 3, 1)
	if g.Degree(0) != 3 || g.Degree(1) != 1 {
		t.Errorf("degrees wrong: %d %d", g.Degree(0), g.Degree(1))
	}
	if g.MaxDegree() != 3 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
	if New(0).MaxDegree() != 0 {
		t.Error("empty graph MaxDegree should be 0")
	}
}

func TestEdgesSortedCanonical(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 2, 5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 0, 3)
	es := g.Edges()
	if len(es) != 3 {
		t.Fatalf("len = %d", len(es))
	}
	for i, e := range es {
		if e.U >= e.V {
			t.Errorf("edge %d not canonical: %+v", i, e)
		}
		if i > 0 && es[i-1].W > e.W {
			t.Errorf("edges not weight-sorted at %d", i)
		}
	}
}

func TestNewEdgeCanonical(t *testing.T) {
	e := NewEdge(5, 2, 1.0)
	if e.U != 2 || e.V != 5 {
		t.Errorf("NewEdge not canonical: %+v", e)
	}
}

func TestTotalWeight(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(1, 2, 2.5)
	if got := g.TotalWeight(); got != 4 {
		t.Errorf("TotalWeight = %v", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	c := g.Clone()
	c.AddEdge(1, 2, 1)
	if g.HasEdge(1, 2) {
		t.Error("Clone shares adjacency storage")
	}
	if g.M() != 1 || c.M() != 2 {
		t.Errorf("edge counts wrong: %d %d", g.M(), c.M())
	}
}

func TestFromEdgesRoundTrip(t *testing.T) {
	es := []Edge{{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}}
	g := FromEdges(3, es)
	got := g.Edges()
	if len(got) != 2 || got[0] != es[0] || got[1] != es[1] {
		t.Errorf("round trip mismatch: %v", got)
	}
}

func TestIsSubgraphOf(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	h := New(3)
	h.AddEdge(0, 1, 1)
	h.AddEdge(1, 2, 1)
	if !g.IsSubgraphOf(h) {
		t.Error("g should be a subgraph of h")
	}
	if h.IsSubgraphOf(g) {
		t.Error("h should not be a subgraph of g")
	}
	if g.IsSubgraphOf(New(4)) {
		t.Error("different vertex counts should fail")
	}
}

func TestGrowKeepsEdges(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	g.Grow(6)
	if g.N() != 6 {
		t.Fatalf("N = %d, want 6", g.N())
	}
	if g.M() != 2 || !g.HasEdge(0, 1) || !g.HasEdge(1, 2) {
		t.Fatalf("edges lost across Grow: m=%d", g.M())
	}
	// New slots are usable immediately.
	g.AddEdge(2, 5, 3)
	if !g.HasEdge(2, 5) || g.Degree(4) != 0 {
		t.Fatal("grown slots unusable")
	}
	// Shrinking or same-size calls are no-ops.
	g.Grow(2)
	if g.N() != 6 || g.M() != 3 {
		t.Fatalf("Grow(2) mutated the graph: n=%d m=%d", g.N(), g.M())
	}
}

func TestPathWeight(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1.5)
	g.AddEdge(1, 2, 2)
	g.AddEdge(2, 3, 0.5)
	cases := []struct {
		name string
		path []int
		want float64
		ok   bool
	}{
		{"empty", nil, 0, true},
		{"single", []int{3}, 0, true},
		{"full walk", []int{0, 1, 2, 3}, 4, true},
		{"reverse walk", []int{3, 2, 1, 0}, 4, true},
		{"missing edge", []int{0, 2}, 0, false},
		{"out of range", []int{0, 1, 5}, 0, false},
		{"negative vertex", []int{-1, 0}, 0, false},
		{"isolated ok vertex", []int{4}, 0, true},
	}
	for _, c := range cases {
		got, ok := PathWeight(g, c.path)
		if ok != c.ok || got != c.want {
			t.Errorf("%s: PathWeight = (%v, %v), want (%v, %v)", c.name, got, ok, c.want, c.ok)
		}
	}
}
