package graph_test

// Differential tests pinning the allocation-free Searcher against the
// O(n³) FloydWarshall reference and an independent map-based Dijkstra (the
// implementation the Searcher replaced), on random α-UBG instances.

import (
	"container/heap"
	"math"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/ubg"
)

// refItem / refPQ reproduce the retired container/heap implementation so
// the differential test keeps an independent oracle.
type refItem struct {
	v    int
	dist float64
}

type refPQ []refItem

func (q refPQ) Len() int            { return len(q) }
func (q refPQ) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q refPQ) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *refPQ) Push(x interface{}) { *q = append(*q, x.(refItem)) }
func (q *refPQ) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// refBounded is the old map-based bounded Dijkstra, verbatim in behavior.
func refBounded(g *graph.Graph, src int, bound float64) map[int]float64 {
	out := make(map[int]float64)
	visited := make(map[int]bool)
	q := refPQ{{v: src, dist: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(refItem)
		if visited[it.v] {
			continue
		}
		visited[it.v] = true
		out[it.v] = it.dist
		for _, h := range g.Neighbors(it.v) {
			nd := it.dist + h.W
			if nd <= bound && !visited[h.To] {
				heap.Push(&q, refItem{v: h.To, dist: nd})
			}
		}
	}
	return out
}

func randomUBG(t *testing.T, n int, seed int64) *ubg.Instance {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Seed: seed},
		ubg.Config{Alpha: 0.7, Model: ubg.ModelAll, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestSearcherMatchesFloydWarshall(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		inst := randomUBG(t, 40, seed)
		g := inst.G
		fw := g.FloydWarshall()
		s := graph.NewSearcher(g.N())

		dist := make([]float64, g.N())
		for src := 0; src < g.N(); src++ {
			s.Dijkstra(g, src, graph.Inf, dist)
			for v := 0; v < g.N(); v++ {
				if math.Abs(dist[v]-fw[src][v]) > 1e-12 {
					t.Fatalf("seed %d: Dijkstra(%d)[%d] = %v, FW %v", seed, src, v, dist[v], fw[src][v])
				}
			}
			for dst := 0; dst < g.N(); dst += 3 {
				// Unbounded target query must match FW exactly.
				d, ok := s.DijkstraTarget(g, src, dst, math.Inf(1))
				if !ok || math.Abs(d-fw[src][dst]) > 1e-12 {
					t.Fatalf("seed %d: target %d->%d = (%v, %v), FW %v", seed, src, dst, d, ok, fw[src][dst])
				}
				// Bounded query: found iff within bound, exact when found.
				bound := fw[src][dst] * 0.999
				if _, ok := s.DijkstraTarget(g, src, dst, bound); ok && src != dst {
					t.Fatalf("seed %d: target %d->%d found below its distance", seed, src, dst)
				}
				// A shortest path must exist within the exact distance and sum to it.
				path, pd, ok := s.PathTo(g, src, dst, fw[src][dst]+1e-12)
				if !ok || math.Abs(pd-fw[src][dst]) > 1e-12 {
					t.Fatalf("seed %d: PathTo %d->%d = (%v, %v), FW %v", seed, src, dst, pd, ok, fw[src][dst])
				}
				var sum float64
				for i := 0; i+1 < len(path); i++ {
					w, present := g.EdgeWeight(path[i], path[i+1])
					if !present {
						t.Fatalf("seed %d: PathTo hop %d-%d not an edge", seed, path[i], path[i+1])
					}
					sum += w
				}
				if path[0] != src || path[len(path)-1] != dst || math.Abs(sum-pd) > 1e-9 {
					t.Fatalf("seed %d: PathTo %d->%d invalid path %v (sum %v, dist %v)", seed, src, dst, path, sum, pd)
				}
			}
		}
	}
}

func TestSearcherBallMatchesMapReference(t *testing.T) {
	inst := randomUBG(t, 60, 9)
	g := inst.G
	s := graph.NewSearcher(g.N())
	for src := 0; src < g.N(); src++ {
		for _, bound := range []float64{0.1, 0.4, 1.1, math.Inf(1)} {
			want := refBounded(g, src, bound)
			ball := s.Ball(g, src, bound)
			if len(ball) != len(want) {
				t.Fatalf("Ball(%d, %v): %d vertices, reference %d", src, bound, len(ball), len(want))
			}
			for _, vd := range ball {
				if w, ok := want[vd.V]; !ok || math.Abs(w-vd.D) > 1e-12 {
					t.Fatalf("Ball(%d, %v): vertex %d dist %v, reference (%v, %v)", src, bound, vd.V, vd.D, w, ok)
				}
			}
			// The delegating map API must agree too.
			got := g.DijkstraBounded(src, bound)
			if len(got) != len(want) {
				t.Fatalf("DijkstraBounded(%d, %v): %d vertices, reference %d", src, bound, len(got), len(want))
			}
			for v, d := range got {
				if math.Abs(d-want[v]) > 1e-12 {
					t.Fatalf("DijkstraBounded(%d, %v)[%d] = %v, reference %v", src, bound, v, d, want[v])
				}
			}
		}
	}
}

// TestSearcherReuseAcrossGraphs exercises epoch reset and scratch growth:
// one Searcher alternating between graphs of different sizes must keep
// producing results identical to fresh computations.
func TestSearcherReuseAcrossGraphs(t *testing.T) {
	small := randomUBG(t, 25, 11).G
	big := randomUBG(t, 70, 12).G
	s := graph.NewSearcher(1)
	for round := 0; round < 3; round++ {
		for _, g := range []*graph.Graph{small, big, small} {
			fw := g.FloydWarshall()
			for src := 0; src < g.N(); src += 5 {
				for dst := 0; dst < g.N(); dst += 7 {
					d, ok := s.DijkstraTarget(g, src, dst, math.Inf(1))
					if !ok || math.Abs(d-fw[src][dst]) > 1e-12 {
						t.Fatalf("round %d: reused searcher %d->%d = (%v, %v), FW %v", round, src, dst, d, ok, fw[src][dst])
					}
				}
			}
		}
	}
}

func TestSearcherHopsTo(t *testing.T) {
	inst := randomUBG(t, 50, 21)
	g := inst.G
	s := graph.NewSearcher(g.N())
	for src := 0; src < g.N(); src += 4 {
		want := g.BFSHops(src, -1)
		for dst := 0; dst < g.N(); dst += 3 {
			h, ok := s.HopsTo(g, src, dst)
			wh, wok := want[dst]
			if ok != wok || (ok && h != wh) {
				t.Fatalf("HopsTo(%d, %d) = (%d, %v), BFSHops %d %v", src, dst, h, ok, wh, wok)
			}
		}
	}
}

// TestDijkstraTargetSteadyStateAllocs pins the tentpole's contract: a
// steady-state DijkstraTarget performs zero allocations.
func TestDijkstraTargetSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation pin not meaningful")
	}
	inst := randomUBG(t, 80, 31)
	g := inst.G
	// Warm the pooled searcher and its heap.
	for i := 0; i < 10; i++ {
		g.DijkstraTarget(0, g.N()-1, math.Inf(1))
	}
	allocs := testing.AllocsPerRun(100, func() {
		g.DijkstraTarget(0, g.N()-1, math.Inf(1))
	})
	if allocs != 0 {
		t.Fatalf("DijkstraTarget allocates %v per op in steady state, want 0", allocs)
	}
}

// TestDijkstraPruned pins the pruned-expansion kernel the hub-label
// builder (internal/labels) relies on: with a permissive visit callback it
// must settle exactly the vertices plain Dijkstra settles, in distance
// order, on both representations; and returning false from visit must
// suppress expansion through that vertex without suppressing the visit
// itself.
func TestDijkstraPruned(t *testing.T) {
	inst := randomUBG(t, 80, 901)
	srch := graph.NewSearcher(inst.G.N())
	for _, topo := range []graph.Topology{inst.G, graph.Freeze(inst.G)} {
		ref := refBounded(inst.G, 3, math.Inf(1))
		got := make(map[int]float64)
		last := -1.0
		srch.DijkstraPruned(topo, 3, graph.Inf, func(v int, d float64) bool {
			if d < last {
				t.Fatalf("settled out of order: %v after %v", d, last)
			}
			last = d
			got[v] = d
			return true
		})
		if len(got) != len(ref) {
			t.Fatalf("settled %d vertices, reference %d", len(got), len(ref))
		}
		for v, d := range ref {
			if gd, ok := got[v]; !ok || math.Abs(gd-d) > 1e-9*(1+d) {
				t.Fatalf("vertex %d: got %v ok=%v, want %v", v, gd, ok, d)
			}
		}
	}

	// Pruning at the source must visit the source alone.
	count := 0
	srch.DijkstraPruned(inst.G, 5, graph.Inf, func(v int, d float64) bool {
		count++
		if v != 5 || d != 0 {
			t.Fatalf("first visit (%d, %v), want (5, 0)", v, d)
		}
		return false
	})
	if count != 1 {
		t.Fatalf("pruned-at-source visited %d vertices, want 1", count)
	}

	// The bound must cut expansion exactly like the bounded reference.
	ref := refBounded(inst.G, 3, 0.9)
	count = 0
	srch.DijkstraPruned(inst.G, 3, 0.9, func(v int, d float64) bool {
		count++
		return true
	})
	if count != len(ref) {
		t.Fatalf("bounded pruned search settled %d, reference %d", count, len(ref))
	}
}
