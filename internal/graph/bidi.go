package graph

// Bidirectional bounded point-to-point search — the production kernel
// behind DijkstraTarget and PathTo, i.e. behind every "is there a path of
// length ≤ bound?" query in the repository: the greedy acceptance rule
// (greedy.Accept, hence SEQ-GREEDY, core.Build, and dynamic repair),
// stretch verification (metrics), and the serving layer's /route path.
//
// The kernel grows a Dijkstra frontier from both endpoints at once — the
// graph is undirected, so the backward search reuses the same adjacency —
// expanding, at each step, the side with the smaller frontier (fewer
// labeled-but-unsettled vertices). The frontier is the marginal settling
// cost per unit of search radius, so balancing frontiers rather than radii
// adapts the radius split to geometry: a destination in a sparse corner
// gets the larger share of the radius budget. μ tracks the best meeting
// seen so far: whenever a relaxation labels a vertex that the opposite
// frontier has already labeled, the concatenated distance is a candidate.
// The search stops when
//
//	minF + minB ≥ μ   (μ is provably the exact distance), or
//	minF + minB > bound (no path of length ≤ bound exists),
//
// or when either frontier empties. The stop rule is valid under any
// alternation policy: within one side, popped keys are non-decreasing, so
// minF + minB is a lower bound on any path yet to be discovered.
//
// Compared to the unidirectional kernel, which settles the full distance
// ball of radius min(d, bound) around the source, the two frontiers each
// reach only about half that radius. The saving is dimension-dependent:
// two half-radius balls hold ~1/2 the vertices of the full ball in the
// plane and ~1/4 in 3-D (nothing in a degenerate 1-D corridor, and less
// near deployment boundaries, where clipped balls grow quasi-linearly).
// TestBidiSettlesFewer pins the aggregate settled-vertex ratio across 2-D
// and 3-D workloads; benchstat shows the wall-clock consequence.
//
// Each search loop exists twice: a generic version over the Topology
// interface, and a devirtualized version over *Frozen that slices the CSR
// halfedge slab through the (offset, degree) row table directly — no
// interface call per settled vertex. The dispatch happens once per search,
// so the serving layer (whose snapshots are always *Frozen) never pays
// dynamic dispatch inside the loop. Correctness of both loops, and their
// equivalence to the unidirectional reference kernels, is pinned by the
// differential fuzz suite in bidi_test.go.

// biInit primes both frontiers for a point-to-point search on an n-vertex
// topology. Forward state (seen/dist/prev/heap) seeds at src, backward
// state (seenB/distB/prevB/heapB) at dst; both share one epoch.
func (s *Searcher) biInit(n, src, dst int) {
	s.begin(n)
	s.heapB = s.heapB[:0]
	s.seen[src] = s.epoch
	s.dist[src] = 0
	s.prev[src] = -1
	heapPush(&s.heap, 0, int32(src))
	s.seenB[dst] = s.epoch
	s.distB[dst] = 0
	s.prevB[dst] = -1
	heapPush(&s.heapB, 0, int32(dst))
}

// biSearchTopology runs the bidirectional bounded search over the generic
// Topology interface. It returns the meeting vertex and the meeting
// distance μ, or (-1, Inf) when no path of length ≤ bound exists. On
// success the shortest path is prev-chain(meet)..src reversed, then
// prevB-chain(meet)..dst; relaxations only ever come from settled
// vertices, whose distances are final, so both chains are consistent with
// the final labels.
func (s *Searcher) biSearchTopology(g Topology, src, dst int, bound float64, existOnly bool) (int32, float64) {
	s.biInit(g.N(), src, dst)
	mu := Inf
	meet := int32(-1)
	var settledF, settledB int64
	labeledF, labeledB := int64(1), int64(1)
	for len(s.heap) > 0 && len(s.heapB) > 0 {
		if sum := s.heap[0].dist + s.heapB[0].dist; sum >= mu || sum > bound {
			break
		}
		if existOnly && meet >= 0 && mu <= bound {
			break // a path within the bound exists; minimality not required
		}
		if labeledF-settledF <= labeledB-settledB {
			it := heapPop(&s.heap)
			v := int(it.v)
			if it.dist > s.dist[v] {
				continue // stale entry: v already settled closer
			}
			settledF++
			topB := s.heapB[0].dist // fixed while this side expands
			for _, h := range g.Neighbors(v) {
				nd := it.dist + h.W
				if nd > bound {
					continue
				}
				if s.seen[h.To] == s.epoch {
					if s.dist[h.To] <= nd {
						continue
					}
				} else {
					s.seen[h.To] = s.epoch
					labeledF++
				}
				s.dist[h.To] = nd
				s.prev[h.To] = int32(v)
				if s.seenB[h.To] == s.epoch {
					if m := nd + s.distB[h.To]; m < mu {
						mu, meet = m, int32(h.To)
					}
				}
				// Push-prune: expanding this label could only reach paths of
				// length >= nd+topB; if that already exceeds min(mu, bound)
				// the label still serves as a meeting candidate (stored
				// above) but never needs to settle.
				if pb := nd + topB; pb <= bound && pb < mu {
					heapPush(&s.heap, nd, int32(h.To))
				}
			}
		} else {
			it := heapPop(&s.heapB)
			v := int(it.v)
			if it.dist > s.distB[v] {
				continue
			}
			settledB++
			topF := s.heap[0].dist
			for _, h := range g.Neighbors(v) {
				nd := it.dist + h.W
				if nd > bound {
					continue
				}
				if s.seenB[h.To] == s.epoch {
					if s.distB[h.To] <= nd {
						continue
					}
				} else {
					s.seenB[h.To] = s.epoch
					labeledB++
				}
				s.distB[h.To] = nd
				s.prevB[h.To] = int32(v)
				if s.seen[h.To] == s.epoch {
					if m := nd + s.dist[h.To]; m < mu {
						mu, meet = m, int32(h.To)
					}
				}
				if pf := nd + topF; pf <= bound && pf < mu {
					heapPush(&s.heapB, nd, int32(h.To))
				}
			}
		}
	}
	s.stats.Settled += settledF + settledB
	if mu > bound {
		return -1, Inf
	}
	return meet, mu
}

// biSearchFrozen is biSearchTopology devirtualized over the CSR
// representation: adjacency rows are sliced straight out of the halfedge
// slab via the (offset, degree) row table. Keep the two loops in lockstep —
// the differential fuzz suite asserts they agree query-for-query, and
// TestBidiSettlesFewer asserts they settle identical vertex counts.
func (s *Searcher) biSearchFrozen(f *Frozen, src, dst int, bound float64, existOnly bool) (int32, float64) {
	s.biInit(len(f.rows), src, dst)
	mu := Inf
	meet := int32(-1)
	var settledF, settledB int64
	labeledF, labeledB := int64(1), int64(1)
	for len(s.heap) > 0 && len(s.heapB) > 0 {
		if sum := s.heap[0].dist + s.heapB[0].dist; sum >= mu || sum > bound {
			break
		}
		if existOnly && meet >= 0 && mu <= bound {
			break // a path within the bound exists; minimality not required
		}
		if labeledF-settledF <= labeledB-settledB {
			it := heapPop(&s.heap)
			v := int(it.v)
			if it.dist > s.dist[v] {
				continue
			}
			settledF++
			topB := s.heapB[0].dist
			r := f.rows[v]
			for _, h := range f.slab[r.off : r.off+r.deg] {
				nd := it.dist + h.W
				if nd > bound {
					continue
				}
				if s.seen[h.To] == s.epoch {
					if s.dist[h.To] <= nd {
						continue
					}
				} else {
					s.seen[h.To] = s.epoch
					labeledF++
				}
				s.dist[h.To] = nd
				s.prev[h.To] = int32(v)
				if s.seenB[h.To] == s.epoch {
					if m := nd + s.distB[h.To]; m < mu {
						mu, meet = m, int32(h.To)
					}
				}
				if pb := nd + topB; pb <= bound && pb < mu {
					heapPush(&s.heap, nd, int32(h.To))
				}
			}
		} else {
			it := heapPop(&s.heapB)
			v := int(it.v)
			if it.dist > s.distB[v] {
				continue
			}
			settledB++
			topF := s.heap[0].dist
			r := f.rows[v]
			for _, h := range f.slab[r.off : r.off+r.deg] {
				nd := it.dist + h.W
				if nd > bound {
					continue
				}
				if s.seenB[h.To] == s.epoch {
					if s.distB[h.To] <= nd {
						continue
					}
				} else {
					s.seenB[h.To] = s.epoch
					labeledB++
				}
				s.distB[h.To] = nd
				s.prevB[h.To] = int32(v)
				if s.seen[h.To] == s.epoch {
					if m := nd + s.dist[h.To]; m < mu {
						mu, meet = m, int32(h.To)
					}
				}
				if pf := nd + topF; pf <= bound && pf < mu {
					heapPush(&s.heapB, nd, int32(h.To))
				}
			}
		}
	}
	s.stats.Settled += settledF + settledB
	if mu > bound {
		return -1, Inf
	}
	return meet, mu
}

// DijkstraTarget returns the shortest-path distance from src to dst in g,
// abandoning the search once no path of length at most bound can exist.
// The boolean result reports whether a path of length at most bound
// exists. This is the primitive behind every greedy "is there a t-spanner
// path already?" query; it runs bidirectionally (see the package comment
// at the top of this file) and takes the CSR fast path when g is a
// *Frozen.
func (s *Searcher) DijkstraTarget(g Topology, src, dst int, bound float64) (float64, bool) {
	if src == dst {
		return 0, true
	}
	s.stats.Searches++
	if dst < 0 || dst >= g.N() {
		return Inf, false
	}
	var mu float64
	var meet int32
	if f, ok := g.(*Frozen); ok {
		meet, mu = s.biSearchFrozen(f, src, dst, bound, false)
	} else {
		meet, mu = s.biSearchTopology(g, src, dst, bound, false)
	}
	if meet < 0 {
		return Inf, false
	}
	return mu, true
}

// PathTo returns the vertex sequence of a shortest src→dst path of length
// at most bound, with its length. The path slice is freshly allocated (it
// outlives the next search); scratch state is still reused. Hot loops that
// can recycle the result should call AppendPathTo instead.
func (s *Searcher) PathTo(g Topology, src, dst int, bound float64) ([]int, float64, bool) {
	path, d, ok := s.AppendPathTo(nil, g, src, dst, bound)
	if !ok {
		return nil, Inf, false
	}
	return path, d, true
}

// AppendPathTo is PathTo in append style: the path is appended to buf
// (which may be nil) and the extended slice returned, alongside the path
// length and whether a path of length at most bound exists. When not
// found, buf is returned unchanged. The buffer is grown with a single
// exactly-sized allocation when its capacity does not suffice, so a caller
// reusing a warmed buffer performs zero allocations per route — this is
// the variant routing.Router and the serving layer's uncached path run on.
func (s *Searcher) AppendPathTo(buf []int, g Topology, src, dst int, bound float64) ([]int, float64, bool) {
	if src == dst {
		return append(buf, src), 0, true
	}
	s.stats.Searches++
	if dst < 0 || dst >= g.N() {
		return buf, Inf, false
	}
	var mu float64
	var meet int32
	if f, ok := g.(*Frozen); ok {
		meet, mu = s.biSearchFrozen(f, src, dst, bound, false)
	} else {
		meet, mu = s.biSearchTopology(g, src, dst, bound, false)
	}
	if meet < 0 {
		return buf, Inf, false
	}
	// Stitch the two prev trees: count both chain lengths first so the
	// buffer grows with one exact allocation, then fill the forward half
	// backwards from the meeting vertex and the backward half forwards.
	cf := 0
	for x := meet; x != -1; x = s.prev[x] {
		cf++
	}
	cb := 0
	for x := meet; x != -1; x = s.prevB[x] {
		cb++
	}
	base := len(buf)
	total := cf + cb - 1 // meet counted once
	if cap(buf)-base < total {
		nb := make([]int, base+total)
		copy(nb, buf)
		buf = nb
	} else {
		buf = buf[:base+total]
	}
	i := base + cf - 1
	for x := meet; x != -1; x = s.prev[x] {
		buf[i] = int(x)
		i--
	}
	i = base + cf
	for x := s.prevB[meet]; x != -1; x = s.prevB[x] {
		buf[i] = int(x)
		i++
	}
	return buf, mu, true
}

// ReachableWithin reports whether a path of length at most bound connects
// src and dst — DijkstraTarget without the exact distance. The search
// stops at the first meeting within the bound instead of running on until
// the meeting is provably minimal, which skips the endgame entirely on
// accept-style probes; the boolean is identical to DijkstraTarget's. This
// is the primitive greedy.Accept runs on: SEQ-GREEDY, the relaxed
// algorithm's redundancy filter, and the dynamic engine's repair replay
// only ever need existence.
func (s *Searcher) ReachableWithin(g Topology, src, dst int, bound float64) bool {
	if src == dst {
		return true
	}
	s.stats.Searches++
	if dst < 0 || dst >= g.N() {
		return false
	}
	var meet int32
	if f, ok := g.(*Frozen); ok {
		meet, _ = s.biSearchFrozen(f, src, dst, bound, true)
	} else {
		meet, _ = s.biSearchTopology(g, src, dst, bound, true)
	}
	return meet >= 0
}
