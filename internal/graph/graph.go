// Package graph provides the weighted-graph substrate: the mutable
// adjacency-list Graph that builders work on, the immutable CSR Frozen
// that the serving layer reads from, the narrow Topology interface both
// implement, shortest paths (full, bounded, and target-pruned Dijkstra),
// BFS hop layers, minimum spanning trees, union-find, and connected
// components.
//
// Every algorithm in the repository — the greedy spanners, the cluster
// covers, the cluster graphs, the verification metrics — runs on these
// representations: writers on *Graph, read-only consumers on Topology so
// they accept either. Vertices are dense integer IDs 0..n-1.
package graph

import (
	"fmt"
)

// Halfedge is one direction of an undirected weighted edge.
type Halfedge struct {
	To int
	W  float64
}

// Edge is an undirected weighted edge with U < V canonical orientation
// (enforced by NewEdge; the struct itself does not enforce it so tests can
// construct raw values).
type Edge struct {
	U, V int
	W    float64
}

// NewEdge returns the canonical form of edge {u, v} with weight w.
func NewEdge(u, v int, w float64) Edge {
	if u > v {
		u, v = v, u
	}
	return Edge{U: u, V: v, W: w}
}

// Graph is an undirected weighted graph over vertices 0..n-1.
// The zero value is not usable; construct with New.
type Graph struct {
	n   int
	adj [][]Halfedge
	m   int
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &Graph{n: n, adj: make([][]Halfedge, n)}
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.m = g.m
	for u, hs := range g.adj {
		c.adj[u] = append([]Halfedge(nil), hs...)
	}
	return c
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of (undirected) edges.
func (g *Graph) M() int { return g.m }

// AddEdge inserts the undirected edge {u, v} with weight w. It panics on a
// self-loop or out-of-range vertex. Duplicate edges are not detected (use
// HasEdge first when the caller needs set semantics).
func (g *Graph) AddEdge(u, v int, w float64) {
	if u == v {
		panic(fmt.Sprintf("graph: self-loop at %d", u))
	}
	g.check(u)
	g.check(v)
	g.adj[u] = append(g.adj[u], Halfedge{To: v, W: w})
	g.adj[v] = append(g.adj[v], Halfedge{To: u, W: w})
	g.m++
}

// RemoveEdge deletes the undirected edge {u, v} if present and reports
// whether an edge was removed. If parallel edges exist, one is removed.
func (g *Graph) RemoveEdge(u, v int) bool {
	if !g.removeHalf(u, v) {
		return false
	}
	g.removeHalf(v, u)
	g.m--
	return true
}

func (g *Graph) removeHalf(u, v int) bool {
	hs := g.adj[u]
	for i, h := range hs {
		if h.To == v {
			hs[i] = hs[len(hs)-1]
			g.adj[u] = hs[:len(hs)-1]
			return true
		}
	}
	return false
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return false
	}
	// Scan the smaller adjacency list.
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, h := range g.adj[u] {
		if h.To == v {
			return true
		}
	}
	return false
}

// EdgeWeight returns the weight of edge {u, v} and whether it exists.
func (g *Graph) EdgeWeight(u, v int) (float64, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, false
	}
	if len(g.adj[u]) > len(g.adj[v]) {
		u, v = v, u
	}
	for _, h := range g.adj[u] {
		if h.To == v {
			return h.W, true
		}
	}
	return 0, false
}

// Neighbors returns the adjacency list of u. The returned slice is owned by
// the graph and must not be modified.
func (g *Graph) Neighbors(u int) []Halfedge {
	g.check(u)
	return g.adj[u]
}

// Degree returns the degree of u.
func (g *Graph) Degree(u int) int {
	g.check(u)
	return len(g.adj[u])
}

// MaxDegree returns the maximum vertex degree (0 for an empty graph).
func (g *Graph) MaxDegree() int {
	max := 0
	for _, hs := range g.adj {
		if len(hs) > max {
			max = len(hs)
		}
	}
	return max
}

// EdgesUnordered returns all undirected edges in canonical (U < V) form in
// adjacency order, skipping the weight sort of Edges. Use it wherever the
// caller aggregates over edges without depending on their order (metrics,
// binning, fault injection); use Edges where the sorted contract matters
// (greedy processing order, MST, serialization).
func (g *Graph) EdgesUnordered() []Edge {
	es := make([]Edge, 0, g.m)
	for u, hs := range g.adj {
		for _, h := range hs {
			if u < h.To {
				es = append(es, Edge{U: u, V: h.To, W: h.W})
			}
		}
	}
	return es
}

// Edges returns all undirected edges in canonical (U < V) form, sorted by
// weight then lexicographically; the order is deterministic.
func (g *Graph) Edges() []Edge {
	es := g.EdgesUnordered()
	SortEdgesCanonical(es)
	return es
}

// SortedEdges returns t's undirected edges in the canonical sorted order —
// the Topology counterpart of Graph.Edges.
func SortedEdges(t Topology) []Edge {
	es := t.EdgesUnordered()
	SortEdgesCanonical(es)
	return es
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var s float64
	for u, hs := range g.adj {
		for _, h := range hs {
			if u < h.To {
				s += h.W
			}
		}
	}
	return s
}

// Grow extends the vertex set to 0..n-1, keeping all existing edges. It is
// a no-op when the graph already has at least n vertices. Grow is what lets
// long-lived dynamic topologies (internal/dynamic) admit new nodes without
// rebuilding: amortized-doubling callers pay O(1) per join.
func (g *Graph) Grow(n int) {
	if n <= g.n {
		return
	}
	adj := make([][]Halfedge, n)
	copy(adj, g.adj)
	g.adj = adj
	g.n = n
}

func (g *Graph) check(u int) {
	if u < 0 || u >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", u, g.n))
	}
}

// PathWeight returns the total weight of the vertex sequence path walked
// edge by edge in g, reporting false if any consecutive pair is not an edge
// (or any vertex is out of range). A path of zero or one vertex has weight
// 0 and is always valid. Concurrent serving layers use it to certify that a
// delivered route is consistent with one specific topology snapshot.
func PathWeight(g Topology, path []int) (float64, bool) {
	n := g.N()
	var sum float64
	for i, v := range path {
		if v < 0 || v >= n {
			return 0, false
		}
		if i == 0 {
			continue
		}
		w, ok := g.EdgeWeight(path[i-1], v)
		if !ok {
			return 0, false
		}
		sum += w
	}
	return sum, true
}

// FromEdges builds a graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	g := New(n)
	for _, e := range edges {
		g.AddEdge(e.U, e.V, e.W)
	}
	return g
}
