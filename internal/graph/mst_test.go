package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// bruteForceMSTWeight enumerates all spanning trees of small connected
// graphs via edge subsets — the reference for Kruskal.
func bruteForceMSTWeight(g *Graph) float64 {
	edges := g.Edges()
	n := g.N()
	best := math.Inf(1)
	// Choose n-1 edges out of m; m is tiny in tests.
	var rec func(start int, chosen []Edge)
	rec = func(start int, chosen []Edge) {
		if len(chosen) == n-1 {
			uf := NewUnionFind(n)
			var w float64
			for _, e := range chosen {
				uf.Union(e.U, e.V)
				w += e.W
			}
			if uf.Count() == 1 && w < best {
				best = w
			}
			return
		}
		for i := start; i < len(edges); i++ {
			rec(i+1, append(chosen, edges[i]))
		}
	}
	rec(0, nil)
	return best
}

func TestMSTMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	f := func(seed uint8) bool {
		n := 3 + int(seed)%5
		g := New(n)
		// Guarantee connectivity with a random spanning path, then add
		// extra random edges.
		perm := rng.Perm(n)
		for i := 0; i+1 < n; i++ {
			g.AddEdge(perm[i], perm[i+1], 0.1+rng.Float64())
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if !g.HasEdge(u, v) && rng.Float64() < 0.4 {
					g.AddEdge(u, v, 0.1+rng.Float64())
				}
			}
		}
		want := bruteForceMSTWeight(g)
		got := g.MSTWeight()
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMSTIsSpanningForest(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 25, 0.15)
		mst := g.MST()
		forest := FromEdges(g.N(), mst)
		if len(forest.Components()) != len(g.Components()) {
			t.Fatalf("MST component count %d != graph %d", len(forest.Components()), len(g.Components()))
		}
		// Acyclic: edges = n - #components.
		if len(mst) != g.N()-len(g.Components()) {
			t.Fatalf("MST edge count %d, want %d", len(mst), g.N()-len(g.Components()))
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Errorf("Count = %d", uf.Count())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Error("Union of disjoint sets returned false")
	}
	if uf.Union(0, 2) {
		t.Error("Union of joined sets returned true")
	}
	if !uf.Same(0, 2) || uf.Same(0, 3) {
		t.Error("Same is wrong")
	}
	if uf.Count() != 3 {
		t.Errorf("Count after unions = %d", uf.Count())
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 4, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v", comps)
	}
	if len(comps[0]) != 2 || len(comps[1]) != 3 || len(comps[2]) != 1 {
		t.Errorf("component sizes wrong: %v", comps)
	}
	if comps[2][0] != 5 {
		t.Errorf("isolated vertex misplaced: %v", comps)
	}
}

func TestConnected(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	g.AddEdge(1, 2, 1)
	if !g.Connected() {
		t.Error("connected graph reported disconnected")
	}
	if !New(1).Connected() || !New(0).Connected() {
		t.Error("trivial graphs should be connected")
	}
}

func TestMSTDeterministicUnderTies(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(3, 0, 1)
	a := g.MST()
	b := g.MST()
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("MST sizes: %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MST not deterministic under ties")
		}
	}
}
