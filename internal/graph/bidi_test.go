package graph

// Differential fuzz suite for the bidirectional point-to-point kernels:
// DijkstraTarget and PathTo (and the append-style AppendPathTo) must agree
// with the retained unidirectional reference kernels on distance, found
// flag, and bound semantics — for both the mutable *Graph (generic loop)
// and the frozen CSR *Frozen (devirtualized loop) — and every returned
// path must be a valid walk whose edge weights sum to the reported length.

import (
	"math"
	"math/rand"
	"testing"
)

// checkPointQuery cross-checks one (src, dst, bound) query on topology
// view t against the unidirectional reference answer (refD, refOK)
// computed on the same logical graph.
func checkPointQuery(tt *testing.T, s *Searcher, t Topology, src, dst int, bound, refD float64, refOK bool) {
	tt.Helper()
	d, ok := s.DijkstraTarget(t, src, dst, bound)
	if ok != refOK {
		tt.Fatalf("DijkstraTarget(%d,%d,%v) found=%v, reference %v", src, dst, bound, ok, refOK)
	}
	if ok && math.Abs(d-refD) > 1e-9*(1+math.Abs(refD)) {
		tt.Fatalf("DijkstraTarget(%d,%d,%v) = %v, reference %v", src, dst, bound, d, refD)
	}
	if got := s.ReachableWithin(t, src, dst, bound); got != refOK {
		tt.Fatalf("ReachableWithin(%d,%d,%v) = %v, reference %v", src, dst, bound, got, refOK)
	}
	path, pd, pok := s.PathTo(t, src, dst, bound)
	if pok != refOK {
		tt.Fatalf("PathTo(%d,%d,%v) found=%v, reference %v", src, dst, bound, pok, refOK)
	}
	if !pok {
		if path != nil {
			tt.Fatalf("PathTo(%d,%d,%v) not found but returned path %v", src, dst, bound, path)
		}
		return
	}
	if math.Abs(pd-refD) > 1e-9*(1+math.Abs(refD)) {
		tt.Fatalf("PathTo(%d,%d,%v) length %v, reference %v", src, dst, bound, pd, refD)
	}
	if path[0] != src || path[len(path)-1] != dst {
		tt.Fatalf("PathTo(%d,%d) endpoints %v", src, dst, path)
	}
	var sum float64
	for i := 0; i+1 < len(path); i++ {
		w, present := t.EdgeWeight(path[i], path[i+1])
		if !present {
			tt.Fatalf("PathTo(%d,%d) hop %d-%d is not an edge", src, dst, path[i], path[i+1])
		}
		sum += w
	}
	if math.Abs(sum-pd) > 1e-9*(1+math.Abs(pd)) {
		tt.Fatalf("PathTo(%d,%d) path sums to %v, reported %v", src, dst, sum, pd)
	}
	for i, v := range path {
		for j := i + 1; j < len(path); j++ {
			if path[j] == v {
				tt.Fatalf("PathTo(%d,%d) revisits %d: %v", src, dst, v, path)
			}
		}
	}
}

// fuzzQueries drives a batch of cross-checked queries against both the
// mutable graph and a fresh frozen copy.
func fuzzQueries(t *testing.T, rng *rand.Rand, s, ref *Searcher, g *Graph, queries int) {
	t.Helper()
	f := Freeze(g)
	n := g.N()
	for q := 0; q < queries; q++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		refD, refConn := ref.DijkstraTargetUni(g, src, dst, Inf)
		// Bound menu: unbounded; strictly below the distance (must not be
		// found); just above it (must be found); and an unrelated random
		// bound whose found-ness both kernels must agree on. Exact-distance
		// bounds are excluded deliberately: the two kernels sum the same
		// path in different association orders, so at a bound within one
		// ulp of the distance they may legitimately disagree.
		bounds := []struct {
			b  float64
			ok bool
		}{{Inf, refConn}}
		if refConn && refD > 0 {
			bounds = append(bounds,
				struct {
					b  float64
					ok bool
				}{refD * 0.999, false},
				struct {
					b  float64
					ok bool
				}{refD*1.001 + 1e-9, true},
			)
		}
		rb := rng.Float64() * 3
		_, rbOK := ref.DijkstraTargetUni(g, src, dst, rb)
		bounds = append(bounds, struct {
			b  float64
			ok bool
		}{rb, rbOK})
		for _, bc := range bounds {
			d := refD
			if src == dst {
				d = 0
			}
			checkPointQuery(t, s, g, src, dst, bc.b, d, bc.ok)
			checkPointQuery(t, s, f, src, dst, bc.b, d, bc.ok)
		}
	}
}

// TestBidiMatchesUniFuzz fuzzes 1000 random graphs — including sparse,
// dense, disconnected, and edgeless shapes — comparing the bidirectional
// kernels against the unidirectional reference on both representations.
func TestBidiMatchesUniFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	s, ref := NewSearcher(0), NewSearcher(0)
	for trial := 0; trial < 1000; trial++ {
		n := 2 + rng.Intn(32)
		g := frozenRandGraph(rng, n, rng.Intn(3*n))
		fuzzQueries(t, rng, s, ref, g, 6)
	}
}

// TestBidiMatchesUniUnderMutationChains replays PR-2-style mutation
// chains: interleaved random edge insertions and removals with
// cross-checked queries after every step, re-freezing periodically so the
// CSR loop is exercised against post-mutation adjacency too (rows shuffled
// by RemoveEdge's swap-delete).
func TestBidiMatchesUniUnderMutationChains(t *testing.T) {
	rng := rand.New(rand.NewSource(987))
	s, ref := NewSearcher(0), NewSearcher(0)
	for chain := 0; chain < 25; chain++ {
		n := 8 + rng.Intn(24)
		g := frozenRandGraph(rng, n, n)
		for step := 0; step < 40; step++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if g.HasEdge(u, v) {
				g.RemoveEdge(u, v)
			} else {
				g.AddEdge(u, v, 0.1+rng.Float64())
			}
			fuzzQueries(t, rng, s, ref, g, 2)
		}
	}
}

// TestAppendPathToSemantics pins the append contract: the path is appended
// after the existing prefix, a miss leaves the buffer untouched, and a
// warmed buffer is reused without reallocation.
func TestAppendPathToSemantics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	s := NewSearcher(g.N())

	buf := []int{77}
	buf, d, ok := s.AppendPathTo(buf, g, 0, 2, Inf)
	if !ok || d != 2 {
		t.Fatalf("AppendPathTo = %v, %v", d, ok)
	}
	want := []int{77, 0, 1, 2}
	if len(buf) != len(want) {
		t.Fatalf("buf = %v, want %v", buf, want)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("buf = %v, want %v", buf, want)
		}
	}

	// Miss: vertex 3 is isolated; the buffer must come back unchanged.
	missBuf, _, ok := s.AppendPathTo(buf, g, 0, 3, Inf)
	if ok || len(missBuf) != len(buf) {
		t.Fatalf("miss altered buffer: %v ok=%v", missBuf, ok)
	}

	// Reuse: with sufficient capacity no new array is allocated.
	buf = buf[:0]
	buf2, _, ok := s.AppendPathTo(buf, g, 0, 2, Inf)
	if !ok || &buf2[0] != &buf[:1][0] {
		t.Fatal("AppendPathTo reallocated despite sufficient capacity")
	}

	// src == dst appends the single vertex, even with a prefix.
	self, d, ok := s.AppendPathTo([]int{5}, g, 2, 2, Inf)
	if !ok || d != 0 || len(self) != 2 || self[1] != 2 {
		t.Fatalf("self route = %v, %v, %v", self, d, ok)
	}
}
