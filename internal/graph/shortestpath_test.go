package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomGraph generates a random weighted graph for differential testing.
func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v, 0.1+rng.Float64())
			}
		}
	}
	return g
}

// TestDijkstraMatchesFloydWarshallProperty is the core differential test:
// single-source Dijkstra must agree with all-pairs Floyd–Warshall on random
// graphs of varying density.
func TestDijkstraMatchesFloydWarshallProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	f := func(seed uint8) bool {
		n := 2 + int(seed)%14
		g := randomGraph(rng, n, 0.3)
		fw := g.FloydWarshall()
		for src := 0; src < n; src++ {
			d := g.Dijkstra(src)
			for v := 0; v < n; v++ {
				a, b := d[v], fw[src][v]
				if math.IsInf(a, 1) != math.IsInf(b, 1) {
					return false
				}
				if !math.IsInf(a, 1) && math.Abs(a-b) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDijkstraBoundedIsTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		g := randomGraph(rng, 20, 0.25)
		src := rng.Intn(20)
		bound := rng.Float64() * 2
		full := g.Dijkstra(src)
		got := g.DijkstraBounded(src, bound)
		for v, d := range got {
			if math.Abs(d-full[v]) > 1e-9 {
				t.Fatalf("bounded distance %v != full %v", d, full[v])
			}
			if d > bound+1e-12 {
				t.Fatalf("bounded search returned %v > bound %v", d, bound)
			}
		}
		for v := 0; v < 20; v++ {
			if full[v] <= bound {
				if _, ok := got[v]; !ok {
					t.Fatalf("vertex %d at distance %v missing from bounded result (bound %v)", v, full[v], bound)
				}
			}
		}
	}
}

func TestDijkstraTargetAgreesWithFull(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(rng, 15, 0.3)
		u, v := rng.Intn(15), rng.Intn(15)
		full := g.Dijkstra(u)
		bound := rng.Float64() * 3
		d, ok := g.DijkstraTarget(u, v, bound)
		reachable := full[v] <= bound
		if ok != reachable {
			t.Fatalf("DijkstraTarget ok=%v but full distance %v vs bound %v", ok, full[v], bound)
		}
		if ok && math.Abs(d-full[v]) > 1e-9 {
			t.Fatalf("DijkstraTarget distance %v != %v", d, full[v])
		}
	}
}

func TestDijkstraTargetSelf(t *testing.T) {
	g := New(2)
	if d, ok := g.DijkstraTarget(0, 0, 0); !ok || d != 0 {
		t.Errorf("self target = %v, %v", d, ok)
	}
}

func TestDijkstraPathOnLine(t *testing.T) {
	// 0 -1- 1 -1- 2 -1- 3, plus shortcut 0-3 weight 10.
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	g.AddEdge(0, 3, 10)
	d := g.Dijkstra(0)
	want := []float64{0, 1, 2, 3}
	for i, w := range want {
		if d[i] != w {
			t.Errorf("d[%d] = %v, want %v", i, d[i], w)
		}
	}
}

func TestBFSHops(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	g.AddEdge(2, 3, 1)
	hops := g.BFSHops(0, 2)
	if len(hops) != 3 {
		t.Fatalf("depth-2 BFS found %d vertices, want 3", len(hops))
	}
	if hops[2] != 2 {
		t.Errorf("hops[2] = %d", hops[2])
	}
	all := g.BFSHops(0, -1)
	if len(all) != 4 { // vertex 4 isolated
		t.Errorf("unbounded BFS found %d vertices, want 4", len(all))
	}
	if _, ok := all[4]; ok {
		t.Error("isolated vertex reachable")
	}
}

func TestBFSHopsZeroDepth(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	hops := g.BFSHops(0, 0)
	if len(hops) != 1 || hops[0] != 0 {
		t.Errorf("depth-0 BFS = %v", hops)
	}
}

func TestUnreachableIsInf(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	d := g.Dijkstra(0)
	if !math.IsInf(d[2], 1) {
		t.Errorf("unreachable distance = %v", d[2])
	}
	if _, ok := g.DijkstraTarget(0, 2, 1e18); ok {
		t.Error("unreachable target reported reachable")
	}
}
