package graph

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// frozenRandGraph builds a random simple graph on n vertices with roughly the
// requested number of edges.
func frozenRandGraph(rng *rand.Rand, n, edges int) *Graph {
	g := New(n)
	for tries := 0; g.M() < edges && tries < 20*edges; tries++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.AddEdge(u, v, 0.1+rng.Float64())
	}
	return g
}

// edgeSet renders a topology's edge set canonically for comparison.
func edgeSet(t Topology) string {
	es := t.EdgesUnordered()
	keys := make([]string, len(es))
	for i, e := range es {
		keys[i] = fmt.Sprintf("%d-%d:%.12f", e.U, e.V, e.W)
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// requireSameTopology checks that f and g agree on every Topology method.
func requireSameTopology(t *testing.T, f *Frozen, g *Graph) {
	t.Helper()
	if f.N() != g.N() || f.M() != g.M() {
		t.Fatalf("size mismatch: frozen %d/%d, graph %d/%d", f.N(), f.M(), g.N(), g.M())
	}
	if f.MaxDegree() != g.MaxDegree() {
		t.Fatalf("max degree %d != %d", f.MaxDegree(), g.MaxDegree())
	}
	if w1, w2 := f.TotalWeight(), g.TotalWeight(); math.Abs(w1-w2) > 1e-9*(1+math.Abs(w2)) {
		t.Fatalf("total weight %v != %v", w1, w2)
	}
	for u := 0; u < g.N(); u++ {
		if f.Degree(u) != g.Degree(u) {
			t.Fatalf("degree(%d) %d != %d", u, f.Degree(u), g.Degree(u))
		}
		for _, h := range g.Neighbors(u) {
			if !f.HasEdge(u, h.To) {
				t.Fatalf("frozen lost edge {%d,%d}", u, h.To)
			}
			if w, ok := f.EdgeWeight(u, h.To); !ok || w != h.W {
				t.Fatalf("edge weight {%d,%d}: %v/%v, want %v", u, h.To, w, ok, h.W)
			}
		}
	}
	if edgeSet(f) != edgeSet(g) {
		t.Fatalf("edge sets differ:\n frozen %s\n graph  %s", edgeSet(f), edgeSet(g))
	}
}

func TestFreezeMatchesGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(40)
		g := frozenRandGraph(rng, n, rng.Intn(3*n))
		requireSameTopology(t, Freeze(g), g)
	}
}

func TestFreezeDegenerate(t *testing.T) {
	// Empty graph.
	f := Freeze(New(0))
	if f.N() != 0 || f.M() != 0 || f.MaxDegree() != 0 || f.TotalWeight() != 0 {
		t.Fatalf("empty freeze: %d/%d", f.N(), f.M())
	}
	if len(f.EdgesUnordered()) != 0 {
		t.Fatal("empty freeze has edges")
	}

	// Single vertex.
	f = Freeze(New(1))
	if f.N() != 1 || f.Degree(0) != 0 || len(f.Neighbors(0)) != 0 {
		t.Fatalf("single-vertex freeze: n=%d deg=%d", f.N(), f.Degree(0))
	}
	if f.HasEdge(0, 0) {
		t.Fatal("phantom self-edge")
	}

	// Post-Grow: frozen view includes the grown, isolated range.
	g := New(2)
	g.AddEdge(0, 1, 1.5)
	g.Grow(6)
	g.AddEdge(4, 5, 2.5)
	f = Freeze(g)
	requireSameTopology(t, f, g)
	if f.Degree(3) != 0 {
		t.Fatalf("grown vertex degree %d", f.Degree(3))
	}
}

func TestFrozenOutOfRange(t *testing.T) {
	f := Freeze(New(3))
	if f.HasEdge(-1, 2) || f.HasEdge(0, 3) {
		t.Fatal("out-of-range HasEdge true")
	}
	if _, ok := f.EdgeWeight(7, 0); ok {
		t.Fatal("out-of-range EdgeWeight ok")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Neighbors(-1) did not panic")
		}
	}()
	f.Neighbors(-1)
}

// TestFrozenNeighborsSealed checks the returned rows are capacity-clamped:
// an append by a misbehaving caller must not overwrite the next row in the
// shared slab.
func TestFrozenNeighborsSealed(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	f := Freeze(g)
	row := f.Neighbors(0)
	_ = append(row, Halfedge{To: 99, W: 99})
	requireSameTopology(t, f, g)
}

func TestThawRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := frozenRandGraph(rng, 20, 40)
	th := Freeze(g).Thaw()
	requireSameTopology(t, Freeze(th), g)
	// The thawed copy is independent of the frozen original.
	th.AddEdge(0, 19, 9)
	if !th.HasEdge(0, 19) {
		t.Fatal("thawed graph not mutable")
	}
}

// TestUpdateFrozenDifferential drives random mutation sequences against a
// mutable graph while maintaining a frozen snapshot chain via UpdateFrozen,
// and checks after every step that the chained snapshot is indistinguishable
// from a from-scratch Freeze.
func TestUpdateFrozenDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(20)
		g := frozenRandGraph(rng, n, 2*n)
		f := Freeze(g)
		for step := 0; step < 40; step++ {
			var touched []int
			switch r := rng.Float64(); {
			case r < 0.45: // add an edge
				u, v := rng.Intn(g.N()), rng.Intn(g.N())
				if u == v || g.HasEdge(u, v) {
					break
				}
				g.AddEdge(u, v, 0.1+rng.Float64())
				touched = []int{u, v}
			case r < 0.8: // remove an edge
				es := g.EdgesUnordered()
				if len(es) == 0 {
					break
				}
				e := es[rng.Intn(len(es))]
				g.RemoveEdge(e.U, e.V)
				touched = []int{e.U, e.V}
			default: // grow
				g.Grow(g.N() + 1 + rng.Intn(3))
			}
			f = UpdateFrozen(f, g, touched)
			requireSameTopology(t, f, g)
		}
	}
}

func TestUpdateFrozenSharing(t *testing.T) {
	g := New(6)
	g.AddEdge(0, 1, 1)
	g.AddEdge(2, 3, 2)
	g.AddEdge(4, 5, 3)
	f1 := Freeze(g)

	// No touched rows: the previous snapshot is returned by identity.
	if f2 := UpdateFrozen(f1, g, nil); f2 != f1 {
		t.Fatal("no-op update did not return the previous snapshot")
	}

	// Touched rows that compare equal (net-zero batch: add then remove)
	// also return the previous snapshot by identity.
	g.AddEdge(0, 3, 9)
	g.RemoveEdge(0, 3)
	if f2 := UpdateFrozen(f1, g, []int{0, 3}); f2 != f1 {
		t.Fatal("net-zero update did not return the previous snapshot")
	}

	// A real change produces a new snapshot that only rebuilds the touched
	// rows.
	g.AddEdge(0, 2, 7)
	f2 := UpdateFrozen(f1, g, []int{0, 2})
	requireSameTopology(t, f2, g)
	if f2 == f1 {
		t.Fatal("real update returned the previous snapshot")
	}
	// The old snapshot still answers from its own version.
	if f1.HasEdge(0, 2) {
		t.Fatal("old snapshot sees the new edge")
	}
	if !f2.HasEdge(0, 2) {
		t.Fatal("new snapshot misses the new edge")
	}

	// A further update in the chain shares storage with its predecessor:
	// untouched rows keep their spans (dirty rows are appended at the
	// tail, so a rebuilt row would have moved there).
	g.AddEdge(1, 5, 8)
	f3 := UpdateFrozen(f2, g, []int{1, 5})
	requireSameTopology(t, f3, g)
	if f3.rows[4] != f2.rows[4] || f3.rows[0] != f2.rows[0] {
		t.Fatal("untouched rows were rebuilt instead of shared")
	}
	if f3.rows[1].off < int32(len(f2.slab)) {
		t.Fatal("dirty row was not appended at the slab tail")
	}
}

// TestFrozenSearchAgrees pins that every Searcher query returns identical
// results on a Graph and its Frozen counterpart.
func TestFrozenSearchAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	s1, s2 := NewSearcher(0), NewSearcher(0)
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(30)
		g := frozenRandGraph(rng, n, 2*n)
		f := Freeze(g)
		for q := 0; q < 30; q++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			d1, ok1 := s1.DijkstraTarget(g, src, dst, Inf)
			d2, ok2 := s2.DijkstraTarget(f, src, dst, Inf)
			if ok1 != ok2 || (ok1 && math.Abs(d1-d2) > 1e-12) {
				t.Fatalf("DijkstraTarget(%d,%d): graph %v/%v, frozen %v/%v", src, dst, d1, ok1, d2, ok2)
			}
			p1, c1, okp1 := s1.PathTo(g, src, dst, Inf)
			p2, c2, okp2 := s2.PathTo(f, src, dst, Inf)
			if okp1 != okp2 || (okp1 && math.Abs(c1-c2) > 1e-12) {
				t.Fatalf("PathTo(%d,%d): graph %v/%v, frozen %v/%v", src, dst, c1, okp1, c2, okp2)
			}
			if okp1 {
				// Both paths must certify at their reported cost on the
				// *other* representation (the exact vertex sequence may
				// differ only if equal-cost ties exist; certify instead of
				// comparing sequences).
				if w, ok := PathWeight(f, p1); !ok || math.Abs(w-c1) > 1e-12 {
					t.Fatalf("graph path does not certify on frozen: %v %v", w, ok)
				}
				if w, ok := PathWeight(g, p2); !ok || math.Abs(w-c2) > 1e-12 {
					t.Fatalf("frozen path does not certify on graph: %v %v", w, ok)
				}
			}
			h1, okh1 := s1.HopsTo(g, src, dst)
			h2, okh2 := s2.HopsTo(f, src, dst)
			if okh1 != okh2 || h1 != h2 {
				t.Fatalf("HopsTo(%d,%d): graph %d/%v, frozen %d/%v", src, dst, h1, okh1, h2, okh2)
			}
		}
		out1, out2 := make([]float64, n), make([]float64, n)
		src := rng.Intn(n)
		s1.Dijkstra(g, src, Inf, out1)
		s2.Dijkstra(f, src, Inf, out2)
		for v := range out1 {
			if out1[v] != out2[v] && !(math.IsInf(out1[v], 1) && math.IsInf(out2[v], 1)) {
				t.Fatalf("Dijkstra dist[%d]: %v != %v", v, out1[v], out2[v])
			}
		}
	}
}

// TestUpdateFrozenCompaction drives enough churn through one chain that the
// slab must compact, and checks correctness is unaffected and the slab stays
// bounded relative to the live edge set.
func TestUpdateFrozenCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := frozenRandGraph(rng, 16, 32)
	f := Freeze(g)
	for step := 0; step < 500; step++ {
		var touched []int
		if es := g.EdgesUnordered(); len(es) > 0 {
			e := es[rng.Intn(len(es))]
			g.RemoveEdge(e.U, e.V)
			touched = append(touched, e.U, e.V)
		}
		if u, v := rng.Intn(16), rng.Intn(16); u != v && !g.HasEdge(u, v) {
			g.AddEdge(u, v, 0.1+rng.Float64())
			touched = append(touched, u, v)
		}
		f = UpdateFrozen(f, g, touched)
	}
	requireSameTopology(t, f, g)
	if len(f.slab) > 3*2*g.M()+64 {
		t.Fatalf("slab never compacted: %d halfedges for m=%d", len(f.slab), g.M())
	}
}
