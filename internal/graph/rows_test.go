package graph

import (
	"math/rand"
	"testing"
)

// applyRowsMirror drives a mutable Graph and a row-applied Frozen chain
// through the same random mutation sequence and requires them to agree.
// Row updates are captured the way a WAL frame would: after each batch,
// the full post-batch rows of every vertex an edge change touched.
func TestApplyRowsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 48
	g := New(n)
	var f *Frozen
	f = ApplyRows(f, n, nil)

	for step := 0; step < 400; step++ {
		touched := map[int]struct{}{}
		for k := 0; k < 1+rng.Intn(4); k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			if g.HasEdge(u, v) {
				g.RemoveEdge(u, v)
			} else {
				g.AddEdge(u, v, 0.1+rng.Float64())
			}
			touched[u] = struct{}{}
			touched[v] = struct{}{}
		}
		ups := make([]RowUpdate, 0, len(touched))
		for v := range touched {
			ups = append(ups, RowUpdate{V: v, Row: g.Neighbors(v)})
		}
		f = ApplyRows(f, n, ups)
		if f.M() != g.M() {
			t.Fatalf("step %d: frozen m=%d, graph m=%d", step, f.M(), g.M())
		}
		if f.MaxDegree() < g.MaxDegree() {
			// ApplyRows' cached max degree may overshoot after removals
			// (like UpdateFrozen it never rescans untouched rows), but the
			// row table scan keeps it exact here since all rows are scanned.
			t.Fatalf("step %d: frozen maxdeg=%d < graph maxdeg=%d", step, f.MaxDegree(), g.MaxDegree())
		}
		for u := 0; u < n; u++ {
			want := g.Neighbors(u)
			got := f.Neighbors(u)
			if len(want) != len(got) {
				t.Fatalf("step %d: vertex %d row length %d != %d", step, u, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("step %d: vertex %d halfedge %d: %v != %v", step, u, i, got[i], want[i])
				}
			}
		}
	}
}

// TestApplyRowsNoChange pins the pointer-identity fast path and growth.
func TestApplyRowsNoChange(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 2)
	f := ApplyRows(nil, 4, []RowUpdate{
		{V: 0, Row: g.Neighbors(0)},
		{V: 1, Row: g.Neighbors(1)},
		{V: 2, Row: g.Neighbors(2)},
	})
	if f.M() != 2 || f.TotalWeight() != 3 {
		t.Fatalf("built m=%d weight=%g, want 2/3", f.M(), f.TotalWeight())
	}
	same := ApplyRows(f, 4, []RowUpdate{{V: 0, Row: g.Neighbors(0)}})
	if same != f {
		t.Fatal("identical rows must return prev by pointer")
	}
	grown := ApplyRows(f, 8, nil)
	if grown == f || grown.N() != 8 || grown.M() != 2 {
		t.Fatalf("growth: n=%d m=%d", grown.N(), grown.M())
	}
	if grown.Degree(7) != 0 {
		t.Fatal("new rows must start empty")
	}
}
