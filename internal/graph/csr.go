package graph

import (
	"fmt"
	"math"
)

// CSRBuilder assembles a Frozen directly — rows pre-sized from a degree
// count into one exactly-sized halfedge slab — without going through the
// mutable Graph and its per-row append growth. It is the sink of the
// parallel build path (internal/ubg): the caller makes one counting pass
// accumulating Deg, calls Alloc, fills every row, and seals with Finish.
//
// Concurrency contract: after Alloc, disjoint rows may be filled from
// different goroutines — Row hands out non-overlapping slab windows — as
// long as each vertex's row is written by exactly one goroutine. Deg is
// plain memory; parallel counting passes must likewise partition vertices
// so no element is written by two workers.
type CSRBuilder struct {
	// Deg is the per-vertex halfedge count the caller accumulates before
	// Alloc. Each undirected edge contributes once at each endpoint.
	Deg []int32

	rows []rowSpan
	slab []Halfedge
}

// NewCSRBuilder returns a builder for a graph on n vertices with all
// degree counts zero.
func NewCSRBuilder(n int) *CSRBuilder {
	if n < 0 {
		panic("graph: negative vertex count")
	}
	return &CSRBuilder{Deg: make([]int32, n)}
}

// Alloc prefix-sums the degree counts into row spans and allocates the
// exactly-sized slab. Deg must not change afterwards.
func (b *CSRBuilder) Alloc() {
	b.rows = make([]rowSpan, len(b.Deg))
	var off int64
	for u, d := range b.Deg {
		if d < 0 {
			panic(fmt.Sprintf("graph: negative degree %d at vertex %d", d, u))
		}
		b.rows[u] = rowSpan{off: int32(off), deg: d}
		off += int64(d)
	}
	if off > math.MaxInt32 {
		panic(fmt.Sprintf("graph: CSR slab of %d halfedges exceeds int32 offsets", off))
	}
	b.slab = make([]Halfedge, off)
}

// Row returns u's slab window, length Deg[u], for the caller to fill.
// Capacity is clamped so a filler cannot spill into the next row.
func (b *CSRBuilder) Row(u int) []Halfedge {
	r := b.rows[u]
	return b.slab[r.off : r.off+r.deg : r.off+r.deg]
}

// Finish seals the builder into a Frozen, computing the cached aggregates
// (M, TotalWeight, MaxDegree) in one slab pass. Every row must have been
// completely filled with a symmetric halfedge set — each undirected edge
// present in both endpoint rows — or the aggregates (and every consumer)
// will be inconsistent. The builder must not be reused afterwards.
func (b *CSRBuilder) Finish() *Frozen {
	if b.rows == nil {
		b.Alloc() // n == 0 or all-isolated: an empty slab is valid
	}
	f := &Frozen{rows: b.rows, slab: b.slab}
	for u := range f.rows {
		row := f.row(u)
		if len(row) > f.maxDeg {
			f.maxDeg = len(row)
		}
		for _, h := range row {
			if u < h.To {
				f.m++
				f.weight += h.W
			}
		}
	}
	b.rows, b.slab, b.Deg = nil, nil, nil
	return f
}

// NewWithDegree returns an empty graph on n vertices whose adjacency rows
// are pre-reserved with capacity degHint inside one shared slab: AddEdge
// appends in place until a row outgrows the hint, and only that row then
// reallocates. For bounded-degree topologies (every spanner in this
// repository) this collapses the O(n) per-row growth allocations of a
// build to O(1).
func NewWithDegree(n, degHint int) *Graph {
	g := New(n)
	if degHint <= 0 || n == 0 {
		return g
	}
	slab := make([]Halfedge, int64(n)*int64(degHint))
	for u := range g.adj {
		lo := int64(u) * int64(degHint)
		g.adj[u] = slab[lo : lo : lo+int64(degHint)]
	}
	return g
}

// NewWithDegrees returns an empty graph whose row u is pre-reserved with
// exactly capacity degs[u] in one shared slab — the fill-after-count
// counterpart of NewWithDegree for callers that know the final degree
// sequence. Adding precisely the counted edges performs no further
// allocation.
func NewWithDegrees(degs []int32) *Graph {
	g := New(len(degs))
	var total int64
	for _, d := range degs {
		total += int64(d)
	}
	if total == 0 {
		return g
	}
	slab := make([]Halfedge, total)
	var off int64
	for u, d := range degs {
		g.adj[u] = slab[off : off : off+int64(d)]
		off += int64(d)
	}
	return g
}
