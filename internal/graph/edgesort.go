package graph

import (
	"math"
	"slices"
)

// Canonical edge ordering — by weight, then (U, V) lexicographically — is
// on the hot path of every greedy construction: SEQ-GREEDY sorts the full
// candidate edge list before its acceptance sweep, and on dense instances
// (m ~ n²/2) the sort rivals the acceptance searches themselves. Small
// slices use the generic slices.SortFunc (no interface boxing, no
// reflected swaps); large ones take an LSD radix sort over the IEEE-754
// bit pattern of the weight, which is branch-free per element and linear
// in m.

// cmpEdgeCanonical is the canonical three-way comparator. Vertex ids are
// dense small ints, so the subtractions cannot overflow.
func cmpEdgeCanonical(a, b Edge) int {
	switch {
	case a.W != b.W:
		if a.W < b.W {
			return -1
		}
		return 1
	case a.U != b.U:
		return a.U - b.U
	default:
		return a.V - b.V
	}
}

// cmpEdgeUV breaks ties among equal-weight edges.
func cmpEdgeUV(a, b Edge) int {
	if a.U != b.U {
		return a.U - b.U
	}
	return a.V - b.V
}

// radixMinEdges is the slice length at which the radix path takes over.
// Below it the comparison sort wins (and allocates nothing, which matters
// to the incremental-repair loop whose candidate lists are tiny).
const radixMinEdges = 2048

// SortEdgesCanonical sorts an edge slice by weight, then (U, V)
// lexicographically — the deterministic order shared by Graph.Edges,
// Frozen.Edges, and the greedy processing pipeline. The result is
// identical for the comparison and radix paths (pinned by differential
// test), so callers never observe the cutover.
func SortEdgesCanonical(es []Edge) {
	if len(es) < radixMinEdges {
		slices.SortFunc(es, cmpEdgeCanonical)
		return
	}
	radixSortEdges(es)
}

// edgeKeyIdx pairs a sortable weight key with the edge's original index,
// so the radix passes move 16-byte records instead of 24-byte edges; the
// edges are permuted once at the end.
type edgeKeyIdx struct {
	key uint64
	idx int32
}

// radixSortEdges sorts es canonically: four 16-bit LSD counting passes
// over the weight key, one permutation pass, then a comparison sort inside
// each equal-weight run for the (U, V) tie-break. The weight key is the
// standard total-order fold of the IEEE-754 bits (negatives, including
// -0.0, order below positives); the tie-break pass detects runs with
// float equality, so -0.0 and +0.0 — distinct keys, equal weights — end
// up in the same run and in canonical (U, V) order, exactly as the
// comparison sort leaves them.
func radixSortEdges(es []Edge) {
	n := len(es)
	keys := make([]edgeKeyIdx, n)
	for i, e := range es {
		b := math.Float64bits(e.W)
		if b>>63 == 1 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		keys[i] = edgeKeyIdx{key: b, idx: int32(i)}
	}
	tmp := make([]edgeKeyIdx, n)
	count := make([]int32, 1<<16)
	src, dst := keys, tmp
	for shift := 0; shift < 64; shift += 16 {
		clear(count)
		for _, k := range src {
			count[(k.key>>shift)&0xffff]++
		}
		if count[(src[0].key>>shift)&0xffff] == int32(n) {
			continue // every key shares this digit: pass is a no-op
		}
		var sum int32
		for i, c := range count {
			count[i] = sum
			sum += c
		}
		for _, k := range src {
			d := (k.key >> shift) & 0xffff
			dst[count[d]] = k
			count[d]++
		}
		src, dst = dst, src
	}
	out := make([]Edge, n)
	for i, k := range src {
		out[i] = es[k.idx]
	}
	copy(es, out)
	for i := 0; i < n; {
		j := i + 1
		for j < n && es[j].W == es[i].W {
			j++
		}
		if j-i > 1 {
			slices.SortFunc(es[i:j], cmpEdgeUV)
		}
		i = j
	}
}
