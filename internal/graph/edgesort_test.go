package graph

import (
	"math"
	"math/rand"
	"slices"
	"testing"
)

// refSortEdges is the retired comparison-only implementation, kept as the
// oracle the radix path must match element-for-element.
func refSortEdges(es []Edge) {
	slices.SortFunc(es, cmpEdgeCanonical)
}

func requireSameOrder(t *testing.T, got, want []Edge, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range got {
		// NaN-free inputs: struct equality is exact.
		if got[i] != want[i] {
			t.Fatalf("%s: index %d: %+v vs %+v", label, i, got[i], want[i])
		}
	}
}

// TestRadixSortMatchesComparisonSort fuzzes edge lists well past the radix
// cutover — random weights, heavy duplicate weights (lattice-style
// distance classes), duplicate triples, all-equal weights, and a -0.0/+0.0
// mix — and requires the exact order the comparison sort produces.
func TestRadixSortMatchesComparisonSort(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	gen := map[string]func(i int) Edge{
		"random": func(i int) Edge {
			return Edge{U: rng.Intn(200), V: rng.Intn(200), W: rng.Float64() * 10}
		},
		"duplicate-weights": func(i int) Edge {
			// Few distinct weights: long tie runs exercise the (U,V) pass.
			return Edge{U: rng.Intn(500), V: rng.Intn(500), W: float64(rng.Intn(7))}
		},
		"all-equal": func(i int) Edge {
			return Edge{U: rng.Intn(100), V: rng.Intn(100), W: 1.25}
		},
		"signed-zero": func(i int) Edge {
			w := 0.0
			switch rng.Intn(3) {
			case 0:
				w = math.Copysign(0, -1)
			case 1:
				w = rng.Float64()
			}
			return Edge{U: rng.Intn(50), V: rng.Intn(50), W: w}
		},
		"tiny-range": func(i int) Edge {
			// Identical high key digits: exercises the pass-skip path.
			return Edge{U: rng.Intn(50), V: rng.Intn(50), W: 1 + rng.Float64()*1e-9}
		},
	}
	for name, g := range gen {
		for _, n := range []int{radixMinEdges - 1, radixMinEdges, 3 * radixMinEdges} {
			a := make([]Edge, n)
			for i := range a {
				a[i] = g(i)
			}
			b := append([]Edge(nil), a...)
			SortEdgesCanonical(a)
			refSortEdges(b)
			requireSameOrder(t, a, b, name)
		}
	}
}

func BenchmarkSortEdgesCanonical(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	es := make([]Edge, 1<<17)
	for i := range es {
		es[i] = Edge{U: rng.Intn(512), V: rng.Intn(512), W: rng.Float64()}
	}
	work := make([]Edge, len(es))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, es)
		SortEdgesCanonical(work)
	}
}
