package graph

import "sync"

// VertexDist is one vertex reached by a bounded search, with its
// shortest-path distance from the source.
type VertexDist struct {
	V int
	D float64
}

// heapItem is an entry of the Searcher's hand-rolled binary heap. Keeping
// the struct concrete (no interface boxing, unlike container/heap) is what
// makes pushes and pops allocation-free.
type heapItem struct {
	dist float64
	v    int32
}

// heapPush inserts (d, v). The heap is passed by pointer so the forward and
// backward frontiers of the bidirectional kernels share one implementation
// without boxing.
func heapPush(hp *[]heapItem, d float64, v int32) {
	h := append(*hp, heapItem{dist: d, v: v})
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h[p].dist <= h[i].dist {
			break
		}
		h[p], h[i] = h[i], h[p]
		i = p
	}
	*hp = h
}

// heapPop removes and returns the minimum-distance entry.
func heapPop(hp *[]heapItem) heapItem {
	h := *hp
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && h[r].dist < h[l].dist {
			m = r
		}
		if h[i].dist <= h[m].dist {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	*hp = h
	return top
}

// SearchStats counts the work a Searcher has performed since construction
// or the last ResetStats. Settled is the number of vertices expanded
// (popped from a frontier and relaxed) across all searches — the quantity
// the bidirectional kernels halve relative to the unidirectional ones,
// pinned by test rather than benchmark noise. BFS dequeues (HopsTo) count
// as settles too.
type SearchStats struct {
	Searches int64
	Settled  int64
}

// Searcher is reusable scratch state for graph searches: epoch-stamped
// visited/distance arrays (O(1) logical reset between searches), index-based
// binary heaps of (vertex, dist) pairs, and result buffers. The label state
// exists twice — a forward and a backward set — so the bidirectional
// point-to-point kernels (DijkstraTarget, PathTo) run both frontiers out of
// one scratch object. A Searcher performs zero steady-state allocations:
// after it has grown to the largest graph it has seen, every search reuses
// the same memory.
//
// Kernels whose topology argument is the concrete *Frozen take a
// devirtualized fast path that walks the CSR (offset, degree) row table and
// halfedge slab directly, with no interface call per settled vertex; the
// generic loop serves *Graph and any other Topology. The dispatch happens
// once per search.
//
// A Searcher is not safe for concurrent use; give each goroutine its own
// (see metrics.StretchParallel) or use the package-level pool via the
// Graph.Dijkstra* convenience methods. The graphs passed to a Searcher's
// methods may differ call to call — the scratch arrays grow to the largest
// vertex count seen.
type Searcher struct {
	epoch uint32
	seen  []uint32 // seen[v] == epoch: forward label of v is valid this search
	done  []uint32 // done[v] == epoch: v is settled (single-frontier kernels)
	dist  []float64
	hops  []int32
	prev  []int32
	heap  []heapItem
	// Backward-frontier label set, used only by the bidirectional kernels.
	// Stamped with the same epoch as the forward set.
	seenB []uint32
	distB []float64
	prevB []int32
	heapB []heapItem
	ball  []VertexDist
	hball []VertexHop
	queue []int32
	stats SearchStats
}

// NewSearcher returns a Searcher pre-sized for graphs of n vertices.
func NewSearcher(n int) *Searcher {
	s := &Searcher{}
	s.grow(n)
	return s
}

// Stats returns the accumulated work counters.
func (s *Searcher) Stats() SearchStats { return s.stats }

// ResetStats zeroes the work counters.
func (s *Searcher) ResetStats() { s.stats = SearchStats{} }

// grow resizes the scratch arrays for graphs of n vertices.
func (s *Searcher) grow(n int) {
	s.seen = make([]uint32, n)
	s.done = make([]uint32, n)
	s.dist = make([]float64, n)
	s.hops = make([]int32, n)
	s.prev = make([]int32, n)
	s.seenB = make([]uint32, n)
	s.distB = make([]float64, n)
	s.prevB = make([]int32, n)
	s.epoch = 0
}

// begin starts a new search over an n-vertex graph: one counter bump
// invalidates every stamp from previous searches.
func (s *Searcher) begin(n int) {
	if len(s.seen) < n {
		s.grow(n)
	}
	s.epoch++
	if s.epoch == 0 { // stamp wrap-around: stale stamps could collide
		clear(s.seen)
		clear(s.done)
		clear(s.seenB)
		s.epoch = 1
	}
	s.heap = s.heap[:0]
}

// label relaxes v to forward distance d, reporting whether that improved
// its label.
func (s *Searcher) label(v int, d float64) bool {
	if s.seen[v] == s.epoch && s.dist[v] <= d {
		return false
	}
	s.seen[v] = s.epoch
	s.dist[v] = d
	return true
}

// DijkstraTargetUni is the unidirectional bounded point-to-point kernel:
// the shortest-path distance from src to dst in g, abandoning the search
// once all frontier labels exceed bound; the boolean reports whether a path
// of length at most bound exists. It settles the full distance ball around
// src up to min(d(src,dst), bound).
//
// The production kernel is the bidirectional DijkstraTarget, which answers
// the same query while settling roughly half the vertices (two half-radius
// balls); this one is retained as the independent reference the
// differential tests and the settled-work comparison (Stats) pin the
// bidirectional kernel against.
func (s *Searcher) DijkstraTargetUni(g Topology, src, dst int, bound float64) (float64, bool) {
	if src == dst {
		return 0, true
	}
	s.stats.Searches++
	s.begin(g.N())
	s.label(src, 0)
	heapPush(&s.heap, 0, int32(src))
	for len(s.heap) > 0 {
		it := heapPop(&s.heap)
		v := int(it.v)
		if s.done[v] == s.epoch {
			continue
		}
		s.stats.Settled++
		if v == dst {
			return it.dist, true
		}
		s.done[v] = s.epoch
		for _, h := range g.Neighbors(v) {
			if nd := it.dist + h.W; nd <= bound && s.label(h.To, nd) {
				heapPush(&s.heap, nd, int32(h.To))
			}
		}
	}
	return Inf, false
}

// PathToUni is the unidirectional counterpart of PathTo, retained (like
// DijkstraTargetUni) as the reference kernel for differential tests. The
// path slice is freshly allocated; scratch state is reused.
func (s *Searcher) PathToUni(g Topology, src, dst int, bound float64) ([]int, float64, bool) {
	if src == dst {
		return []int{src}, 0, true
	}
	s.stats.Searches++
	s.begin(g.N())
	s.label(src, 0)
	s.prev[src] = -1
	heapPush(&s.heap, 0, int32(src))
	for len(s.heap) > 0 {
		it := heapPop(&s.heap)
		v := int(it.v)
		if s.done[v] == s.epoch {
			continue
		}
		s.stats.Settled++
		if v == dst {
			var path []int
			for x := int32(dst); x != -1; x = s.prev[x] {
				path = append(path, int(x))
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path, it.dist, true
		}
		s.done[v] = s.epoch
		for _, h := range g.Neighbors(v) {
			if nd := it.dist + h.W; nd <= bound && s.label(h.To, nd) {
				s.prev[h.To] = int32(v)
				heapPush(&s.heap, nd, int32(h.To))
			}
		}
	}
	return nil, Inf, false
}

// Ball runs a bounded Dijkstra from src and returns every vertex within
// distance bound (inclusive) with its distance, in settling order. The
// returned slice is owned by the Searcher and valid only until its next
// search; callers that need to keep it must copy.
func (s *Searcher) Ball(g Topology, src int, bound float64) []VertexDist {
	s.stats.Searches++
	s.begin(g.N())
	s.ball = s.ball[:0]
	s.label(src, 0)
	heapPush(&s.heap, 0, int32(src))
	if f, ok := g.(*Frozen); ok {
		s.ballFrozen(f, bound)
	} else {
		s.ballTopology(g, bound)
	}
	return s.ball
}

// ballTopology is the generic Ball loop.
func (s *Searcher) ballTopology(g Topology, bound float64) {
	settled := int64(0)
	for len(s.heap) > 0 {
		it := heapPop(&s.heap)
		v := int(it.v)
		if s.done[v] == s.epoch {
			continue
		}
		s.done[v] = s.epoch
		settled++
		s.ball = append(s.ball, VertexDist{V: v, D: it.dist})
		for _, h := range g.Neighbors(v) {
			if nd := it.dist + h.W; nd <= bound && s.label(h.To, nd) {
				heapPush(&s.heap, nd, int32(h.To))
			}
		}
	}
	s.stats.Settled += settled
}

// ballFrozen is the Ball loop devirtualized over the CSR representation.
func (s *Searcher) ballFrozen(f *Frozen, bound float64) {
	settled := int64(0)
	for len(s.heap) > 0 {
		it := heapPop(&s.heap)
		v := int(it.v)
		if s.done[v] == s.epoch {
			continue
		}
		s.done[v] = s.epoch
		settled++
		s.ball = append(s.ball, VertexDist{V: v, D: it.dist})
		r := f.rows[v]
		for _, h := range f.slab[r.off : r.off+r.deg] {
			if nd := it.dist + h.W; nd <= bound && s.label(h.To, nd) {
				heapPush(&s.heap, nd, int32(h.To))
			}
		}
	}
	s.stats.Settled += settled
}

// Dijkstra fills out with the shortest-path distance from src to every
// vertex (Inf for unreachable ones), skipping expansion beyond bound.
// len(out) must be g.N().
func (s *Searcher) Dijkstra(g Topology, src int, bound float64, out []float64) {
	s.stats.Searches++
	s.begin(g.N())
	for i := range out {
		out[i] = Inf
	}
	s.label(src, 0)
	heapPush(&s.heap, 0, int32(src))
	settled := int64(0)
	if f, ok := g.(*Frozen); ok {
		for len(s.heap) > 0 {
			it := heapPop(&s.heap)
			v := int(it.v)
			if s.done[v] == s.epoch {
				continue
			}
			s.done[v] = s.epoch
			settled++
			out[v] = it.dist
			r := f.rows[v]
			for _, h := range f.slab[r.off : r.off+r.deg] {
				if nd := it.dist + h.W; nd <= bound && s.label(h.To, nd) {
					heapPush(&s.heap, nd, int32(h.To))
				}
			}
		}
	} else {
		for len(s.heap) > 0 {
			it := heapPop(&s.heap)
			v := int(it.v)
			if s.done[v] == s.epoch {
				continue
			}
			s.done[v] = s.epoch
			settled++
			out[v] = it.dist
			for _, h := range g.Neighbors(v) {
				if nd := it.dist + h.W; nd <= bound && s.label(h.To, nd) {
					heapPush(&s.heap, nd, int32(h.To))
				}
			}
		}
	}
	s.stats.Settled += settled
}

// DijkstraPruned runs a bounded Dijkstra from src, invoking visit on every
// settled vertex in nondecreasing distance order (src first, at distance 0).
// visit reports whether to expand v's outgoing edges; returning false prunes
// the search below v — v stays settled, but no label improvement propagates
// through it. This is the building block of pruned landmark labeling
// (internal/labels): the visit callback consults the labels built so far and
// cuts off every branch an earlier hub already covers, which is what keeps
// label sets near-logarithmic instead of linear.
func (s *Searcher) DijkstraPruned(g Topology, src int, bound float64, visit func(v int, d float64) bool) {
	s.stats.Searches++
	s.begin(g.N())
	s.label(src, 0)
	heapPush(&s.heap, 0, int32(src))
	if f, ok := g.(*Frozen); ok {
		s.prunedFrozen(f, bound, visit)
	} else {
		s.prunedTopology(g, bound, visit)
	}
}

// prunedTopology is the generic DijkstraPruned loop.
func (s *Searcher) prunedTopology(g Topology, bound float64, visit func(v int, d float64) bool) {
	settled := int64(0)
	for len(s.heap) > 0 {
		it := heapPop(&s.heap)
		v := int(it.v)
		if s.done[v] == s.epoch {
			continue
		}
		s.done[v] = s.epoch
		settled++
		if !visit(v, it.dist) {
			continue
		}
		for _, h := range g.Neighbors(v) {
			if nd := it.dist + h.W; nd <= bound && s.label(h.To, nd) {
				heapPush(&s.heap, nd, int32(h.To))
			}
		}
	}
	s.stats.Settled += settled
}

// prunedFrozen is the DijkstraPruned loop devirtualized over the CSR
// representation.
func (s *Searcher) prunedFrozen(f *Frozen, bound float64, visit func(v int, d float64) bool) {
	settled := int64(0)
	for len(s.heap) > 0 {
		it := heapPop(&s.heap)
		v := int(it.v)
		if s.done[v] == s.epoch {
			continue
		}
		s.done[v] = s.epoch
		settled++
		if !visit(v, it.dist) {
			continue
		}
		r := f.rows[v]
		for _, h := range f.slab[r.off : r.off+r.deg] {
			if nd := it.dist + h.W; nd <= bound && s.label(h.To, nd) {
				heapPush(&s.heap, nd, int32(h.To))
			}
		}
	}
	s.stats.Settled += settled
}

// VertexHop is one vertex reached by a hop-bounded BFS, with its hop count
// from the source.
type VertexHop struct {
	V    int
	Hops int
}

// HopBall runs a breadth-first search from src and returns every vertex
// within maxHops edges, in BFS order (src first, at 0 hops). It is the
// k-hop subgraph extraction behind /analyze/around: the caller gets the
// ball members with their hop layers and induces edges among them
// separately. The returned slice is owned by the Searcher and valid only
// until its next search; callers that need to keep it must copy.
// maxHops <= 0 returns just the source.
func (s *Searcher) HopBall(g Topology, src, maxHops int) []VertexHop {
	s.stats.Searches++
	s.begin(g.N())
	s.hball = s.hball[:0]
	s.queue = s.queue[:0]
	s.queue = append(s.queue, int32(src))
	s.seen[src] = s.epoch
	s.hops[src] = 0
	s.hball = append(s.hball, VertexHop{V: src})
	if f, ok := g.(*Frozen); ok {
		s.hopBallFrozen(f, maxHops)
	} else {
		s.hopBallTopology(g, maxHops)
	}
	return s.hball
}

// hopBallTopology is the generic HopBall loop.
func (s *Searcher) hopBallTopology(g Topology, maxHops int) {
	for i := 0; i < len(s.queue); i++ {
		v := s.queue[i]
		hv := s.hops[v]
		if int(hv) >= maxHops {
			continue // ball boundary: member, but not expanded
		}
		s.stats.Settled++
		for _, h := range g.Neighbors(int(v)) {
			if s.seen[h.To] == s.epoch {
				continue
			}
			s.seen[h.To] = s.epoch
			s.hops[h.To] = hv + 1
			s.queue = append(s.queue, int32(h.To))
			s.hball = append(s.hball, VertexHop{V: h.To, Hops: int(hv) + 1})
		}
	}
}

// hopBallFrozen is the HopBall loop devirtualized over the CSR
// representation.
func (s *Searcher) hopBallFrozen(f *Frozen, maxHops int) {
	for i := 0; i < len(s.queue); i++ {
		v := s.queue[i]
		hv := s.hops[v]
		if int(hv) >= maxHops {
			continue
		}
		s.stats.Settled++
		r := f.rows[v]
		for _, h := range f.slab[r.off : r.off+r.deg] {
			if s.seen[h.To] == s.epoch {
				continue
			}
			s.seen[h.To] = s.epoch
			s.hops[h.To] = hv + 1
			s.queue = append(s.queue, int32(h.To))
			s.hball = append(s.hball, VertexHop{V: h.To, Hops: int(hv) + 1})
		}
	}
}

// HopsTo returns the hop distance (unweighted) from src to dst, with early
// exit as soon as dst enters the BFS frontier.
func (s *Searcher) HopsTo(g Topology, src, dst int) (int, bool) {
	if src == dst {
		return 0, true
	}
	s.stats.Searches++
	s.begin(g.N())
	s.queue = s.queue[:0]
	s.queue = append(s.queue, int32(src))
	s.seen[src] = s.epoch
	s.hops[src] = 0
	if f, ok := g.(*Frozen); ok {
		return s.hopsFrozen(f, dst)
	}
	return s.hopsTopology(g, dst)
}

// hopsTopology is the generic BFS loop behind HopsTo.
func (s *Searcher) hopsTopology(g Topology, dst int) (int, bool) {
	for i := 0; i < len(s.queue); i++ {
		v := s.queue[i]
		hv := s.hops[v]
		s.stats.Settled++
		for _, h := range g.Neighbors(int(v)) {
			if s.seen[h.To] == s.epoch {
				continue
			}
			if h.To == dst {
				return int(hv) + 1, true
			}
			s.seen[h.To] = s.epoch
			s.hops[h.To] = hv + 1
			s.queue = append(s.queue, int32(h.To))
		}
	}
	return 0, false
}

// hopsFrozen is the BFS loop devirtualized over the CSR representation.
func (s *Searcher) hopsFrozen(f *Frozen, dst int) (int, bool) {
	for i := 0; i < len(s.queue); i++ {
		v := s.queue[i]
		hv := s.hops[v]
		s.stats.Settled++
		r := f.rows[v]
		for _, h := range f.slab[r.off : r.off+r.deg] {
			if s.seen[h.To] == s.epoch {
				continue
			}
			if h.To == dst {
				return int(hv) + 1, true
			}
			s.seen[h.To] = s.epoch
			s.hops[h.To] = hv + 1
			s.queue = append(s.queue, int32(h.To))
		}
	}
	return 0, false
}

// searcherPool recycles Searchers across the Graph.Dijkstra* convenience
// methods so their steady-state allocation count is zero.
var searcherPool = sync.Pool{New: func() interface{} { return new(Searcher) }}

// AcquireSearcher returns a pooled Searcher sized for n-vertex graphs.
// Release it with ReleaseSearcher when done.
func AcquireSearcher(n int) *Searcher {
	s := searcherPool.Get().(*Searcher)
	if len(s.seen) < n {
		s.grow(n)
	}
	return s
}

// ReleaseSearcher returns s to the pool. The caller must not retain s or
// any slice it returned (Ball results) past this call.
func ReleaseSearcher(s *Searcher) {
	searcherPool.Put(s)
}
