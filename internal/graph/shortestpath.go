package graph

import (
	"math"
)

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// The methods below are allocation-light conveniences over the reusable
// Searcher (searcher.go): each borrows a pooled Searcher, so their
// steady-state allocation count is zero apart from any result container
// the API shape requires (the map of DijkstraBounded, the slice of
// Dijkstra). Hot loops that issue many searches should hold an explicit
// Searcher instead and call its methods directly.

// Dijkstra returns the shortest-path distances from src to every vertex
// (Inf for unreachable vertices). Edge weights must be non-negative.
func (g *Graph) Dijkstra(src int) []float64 {
	s := AcquireSearcher(g.n)
	dist := make([]float64, g.n)
	s.Dijkstra(g, src, Inf, dist)
	ReleaseSearcher(s)
	return dist
}

// DijkstraBounded returns a map from vertex to shortest-path distance for
// every vertex within distance bound of src (inclusive). The search never
// expands past the bound, so its cost is proportional to the size of the
// metric ball — this is what makes the cluster-cover and cluster-graph
// constructions cheap even when invoked once per vertex. Callers that
// cannot afford the result map should use Searcher.Ball directly.
func (g *Graph) DijkstraBounded(src int, bound float64) map[int]float64 {
	s := AcquireSearcher(g.n)
	ball := s.Ball(g, src, bound)
	out := make(map[int]float64, len(ball))
	for _, vd := range ball {
		out[vd.V] = vd.D
	}
	ReleaseSearcher(s)
	return out
}

// DijkstraTarget returns the shortest-path distance from src to dst,
// abandoning the search once no path of length at most bound can exist.
// The boolean result reports whether a path of length at most bound
// exists. Callers that only need the boolean should use ReachableWithin.
func (g *Graph) DijkstraTarget(src, dst int, bound float64) (float64, bool) {
	s := AcquireSearcher(g.n)
	d, ok := s.DijkstraTarget(g, src, dst, bound)
	ReleaseSearcher(s)
	return d, ok
}

// ReachableWithin reports whether a path of length at most bound connects
// src and dst — the existence form of DijkstraTarget (the search stops at
// the first meeting within the bound). This is the primitive behind every
// greedy "is there a t-spanner path already?" query.
func (g *Graph) ReachableWithin(src, dst int, bound float64) bool {
	s := AcquireSearcher(g.n)
	ok := s.ReachableWithin(g, src, dst, bound)
	ReleaseSearcher(s)
	return ok
}

// BFSHops returns hop distances (unweighted) from src up to maxHops; vertices
// farther than maxHops are absent from the map. maxHops < 0 means unbounded.
func (g *Graph) BFSHops(src int, maxHops int) map[int]int {
	hops := map[int]int{src: 0}
	frontier := []int{src}
	for depth := 0; len(frontier) > 0 && (maxHops < 0 || depth < maxHops); depth++ {
		var next []int
		for _, u := range frontier {
			for _, h := range g.adj[u] {
				if _, seen := hops[h.To]; !seen {
					hops[h.To] = depth + 1
					next = append(next, h.To)
				}
			}
		}
		frontier = next
	}
	return hops
}

// FloydWarshall computes all-pairs shortest path distances; O(n^3), intended
// for cross-checking Dijkstra in tests on small graphs.
func (g *Graph) FloydWarshall() [][]float64 {
	d := make([][]float64, g.n)
	for i := range d {
		d[i] = make([]float64, g.n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = Inf
			}
		}
	}
	for u, hs := range g.adj {
		for _, h := range hs {
			if h.W < d[u][h.To] {
				d[u][h.To] = h.W
			}
		}
	}
	for k := 0; k < g.n; k++ {
		for i := 0; i < g.n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < g.n; j++ {
				if nd := dik + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}
