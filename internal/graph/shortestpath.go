package graph

import (
	"container/heap"
	"math"
)

// Inf is the distance reported for unreachable vertices.
var Inf = math.Inf(1)

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	v    int
	dist float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra returns the shortest-path distances from src to every vertex
// (Inf for unreachable vertices). Edge weights must be non-negative.
func (g *Graph) Dijkstra(src int) []float64 {
	dist := make([]float64, g.n)
	for i := range dist {
		dist[i] = Inf
	}
	g.dijkstraInto(src, Inf, dist)
	return dist
}

// DijkstraBounded returns a map from vertex to shortest-path distance for
// every vertex within distance bound of src (inclusive). The search never
// expands past the bound, so its cost is proportional to the size of the
// metric ball — this is what makes the cluster-cover and cluster-graph
// constructions cheap even when invoked once per vertex.
func (g *Graph) DijkstraBounded(src int, bound float64) map[int]float64 {
	out := make(map[int]float64)
	visited := make(map[int]bool)
	q := pq{{v: src, dist: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if visited[it.v] {
			continue
		}
		visited[it.v] = true
		out[it.v] = it.dist
		for _, h := range g.adj[it.v] {
			nd := it.dist + h.W
			if nd <= bound && !visited[h.To] {
				heap.Push(&q, pqItem{v: h.To, dist: nd})
			}
		}
	}
	return out
}

// DijkstraTarget returns the shortest-path distance from src to dst,
// abandoning the search once all frontier labels exceed bound. The boolean
// result reports whether a path of length at most bound exists. This is the
// primitive behind every greedy "is there a t-spanner path already?" query.
func (g *Graph) DijkstraTarget(src, dst int, bound float64) (float64, bool) {
	if src == dst {
		return 0, true
	}
	visited := make(map[int]bool)
	q := pq{{v: src, dist: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if visited[it.v] {
			continue
		}
		if it.v == dst {
			return it.dist, true
		}
		visited[it.v] = true
		for _, h := range g.adj[it.v] {
			nd := it.dist + h.W
			if nd <= bound && !visited[h.To] {
				heap.Push(&q, pqItem{v: h.To, dist: nd})
			}
		}
	}
	return Inf, false
}

// dijkstraInto runs Dijkstra from src writing into dist, skipping expansion
// beyond bound. dist must be pre-filled with Inf.
func (g *Graph) dijkstraInto(src int, bound float64, dist []float64) {
	visited := make([]bool, g.n)
	q := pq{{v: src, dist: 0}}
	for len(q) > 0 {
		it := heap.Pop(&q).(pqItem)
		if visited[it.v] {
			continue
		}
		visited[it.v] = true
		dist[it.v] = it.dist
		for _, h := range g.adj[it.v] {
			nd := it.dist + h.W
			if nd <= bound && !visited[h.To] {
				heap.Push(&q, pqItem{v: h.To, dist: nd})
			}
		}
	}
}

// BFSHops returns hop distances (unweighted) from src up to maxHops; vertices
// farther than maxHops are absent from the map. maxHops < 0 means unbounded.
func (g *Graph) BFSHops(src int, maxHops int) map[int]int {
	hops := map[int]int{src: 0}
	frontier := []int{src}
	for depth := 0; len(frontier) > 0 && (maxHops < 0 || depth < maxHops); depth++ {
		var next []int
		for _, u := range frontier {
			for _, h := range g.adj[u] {
				if _, seen := hops[h.To]; !seen {
					hops[h.To] = depth + 1
					next = append(next, h.To)
				}
			}
		}
		frontier = next
	}
	return hops
}

// FloydWarshall computes all-pairs shortest path distances; O(n^3), intended
// for cross-checking Dijkstra in tests on small graphs.
func (g *Graph) FloydWarshall() [][]float64 {
	d := make([][]float64, g.n)
	for i := range d {
		d[i] = make([]float64, g.n)
		for j := range d[i] {
			if i == j {
				d[i][j] = 0
			} else {
				d[i][j] = Inf
			}
		}
	}
	for u, hs := range g.adj {
		for _, h := range hs {
			if h.W < d[u][h.To] {
				d[u][h.To] = h.W
			}
		}
	}
	for k := 0; k < g.n; k++ {
		for i := 0; i < g.n; i++ {
			dik := d[i][k]
			if math.IsInf(dik, 1) {
				continue
			}
			for j := 0; j < g.n; j++ {
				if nd := dik + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}
