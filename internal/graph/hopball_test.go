package graph

import (
	"math/rand"
	"testing"
)

// referenceHopBall is an independent BFS used to pin HopBall: plain
// slice-based level expansion, no shared scratch.
func referenceHopBall(g Topology, src, maxHops int) map[int]int {
	dist := map[int]int{src: 0}
	frontier := []int{src}
	for hop := 0; hop < maxHops && len(frontier) > 0; hop++ {
		var next []int
		for _, v := range frontier {
			for _, h := range g.Neighbors(v) {
				if _, ok := dist[h.To]; !ok {
					dist[h.To] = hop + 1
					next = append(next, h.To)
				}
			}
		}
		frontier = next
	}
	return dist
}

func TestHopBallMatchesReferenceOnBothRepresentations(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := NewSearcher(0)
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(40)
		g := New(n)
		for i := 0; i < 2*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.AddEdge(u, v, 0.1+rng.Float64())
			}
		}
		f := Freeze(g)
		src := rng.Intn(n)
		maxHops := rng.Intn(5)
		want := referenceHopBall(g, src, maxHops)

		for _, topo := range []Topology{g, f} {
			ball := s.HopBall(topo, src, maxHops)
			if len(ball) != len(want) {
				t.Fatalf("trial %d: ball size %d, reference %d", trial, len(ball), len(want))
			}
			if ball[0].V != src || ball[0].Hops != 0 {
				t.Fatalf("trial %d: ball does not start at source: %+v", trial, ball[0])
			}
			prev := 0
			for _, vh := range ball {
				if wantHops, ok := want[vh.V]; !ok || wantHops != vh.Hops {
					t.Fatalf("trial %d: vertex %d at %d hops, reference %d (present %v)",
						trial, vh.V, vh.Hops, wantHops, ok)
				}
				if vh.Hops < prev {
					t.Fatalf("trial %d: BFS order violated: hop %d after %d", trial, vh.Hops, prev)
				}
				prev = vh.Hops
			}
		}
	}
}

func TestHopBallZeroHopsIsJustTheSource(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1, 1)
	g.AddEdge(1, 2, 1)
	s := NewSearcher(3)
	for _, topo := range []Topology{g, Freeze(g)} {
		ball := s.HopBall(topo, 1, 0)
		if len(ball) != 1 || ball[0].V != 1 || ball[0].Hops != 0 {
			t.Fatalf("zero-hop ball = %+v", ball)
		}
	}
}
