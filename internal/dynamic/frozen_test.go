package dynamic

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// frozenEdgeSet renders any topology's edge set canonically.
func frozenEdgeSet(t graph.Topology) string {
	es := t.EdgesUnordered()
	keys := make([]string, len(es))
	for i, e := range es {
		keys[i] = fmt.Sprintf("%d-%d:%.12f", e.U, e.V, e.W)
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// requireFrozenMatches checks that the delta-exported frozen graph is
// edge-for-edge and search-for-search identical to the full-copy export of
// the same engine graph.
func requireFrozenMatches(t *testing.T, label string, f *graph.Frozen, g *graph.Graph, rng *rand.Rand) {
	t.Helper()
	if f.N() != g.N() || f.M() != g.M() {
		t.Fatalf("%s: size %d/%d vs %d/%d", label, f.N(), f.M(), g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		if f.Degree(u) != g.Degree(u) {
			t.Fatalf("%s: degree(%d) %d != %d", label, u, f.Degree(u), g.Degree(u))
		}
	}
	if frozenEdgeSet(f) != frozenEdgeSet(g) {
		t.Fatalf("%s: edge sets differ\n frozen %s\n graph  %s", label, frozenEdgeSet(f), frozenEdgeSet(g))
	}
	if f.MaxDegree() != g.MaxDegree() {
		t.Fatalf("%s: maxdeg %d != %d", label, f.MaxDegree(), g.MaxDegree())
	}
	// The frozen weight is maintained incrementally: allow FP slack.
	if w1, w2 := f.TotalWeight(), g.TotalWeight(); math.Abs(w1-w2) > 1e-6*(1+math.Abs(w2)) {
		t.Fatalf("%s: weight %v != %v", label, w1, w2)
	}
	// Searches agree: distances exactly, paths by cross-certification.
	s1, s2 := graph.NewSearcher(g.N()), graph.NewSearcher(g.N())
	for q := 0; q < 20; q++ {
		src, dst := rng.Intn(g.N()), rng.Intn(g.N())
		d1, ok1 := s1.DijkstraTarget(g, src, dst, graph.Inf)
		d2, ok2 := s2.DijkstraTarget(f, src, dst, graph.Inf)
		if ok1 != ok2 || (ok1 && math.Abs(d1-d2) > 1e-12) {
			t.Fatalf("%s: dist(%d,%d) %v/%v vs %v/%v", label, src, dst, d1, ok1, d2, ok2)
		}
		p1, c1, okp1 := s1.PathTo(g, src, dst, graph.Inf)
		p2, c2, okp2 := s2.PathTo(f, src, dst, graph.Inf)
		if okp1 != okp2 || (okp1 && math.Abs(c1-c2) > 1e-12) {
			t.Fatalf("%s: path(%d,%d) cost %v/%v vs %v/%v", label, src, dst, c1, okp1, c2, okp2)
		}
		if okp1 {
			if w, ok := graph.PathWeight(f, p1); !ok || math.Abs(w-c1) > 1e-12 {
				t.Fatalf("%s: graph path rejected on frozen (%v %v)", label, w, ok)
			}
			if w, ok := graph.PathWeight(g, p2); !ok || math.Abs(w-c2) > 1e-12 {
				t.Fatalf("%s: frozen path rejected on graph (%v %v)", label, w, ok)
			}
		}
	}
}

// TestDifferentialFrozenExport reruns the PR-2 style fuzzed churn sequences
// and pins, after every commit, that ExportFrozen's delta-rebuilt snapshots
// are indistinguishable from the engine's mutable graphs: same N/M/degrees/
// edge set, and identical Searcher results (distance and path) on both
// representations. This is the differential harness that licenses serving
// reads from Frozen.
func TestDifferentialFrozenExport(t *testing.T) {
	sequences := 120
	if testing.Short() {
		sequences = 30
	}
	for seq := 0; seq < sequences; seq++ {
		seed := int64(5000 + seq)
		rng := rand.New(rand.NewSource(seed))
		n0 := 10 + rng.Intn(24)
		tStretch := []float64{1.3, 1.5, 2.0}[rng.Intn(3)]
		side := 1.5 + rng.Float64()*2.5
		ops := 6 + rng.Intn(10)
		batch := 1
		if rng.Intn(3) == 0 {
			batch = 2 + rng.Intn(4)
		}

		pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: n0, Dim: 2, Side: side, Seed: seed})
		e, err := New(pts, Options{T: tStretch})
		if err != nil {
			t.Fatalf("seq %d (seed %d): %v", seq, seed, err)
		}

		check := func(op int) {
			points, alive, base, sp := e.ExportFrozen()
			requireFrozenMatches(t, fmt.Sprintf("seq %d op %d base", seq, op), base, e.Base(), rng)
			requireFrozenMatches(t, fmt.Sprintf("seq %d op %d spanner", seq, op), sp, e.Spanner(), rng)
			if len(points) != len(alive) || len(points) != base.N() {
				t.Fatalf("seq %d op %d: slot metadata %d/%d vs n %d", seq, op, len(points), len(alive), base.N())
			}
			for id := range alive {
				if alive[id] != e.Alive(id) {
					t.Fatalf("seq %d op %d: alive[%d] mismatch", seq, op, id)
				}
				if alive[id] && geom.Dist(points[id], e.Point(id)) != 0 {
					t.Fatalf("seq %d op %d: point[%d] mismatch", seq, op, id)
				}
			}
		}
		check(-1)

		inBatch := 0
		for op := 0; op < ops; op++ {
			if batch > 1 && inBatch == 0 {
				e.Begin()
			}
			switch r := rng.Float64(); {
			case r < 0.3:
				if _, err := e.Join(geom.Point{rng.Float64() * side, rng.Float64() * side}); err != nil {
					t.Fatalf("seq %d op %d join: %v", seq, op, err)
				}
			case r < 0.55 && e.N() > 4:
				ids := e.IDs(nil)
				if err := e.Leave(ids[rng.Intn(len(ids))]); err != nil {
					t.Fatalf("seq %d op %d leave: %v", seq, op, err)
				}
			default:
				ids := e.IDs(nil)
				id := ids[rng.Intn(len(ids))]
				p := e.Point(id).Clone()
				for i := range p {
					p[i] += rng.NormFloat64() * 0.3
				}
				if err := e.Move(id, p); err != nil {
					t.Fatalf("seq %d op %d move: %v", seq, op, err)
				}
			}
			inBatch++
			if batch > 1 && (inBatch == batch || op == ops-1) {
				e.Commit()
				inBatch = 0
			}
			if batch == 1 || inBatch == 0 {
				check(op)
			}
		}
	}
}

// TestExportFrozenNoChangeIsIdentical pins the zero-net-change contract: a
// commit that changes nothing republishes the prior snapshot — the exact
// same graph pointers and metadata slices.
func TestExportFrozenNoChangeIsIdentical(t *testing.T) {
	pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: 32, Dim: 2, Side: 2.5, Seed: 9})
	e, err := New(pts, Options{T: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	p1, a1, b1, s1 := e.ExportFrozen()

	// Repeated export with no operations at all.
	p2, a2, b2, s2 := e.ExportFrozen()
	if b1 != b2 || s1 != s2 || &p1[0] != &p2[0] || &a1[0] != &a2[0] {
		t.Fatal("idle export did not republish the prior snapshot")
	}

	// An empty batch commit is a zero-net-change publish.
	e.Begin()
	e.Commit()
	_, _, b3, s3 := e.ExportFrozen()
	if b1 != b3 || s1 != s3 {
		t.Fatal("empty batch changed the published snapshot")
	}

	// A real op produces new snapshots, but the old ones stay valid and
	// untouched rows are shared.
	id, err := e.Join(geom.Point{1.0, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	_, _, b4, s4 := e.ExportFrozen()
	if b4 == b3 || s4 == s3 {
		t.Fatal("join did not produce fresh snapshots")
	}
	if b4.N() <= id && b3.N() > id {
		t.Fatal("frozen base lost the grown range")
	}
}

// TestExportFrozenMidBatchThenCommit pins that an export taken mid-batch
// (before Commit runs repair) is not republished stale afterwards: the
// repair pass mutates the spanner after the ops return, and the
// post-commit export must reflect it.
func TestExportFrozenMidBatchThenCommit(t *testing.T) {
	pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: 48, Dim: 2, Side: 2.0, Seed: 17})
	e, err := New(pts, Options{T: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	e.Begin()
	ids := e.IDs(nil)
	for i := 0; i < 4; i++ {
		id := ids[rng.Intn(len(ids))]
		p := e.Point(id).Clone()
		p[0] += rng.NormFloat64() * 0.4
		p[1] += rng.NormFloat64() * 0.4
		if err := e.Move(id, p); err != nil {
			t.Fatal(err)
		}
	}
	e.ExportFrozen() // mid-batch export: spanner not yet repaired
	e.Commit()
	_, _, base, sp := e.ExportFrozen()
	requireFrozenMatches(t, "post-commit base", base, e.Base(), rng)
	requireFrozenMatches(t, "post-commit spanner", sp, e.Spanner(), rng)
}

// TestExportFrozenIsolatedMoveSharesGraphs pins row-level sharing: moving a
// node with no edges changes the point set but no adjacency row, so the
// frozen graphs are republished by pointer while the points are fresh.
func TestExportFrozenIsolatedMoveSharesGraphs(t *testing.T) {
	// Two nodes far apart: no base edges at radius 1.
	e, err := New([]geom.Point{{0, 0}, {10, 10}}, Options{T: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	_, _, b1, s1 := e.ExportFrozen()
	if b1.M() != 0 {
		t.Fatalf("expected an edgeless base graph, m=%d", b1.M())
	}
	// Move the isolated node somewhere still isolated.
	if err := e.Move(1, geom.Point{20, 20}); err != nil {
		t.Fatal(err)
	}
	pts, _, b2, s2 := e.ExportFrozen()
	if b2 != b1 || s2 != s1 {
		t.Fatal("edgeless move rebuilt the frozen graphs")
	}
	if geom.Dist(pts[1], geom.Point{20, 20}) != 0 {
		t.Fatal("exported points missed the move")
	}
}
