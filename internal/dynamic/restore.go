package dynamic

import (
	"fmt"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// Restore reconstructs an Engine from previously exported state: the
// slot-indexed points and liveness mask, the base graph (Euclidean
// weights), and the maintained spanner (metric weights) — exactly what
// WAL recovery produces after loading a checkpoint and replaying the log
// tail. The engine takes ownership of all four arguments.
//
// The rebuilt engine is operationally equivalent to the one that
// exported the state: same topology, same slot assignments, and the
// spanner invariant holds because it held at export time and restore
// changes no edges. The only non-replicated detail is the free-slot
// reuse order, which is reset to "dead slots, lowest id first" — slot
// choice for future joins is an allocation detail, not topology state.
func Restore(points []geom.Point, alive []bool, base, sp *graph.Graph, opts Options) (*Engine, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	if len(points) != len(alive) || base.N() != len(points) || sp.N() != len(points) {
		return nil, fmt.Errorf("dynamic: restore length mismatch: %d points, %d alive, base n=%d, spanner n=%d",
			len(points), len(alive), base.N(), sp.N())
	}
	dim := opts.Dim
	for id, a := range alive {
		if !a {
			continue
		}
		if points[id] == nil {
			return nil, fmt.Errorf("dynamic: restore: live slot %d has no point", id)
		}
		if dim == 0 {
			dim = points[id].Dim()
		}
		if points[id].Dim() != dim {
			return nil, fmt.Errorf("dynamic: restore: slot %d has dimension %d, want %d", id, points[id].Dim(), dim)
		}
	}
	if dim <= 0 {
		return nil, fmt.Errorf("dynamic: restore of an empty deployment needs Options.Dim")
	}
	e := &Engine{
		opts:    opts,
		dim:     dim,
		points:  points,
		alive:   alive,
		grid:    geom.NewDynamicGrid(opts.Radius),
		base:    base,
		sp:      sp,
		s:       graph.NewSearcher(len(points)),
		dirty:   make(map[int]struct{}),
		touched: make(map[int]struct{}),
		maxW:    opts.Metric.Weight(opts.Radius),
	}
	for id := len(points) - 1; id >= 0; id-- {
		if alive[id] {
			e.grid.Add(id, points[id])
			e.n++
		} else {
			points[id] = nil // free slots hold no position
			e.free = append(e.free, id)
		}
	}
	return e, nil
}
