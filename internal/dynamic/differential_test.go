package dynamic

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"topoctl/internal/core"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

// TestDifferentialChurn is the pinning harness for the incremental engine:
// for ≥ 1000 fuzzed operation sequences (random sizes, rates, stretch
// targets, and batching), after every sequence
//
//  1. the maintained base graph is structurally identical to ubg.Build on
//     the final point set,
//  2. the maintained spanner has stretch ≤ t over the current base graph
//     (verified exactly with metrics.Stretch), and
//  3. the maintained spanner's edge count is within a constant factor of a
//     fresh core.Build (the paper's one-shot algorithm) on the final point
//     set — incremental maintenance never degenerates toward the complete
//     graph.
//
// Sequence generation is deterministic, so any failure reproduces from its
// logged seed.
func TestDifferentialChurn(t *testing.T) {
	sequences := 1000
	if testing.Short() {
		sequences = 150
	}
	// Edge-count bound: maintained spanner vs fresh relaxed-greedy build.
	// The maintained spanner replays pure SEQ-GREEDY acceptance, which is
	// sparser per-decision than the relaxed algorithm, but repair order
	// differs from global greedy order, so allow a generous constant.
	const factor = 3.0
	const slack = 8 // additive slack for tiny final graphs

	worstRatio := 0.0
	for seq := 0; seq < sequences; seq++ {
		seed := int64(1000 + seq)
		rng := rand.New(rand.NewSource(seed))
		n0 := 12 + rng.Intn(28)
		tStretch := []float64{1.3, 1.5, 2.0}[rng.Intn(3)]
		side := 1.5 + rng.Float64()*2.5
		ops := 5 + rng.Intn(11)
		batch := 1
		if rng.Intn(3) == 0 {
			batch = 2 + rng.Intn(4)
		}

		pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: n0, Dim: 2, Side: side, Seed: seed})
		e, err := New(pts, Options{T: tStretch})
		if err != nil {
			t.Fatalf("seq %d (seed %d): %v", seq, seed, err)
		}

		inBatch := 0
		for op := 0; op < ops; op++ {
			if batch > 1 && inBatch == 0 {
				e.Begin()
			}
			switch r := rng.Float64(); {
			case r < 0.3:
				if _, err := e.Join(geom.Point{rng.Float64() * side, rng.Float64() * side}); err != nil {
					t.Fatalf("seq %d (seed %d) op %d join: %v", seq, seed, op, err)
				}
			case r < 0.55 && e.N() > 4:
				ids := e.IDs(nil)
				if err := e.Leave(ids[rng.Intn(len(ids))]); err != nil {
					t.Fatalf("seq %d (seed %d) op %d leave: %v", seq, seed, op, err)
				}
			default:
				ids := e.IDs(nil)
				id := ids[rng.Intn(len(ids))]
				p := e.Point(id).Clone()
				for i := range p {
					p[i] += rng.NormFloat64() * 0.3
				}
				if err := e.Move(id, p); err != nil {
					t.Fatalf("seq %d (seed %d) op %d move: %v", seq, seed, op, err)
				}
			}
			inBatch++
			if batch > 1 && (inBatch == batch || op == ops-1) {
				e.Commit()
				inBatch = 0
			}
		}

		// (2) Stretch bound over the live base graph.
		if s := metrics.Stretch(e.Base(), e.Spanner()); s > tStretch+1e-9 {
			t.Fatalf("seq %d (seed %d): stretch %v exceeds %v", seq, seed, s, tStretch)
		}

		// (1) Base graph matches a from-scratch UBG build on the final
		// point set (compacted to dense ids).
		ids := e.IDs(nil)
		finalPts := make([]geom.Point, len(ids))
		slot := make(map[int]int, len(ids))
		for i, id := range ids {
			finalPts[i] = e.Point(id)
			slot[id] = i
		}
		freshBase, err := ubg.Build(finalPts, ubg.Config{Alpha: 1, Model: ubg.ModelAll})
		if err != nil {
			t.Fatalf("seq %d (seed %d): %v", seq, seed, err)
		}
		if got, want := edgeKeys(e.Base(), slot), edgeKeys(freshBase, nil); got != want {
			t.Fatalf("seq %d (seed %d): maintained base graph diverged from ubg.Build\n got: %s\nwant: %s", seq, seed, got, want)
		}

		// (3) Edge count within a constant factor of the one-shot build.
		p, err := core.NewParams(tStretch-1, 1, 2)
		if err != nil {
			t.Fatalf("seq %d (seed %d): %v", seq, seed, err)
		}
		fresh, err := core.Build(finalPts, freshBase, core.Options{Params: p})
		if err != nil {
			t.Fatalf("seq %d (seed %d): %v", seq, seed, err)
		}
		got, want := e.Spanner().M(), fresh.Spanner.M()
		if float64(got) > factor*float64(want)+slack {
			t.Fatalf("seq %d (seed %d): maintained spanner has %d edges, fresh build %d — beyond %gx+%d",
				seq, seed, got, want, factor, slack)
		}
		if want > 0 {
			if r := float64(got) / float64(want); r > worstRatio {
				worstRatio = r
			}
		}
	}
	t.Logf("%d sequences; worst maintained/fresh edge ratio %.3f", sequences, worstRatio)
}

// edgeKeys renders a graph's edge set (optionally remapped through slot) as
// a canonical string for structural comparison.
func edgeKeys(g *graph.Graph, slot map[int]int) string {
	es := g.EdgesUnordered()
	keys := make([]string, 0, len(es))
	for _, e := range es {
		u, v := e.U, e.V
		if slot != nil {
			u, v = slot[u], slot[v]
			if u > v {
				u, v = v, u
			}
		}
		keys = append(keys, fmt.Sprintf("%d-%d:%.9f", u, v, e.W))
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}
