package dynamic

import (
	"math"
	"math/rand"
	"testing"

	"topoctl/internal/core"
	"topoctl/internal/geom"
)

func testPoints(n int, side float64, seed int64) []geom.Point {
	return geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Side: side, Seed: seed})
}

// checkInvariants verifies the two structural invariants the engine
// maintains: the spanner is a subgraph of the current base graph (with
// metric weights), and every base edge is t-spanned.
func checkInvariants(t *testing.T, e *Engine) {
	t.Helper()
	m := e.Options().Metric
	for _, ed := range e.Spanner().EdgesUnordered() {
		w, ok := e.Base().EdgeWeight(ed.U, ed.V)
		if !ok {
			t.Fatalf("spanner edge {%d,%d} not in base graph", ed.U, ed.V)
		}
		if got, want := ed.W, m.Weight(w); math.Abs(got-want) > 1e-12 {
			t.Fatalf("spanner edge {%d,%d} weight %v, want metric %v", ed.U, ed.V, got, want)
		}
	}
	if s := stretchOf(e); s > e.Options().T+1e-9 {
		t.Fatalf("stretch %v exceeds bound %v", s, e.Options().T)
	}
}

func TestNewSeedsGreedySpanner(t *testing.T) {
	pts := testPoints(80, 3, 1)
	e, err := New(pts, Options{T: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if e.N() != 80 {
		t.Fatalf("N = %d, want 80", e.N())
	}
	if e.Base().M() == 0 {
		t.Fatal("base graph has no edges")
	}
	if e.Spanner().M() == 0 || e.Spanner().M() > e.Base().M() {
		t.Fatalf("spanner edges %d outside (0, %d]", e.Spanner().M(), e.Base().M())
	}
	checkInvariants(t, e)
}

func TestJoinLeaveMoveMaintainStretch(t *testing.T) {
	pts := testPoints(60, 3, 2)
	e, err := New(pts, Options{T: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))

	// Joins.
	for i := 0; i < 15; i++ {
		id, err := e.Join(geom.Point{rng.Float64() * 3, rng.Float64() * 3})
		if err != nil {
			t.Fatal(err)
		}
		if !e.Alive(id) {
			t.Fatalf("joined node %d not alive", id)
		}
	}
	checkInvariants(t, e)

	// Leaves.
	for i := 0; i < 20; i++ {
		ids := e.IDs(nil)
		if err := e.Leave(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, e)

	// Moves.
	for i := 0; i < 25; i++ {
		ids := e.IDs(nil)
		id := ids[rng.Intn(len(ids))]
		p := e.Point(id).Clone()
		p[0] += rng.NormFloat64() * 0.4
		p[1] += rng.NormFloat64() * 0.4
		if err := e.Move(id, p); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, e)

	if st := e.Stats(); st.Joins != 15 || st.Leaves != 20 || st.Moves != 25 {
		t.Fatalf("stats %+v, want 15/20/25 ops", st)
	}
}

func TestLeaveRemovesIncidentEdges(t *testing.T) {
	pts := testPoints(40, 2.5, 4)
	e, err := New(pts, Options{T: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Leave(7); err != nil {
		t.Fatal(err)
	}
	if e.Alive(7) {
		t.Fatal("left node still alive")
	}
	if d := e.Base().Degree(7); d != 0 {
		t.Fatalf("left node keeps %d base edges", d)
	}
	if d := e.Spanner().Degree(7); d != 0 {
		t.Fatalf("left node keeps %d spanner edges", d)
	}
	if err := e.Leave(7); err == nil {
		t.Fatal("double leave succeeded")
	}
	if err := e.Move(7, geom.Point{0, 0}); err == nil {
		t.Fatal("move of dead node succeeded")
	}
	checkInvariants(t, e)
}

func TestSlotReuseAndGrowth(t *testing.T) {
	pts := testPoints(10, 1.5, 5)
	e, err := New(pts, Options{T: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Leave(3); err != nil {
		t.Fatal(err)
	}
	id, err := e.Join(geom.Point{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if id != 3 {
		t.Fatalf("freed slot not reused: got id %d, want 3", id)
	}
	// Force capacity growth: join far past the initial capacity.
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 40; i++ {
		if _, err := e.Join(geom.Point{rng.Float64() * 1.5, rng.Float64() * 1.5}); err != nil {
			t.Fatal(err)
		}
	}
	if e.N() != 50 {
		t.Fatalf("N = %d, want 50", e.N())
	}
	if e.Base().N() < 50 || e.Spanner().N() != e.Base().N() {
		t.Fatalf("graphs out of sync: base n=%d spanner n=%d", e.Base().N(), e.Spanner().N())
	}
	checkInvariants(t, e)
}

func TestBatchCoalescesRepairs(t *testing.T) {
	pts := testPoints(60, 3, 7)
	e, err := New(pts, Options{T: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	e.Begin()
	for i := 0; i < 10; i++ {
		ids := e.IDs(nil)
		id := ids[rng.Intn(len(ids))]
		switch i % 3 {
		case 0:
			if _, err := e.Join(geom.Point{rng.Float64() * 3, rng.Float64() * 3}); err != nil {
				t.Fatal(err)
			}
		case 1:
			if err := e.Leave(id); err != nil {
				t.Fatal(err)
			}
		default:
			p := e.Point(id).Clone()
			p[0] += rng.NormFloat64() * 0.3
			p[1] += rng.NormFloat64() * 0.3
			if err := e.Move(id, p); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := e.Stats().Repairs; got != 0 {
		t.Fatalf("repairs ran inside open batch: %d", got)
	}
	e.Commit()
	if got := e.Stats().Repairs; got != 1 {
		t.Fatalf("batch committed %d repairs, want 1", got)
	}
	checkInvariants(t, e)
	// Commit outside a batch is a no-op.
	e.Commit()
	if got := e.Stats().Repairs; got != 1 {
		t.Fatalf("stray Commit ran a repair (%d)", got)
	}
}

func TestEmptyEngineNeedsDim(t *testing.T) {
	if _, err := New(nil, Options{T: 1.5}); err == nil {
		t.Fatal("empty engine without Dim succeeded")
	}
	e, err := New(nil, Options{T: 1.5, Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := e.Join(geom.Point{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Join(geom.Point{0.5, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !e.Base().HasEdge(a, b) || !e.Spanner().HasEdge(a, b) {
		t.Fatal("pair within radius not linked")
	}
	if _, err := e.Join(geom.Point{0, 0, 0}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestEnergyMetricEngine(t *testing.T) {
	pts := testPoints(50, 2.5, 9)
	e, err := New(pts, Options{T: 1.5, Metric: core.Metric{Coeff: 1, Gamma: 2}})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		ids := e.IDs(nil)
		id := ids[rng.Intn(len(ids))]
		p := e.Point(id).Clone()
		p[0] += rng.NormFloat64() * 0.3
		p[1] += rng.NormFloat64() * 0.3
		if err := e.Move(id, p); err != nil {
			t.Fatal(err)
		}
	}
	checkInvariants(t, e)
	// Spanner weights really are energy weights.
	for _, ed := range e.Spanner().EdgesUnordered() {
		d, _ := e.Base().EdgeWeight(ed.U, ed.V)
		if math.Abs(ed.W-d*d) > 1e-12 {
			t.Fatalf("edge {%d,%d}: weight %v, want %v", ed.U, ed.V, ed.W, d*d)
		}
	}
}

func TestRunScenarioDeterministic(t *testing.T) {
	cfg := ScenarioConfig{
		N: 50, Ops: 60, Seed: 11,
		ArrivalRate: 1, DepartureRate: 1, MobilityRate: 2,
		CheckEvery: 20,
	}
	a, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Joins != b.Joins || a.Leaves != b.Leaves || a.Moves != b.Moves ||
		a.FinalNodes != b.FinalNodes || a.BaseEdges != b.BaseEdges || a.SpannerEdges != b.SpannerEdges ||
		a.WorstStretch != b.WorstStretch {
		t.Fatalf("same seed, different runs:\n%v\n%v", a, b)
	}
	if a.Violations != 0 {
		t.Fatalf("scenario violated the stretch bound %d times (worst %v)", a.Violations, a.WorstStretch)
	}
	if a.Checks == 0 || a.Joins+a.Leaves+a.Moves != cfg.Ops {
		t.Fatalf("scenario accounting off: %+v", a)
	}
	if a.String() == "" {
		t.Fatal("empty render")
	}
}

func TestRunScenarioBatched(t *testing.T) {
	cfg := ScenarioConfig{
		N: 50, Ops: 60, Seed: 12, Batch: 8,
		ArrivalRate: 1, DepartureRate: 1, MobilityRate: 2,
		CheckEvery: 16,
	}
	r, err := RunScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Violations != 0 {
		t.Fatalf("batched scenario violated the stretch bound %d times (worst %v)", r.Violations, r.WorstStretch)
	}
	ops := r.Joins + r.Leaves + r.Moves
	if r.Stats.Repairs >= ops {
		t.Fatalf("batching did not coalesce: %d repairs for %d ops", r.Stats.Repairs, ops)
	}
	// Batch-sized commit jumps rarely land exactly on a CheckEvery
	// multiple; the cadence must still fire on every crossing (here at
	// committed ops 16, 32, 48 plus the forced final check).
	if r.Checks < 4 {
		t.Fatalf("batched cadence skipped periodic checks: %d checks", r.Checks)
	}
}

// TestDirtyBallIsLocal pins the locality claim: a single move in a large
// network must not sweep the whole vertex set into the dirty ball.
func TestDirtyBallIsLocal(t *testing.T) {
	pts := testPoints(400, 8, 13)
	e, err := New(pts, Options{T: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	before := e.Stats().DirtyVisited
	ids := e.IDs(nil)
	p := e.Point(ids[0]).Clone()
	p[0] += 0.2
	if err := e.Move(ids[0], p); err != nil {
		t.Fatal(err)
	}
	swept := e.Stats().DirtyVisited - before
	if swept >= e.N()/2 {
		t.Fatalf("dirty ball swept %d of %d vertices — repair is not localized", swept, e.N())
	}
	checkInvariants(t, e)
}

func TestExportIsDeepCopy(t *testing.T) {
	pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: 40, Dim: 2, Side: 4, Seed: 9})
	eng, err := New(pts, Options{T: 1.5})
	if err != nil {
		t.Fatal(err)
	}
	points, alive, base, sp := eng.Export()
	if len(points) != len(alive) || base.N() != sp.N() || base.N() != len(points) {
		t.Fatalf("export shapes disagree: %d points, %d alive, base n=%d, sp n=%d",
			len(points), len(alive), base.N(), sp.N())
	}
	live := 0
	for id, a := range alive {
		if a {
			live++
			if geom.Dist(points[id], eng.Point(id)) != 0 {
				t.Fatalf("point %d differs from engine", id)
			}
		} else if points[id] != nil {
			t.Fatalf("dead slot %d has a point", id)
		}
	}
	if live != eng.N() {
		t.Fatalf("live = %d, engine N = %d", live, eng.N())
	}
	baseM, spM := base.M(), sp.M()
	if baseM != eng.Base().M() || spM != eng.Spanner().M() {
		t.Fatalf("edge counts differ from engine: base %d/%d sp %d/%d",
			baseM, eng.Base().M(), spM, eng.Spanner().M())
	}

	// Mutating the engine must not change the exported copies.
	for op := 0; op < 25; op++ {
		if _, err := eng.Join(geom.Point{float64(op) * 0.13, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Leave(0); err != nil {
		t.Fatal(err)
	}
	if base.M() != baseM || sp.M() != spM || !alive[0] || points[0] == nil {
		t.Fatal("export mutated by later engine operations")
	}
}
