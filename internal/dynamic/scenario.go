package dynamic

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"time"

	"topoctl/internal/geom"
	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

// ScenarioConfig parameterizes a reproducible churn workload: a node
// population under a stream of joins, departures, and movements with
// configurable relative rates. Identical configs produce identical
// operation streams, results, and maintained topologies.
type ScenarioConfig struct {
	// N is the initial node count.
	N int
	// Dim is the embedding dimension (default 2).
	Dim int
	// Side is the deployment box side (default: density for expected
	// degree ~8 at the connectivity radius, matching ubg defaults).
	Side float64
	// T is the target stretch (default 1.5).
	T float64
	// Radius is the connectivity radius (default 1).
	Radius float64
	// Ops is the number of churn operations to run.
	Ops int
	// ArrivalRate, DepartureRate and MobilityRate are the relative weights
	// of join, leave, and move operations (they need not sum to 1; all
	// zero defaults to pure mobility).
	ArrivalRate, DepartureRate, MobilityRate float64
	// MoveSigma is the per-move Gaussian step scale in units of the
	// connectivity radius (default 0.25).
	MoveSigma float64
	// Batch coalesces every Batch consecutive operations into one repair
	// pass (<= 1 repairs after every operation).
	Batch int
	// Seed makes the scenario reproducible.
	Seed int64
	// CheckEvery verifies the stretch invariant every CheckEvery committed
	// operations (0: verify only at the end). Checks are outside the
	// repair timing.
	CheckEvery int
	// MinNodes floors the population: a departure drawn while the
	// population is at the floor executes as a move instead (default
	// max(4, N/4)).
	MinNodes int
}

func (c *ScenarioConfig) normalize() error {
	if c.N < 2 {
		return fmt.Errorf("dynamic: scenario needs N >= 2, got %d", c.N)
	}
	if c.Dim == 0 {
		c.Dim = 2
	}
	if c.T == 0 {
		c.T = 1.5
	}
	if c.Radius == 0 {
		c.Radius = 1
	}
	if c.Side <= 0 {
		// Expected degree ~8 under the connectivity radius, the same
		// density target ubg.GenerateConnected uses.
		c.Side = ubg.DensitySide(c.N, c.Dim, c.Radius, 8)
	}
	if c.ArrivalRate == 0 && c.DepartureRate == 0 && c.MobilityRate == 0 {
		c.MobilityRate = 1
	}
	if c.ArrivalRate < 0 || c.DepartureRate < 0 || c.MobilityRate < 0 {
		return fmt.Errorf("dynamic: negative churn rate")
	}
	if c.MoveSigma == 0 {
		c.MoveSigma = 0.25
	}
	if c.Batch < 1 {
		c.Batch = 1
	}
	if c.MinNodes == 0 {
		c.MinNodes = c.N / 4
		if c.MinNodes < 4 {
			c.MinNodes = 4
		}
	}
	return nil
}

// ScenarioResult reports what a churn run did and what it cost.
type ScenarioResult struct {
	Config ScenarioConfig
	// Joins, Leaves and Moves count executed operations.
	Joins, Leaves, Moves int
	// FinalNodes, BaseEdges and SpannerEdges describe the final topology.
	FinalNodes, BaseEdges, SpannerEdges int
	// Checks counts stretch verifications, Violations how many failed,
	// WorstStretch the maximum observed (over base edges, so 1.0 means
	// every base edge is t-spanned with no slack consumed).
	Checks, Violations int
	WorstStretch       float64
	// RepairTime is the total wall time spent inside engine operations
	// (base updates + dirty sweeps + repair), excluding verification.
	RepairTime time.Duration
	// Stats are the engine's work counters.
	Stats Stats
}

// String renders the result as a small table.
func (r *ScenarioResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "churn scenario: n0=%d ops=%d (join/leave/move = %.2g/%.2g/%.2g) batch=%d seed=%d\n",
		r.Config.N, r.Config.Ops, r.Config.ArrivalRate, r.Config.DepartureRate, r.Config.MobilityRate,
		r.Config.Batch, r.Config.Seed)
	fmt.Fprintf(&b, "  executed      %d joins, %d leaves, %d moves\n", r.Joins, r.Leaves, r.Moves)
	fmt.Fprintf(&b, "  final         %d nodes, %d base links, %d spanner links\n", r.FinalNodes, r.BaseEdges, r.SpannerEdges)
	fmt.Fprintf(&b, "  invariant     %d checks, %d violations, worst stretch %.4f (bound %.2f)\n",
		r.Checks, r.Violations, r.WorstStretch, r.Config.T)
	fmt.Fprintf(&b, "  repair        %d passes, %d candidates, +%d/-%d spanner edges, %v total (%v/op)\n",
		r.Stats.Repairs, r.Stats.Candidates, r.Stats.EdgesAdded, r.Stats.EdgesRemoved,
		r.RepairTime.Round(time.Microsecond), (r.RepairTime / time.Duration(max(1, r.Joins+r.Leaves+r.Moves))).Round(time.Nanosecond))
	return b.String()
}

// RunScenario executes a churn workload against a fresh engine and verifies
// the stretch invariant at the configured cadence.
func RunScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	pts := geom.GeneratePoints(geom.CloudConfig{
		Kind: geom.CloudUniform, N: cfg.N, Dim: cfg.Dim, Side: cfg.Side, Seed: cfg.Seed,
	})
	eng, err := New(pts, Options{T: cfg.T, Radius: cfg.Radius})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	res := &ScenarioResult{Config: cfg, WorstStretch: 1}

	var ids []int // live-id scratch
	total := cfg.ArrivalRate + cfg.DepartureRate + cfg.MobilityRate
	randomPoint := func() geom.Point {
		p := make(geom.Point, cfg.Dim)
		for i := range p {
			p[i] = rng.Float64() * cfg.Side
		}
		return p
	}
	pickLive := func() int {
		ids = eng.IDs(ids[:0])
		return ids[rng.Intn(len(ids))]
	}

	committed := 0
	lastChecked := 0
	check := func(force bool) {
		// Batched commits advance `committed` in Batch-sized jumps, so the
		// cadence triggers on crossing a multiple of CheckEvery, not on
		// landing exactly on one.
		if !force && (cfg.CheckEvery == 0 || committed/cfg.CheckEvery == lastChecked/cfg.CheckEvery) {
			return
		}
		lastChecked = committed
		res.Checks++
		s := stretchOf(eng)
		if s > res.WorstStretch {
			res.WorstStretch = s
		}
		if s > cfg.T+1e-9 {
			res.Violations++
		}
	}

	inBatch := 0
	for op := 0; op < cfg.Ops; op++ {
		if cfg.Batch > 1 && inBatch == 0 {
			eng.Begin()
		}
		// Draw the operation and its arguments first, then start the
		// clock: RepairTime charges only the engine (base updates, dirty
		// sweeps, repair), not the scenario driver's RNG and id scans.
		x := rng.Float64() * total
		var opStart time.Time
		switch {
		case x < cfg.ArrivalRate:
			p := randomPoint()
			opStart = time.Now()
			if _, err := eng.Join(p); err != nil {
				return nil, err
			}
			res.Joins++
		case x < cfg.ArrivalRate+cfg.DepartureRate && eng.N() > cfg.MinNodes:
			id := pickLive()
			opStart = time.Now()
			if err := eng.Leave(id); err != nil {
				return nil, err
			}
			res.Leaves++
		default:
			id := pickLive()
			p := eng.Point(id).Clone()
			for i := range p {
				p[i] += rng.NormFloat64() * cfg.MoveSigma * cfg.Radius
				p[i] = math.Max(0, math.Min(cfg.Side, p[i]))
			}
			opStart = time.Now()
			if err := eng.Move(id, p); err != nil {
				return nil, err
			}
			res.Moves++
		}
		res.RepairTime += time.Since(opStart)
		inBatch++
		if cfg.Batch > 1 && (inBatch == cfg.Batch || op == cfg.Ops-1) {
			commitStart := time.Now()
			eng.Commit()
			res.RepairTime += time.Since(commitStart)
			committed += inBatch
			inBatch = 0
			check(false)
			continue
		}
		if cfg.Batch <= 1 {
			committed++
			check(false)
		}
	}
	check(true)

	res.FinalNodes = eng.N()
	res.BaseEdges = eng.Base().M()
	res.SpannerEdges = eng.Spanner().M()
	res.Stats = eng.Stats()
	return res, nil
}

// stretchOf measures the exact stretch of the maintained spanner over the
// current base graph, in the engine's metric.
func stretchOf(e *Engine) float64 {
	m := e.Options().Metric
	if m.IsEuclidean() {
		return metrics.Stretch(e.Base(), e.Spanner())
	}
	return metrics.StretchVsWeights(e.Base(), e.Spanner(), func(_, _ int, euclid float64) float64 {
		return m.Weight(euclid)
	})
}
