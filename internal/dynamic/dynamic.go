// Package dynamic maintains a t-spanner of an α-quasi unit ball graph
// incrementally while the node set churns: nodes Join, Leave, and Move
// without the topology ever being rebuilt from scratch.
//
// The paper's setting is inherently dynamic — wireless nodes die, arrive,
// and are mobile — but its algorithm (and internal/core) is a one-shot
// construction. This package closes the gap with localized repair built on
// two observations:
//
//  1. The spanner invariant is per-edge: the topology is a t-spanner of the
//     base graph iff every base edge {u,v} has a spanner path of length at
//     most t·w(u,v) (the standard spanner argument). Maintaining the
//     invariant edge-by-edge therefore maintains the global guarantee.
//  2. A certifying path for edge {u,v} has length at most t·w_max, so it
//     lies inside the spanner ball of radius t·w_max around u. A topology
//     change can only break certificates of edges with an endpoint inside
//     that ball around the changed node — everything else is untouched.
//
// Each operation therefore (a) updates base-graph incidence with O(3^d)
// geom.DynamicGrid range queries, (b) collects the bounded "dirty" ball
// around the change with one epoch-stamped graph.Searcher ball query
// against the pre-change spanner, and (c) replays the greedy
// edge-acceptance rule (greedy.Accept, the rule extracted from SEQ-GREEDY)
// over only the base edges incident to dirty vertices, in canonical greedy
// order. The replay runs on the bidirectional existence kernel
// (graph.Searcher.ReachableWithin): each candidate probe grows two
// half-radius frontiers from the edge's endpoints and stops at the first
// meeting within t·w, rather than settling the full ball around one
// endpoint. Batched mode (Begin/Commit) coalesces an operation burst into one
// repair pass: structural updates apply immediately, dirty balls
// accumulate, and candidates are re-accepted once.
//
// The maintained spanner is always a subgraph of the current base graph
// (edges incident to departed or moved nodes are removed with the node),
// and repair never removes a certificate — so the per-edge invariant, and
// with it stretch ≤ t, holds after every committed operation. The
// differential fuzz test pins this against metrics.Stretch and a fresh
// core.Build across thousands of operation sequences.
package dynamic

import (
	"fmt"
	"sort"

	"topoctl/internal/core"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/greedy"
	"topoctl/internal/ubg"
)

// Options configures an Engine.
type Options struct {
	// T is the target stretch factor, > 1.
	T float64
	// Radius is the connectivity radius: two nodes are linked in the base
	// graph iff their Euclidean distance is at most Radius (default 1, the
	// unit ball graph; use α for the pessimistic α-UBG arm). The engine
	// maintains the ModelAll base graph — deterministic connectivity is
	// what makes incremental edge updates well-defined.
	Radius float64
	// Metric maps Euclidean lengths to edge weights (default Euclidean;
	// the §1.6.2 energy metric is supported — dirty balls are computed in
	// metric units, so locality reasoning is metric-agnostic).
	Metric core.Metric
	// Dim is the embedding dimension, required only when the engine starts
	// empty (otherwise inferred from the first point).
	Dim int
}

func (o *Options) normalize() error {
	if o.T <= 1 {
		return fmt.Errorf("dynamic: stretch t = %v must exceed 1", o.T)
	}
	if o.Radius == 0 {
		o.Radius = 1
	}
	if o.Radius < 0 {
		return fmt.Errorf("dynamic: radius %v must be positive", o.Radius)
	}
	if o.Metric == (core.Metric{}) {
		o.Metric = core.EuclideanMetric
	}
	return o.Metric.Validate()
}

// Stats counts the work the engine has done; the churn scenario runner and
// benchmarks report them.
type Stats struct {
	// Joins, Leaves and Moves count committed operations.
	Joins, Leaves, Moves int
	// Repairs counts repair passes (== operations when unbatched; one per
	// Commit when batched).
	Repairs int
	// Candidates counts edges replayed through the acceptance rule.
	Candidates int
	// EdgesAdded and EdgesRemoved count spanner mutations.
	EdgesAdded, EdgesRemoved int
	// DirtyVisited counts vertices swept into dirty balls.
	DirtyVisited int
}

// Engine maintains a base α-UBG and a t-spanner of it under churn. Vertex
// ids are dense slots; Leave frees a slot and a later Join may reuse it.
// An Engine is not safe for concurrent use.
type Engine struct {
	opts Options
	dim  int

	points []geom.Point // slot -> position; valid only where alive
	alive  []bool
	free   []int // freed slots available for reuse
	n      int   // live node count

	grid *geom.DynamicGrid
	base *graph.Graph // current base graph, Euclidean weights
	sp   *graph.Graph // maintained spanner, metric weights

	s       *graph.Searcher
	nbrs    []int        // grid query scratch
	targets []int        // dropIncident scratch
	cands   []graph.Edge // repair candidate scratch
	dirty   map[int]struct{}
	batch   bool
	stats   Stats

	// Delta-export state (ExportFrozen): the last published frozen
	// snapshots, the vertices whose adjacency rows changed since then, and
	// whether anything at all changed. expPoints/expAlive cache the last
	// published slot metadata so a no-op export returns identical values.
	touched      map[int]struct{}
	touchScratch []int
	lastTouched  []int
	expBase      *graph.Frozen
	expSp        *graph.Frozen
	expPoints    []geom.Point
	expAlive     []bool
	exportClean  bool

	maxW float64 // metric weight of a maximum-length base edge
}

// New builds an engine over the given initial points (may be empty; then
// opts.Dim must be set). The initial spanner is SEQ-GREEDY over the base
// graph — the same acceptance rule incremental repair replays later.
func New(points []geom.Point, opts Options) (*Engine, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	dim := opts.Dim
	if len(points) > 0 {
		if dim != 0 && dim != points[0].Dim() {
			return nil, fmt.Errorf("dynamic: Options.Dim %d conflicts with %d-dimensional points", dim, points[0].Dim())
		}
		dim = points[0].Dim()
	}
	if dim <= 0 {
		return nil, fmt.Errorf("dynamic: empty engine needs Options.Dim")
	}
	cap := len(points)
	if cap < 4 {
		cap = 4
	}
	e := &Engine{
		opts:    opts,
		dim:     dim,
		points:  make([]geom.Point, cap),
		alive:   make([]bool, cap),
		grid:    geom.NewDynamicGrid(opts.Radius),
		base:    graph.New(cap),
		sp:      graph.NewWithDegree(cap, 8),
		s:       graph.NewSearcher(cap),
		dirty:   make(map[int]struct{}),
		touched: make(map[int]struct{}),
		maxW:    opts.Metric.Weight(opts.Radius),
	}
	for id := cap - 1; id >= len(points); id-- {
		e.free = append(e.free, id)
	}
	for id, p := range points {
		if p.Dim() != dim {
			return nil, fmt.Errorf("dynamic: point %d has dimension %d, want %d", id, p.Dim(), dim)
		}
		e.points[id] = p.Clone()
		e.alive[id] = true
		e.grid.Add(id, e.points[id])
		e.n++
	}
	if len(points) >= bulkBuildThreshold {
		// Bulk load: build the base ball graph grid-cell-parallel straight
		// into a frozen CSR slab and thaw it (O(1) allocations), instead of
		// replaying len(points) sequential grid insert + edge-scan steps on
		// the mutable graph. The deterministic per-pair acceptance makes the
		// result identical to the incremental path's edge set. Nothing is
		// marked touched: expBase is still nil, so the first ExportFrozen
		// full-freezes regardless.
		f, err := ubg.BuildRadius(e.points[:len(points)], e.opts.Radius)
		if err != nil {
			return nil, err
		}
		base := f.Thaw()
		base.Grow(cap)
		e.base = base
	} else {
		for id := range points {
			e.addBaseEdges(id)
		}
	}
	es := e.base.EdgesUnordered()
	for i := range es {
		es[i].W = e.opts.Metric.Weight(es[i].W)
	}
	greedy.SortEdges(es)
	greedy.RunCount(e.sp, es, e.opts.T)
	return e, nil
}

// bulkBuildThreshold is the initial-size cutoff above which New builds the
// base graph through the parallel frozen-CSR path rather than per-point
// incremental insertion. Below it the incremental path is already cheap
// and its allocation pattern irrelevant.
const bulkBuildThreshold = 2048

// addBaseEdges links id to every live node within Radius (skipping edges
// already present, so batch replays are idempotent).
func (e *Engine) addBaseEdges(id int) {
	e.nbrs = e.grid.NeighborsAppend(e.nbrs[:0], e.points[id], e.opts.Radius, id)
	for _, v := range e.nbrs {
		if !e.base.HasEdge(id, v) {
			e.base.AddEdge(id, v, geom.Dist(e.points[id], e.points[v]))
			e.touch(id)
			e.touch(v)
		}
	}
}

// N returns the live node count.
func (e *Engine) N() int { return e.n }

// Dim returns the embedding dimension.
func (e *Engine) Dim() int { return e.dim }

// Alive reports whether slot id currently holds a live node.
func (e *Engine) Alive(id int) bool {
	return id >= 0 && id < len(e.alive) && e.alive[id]
}

// Point returns the position of live node id (nil otherwise).
func (e *Engine) Point(id int) geom.Point {
	if !e.Alive(id) {
		return nil
	}
	return e.points[id]
}

// IDs appends the live node ids to dst in increasing order.
func (e *Engine) IDs(dst []int) []int {
	for id, a := range e.alive {
		if a {
			dst = append(dst, id)
		}
	}
	return dst
}

// Base returns the current base graph (Euclidean weights). Freed slots are
// isolated vertices. The graph is owned by the engine: read-only.
func (e *Engine) Base() *graph.Graph { return e.base }

// Spanner returns the maintained spanner (metric weights). Owned by the
// engine: read-only.
func (e *Engine) Spanner() *graph.Graph { return e.sp }

// Stats returns the accumulated work counters.
func (e *Engine) Stats() Stats { return e.stats }

// Export deep-copies the engine's current state: slot-indexed positions
// (nil for free slots), the alive mask, and the base graph and spanner
// (free slots are isolated vertices). The copies share no memory with the
// engine, so callers may publish them to concurrent readers while the
// engine keeps mutating. The serving layer publishes through the cheaper
// delta-aware ExportFrozen instead; Export remains for callers that need
// mutable copies, and as the full-copy reference the frozen differential
// tests pin ExportFrozen against.
func (e *Engine) Export() (points []geom.Point, alive []bool, base, sp *graph.Graph) {
	points = make([]geom.Point, len(e.points))
	for id, p := range e.points {
		if e.alive[id] {
			points[id] = p.Clone()
		}
	}
	alive = append([]bool(nil), e.alive...)
	return points, alive, e.base.Clone(), e.sp.Clone()
}

// ExportFrozen publishes the engine's current state as immutable frozen
// (CSR) snapshots, rebuilding only what changed since the previous call:
// adjacency rows untouched since the last export alias the prior
// snapshot's storage, touched rows are re-frozen, and the slot metadata
// slices are fresh copies. The cost — time and, more importantly,
// allocations — is proportional to the repair the engine actually
// performed, not to n+m, which is what keeps snapshot-per-commit
// publishing cheap under churn (Export, by contrast, deep-copies
// everything on every call).
//
// When nothing changed since the previous ExportFrozen, the exact same
// four values are returned (pointer-identical graphs and slices): a commit
// with zero net effect publishes the prior snapshot unchanged.
//
// The returned points alias the engine's per-slot Point values. That is
// safe to publish because the engine never mutates a Point in place — Join
// and Move install fresh clones — but callers must treat them as
// read-only, like everything else returned here.
func (e *Engine) ExportFrozen() (points []geom.Point, alive []bool, base, sp *graph.Frozen) {
	if e.exportClean && e.expBase != nil {
		e.lastTouched = e.lastTouched[:0]
		return e.expPoints, e.expAlive, e.expBase, e.expSp
	}
	e.touchScratch = e.touchScratch[:0]
	for v := range e.touched {
		e.touchScratch = append(e.touchScratch, v)
	}
	e.expBase = graph.UpdateFrozen(e.expBase, e.base, e.touchScratch)
	e.expSp = graph.UpdateFrozen(e.expSp, e.sp, e.touchScratch)
	e.expPoints = append([]geom.Point(nil), e.points...)
	e.expAlive = append([]bool(nil), e.alive...)
	e.lastTouched = append(e.lastTouched[:0], e.touchScratch...)
	sort.Ints(e.lastTouched)
	clear(e.touched)
	e.exportClean = true
	return e.expPoints, e.expAlive, e.expBase, e.expSp
}

// LastExportTouched returns the vertices whose adjacency rows the most
// recent ExportFrozen re-froze, sorted ascending — the row set a WAL
// delta frame must carry so a replica applying it reproduces the export
// exactly. Empty when the latest export republished the previous
// snapshot unchanged. The slice is engine-owned scratch, valid until the
// next ExportFrozen.
func (e *Engine) LastExportTouched() []int { return e.lastTouched }

// Options returns the normalized engine options.
func (e *Engine) Options() Options { return e.opts }

// Begin enters batched mode: subsequent operations update the base graph
// immediately but defer spanner repair until Commit. While a batch is open
// the spanner may transiently violate the stretch bound.
func (e *Engine) Begin() { e.batch = true }

// Commit closes a batch with a single repair pass over the accumulated
// dirty set. It is a no-op outside a batch.
func (e *Engine) Commit() {
	if !e.batch {
		return
	}
	e.batch = false
	e.repair()
}

// Join adds a node at p and returns its id.
func (e *Engine) Join(p geom.Point) (int, error) {
	if p.Dim() != e.dim {
		return 0, fmt.Errorf("dynamic: point dimension %d, want %d", p.Dim(), e.dim)
	}
	id := e.alloc()
	e.points[id] = p.Clone()
	e.alive[id] = true
	e.n++
	e.grid.Add(id, e.points[id])
	e.addBaseEdges(id)
	// A join breaks no existing certificate (nothing is removed); only the
	// new node's own base edges need acceptance.
	e.markDirty(id)
	e.exportClean = false
	e.stats.Joins++
	e.afterOp()
	return id, nil
}

// Leave removes node id.
func (e *Engine) Leave(id int) error {
	if !e.Alive(id) {
		return fmt.Errorf("dynamic: leave of dead node %d", id)
	}
	e.retire(id)
	e.grid.Remove(id)
	e.points[id] = nil
	e.alive[id] = false
	e.n--
	e.free = append(e.free, id)
	e.exportClean = false
	e.stats.Leaves++
	e.afterOp()
	return nil
}

// Move relocates node id to p.
func (e *Engine) Move(id int, p geom.Point) error {
	if !e.Alive(id) {
		return fmt.Errorf("dynamic: move of dead node %d", id)
	}
	if p.Dim() != e.dim {
		return fmt.Errorf("dynamic: point dimension %d, want %d", p.Dim(), e.dim)
	}
	e.retire(id)
	e.points[id] = p.Clone()
	e.grid.Move(id, e.points[id])
	e.addBaseEdges(id)
	e.markDirty(id)
	e.exportClean = false
	e.stats.Moves++
	e.afterOp()
	return nil
}

// retire removes id's base and spanner edges, first sweeping the spanner
// ball of radius t·w_max around id into the dirty set: any base edge whose
// certifying path traverses an edge incident to id has an endpoint in that
// ball (certificates are at most t·w_max long), measured against the
// spanner as it stands *before* the removal. Inside a batch the sweep
// stays sufficient by induction on the ops: consider a base edge whose
// certificate (as of batch start) traverses edges incident to several
// batch casualties, and let id be the one removed *earliest*. At that
// moment the certificate is still fully intact — no repair has run, and
// no earlier op removed any of its edges — so the certificate itself
// keeps the edge's endpoint within t·w_max of id in the pre-drop spanner
// and the sweep catches it, even though later sweeps (run against a
// further-shrunken spanner, where distances have grown) might not.
func (e *Engine) retire(id int) {
	for _, vd := range e.s.Ball(e.sp, id, e.opts.T*e.maxW) {
		if vd.V != id {
			e.markDirty(vd.V)
		}
	}
	e.dropIncident(e.base, id)
	e.stats.EdgesRemoved += e.dropIncident(e.sp, id)
}

// dropIncident removes every edge incident to id from g, returning the
// number removed. Neighbor targets are snapshotted into engine scratch
// first because RemoveEdge mutates the adjacency list being iterated.
func (e *Engine) dropIncident(g *graph.Graph, id int) int {
	e.targets = e.targets[:0]
	for _, h := range g.Neighbors(id) {
		e.targets = append(e.targets, h.To)
	}
	for _, v := range e.targets {
		g.RemoveEdge(id, v)
		e.touch(v)
	}
	if len(e.targets) > 0 {
		e.touch(id)
	}
	return len(e.targets)
}

// alloc returns a free slot, growing every id-indexed structure (amortized
// doubling) when none remains.
func (e *Engine) alloc() int {
	if n := len(e.free); n > 0 {
		id := e.free[n-1]
		e.free = e.free[:n-1]
		return id
	}
	old := len(e.points)
	next := 2 * old
	e.points = append(e.points, make([]geom.Point, next-old)...)
	e.alive = append(e.alive, make([]bool, next-old)...)
	e.base.Grow(next)
	e.sp.Grow(next)
	for id := next - 1; id > old; id-- {
		e.free = append(e.free, id)
	}
	return old
}

// touch records that v's adjacency row (in the base graph, the spanner, or
// both) changed since the last ExportFrozen. Rows never touched between two
// exports are shared, not rebuilt, by the delta export. Any touch also
// invalidates the cached export directly — the ops set exportClean too, but
// repair inside Commit mutates the spanner after the op returns, and an
// export taken mid-batch must not be republished over those edges.
func (e *Engine) touch(v int) {
	e.touched[v] = struct{}{}
	e.exportClean = false
}

func (e *Engine) markDirty(v int) {
	if _, ok := e.dirty[v]; !ok {
		e.dirty[v] = struct{}{}
		e.stats.DirtyVisited++
	}
}

func (e *Engine) afterOp() {
	if !e.batch {
		e.repair()
	}
}

// repair replays the greedy acceptance rule over every base edge incident
// to a dirty vertex, in canonical greedy order, restoring the per-edge
// spanner invariant.
func (e *Engine) repair() {
	defer clear(e.dirty)
	if len(e.dirty) == 0 {
		e.stats.Repairs++
		return
	}
	cands := e.cands[:0]
	for v := range e.dirty {
		if !e.alive[v] {
			continue
		}
		for _, h := range e.base.Neighbors(v) {
			if _, dup := e.dirty[h.To]; dup && h.To < v {
				continue // the lower-id dirty endpoint owns the edge
			}
			cands = append(cands, graph.NewEdge(v, h.To, e.opts.Metric.Weight(h.W)))
		}
	}
	e.cands = cands
	greedy.SortEdges(cands)
	for _, ed := range cands {
		if greedy.Accept(e.s, e.sp, ed, e.opts.T) {
			e.sp.AddEdge(ed.U, ed.V, ed.W)
			e.touch(ed.U)
			e.touch(ed.V)
			e.stats.EdgesAdded++
		}
	}
	e.stats.Candidates += len(cands)
	e.stats.Repairs++
}
