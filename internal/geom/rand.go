package geom

import (
	"math"
	"math/rand"
)

// Cloud describes a synthetic point-cloud workload. The experiments in
// EXPERIMENTS.md are all driven by clouds generated here with fixed seeds so
// every table is exactly regenerable.
type Cloud int

// Supported cloud distributions.
const (
	// CloudUniform scatters points uniformly in the unit cube [0,1]^d
	// scaled by Side.
	CloudUniform Cloud = iota + 1
	// CloudClustered places points around a few Gaussian hotspots; this is
	// the classical sensor-deployment pattern (dense clusters joined by
	// sparse bridges) that stresses the cluster-cover machinery.
	CloudClustered
	// CloudCorridor places points along a thin corridor, producing long
	// hop paths (worst case for round counts of gather primitives).
	CloudCorridor
	// CloudGridJitter places points on a jittered lattice, the standard
	// "engineered deployment" pattern with near-uniform density.
	CloudGridJitter
)

// String returns the workload name.
func (c Cloud) String() string {
	switch c {
	case CloudUniform:
		return "uniform"
	case CloudClustered:
		return "clustered"
	case CloudCorridor:
		return "corridor"
	case CloudGridJitter:
		return "grid-jitter"
	default:
		return "unknown"
	}
}

// CloudConfig parameterizes point generation.
type CloudConfig struct {
	Kind Cloud
	// N is the number of points.
	N int
	// Dim is the space dimension d >= 2.
	Dim int
	// Side scales the bounding region; points land in [0, Side]^d (the
	// corridor cloud uses a Side x (Side/8) x ... box). Choosing Side
	// relative to the unit communication radius controls network density.
	Side float64
	// Seed makes generation deterministic.
	Seed int64
	// Hotspots is the number of clusters for CloudClustered (default 5).
	Hotspots int
}

// GeneratePoints produces a deterministic point cloud for the config.
func GeneratePoints(cfg CloudConfig) []Point {
	if cfg.N <= 0 {
		return nil
	}
	if cfg.Dim < 1 {
		panic("geom: cloud dimension must be >= 1")
	}
	if cfg.Side <= 0 {
		cfg.Side = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pts := make([]Point, cfg.N)
	switch cfg.Kind {
	case CloudClustered:
		h := cfg.Hotspots
		if h <= 0 {
			h = 5
		}
		centers := make([]Point, h)
		for i := range centers {
			centers[i] = uniformPoint(rng, cfg.Dim, cfg.Side)
		}
		sigma := cfg.Side / (3 * math.Sqrt(float64(h)))
		for i := range pts {
			c := centers[rng.Intn(h)]
			p := make(Point, cfg.Dim)
			for j := range p {
				p[j] = clamp(c[j]+rng.NormFloat64()*sigma, 0, cfg.Side)
			}
			pts[i] = p
		}
	case CloudCorridor:
		for i := range pts {
			p := make(Point, cfg.Dim)
			p[0] = rng.Float64() * cfg.Side
			for j := 1; j < cfg.Dim; j++ {
				p[j] = rng.Float64() * cfg.Side / 8
			}
			pts[i] = p
		}
	case CloudGridJitter:
		// Lay points on a near-square lattice with ±20% jitter.
		per := int(math.Ceil(math.Pow(float64(cfg.N), 1/float64(cfg.Dim))))
		if per < 1 {
			per = 1
		}
		step := cfg.Side / float64(per)
		idx := make([]int, cfg.Dim)
		for i := range pts {
			p := make(Point, cfg.Dim)
			for j := range p {
				p[j] = clamp((float64(idx[j])+0.5+0.4*(rng.Float64()-0.5))*step, 0, cfg.Side)
			}
			pts[i] = p
			for j := 0; j < cfg.Dim; j++ {
				idx[j]++
				if idx[j] < per {
					break
				}
				idx[j] = 0
			}
		}
	default: // CloudUniform
		for i := range pts {
			pts[i] = uniformPoint(rng, cfg.Dim, cfg.Side)
		}
	}
	return pts
}

func uniformPoint(rng *rand.Rand, d int, side float64) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.Float64() * side
	}
	return p
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
