package geom

// DynamicGrid is the mutable counterpart of Grid: a uniform spatial hash
// over R^d whose point set changes over time. internal/dynamic uses it to
// keep α-UBG incidence queries O(3^d) per operation while nodes join, leave
// and move — rebuilding a static Grid per operation would cost O(n) each.
//
// Points are identified by caller-chosen dense integer ids (the dynamic
// engine's vertex slots); ids may be added, removed, and re-added freely.
// Like Grid, a DynamicGrid reuses internal scratch buffers between queries
// (the shared cellHash core) and is not safe for concurrent use.
type DynamicGrid struct {
	cellHash
	points []Point // id-indexed; nil marks an absent id
	count  int
}

// NewDynamicGrid returns an empty grid with the given cell side. cell must
// be positive. The dimension is fixed by the first point added.
func NewDynamicGrid(cell float64) *DynamicGrid {
	return &DynamicGrid{cellHash: newCellHash(cell)}
}

// Add indexes point p under id. It panics if id is already present or the
// dimension disagrees with previously added points.
func (g *DynamicGrid) Add(id int, p Point) {
	if id < 0 {
		panic("geom: negative grid id")
	}
	if g.dim == 0 {
		if p.Dim() == 0 {
			panic("geom: zero-dimensional point")
		}
		g.setDim(p.Dim())
	} else if p.Dim() != g.dim {
		panic("geom: grid dimension mismatch")
	}
	for id >= len(g.points) {
		g.points = append(g.points, nil)
	}
	if g.points[id] != nil {
		panic("geom: duplicate grid id")
	}
	g.points[id] = p
	k := g.key(p)
	g.cells[k] = append(g.cells[k], id)
	g.count++
}

// Remove drops id from the index. It panics if id is not present.
func (g *DynamicGrid) Remove(id int) {
	p := g.point(id)
	k := g.key(p)
	bucket := g.cells[k]
	for i, x := range bucket {
		if x == id {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			// Deleting drained buckets keeps the map from growing without
			// bound as churn sweeps points across cells.
			if len(bucket) == 0 {
				delete(g.cells, k)
			} else {
				g.cells[k] = bucket
			}
			g.points[id] = nil
			g.count--
			return
		}
	}
	panic("geom: grid id missing from its cell")
}

// Move reindexes id at its new position p. Small mobility steps usually
// stay within the point's current cell, in which case only the stored
// position changes and the bucket map is untouched.
func (g *DynamicGrid) Move(id int, p Point) {
	old := g.point(id)
	if p.Dim() == g.dim && g.key(old) == g.key(p) {
		g.points[id] = p
		return
	}
	g.Remove(id)
	g.Add(id, p)
}

// Point returns the indexed position of id (nil if absent).
func (g *DynamicGrid) Point(id int) Point {
	if id < 0 || id >= len(g.points) {
		return nil
	}
	return g.points[id]
}

func (g *DynamicGrid) point(id int) Point {
	if id < 0 || id >= len(g.points) || g.points[id] == nil {
		panic("geom: unknown grid id")
	}
	return g.points[id]
}

// NeighborsAppend appends to dst the ids of all indexed points q (other
// than id self; pass -1 to disable self-exclusion) with |p - q| <= radius,
// and returns the extended slice. Same contract as Grid.NeighborsAppend:
// reusing dst[:0] across calls makes queries allocation-free, and the
// shared scratch buffers forbid concurrent use.
func (g *DynamicGrid) NeighborsAppend(dst []int, p Point, radius float64, self int) []int {
	if g.count == 0 {
		return dst
	}
	if p.Dim() != g.dim {
		panic("geom: grid dimension mismatch")
	}
	return g.scanAppend(dst, g.points, p, radius, self)
}

// Len returns the number of indexed points.
func (g *DynamicGrid) Len() int { return g.count }
