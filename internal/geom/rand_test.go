package geom

import (
	"testing"
)

func TestGeneratePointsDeterministic(t *testing.T) {
	for _, kind := range []Cloud{CloudUniform, CloudClustered, CloudCorridor, CloudGridJitter} {
		cfg := CloudConfig{Kind: kind, N: 50, Dim: 2, Side: 3, Seed: 99}
		a := GeneratePoints(cfg)
		b := GeneratePoints(cfg)
		if len(a) != 50 || len(b) != 50 {
			t.Fatalf("%v: wrong count", kind)
		}
		for i := range a {
			if Dist(a[i], b[i]) != 0 {
				t.Fatalf("%v: generation not deterministic at %d", kind, i)
			}
		}
	}
}

func TestGeneratePointsSeedSensitivity(t *testing.T) {
	a := GeneratePoints(CloudConfig{Kind: CloudUniform, N: 10, Dim: 2, Side: 1, Seed: 1})
	b := GeneratePoints(CloudConfig{Kind: CloudUniform, N: 10, Dim: 2, Side: 1, Seed: 2})
	same := true
	for i := range a {
		if Dist(a[i], b[i]) != 0 {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical clouds")
	}
}

func TestGeneratePointsWithinBounds(t *testing.T) {
	for _, kind := range []Cloud{CloudUniform, CloudClustered, CloudCorridor, CloudGridJitter} {
		for _, d := range []int{2, 3} {
			pts := GeneratePoints(CloudConfig{Kind: kind, N: 200, Dim: d, Side: 2.5, Seed: 5})
			for _, p := range pts {
				if p.Dim() != d {
					t.Fatalf("%v d=%d: wrong dimension %d", kind, d, p.Dim())
				}
				for _, c := range p {
					if c < 0 || c > 2.5 {
						t.Fatalf("%v d=%d: coordinate %v out of [0, 2.5]", kind, d, c)
					}
				}
			}
		}
	}
}

func TestGenerateCorridorIsThin(t *testing.T) {
	pts := GeneratePoints(CloudConfig{Kind: CloudCorridor, N: 100, Dim: 2, Side: 8, Seed: 3})
	for _, p := range pts {
		if p[1] > 1.0+1e-9 { // Side/8
			t.Fatalf("corridor point %v too wide", p)
		}
	}
}

func TestGeneratePointsEdgeCases(t *testing.T) {
	if got := GeneratePoints(CloudConfig{Kind: CloudUniform, N: 0, Dim: 2}); got != nil {
		t.Errorf("N=0 should yield nil, got %v", got)
	}
	one := GeneratePoints(CloudConfig{Kind: CloudGridJitter, N: 1, Dim: 2, Side: 1, Seed: 1})
	if len(one) != 1 {
		t.Errorf("N=1 yielded %d points", len(one))
	}
	defSide := GeneratePoints(CloudConfig{Kind: CloudUniform, N: 5, Dim: 2, Seed: 1})
	for _, p := range defSide {
		for _, c := range p {
			if c < 0 || c > 1 {
				t.Errorf("default side should be 1, got coordinate %v", c)
			}
		}
	}
}

func TestCloudString(t *testing.T) {
	tests := map[Cloud]string{
		CloudUniform:    "uniform",
		CloudClustered:  "clustered",
		CloudCorridor:   "corridor",
		CloudGridJitter: "grid-jitter",
		Cloud(99):       "unknown",
	}
	for k, want := range tests {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestClamp(t *testing.T) {
	if clamp(-1, 0, 1) != 0 || clamp(2, 0, 1) != 1 || clamp(0.5, 0, 1) != 0.5 {
		t.Error("clamp broken")
	}
}
