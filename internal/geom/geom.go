// Package geom provides the d-dimensional Euclidean geometry substrate used
// throughout the repository: points, distances, angles, Yao-style cone
// partitions, deterministic random point clouds, and a spatial hash grid for
// fixed-radius neighbor queries.
//
// The paper models a wireless network as a d-dimensional α-quasi unit ball
// graph whose vertices correspond to points in R^d; every geometric
// predicate the algorithms need (Euclidean distance, the angle test of the
// Czumaj–Zhao lemma, cone partitions for the degree proof) lives here.
package geom

import (
	"fmt"
	"math"
)

// Point is a point in d-dimensional Euclidean space. The dimension is the
// slice length. Points are treated as immutable values by this package.
type Point []float64

// Clone returns a deep copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Dim returns the dimension of the point.
func (p Point) Dim() int { return len(p) }

// String renders the point as "(x1, x2, ...)" with 4-digit precision.
func (p Point) String() string {
	s := "("
	for i, c := range p {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.4f", c)
	}
	return s + ")"
}

// Sub returns p - q as a vector.
func Sub(p, q Point) Point {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	v := make(Point, len(p))
	for i := range p {
		v[i] = p[i] - q[i]
	}
	return v
}

// Add returns p + q.
func Add(p, q Point) Point {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	v := make(Point, len(p))
	for i := range p {
		v[i] = p[i] + q[i]
	}
	return v
}

// Scale returns s * p.
func Scale(p Point, s float64) Point {
	v := make(Point, len(p))
	for i := range p {
		v[i] = s * p[i]
	}
	return v
}

// Dot returns the inner product of p and q.
func Dot(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		s += p[i] * q[i]
	}
	return s
}

// Norm returns the Euclidean norm of p interpreted as a vector.
func Norm(p Point) float64 { return math.Sqrt(Dot(p, p)) }

// DistSq returns the squared Euclidean distance between p and q.
func DistSq(p, q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geom: dimension mismatch %d vs %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance |pq|.
func Dist(p, q Point) float64 { return math.Sqrt(DistSq(p, q)) }

// Angle returns the angle ∠(a, apex, b) in radians, i.e. the angle at apex
// between rays apex→a and apex→b. The result is in [0, π]. If either ray is
// degenerate (a == apex or b == apex) the angle is defined to be 0.
func Angle(apex, a, b Point) float64 {
	u := Sub(a, apex)
	v := Sub(b, apex)
	nu, nv := Norm(u), Norm(v)
	if nu == 0 || nv == 0 {
		return 0
	}
	c := Dot(u, v) / (nu * nv)
	// Clamp against floating-point drift before acos.
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return math.Acos(c)
}

// Normalize returns p scaled to unit norm. Panics if p is the zero vector.
func Normalize(p Point) Point {
	n := Norm(p)
	if n == 0 {
		panic("geom: cannot normalize zero vector")
	}
	return Scale(p, 1/n)
}

// Midpoint returns the midpoint of segment pq.
func Midpoint(p, q Point) Point {
	m := make(Point, len(p))
	for i := range p {
		m[i] = (p[i] + q[i]) / 2
	}
	return m
}

// Within reports whether |pq| <= r, computed without a square root.
func Within(p, q Point, r float64) bool {
	return DistSq(p, q) <= r*r
}
