package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randPoints(t testing.TB, n, d int, seed int64, side float64) []Point {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	pts := make([]Point, n)
	for i := range pts {
		p := make(Point, d)
		for j := range p {
			p[j] = rng.Float64() * side
		}
		pts[i] = p
	}
	return pts
}

func TestCellGridPartition(t *testing.T) {
	// Dimension 5 exercises the wide (string-keyed) index path; the low
	// dimensions use the packed comparable-array keys.
	for _, d := range []int{1, 2, 3, 5} {
		pts := randPoints(t, 500, d, int64(d)*7, 5)
		g := NewCellGrid(pts, 0.9)
		if g.Len() != len(pts) {
			t.Fatalf("d=%d: Len = %d, want %d", d, g.Len(), len(pts))
		}
		seen := make([]bool, len(pts))
		for c := 0; c < g.Cells(); c++ {
			ids := g.CellIDs(c)
			if len(ids) == 0 {
				t.Fatalf("d=%d: cell %d is empty", d, c)
			}
			for i, id := range ids {
				if seen[id] {
					t.Fatalf("d=%d: point %d in two cells", d, id)
				}
				seen[id] = true
				if i > 0 && ids[i-1] >= id {
					t.Fatalf("d=%d: cell %d ids not increasing", d, c)
				}
				// Every point must be inside its cell's box.
				base := g.coord[c*g.dim : (c+1)*g.dim]
				for j, x := range pts[id] {
					if got := int64(math.Floor(x / g.cell)); got != base[j] {
						t.Fatalf("d=%d: point %d coord %d in wrong cell", d, id, j)
					}
				}
			}
		}
		for id, ok := range seen {
			if !ok {
				t.Fatalf("d=%d: point %d unbucketed", d, id)
			}
		}
	}
}

func TestCellGridEmpty(t *testing.T) {
	g := NewCellGrid(nil, 1)
	if g.Cells() != 0 || g.Len() != 0 {
		t.Fatalf("empty grid: Cells=%d Len=%d", g.Cells(), g.Len())
	}
}

// TestCellGridNeighborCompleteness checks the core guarantee the parallel
// builder relies on: every pair within the cell side appears in some
// (cell, neighbor-cell) combination, and the neighbor enumeration is
// deterministic and includes the center cell.
func TestCellGridNeighborCompleteness(t *testing.T) {
	// Dimension 5 exercises the wide (string-keyed) index path.
	for _, d := range []int{1, 2, 3, 5} {
		const radius = 1.0
		n := 300
		if d == 5 {
			n = 80 // the completeness check below is quadratic in n
		}
		pts := randPoints(t, n, d, 100+int64(d), 4)
		g := NewCellGrid(pts, radius)
		sc := g.NewScan()

		type pair struct{ u, v int32 }
		covered := make(map[pair]bool)
		var ncells []int32
		for c := 0; c < g.Cells(); c++ {
			ncells = g.NeighborCells(ncells[:0], c, sc)
			self := false
			for _, nc := range ncells {
				if int(nc) == c {
					self = true
				}
				for _, u := range g.CellIDs(c) {
					for _, v := range g.CellIDs(int(nc)) {
						covered[pair{u, v}] = true
					}
				}
			}
			if !self {
				t.Fatalf("d=%d: NeighborCells(%d) omits the cell itself", d, c)
			}
			// Determinism: a second scan yields the identical sequence.
			again := g.NeighborCells(nil, c, g.NewScan())
			if len(again) != len(ncells) {
				t.Fatalf("d=%d: NeighborCells not deterministic", d)
			}
			for i := range again {
				if again[i] != ncells[i] {
					t.Fatalf("d=%d: NeighborCells order differs between scans", d)
				}
			}
		}
		for u := range pts {
			for v := range pts {
				if u == v {
					continue
				}
				if DistSq(pts[u], pts[v]) <= radius*radius && !covered[pair{int32(u), int32(v)}] {
					t.Fatalf("d=%d: in-radius pair (%d,%d) not covered by any neighbor scan", d, u, v)
				}
			}
		}
	}
}

func TestCellGridSortedNeighborOrder(t *testing.T) {
	// Regression guard for deterministic cell numbering: cells are numbered
	// in first-encounter order of the points, so two grids over the same
	// point slice agree exactly.
	pts := randPoints(t, 200, 2, 42, 3)
	a, b := NewCellGrid(pts, 0.7), NewCellGrid(pts, 0.7)
	if a.Cells() != b.Cells() {
		t.Fatalf("cell counts differ: %d vs %d", a.Cells(), b.Cells())
	}
	for c := 0; c < a.Cells(); c++ {
		ai, bi := a.CellIDs(c), b.CellIDs(c)
		if len(ai) != len(bi) {
			t.Fatalf("cell %d sizes differ", c)
		}
		for i := range ai {
			if ai[i] != bi[i] {
				t.Fatalf("cell %d contents differ", c)
			}
		}
	}
	// And the union of all neighbor scans per cell is stable under sorting,
	// i.e. no duplicates are emitted.
	sc := a.NewScan()
	for c := 0; c < a.Cells(); c++ {
		ncells := a.NeighborCells(nil, c, sc)
		s := append([]int32(nil), ncells...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		for i := 1; i < len(s); i++ {
			if s[i] == s[i-1] {
				t.Fatalf("cell %d: duplicate neighbor %d", c, s[i])
			}
		}
	}
}
