package geom

import "math"

// Grid is a uniform spatial hash over R^d used for fixed-radius neighbor
// queries. Building an α-UBG naively costs Θ(n²) distance checks; with a
// grid of cell side equal to the query radius only O(3^d) cells need to be
// inspected per query, which keeps network generation linear for the
// bounded-density point clouds the experiments use.
type Grid struct {
	cell   float64
	dim    int
	points []Point
	cells  map[string][]int
}

// NewGrid indexes the given points with the given cell side. cell must be
// positive and all points must share the same dimension.
func NewGrid(points []Point, cell float64) *Grid {
	if cell <= 0 {
		panic("geom: grid cell side must be positive")
	}
	g := &Grid{cell: cell, points: points, cells: make(map[string][]int)}
	if len(points) > 0 {
		g.dim = points[0].Dim()
	}
	for i, p := range points {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

// key computes the cell key of point p. Keys are encoded as small byte
// strings of the integer cell coordinates; map[string] gives us a compact,
// allocation-friendly multi-dimensional hash without unsafe tricks.
func (g *Grid) key(p Point) string {
	buf := make([]byte, 0, 8*len(p))
	for _, c := range p {
		ic := int64(math.Floor(c / g.cell))
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(ic>>s))
		}
	}
	return string(buf)
}

// Neighbors returns the indices of all points q (other than index self, pass
// -1 to disable self-exclusion) with |p - q| <= radius. radius must not
// exceed the grid cell side times the number of adjacent cells scanned; this
// implementation scans ⌈radius/cell⌉ cells in every direction, so any radius
// is supported, but it is most efficient when radius <= cell.
func (g *Grid) Neighbors(p Point, radius float64, self int) []int {
	if len(g.points) == 0 {
		return nil
	}
	span := int(math.Ceil(radius / g.cell))
	base := make([]int64, g.dim)
	for i, c := range p {
		base[i] = int64(math.Floor(c / g.cell))
	}
	var out []int
	r2 := radius * radius
	offsets := make([]int64, g.dim)
	for i := range offsets {
		offsets[i] = -int64(span)
	}
	for {
		// Visit cell base+offsets.
		buf := make([]byte, 0, 8*g.dim)
		for i := 0; i < g.dim; i++ {
			ic := base[i] + offsets[i]
			for s := 0; s < 64; s += 8 {
				buf = append(buf, byte(ic>>s))
			}
		}
		for _, idx := range g.cells[string(buf)] {
			if idx == self {
				continue
			}
			if DistSq(p, g.points[idx]) <= r2 {
				out = append(out, idx)
			}
		}
		// Advance the offset vector like an odometer.
		i := 0
		for ; i < g.dim; i++ {
			offsets[i]++
			if offsets[i] <= int64(span) {
				break
			}
			offsets[i] = -int64(span)
		}
		if i == g.dim {
			break
		}
	}
	return out
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.points) }
