package geom

import "math"

// cellHash is the cell-indexing core shared by Grid and DynamicGrid: the
// byte-string encoding of integer cell coordinates and the odometer scan
// over the O(⌈radius/cell⌉^d) cells a fixed-radius query must inspect. It
// owns the query scratch buffers, so neither sharer is safe for concurrent
// use.
type cellHash struct {
	cell  float64
	dim   int
	cells map[string][]int

	// Query scratch, reused across calls so neighbor scans perform no
	// steady-state allocations.
	keybuf  []byte
	base    []int64
	offsets []int64
}

// newCellHash returns an empty hash with the given cell side (must be
// positive).
func newCellHash(cell float64) cellHash {
	if cell <= 0 {
		panic("geom: grid cell side must be positive")
	}
	return cellHash{cell: cell, cells: make(map[string][]int)}
}

// setDim fixes the dimension and sizes the scratch buffers.
func (h *cellHash) setDim(dim int) {
	h.dim = dim
	h.keybuf = make([]byte, 0, 8*dim)
	h.base = make([]int64, dim)
	h.offsets = make([]int64, dim)
}

// key computes the cell key of point p. Keys are encoded as small byte
// strings of the integer cell coordinates; map[string] gives us a compact,
// allocation-friendly multi-dimensional hash without unsafe tricks.
func (h *cellHash) key(p Point) string {
	buf := h.keybuf[:0]
	for _, c := range p {
		ic := int64(math.Floor(c / h.cell))
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(ic>>s))
		}
	}
	h.keybuf = buf
	return string(buf)
}

// scanAppend appends to dst the indices of all indexed points q (positions
// resolved through pts; other than index self, pass -1 to disable
// self-exclusion) with |p - q| <= radius, and returns the extended slice.
// radius is supported up to any multiple of the cell side (⌈radius/cell⌉
// cells are scanned per axis), but the scan is most efficient when
// radius <= cell.
func (h *cellHash) scanAppend(dst []int, pts []Point, p Point, radius float64, self int) []int {
	span := int64(math.Ceil(radius / h.cell))
	for i, c := range p {
		h.base[i] = int64(math.Floor(c / h.cell))
		h.offsets[i] = -span
	}
	r2 := radius * radius
	for {
		// Visit cell base+offsets.
		buf := h.keybuf[:0]
		for i := 0; i < h.dim; i++ {
			ic := h.base[i] + h.offsets[i]
			for s := 0; s < 64; s += 8 {
				buf = append(buf, byte(ic>>s))
			}
		}
		h.keybuf = buf
		for _, idx := range h.cells[string(buf)] {
			if idx == self {
				continue
			}
			if DistSq(p, pts[idx]) <= r2 {
				dst = append(dst, idx)
			}
		}
		// Advance the offset vector like an odometer.
		i := 0
		for ; i < h.dim; i++ {
			h.offsets[i]++
			if h.offsets[i] <= span {
				break
			}
			h.offsets[i] = -span
		}
		if i == h.dim {
			break
		}
	}
	return dst
}

// Grid is a uniform spatial hash over R^d used for fixed-radius neighbor
// queries on a static point set. Building an α-UBG naively costs Θ(n²)
// distance checks; with a grid of cell side equal to the query radius only
// O(3^d) cells need to be inspected per query, which keeps network
// generation linear for the bounded-density point clouds the experiments
// use. For a point set that changes over time, use DynamicGrid.
//
// A Grid reuses internal scratch buffers between queries, so it is not
// safe for concurrent use; index the same points into separate Grids for
// parallel querying.
type Grid struct {
	cellHash
	points []Point
}

// NewGrid indexes the given points with the given cell side. cell must be
// positive and all points must share the same dimension.
func NewGrid(points []Point, cell float64) *Grid {
	g := &Grid{cellHash: newCellHash(cell), points: points}
	dim := 0
	if len(points) > 0 {
		dim = points[0].Dim()
	}
	g.setDim(dim)
	for i, p := range points {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

// Neighbors returns the indices of all points q (other than index self, pass
// -1 to disable self-exclusion) with |p - q| <= radius. See NeighborsAppend
// for the allocation-free variant. Like all Grid queries it mutates shared
// scratch state and must not be called concurrently on one Grid.
func (g *Grid) Neighbors(p Point, radius float64, self int) []int {
	return g.NeighborsAppend(nil, p, radius, self)
}

// NeighborsAppend appends to dst the indices of all points q (other than
// index self; pass -1 to disable self-exclusion) with |p - q| <= radius,
// and returns the extended slice. Passing dst[:0] of a slice reused across
// calls makes the query allocation-free once the slice has grown to the
// largest neighborhood. Not safe for concurrent use: the query reuses the
// Grid's scratch buffers.
func (g *Grid) NeighborsAppend(dst []int, p Point, radius float64, self int) []int {
	if len(g.points) == 0 {
		return dst
	}
	return g.scanAppend(dst, g.points, p, radius, self)
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.points) }
