package geom

import "math"

// Grid is a uniform spatial hash over R^d used for fixed-radius neighbor
// queries. Building an α-UBG naively costs Θ(n²) distance checks; with a
// grid of cell side equal to the query radius only O(3^d) cells need to be
// inspected per query, which keeps network generation linear for the
// bounded-density point clouds the experiments use.
//
// A Grid reuses internal scratch buffers between queries, so it is not
// safe for concurrent use; index the same points into separate Grids for
// parallel querying.
type Grid struct {
	cell   float64
	dim    int
	points []Point
	cells  map[string][]int

	// Query scratch, reused across calls so the per-vertex neighbor scan
	// of ubg.Build performs no steady-state allocations.
	keybuf  []byte
	base    []int64
	offsets []int64
}

// NewGrid indexes the given points with the given cell side. cell must be
// positive and all points must share the same dimension.
func NewGrid(points []Point, cell float64) *Grid {
	if cell <= 0 {
		panic("geom: grid cell side must be positive")
	}
	g := &Grid{cell: cell, points: points, cells: make(map[string][]int)}
	if len(points) > 0 {
		g.dim = points[0].Dim()
	}
	g.keybuf = make([]byte, 0, 8*g.dim)
	g.base = make([]int64, g.dim)
	g.offsets = make([]int64, g.dim)
	for i, p := range points {
		k := g.key(p)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

// key computes the cell key of point p. Keys are encoded as small byte
// strings of the integer cell coordinates; map[string] gives us a compact,
// allocation-friendly multi-dimensional hash without unsafe tricks.
func (g *Grid) key(p Point) string {
	buf := g.keybuf[:0]
	for _, c := range p {
		ic := int64(math.Floor(c / g.cell))
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(ic>>s))
		}
	}
	g.keybuf = buf
	return string(buf)
}

// Neighbors returns the indices of all points q (other than index self, pass
// -1 to disable self-exclusion) with |p - q| <= radius. See NeighborsAppend
// for the allocation-free variant. Like all Grid queries it mutates shared
// scratch state and must not be called concurrently on one Grid.
func (g *Grid) Neighbors(p Point, radius float64, self int) []int {
	return g.NeighborsAppend(nil, p, radius, self)
}

// NeighborsAppend appends to dst the indices of all points q (other than
// index self; pass -1 to disable self-exclusion) with |p - q| <= radius,
// and returns the extended slice. Passing dst[:0] of a slice reused across
// calls makes the query allocation-free once the slice has grown to the
// largest neighborhood. radius is supported up to any multiple of the cell
// side (⌈radius/cell⌉ cells are scanned per axis), but the scan is most
// efficient when radius <= cell. Not safe for concurrent use: the query
// reuses the Grid's scratch buffers.
func (g *Grid) NeighborsAppend(dst []int, p Point, radius float64, self int) []int {
	if len(g.points) == 0 {
		return dst
	}
	span := int64(math.Ceil(radius / g.cell))
	for i, c := range p {
		g.base[i] = int64(math.Floor(c / g.cell))
		g.offsets[i] = -span
	}
	r2 := radius * radius
	for {
		// Visit cell base+offsets.
		buf := g.keybuf[:0]
		for i := 0; i < g.dim; i++ {
			ic := g.base[i] + g.offsets[i]
			for s := 0; s < 64; s += 8 {
				buf = append(buf, byte(ic>>s))
			}
		}
		g.keybuf = buf
		for _, idx := range g.cells[string(buf)] {
			if idx == self {
				continue
			}
			if DistSq(p, g.points[idx]) <= r2 {
				dst = append(dst, idx)
			}
		}
		// Advance the offset vector like an odometer.
		i := 0
		for ; i < g.dim; i++ {
			g.offsets[i]++
			if g.offsets[i] <= span {
				break
			}
			g.offsets[i] = -span
		}
		if i == g.dim {
			break
		}
	}
	return dst
}

// Len returns the number of indexed points.
func (g *Grid) Len() int { return len(g.points) }
