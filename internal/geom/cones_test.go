package geom

import (
	"math"
	"math/rand"
	"testing"
)

// TestConePartition2DSameConeAngle verifies the property Theorem 11's
// degree proof needs: any two directions assigned to the same cone subtend
// an angle of at most theta.
func TestConePartition2DSameConeAngle(t *testing.T) {
	for _, theta := range []float64{0.2, 0.5, math.Pi / 4, 1.0} {
		cp := NewConePartition(2, theta)
		rng := rand.New(rand.NewSource(42))
		apex := Point{0, 0}
		// Bucket random directions by cone and verify pairwise angles.
		buckets := make(map[int][]Point)
		for i := 0; i < 2000; i++ {
			v := randomUnitVector(rng, 2)
			buckets[cp.Assign(v)] = append(buckets[cp.Assign(v)], v)
		}
		for c, vs := range buckets {
			for i := 0; i < len(vs); i++ {
				for j := i + 1; j < len(vs); j++ {
					if ang := Angle(apex, vs[i], vs[j]); ang > theta+1e-9 {
						t.Fatalf("theta=%v cone %d: angle %v > theta", theta, c, ang)
					}
				}
			}
		}
	}
}

func TestConePartition2DConeCount(t *testing.T) {
	tests := []struct {
		theta float64
		want  int
	}{
		{math.Pi / 2, 4},
		{math.Pi / 3, 6},
		{math.Pi / 4, 8},
		{1.0, 7}, // ceil(2π/1) = 7
	}
	for _, tc := range tests {
		cp := NewConePartition(2, tc.theta)
		if got := cp.NumCones(); got != tc.want {
			t.Errorf("theta=%v: cones = %d, want %d", tc.theta, got, tc.want)
		}
	}
}

// TestConePartition3DSameConeAngle verifies the same-cone angular bound in
// R^3, where the axes come from the spherical code.
func TestConePartition3DSameConeAngle(t *testing.T) {
	theta := 0.8
	cp := NewConePartition(3, theta)
	rng := rand.New(rand.NewSource(7))
	apex := Point{0, 0, 0}
	buckets := make(map[int][]Point)
	for i := 0; i < 1500; i++ {
		v := randomUnitVector(rng, 3)
		c := cp.Assign(v)
		buckets[c] = append(buckets[c], v)
	}
	for c, vs := range buckets {
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				if ang := Angle(apex, vs[i], vs[j]); ang > theta+1e-9 {
					t.Fatalf("cone %d: angle %v > theta %v", c, ang, theta)
				}
			}
		}
	}
	if cp.NumCones() < 6 {
		t.Errorf("suspiciously few cones for theta=%v in 3d: %d", theta, cp.NumCones())
	}
}

// TestConePartitionCovering3D: every direction must land within theta/2 of
// its assigned axis, so assignment never fails and the covering radius holds.
func TestConePartitionCovering3D(t *testing.T) {
	theta := 0.9
	cp := NewConePartition(3, theta)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 3000; i++ {
		v := randomUnitVector(rng, 3)
		axis := cp.Axes[cp.Assign(v)]
		if ang := math.Acos(clampUnit(Dot(v, axis))); ang > theta/2+1e-6 {
			t.Fatalf("direction %v is %v from nearest axis, want <= %v", v, ang, theta/2)
		}
	}
}

func clampUnit(x float64) float64 {
	if x > 1 {
		return 1
	}
	if x < -1 {
		return -1
	}
	return x
}

func TestConePartitionAssignEdge(t *testing.T) {
	cp := NewConePartition(2, math.Pi/2)
	// Edge pointing along +x and its reverse must land in different cones.
	a, b := Point{0, 0}, Point{1, 0}
	if cp.AssignEdge(a, b) == cp.AssignEdge(b, a) {
		t.Error("opposite directions assigned to the same cone for theta=π/2")
	}
}

func TestConePartitionInvalidArgsPanic(t *testing.T) {
	for _, tc := range []struct {
		d     int
		theta float64
	}{{1, 0.5}, {2, 0}, {2, math.Pi}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for d=%d theta=%v", tc.d, tc.theta)
				}
			}()
			NewConePartition(tc.d, tc.theta)
		}()
	}
}

func TestRandomUnitVectorIsUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for d := 2; d <= 5; d++ {
		for i := 0; i < 50; i++ {
			v := randomUnitVector(rng, d)
			if math.Abs(Norm(v)-1) > 1e-9 {
				t.Fatalf("d=%d: norm %v", d, Norm(v))
			}
		}
	}
}
