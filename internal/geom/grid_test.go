package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveNeighbors is the O(n) reference implementation the grid must match.
func naiveNeighbors(points []Point, p Point, radius float64, self int) []int {
	var out []int
	for i, q := range points {
		if i == self {
			continue
		}
		if Dist(p, q) <= radius {
			out = append(out, i)
		}
	}
	return out
}

func TestGridMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for _, tc := range []struct {
		n      int
		d      int
		cell   float64
		radius float64
	}{
		{n: 200, d: 2, cell: 0.25, radius: 0.25},
		{n: 200, d: 2, cell: 0.25, radius: 0.6}, // radius > cell: multi-cell scan
		{n: 150, d: 3, cell: 0.3, radius: 0.3},
		{n: 100, d: 4, cell: 0.5, radius: 0.45},
		{n: 50, d: 2, cell: 1.0, radius: 0.05}, // tiny radius in big cells
	} {
		points := make([]Point, tc.n)
		for i := range points {
			points[i] = randPoint(rng, tc.d)
		}
		grid := NewGrid(points, tc.cell)
		for trial := 0; trial < 30; trial++ {
			self := rng.Intn(tc.n)
			got := grid.Neighbors(points[self], tc.radius, self)
			want := naiveNeighbors(points, points[self], tc.radius, self)
			sort.Ints(got)
			sort.Ints(want)
			if len(got) != len(want) {
				t.Fatalf("n=%d d=%d r=%v: got %d neighbors, want %d", tc.n, tc.d, tc.radius, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d d=%d: neighbor mismatch %v vs %v", tc.n, tc.d, got, want)
				}
			}
		}
	}
}

func TestGridNegativeCoordinates(t *testing.T) {
	// Floor-based cell keys must work for negative coordinates too.
	points := []Point{{-0.9, -0.9}, {-1.1, -1.1}, {0.1, 0.1}}
	grid := NewGrid(points, 1.0)
	got := grid.Neighbors(points[0], 0.5, 0)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("Neighbors = %v, want [1]", got)
	}
}

func TestGridSelfExclusion(t *testing.T) {
	points := []Point{{0, 0}, {0.1, 0}}
	grid := NewGrid(points, 1.0)
	with := grid.Neighbors(points[0], 1, -1)
	without := grid.Neighbors(points[0], 1, 0)
	if len(with) != 2 || len(without) != 1 {
		t.Errorf("self exclusion broken: with=%v without=%v", with, without)
	}
}

func TestGridEmpty(t *testing.T) {
	grid := NewGrid(nil, 1.0)
	if grid.Len() != 0 {
		t.Errorf("Len = %d", grid.Len())
	}
	if got := grid.Neighbors(Point{0, 0}, 1, -1); got != nil {
		t.Errorf("Neighbors on empty grid = %v", got)
	}
}

func TestGridInvalidCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive cell")
		}
	}()
	NewGrid(nil, 0)
}

func TestGridBoundaryInclusive(t *testing.T) {
	points := []Point{{0, 0}, {1, 0}}
	grid := NewGrid(points, 0.5)
	got := grid.Neighbors(points[0], 1.0, 0)
	if len(got) != 1 {
		t.Errorf("boundary point not included: %v", got)
	}
}
