package geom

import (
	"math"
)

// CellGrid is an immutable uniform spatial hash over a static point set,
// laid out for parallel consumption: point ids are bucketed per cell into
// one contiguous int32 slab (counting sort), and cell lookups go through a
// read-only map. Unlike Grid, whose shared query scratch makes it a
// single-caller structure, a CellGrid built once may be read by any number
// of goroutines concurrently — each worker carries its own CellScan
// scratch. This is what lets the slab-backed α-UBG builder fan grid cells
// out across workers: a cell (and with it every vertex it owns) belongs to
// exactly one worker, so per-vertex degree counts and row fills are
// single-writer by construction.
//
// Ids are int32: the builder targets n up to the tens of millions, where
// halving the id slab matters; NewCellGrid panics past MaxInt32 points.
type CellGrid struct {
	cell float64
	dim  int

	// ids is the bucketed point-id slab; cell c owns
	// ids[start[c]:start[c+1]]. Within a cell, ids are in increasing
	// point order; cells are numbered in first-encounter (point) order —
	// both deterministic, so everything built from a scan is too.
	ids   []int32
	start []int32

	// coord holds each cell's integer coordinates (dim values per cell);
	// the index maps a cell's packed coordinates to its number. Dimensions
	// up to len(cellKey) use the comparable-array map — inserting a string
	// key allocates, and one allocation per occupied cell is what keeps a
	// million-vertex build from being O(1)-allocation — higher dimensions
	// fall back to packed byte-string keys. Neither map is written after
	// construction, so lookups are concurrency-safe.
	coord []int64
	index map[cellKey]int32
	wide  map[string]int32
}

// cellKey packs the integer coordinates of one cell for dimensions up to
// cellKeyDim; unused trailing lanes stay zero (the dimension is fixed per
// grid, so zero lanes cannot collide across dimensions).
const cellKeyDim = 4

type cellKey [cellKeyDim]int64

// CellScan is the per-caller scratch a NeighborCells enumeration needs
// (coordinate key bytes for the wide path and the odometer offsets).
// Allocate one per worker with NewScan; a CellScan must not be shared
// between goroutines.
type CellScan struct {
	key []byte
	off []int64
}

// NewCellGrid buckets the points into cells of the given side. cell must
// be positive; all points must share a dimension (the caller validates —
// this is an internal builder primitive).
func NewCellGrid(points []Point, cell float64) *CellGrid {
	if cell <= 0 {
		panic("geom: grid cell side must be positive")
	}
	if len(points) > math.MaxInt32 {
		panic("geom: CellGrid point count exceeds int32")
	}
	g := &CellGrid{cell: cell}
	if len(points) == 0 {
		g.start = []int32{0}
		return g
	}
	g.dim = points[0].Dim()

	// Pass 1: discover cells and count occupancy. The cell id of each
	// point is remembered so pass 2 does not re-hash.
	home := make([]int32, len(points))
	var counts []int32
	if g.dim <= cellKeyDim {
		g.index = make(map[cellKey]int32)
		var key cellKey
		for i, p := range points {
			for j, x := range p {
				key[j] = int64(math.Floor(x / cell))
			}
			c, ok := g.index[key]
			if !ok {
				c = int32(len(counts))
				g.index[key] = c
				counts = append(counts, 0)
				g.coord = append(g.coord, key[:g.dim]...)
			}
			home[i] = c
			counts[c]++
		}
	} else {
		g.wide = make(map[string]int32)
		key := make([]byte, 0, 8*g.dim)
		for i, p := range points {
			key = g.appendKey(key[:0], p)
			c, ok := g.wide[string(key)]
			if !ok {
				c = int32(len(counts))
				g.wide[string(key)] = c
				counts = append(counts, 0)
				for _, x := range p {
					g.coord = append(g.coord, int64(math.Floor(x/cell)))
				}
			}
			home[i] = c
			counts[c]++
		}
	}

	// Prefix-sum into spans, then fill (counts become cursors).
	g.start = make([]int32, len(counts)+1)
	for c, k := range counts {
		g.start[c+1] = g.start[c] + k
	}
	g.ids = make([]int32, len(points))
	copy(counts, g.start[:len(counts)])
	for i := range points {
		c := home[i]
		g.ids[counts[c]] = int32(i)
		counts[c]++
	}
	return g
}

// appendKey appends the packed integer cell coordinates of p (wide path).
func (g *CellGrid) appendKey(dst []byte, p Point) []byte {
	for _, x := range p {
		ic := int64(math.Floor(x / g.cell))
		for s := 0; s < 64; s += 8 {
			dst = append(dst, byte(ic>>s))
		}
	}
	return dst
}

// Cells returns the number of non-empty cells.
func (g *CellGrid) Cells() int { return len(g.start) - 1 }

// Len returns the number of indexed points.
func (g *CellGrid) Len() int { return len(g.ids) }

// CellIDs returns the point ids bucketed in cell c. The slice aliases the
// grid's slab: read-only.
func (g *CellGrid) CellIDs(c int) []int32 {
	return g.ids[g.start[c]:g.start[c+1]]
}

// NewScan returns scratch for NeighborCells, one per concurrent caller.
func (g *CellGrid) NewScan() *CellScan {
	return &CellScan{key: make([]byte, 0, 8*g.dim), off: make([]int64, g.dim)}
}

// NeighborCells appends to dst the numbers of every non-empty cell in the
// 3^d block centered on cell c — the cells a radius-≤-side query from any
// point of c can reach — including c itself, and returns the extended
// slice. The enumeration order is a fixed odometer over the coordinate
// offsets, so output is deterministic. Safe for concurrent callers as long
// as each brings its own CellScan.
func (g *CellGrid) NeighborCells(dst []int32, c int, sc *CellScan) []int32 {
	base := g.coord[c*g.dim : (c+1)*g.dim]
	for i := range sc.off {
		sc.off[i] = -1
	}
	narrow := g.index != nil
	for {
		if narrow {
			var key cellKey
			for i := 0; i < g.dim; i++ {
				key[i] = base[i] + sc.off[i]
			}
			if nc, ok := g.index[key]; ok {
				dst = append(dst, nc)
			}
		} else {
			key := sc.key[:0]
			for i := 0; i < g.dim; i++ {
				ic := base[i] + sc.off[i]
				for s := 0; s < 64; s += 8 {
					key = append(key, byte(ic>>s))
				}
			}
			sc.key = key
			if nc, ok := g.wide[string(key)]; ok {
				dst = append(dst, nc)
			}
		}
		i := 0
		for ; i < g.dim; i++ {
			sc.off[i]++
			if sc.off[i] <= 1 {
				break
			}
			sc.off[i] = -1
		}
		if i == g.dim {
			break
		}
	}
	return dst
}
