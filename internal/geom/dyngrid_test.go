package geom

import (
	"math/rand"
	"sort"
	"testing"
)

// naiveNeighbors is the quadratic reference for DynamicGrid queries.
func naiveNeighborsDyn(pts map[int]Point, p Point, radius float64, self int) []int {
	var out []int
	for id, q := range pts {
		if id == self {
			continue
		}
		if DistSq(p, q) <= radius*radius {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// TestDynamicGridDifferential churns a grid through adds, removes and moves
// and checks every query against the naive scan.
func TestDynamicGridDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := NewDynamicGrid(1.0)
	ref := map[int]Point{}
	nextID := 0
	randPoint := func() Point {
		return Point{rng.Float64() * 5, rng.Float64() * 5}
	}
	for step := 0; step < 600; step++ {
		switch op := rng.Intn(3); {
		case op == 0 || len(ref) == 0: // add
			p := randPoint()
			g.Add(nextID, p)
			ref[nextID] = p
			nextID++
		case op == 1: // remove
			for id := range ref {
				g.Remove(id)
				delete(ref, id)
				break
			}
		default: // move
			for id := range ref {
				p := randPoint()
				g.Move(id, p)
				ref[id] = p
				break
			}
		}
		if g.Len() != len(ref) {
			t.Fatalf("step %d: Len %d != %d", step, g.Len(), len(ref))
		}
		q := randPoint()
		radius := 0.3 + rng.Float64()*1.5
		got := append([]int(nil), g.NeighborsAppend(nil, q, radius, -1)...)
		sort.Ints(got)
		want := naiveNeighborsDyn(ref, q, radius, -1)
		if len(got) != len(want) {
			t.Fatalf("step %d: got %v, want %v", step, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d: got %v, want %v", step, got, want)
			}
		}
	}
}

func TestDynamicGridSelfExclusionAndReuse(t *testing.T) {
	g := NewDynamicGrid(1.0)
	g.Add(0, Point{0, 0})
	g.Add(1, Point{0.5, 0})
	if got := g.NeighborsAppend(nil, Point{0, 0}, 1, 0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("self-exclusion broken: %v", got)
	}
	if p := g.Point(1); p == nil || p[0] != 0.5 {
		t.Fatalf("Point(1) = %v", p)
	}
	g.Remove(1)
	if g.Point(1) != nil {
		t.Fatal("removed id still indexed")
	}
	// Freed id is re-addable.
	g.Add(1, Point{2, 2})
	if got := g.NeighborsAppend(nil, Point{2, 2}, 0.1, -1); len(got) != 1 || got[0] != 1 {
		t.Fatalf("re-added id not found: %v", got)
	}
}

func TestDynamicGridPanics(t *testing.T) {
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	g := NewDynamicGrid(1.0)
	g.Add(0, Point{0, 0})
	expectPanic("duplicate add", func() { g.Add(0, Point{1, 1}) })
	expectPanic("dim mismatch", func() { g.Add(1, Point{1, 1, 1}) })
	expectPanic("remove unknown", func() { g.Remove(5) })
	expectPanic("zero cell", func() { NewDynamicGrid(0) })
}
