package geom

import (
	"math"
	"math/rand"
)

// ConePartition partitions directions in R^d into cones of half-angle at
// most theta around a set of axis directions. It supports the two uses the
// paper makes of Yao-style partitions: the degree argument of Theorem 11
// (any two directions assigned to the same cone subtend an angle <= theta at
// the apex) and the Yao-graph baseline.
//
// For d == 2 the axes are exact sector bisectors; for d >= 3 the axes are a
// deterministic spherical code (well-spread unit vectors) dense enough that
// every direction is within theta/2 of some axis, which guarantees the
// same-cone angle bound by the triangle inequality on the sphere.
type ConePartition struct {
	// Axes are the unit axis directions of the cones.
	Axes []Point
	// Theta is the guaranteed angular diameter bound: two vectors assigned
	// to the same cone subtend an angle of at most Theta.
	Theta float64
	dim   int
}

// NewConePartition constructs a cone partition of R^d directions with
// angular diameter at most theta. theta must lie in (0, π).
func NewConePartition(d int, theta float64) *ConePartition {
	if d < 2 {
		panic("geom: cone partition requires d >= 2")
	}
	if theta <= 0 || theta >= math.Pi {
		panic("geom: cone partition requires theta in (0, pi)")
	}
	cp := &ConePartition{Theta: theta, dim: d}
	if d == 2 {
		// Exact planar sectors of angle theta (diameter theta).
		k := int(math.Ceil(2 * math.Pi / theta))
		for i := 0; i < k; i++ {
			phi := (float64(i) + 0.5) * 2 * math.Pi / float64(k)
			cp.Axes = append(cp.Axes, Point{math.Cos(phi), math.Sin(phi)})
		}
		return cp
	}
	// d >= 3: deterministic spherical code. We greedily keep points of a
	// seeded random sequence on S^{d-1}, saturating until a long run of
	// samples finds no direction farther than the separation from every
	// kept vector. The separation carries a 5% safety margin below theta/2
	// because saturation certifies the covering radius only statistically.
	cp.Axes = sphericalCode(d, 0.95*theta/2)
	return cp
}

// sphericalCode returns a set of unit vectors in R^d such that every unit
// vector is within angular distance sep of some code vector. It uses a
// seeded random saturation process: candidate directions are sampled until a
// long run produces no candidate farther than sep from all kept vectors.
func sphericalCode(d int, sep float64) []Point {
	rng := rand.New(rand.NewSource(0x5EED))
	var code []Point
	cosSep := math.Cos(sep)
	misses := 0
	// A run of consecutive covered samples this long certifies (with very
	// high probability) that the covering radius is at most sep.
	const certifyRun = 8192
	for misses < certifyRun {
		v := randomUnitVector(rng, d)
		covered := false
		for _, a := range code {
			if Dot(v, a) >= cosSep {
				covered = true
				break
			}
		}
		if covered {
			misses++
			continue
		}
		code = append(code, v)
		misses = 0
	}
	return code
}

// randomUnitVector samples a uniform direction on S^{d-1}.
func randomUnitVector(rng *rand.Rand, d int) Point {
	for {
		v := make(Point, d)
		var n float64
		for i := range v {
			v[i] = rng.NormFloat64()
			n += v[i] * v[i]
		}
		if n > 1e-12 {
			return Scale(v, 1/math.Sqrt(n))
		}
	}
}

// Assign returns the index of the cone (axis) to which direction v belongs:
// the axis maximizing the inner product with v. v must be non-zero.
func (cp *ConePartition) Assign(v Point) int {
	u := Normalize(v)
	best, bestDot := 0, math.Inf(-1)
	for i, a := range cp.Axes {
		if dt := Dot(u, a); dt > bestDot {
			best, bestDot = i, dt
		}
	}
	return best
}

// AssignEdge returns the cone index of the direction from p toward q.
func (cp *ConePartition) AssignEdge(p, q Point) int {
	return cp.Assign(Sub(q, p))
}

// NumCones returns the number of cones in the partition.
func (cp *ConePartition) NumCones() int { return len(cp.Axes) }
