package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDistKnownValues(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{"same point", Point{1, 2}, Point{1, 2}, 0},
		{"unit x", Point{0, 0}, Point{1, 0}, 1},
		{"345 triangle", Point{0, 0}, Point{3, 4}, 5},
		{"3d diagonal", Point{0, 0, 0}, Point{1, 1, 1}, math.Sqrt(3)},
		{"negative coords", Point{-1, -1}, Point{1, 1}, 2 * math.Sqrt2},
		{"4d", Point{0, 0, 0, 0}, Point{1, 1, 1, 1}, 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dist(tc.p, tc.q); !almostEqual(got, tc.want, 1e-12) {
				t.Errorf("Dist(%v, %v) = %v, want %v", tc.p, tc.q, got, tc.want)
			}
			if got := DistSq(tc.p, tc.q); !almostEqual(got, tc.want*tc.want, 1e-12) {
				t.Errorf("DistSq = %v, want %v", got, tc.want*tc.want)
			}
		})
	}
}

func TestDistDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Dist(Point{0, 0}, Point{0, 0, 0})
}

// randPoint produces a bounded random point for property tests.
func randPoint(rng *rand.Rand, d int) Point {
	p := make(Point, d)
	for i := range p {
		p[i] = rng.Float64()*20 - 10
	}
	return p
}

func TestDistMetricAxiomsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(dimSeed uint8) bool {
		d := 2 + int(dimSeed)%3
		p, q, r := randPoint(rng, d), randPoint(rng, d), randPoint(rng, d)
		symm := almostEqual(Dist(p, q), Dist(q, p), 1e-12)
		ident := Dist(p, p) == 0
		nonneg := Dist(p, q) >= 0
		tri := Dist(p, r) <= Dist(p, q)+Dist(q, r)+1e-9
		return symm && ident && nonneg && tri
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAngleKnownValues(t *testing.T) {
	tests := []struct {
		name       string
		apex, a, b Point
		want       float64
	}{
		{"right angle", Point{0, 0}, Point{1, 0}, Point{0, 1}, math.Pi / 2},
		{"straight line", Point{0, 0}, Point{1, 0}, Point{-1, 0}, math.Pi},
		{"zero angle", Point{0, 0}, Point{1, 0}, Point{2, 0}, 0},
		{"45 degrees", Point{0, 0}, Point{1, 0}, Point{1, 1}, math.Pi / 4},
		{"degenerate a", Point{0, 0}, Point{0, 0}, Point{1, 1}, 0},
		{"3d right angle", Point{0, 0, 0}, Point{1, 0, 0}, Point{0, 0, 5}, math.Pi / 2},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := Angle(tc.apex, tc.a, tc.b); !almostEqual(got, tc.want, 1e-9) {
				t.Errorf("Angle = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestAngleRangeAndSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(dimSeed uint8) bool {
		d := 2 + int(dimSeed)%3
		apex, a, b := randPoint(rng, d), randPoint(rng, d), randPoint(rng, d)
		ang := Angle(apex, a, b)
		if ang < 0 || ang > math.Pi {
			return false
		}
		return almostEqual(ang, Angle(apex, b, a), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestAngleLawOfCosinesConsistency cross-checks Angle against the law of
// cosines — the identity the distributed algorithm relies on when it
// evaluates the covered-edge test from pairwise distances alone.
func TestAngleLawOfCosinesConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 200; i++ {
		apex, a, b := randPoint(rng, 2), randPoint(rng, 2), randPoint(rng, 2)
		da, db, dab := Dist(apex, a), Dist(apex, b), Dist(a, b)
		if da < 1e-9 || db < 1e-9 {
			continue
		}
		cosv := (da*da + db*db - dab*dab) / (2 * da * db)
		if cosv > 1 {
			cosv = 1
		} else if cosv < -1 {
			cosv = -1
		}
		want := math.Acos(cosv)
		if got := Angle(apex, a, b); !almostEqual(got, want, 1e-7) {
			t.Fatalf("law of cosines mismatch: Angle=%v law=%v", got, want)
		}
	}
}

func TestVectorOps(t *testing.T) {
	p, q := Point{1, 2, 3}, Point{4, 5, 6}
	if got := Sub(q, p); got[0] != 3 || got[1] != 3 || got[2] != 3 {
		t.Errorf("Sub = %v", got)
	}
	if got := Add(p, q); got[0] != 5 || got[1] != 7 || got[2] != 9 {
		t.Errorf("Add = %v", got)
	}
	if got := Scale(p, 2); got[0] != 2 || got[1] != 4 || got[2] != 6 {
		t.Errorf("Scale = %v", got)
	}
	if got := Dot(p, q); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Norm(Point{3, 4}); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := Midpoint(Point{0, 0}, Point{2, 4}); got[0] != 1 || got[1] != 2 {
		t.Errorf("Midpoint = %v", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize(Point{3, 4})
	if !almostEqual(Norm(v), 1, 1e-12) {
		t.Errorf("Normalize norm = %v", Norm(v))
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero vector")
		}
	}()
	Normalize(Point{0, 0})
}

func TestWithin(t *testing.T) {
	if !Within(Point{0, 0}, Point{3, 4}, 5) {
		t.Error("Within should include boundary")
	}
	if Within(Point{0, 0}, Point{3, 4}, 4.999) {
		t.Error("Within should exclude outside")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Error("Clone aliases the original")
	}
}

func TestPointString(t *testing.T) {
	if got := (Point{1, 2.5}).String(); got != "(1.0000, 2.5000)" {
		t.Errorf("String = %q", got)
	}
}
