package shard

import (
	"fmt"
	"sort"
	"sync"

	"topoctl/internal/core"
	"topoctl/internal/dynamic"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// Options configures a Group.
type Options struct {
	// Dynamic configures every per-shard engine (T, Radius, Metric, Dim).
	Dynamic dynamic.Options
	// K is the shard count, ≥ 2 (use a plain dynamic.Engine for 1).
	K int
	// PortalRefresh rebuilds the inter-portal distance table every
	// PortalRefresh-th export (default 1: every publish serves a fresh
	// table). Raising it amortizes the table's Dijkstra sweeps over more
	// commits: exports in between publish views whose TableFresh is
	// false, and readers fall back to the global combined search — never
	// wrong, only slower.
	PortalRefresh int
}

// Loc addresses a live vertex: the shard owning it and its local slot
// id inside that shard's engine. Shard < 0 marks a free global slot.
type Loc struct {
	Shard int32
	Local int32
}

// shardState is one shard: its engine, the local→global id binding, and
// the per-shard delta-export bookkeeping the group's combined export
// diffs against.
type shardState struct {
	eng *dynamic.Engine

	// glob maps local slot → global id (-1 free). globSnap is the
	// immutable binding as of the last group export: the export diff
	// translates *old* frozen rows through it, because a local slot may
	// have been freed and reused (leave + join) since — the old row's
	// edges belong to the old binding.
	glob     []int
	globSnap []int

	// prevBase/prevSp are the shard's frozen exports as of the last
	// group export; the next export diffs the fresh frozen rows against
	// them to update the combined mirrors.
	prevBase, prevSp *graph.Frozen

	// rebound lists local slots whose glob binding changed since the
	// last export. Their rows are force-diffed even if the engine's
	// touched set missed them (a leave+join that reproduces a
	// byte-identical row still changes which global vertex owns it).
	rebound []int

	inBatch     bool
	lastChanged uint64 // group seq of the last export that changed this shard

	jobs chan func() // the shard's writer goroutine feed
}

type cutPair struct{ u, v int }

type edgeOp struct {
	u, v int
	w    float64
}

// Group shards a dynamic topology across K engines while exposing the
// exact commit/export contract of a single dynamic.Engine: Join, Leave,
// Move (global ids), Begin/Commit batching, and a delta-aware
// ExportFrozen over the combined topology — per-shard spanners plus all
// cut base edges — with LastExportTouched reporting the changed global
// rows. That contract is what the service writer, the WAL append hook,
// and the replication stream consume, so a sharded leader is durable
// and replicable with zero changes to those layers (followers rebuild
// the combined snapshot and stay unsharded).
//
// Each mutation is routed to the owning shard's engine; a move that
// crosses a cut becomes leave+join (the global id is preserved — only
// the local binding changes). Repair work — the expensive part of a
// commit — fans out across the per-shard writer goroutines; everything
// else (structural op application, mirror maintenance, portal refresh)
// runs on the caller's goroutine. A Group is not safe for concurrent
// use, exactly like the Engine it stands in for.
type Group struct {
	opts  Options
	dopts dynamic.Options // normalized engine options
	dim   int

	part   *Partition
	shards []*shardState

	// Global slot space, engine-style: dense ids with free-list reuse
	// and doubling growth; mirrors the capacity discipline of
	// dynamic.Engine so snapshots look identical to unsharded ones.
	loc     []Loc
	locSnap []Loc // immutable copy as of the last export (shared with views)
	points  []geom.Point
	alive   []bool
	free    []int
	n       int

	grid *geom.DynamicGrid // all live points, global ids; cut discovery
	nbrs []int             // grid query scratch

	// cutAdj tracks the cross-shard base edges (the "cut" edges) by
	// global id: cutAdj[u][v] is the Euclidean length. cutDrops/cutAdds
	// record the pairs whose cut status changed since the last export;
	// the export reconciles the combined mirrors from them (current
	// cutAdj state is the truth — a stale add is skipped).
	cutAdj   []map[int]float64
	cutDrops []cutPair
	cutAdds  []cutPair

	// base/sp are the combined mutable mirrors in global id space:
	// union of the per-shard engines' graphs (translated) plus the cut
	// edges, kept in sync at export time by diffing per-shard frozen
	// rows. They exist so the combined export can reuse
	// graph.UpdateFrozen's delta publishing.
	base *graph.Graph // Euclidean weights
	sp   *graph.Graph // metric weights

	touched  map[int]struct{}
	touchBuf []int

	expBase, expSp *graph.Frozen
	expPoints      []geom.Point
	expAlive       []bool
	lastTouched    []int
	exportClean    bool
	locDirty       bool

	// rows/matched/remB... are export scratch.
	rows       []int
	matched    []bool
	remB, addB []edgeOp
	remS, addS []edgeOp

	seq          uint64 // export sequence; stamps views and staleness
	table        *PortalTable
	tableSeq     uint64
	sinceRefresh int

	view *View

	batch  bool
	closed bool
}

// normalizeDynamic mirrors dynamic.Options' normalization (unexported
// there) so the group can partition on the effective radius before any
// engine exists.
func normalizeDynamic(o dynamic.Options) (dynamic.Options, error) {
	if o.T <= 1 {
		return o, fmt.Errorf("shard: stretch t = %v must exceed 1", o.T)
	}
	if o.Radius == 0 {
		o.Radius = 1
	}
	if o.Radius < 0 {
		return o, fmt.Errorf("shard: radius %v must be positive", o.Radius)
	}
	if o.Metric == (core.Metric{}) {
		o.Metric = core.EuclideanMetric
	}
	return o, o.Metric.Validate()
}

// New builds a sharded group over the initial deployment. Global ids
// are assigned in input order (0..len(points)-1), exactly like
// dynamic.New, so callers see the same id contract whether or not they
// shard.
func New(points []geom.Point, opts Options) (*Group, error) {
	for i, p := range points {
		if p == nil {
			return nil, fmt.Errorf("shard: initial point %d is nil", i)
		}
	}
	return newGroup(points, opts)
}

// Restore rebuilds a sharded group from slot-indexed recovered state —
// the WAL recovery path. Global ids, liveness, and the free-slot order
// are preserved exactly (a replayed log keeps naming the same
// vertices), but the per-shard spanners are rebuilt from scratch: a
// checkpointed combined spanner does not decompose into valid per-shard
// invariants under a freshly derived partition, so the group re-runs
// greedy per stripe instead of trusting pre-crash rows. The restored
// combined topology is a t-spanner of the same base graph yet not
// row-identical to the checkpoint — the caller must write a fresh
// checkpoint before appending new frames (cmd/topoctld does).
func Restore(points []geom.Point, alive []bool, opts Options) (*Group, error) {
	if len(points) != len(alive) {
		return nil, fmt.Errorf("shard: restore length mismatch: %d points, %d alive", len(points), len(alive))
	}
	masked := make([]geom.Point, len(points))
	for i, a := range alive {
		if !a {
			continue
		}
		if points[i] == nil {
			return nil, fmt.Errorf("shard: restore live slot %d has no point", i)
		}
		masked[i] = points[i]
	}
	return newGroup(masked, opts)
}

// newGroup is the hole-tolerant constructor behind New and Restore:
// points is slot-indexed, nil marking dead slots.
func newGroup(points []geom.Point, opts Options) (*Group, error) {
	if opts.K < 2 {
		return nil, fmt.Errorf("shard: K = %d must be at least 2", opts.K)
	}
	if opts.PortalRefresh <= 0 {
		opts.PortalRefresh = 1
	}
	dopts, err := normalizeDynamic(opts.Dynamic)
	if err != nil {
		return nil, err
	}
	dim := dopts.Dim
	for gid, p := range points {
		if p == nil {
			continue
		}
		if dim == 0 {
			dim = p.Dim()
		}
		if p.Dim() != dim {
			return nil, fmt.Errorf("shard: point %d has dimension %d, want %d", gid, p.Dim(), dim)
		}
	}
	if dim <= 0 {
		return nil, fmt.Errorf("shard: empty group needs Options.Dynamic.Dim")
	}
	dopts.Dim = dim

	g := &Group{
		opts:    opts,
		dopts:   dopts,
		dim:     dim,
		part:    NewPartition(points, opts.K, dopts.Radius),
		grid:    geom.NewDynamicGrid(dopts.Radius),
		touched: make(map[int]struct{}),
	}

	// Global slot space with engine-style padding (min capacity 4). Free
	// slots are handed out lowest id first, matching dynamic.Restore.
	capacity := len(points)
	if capacity < 4 {
		capacity = 4
	}
	g.points = make([]geom.Point, capacity)
	g.alive = make([]bool, capacity)
	g.loc = make([]Loc, capacity)
	g.cutAdj = make([]map[int]float64, capacity)
	for i := range g.loc {
		g.loc[i] = Loc{Shard: -1, Local: -1}
	}
	for id := capacity - 1; id >= 0; id-- {
		if id >= len(points) || points[id] == nil {
			g.free = append(g.free, id)
		}
	}

	// Bucket the deployment, build one engine per stripe.
	buckets := make([][]geom.Point, opts.K)
	for gid, p := range points {
		if p == nil {
			continue
		}
		s := g.part.Owner(p)
		g.loc[gid] = Loc{Shard: int32(s), Local: int32(len(buckets[s]))}
		g.points[gid] = p.Clone()
		g.alive[gid] = true
		buckets[s] = append(buckets[s], g.points[gid])
		g.grid.Add(gid, g.points[gid])
		g.n++
	}
	// Per-shard engines are independent until their writer goroutines
	// start, so the expensive part of construction — SEQ-GREEDY over each
	// stripe — runs shard-parallel. Engines for large stripes take the
	// bulk frozen-CSR base path inside dynamic.New, which is itself
	// parallel; the two levels compose because the inner build sizes its
	// worker pool from GOMAXPROCS, not from what is idle.
	g.shards = make([]*shardState, opts.K)
	engErrs := make([]error, opts.K)
	var wg sync.WaitGroup
	for s := range g.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			eng, err := dynamic.New(buckets[s], dopts)
			if err != nil {
				engErrs[s] = err
				return
			}
			g.shards[s] = &shardState{eng: eng, jobs: make(chan func())}
		}(s)
	}
	wg.Wait()
	for _, err := range engErrs {
		if err != nil {
			return nil, err
		}
	}
	for _, sh := range g.shards {
		sh := sh
		go func() {
			for job := range sh.jobs {
				job()
			}
		}()
	}
	for gid := range points {
		lc := g.loc[gid]
		if lc.Shard < 0 {
			continue
		}
		sh := g.shards[lc.Shard]
		for int(lc.Local) >= len(sh.glob) {
			sh.glob = append(sh.glob, -1)
		}
		sh.glob[lc.Local] = gid
	}

	// Cut discovery over the global grid: every cross-shard base edge.
	for gid := range points {
		if !g.alive[gid] {
			continue
		}
		g.nbrs = g.grid.NeighborsAppend(g.nbrs[:0], g.points[gid], g.dopts.Radius, gid)
		for _, v := range g.nbrs {
			if v < gid || g.loc[v].Shard == g.loc[gid].Shard {
				continue
			}
			g.addCutPair(gid, v)
		}
	}
	g.cutAdds = g.cutAdds[:0] // construction builds mirrors directly below

	// Combined mutable mirrors: translated per-shard graphs + cuts. The
	// final degree of every global slot is known exactly — its engine-local
	// degree plus its cut degree — so both mirrors are pre-sized with
	// NewWithDegrees and filled by walking adjacency rows in place; the
	// whole assembly allocates two slabs instead of O(n + m) row growth and
	// intermediate edge lists.
	degB := make([]int32, capacity)
	degS := make([]int32, capacity)
	for _, sh := range g.shards {
		b, sp := sh.eng.Base(), sh.eng.Spanner()
		for l, gid := range sh.glob {
			if gid < 0 {
				continue
			}
			degB[gid] += int32(b.Degree(l))
			degS[gid] += int32(sp.Degree(l))
		}
	}
	for u, m := range g.cutAdj {
		degB[u] += int32(len(m))
		degS[u] += int32(len(m))
	}
	g.base = graph.NewWithDegrees(degB)
	g.sp = graph.NewWithDegrees(degS)
	for _, sh := range g.shards {
		b, sp := sh.eng.Base(), sh.eng.Spanner()
		for l, gid := range sh.glob {
			if gid < 0 {
				continue
			}
			for _, h := range b.Neighbors(l) {
				if l < h.To {
					g.base.AddEdge(gid, sh.glob[h.To], h.W)
				}
			}
			for _, h := range sp.Neighbors(l) {
				if l < h.To {
					g.sp.AddEdge(gid, sh.glob[h.To], h.W)
				}
			}
		}
	}
	for u, m := range g.cutAdj {
		for v, d := range m {
			if v < u {
				continue
			}
			g.base.AddEdge(u, v, d)
			g.sp.AddEdge(u, v, g.dopts.Metric.Weight(d))
		}
	}

	// Initial export state: frozen combined graphs, per-shard export
	// baselines, portal table, view.
	g.expBase = graph.Freeze(g.base)
	g.expSp = graph.Freeze(g.sp)
	g.expPoints = append([]geom.Point(nil), g.points...)
	g.expAlive = append([]bool(nil), g.alive...)
	g.locSnap = append([]Loc(nil), g.loc...)
	for _, sh := range g.shards {
		_, _, fb, fs := sh.eng.ExportFrozen()
		sh.prevBase, sh.prevSp = fb, fs
		sh.globSnap = append([]int(nil), sh.glob...)
	}
	g.seq = 1
	g.refreshTable()
	g.buildView()
	g.exportClean = true
	return g, nil
}

// Close stops the per-shard writer goroutines. The group's data remains
// readable; further mutations panic.
func (g *Group) Close() {
	if g.closed {
		return
	}
	g.closed = true
	for _, sh := range g.shards {
		close(sh.jobs)
	}
}

// K returns the shard count.
func (g *Group) K() int { return g.opts.K }

// N returns the live node count.
func (g *Group) N() int { return g.n }

// Dim returns the embedding dimension.
func (g *Group) Dim() int { return g.dim }

// Options returns the normalized per-engine options (the service reads
// T and Radius back from here, same as with a bare engine).
func (g *Group) Options() dynamic.Options { return g.dopts }

// Partition returns the spatial partition queries and mutations are
// routed by.
func (g *Group) Partition() *Partition { return g.part }

// Alive reports whether the global slot holds a live node.
func (g *Group) Alive(id int) bool {
	return id >= 0 && id < len(g.alive) && g.alive[id]
}

// Point returns the live node's position (nil for free slots).
func (g *Group) Point(id int) geom.Point {
	if !g.Alive(id) {
		return nil
	}
	return g.points[id]
}

// Begin starts batched mode: structural updates apply immediately but
// per-shard repair is deferred to Commit, which fans it out across the
// shard writer goroutines.
func (g *Group) Begin() { g.batch = true }

// Commit runs the deferred repair of every shard the batch touched, in
// parallel, and returns when all shards are repaired.
func (g *Group) Commit() {
	if !g.batch {
		return
	}
	g.batch = false
	var wg sync.WaitGroup
	for _, sh := range g.shards {
		if !sh.inBatch {
			continue
		}
		sh.inBatch = false
		wg.Add(1)
		eng := sh.eng
		sh.jobs <- func() {
			eng.Commit()
			wg.Done()
		}
	}
	wg.Wait()
}

// beginShard lazily opens the engine-level batch for a shard the group
// batch is about to touch.
func (g *Group) beginShard(s int) *shardState {
	sh := g.shards[s]
	if g.batch && !sh.inBatch {
		sh.eng.Begin()
		sh.inBatch = true
	}
	return sh
}

// alloc hands out a global slot, growing the slot space (and both
// mirrors) with engine-style doubling.
func (g *Group) alloc() int {
	if k := len(g.free); k > 0 {
		id := g.free[k-1]
		g.free = g.free[:k-1]
		return id
	}
	old := len(g.points)
	next := 2 * old
	g.points = append(g.points, make([]geom.Point, next-old)...)
	g.alive = append(g.alive, make([]bool, next-old)...)
	g.loc = append(g.loc, make([]Loc, next-old)...)
	g.cutAdj = append(g.cutAdj, make([]map[int]float64, next-old)...)
	for i := old; i < next; i++ {
		g.loc[i] = Loc{Shard: -1, Local: -1}
	}
	g.base.Grow(next)
	g.sp.Grow(next)
	for id := next - 1; id > old; id-- {
		g.free = append(g.free, id)
	}
	return old
}

// Join admits a node, assigning a global slot id; the point decides the
// owning shard.
func (g *Group) Join(p geom.Point) (int, error) {
	if p.Dim() != g.dim {
		return 0, fmt.Errorf("shard: join dimension %d, want %d", p.Dim(), g.dim)
	}
	pt := p.Clone()
	s := g.part.Owner(pt)
	sh := g.beginShard(s)
	l, err := sh.eng.Join(pt)
	if err != nil {
		return 0, err
	}
	gid := g.alloc()
	g.bind(sh, l, gid)
	g.loc[gid] = Loc{Shard: int32(s), Local: int32(l)}
	g.points[gid] = pt
	g.alive[gid] = true
	g.n++
	g.grid.Add(gid, pt)
	g.rescanCuts(gid, s)
	g.dirtied()
	g.locDirty = true
	return gid, nil
}

// Leave retires the node, freeing its global slot for reuse.
func (g *Group) Leave(id int) error {
	if !g.Alive(id) {
		return fmt.Errorf("shard: leave of unknown node %d", id)
	}
	lc := g.loc[id]
	sh := g.beginShard(int(lc.Shard))
	if err := sh.eng.Leave(int(lc.Local)); err != nil {
		return err
	}
	g.dropCuts(id)
	g.unbind(sh, int(lc.Local))
	g.loc[id] = Loc{Shard: -1, Local: -1}
	g.grid.Remove(id)
	g.points[id] = nil
	g.alive[id] = false
	g.free = append(g.free, id)
	g.n--
	g.dirtied()
	g.locDirty = true
	return nil
}

// Move relocates the node. A move within its stripe is an engine move;
// a move that crosses a cut becomes leave+join across the two engines,
// preserving the global id (only the local binding changes).
func (g *Group) Move(id int, p geom.Point) error {
	if !g.Alive(id) {
		return fmt.Errorf("shard: move of unknown node %d", id)
	}
	if p.Dim() != g.dim {
		return fmt.Errorf("shard: move dimension %d, want %d", p.Dim(), g.dim)
	}
	pt := p.Clone()
	old := g.loc[id]
	ns := g.part.Owner(pt)
	if int(old.Shard) == ns {
		sh := g.beginShard(ns)
		if err := sh.eng.Move(int(old.Local), pt); err != nil {
			return err
		}
	} else {
		osh := g.beginShard(int(old.Shard))
		nsh := g.beginShard(ns)
		if err := osh.eng.Leave(int(old.Local)); err != nil {
			return err
		}
		g.unbind(osh, int(old.Local))
		l, err := nsh.eng.Join(pt)
		if err != nil {
			// Dimension was validated above; an engine join cannot fail
			// past that, but never strand the vertex half-moved.
			panic(fmt.Sprintf("shard: cross-shard rejoin failed: %v", err))
		}
		g.bind(nsh, l, id)
		g.loc[id] = Loc{Shard: int32(ns), Local: int32(l)}
		g.locDirty = true
	}
	g.points[id] = pt
	g.grid.Move(id, pt)
	g.rescanCuts(id, ns)
	g.dirtied()
	return nil
}

// bind records local slot l of sh as holding global id gid.
func (g *Group) bind(sh *shardState, l, gid int) {
	for l >= len(sh.glob) {
		sh.glob = append(sh.glob, -1)
	}
	sh.glob[l] = gid
	sh.rebound = append(sh.rebound, l)
}

// unbind frees local slot l of sh.
func (g *Group) unbind(sh *shardState, l int) {
	sh.glob[l] = -1
	sh.rebound = append(sh.rebound, l)
}

func (g *Group) dirtied() { g.exportClean = false }

// addCutPair registers the cross-shard base edge {u, v}.
func (g *Group) addCutPair(u, v int) {
	d := geom.Dist(g.points[u], g.points[v])
	if g.cutAdj[u] == nil {
		g.cutAdj[u] = make(map[int]float64, 4)
	}
	if g.cutAdj[v] == nil {
		g.cutAdj[v] = make(map[int]float64, 4)
	}
	g.cutAdj[u][v] = d
	g.cutAdj[v][u] = d
	g.cutAdds = append(g.cutAdds, cutPair{u, v})
}

// dropCuts removes every cut edge incident to u (the vertex is leaving,
// or moving — rescanCuts re-adds the survivors from its new position).
func (g *Group) dropCuts(u int) {
	m := g.cutAdj[u]
	if len(m) == 0 {
		return
	}
	for v := range m {
		delete(g.cutAdj[v], u)
		g.cutDrops = append(g.cutDrops, cutPair{u, v})
	}
	g.cutAdj[u] = nil
}

// rescanCuts recomputes u's cut incidence from its current position:
// drop everything, then re-add each in-radius neighbor owned by a
// different shard. s is u's (current) shard.
func (g *Group) rescanCuts(u, s int) {
	g.dropCuts(u)
	g.nbrs = g.grid.NeighborsAppend(g.nbrs[:0], g.points[u], g.dopts.Radius, u)
	for _, v := range g.nbrs {
		if int(g.loc[v].Shard) == s {
			continue
		}
		g.addCutPair(u, v)
	}
}

func (g *Group) touch(v int) { g.touched[v] = struct{}{} }

// LastExportTouched returns the sorted global vertex ids whose combined
// adjacency rows the last ExportFrozen re-froze; valid until the next
// export. Same contract as dynamic.Engine.LastExportTouched — the WAL
// delta frames and the hub-label oracle consume it unchanged.
func (g *Group) LastExportTouched() []int { return g.lastTouched }

// ExportFrozen publishes the combined topology: slot-indexed points and
// liveness, plus frozen base and spanner graphs over global ids — the
// union of every shard's spanner and all cut base edges. The export is
// delta-aware end to end: per-shard engines re-freeze only their
// touched rows, the group diffs exactly those rows into its combined
// mirrors, and graph.UpdateFrozen shares every untouched combined row
// with the previous export. Returned values are immutable.
func (g *Group) ExportFrozen() ([]geom.Point, []bool, *graph.Frozen, *graph.Frozen) {
	if g.exportClean {
		return g.expPoints, g.expAlive, g.expBase, g.expSp
	}
	g.seq++
	for k := range g.touched {
		delete(g.touched, k)
	}
	g.remB, g.addB = g.remB[:0], g.addB[:0]
	g.remS, g.addS = g.remS[:0], g.addS[:0]

	for _, sh := range g.shards {
		g.diffShard(sh)
	}

	// Reconcile cut-edge deltas against current truth (cutAdj): a pair
	// dropped and re-added within the window removes then re-adds; a
	// stale add (pair no longer cut) is skipped by the lookup. Sorting
	// keeps mirror mutation order — and with it frozen row order —
	// deterministic despite map iteration in dropCuts.
	sortCutPairs(g.cutDrops)
	sortCutPairs(g.cutAdds)

	// Phase 1: all removals (intra-shard diffs + cut drops). Guarded by
	// HasEdge so pairs reported from both endpoint rows, or dropped
	// twice across a move chain, apply once.
	for _, e := range g.remB {
		if g.base.RemoveEdge(e.u, e.v) {
			g.touch(e.u)
			g.touch(e.v)
		}
	}
	for _, e := range g.remS {
		if g.sp.RemoveEdge(e.u, e.v) {
			g.touch(e.u)
			g.touch(e.v)
		}
	}
	for _, c := range g.cutDrops {
		if g.base.RemoveEdge(c.u, c.v) {
			g.touch(c.u)
			g.touch(c.v)
		}
		if g.sp.RemoveEdge(c.u, c.v) {
			g.touch(c.u)
			g.touch(c.v)
		}
	}
	// Phase 2: all additions. Same-shard pairs come from fresh frozen
	// rows (current truth); cut pairs consult cutAdj for the current
	// length. After phase 1 a pair is present iff it survived unchanged,
	// so the HasEdge guard also collapses duplicates.
	for _, e := range g.addB {
		if !g.base.HasEdge(e.u, e.v) {
			g.base.AddEdge(e.u, e.v, e.w)
			g.touch(e.u)
			g.touch(e.v)
		}
	}
	for _, e := range g.addS {
		if !g.sp.HasEdge(e.u, e.v) {
			g.sp.AddEdge(e.u, e.v, e.w)
			g.touch(e.u)
			g.touch(e.v)
		}
	}
	for _, c := range g.cutAdds {
		d, ok := g.cutAdj[c.u][c.v]
		if !ok {
			continue
		}
		if !g.base.HasEdge(c.u, c.v) {
			g.base.AddEdge(c.u, c.v, d)
			g.touch(c.u)
			g.touch(c.v)
		}
		if !g.sp.HasEdge(c.u, c.v) {
			g.sp.AddEdge(c.u, c.v, g.dopts.Metric.Weight(d))
			g.touch(c.u)
			g.touch(c.v)
		}
	}
	g.cutDrops, g.cutAdds = g.cutDrops[:0], g.cutAdds[:0]

	g.touchBuf = g.touchBuf[:0]
	for v := range g.touched {
		g.touchBuf = append(g.touchBuf, v)
	}
	sort.Ints(g.touchBuf)
	g.lastTouched = g.touchBuf

	g.expBase = graph.UpdateFrozen(g.expBase, g.base, g.lastTouched)
	g.expSp = graph.UpdateFrozen(g.expSp, g.sp, g.lastTouched)
	g.expPoints = append([]geom.Point(nil), g.points...)
	g.expAlive = append([]bool(nil), g.alive...)
	if g.locDirty {
		g.locSnap = append([]Loc(nil), g.loc...)
		g.locDirty = false
	}

	g.sinceRefresh++
	if g.table == nil || g.sinceRefresh >= g.opts.PortalRefresh {
		g.refreshTable()
	}
	g.buildView()
	g.exportClean = true
	return g.expPoints, g.expAlive, g.expBase, g.expSp
}

// diffShard folds one shard's frozen-row deltas into the combined
// add/remove lists: for every local row the engine re-froze (plus every
// rebound slot), the multiset difference old-row → new-row becomes
// removals under the *previous* binding and additions under the current
// one.
func (g *Group) diffShard(sh *shardState) {
	_, _, nb, nsp := sh.eng.ExportFrozen()
	lt := sh.eng.LastExportTouched()
	if len(lt) == 0 && len(sh.rebound) == 0 {
		sh.prevBase, sh.prevSp = nb, nsp
		return
	}
	g.rows = append(g.rows[:0], lt...)
	g.rows = append(g.rows, sh.rebound...)
	sort.Ints(g.rows)
	prev := -1
	for _, lu := range g.rows {
		if lu == prev {
			continue
		}
		prev = lu
		g.diffRow(sh, lu, sh.prevBase, nb, &g.remB, &g.addB)
		g.diffRow(sh, lu, sh.prevSp, nsp, &g.remS, &g.addS)
	}
	sh.prevBase, sh.prevSp = nb, nsp
	if len(sh.rebound) > 0 {
		sh.globSnap = append(sh.globSnap[:0:0], sh.glob...)
		sh.rebound = sh.rebound[:0]
	}
	sh.lastChanged = g.seq
}

// diffRow diffs one local adjacency row between the shard's previous
// and current frozen export, translating removed halfedges through the
// previous binding (globSnap) and added ones through the current (glob).
func (g *Group) diffRow(sh *shardState, lu int, prev, cur *graph.Frozen, rem, add *[]edgeOp) {
	var oldRow, newRow []graph.Halfedge
	if prev != nil && lu < prev.N() {
		oldRow = prev.Neighbors(lu)
	}
	if lu < cur.N() {
		newRow = cur.Neighbors(lu)
	}
	if len(g.matched) < len(newRow) {
		g.matched = make([]bool, len(newRow))
	}
	matched := g.matched[:len(newRow)]
	for i := range matched {
		matched[i] = false
	}
outer:
	for _, oh := range oldRow {
		for j, nh := range newRow {
			if !matched[j] && nh.To == oh.To && nh.W == oh.W {
				matched[j] = true
				continue outer
			}
		}
		*rem = append(*rem, edgeOp{u: gidAt(sh.globSnap, lu), v: gidAt(sh.globSnap, oh.To), w: oh.W})
	}
	for j, nh := range newRow {
		if !matched[j] {
			*add = append(*add, edgeOp{u: gidAt(sh.glob, lu), v: gidAt(sh.glob, nh.To), w: nh.W})
		}
	}
}

// gidAt is the bounds-tolerant binding lookup: a slot beyond the
// binding array was never bound (-1). A -1 in an edge op would be a
// bookkeeping bug; the mirror's range panic surfaces it loudly in tests
// rather than silently corrupting the combined graph.
func gidAt(ids []int, l int) int {
	if l < 0 || l >= len(ids) {
		return -1
	}
	return ids[l]
}

func sortCutPairs(ps []cutPair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].u != ps[j].u {
			return ps[i].u < ps[j].u
		}
		return ps[i].v < ps[j].v
	})
}

// refreshTable rebuilds the portal table against the current combined
// export and stamps it fresh.
func (g *Group) refreshTable() {
	portals := make([]int, 0, 64)
	for gid, m := range g.cutAdj {
		if len(m) > 0 && g.alive[gid] {
			portals = append(portals, gid)
		}
	}
	g.table = buildPortalTable(portals, g.locSnap, g.opts.K, g.expSp, g.expBase)
	g.tableSeq = g.seq
	g.sinceRefresh = 0
}

// buildView assembles the immutable per-shard view for this export.
func (g *Group) buildView() {
	shs := make([]ShardView, len(g.shards))
	maxN := 0
	for i, sh := range g.shards {
		shs[i] = ShardView{
			Base:        sh.prevBase,
			Spanner:     sh.prevSp,
			Glob:        sh.globSnap,
			Live:        sh.eng.N(),
			LastChanged: sh.lastChanged,
		}
		if n := sh.prevSp.N(); n > maxN {
			maxN = n
		}
	}
	g.view = &View{
		Epoch:      g.seq,
		Part:       g.part,
		Loc:        g.locSnap,
		Shards:     shs,
		Base:       g.expBase,
		Spanner:    g.expSp,
		Table:      g.table,
		TableFresh: g.tableSeq == g.seq,
		MaxLocalN:  maxN,
	}
}

// View returns the per-shard view matching the last ExportFrozen: local
// frozen graphs, id bindings, and the portal table. Immutable; readers
// route against it lock-free.
func (g *Group) View() *View { return g.view }
