package shard

import (
	"math"
	"math/rand"
	"testing"

	"topoctl/internal/dynamic"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// relClose is the repo-wide differential tolerance: floating-point sums
// that associate differently (a stitched three-leg total vs one sweep)
// agree to relative 1e-9.
func relClose(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) == math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= 1e-9*(1+math.Abs(b))
}

// TestRouteFuzzDifferential pins portal-stitched routing against the
// global search over the same combined snapshot, across ≥500 fuzzed
// graphs + mutation chains: for every live endpoint pair sampled,
//
//   - deliverability matches exactly,
//   - cost and stretch (cost over combined-base distance) match to
//     relative 1e-9,
//   - the returned path starts at src, ends at dst, walks existing
//     combined-spanner edges, and its edge weights sum to the cost, and
//   - View.Distance agrees with the route cost.
//
// A PortalRefresh=3 arm exercises the mid-update stale-table fallback:
// between refreshes the view must decline (ok=false) — never answer
// from a stale table — and the service's global search takes over.
func TestRouteFuzzDifferential(t *testing.T) {
	trials := 520
	if testing.Short() {
		trials = 80
	}
	staleDeclines, answered := 0, 0
	for trial := 0; trial < trials; trial++ {
		seed := int64(40000 + trial)
		rng := rand.New(rand.NewSource(seed))
		n0 := 24 + rng.Intn(72)
		k := 2 + rng.Intn(3)
		dim := 2
		if rng.Intn(4) == 0 {
			dim = 3
		}
		side := 2.5 + rng.Float64()*4.5
		tStretch := []float64{1.3, 1.5, 2.0}[rng.Intn(3)]
		refresh := 1
		if trial%4 == 3 {
			refresh = 3 // stale-fallback arm
		}
		pts := geom.GeneratePoints(geom.CloudConfig{
			Kind: []geom.Cloud{geom.CloudUniform, geom.CloudClustered, geom.CloudGridJitter}[rng.Intn(3)],
			N:    n0, Dim: dim, Side: side, Seed: seed, Hotspots: 3,
		})
		g, err := New(pts, Options{Dynamic: dynamic.Options{T: tStretch}, K: k, PortalRefresh: refresh})
		if err != nil {
			t.Fatalf("trial %d (seed %d): %v", trial, seed, err)
		}

		// Random mutation chain, with an export (and differential pass)
		// after every few ops so mid-update table states are exercised.
		ops := rng.Intn(12)
		for op := 0; op < ops; op++ {
			mutate(t, g, rng, side)
			if rng.Intn(3) > 0 {
				continue
			}
			g.ExportFrozen()
			if v := g.View(); !v.TableFresh {
				staleDeclines += assertStaleDeclines(t, g, rng, trial, seed)
			}
		}
		_, alive, base, sp := g.ExportFrozen()
		v := g.View()
		if refresh == 1 && !v.TableFresh {
			t.Fatalf("trial %d (seed %d): PortalRefresh=1 view published a stale table", trial, seed)
		}

		ids := liveIDs(g)
		if len(ids) < 2 {
			g.Close()
			continue
		}
		sc := NewScratch()
		gs := graph.NewSearcher(sp.N())
		pairs := 12 + rng.Intn(12)
		for q := 0; q < pairs; q++ {
			src := ids[rng.Intn(len(ids))]
			dst := ids[rng.Intn(len(ids))]
			path, cost, baseDist, delivered, ok := v.Route(sc, gs, src, dst)
			if !ok {
				if v.TableFresh {
					t.Fatalf("trial %d (seed %d): fresh view declined route %d->%d", trial, seed, src, dst)
				}
				staleDeclines++
				continue
			}
			answered++

			// Global reference on the identical combined snapshot.
			refPath, refCost, refOK := gs.AppendPathTo(nil, sp, src, dst, graph.Inf)
			if delivered != refOK {
				t.Fatalf("trial %d (seed %d) %d->%d: delivered = %v, global search says %v", trial, seed, src, dst, delivered, refOK)
			}
			if !delivered {
				if len(path) != 1 || path[0] != src {
					t.Fatalf("trial %d (seed %d) %d->%d: undelivered path = %v, want [%d]", trial, seed, src, dst, path, src)
				}
				continue
			}
			if !relClose(cost, refCost) {
				t.Fatalf("trial %d (seed %d) %d->%d: stitched cost %v, global %v", trial, seed, src, dst, cost, refCost)
			}
			// Path integrity: endpoints, edge existence, weight sum.
			if path[0] != src || path[len(path)-1] != dst {
				t.Fatalf("trial %d (seed %d) %d->%d: path endpoints %v", trial, seed, src, dst, path)
			}
			if w, okw := graph.PathWeight(sp, path); !okw || !relClose(w, cost) {
				t.Fatalf("trial %d (seed %d) %d->%d: path weight %v (valid=%v) vs cost %v, path %v",
					trial, seed, src, dst, w, okw, cost, path)
			}
			for _, u := range path {
				if u < 0 || u >= len(alive) || !alive[u] {
					t.Fatalf("trial %d (seed %d) %d->%d: path visits dead vertex %d", trial, seed, src, dst, u)
				}
			}
			// Stretch denominator: stitched base distance vs global base
			// search (src == dst pairs report 0 on both sides).
			refBase, refBOK := gs.DijkstraTarget(base, src, dst, graph.Inf)
			if src == dst {
				refBase, refBOK = 0, true
			}
			if !refBOK {
				t.Fatalf("trial %d (seed %d) %d->%d: spanner-delivered pair base-unreachable", trial, seed, src, dst)
			}
			if !relClose(baseDist, refBase) {
				t.Fatalf("trial %d (seed %d) %d->%d: stitched base %v, global %v", trial, seed, src, dst, baseDist, refBase)
			}
			if d, dok := v.Distance(sc, src, dst); !dok || !relClose(d, cost) {
				t.Fatalf("trial %d (seed %d) %d->%d: Distance %v (ok=%v) vs cost %v", trial, seed, src, dst, d, dok, cost)
			}
			_ = refPath
		}
		g.Close()
	}
	if answered == 0 {
		t.Fatal("fuzz answered no routes")
	}
	t.Logf("%d trials: %d routes answered, %d stale declines", trials, answered, staleDeclines)
}

// assertStaleDeclines verifies a stale view refuses to answer (the
// service falls back to the global search; a stale table must never
// produce a value). Returns the decline count.
func assertStaleDeclines(t *testing.T, g *Group, rng *rand.Rand, trial int, seed int64) int {
	t.Helper()
	ids := liveIDs(g)
	if len(ids) < 2 {
		return 0
	}
	v := g.View()
	sc := NewScratch()
	gs := graph.NewSearcher(v.Spanner.N())
	src, dst := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
	if _, _, _, _, ok := v.Route(sc, gs, src, dst); ok {
		t.Fatalf("trial %d (seed %d): stale view answered a route", trial, seed)
	}
	if _, ok := v.Distance(sc, src, dst); ok {
		t.Fatalf("trial %d (seed %d): stale view answered a distance", trial, seed)
	}
	return 1
}
