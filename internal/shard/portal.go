package shard

import (
	"runtime"
	"sync"
	"sync/atomic"

	"topoctl/internal/graph"
)

// Portal is one portal vertex: an endpoint of a cut edge. Cross-shard
// routes enter and leave a shard through its portals, so exact global
// distances decompose as
//
//	dist(u, v) = min over portals p of u's shard, q of v's shard of
//	             d_local(u, p) + D[p, q] + d_local(q, v)
//
// (for same-shard pairs additionally min'd with the direct local
// distance). The identity is exact because any shortest path that
// leaves a stripe does so over a cut edge: the prefix before the first
// cut edge stays inside the source stripe's induced spanner, the suffix
// after the last one inside the destination's, and the middle is a
// global path between two portals — precomputed in D.
type Portal struct {
	// Global is the portal's global vertex id; Shard/Local its binding.
	Global int
	Shard  int32
	Local  int32
	// Row indexes the portal's row/column in the distance tables.
	Row int32
}

// PortalTable is the precomputed inter-portal distance closure of one
// combined export: exact global distances between every portal pair
// over the combined spanner (D, metric weights) and the combined base
// graph (DBase, Euclidean weights — the stretch denominator side).
// Immutable once built.
type PortalTable struct {
	// Portals lists every portal ascending by global id; ByShard groups
	// them per shard.
	Portals []Portal
	ByShard [][]Portal
	// P is len(Portals); D and DBase are P×P row-major, indexed by Row.
	P     int
	D     []float64
	DBase []float64
}

// buildPortalTable runs one full Dijkstra per portal per graph (spanner
// and base) over the combined frozen export, fanned across GOMAXPROCS
// goroutines — each with its own pooled Searcher and distance array.
// portals must be sorted ascending.
func buildPortalTable(portals []int, loc []Loc, k int, sp, base *graph.Frozen) *PortalTable {
	p := len(portals)
	t := &PortalTable{
		Portals: make([]Portal, p),
		ByShard: make([][]Portal, k),
		P:       p,
		D:       make([]float64, p*p),
		DBase:   make([]float64, p*p),
	}
	for i, gid := range portals {
		lc := loc[gid]
		t.Portals[i] = Portal{Global: gid, Shard: lc.Shard, Local: lc.Local, Row: int32(i)}
		t.ByShard[lc.Shard] = append(t.ByShard[lc.Shard], t.Portals[i])
	}
	if p == 0 {
		return t
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > p {
		workers = p
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srch := graph.AcquireSearcher(sp.N())
			defer graph.ReleaseSearcher(srch)
			out := make([]float64, sp.N())
			for {
				i := int(next.Add(1)) - 1
				if i >= p {
					return
				}
				srch.Dijkstra(sp, portals[i], graph.Inf, out)
				row := t.D[i*p : (i+1)*p]
				for j, q := range portals {
					row[j] = out[q]
				}
				srch.Dijkstra(base, portals[i], graph.Inf, out)
				row = t.DBase[i*p : (i+1)*p]
				for j, q := range portals {
					row[j] = out[q]
				}
			}
		}()
	}
	wg.Wait()
	return t
}
