package shard

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"topoctl/internal/dynamic"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/metrics"
)

// refCombined rebuilds the combined topology from scratch out of the
// group's ground truth — per-shard engine graphs translated through the
// current binding, plus every cut edge — and returns canonical edge-set
// strings. The incremental mirror/diff machinery in ExportFrozen must
// reproduce exactly this.
func refCombined(g *Group) (base, sp string) {
	var bk, sk []string
	for _, sh := range g.shards {
		for _, e := range sh.eng.Base().EdgesUnordered() {
			bk = append(bk, edgeKey(sh.glob[e.U], sh.glob[e.V], e.W))
		}
		for _, e := range sh.eng.Spanner().EdgesUnordered() {
			sk = append(sk, edgeKey(sh.glob[e.U], sh.glob[e.V], e.W))
		}
	}
	for u, m := range g.cutAdj {
		for v, d := range m {
			if v < u {
				continue
			}
			bk = append(bk, edgeKey(u, v, d))
			sk = append(sk, edgeKey(u, v, g.dopts.Metric.Weight(d)))
		}
	}
	sort.Strings(bk)
	sort.Strings(sk)
	return fmt.Sprint(bk), fmt.Sprint(sk)
}

func frozenKeys(f *graph.Frozen) string {
	es := f.EdgesUnordered()
	keys := make([]string, len(es))
	for i, e := range es {
		keys[i] = edgeKey(e.U, e.V, e.W)
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

func edgeKey(u, v int, w float64) string {
	if u > v {
		u, v = v, u
	}
	return fmt.Sprintf("%d-%d:%.9f", u, v, w)
}

// naiveBase renders the ground-truth base graph of the live points: every
// pair within the connectivity radius.
func naiveBase(g *Group) string {
	var keys []string
	for u := 0; u < len(g.points); u++ {
		if !g.alive[u] {
			continue
		}
		for v := u + 1; v < len(g.points); v++ {
			if !g.alive[v] {
				continue
			}
			if d := geom.Dist(g.points[u], g.points[v]); d <= g.dopts.Radius {
				keys = append(keys, edgeKey(u, v, d))
			}
		}
	}
	sort.Strings(keys)
	return fmt.Sprint(keys)
}

// liveIDs returns the live global ids.
func liveIDs(g *Group) []int {
	ids := make([]int, 0, g.n)
	for id := range g.alive {
		if g.alive[id] {
			ids = append(ids, id)
		}
	}
	return ids
}

// mutate applies one random mutation through the group, mirroring the
// op mix of the dynamic engine's own differential harness. Returns a
// short op description for failure logs.
func mutate(t *testing.T, g *Group, rng *rand.Rand, side float64) string {
	t.Helper()
	switch r := rng.Float64(); {
	case r < 0.3:
		p := make(geom.Point, g.Dim())
		for i := range p {
			p[i] = rng.Float64() * side
		}
		id, err := g.Join(p)
		if err != nil {
			t.Fatalf("join: %v", err)
		}
		return fmt.Sprintf("join->%d", id)
	case r < 0.55 && g.N() > 4:
		ids := liveIDs(g)
		id := ids[rng.Intn(len(ids))]
		if err := g.Leave(id); err != nil {
			t.Fatalf("leave %d: %v", id, err)
		}
		return fmt.Sprintf("leave %d", id)
	default:
		ids := liveIDs(g)
		id := ids[rng.Intn(len(ids))]
		p := g.Point(id).Clone()
		for i := range p {
			p[i] += rng.NormFloat64() * (side / 4)
			if p[i] < 0 {
				p[i] = 0
			}
			if p[i] > side {
				p[i] = side
			}
		}
		if err := g.Move(id, p); err != nil {
			t.Fatalf("move %d: %v", id, err)
		}
		return fmt.Sprintf("move %d", id)
	}
}

// TestGroupDifferentialExport is the pinning harness for the combined
// delta export: over fuzzed mutation chains (random K, batching, and op
// mixes — the side/4 move scale forces frequent boundary crossings),
// after every export
//
//  1. the combined frozen base graph equals the naive all-pairs
//     reference on the live points (so per-shard engines + cut
//     discovery never lose or invent connectivity),
//  2. both combined frozen graphs equal a from-scratch rebuild of
//     per-shard graphs + cut edges (so the incremental row diffing,
//     slot rebinding, and two-phase mirror reconciliation are exact),
//  3. the combined spanner contains every cut edge and has stretch ≤ t
//     over the combined base graph, and
//  4. exported points/alive agree with the group's ground truth.
func TestGroupDifferentialExport(t *testing.T) {
	chains := 120
	if testing.Short() {
		chains = 30
	}
	for chain := 0; chain < chains; chain++ {
		seed := int64(9000 + chain)
		rng := rand.New(rand.NewSource(seed))
		n0 := 16 + rng.Intn(48)
		k := 2 + rng.Intn(3)
		side := 3 + rng.Float64()*5
		tStretch := []float64{1.3, 1.5, 2.0}[rng.Intn(3)]
		pts := geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: n0, Dim: 2, Side: side, Seed: seed})

		g, err := New(pts, Options{Dynamic: dynamic.Options{T: tStretch}, K: k})
		if err != nil {
			t.Fatalf("chain %d (seed %d): %v", chain, seed, err)
		}

		check := func(stage string) {
			t.Helper()
			ep, ea, eb, es := g.ExportFrozen()
			if wantB := naiveBase(g); frozenKeys(eb) != wantB {
				t.Fatalf("chain %d (seed %d) %s: combined base diverged from naive reference\n got: %s\nwant: %s",
					chain, seed, stage, frozenKeys(eb), wantB)
			}
			refB, refS := refCombined(g)
			if got := frozenKeys(eb); got != refB {
				t.Fatalf("chain %d (seed %d) %s: incremental base mirror diverged\n got: %s\nwant: %s", chain, seed, stage, got, refB)
			}
			if got := frozenKeys(es); got != refS {
				t.Fatalf("chain %d (seed %d) %s: incremental spanner mirror diverged\n got: %s\nwant: %s", chain, seed, stage, got, refS)
			}
			for u, m := range g.cutAdj {
				for v := range m {
					if !frozenHasEdge(es, u, v) {
						t.Fatalf("chain %d (seed %d) %s: cut edge %d-%d missing from combined spanner", chain, seed, stage, u, v)
					}
				}
			}
			if s := metrics.Stretch(eb, es); s > tStretch+1e-9 {
				t.Fatalf("chain %d (seed %d) %s: combined stretch %v exceeds %v", chain, seed, stage, s, tStretch)
			}
			for id := range ea {
				if ea[id] != g.alive[id] {
					t.Fatalf("chain %d (seed %d) %s: exported alive[%d] = %v, want %v", chain, seed, stage, id, ea[id], g.alive[id])
				}
				if ea[id] && geom.Dist(ep[id], g.points[id]) != 0 {
					t.Fatalf("chain %d (seed %d) %s: exported point %d diverged", chain, seed, stage, id)
				}
			}
		}

		check("initial")
		ops := 8 + rng.Intn(16)
		batch := 1
		if rng.Intn(2) == 0 {
			batch = 2 + rng.Intn(4)
		}
		inBatch := 0
		var last string
		for op := 0; op < ops; op++ {
			if batch > 1 && inBatch == 0 {
				g.Begin()
			}
			last = mutate(t, g, rng, side)
			inBatch++
			if batch > 1 && (inBatch == batch || op == ops-1) {
				g.Commit()
				inBatch = 0
			}
			if batch == 1 || inBatch == 0 {
				check(fmt.Sprintf("op %d (%s)", op, last))
			}
		}
		g.Close()
	}
}

func frozenHasEdge(f *graph.Frozen, u, v int) bool {
	for _, h := range f.Neighbors(u) {
		if h.To == v {
			return true
		}
	}
	return false
}
