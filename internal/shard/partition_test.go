package shard

import (
	"math"
	"math/rand"
	"testing"

	"topoctl/internal/geom"
)

// naiveOwner is the reference assignment: count the cuts at or below the
// coordinate by linear scan (the partition uses binary search).
func naiveOwner(pt *Partition, p geom.Point) int {
	s := 0
	for _, c := range pt.Cuts {
		if p[pt.Axis] >= c {
			s++
		}
	}
	return s
}

// zipfClustered draws a point cloud whose cluster populations follow a
// zipf law (cluster k holds ~1/k of the mass) — the adversarial input
// for quantile-cut balance, since most points pile into one hotspot.
func zipfClustered(n, dim int, side float64, hotspots int, seed int64) []geom.Point {
	rng := rand.New(rand.NewSource(seed))
	centers := make([]geom.Point, hotspots)
	for i := range centers {
		c := make(geom.Point, dim)
		for d := range c {
			c[d] = rng.Float64() * side
		}
		centers[i] = c
	}
	var h float64
	for k := 1; k <= hotspots; k++ {
		h += 1 / float64(k)
	}
	sigma := side / (4 * float64(hotspots))
	pts := make([]geom.Point, 0, n)
	for k := 1; k <= hotspots; k++ {
		m := int(float64(n) / (float64(k) * h))
		if k == hotspots {
			m = n - len(pts)
		}
		for i := 0; i < m; i++ {
			p := make(geom.Point, dim)
			for d := range p {
				x := centers[k-1][d] + rng.NormFloat64()*sigma
				p[d] = math.Min(side, math.Max(0, x))
			}
			pts = append(pts, p)
		}
	}
	return pts
}

// TestPartitionDifferential pins the partitioner against the naive
// reference assignment: every point lands in exactly one region in
// [0, K), binary-search Owner agrees with the linear scan, and cuts are
// strictly increasing multiples of the cell.
func TestPartitionDifferential(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(400)
		k := 2 + rng.Intn(7)
		dim := 2 + rng.Intn(2)
		side := 2 + rng.Float64()*30
		cell := 0.5 + rng.Float64()*2
		kind := []geom.Cloud{geom.CloudUniform, geom.CloudClustered, geom.CloudCorridor}[rng.Intn(3)]
		pts := geom.GeneratePoints(geom.CloudConfig{Kind: kind, N: n, Dim: dim, Side: side, Seed: seed, Hotspots: 3})
		part := NewPartition(pts, k, cell)

		if len(part.Cuts) != k-1 {
			t.Fatalf("seed %d: %d cuts, want %d", seed, len(part.Cuts), k-1)
		}
		for i, c := range part.Cuts {
			if q := c / part.Cell; math.Abs(q-math.Round(q)) > 1e-9 {
				t.Fatalf("seed %d: cut %d = %v is not a multiple of cell %v", seed, i, c, part.Cell)
			}
			if i > 0 && c <= part.Cuts[i-1] {
				t.Fatalf("seed %d: cuts not strictly increasing: %v", seed, part.Cuts)
			}
		}
		for i, p := range pts {
			got := part.Owner(p)
			if got < 0 || got >= k {
				t.Fatalf("seed %d: point %d owned by %d, want [0,%d)", seed, i, got, k)
			}
			if want := naiveOwner(part, p); got != want {
				t.Fatalf("seed %d: point %d at %v: Owner = %d, naive = %d (cuts %v)", seed, i, p, got, want, part.Cuts)
			}
		}
	}
}

// TestPartitionBalance pins the documented balance factor: with cuts at
// population quantiles snapped by at most cell/2, every region's
// population stays within balanceFactor of the ideal n/K on uniform and
// zipf-clustered clouds (side ≫ cell, so a half-cell slab carries a
// small population fraction).
func TestPartitionBalance(t *testing.T) {
	const balanceFactor = 1.5
	n, k := 4000, 4
	cases := []struct {
		name string
		pts  []geom.Point
	}{
		{"uniform", geom.GeneratePoints(geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Side: 40, Seed: 7})},
		{"zipf-clustered", zipfClustered(n, 2, 40, 5, 11)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			part := NewPartition(tc.pts, k, 1)
			pop := make([]int, k)
			for _, p := range tc.pts {
				pop[part.Owner(p)]++
			}
			ideal := float64(n) / float64(k)
			for s, c := range pop {
				if float64(c) > ideal*balanceFactor || float64(c) < ideal/balanceFactor {
					t.Fatalf("shard %d holds %d points, outside %g× of ideal %.0f (pops %v, cuts %v)",
						s, c, balanceFactor, ideal, pop, part.Cuts)
				}
			}
			t.Logf("%s populations: %v (ideal %.0f)", tc.name, pop, ideal)
		})
	}
}
