// Package shard partitions a dynamic topology into K grid-aligned
// spatial regions, runs one dynamic.Engine per region behind a shared
// façade (Group) that speaks the same commit/export contract as a
// single engine, and stitches cross-shard shortest-path queries through
// portal vertices precomputed at freeze time.
//
// The partition is a set of K axis-aligned stripes along the widest
// bounding-box axis, with cut planes snapped to multiples of the
// connectivity radius — the same cell side geom's grids use — so a base
// edge (length ≤ radius) crosses at most one cut. Every base edge that
// does cross a cut is a "cut edge"; its endpoints are the shard's
// portal vertices. Cut edges are carried verbatim in every combined
// snapshot (they are never thinned by any shard's greedy repair), which
// is what makes the union of the per-shard spanners plus the cut edges
// a valid t-spanner of the global base graph: an intra-shard base edge
// is certified by its own engine's per-edge invariant, and a cut edge
// certifies itself.
package shard

import (
	"math"
	"sort"

	"topoctl/internal/geom"
)

// Partition is a grid-aligned 1-D stripe partition of space into K
// regions along one axis. Region i owns the half-open slab
// [Cuts[i-1], Cuts[i]) on Axis (with implicit ±Inf sentinels), so every
// point belongs to exactly one region. Cuts are strictly increasing and
// each is an integer multiple of Cell.
type Partition struct {
	// K is the region count (≥ 1).
	K int
	// Axis is the coordinate axis the stripes are perpendicular to.
	Axis int
	// Cuts holds the K-1 cut coordinates, strictly increasing.
	Cuts []float64
	// Cell is the alignment quantum (the connectivity radius).
	Cell float64
}

// NewPartition builds a K-stripe partition of the given points: the
// stripe axis is the widest bounding-box axis, and the K-1 cuts sit at
// the population quantiles, snapped to the nearest multiple of cell.
//
// The snapping moves each cut by at most cell/2 off its quantile, so on
// point sets whose density per cell-width slab is bounded (uniform and
// moderately clustered clouds alike) shard populations stay within a
// constant factor of n/K — the partition test pins the factor. Nil
// points (free slots) are ignored; an empty point set yields evenly
// spaced synthetic cuts so an initially empty deployment still shards.
func NewPartition(points []geom.Point, k int, cell float64) *Partition {
	if k < 1 {
		panic("shard: partition needs k >= 1")
	}
	if cell <= 0 || math.IsInf(cell, 0) || math.IsNaN(cell) {
		panic("shard: partition needs a positive finite cell")
	}
	axis := 0
	var xs []float64
	if n := livePoints(points); n > 0 {
		dim := 0
		for _, p := range points {
			if p != nil {
				dim = p.Dim()
				break
			}
		}
		var lo, hi []float64
		lo, hi = make([]float64, dim), make([]float64, dim)
		first := true
		for _, p := range points {
			if p == nil {
				continue
			}
			for a := 0; a < dim; a++ {
				if first || p[a] < lo[a] {
					lo[a] = p[a]
				}
				if first || p[a] > hi[a] {
					hi[a] = p[a]
				}
			}
			first = false
		}
		for a := 1; a < dim; a++ {
			if hi[a]-lo[a] > hi[axis]-lo[axis] {
				axis = a
			}
		}
		xs = make([]float64, 0, n)
		for _, p := range points {
			if p != nil {
				xs = append(xs, p[axis])
			}
		}
		sort.Float64s(xs)
	}
	cuts := make([]float64, 0, k-1)
	for i := 1; i < k; i++ {
		var q float64
		if len(xs) > 0 {
			q = xs[i*len(xs)/k]
		} else {
			q = float64(i) * cell
		}
		cuts = append(cuts, math.Round(q/cell)*cell)
	}
	// Snapping can collapse adjacent quantiles onto the same multiple;
	// keep the cuts strictly increasing (later regions may end up empty,
	// which is fine — Owner stays total and exclusive).
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			cuts[i] = cuts[i-1] + cell
		}
	}
	return &Partition{K: k, Axis: axis, Cuts: cuts, Cell: cell}
}

// Owner returns the region owning p: the number of cuts ≤ p[Axis], so a
// point exactly on a cut belongs to the upper region. Every point is
// owned by exactly one region in [0, K).
func (pt *Partition) Owner(p geom.Point) int {
	x := p[pt.Axis]
	lo, hi := 0, len(pt.Cuts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if x < pt.Cuts[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func livePoints(points []geom.Point) int {
	n := 0
	for _, p := range points {
		if p != nil {
			n++
		}
	}
	return n
}
