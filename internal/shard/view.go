package shard

import (
	"math"

	"topoctl/internal/graph"
)

// ShardView is one shard's slice of a combined export: its engine's
// frozen graphs (local slot ids), the local→global binding, and the
// shard's churn watermark.
type ShardView struct {
	// Base and Spanner are the shard's frozen exports over local ids.
	Base, Spanner *graph.Frozen
	// Glob maps local slot → global id (-1 free).
	Glob []int
	// Live is the shard's live node count.
	Live int
	// LastChanged is the group export sequence that last re-froze any of
	// this shard's rows (the per-shard "last swap epoch" in /stats).
	LastChanged uint64
}

// View is the sharded face of one combined export: everything a reader
// needs to answer a shortest-path query with per-shard work only —
// local frozen graphs, the global→local binding, and the portal
// distance tables. Immutable; a concurrent commit publishes a successor
// view and can never alter this one.
type View struct {
	// Epoch is the group's export sequence number.
	Epoch uint64
	// Part routes points (and therefore mutations/queries) to shards.
	Part *Partition
	// Loc maps global id → (shard, local); Shard < 0 marks free slots.
	Loc []Loc
	// Shards holds the per-shard slices, indexed by shard id.
	Shards []ShardView
	// Base and Spanner are the combined frozen graphs over global ids —
	// what unsharded consumers (stats, analyze, labels, WAL) see.
	Base, Spanner *graph.Frozen
	// Table is the inter-portal distance closure; TableFresh reports
	// whether it matches this export. A stale table (PortalRefresh > 1,
	// mid-update) is never consulted — Route declines and the caller
	// falls back to the global combined search.
	Table      *PortalTable
	TableFresh bool
	// MaxLocalN is the largest per-shard slot space, a sizing hint for
	// Scratch.
	MaxLocalN int
}

// Scratch is the reusable per-query workspace of the portal-stitched
// route path: one searcher plus distance arrays sized to the local
// shards. Not safe for concurrent use; pool instances per shard.
type Scratch struct {
	S *graph.Searcher

	du, dv   []float64 // spanner distances from src / dst inside their shards
	dbu, dbv []float64 // base-graph counterparts
	p1, p2   []int     // local path buffers (src side, dst side)
	pm       []int     // global middle-path buffer
}

// NewScratch returns an empty workspace; buffers grow on first use.
func NewScratch() *Scratch { return &Scratch{S: graph.NewSearcher(0)} }

func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// withMargin pads an exact stitched bound for the bounded path
// reconstruction: the bidirectional kernel may associate its partial
// sums differently than the unidirectional sweep that produced d, so an
// exact bound could reject the optimal meeting by one ulp.
func withMargin(d float64) float64 {
	return d + 1e-9*d + 1e-12
}

// Route answers one exact shortest-path query over global ids by portal
// stitching: a full local Dijkstra inside the two endpoint shards (four
// of them — spanner and base each side), a min over portal pairs
// through the precomputed tables, and a bounded reconstruction of the
// three path legs. cost is the served route cost, baseDist the
// base-graph distance (the stretch denominator; 0 when undelivered).
//
// ok reports whether the view answered: false when the portal table is
// stale — or on the (theoretically impossible, defensively handled)
// failure of a bounded reconstruction — in which case the caller must
// fall back to the global search over the combined snapshot. Both
// endpoints must be live; the caller validates. gs is a searcher sized
// for the combined graph (the middle leg runs on it).
func (v *View) Route(sc *Scratch, gs *graph.Searcher, src, dst int) (path []int, cost, baseDist float64, delivered, ok bool) {
	if v.Table == nil || !v.TableFresh {
		return nil, 0, 0, false, false
	}
	if src == dst {
		return []int{src}, 0, 0, true, true
	}
	la, lb := v.Loc[src], v.Loc[dst]
	a, b := int(la.Shard), int(lb.Shard)
	sva, svb := &v.Shards[a], &v.Shards[b]

	na, nb := sva.Spanner.N(), svb.Spanner.N()
	sc.du = growF(sc.du, na)
	sc.dv = growF(sc.dv, nb)
	sc.S.Dijkstra(sva.Spanner, int(la.Local), graph.Inf, sc.du)
	sc.S.Dijkstra(svb.Spanner, int(lb.Local), graph.Inf, sc.dv)

	pa, pb := v.Table.ByShard[a], v.Table.ByShard[b]
	p := v.Table.P
	best := math.Inf(1)
	var bi, bj Portal
	for _, pi := range pa {
		d1 := sc.du[pi.Local]
		if d1 >= best {
			continue
		}
		row := v.Table.D[int(pi.Row)*p : (int(pi.Row)+1)*p]
		for _, pj := range pb {
			if c := d1 + row[pj.Row] + sc.dv[pj.Local]; c < best {
				best = c
				bi, bj = pi, pj
			}
		}
	}
	direct := math.Inf(1)
	if a == b {
		direct = sc.du[lb.Local]
	}

	switch {
	case a == b && direct <= best:
		if math.IsInf(direct, 1) {
			return []int{src}, 0, 0, false, true
		}
		lp, _, okp := sc.S.AppendPathTo(sc.p1[:0], sva.Spanner, int(la.Local), int(lb.Local), withMargin(direct))
		sc.p1 = lp[:0]
		if !okp {
			return nil, 0, 0, false, false
		}
		path = make([]int, len(lp))
		for i, l := range lp {
			path[i] = sva.Glob[l]
		}
		cost = direct
	case math.IsInf(best, 1):
		// No portal pair connects the shards (and no direct local path
		// for same-shard pairs): exactly the unreachable case.
		return []int{src}, 0, 0, false, true
	default:
		lp1, _, ok1 := sc.S.AppendPathTo(sc.p1[:0], sva.Spanner, int(la.Local), int(bi.Local), withMargin(sc.du[bi.Local]))
		sc.p1 = lp1[:0]
		var mid []int
		okm := true
		if bi.Global != bj.Global {
			d := v.Table.D[int(bi.Row)*p+int(bj.Row)]
			mid, _, okm = gs.AppendPathTo(sc.pm[:0], v.Spanner, bi.Global, bj.Global, withMargin(d))
			sc.pm = mid[:0]
		}
		lp2, _, ok2 := sc.S.AppendPathTo(sc.p2[:0], svb.Spanner, int(lb.Local), int(bj.Local), withMargin(sc.dv[bj.Local]))
		sc.p2 = lp2[:0]
		if !ok1 || !okm || !ok2 {
			return nil, 0, 0, false, false
		}
		// Stitch src→p (local A), p→q (global), q→dst (local B,
		// reversed), dropping the duplicated junction vertices. The
		// result is a valid walk on the combined spanner; it may revisit
		// a vertex where legs overlap, which routing tolerates (Cost and
		// Hops count traversed edges).
		total := len(lp1) + len(lp2) - 1
		if len(mid) > 0 {
			total += len(mid) - 1
		}
		path = make([]int, 0, total)
		for _, l := range lp1 {
			path = append(path, sva.Glob[l])
		}
		if len(mid) > 1 {
			path = append(path, mid[1:]...)
		}
		for i := len(lp2) - 2; i >= 0; i-- {
			path = append(path, svb.Glob[lp2[i]])
		}
		cost = best
	}
	delivered, ok = true, true

	// Stretch denominator: the same stitched minimum over the base
	// tables. Exact for the same reason the spanner side is.
	sc.dbu = growF(sc.dbu, sva.Base.N())
	sc.dbv = growF(sc.dbv, svb.Base.N())
	sc.S.Dijkstra(sva.Base, int(la.Local), graph.Inf, sc.dbu)
	sc.S.Dijkstra(svb.Base, int(lb.Local), graph.Inf, sc.dbv)
	baseDist = math.Inf(1)
	if a == b {
		baseDist = sc.dbu[lb.Local]
	}
	for _, pi := range pa {
		d1 := sc.dbu[pi.Local]
		if d1 >= baseDist {
			continue
		}
		row := v.Table.DBase[int(pi.Row)*p : (int(pi.Row)+1)*p]
		for _, pj := range pb {
			if c := d1 + row[pj.Row] + sc.dbv[pj.Local]; c < baseDist {
				baseDist = c
			}
		}
	}
	if math.IsInf(baseDist, 1) {
		baseDist = 0 // spanner-delivered but base-disconnected cannot happen; defensive
	}
	return path, cost, baseDist, delivered, ok
}

// Distance answers one exact spanner distance (Inf when unreachable)
// with per-shard work only, by the same stitched minimum Route uses —
// without path reconstruction. ok is false when the table is stale.
func (v *View) Distance(sc *Scratch, src, dst int) (float64, bool) {
	if v.Table == nil || !v.TableFresh {
		return 0, false
	}
	if src == dst {
		return 0, true
	}
	la, lb := v.Loc[src], v.Loc[dst]
	a, b := int(la.Shard), int(lb.Shard)
	sva, svb := &v.Shards[a], &v.Shards[b]
	sc.du = growF(sc.du, sva.Spanner.N())
	sc.dv = growF(sc.dv, svb.Spanner.N())
	sc.S.Dijkstra(sva.Spanner, int(la.Local), graph.Inf, sc.du)
	sc.S.Dijkstra(svb.Spanner, int(lb.Local), graph.Inf, sc.dv)
	best := math.Inf(1)
	if a == b {
		best = sc.du[lb.Local]
	}
	p := v.Table.P
	for _, pi := range v.Table.ByShard[a] {
		d1 := sc.du[pi.Local]
		if d1 >= best {
			continue
		}
		row := v.Table.D[int(pi.Row)*p : (int(pi.Row)+1)*p]
		for _, pj := range v.Table.ByShard[b] {
			if c := d1 + row[pj.Row] + sc.dv[pj.Local]; c < best {
				best = c
			}
		}
	}
	return best, true
}
