// Package mis provides maximal independent set algorithms.
//
// The paper invokes the O(log* n)-round MIS algorithm of Kuhn, Moscibroda
// and Wattenhofer [11] on derived graphs that are unit ball graphs of
// constant doubling dimension (Lemmas 15 and 20). Reimplementing the full
// KMW machinery is out of scope (it is a separate paper); as documented in
// DESIGN.md we substitute Luby's classical randomized distributed MIS, which
// terminates in O(log n) rounds with high probability and provides the same
// independence/maximality contract. The spanner's output quality does not
// depend on which MIS is used — only the round count does — and the
// experiment harness reports measured rounds alongside both analytic curves.
package mis

import (
	"math/rand"
	"sort"
)

// Result is the outcome of a distributed MIS computation.
type Result struct {
	// InMIS[v] reports membership of vertex v.
	InMIS []bool
	// Rounds is the number of synchronous communication rounds consumed by
	// the protocol on the derived graph (two rounds per Luby iteration:
	// exchange random values, announce joins).
	Rounds int
}

// Luby runs Luby's randomized MIS on the graph given as adjacency lists.
// adj[v] lists the neighbors of v; the relation must be symmetric. Isolated
// vertices join the MIS in the first iteration. The rng makes runs
// deterministic under a fixed seed.
//
// Each iteration: every active vertex draws a random 64-bit priority; a
// vertex joins the MIS if its (priority, id) pair is strictly the largest in
// its active closed neighborhood; MIS vertices and their neighbors
// deactivate. Two communication rounds are charged per iteration.
func Luby(adj [][]int, rng *rand.Rand) Result {
	n := len(adj)
	res := Result{InMIS: make([]bool, n)}
	active := make([]bool, n)
	var nActive int
	for v := range active {
		active[v] = true
	}
	nActive = n
	prio := make([]uint64, n)
	for nActive > 0 {
		res.Rounds += 2
		for v := 0; v < n; v++ {
			if active[v] {
				prio[v] = rng.Uint64()
			}
		}
		var joined []int
		for v := 0; v < n; v++ {
			if !active[v] {
				continue
			}
			best := true
			for _, w := range adj[v] {
				if !active[w] {
					continue
				}
				if prio[w] > prio[v] || (prio[w] == prio[v] && w > v) {
					best = false
					break
				}
			}
			if best {
				joined = append(joined, v)
			}
		}
		for _, v := range joined {
			res.InMIS[v] = true
			if active[v] {
				active[v] = false
				nActive--
			}
			for _, w := range adj[v] {
				if active[w] {
					active[w] = false
					nActive--
				}
			}
		}
	}
	return res
}

// Greedy computes the lexicographically-first MIS by vertex ID: scan
// vertices in increasing ID order, adding a vertex whenever none of its
// neighbors has been added. Deterministic; used as the sequential reference
// implementation and for differential testing against Luby.
func Greedy(adj [][]int) []bool {
	n := len(adj)
	in := make([]bool, n)
	blocked := make([]bool, n)
	for v := 0; v < n; v++ {
		if blocked[v] {
			continue
		}
		in[v] = true
		for _, w := range adj[v] {
			blocked[w] = true
		}
	}
	return in
}

// Validate checks that in encodes a maximal independent set of the graph:
// no two MIS vertices are adjacent, and every non-MIS vertex has an MIS
// neighbor. It returns a list of violation descriptions (empty means valid).
func Validate(adj [][]int, in []bool) []string {
	var violations []string
	for v := range adj {
		if in[v] {
			for _, w := range adj[v] {
				if in[w] && v < w {
					violations = append(violations, "adjacent MIS vertices")
				}
			}
			continue
		}
		dominated := false
		for _, w := range adj[v] {
			if in[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			violations = append(violations, "undominated non-MIS vertex")
		}
	}
	sort.Strings(violations)
	return violations
}

// FromEdgePairs builds symmetric adjacency lists over n vertices from an
// unordered pair list, dropping duplicates and self-loops.
func FromEdgePairs(n int, pairs [][2]int) [][]int {
	seen := make(map[[2]int]bool)
	adj := make([][]int, n)
	for _, p := range pairs {
		a, b := p[0], p[1]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		k := [2]int{a, b}
		if seen[k] {
			continue
		}
		seen[k] = true
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	return adj
}
