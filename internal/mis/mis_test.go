package mis

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomAdj builds symmetric adjacency lists for a G(n, p) graph.
func randomAdj(rng *rand.Rand, n int, p float64) [][]int {
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				pairs = append(pairs, [2]int{u, v})
			}
		}
	}
	return FromEdgePairs(n, pairs)
}

// TestLubyProducesValidMISProperty is the main contract test: independence
// and maximality on random graphs across densities.
func TestLubyProducesValidMISProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	f := func(seed uint8) bool {
		n := 1 + int(seed)%40
		p := []float64{0.05, 0.2, 0.5, 0.9}[int(seed)%4]
		adj := randomAdj(rng, n, p)
		res := Luby(adj, rng)
		return len(Validate(adj, res.InMIS)) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestGreedyProducesValidMISProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	f := func(seed uint8) bool {
		n := 1 + int(seed)%40
		adj := randomAdj(rng, n, 0.3)
		return len(Validate(adj, Greedy(adj))) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestLubyEmptyGraphJoinsAll(t *testing.T) {
	adj := make([][]int, 5)
	rng := rand.New(rand.NewSource(1))
	res := Luby(adj, rng)
	for v, in := range res.InMIS {
		if !in {
			t.Errorf("isolated vertex %d not in MIS", v)
		}
	}
	if res.Rounds != 2 {
		t.Errorf("rounds = %d, want 2 (single iteration)", res.Rounds)
	}
}

func TestLubyCompleteGraphPicksOne(t *testing.T) {
	n := 12
	var pairs [][2]int
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			pairs = append(pairs, [2]int{u, v})
		}
	}
	adj := FromEdgePairs(n, pairs)
	rng := rand.New(rand.NewSource(2))
	res := Luby(adj, rng)
	count := 0
	for _, in := range res.InMIS {
		if in {
			count++
		}
	}
	if count != 1 {
		t.Errorf("complete graph MIS size = %d, want 1", count)
	}
}

func TestGreedyIsLexicographicallyFirst(t *testing.T) {
	// Path 0-1-2-3: greedy by ID picks {0, 2} and then 3 is blocked by 2;
	// wait: 3's only neighbor is 2 which is in — so MIS = {0, 2}.
	adj := FromEdgePairs(4, [][2]int{{0, 1}, {1, 2}, {2, 3}})
	in := Greedy(adj)
	want := []bool{true, false, true, false}
	for v := range want {
		if in[v] != want[v] {
			t.Errorf("greedy MIS[%d] = %v, want %v", v, in[v], want[v])
		}
	}
}

func TestLubyDeterministicUnderSeed(t *testing.T) {
	adjA := randomAdj(rand.New(rand.NewSource(3)), 30, 0.2)
	a := Luby(adjA, rand.New(rand.NewSource(77)))
	b := Luby(adjA, rand.New(rand.NewSource(77)))
	for v := range a.InMIS {
		if a.InMIS[v] != b.InMIS[v] {
			t.Fatal("Luby not deterministic under fixed seed")
		}
	}
	if a.Rounds != b.Rounds {
		t.Fatal("round counts differ under fixed seed")
	}
}

// TestLubyRoundsGrowSlowly sanity-checks the O(log n) w.h.p. round bound:
// rounds on a 1000-vertex random graph should be far below the vertex count.
func TestLubyRoundsGrowSlowly(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	adj := randomAdj(rng, 1000, 0.01)
	res := Luby(adj, rng)
	if res.Rounds > 60 { // 2 rounds/iter; ~30 iterations would already be extreme
		t.Errorf("Luby used %d rounds on n=1000; expected O(log n)", res.Rounds)
	}
	if errs := Validate(adj, res.InMIS); len(errs) > 0 {
		t.Errorf("invalid MIS: %v", errs)
	}
}

func TestValidateDetectsViolations(t *testing.T) {
	adj := FromEdgePairs(3, [][2]int{{0, 1}, {1, 2}})
	// Adjacent MIS vertices.
	if errs := Validate(adj, []bool{true, true, false}); len(errs) == 0 {
		t.Error("adjacent MIS vertices not detected")
	}
	// Undominated vertex (empty set).
	if errs := Validate(adj, []bool{false, false, false}); len(errs) == 0 {
		t.Error("undominated vertex not detected")
	}
	// Valid MIS.
	if errs := Validate(adj, []bool{true, false, true}); len(errs) != 0 {
		t.Errorf("valid MIS rejected: %v", errs)
	}
}

func TestFromEdgePairsDedup(t *testing.T) {
	adj := FromEdgePairs(3, [][2]int{{0, 1}, {1, 0}, {0, 1}, {2, 2}})
	if len(adj[0]) != 1 || len(adj[1]) != 1 || len(adj[2]) != 0 {
		t.Errorf("dedup failed: %v", adj)
	}
}
