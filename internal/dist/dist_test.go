package dist

import (
	"fmt"
	"testing"

	"topoctl/internal/core"
	"topoctl/internal/geom"
	"topoctl/internal/metrics"
	"topoctl/internal/ubg"
)

func distInstance(t *testing.T, n int, alpha float64, seed int64) *ubg.Instance {
	t.Helper()
	inst, err := ubg.GenerateConnected(
		geom.CloudConfig{Kind: geom.CloudUniform, N: n, Dim: 2, Seed: seed},
		ubg.Config{Alpha: alpha, Model: ubg.ModelAll, Seed: seed},
	)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

// TestDistMatchesCore is the differential test for the distributed
// implementation: on identical inputs, with the deterministic greedy MIS
// backend, the distributed build must produce exactly the spanner the
// sequential build produces — lazy updating means every node works against
// the spanner frozen at the end of the previous phase, so the per-phase
// local computations coincide (Theorem 14's argument), and the greedy MIS
// elects the same centers as sequential peeling. Luby's randomized MIS may
// elect a different (equally valid) cover, so for it the pin is the
// contract instead: a t-spanner of near-identical size, reproduced exactly
// under a fixed seed.
func TestDistMatchesCore(t *testing.T) {
	for _, tc := range []struct {
		n     int
		alpha float64
		eps   float64
		seed  int64
	}{
		{40, 0.75, 0.5, 1},
		{64, 0.75, 0.5, 2},
		{64, 0.9, 0.25, 3},
		{96, 0.75, 0.5, 4},
	} {
		t.Run(fmt.Sprintf("n=%d/alpha=%v/eps=%v", tc.n, tc.alpha, tc.eps), func(t *testing.T) {
			inst := distInstance(t, tc.n, tc.alpha, tc.seed)
			p, err := core.NewParams(tc.eps, tc.alpha, 2)
			if err != nil {
				t.Fatal(err)
			}
			seq, err := core.Build(inst.Points, inst.G, core.Options{Params: p})
			if err != nil {
				t.Fatal(err)
			}
			want := fmt.Sprint(seq.Spanner.Edges())

			// Deterministic backend: edge-for-edge equality.
			res, err := Build(inst.Points, inst.G, Options{Params: p, Seed: 7, UseGreedyMIS: true})
			if err != nil {
				t.Fatal(err)
			}
			if got := fmt.Sprint(res.Spanner.Edges()); got != want {
				t.Fatalf("distributed spanner (greedy MIS) diverged from sequential\n got: %s\nwant: %s", got, want)
			}
			if s := metrics.Stretch(inst.G, res.Spanner); s > p.T+1e-9 {
				t.Fatalf("greedy MIS: stretch %v exceeds t=%v", s, p.T)
			}

			// Randomized backend: contract equivalence + seed determinism.
			luby, err := Build(inst.Points, inst.G, Options{Params: p, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if s := metrics.Stretch(inst.G, luby.Spanner); s > p.T+1e-9 {
				t.Fatalf("luby: stretch %v exceeds t=%v", s, p.T)
			}
			if ratio := float64(luby.Spanner.M()) / float64(seq.Spanner.M()); ratio < 0.8 || ratio > 1.25 {
				t.Fatalf("luby spanner size %d diverges from sequential %d (ratio %.3f)",
					luby.Spanner.M(), seq.Spanner.M(), ratio)
			}
			luby2, err := Build(inst.Points, inst.G, Options{Params: p, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(luby.Spanner.Edges()) != fmt.Sprint(luby2.Spanner.Edges()) {
				t.Fatal("luby backend not deterministic under a fixed seed")
			}
		})
	}
}

// TestDistCommunicationDeterministicAndPositive pins the protocol
// accounting: identical options give identical round/message/word totals
// and per-phase breakdowns, and every total is positive (a build that
// charges no communication is a simulation bug).
func TestDistCommunicationDeterministicAndPositive(t *testing.T) {
	inst := distInstance(t, 64, 0.75, 5)
	p, err := core.NewParams(0.5, 0.75, 2)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Params: p, Seed: 11}
	a, err := Build(inst.Points, inst.G, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(inst.Points, inst.G, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Rounds != b.Rounds || a.Messages != b.Messages || a.Words != b.Words {
		t.Fatalf("same seed, different totals: (%d,%d,%d) vs (%d,%d,%d)",
			a.Rounds, a.Messages, a.Words, b.Rounds, b.Messages, b.Words)
	}
	if fmt.Sprint(a.Phases) != fmt.Sprint(b.Phases) {
		t.Fatalf("same seed, different phase costs:\n%v\nvs\n%v", a.Phases, b.Phases)
	}
	if a.Rounds <= 0 || a.Messages <= 0 || a.Words <= 0 {
		t.Fatalf("non-positive communication totals: rounds=%d messages=%d words=%d",
			a.Rounds, a.Messages, a.Words)
	}
	if len(a.Phases) == 0 {
		t.Fatal("no phase costs recorded")
	}
	for _, pc := range a.Phases {
		if pc.Rounds <= 0 || pc.Edges <= 0 || pc.GatherK <= 0 {
			t.Fatalf("degenerate phase cost: %+v", pc)
		}
	}
	// Per-step totals must sum to the build totals.
	var rounds int
	var msgs int64
	for _, c := range a.PerStep {
		rounds += c.Rounds
		msgs += c.Messages
	}
	if rounds != a.Rounds || msgs != a.Messages {
		t.Fatalf("per-step sums (%d rounds, %d messages) != totals (%d, %d)",
			rounds, msgs, a.Rounds, a.Messages)
	}
	// A different seed may elect different Luby centers but must still
	// match the sequential spanner (see TestDistMatchesCore); its round
	// count can differ, which is exactly why the accounting is explicit.
	c, err := Build(inst.Points, inst.G, Options{Params: p, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if c.Rounds <= 0 {
		t.Fatalf("non-positive rounds under different seed: %d", c.Rounds)
	}
}

// TestDistStatsMatchCoreCounters checks the shared work counters: the
// distributed build reports the same added-edge totals as its spanner.
func TestDistStatsMatchCoreCounters(t *testing.T) {
	inst := distInstance(t, 48, 0.75, 6)
	p, err := core.NewParams(0.5, 0.75, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Build(inst.Points, inst.G, Options{Params: p, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Spanner.M(), res.Stats.Added-res.Stats.RemovedRedundant; got != want {
		t.Fatalf("spanner has %d edges but stats say %d added - %d removed",
			got, res.Stats.Added, res.Stats.RemovedRedundant)
	}
	if res.Stats.Phases <= 0 || res.Stats.EdgesTotal != inst.G.M() {
		t.Fatalf("stats inconsistent: %+v", res.Stats)
	}
}
