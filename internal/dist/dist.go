// Package dist implements the distributed relaxed greedy algorithm of the
// paper's §3 on the synchronous message-passing simulator of internal/sim.
//
// The local computation per phase is intentionally shared with the
// sequential implementation (core.Phase0, core.SelectQueries,
// core.NeedsEdge, core.FindRedundantPairs, core.RemoveNonMIS): lazy
// updating means every node of a phase works against the spanner frozen at
// the end of the previous phase, so the distributed algorithm computes the
// same per-phase answers from k-hop-gathered local views. What differs from
// §2 is the cluster-cover construction — an MIS on the "centers within
// radius" derived graph (§3.2.1) with the highest-ID attachment rule,
// instead of sequential peeling — and, of course, the communication, which
// this package charges exactly through the sim.Network primitives:
//
//   - "gather/…" steps are k-hop flooding gathers (the dominant traffic, as
//     the paper's information-gathering structure predicts);
//   - "mis/…" steps are distributed MIS rounds on derived graphs, relayed
//     over the communication graph (Luby's algorithm by default, the
//     deterministic greedy reference when Options.UseGreedyMIS is set);
//   - "clustergraph/…" steps are the convergecast/broadcast flows that
//     assemble the Das–Narasimhan cluster graph at the cluster heads;
//   - "update/…" steps announce lazy spanner updates at phase end.
//
// Empty bins cost no rounds: no node has a query to initiate, so no
// protocol step runs.
package dist

import (
	"fmt"
	"math/rand"
	"sort"

	"topoctl/internal/cluster"
	"topoctl/internal/core"
	"topoctl/internal/fault"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/mis"
	"topoctl/internal/sim"
)

// Options configures a distributed build.
type Options struct {
	// Params are the derived algorithm constants (see core.NewParams).
	Params core.Params
	// Metric is the edge-weight metric (default Euclidean).
	Metric core.Metric
	// Seed drives the randomized MIS; runs are deterministic under a fixed
	// seed.
	Seed int64
	// UseGreedyMIS substitutes the deterministic greedy MIS for Luby's
	// randomized algorithm — the sequential reference backend used by
	// differential tests and the backend-comparison example.
	UseGreedyMIS bool
}

// PhaseCost is the communication cost of one non-empty phase.
type PhaseCost struct {
	// Bin is the weight-bin index of the phase.
	Bin int
	// Edges is the number of input edges in the bin.
	Edges int
	// GatherK is the flooding depth of the phase's k-hop gather.
	GatherK int
	// MISRounds is the number of derived-graph MIS rounds consumed by the
	// cluster-center election.
	MISRounds int
	// Rounds is the total communication rounds the phase consumed.
	Rounds int
	// Added is the number of spanner edges the phase added.
	Added int
}

// Result is a completed distributed build.
type Result struct {
	// Spanner is the output G' with weights in the chosen metric.
	Spanner *graph.Graph
	// Params echoes the constants used.
	Params core.Params
	// Stats reports the same work counters as the sequential build.
	Stats core.Stats
	// Rounds, Messages and Words are the totals charged by the simulator.
	Rounds   int
	Messages int64
	Words    int64
	// Phases reports per-phase costs for every non-empty bin, in phase
	// order.
	Phases []PhaseCost
	// PerStep breaks communication down by named protocol step.
	PerStep map[string]*sim.StepCost
}

// Build runs the distributed algorithm on the α-UBG g whose vertices are
// embedded at points (edge weights of g must be Euclidean lengths). The
// spanner it returns carries weights in opts.Metric units.
func Build(points []geom.Point, g *graph.Graph, opts Options) (*Result, error) {
	if err := opts.Params.Validate(); err != nil {
		return nil, err
	}
	if opts.Metric == (core.Metric{}) {
		opts.Metric = core.EuclideanMetric
	}
	if err := opts.Metric.Validate(); err != nil {
		return nil, err
	}
	if len(points) != g.N() {
		return nil, fmt.Errorf("dist: %d points but %d vertices", len(points), g.N())
	}
	b := &builder{
		points: points,
		g:      g,
		opts:   opts,
		p:      opts.Params,
		nw:     sim.NewNetwork(g),
		sp:     graph.New(g.N()),
		rng:    rand.New(rand.NewSource(opts.Seed)),
		search: graph.NewSearcher(g.N()),
	}
	b.run()
	return &Result{
		Spanner:  b.sp,
		Params:   b.p,
		Stats:    b.stats,
		Rounds:   b.nw.Rounds(),
		Messages: b.nw.Messages(),
		Words:    b.nw.Words(),
		Phases:   b.phases,
		PerStep:  b.nw.PerStep(),
	}, nil
}

// builder carries the mutable state of one distributed build.
type builder struct {
	points []geom.Point
	g      *graph.Graph // communication graph = input α-UBG
	opts   Options
	p      core.Params
	nw     *sim.Network
	sp     *graph.Graph // output spanner, metric weights
	rng    *rand.Rand
	search *graph.Searcher
	stats  core.Stats
	phases []PhaseCost
}

func (b *builder) run() {
	n := b.g.N()
	bins := core.NewBins(n, b.p)
	b.stats.Phases = bins.M + 1

	byBin := core.BinEdges(b.g, bins, b.opts.Metric)
	b.stats.EdgesTotal = b.g.M()
	b.stats.EdgesShort = len(byBin[0])

	// Phase 0 — PROCESS-SHORT-EDGES (§3.1): the components of the bin-0
	// graph are cliques in G (Lemma 1), so a 1-hop gather suffices for
	// every member to know its whole component; each component then runs
	// the identical local greedy computation and announces retained edges.
	if len(byBin[0]) > 0 {
		start := b.nw.Rounds()
		b.nw.Gather("phase0/gather", 1)
		added := core.Phase0(b.points, b.sp, byBin[0], b.p.T, b.opts.Metric, 0, fault.EdgeFaults)
		b.nw.NeighborExchange("update/announce", 2)
		b.stats.Added += added
		b.phases = append(b.phases, PhaseCost{
			Bin: 0, Edges: len(byBin[0]), GatherK: 1,
			Rounds: b.nw.Rounds() - start, Added: added,
		})
	}

	// Remaining non-empty bins in increasing order (BinEdges only creates
	// entries for non-empty bins; empty bins run no protocol step).
	var order []int
	for i := range byBin {
		if i > 0 {
			order = append(order, i)
		}
	}
	sort.Ints(order)
	for _, i := range order {
		b.stats.NonEmptyPhases++
		b.phase(i, bins, byBin[i])
	}
}

// phase runs PROCESS-LONG-EDGES (§3.2) for one non-empty bin.
func (b *builder) phase(i int, bins core.Bins, edges []core.EdgeInfo) {
	start := b.nw.Rounds()
	wPrev := b.opts.Metric.Weight(bins.Ceiling(i - 1)) // W_{i-1}, metric units
	radius := b.p.Delta * wPrev
	crossBound := (2*b.p.Delta + 1) * wPrev
	rescueBound := b.p.T * b.opts.Metric.Weight(bins.Ceiling(i))

	// Step (i) — cluster cover (§3.2.1): elect centers as an MIS of the
	// derived graph connecting vertices within spanner distance radius,
	// then attach every vertex to the highest-ID center in range.
	adj, degSum := b.derivedGraph(radius)
	inMIS, misRounds := b.runMIS(adj)
	var centers []int
	for v, in := range inMIS {
		if in {
			centers = append(centers, v)
		}
	}
	// An MIS is dominating, so attachment cannot fail.
	cov, err := cluster.CoverFromCenters(b.sp, radius, centers)
	if err != nil {
		panic(fmt.Sprintf("dist: MIS cover not dominating: %v", err))
	}
	gatherK := b.coverHopRadius(cov)

	// Communication for steps (i)–(ii): the k-hop gather every node uses
	// to see its cluster ball, the relayed MIS rounds, and the attachment
	// convergecast to the elected heads.
	b.nw.Gather("phase/gather", gatherK)
	for r := 0; r < misRounds; r++ {
		b.nw.DerivedMISRound("mis/centers", degSum, gatherK)
	}
	b.nw.Convergecast("clustergraph/attach", cov.Center, gatherK, 2)

	// Step (iii) — cluster graph H_{i-1} assembled at the heads via
	// convergecast of member adjacency and broadcast of the result.
	cg := cluster.BuildClusterGraph(b.sp, cov, wPrev, crossBound, rescueBound)
	b.nw.Convergecast("clustergraph/assemble", cov.Center, gatherK, 3)
	b.nw.Broadcast("clustergraph/distribute", cov.Center, gatherK, 3)
	if d := cg.MaxInterDegree(); d > b.stats.MaxInterDegree {
		b.stats.MaxInterDegree = d
	}

	// Step (ii) — query-edge selection, identical local rule to §2 so the
	// two heads of a cluster pair select the same edge independently.
	queries, st := core.SelectQueries(b.points, b.sp, cov, edges, core.SelectOpts{
		T: b.p.T, Theta: b.p.Theta, Alpha: b.p.Alpha,
	})
	b.absorbSelectStats(st)

	// Step (iv) — queries answered on the frozen cluster graph; lazy
	// updates mean every query of the phase is answered in parallel, then
	// additions are announced in one exchange.
	var added []core.EdgeInfo
	for _, q := range queries {
		b.stats.Queried++
		if core.NeedsEdge(cg.H, q, b.p.T, 0, fault.EdgeFaults) {
			added = append(added, q)
		}
	}
	for _, e := range added {
		b.sp.AddEdge(e.U, e.V, e.W)
		b.stats.Added++
	}
	b.nw.NeighborExchange("update/announce", 2)

	// Step (v) — redundancy removal via an MIS on the conflict graph over
	// this phase's additions.
	if len(added) > 1 {
		bound := b.p.T1 * b.opts.Metric.Weight(bins.Ceiling(i))
		pairs := core.FindRedundantPairs(cg.H, added, b.p.T1, bound)
		if len(pairs) > 0 {
			conflict := make([][]int, len(added))
			var conflictDeg int64
			for _, p := range pairs {
				conflict[p[0]] = append(conflict[p[0]], p[1])
				conflict[p[1]] = append(conflict[p[1]], p[0])
				conflictDeg += 2
			}
			keep, redRounds := b.runMIS(conflict)
			for r := 0; r < redRounds; r++ {
				b.nw.DerivedMISRound("mis/redundancy", conflictDeg, gatherK)
			}
			b.stats.RemovedRedundant += core.RemoveNonMIS(b.sp, added, pairs, func([][]int) []bool { return keep })
		}
	}

	b.phases = append(b.phases, PhaseCost{
		Bin: i, Edges: len(edges), GatherK: gatherK, MISRounds: misRounds,
		Rounds: b.nw.Rounds() - start, Added: len(added) - countRemoved(added, b.sp),
	})
}

// countRemoved counts how many of the phase's additions were subsequently
// removed by redundancy removal (absent from the spanner now).
func countRemoved(added []core.EdgeInfo, sp *graph.Graph) int {
	removed := 0
	for _, e := range added {
		if !sp.HasEdge(e.U, e.V) {
			removed++
		}
	}
	return removed
}

// derivedGraph connects every pair of vertices within spanner distance
// radius, returning adjacency lists and the degree sum (2× derived edges).
func (b *builder) derivedGraph(radius float64) ([][]int, int64) {
	n := b.sp.N()
	adj := make([][]int, n)
	var degSum int64
	for u := 0; u < n; u++ {
		for _, vd := range b.search.Ball(b.sp, u, radius) {
			if vd.V != u {
				adj[u] = append(adj[u], vd.V)
			}
		}
		degSum += int64(len(adj[u]))
	}
	return adj, degSum
}

// runMIS computes an MIS of the derived graph with the configured backend,
// returning membership and the derived-round count.
func (b *builder) runMIS(adj [][]int) ([]bool, int) {
	if b.opts.UseGreedyMIS {
		return mis.Greedy(adj), 1
	}
	res := mis.Luby(adj, b.rng)
	return res.InMIS, res.Rounds
}

// coverHopRadius measures the flooding depth the phase actually needs: the
// maximum hop distance (in the communication graph) from any cluster head
// to one of its members. Clusters are metric balls of the partial spanner,
// so this stays small — the locality the paper's Theorem 9 argues.
func (b *builder) coverHopRadius(cov *cluster.Cover) int {
	maxHop := 1
	for _, c := range cov.Centers {
		mem := cov.Members[c]
		if len(mem) <= 1 {
			continue
		}
		hops := b.g.BFSHops(c, -1)
		for _, v := range mem {
			if h, ok := hops[v]; ok && h > maxHop {
				maxHop = h
			}
		}
	}
	return maxHop
}

func (b *builder) absorbSelectStats(st core.SelectStats) {
	b.stats.AlreadyInSpanner += st.AlreadyInSpanner
	b.stats.SameCluster += st.SameCluster
	b.stats.Covered += st.Covered
	b.stats.Candidates += st.Candidates
	if st.MaxPerCluster > b.stats.MaxQueryEdgesPerCluster {
		b.stats.MaxQueryEdgesPerCluster = st.MaxPerCluster
	}
}
