// Package replica implements the follower side of WAL replication: it
// bootstraps from the leader's latest checkpoint, follows the frame
// stream, verifies the hash chain on every frame, and publishes each
// applied epoch as an immutable snapshot into a follower service.
//
// The client owns all failure handling: dropped streams reconnect with
// exponential backoff plus jitter, resuming from the last applied epoch;
// a 410 Gone (the follower fell out of the leader's retention window)
// triggers a fresh checkpoint bootstrap. The follower keeps serving its
// last applied topology throughout, reporting connection state and epoch
// lag through the service's replica status.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"topoctl/internal/service"
	"topoctl/internal/wal"
)

// Options configures a follower client.
type Options struct {
	// Leader is the leader's base URL, e.g. "http://127.0.0.1:7080".
	Leader string
	// Service is the follower service snapshots are published into
	// (service.NewFollower).
	Service *service.Service
	// Client is the HTTP client; nil means a default with sane timeouts
	// for a long-lived stream (connect timeout but no overall deadline).
	Client *http.Client
	// BackoffMin/BackoffMax bound the reconnect backoff (defaults 100ms
	// and 5s). Each retry doubles the wait and adds up to 50% jitter so a
	// herd of followers does not reconnect in lockstep.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Logf, when set, receives connection lifecycle messages.
	Logf func(format string, args ...any)
	// OnApply, when set, is called with the state after every applied
	// epoch — bootstrap checkpoints included. The differential tests use
	// it to compare follower state bodies against the leader's, byte for
	// byte. The state is shared with the client: treat it as read-only.
	OnApply func(st *wal.State)
}

func (o *Options) normalize() error {
	if o.Leader == "" {
		return errors.New("replica: Options.Leader required")
	}
	if o.Service == nil {
		return errors.New("replica: Options.Service required")
	}
	if o.Client == nil {
		o.Client = &http.Client{} // no overall timeout: the stream is long-lived
	}
	if o.BackoffMin <= 0 {
		o.BackoffMin = 100 * time.Millisecond
	}
	if o.BackoffMax < o.BackoffMin {
		o.BackoffMax = 5 * time.Second
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return nil
}

// errGone signals a 410 from the stream endpoint: the follower is out of
// the retention window and must re-bootstrap from a checkpoint.
var errGone = errors.New("replica: out of retention window")

// Client replicates a leader's WAL into a follower service.
type Client struct {
	opts Options

	st          *wal.State
	leaderEpoch uint64
	lastFrame   time.Time
	reconnects  uint64
}

// New validates the options and returns a client ready to Run.
func New(opts Options) (*Client, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	return &Client{opts: opts}, nil
}

// Run replicates until ctx is cancelled. It returns ctx.Err() on
// cancellation; any other exit is a bug.
func (c *Client) Run(ctx context.Context) error {
	bo := newBackoff(c.opts.BackoffMin, c.opts.BackoffMax)
	for {
		err := c.connectOnce(ctx)
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if errors.Is(err, errGone) {
			// Too far behind the ring: drop the state and take a fresh
			// checkpoint on the next attempt.
			c.opts.Logf("replica: fell out of retention at epoch %d, re-bootstrapping", c.epoch())
			c.st = nil
		}
		c.setStatus(false)

		// A clean stream end (leader restart) is not a fault spiral: the
		// ladder resets instead of doubling.
		wait := bo.next(err == nil || errors.Is(err, io.EOF))
		c.opts.Logf("replica: stream ended: %v (reconnecting in %s)", err, wait)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(wait):
		}
		c.reconnects++
	}
}

func (c *Client) epoch() uint64 {
	if c.st == nil {
		return 0
	}
	return c.st.Epoch
}

// connectOnce performs one bootstrap (if needed) plus one stream
// session, returning when the stream drops.
func (c *Client) connectOnce(ctx context.Context) error {
	if c.st == nil {
		if err := c.bootstrap(ctx); err != nil {
			return err
		}
	}
	return c.stream(ctx)
}

// bootstrap fetches the leader's latest checkpoint and publishes it.
func (c *Client) bootstrap(ctx context.Context) error {
	resp, err := c.get(ctx, "/wal/checkpoint")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: checkpoint: leader answered %s", resp.Status)
	}
	st, err := wal.NewRecordReader(resp.Body).NextCheckpoint()
	if err != nil {
		return fmt.Errorf("replica: checkpoint: %w", err)
	}
	c.st = st
	c.noteLeaderEpoch(resp.Header)
	if err := c.publish(); err != nil {
		c.st = nil
		return err
	}
	c.opts.Logf("replica: bootstrapped at epoch %d (%d live nodes)", st.Epoch, st.Live)
	return nil
}

// stream follows the frame stream from the current epoch, applying and
// publishing every frame.
func (c *Client) stream(ctx context.Context) error {
	resp, err := c.get(ctx, "/wal/stream?from="+strconv.FormatUint(c.st.Epoch, 10))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return errGone
	default:
		return fmt.Errorf("replica: stream: leader answered %s", resp.Status)
	}
	c.noteLeaderEpoch(resp.Header)
	c.setStatus(true)
	rr := wal.NewRecordReader(resp.Body)
	for {
		f, err := rr.NextFrame()
		if err != nil {
			// io.EOF: leader shut down cleanly. ErrTorn: connection cut
			// mid-record. Either way the prefix already applied is intact —
			// reconnect and resume from c.st.Epoch.
			return err
		}
		if err := c.st.Apply(f); err != nil {
			// A chain mismatch or epoch gap means this stream is not a
			// valid continuation of our state (leader restarted from an
			// older epoch, or sent damaged data). Re-bootstrap rather than
			// serve a topology we cannot verify.
			c.opts.Logf("replica: frame rejected: %v", err)
			c.st = nil
			return err
		}
		if f.Epoch > c.leaderEpoch {
			c.leaderEpoch = f.Epoch
		}
		c.lastFrame = time.Now()
		if err := c.publish(); err != nil {
			return err
		}
	}
}

// publish pushes the current state into the follower service as an
// immutable snapshot and refreshes the replica status.
func (c *Client) publish() error {
	st := c.st
	if err := c.opts.Service.PublishFrozen(st.Epoch, st.Points, st.Alive, st.Live, st.Base, st.Spanner); err != nil {
		return fmt.Errorf("replica: publish epoch %d: %w", st.Epoch, err)
	}
	if c.opts.OnApply != nil {
		c.opts.OnApply(st)
	}
	c.setStatus(true)
	return nil
}

func (c *Client) noteLeaderEpoch(h http.Header) {
	if e, err := strconv.ParseUint(h.Get(wal.EpochHeader), 10, 64); err == nil && e > c.leaderEpoch {
		c.leaderEpoch = e
	}
}

func (c *Client) setStatus(connected bool) {
	epoch := c.epoch()
	leader := c.leaderEpoch
	if leader < epoch {
		leader = epoch
	}
	age := -1.0
	if !c.lastFrame.IsZero() {
		age = time.Since(c.lastFrame).Seconds()
	}
	c.opts.Service.SetReplicaStatus(service.ReplicaStatus{
		Role:                "follower",
		Connected:           connected,
		Epoch:               epoch,
		LeaderEpoch:         leader,
		Lag:                 leader - epoch,
		LastFrameAgeSeconds: age,
		Reconnects:          c.reconnects,
	})
}

func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.opts.Leader+path, nil)
	if err != nil {
		return nil, err
	}
	return c.opts.Client.Do(req)
}
