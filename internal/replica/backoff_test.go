package replica

import (
	"testing"
	"time"
)

// TestBackoffLadder pins the deterministic shape of the ladder with an
// injected jitter source: doubling from min, the cap at max, and the
// reset on a clean stream end.
func TestBackoffLadder(t *testing.T) {
	b := newBackoff(100*time.Millisecond, 500*time.Millisecond)
	b.randInt63n = func(int64) int64 { return 0 } // jitterless

	// Failed attempts double: 100, 200, 400, then the cap holds at 500.
	for i, want := range []time.Duration{100, 200, 400, 500, 500} {
		if got := b.next(false); got != want*time.Millisecond {
			t.Fatalf("attempt %d: wait %v, want %v", i, got, want*time.Millisecond)
		}
	}

	// A clean end waits the current rung once more, then resets to min.
	if got := b.next(true); got != 500*time.Millisecond {
		t.Fatalf("clean end waited %v, want the current 500ms rung", got)
	}
	if got := b.next(false); got != 100*time.Millisecond {
		t.Fatalf("after reset: wait %v, want min again", got)
	}
}

// TestBackoffJitterBounds drives the ladder with the real jitter source
// and asserts every wait lands in [rung, 1.5×rung] — the documented "up
// to 50% added jitter" — and that the rung itself never exceeds max.
func TestBackoffJitterBounds(t *testing.T) {
	min, max := 2*time.Millisecond, 20*time.Millisecond
	b := newBackoff(min, max)
	rung := min
	for i := 0; i < 200; i++ {
		clean := i%17 == 0
		wait := b.next(clean)
		if wait < rung || wait > rung+rung/2 {
			t.Fatalf("attempt %d: wait %v outside [%v, %v]", i, wait, rung, rung+rung/2)
		}
		if clean {
			rung = min
		} else if rung *= 2; rung > max {
			rung = max
		}
		if b.cur != rung {
			t.Fatalf("attempt %d: rung %v, want %v", i, b.cur, rung)
		}
	}

	// The max-jitter edge exactly hits the 1.5× bound.
	b = newBackoff(min, max)
	b.randInt63n = func(n int64) int64 { return n - 1 }
	if got, want := b.next(false), min+min/2; got != want {
		t.Fatalf("max jitter wait %v, want exactly %v", got, want)
	}
}
