package replica

import (
	"fmt"
	"sync"

	"topoctl/internal/service"
	"topoctl/internal/wal"
)

// Leader binds a leader service's publish stream to a WAL recorder: its
// OnPublish hook builds the sealed delta frame for every committed batch
// and appends it. Because the hook runs on the service's writer goroutine
// before the batch's Mutate reply is released, a SyncAlways recorder
// makes every acknowledged mutation durable.
//
// The Leader maintains a shadow wal.State advanced through the very same
// State.Apply that followers and recovery run — so if the frame pipeline
// ever diverged from the served topology, the leader's own shadow state
// would diverge identically and the differential tests would catch it.
type Leader struct {
	rec *wal.Recorder

	mu  sync.Mutex
	st  *wal.State
	err error
}

// NewLeader wraps a recorder. recovered is the state wal.Open returned —
// nil for a fresh directory, in which case Genesis must run (with the
// service's first snapshot) before the first mutation.
func NewLeader(rec *wal.Recorder, recovered *wal.State) *Leader {
	return &Leader{rec: rec, st: recovered}
}

// Genesis initializes a fresh log from the initial published snapshot.
func (l *Leader) Genesis(t, radius float64, dim int, snap *service.Snapshot) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.st != nil {
		return fmt.Errorf("replica: genesis over an existing state (epoch %d)", l.st.Epoch)
	}
	st := &wal.State{
		Epoch: snap.Version, T: t, Radius: radius, Dim: dim,
		Points: snap.Points, Alive: snap.Alive,
		Base: snap.Base, Spanner: snap.Spanner,
	}
	for _, a := range snap.Alive {
		if a {
			st.Live++
		}
	}
	if err := l.rec.Bootstrap(st); err != nil {
		return err
	}
	l.st = st
	return nil
}

// OnPublish is the service publish hook: it frames and appends one
// committed batch. On a WAL failure (disk gone, wedged filesystem) the
// leader keeps serving but the log stops advancing; the error is latched
// and surfaced by Err, and every later publish is dropped — a follower
// re-bootstrapping will resume from the last durable epoch.
func (l *Leader) OnPublish(snap *service.Snapshot, applied []service.Op, touched []int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if l.st == nil {
		l.err = fmt.Errorf("replica: publish of version %d before genesis", snap.Version)
		return
	}
	if snap.Version != l.st.Epoch+1 {
		l.err = fmt.Errorf("replica: publish version %d does not follow WAL epoch %d", snap.Version, l.st.Epoch)
		return
	}
	ops := make([]wal.Op, len(applied))
	for i, op := range applied {
		ops[i] = wal.Op{ID: int32(op.ID), Point: op.Point}
		switch op.Kind {
		case service.OpJoin:
			ops[i].Kind = wal.OpJoin
		case service.OpLeave:
			ops[i].Kind = wal.OpLeave
		case service.OpMove:
			ops[i].Kind = wal.OpMove
		}
	}
	live := 0
	for _, a := range snap.Alive {
		if a {
			live++
		}
	}
	f := wal.BuildFrame(snap.Version, l.st.Chain, ops, touched,
		snap.Points, snap.Alive, live, snap.Base, snap.Spanner)
	if err := l.st.Apply(f); err != nil {
		l.err = fmt.Errorf("replica: shadow state rejected own frame: %w", err)
		return
	}
	if err := l.rec.Append(f, l.st); err != nil {
		l.err = err
	}
}

// Err returns the first WAL pipeline failure, nil while healthy.
func (l *Leader) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// State returns the shadow state (nil before genesis). The caller must
// treat it as read-only; it is safe to pass to Recorder.Close, which is
// the shutdown sequence: svc.Close(), then leader.Close().
func (l *Leader) State() *wal.State {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st
}

// Recorder exposes the underlying recorder so callers can mount its
// replication endpoints (HandleCheckpoint, HandleStream) next to the
// service handler.
func (l *Leader) Recorder() *wal.Recorder { return l.rec }

// Close writes the final checkpoint and closes the recorder. Call after
// the service is closed so no publish races the final checkpoint.
func (l *Leader) Close() error {
	l.mu.Lock()
	st := l.st
	l.mu.Unlock()
	return l.rec.Close(st)
}

// Abandon closes the recorder without the final checkpoint, leaving the
// directory exactly as an uncontrolled crash would: recovery must replay
// the log tail. Crash drills and the examples use it; production
// shutdown wants Close.
func (l *Leader) Abandon() error {
	return l.rec.Close(nil)
}
