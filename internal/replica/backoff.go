package replica

import (
	"math/rand"
	"time"
)

// backoff is the reconnect wait ladder: each failed attempt waits the
// current rung plus up to 50% additive jitter (so a herd of followers
// does not reconnect in lockstep), then doubles the rung up to max. A
// clean stream end — the leader restarting, not a fault spiral — resets
// the ladder to min so the follower reattaches promptly.
type backoff struct {
	min, max time.Duration
	cur      time.Duration
	// randInt63n is rand.Int63n unless a test injects a deterministic
	// source to pin the jitter bounds.
	randInt63n func(n int64) int64
}

func newBackoff(min, max time.Duration) *backoff {
	return &backoff{min: min, max: max, cur: min, randInt63n: rand.Int63n}
}

// next returns how long to wait before the upcoming reconnect attempt
// and advances the ladder: the wait is the current rung plus jitter in
// [0, rung/2]; the rung then doubles (capped at max), or resets to min
// when the previous stream ended cleanly.
func (b *backoff) next(clean bool) time.Duration {
	wait := b.cur + time.Duration(b.randInt63n(int64(b.cur)/2+1))
	if b.cur *= 2; b.cur > b.max {
		b.cur = b.max
	}
	if clean {
		b.cur = b.min
	}
	return wait
}
