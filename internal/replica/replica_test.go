package replica_test

import (
	"bytes"
	"context"

	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"topoctl/internal/dynamic"
	"topoctl/internal/geom"
	"topoctl/internal/metrics"
	"topoctl/internal/replica"
	"topoctl/internal/routing"
	"topoctl/internal/service"
	"topoctl/internal/ubg"
	"topoctl/internal/wal"
	"topoctl/internal/wal/faultfs"
)

const (
	testT      = 1.6
	testRadius = 1.0
)

// bodyLog records the canonical state body at every epoch, on both
// sides of the replication link.
type bodyLog struct {
	mu     sync.Mutex
	bodies map[uint64][]byte
}

func newBodyLog() *bodyLog { return &bodyLog{bodies: map[uint64][]byte{}} }

func (b *bodyLog) add(epoch uint64, body []byte) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.bodies[epoch] = body
}

func (b *bodyLog) get(epoch uint64) []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.bodies[epoch]
}

func (b *bodyLog) len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.bodies)
}

func testPoints(n int) []geom.Point {
	side := ubg.DensitySide(n, 2, 1, 8)
	return geom.GeneratePoints(geom.CloudConfig{
		Kind: geom.CloudUniform, N: n, Dim: 2, Side: side, Seed: 991,
	})
}

// leaderHarness is a leader service with an attached WAL recorder and
// replication endpoints, plus a per-epoch body log.
type leaderHarness struct {
	svc    *service.Service
	ld     *replica.Leader
	rec    *wal.Recorder
	bodies *bodyLog
	mux    *http.ServeMux
}

// startLeader boots (or recovers) a leader over fs. pts seeds a fresh
// deployment; on recovery the WAL state wins and pts is ignored.
func startLeader(t *testing.T, fs wal.FS, pts []geom.Point, walOpts wal.Options) *leaderHarness {
	t.Helper()
	if walOpts.Dir == "" {
		walOpts.Dir = "wal"
	}
	walOpts.FS = fs
	rec, recovered, err := wal.Open(walOpts)
	if err != nil {
		t.Fatal(err)
	}
	ld := replica.NewLeader(rec, recovered)
	bodies := newBodyLog()
	opts := service.Options{
		T: testT, Radius: testRadius,
		OnPublish: func(snap *service.Snapshot, applied []service.Op, touched []int) {
			ld.OnPublish(snap, applied, touched)
			if st := ld.State(); st != nil {
				bodies.add(st.Epoch, st.Encode())
			}
		},
	}
	var svc *service.Service
	if recovered != nil {
		side := recovered.Clone()
		eng, err := dynamic.Restore(side.Points, side.Alive, side.Base.Thaw(), side.Spanner.Thaw(),
			dynamic.Options{T: recovered.T, Radius: recovered.Radius, Dim: recovered.Dim})
		if err != nil {
			t.Fatal(err)
		}
		opts.InitialVersion = recovered.Epoch
		svc, err = service.NewFromEngine(eng, opts)
		if err != nil {
			t.Fatal(err)
		}
		bodies.add(recovered.Epoch, recovered.Encode())
	} else {
		svc, err = service.New(pts, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ld.Genesis(testT, testRadius, 2, svc.Snapshot()); err != nil {
			t.Fatal(err)
		}
		bodies.add(svc.Snapshot().Version, ld.State().Encode())
	}
	mux := http.NewServeMux()
	mux.Handle("/", svc.Handler())
	mux.HandleFunc("GET /wal/checkpoint", rec.HandleCheckpoint)
	mux.HandleFunc("GET /wal/stream", rec.HandleStream)
	return &leaderHarness{svc: svc, ld: ld, rec: rec, bodies: bodies, mux: mux}
}

// churn applies n random mutation batches (joins, leaves, moves).
func churn(t *testing.T, svc *service.Service, rng *rand.Rand, n int) {
	t.Helper()
	snap := svc.Snapshot()
	slots := len(snap.Alive)
	side := ubg.DensitySide(48, 2, 1, 8)
	for i := 0; i < n; i++ {
		var op service.Op
		switch rng.Intn(4) {
		case 0:
			op = service.Op{Kind: service.OpJoin, Point: geom.Point{rng.Float64() * side, rng.Float64() * side}}
		case 1:
			op = service.Op{Kind: service.OpLeave, ID: rng.Intn(slots)}
		default:
			op = service.Op{Kind: service.OpMove, ID: rng.Intn(slots),
				Point: geom.Point{rng.Float64() * side, rng.Float64() * side}}
		}
		if _, err := svc.Mutate([]service.Op{op}); err != nil {
			t.Fatal(err)
		}
	}
}

// startFollower spins up a follower service replicating from leaderURL.
// The returned stop function is idempotent; call it (or let t.Cleanup)
// before closing the leader's test server, or Close blocks on the open
// stream connection.
func startFollower(t *testing.T, leaderURL string, bodies *bodyLog) (*service.Service, func()) {
	t.Helper()
	fol := service.NewFollower(service.Options{})
	cl, err := replica.New(replica.Options{
		Leader:     leaderURL,
		Service:    fol,
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 20 * time.Millisecond,
		OnApply: func(st *wal.State) {
			if bodies != nil {
				bodies.add(st.Epoch, st.Encode())
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); cl.Run(ctx) }()
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cancel()
			<-done
			fol.Close()
		})
	}
	t.Cleanup(stop)
	return fol, stop
}

// waitConnected blocks until the follower has a live frame stream, so a
// subsequent churn is replicated frame by frame rather than absorbed
// into the bootstrap checkpoint.
func waitConnected(t *testing.T, fol *service.Service) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if st := fol.Stats(); st.Replica != nil && st.Replica.Connected {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("follower never connected")
}

func waitForEpoch(t *testing.T, svc *service.Service, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if snap := svc.Snapshot(); snap != nil && snap.Version >= epoch {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower never reached epoch %d", epoch)
}

// TestFollowerByteIdentical is the differential proof: under churn, the
// follower's canonical state body matches the leader's shadow state
// byte for byte at every single epoch it applies.
func TestFollowerByteIdentical(t *testing.T) {
	// Retain covers the whole test so the follower never falls out of the
	// window: every epoch after its bootstrap point must be applied and
	// compared, whether it arrives as backlog or on the live tail.
	h := startLeader(t, faultfs.New(), testPoints(48), wal.Options{Sync: wal.SyncAlways, CheckpointEvery: 16, Retain: 128})
	ts := httptest.NewServer(h.mux)
	defer ts.Close()
	defer h.ld.Close() // ends open stream handlers so ts.Close can finish
	defer h.svc.Close()

	rng := rand.New(rand.NewSource(7))
	churn(t, h.svc, rng, 20) // some history before the follower appears
	preChurn := h.ld.State().Epoch

	folBodies := newBodyLog()
	fol, stopFol := startFollower(t, ts.URL, folBodies)
	defer stopFol()
	waitConnected(t, fol)
	churn(t, h.svc, rng, 40) // live churn while the follower streams

	last := h.ld.State().Epoch
	waitForEpoch(t, fol, last)
	if err := h.ld.Err(); err != nil {
		t.Fatal(err)
	}

	compared := 0
	for e := uint64(1); e <= last; e++ {
		want := h.bodies.get(e)
		got := folBodies.get(e)
		if got == nil {
			continue // before the follower's bootstrap point
		}
		if want == nil {
			t.Fatalf("epoch %d: follower applied an epoch the leader never logged", e)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("epoch %d: follower state body differs from leader", e)
		}
		compared++
	}
	// Not every churn op commits a new epoch (a leave of a dead slot is a
	// no-op), so the bar is the live-churn window actually published.
	if want := int(last - preChurn); compared < want || want == 0 {
		t.Fatalf("compared %d epochs, want at least the %d live-churn epochs", compared, want)
	}

	// The follower must now answer routes on the identical topology.
	snap := fol.Snapshot()
	if snap.Version != last {
		t.Fatalf("follower serves version %d, want %d", snap.Version, last)
	}
	res, err := fol.Route(routing.SchemeShortestPath, 0, 1)
	if err == nil && res.Route.Delivered {
		lres, lerr := h.svc.Route(routing.SchemeShortestPath, 0, 1)
		if lerr != nil || lres.Route.Cost != res.Route.Cost {
			t.Fatalf("follower route cost %v != leader %v (err %v)", res.Route.Cost, lres.Route.Cost, lerr)
		}
	}

	// Replica status reports a caught-up, connected link.
	st := fol.Stats()
	if st.Replica == nil || !st.Replica.Connected || st.Replica.Lag != 0 {
		t.Fatalf("replica status = %+v, want connected with zero lag", st.Replica)
	}
}

// cutWriter aborts the connection after a byte budget — a mid-frame
// network cut from the follower's point of view.
type cutWriter struct {
	http.ResponseWriter
	budget int
}

func (c *cutWriter) Write(p []byte) (int, error) {
	if c.budget <= 0 {
		panic(http.ErrAbortHandler)
	}
	if len(p) > c.budget {
		c.ResponseWriter.Write(p[:c.budget])
		c.budget = 0
		if f, ok := c.ResponseWriter.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler)
	}
	c.budget -= len(p)
	return c.ResponseWriter.Write(p)
}

func (c *cutWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestStreamCutsMidFrame serves the first several stream connections
// through a writer that dies partway into a record. The follower must
// reconnect, resume from its applied prefix, and still converge to
// byte-identical state.
func TestStreamCutsMidFrame(t *testing.T) {
	h := startLeader(t, faultfs.New(), testPoints(48), wal.Options{Sync: wal.SyncAlways, CheckpointEvery: 16})

	var mu sync.Mutex
	conns := 0
	mux := http.NewServeMux()
	mux.HandleFunc("GET /wal/checkpoint", h.rec.HandleCheckpoint)
	mux.HandleFunc("GET /wal/stream", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n := conns
		conns++
		mu.Unlock()
		if n < 6 {
			// Budgets stagger across record boundaries: headers, bodies,
			// and boundaries all get hit.
			h.rec.HandleStream(&cutWriter{ResponseWriter: w, budget: 90 + 131*n}, r)
			return
		}
		h.rec.HandleStream(w, r)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	defer h.ld.Close()
	defer h.svc.Close()

	rng := rand.New(rand.NewSource(11))
	folBodies := newBodyLog()
	fol, stopFol := startFollower(t, ts.URL, folBodies)
	defer stopFol()
	waitConnected(t, fol)
	// Pace the churn so frames arrive on the live stream (and its budgeted
	// cuts) rather than all landing in one reconnect's backlog.
	for i := 0; i < 50; i++ {
		churn(t, h.svc, rng, 1)
		time.Sleep(time.Millisecond)
	}

	last := h.ld.State().Epoch
	waitForEpoch(t, fol, last)
	mu.Lock()
	sawCuts := conns
	mu.Unlock()
	// The first connection's 90-byte budget cannot survive 50 frames, so
	// at least one cut-and-resume cycle must have happened; usually several.
	if sawCuts < 2 {
		t.Fatalf("only %d stream connections; the cut path never exercised", sawCuts)
	}
	for e := uint64(1); e <= last; e++ {
		if got := folBodies.get(e); got != nil {
			if want := h.bodies.get(e); !bytes.Equal(got, want) {
				t.Fatalf("epoch %d: follower diverged across reconnects", e)
			}
		}
	}
	// Each applied epoch must have arrived exactly once (duplicate frames
	// after a resume would fail Apply's epoch check and kill the link).
	if st := fol.Stats(); st.Replica == nil || st.Replica.Epoch != last {
		t.Fatalf("replica status %+v, want epoch %d", st.Replica, last)
	}
}

// statusRecorder notes the response status a wrapped handler wrote, for
// asserting which branch (200 stream vs 410 Gone) a connection took.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (s *statusRecorder) WriteHeader(code int) {
	s.code = code
	s.ResponseWriter.WriteHeader(code)
}

func (s *statusRecorder) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Test410MidStream exercises the full fall-out-and-recover cycle on a
// live follower: its stream is cut mid-frame, every reconnect attempt is
// refused while the leader churns the retention ring past the follower's
// epoch, and when connections resume the leader answers 410 — which must
// trigger a checkpoint re-bootstrap and end in byte-identical convergence.
func Test410MidStream(t *testing.T) {
	h := startLeader(t, faultfs.New(), testPoints(48), wal.Options{Sync: wal.SyncAlways, CheckpointEvery: 4, Retain: 4})

	var mu sync.Mutex
	conns, saw410 := 0, 0
	outage := true // refuses reconnects until the ring has moved on
	mux := http.NewServeMux()
	mux.HandleFunc("GET /wal/checkpoint", h.rec.HandleCheckpoint)
	mux.HandleFunc("GET /wal/stream", func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n := conns
		conns++
		down := outage
		mu.Unlock()
		if n > 0 && down {
			panic(http.ErrAbortHandler) // outage window: the link stays dead
		}
		var rec *statusRecorder
		if n == 0 {
			// The first session dies partway into a record once the churn
			// below has pushed enough bytes.
			rec = &statusRecorder{ResponseWriter: &cutWriter{ResponseWriter: w, budget: 256}}
		} else {
			rec = &statusRecorder{ResponseWriter: w}
		}
		h.rec.HandleStream(rec, r)
		if rec.code == http.StatusGone {
			mu.Lock()
			saw410++
			mu.Unlock()
		}
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()
	defer h.ld.Close()
	defer h.svc.Close()

	folBodies := newBodyLog()
	fol, stopFol := startFollower(t, ts.URL, folBodies)
	defer stopFol()
	waitConnected(t, fol)
	// Connected flips on the bootstrap publish, before the stream request
	// lands — wait for the actual stream session so the churn below flows
	// (and dies) through the budgeted first connection.
	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		n := conns
		mu.Unlock()
		if n > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower never opened a stream connection")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Churn far past Retain=4 while the follower cannot reconnect: its
	// next resume point is guaranteed out of the window.
	rng := rand.New(rand.NewSource(19))
	churn(t, h.svc, rng, 30)
	mu.Lock()
	outage = false
	mu.Unlock()

	last := h.ld.State().Epoch
	waitForEpoch(t, fol, last)

	mu.Lock()
	gone := saw410
	mu.Unlock()
	if gone == 0 {
		t.Fatal("no stream request was answered 410; the re-bootstrap path never exercised")
	}
	if got, want := folBodies.get(last), h.bodies.get(last); !bytes.Equal(got, want) {
		t.Fatalf("follower diverged after 410 re-bootstrap (got %d bytes)", len(got))
	}
	st := fol.Stats()
	if st.Replica == nil || st.Replica.Reconnects == 0 {
		t.Fatalf("replica status %+v, want reconnects > 0", st.Replica)
	}
}

// TestEpochLagStalledLeader pins the lag metric against a leader that
// serves a real checkpoint, advertises a far-ahead epoch in the
// response headers, and then never sends a frame: the follower must
// report Connected with Lag exactly advertised − applied.
func TestEpochLagStalledLeader(t *testing.T) {
	// A real harness mints the checkpoint bytes the fake leader serves.
	h := startLeader(t, faultfs.New(), testPoints(48), wal.Options{Sync: wal.SyncAlways, CheckpointEvery: 4})
	defer h.ld.Close()
	defer h.svc.Close()
	rng := rand.New(rand.NewSource(29))
	churn(t, h.svc, rng, 10)

	rr := httptest.NewRecorder()
	h.rec.HandleCheckpoint(rr, httptest.NewRequest(http.MethodGet, "/wal/checkpoint", nil))
	if rr.Code != http.StatusOK {
		t.Fatalf("checkpoint: status %d", rr.Code)
	}
	ckpt := rr.Body.Bytes()
	st, err := wal.NewRecordReader(bytes.NewReader(ckpt)).NextCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	stalled := st.Epoch + 1000
	hdr := strconv.FormatUint(stalled, 10)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /wal/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(wal.EpochHeader, hdr)
		w.Write(ckpt)
	})
	mux.HandleFunc("GET /wal/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(wal.EpochHeader, hdr)
		w.WriteHeader(http.StatusOK)
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done() // stalled: headers went out, frames never do
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	fol, stopFol := startFollower(t, ts.URL, nil)
	defer stopFol()

	deadline := time.Now().Add(10 * time.Second)
	for {
		rs := fol.Stats().Replica
		if rs != nil && rs.Connected && rs.Epoch == st.Epoch &&
			rs.LeaderEpoch == stalled && rs.Lag == stalled-st.Epoch {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica status %+v, want connected at epoch %d with lag %d",
				rs, st.Epoch, stalled-st.Epoch)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRetentionGone pins the 410 contract: a stream request from before
// the in-memory ring answers Gone, and a live follower that far behind
// re-bootstraps from the checkpoint and converges anyway.
func TestRetentionGone(t *testing.T) {
	h := startLeader(t, faultfs.New(), testPoints(48), wal.Options{Sync: wal.SyncAlways, CheckpointEvery: 4, Retain: 4})
	ts := httptest.NewServer(h.mux)
	defer ts.Close()
	defer h.ld.Close()
	defer h.svc.Close()

	rng := rand.New(rand.NewSource(13))
	churn(t, h.svc, rng, 30)

	resp, err := http.Get(ts.URL + "/wal/stream?from=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("stream from epoch 1 after 30 epochs: status %d, want 410", resp.StatusCode)
	}

	// A follower that bootstraps now and keeps up stays converged.
	folBodies := newBodyLog()
	fol, stopFol := startFollower(t, ts.URL, folBodies)
	defer stopFol()
	churn(t, h.svc, rng, 10)
	last := h.ld.State().Epoch
	waitForEpoch(t, fol, last)
	if got, want := folBodies.get(last), h.bodies.get(last); !bytes.Equal(got, want) {
		t.Fatalf("follower diverged after re-bootstrap window")
	}
}

// TestKillRecoverLoop is the crash-recovery invariant test: repeatedly
// churn, crash without any shutdown path, recover, and assert that the
// recovered service (a) lost nothing that was acknowledged (SyncAlways),
// (b) serves a topology whose spanner stretch is within t, and (c) keeps
// accepting mutations.
func TestKillRecoverLoop(t *testing.T) {
	fs := faultfs.New()
	rng := rand.New(rand.NewSource(17))
	var acked uint64
	var ackedBody []byte

	for round := 0; round < 5; round++ {
		h := startLeader(t, fs, testPoints(48), wal.Options{Sync: wal.SyncAlways, CheckpointEvery: 7})
		st := h.ld.State()
		if round > 0 {
			if st.Epoch != acked {
				t.Fatalf("round %d: recovered epoch %d, want acknowledged %d", round, st.Epoch, acked)
			}
			if !bytes.Equal(st.Encode(), ackedBody) {
				t.Fatalf("round %d: recovered state body differs from acknowledged", round)
			}
		}

		// The recovered topology must satisfy the spanner contract before
		// serving: stretch ≤ t against the base graph.
		snap := h.svc.Snapshot()
		if s := metrics.Stretch(snap.Base, snap.Spanner); s > testT+1e-9 {
			t.Fatalf("round %d: recovered spanner stretch %v > t=%v", round, s, testT)
		}
		if !h.svc.Ready() {
			t.Fatalf("round %d: recovered service not ready", round)
		}

		churn(t, h.svc, rng, 9+round) // crosses checkpoint boundaries on some rounds
		if err := h.ld.Err(); err != nil {
			t.Fatalf("round %d: wal pipeline: %v", round, err)
		}
		st = h.ld.State()
		acked, ackedBody = st.Epoch, st.Encode()

		h.svc.Close() // stop the writer; the "kill" is the un-closed recorder
		fs.Crash()    // power off: whatever was not fsynced is gone
	}

	// Final recovery, then verify routes still answer on the survivor.
	h := startLeader(t, fs, testPoints(48), wal.Options{Sync: wal.SyncAlways, CheckpointEvery: 7})
	defer h.svc.Close()
	defer h.ld.Close()
	if got := h.ld.State().Epoch; got != acked {
		t.Fatalf("final recovery at epoch %d, want %d", got, acked)
	}
	snap := h.svc.Snapshot()
	routed := 0
	for src := 0; src < len(snap.Alive) && routed < 5; src++ {
		for dst := len(snap.Alive) - 1; dst > src && routed < 5; dst-- {
			if !snap.Alive[src] || !snap.Alive[dst] {
				continue
			}
			res, err := h.svc.Route(routing.SchemeShortestPath, src, dst)
			if err != nil {
				t.Fatalf("route(%d,%d) after recovery: %v", src, dst, err)
			}
			if res.Route.Delivered {
				if res.Stretch > testT+1e-9 {
					t.Fatalf("route(%d,%d) stretch %v > t", src, dst, res.Stretch)
				}
				routed++
			}
		}
	}
	if routed == 0 {
		t.Fatal("no routable pair survived recovery")
	}
}

// TestLeaderRestartFollowerResumes restarts the leader under a follower:
// the follower must survive the outage and resume on the recovered
// leader without diverging (the hash chain spans the restart).
func TestLeaderRestartFollowerResumes(t *testing.T) {
	fs := faultfs.New()
	h := startLeader(t, fs, testPoints(48), wal.Options{Sync: wal.SyncAlways, CheckpointEvery: 8})
	ts := httptest.NewServer(h.mux)

	rng := rand.New(rand.NewSource(23))
	churn(t, h.svc, rng, 15)

	folBodies := newBodyLog()
	// A stable URL across leader restarts: proxy through a swappable
	// backend address.
	var urlMu sync.Mutex
	leaderURL := ""
	setURL := func(u string) { urlMu.Lock(); defer urlMu.Unlock(); leaderURL = u }
	getURL := func() string { urlMu.Lock(); defer urlMu.Unlock(); return leaderURL }
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Propagate the follower's request context so a follower disconnect
		// tears down the backend stream too — otherwise an idle stream pins
		// the leader's server shut-down.
		preq, err := http.NewRequestWithContext(r.Context(), http.MethodGet, getURL()+r.URL.String(), nil)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		resp, err := http.DefaultClient.Do(preq)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		for k, vs := range resp.Header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(resp.StatusCode)
		flusher, _ := w.(http.Flusher)
		buf := make([]byte, 512)
		for {
			n, rerr := resp.Body.Read(buf)
			if n > 0 {
				if _, werr := w.Write(buf[:n]); werr != nil {
					return
				}
				if flusher != nil {
					flusher.Flush()
				}
			}
			if rerr != nil {
				return
			}
		}
	}))
	defer proxy.Close()
	setURL(ts.URL)

	fol, stopFol := startFollower(t, proxy.URL, folBodies)
	churn(t, h.svc, rng, 10)
	waitForEpoch(t, fol, h.ld.State().Epoch)

	// Clean leader shutdown and restart from disk.
	stopped := h.ld.State().Epoch
	h.svc.Close()
	if err := h.ld.Close(); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	h2 := startLeader(t, fs, nil, wal.Options{Sync: wal.SyncAlways, CheckpointEvery: 8})
	defer h2.svc.Close()
	defer h2.ld.Close()
	if h2.ld.State().Epoch != stopped {
		t.Fatalf("leader restarted at epoch %d, want %d", h2.ld.State().Epoch, stopped)
	}
	ts2 := httptest.NewServer(h2.mux)
	defer ts2.Close()
	// Registered after ts2.Close so it runs first: the follower must stop
	// (ending its proxied stream) before ts2.Close waits out connections.
	defer stopFol()
	setURL(ts2.URL)

	churn(t, h2.svc, rng, 10)
	last := h2.ld.State().Epoch
	waitForEpoch(t, fol, last)
	for e := stopped + 1; e <= last; e++ {
		if got, want := folBodies.get(e), h2.bodies.get(e); got == nil || !bytes.Equal(got, want) {
			t.Fatalf("epoch %d: follower diverged across the leader restart (got %d bytes)", e, len(got))
		}
	}
}
