package service

import (
	"fmt"
	"slices"
	"sync"
	"time"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/labels"
	"topoctl/internal/metrics"
	"topoctl/internal/routing"
	"topoctl/internal/shard"
)

// Snapshot is one immutable, internally consistent view of the topology:
// slot-indexed node positions, the base connectivity graph and maintained
// t-spanner as frozen CSR graphs (graph.Frozen), a router over the
// spanner, a fresh LRU route cache, and a reference to the service's
// searcher pool. Readers load the current snapshot with a single atomic
// pointer read and then work entirely against frozen state — a concurrent
// mutation batch swaps in a successor snapshot but can never alter this
// one, so every answer a snapshot gives is consistent with exactly one
// topology version (no torn reads by construction). Because the graphs are
// frozen at export, successive snapshots share the storage of every
// adjacency row the mutation batch did not touch.
type Snapshot struct {
	// Version increments with every applied mutation batch (1 = initial).
	Version uint64
	// T is the spanner stretch bound routes are served under.
	T float64
	// Points holds slot-indexed positions; nil for free (departed) slots.
	Points []geom.Point
	// Alive marks which slots hold live nodes.
	Alive []bool
	// Base is the connectivity graph (radius model) at this version.
	Base *graph.Frozen
	// Spanner is the maintained t-spanner routes are forwarded on.
	Spanner *graph.Frozen

	router    *routing.Router
	searchers *searcherPool // shared with the service; see acquire
	cache     *routeCache
	ctr       *counters // service-lifetime counters, shared across snapshots

	// Sharded serving state, nil/empty when Options.Shards ≤ 1. view is
	// the per-shard face of the same export Base/Spanner came from;
	// shortest-path queries answer through it (portal stitching) with
	// one fresh route cache per shard, keyed to the owning shard of the
	// canonical source. sctr and scratch are service-lifetime per-shard
	// counters and scratch pools, shared across snapshots.
	view        *shard.View
	shardCaches []*routeCache
	sctr        []shardCounter
	scratch     []*scratchPool
	// oracle is the hub-label distance oracle over Spanner, nil when
	// Options.Labels is off (then Distance always searches). Immutable,
	// like everything else here; successors carry their own.
	oracle *labels.Oracle

	live   int
	bboxLo geom.Point
	bboxHi geom.Point
	// analyzeTimeout caps each /analyze scan (0 = uncapped); see
	// Options.AnalyzeTimeout.
	analyzeTimeout time.Duration

	// The live stretch estimate is computed lazily on first demand (a
	// /stats call), not on the swap path, and memoized for the snapshot's
	// lifetime.
	stretchOnce   sync.Once
	stretchRes    metrics.StretchSample
	stretchSample int
	seed          int64
}

// RouteResult is one answered route query, stamped with the snapshot
// version that produced it.
type RouteResult struct {
	Route routing.Route
	// Stretch is route cost over the base-graph shortest-path cost on the
	// same snapshot (1 for s==t; 0 when undelivered or base-disconnected).
	Stretch float64
	// Version is the topology version this result is valid against.
	Version uint64
	// Cached reports whether the result was served from the route cache.
	Cached bool
}

// Route answers one route query against this frozen topology version.
// src/dst must name live nodes (ErrUnknownNode otherwise). Results are
// memoized in the snapshot's LRU cache keyed by (scheme, src, dst) — with
// the endpoints canonicalized to (min, max) order for the shortest-path
// scheme, which is symmetric on an undirected topology: one cache entry
// then serves both query orientations (a flipped hit returns a reversed
// copy of the cached path), doubling the cache's effective capacity. The
// geographic schemes (greedy, compass) are direction-dependent — the
// forwarding decision at each hop depends on which endpoint is the
// destination — so their keys keep the requested orientation.
func (s *Snapshot) Route(scheme routing.Scheme, src, dst int) (RouteResult, error) {
	if err := s.checkNode(src); err != nil {
		return RouteResult{}, err
	}
	if err := s.checkNode(dst); err != nil {
		return RouteResult{}, err
	}
	s.ctr.routes.Add(1)
	key := routeKey{scheme: scheme, src: int32(src), dst: int32(dst)}
	flipped := false
	if scheme == routing.SchemeShortestPath && src > dst {
		key.src, key.dst = key.dst, key.src
		flipped = true
	}
	// Sharded serving routes the query to the owning shard of the
	// canonical source: its route cache, its counters, and (on a miss)
	// its scratch pool — concurrent readers of different shards share
	// nothing version-specific.
	cache := s.cache
	var sct *shardCounter
	if s.view != nil && scheme == routing.SchemeShortestPath {
		sh := int(s.view.Loc[key.src].Shard)
		cache = s.shardCaches[sh]
		sct = &s.sctr[sh]
		sct.queries.Add(1)
	}
	if r, ok := cache.get(key); ok {
		if sct != nil {
			sct.cacheHits.Add(1)
		}
		if r.Route.Delivered {
			s.ctr.delivered.Add(1)
		}
		if flipped {
			// A delivered path reverses; an undelivered shortest-path route
			// carries only its source (deliverability is symmetric, the
			// failure prefix is not), which must be this query's source.
			if r.Route.Delivered {
				r.Route.Path = reversedPath(r.Route.Path)
			} else {
				r.Route.Path = []int{src}
			}
		}
		r.Cached = true
		return r, nil
	}
	if sct != nil {
		sct.cacheMiss.Add(1)
		// Portal-stitched answer: per-shard work only, exact vs the
		// global search below. A stale portal table (PortalRefresh > 1,
		// mid-churn) declines and the global path takes over.
		if res, ok := s.portalRoute(src, dst); ok {
			if res.Route.Delivered {
				s.ctr.delivered.Add(1)
			}
			stored := res
			if flipped {
				if res.Route.Delivered {
					stored.Route.Path = reversedPath(res.Route.Path)
				} else {
					stored.Route.Path = []int{dst}
				}
			}
			cache.put(key, stored)
			return res, nil
		}
	}
	srch := s.acquire()
	rt, err := s.router.RouteWith(srch, scheme, src, dst)
	if err != nil {
		s.release(srch)
		return RouteResult{}, err
	}
	if rt.Delivered {
		s.ctr.delivered.Add(1)
	}
	res := RouteResult{Route: rt, Version: s.Version}
	if rt.Delivered {
		if base, ok := srch.DijkstraTarget(s.Base, src, dst, graph.Inf); ok {
			if base > 0 {
				res.Stretch = rt.Cost / base
			} else {
				res.Stretch = 1 // s == t
			}
		}
	}
	s.release(srch)
	// Store in canonical orientation: cost, stretch, and deliverability are
	// symmetric for shortest-path routes, only the path direction flips
	// (and an undelivered route's single-vertex failure prefix becomes the
	// canonical source).
	stored := res
	if flipped {
		if res.Route.Delivered {
			stored.Route.Path = reversedPath(res.Route.Path)
		} else {
			stored.Route.Path = []int{dst}
		}
	}
	cache.put(key, stored)
	return res, nil
}

// portalRoute answers one shortest-path query through the shard view:
// local Dijkstras inside the two endpoint shards stitched through the
// precomputed inter-portal tables. The second result is false when the
// view declines (stale portal table) and the caller must run the global
// search instead; when true, the answer is exact — equal cost, stretch,
// and deliverability to the global bidirectional Dijkstra over the
// combined snapshot.
func (s *Snapshot) portalRoute(src, dst int) (RouteResult, bool) {
	pool := s.scratch[s.view.Loc[src].Shard]
	sc := pool.acquire()
	gs := s.acquire()
	path, cost, baseDist, delivered, ok := s.view.Route(sc, gs, src, dst)
	s.release(gs)
	pool.release(sc)
	if !ok {
		return RouteResult{}, false
	}
	res := RouteResult{
		Route:   routing.Route{Delivered: delivered, Path: path, Cost: cost},
		Version: s.Version,
	}
	if delivered {
		if baseDist > 0 {
			res.Stretch = cost / baseDist
		} else {
			res.Stretch = 1 // src == dst; delivered-but-base-disconnected cannot happen
		}
	}
	return res, true
}

// cacheEntries sums the resident entries across this snapshot's caches
// (the global one plus the per-shard ones when sharded).
func (s *Snapshot) cacheEntries() int {
	n := s.cache.len()
	for _, c := range s.shardCaches {
		n += c.len()
	}
	return n
}

// DistanceResult is one answered point-to-point distance query.
type DistanceResult struct {
	// Distance is the exact spanner shortest-path distance (0 when
	// unreachable — check Reachable; JSON cannot carry +Inf).
	Distance float64 `json:"distance"`
	// Reachable reports whether any spanner path connects the endpoints.
	Reachable bool `json:"reachable"`
	// FromLabels reports whether the hub-label oracle certified the answer
	// (false: served by a bidirectional Dijkstra fallback). The value is
	// exact either way.
	FromLabels bool `json:"from_labels"`
	// Version is the topology version this result is valid against.
	Version uint64 `json:"version"`
}

// Distance answers one exact point-to-point distance query against this
// frozen topology version: hub labels first when the snapshot carries an
// oracle (allocation-free), bidirectional Dijkstra otherwise or whenever
// the oracle declines to certify. src/dst must name live nodes.
func (s *Snapshot) Distance(src, dst int) (DistanceResult, error) {
	if err := s.checkNode(src); err != nil {
		return DistanceResult{}, err
	}
	if err := s.checkNode(dst); err != nil {
		return DistanceResult{}, err
	}
	srch := s.acquire()
	d, fromLabels, err := s.router.Distance(srch, src, dst)
	s.release(srch)
	if err != nil {
		return DistanceResult{}, err
	}
	if fromLabels {
		s.ctr.labelHits.Add(1)
	} else {
		s.ctr.labelFalls.Add(1)
	}
	res := DistanceResult{FromLabels: fromLabels, Version: s.Version}
	if d < graph.Inf {
		res.Distance, res.Reachable = d, true
	}
	return res, nil
}

// reversedPath returns a reversed copy of path. Cached paths are shared
// with every reader that hits the entry, so the reversal must not happen
// in place.
func reversedPath(path []int) []int {
	out := slices.Clone(path)
	slices.Reverse(out)
	return out
}

// Neighbor is one spanner adjacency of a queried node.
type Neighbor struct {
	ID     int        `json:"id"`
	Weight float64    `json:"weight"`
	Point  geom.Point `json:"point"`
}

// Neighbors returns the live node's position and its spanner adjacencies
// (plus its base-graph degree, to show how much the spanner thinned).
func (s *Snapshot) Neighbors(id int) (geom.Point, []Neighbor, int, error) {
	if err := s.checkNode(id); err != nil {
		return nil, nil, 0, err
	}
	hs := s.Spanner.Neighbors(id)
	out := make([]Neighbor, len(hs))
	for i, h := range hs {
		out[i] = Neighbor{ID: h.To, Weight: h.W, Point: s.Points[h.To]}
	}
	return s.Points[id], out, s.Base.Degree(id), nil
}

// Live returns the number of live nodes at this version.
func (s *Snapshot) Live() int { return s.live }

// StretchEstimate measures the worst observed stretch of the spanner over
// a deterministic sample of base edges (exact when the base graph has at
// most the configured sample size of edges). The measurement is
// metrics.StretchSampled — a seeded partial Fisher–Yates draw over edge
// ranks with O(k) memory, so a million-edge base graph never materializes
// its edge list just to be spot-checked. The first call on a snapshot
// computes it; later calls return the memoized value. The second result
// reports whether the value is exact; StretchDetail exposes the
// confidence bound the sample size buys.
func (s *Snapshot) StretchEstimate() (float64, bool) {
	s.stretchOnce.Do(func() {
		s.stretchRes = metrics.StretchSampled(s.Base, s.Spanner, s.stretchSample, s.seed+int64(s.Version))
	})
	return s.stretchRes.Estimate, s.stretchRes.Exact
}

// StretchDetail returns the full sampled-stretch result for this snapshot,
// including the population size, sample size, and the one-sided confidence
// bound (at most ViolationFraction of base edges may exceed Estimate, with
// probability Confidence). Memoized together with StretchEstimate.
func (s *Snapshot) StretchDetail() metrics.StretchSample {
	s.StretchEstimate()
	return s.stretchRes
}

// checkNode validates that id names a live node in this snapshot.
func (s *Snapshot) checkNode(id int) error {
	if id < 0 || id >= len(s.Alive) || !s.Alive[id] {
		return fmt.Errorf("%w: %d", ErrUnknownNode, id)
	}
	return nil
}

// acquire takes a Searcher from the service-wide lazy pool (allocating
// on demand when empty — never at construction, never blocking). Under
// steady load each P keeps reusing the same warmed scratch arrays, and
// because Searchers carry no graph state they migrate freely across
// snapshot generations.
func (s *Snapshot) acquire() *graph.Searcher {
	return s.searchers.acquire(len(s.Alive))
}

// release returns a Searcher to the pool, dropping it when the pool is
// already full.
func (s *Snapshot) release(srch *graph.Searcher) {
	s.searchers.release(srch)
}
