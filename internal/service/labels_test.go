package service

import (
	"math"
	"math/rand"
	"net/http/httptest"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/ubg"
)

// liveIDs collects the live slots of a snapshot.
func liveIDs(snap *Snapshot) []int {
	var ids []int
	for id, a := range snap.Alive {
		if a {
			ids = append(ids, id)
		}
	}
	return ids
}

// checkDistances pins snap.Distance against a direct bidirectional search
// on the snapshot's own spanner for sampled live pairs, and returns how
// many answers the label oracle certified.
func checkDistances(t *testing.T, snap *Snapshot, rng *rand.Rand, pairs int) (hits int) {
	t.Helper()
	ids := liveIDs(snap)
	if len(ids) < 2 {
		return 0
	}
	srch := graph.AcquireSearcher(len(snap.Alive))
	defer graph.ReleaseSearcher(srch)
	for i := 0; i < pairs; i++ {
		s, d := ids[rng.Intn(len(ids))], ids[rng.Intn(len(ids))]
		res, err := snap.Distance(s, d)
		if err != nil {
			t.Fatal(err)
		}
		ref, ok := srch.DijkstraTarget(snap.Spanner, s, d, graph.Inf)
		if res.Reachable != ok {
			t.Fatalf("Distance(%d,%d) reachable=%v, reference %v", s, d, res.Reachable, ok)
		}
		if ok && math.Abs(res.Distance-ref) > 1e-9*(1+math.Abs(ref)) {
			t.Fatalf("Distance(%d,%d) = %v (fromLabels=%v), reference %v", s, d, res.Distance, res.FromLabels, ref)
		}
		if res.Version != snap.Version {
			t.Fatalf("result version %d != snapshot version %d", res.Version, snap.Version)
		}
		if res.FromLabels {
			hits++
		}
	}
	return hits
}

// TestDistanceLabelsDifferentialUnderChurn is the serving-layer leg of the
// differential harness: a labels-enabled service is churned through
// join/leave/move batches and every /distance answer — label hit or search
// fallback — must equal a direct search on the same snapshot's spanner.
func TestDistanceLabelsDifferentialUnderChurn(t *testing.T) {
	svc := testService(t, 72, Options{Labels: true})
	rng := rand.New(rand.NewSource(9))
	side := ubg.DensitySide(72, 2, 1, 8)

	if hits := checkDistances(t, svc.Snapshot(), rng, 60); hits == 0 {
		t.Fatal("fresh labels-enabled service answered no query from labels")
	}

	for batch := 0; batch < 12; batch++ {
		var ops []Op
		for k := 0; k < 3; k++ {
			switch rng.Intn(4) {
			case 0, 1:
				ops = append(ops, Op{Kind: OpJoin, Point: geom.Point{rng.Float64() * side, rng.Float64() * side}})
			case 2:
				ids := liveIDs(svc.Snapshot())
				if len(ids) > 8 {
					ops = append(ops, Op{Kind: OpLeave, ID: ids[rng.Intn(len(ids))]})
				}
			default:
				ids := liveIDs(svc.Snapshot())
				if len(ids) > 0 {
					ops = append(ops, Op{
						Kind:  OpMove,
						ID:    ids[rng.Intn(len(ids))],
						Point: geom.Point{rng.Float64() * side, rng.Float64() * side},
					})
				}
			}
		}
		if len(ops) == 0 {
			continue
		}
		if _, err := svc.Mutate(ops); err != nil {
			t.Fatal(err)
		}
		checkDistances(t, svc.Snapshot(), rng, 40)
	}

	st := svc.Stats()
	if !st.LabelsEnabled {
		t.Fatal("stats: labels_enabled false on a labels-enabled service")
	}
	if st.LabelHits == 0 {
		t.Fatal("stats: no label hits recorded across the whole run")
	}
}

// TestLabelsSizeCap pins the auto-off guard: label construction grows
// roughly quadratically in the deployment size, so Labels is ignored above
// LabelsMaxN (default DefaultLabelsMaxN) unless the cap is raised or
// removed. The cap itself is exercised with a tiny threshold — building a
// genuinely over-cap deployment is exactly what the guard exists to avoid.
func TestLabelsSizeCap(t *testing.T) {
	capped := testService(t, 72, Options{Labels: true, LabelsMaxN: 48})
	if st := capped.Stats(); st.LabelsEnabled {
		t.Fatalf("labels built for %d nodes over a cap of 48", st.Nodes)
	}
	// Over-cap service still answers /distance exactly, via search.
	checkDistances(t, capped.Snapshot(), rand.New(rand.NewSource(11)), 20)

	uncapped := testService(t, 72, Options{Labels: true, LabelsMaxN: -1})
	if st := uncapped.Stats(); !st.LabelsEnabled {
		t.Fatal("negative LabelsMaxN should remove the cap")
	}
	under := testService(t, 40, Options{Labels: true, LabelsMaxN: 48})
	if st := under.Stats(); !st.LabelsEnabled {
		t.Fatal("labels skipped under the cap")
	}
}

// TestDistanceWithoutLabels pins the fallback-only path: a service without
// the oracle answers every query exactly via search, never from labels.
func TestDistanceWithoutLabels(t *testing.T) {
	svc := testService(t, 48, Options{})
	snap := svc.Snapshot()
	rng := rand.New(rand.NewSource(10))
	checkDistances(t, snap, rng, 40)
	st := svc.Stats()
	if st.LabelsEnabled || st.LabelHits != 0 {
		t.Fatalf("labels-off service reported label activity: %+v", st)
	}
	if st.LabelFallbacks == 0 {
		t.Fatal("fallback counter did not move")
	}
	if _, err := snap.Distance(0, len(snap.Alive)+5); err == nil {
		t.Fatal("Distance accepted an out-of-range node")
	}
}

func TestHTTPDistance(t *testing.T) {
	svc := testService(t, 64, Options{Labels: true})
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(ts.Close)

	var res DistanceResult
	postJSON(t, ts.URL+"/distance", DistanceRequest{Src: 0, Dst: 5}, 200, &res)
	if !res.Reachable || res.Distance <= 0 {
		t.Fatalf("POST /distance (0,5) = %+v; want a reachable positive distance", res)
	}
	if res.Version != svc.Snapshot().Version {
		t.Fatalf("distance version %d != snapshot %d", res.Version, svc.Snapshot().Version)
	}

	// Self-distance is zero and reachable.
	postJSON(t, ts.URL+"/distance", DistanceRequest{Src: 3, Dst: 3}, 200, &res)
	if !res.Reachable || res.Distance != 0 {
		t.Fatalf("POST /distance (3,3) = %+v; want 0, reachable", res)
	}

	// Unknown node → 404; malformed body → 400.
	postJSON(t, ts.URL+"/distance", DistanceRequest{Src: 0, Dst: 9999}, 404, nil)
	postJSON(t, ts.URL+"/distance", map[string]any{"src": 0, "bogus": 1}, 400, nil)

	var st Stats
	getJSON(t, ts.URL+"/stats", 200, &st)
	if !st.LabelsEnabled || st.LabelEntries == 0 || st.LabelBytesPerVertex <= 0 {
		t.Fatalf("stats lacks label oracle info: %+v", st)
	}
}
