// Package service is the concurrent topology query layer: a long-lived
// Service owns a dynamic.Engine (the churn-maintained t-spanner) and
// serves route, neighborhood, and statistics queries against RCU-style
// immutable snapshots while mutations stream in.
//
// The concurrency design is single-writer / wait-free readers:
//
//   - All mutations funnel through one writer goroutine that owns the
//     engine outright. A mutation batch is applied under the engine's
//     Begin/Commit coalescing, then the writer freezes the engine state
//     (dynamic.Engine.ExportFrozen) into a fresh Snapshot — immutable CSR
//     graphs, positions, router, and a brand-new LRU route cache — and
//     publishes it with one atomic pointer store. The freeze is
//     delta-aware: only adjacency rows the batch touched are rebuilt,
//     everything else is shared with the previous snapshot, so publish
//     cost tracks the repair, not the topology size.
//   - Readers load the current snapshot with an atomic pointer read and
//     never take a lock shared with the writer. A reader holding an old
//     snapshot keeps getting internally consistent answers from the
//     version it loaded; the garbage collector retires old snapshots when
//     the last reader drops them.
//   - Because the route cache lives inside the snapshot, a topology swap
//     invalidates the whole cache by construction — there is no
//     invalidation protocol, and a cached route can never mix versions.
//
// The HTTP surface over this API lives in http.go; cmd/topoctld is the
// daemon binary.
package service

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"topoctl/internal/dynamic"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/labels"
	"topoctl/internal/routing"
	"topoctl/internal/shard"
)

// ErrUnknownNode reports a query or mutation naming a slot that holds no
// live node (never joined, or departed).
var ErrUnknownNode = errors.New("service: unknown or departed node")

// ErrClosed reports an operation on a closed service.
var ErrClosed = errors.New("service: closed")

// ErrReadOnly reports a mutation sent to a follower: replicas serve reads
// and apply the leader's frame stream, never local writes.
var ErrReadOnly = errors.New("service: read-only follower; send mutations to the leader")

// ErrNotReady reports a query before the first snapshot exists (a
// follower that has not applied a frame yet).
var ErrNotReady = errors.New("service: not ready, no snapshot yet")

// Options configures a Service.
type Options struct {
	// T is the spanner stretch bound (> 1; default 1.5).
	T float64
	// Radius is the connectivity radius of the maintained base graph
	// (default 1).
	Radius float64
	// Dim is the embedding dimension, needed only when the service starts
	// with no nodes (default 2).
	Dim int
	// CacheSize bounds the per-snapshot route cache (default 8192 entries
	// across all shards; <0 disables growth past the minimum).
	CacheSize int
	// Searchers caps the shared searcher pool (default GOMAXPROCS). Pools
	// are lazy: nothing is allocated until a query actually checks one
	// out, so idle services — and idle shards — cost nothing.
	Searchers int
	// Shards splits the deployment into that many grid-aligned spatial
	// regions, each with its own dynamic engine, frozen snapshots, route
	// cache, and scratch pool (internal/shard). Shortest-path queries
	// then run per-shard searches stitched through precomputed portal
	// vertices instead of a global search. 0 or 1 keeps the single
	// global engine.
	Shards int
	// PortalRefresh rebuilds the inter-portal distance table every Nth
	// publish when sharded (default 1: every publish). Larger values
	// amortize table builds under heavy churn at the price of
	// shortest-path queries falling back to the global search while the
	// table is stale.
	PortalRefresh int
	// StretchSample bounds the base-edge sample behind the /stats live
	// stretch estimate (default 256; the estimate is exact below it).
	StretchSample int
	// Labels enables the hub-label distance oracle (internal/labels): the
	// writer builds exact per-vertex label sets at every publish and
	// /distance queries answer from an allocation-free label intersection
	// instead of a bidirectional Dijkstra, falling back to the search when
	// the oracle cannot certify (after removals, until its rebuild
	// horizon). Off by default — label construction costs a few
	// milliseconds per rebuild, which embedded/test users may not want.
	Labels bool
	// LabelsMaxN caps the deployment size the oracle is built for: label
	// construction grows roughly quadratically in the vertex count (413ms
	// and 1744 B/vtx at n=4096), so a million-vertex boot must not sink
	// into it silently. Above the cap Labels is ignored and /distance
	// falls back to the search core. Zero means DefaultLabelsMaxN;
	// negative removes the cap.
	LabelsMaxN int
	// Seed drives the deterministic stretch-sample shuffle.
	Seed int64
	// AnalyzeTimeout caps the wall-clock time of one /analyze scan
	// (default 5s; negative disables the cap). A capped scan returns a
	// partial report with its "truncated" flag set rather than an error.
	AnalyzeTimeout time.Duration
	// InitialVersion stamps the first published snapshot (default 1). A
	// daemon recovering from a WAL passes the recovered epoch so versions
	// continue the pre-crash sequence instead of restarting at 1.
	InitialVersion uint64
	// OnPublish, when set, runs on the writer goroutine immediately after
	// each mutation batch publishes its snapshot — the WAL append hook.
	// applied holds the ops that succeeded (join IDs resolved) in batch
	// order; touched lists the vertices whose adjacency rows the batch
	// changed, sorted, and is only valid for the duration of the call.
	// The hook runs before the batch's Mutate reply is released, so a
	// durable-WAL hook makes every acknowledged mutation durable.
	OnPublish func(snap *Snapshot, applied []Op, touched []int)
}

func (o *Options) normalize() {
	if o.T == 0 {
		o.T = 1.5
	}
	if o.Radius == 0 {
		o.Radius = 1
	}
	if o.CacheSize == 0 {
		o.CacheSize = 8192
	}
	if o.Searchers <= 0 {
		o.Searchers = runtime.GOMAXPROCS(0)
	}
	if o.StretchSample <= 0 {
		o.StretchSample = 256
	}
	if o.AnalyzeTimeout == 0 {
		o.AnalyzeTimeout = 5 * time.Second
	} else if o.AnalyzeTimeout < 0 {
		o.AnalyzeTimeout = 0 // no cap
	}
}

// Op is one topology mutation. Kind selects which fields matter: a join
// needs Point, a leave needs ID, a move needs both.
type Op struct {
	Kind  string     `json:"op"` // "join" | "leave" | "move"
	ID    int        `json:"id,omitempty"`
	Point geom.Point `json:"point,omitempty"`
}

// Op kinds.
const (
	OpJoin  = "join"
	OpLeave = "leave"
	OpMove  = "move"
)

// OpResult reports one op of a mutation batch: the node id it concerned
// (the assigned id, for joins) and the error, if it failed.
type OpResult struct {
	ID  int    `json:"id"`
	Err string `json:"error,omitempty"`
}

// MutateResult reports an applied mutation batch.
type MutateResult struct {
	// Version is the topology version after the batch (unchanged when no
	// op applied).
	Version uint64 `json:"version"`
	// Applied counts ops that succeeded; Results holds per-op outcomes in
	// batch order.
	Applied int        `json:"applied"`
	Results []OpResult `json:"results"`
}

type mutateReq struct {
	ops   []Op
	reply chan *MutateResult
}

// engine is the mutation/export contract the writer drives: satisfied
// by *dynamic.Engine (the single global spanner) and *shard.Group (K
// per-region engines behind one façade). Everything downstream of the
// writer — snapshots, WAL hooks, followers — sees the same slot-indexed
// frozen exports either way.
type engine interface {
	Join(p geom.Point) (int, error)
	Leave(id int) error
	Move(id int, p geom.Point) error
	Begin()
	Commit()
	ExportFrozen() ([]geom.Point, []bool, *graph.Frozen, *graph.Frozen)
	LastExportTouched() []int
	N() int
	Dim() int
	Options() dynamic.Options
}

// shardCounter tracks one shard's serving counters for the service
// lifetime (the per-shard /stats section).
type shardCounter struct {
	queries   atomic.Uint64
	cacheHits atomic.Uint64
	cacheMiss atomic.Uint64
}

// counters are service-lifetime monotonic counters, updated with atomics
// from reader goroutines and the writer.
type counters struct {
	routes     atomic.Uint64
	delivered  atomic.Uint64
	cacheHits  atomic.Uint64
	cacheMiss  atomic.Uint64
	cacheEvict atomic.Uint64
	mutOps     atomic.Uint64
	mutBatches atomic.Uint64
	labelHits  atomic.Uint64
	labelFalls atomic.Uint64
	analyze    [analyzeEndpoints]analyzeCounter
}

// Service serves topology queries over atomically swapped snapshots while
// a single writer goroutine applies mutation batches. All exported methods
// are safe for concurrent use.
type Service struct {
	opts      Options
	snap      atomic.Pointer[Snapshot]
	searchers *searcherPool
	ctr       counters
	start     time.Time
	ready     atomic.Bool
	follower  bool
	repl      atomic.Pointer[ReplicaStatus]

	// group is non-nil when the service runs sharded; shardCtr and
	// scratch are its per-shard serving counters and scratch pools
	// (service lifetime, shared by every snapshot).
	group    *shard.Group
	shardCtr []shardCounter
	scratch  []*scratchPool

	// oracle is the current hub-label distance oracle (nil when disabled
	// or on followers). It is owned by the writer: publish() builds or
	// incrementally updates it before each snapshot swap, and readers only
	// ever see it through the immutable snapshot they loaded.
	oracle *labels.Oracle

	reqs      chan *mutateReq
	stop      chan struct{}
	writerRet chan struct{}
	closeOnce sync.Once
}

// New starts a service over the given initial deployment (point set may be
// empty, then Options.Dim applies). The initial spanner build is
// synchronous; the returned service is immediately ready to serve. With
// Options.Shards > 1 the deployment is spatially partitioned and served
// by a shard group instead of a single engine.
func New(points []geom.Point, opts Options) (*Service, error) {
	opts.normalize()
	// The deployment's own dimension always wins; Options.Dim only matters
	// for a service that starts empty.
	if len(points) > 0 {
		opts.Dim = points[0].Dim()
	} else if opts.Dim == 0 {
		opts.Dim = 2
	}
	dopts := dynamic.Options{
		T:      opts.T,
		Radius: opts.Radius,
		Dim:    opts.Dim,
	}
	if opts.Shards > 1 {
		grp, err := shard.New(points, shard.Options{
			Dynamic:       dopts,
			K:             opts.Shards,
			PortalRefresh: opts.PortalRefresh,
		})
		if err != nil {
			return nil, err
		}
		return NewFromGroup(grp, opts)
	}
	eng, err := dynamic.New(points, dopts)
	if err != nil {
		return nil, err
	}
	return NewFromEngine(eng, opts)
}

// NewFromEngine starts a service over an existing engine — the WAL
// recovery path, where the engine was restored from a checkpoint plus a
// replayed log tail rather than built from scratch. The engine's own T,
// Radius, and dimension override the corresponding options; the caller
// passes the recovered epoch as Options.InitialVersion so published
// versions continue the pre-crash sequence. The service owns the engine
// from here on.
func NewFromEngine(eng *dynamic.Engine, opts Options) (*Service, error) {
	return newFromEngine(eng, opts)
}

// NewFromGroup starts a service over an existing shard group — the
// sharded counterpart of NewFromEngine, for callers that partitioned
// the deployment themselves (e.g. a daemon recovering a WAL and
// re-sharding the restored engine state). The service owns the group
// from here on, including its per-shard worker goroutines.
func NewFromGroup(grp *shard.Group, opts Options) (*Service, error) {
	return newFromEngine(grp, opts)
}

// DefaultLabelsMaxN is the deployment size above which Options.Labels is
// ignored unless LabelsMaxN raises the cap. Past ~16k vertices the first
// label build costs tens of seconds and its slabs rival the graph itself.
const DefaultLabelsMaxN = 16384

func newFromEngine(eng engine, opts Options) (*Service, error) {
	opts.normalize()
	eopts := eng.Options()
	opts.T, opts.Radius, opts.Dim = eopts.T, eopts.Radius, eng.Dim()
	if opts.Labels {
		max := opts.LabelsMaxN
		if max == 0 {
			max = DefaultLabelsMaxN
		}
		if max > 0 && eng.N() > max {
			opts.Labels = false
		}
	}
	s := &Service{
		opts:      opts,
		searchers: newSearcherPool(opts.Searchers),
		start:     time.Now(),
		reqs:      make(chan *mutateReq),
		stop:      make(chan struct{}),
		writerRet: make(chan struct{}),
	}
	if grp, ok := eng.(*shard.Group); ok {
		s.group = grp
		k := grp.K()
		s.shardCtr = make([]shardCounter, k)
		s.scratch = make([]*scratchPool, k)
		for i := range s.scratch {
			s.scratch[i] = newScratchPool(opts.Searchers)
		}
	}
	s.publish(eng)
	s.ready.Store(true)
	go s.writer(eng)
	return s, nil
}

// NewFollower starts a read-only service with no engine and no writer:
// snapshots arrive from the leader's frame stream via PublishFrozen
// (internal/replica drives this). Mutations are rejected with
// ErrReadOnly, and the service reports not-ready until the first
// snapshot is published.
func NewFollower(opts Options) *Service {
	opts.normalize()
	if opts.Dim == 0 {
		opts.Dim = 2
	}
	s := &Service{
		opts:      opts,
		follower:  true,
		searchers: newSearcherPool(opts.Searchers),
		start:     time.Now(),
		stop:      make(chan struct{}),
	}
	return s
}

// PublishFrozen installs an externally built topology version — a
// follower applying the leader's delta frames. points, alive, and the
// graphs must be immutable from here on (the WAL state machine
// guarantees this: every Apply builds fresh metadata slices and frozen
// successors). The first publish marks the follower ready. Followers carry
// no hub-label oracle — /distance still answers exactly, via the search
// fallback.
func (s *Service) PublishFrozen(version uint64, points []geom.Point, alive []bool, live int, base, sp *graph.Frozen) error {
	router, err := routing.NewRouter(sp, points)
	if err != nil {
		return err
	}
	snap := &Snapshot{
		Version:        version,
		T:              s.opts.T,
		Points:         points,
		Alive:          alive,
		Base:           base,
		Spanner:        sp,
		router:         router,
		searchers:      s.searchers,
		cache:          newRouteCache(s.opts.CacheSize, &s.ctr),
		ctr:            &s.ctr,
		live:           live,
		stretchSample:  s.opts.StretchSample,
		seed:           s.opts.Seed,
		analyzeTimeout: s.opts.AnalyzeTimeout,
	}
	snap.bboxLo, snap.bboxHi = bbox(points, s.opts.Dim)
	s.snap.Store(snap)
	s.ready.Store(true)
	return nil
}

// Ready reports whether the service has a snapshot to serve: immediately
// for leaders (construction is synchronous), after the first applied
// frame for followers. GET /readyz is this, as an HTTP status.
func (s *Service) Ready() bool { return s.ready.Load() }

// Follower reports whether this service is a read-only replica.
func (s *Service) Follower() bool { return s.follower }

// ReplicaStatus describes a follower's replication link, for /healthz
// and /stats. The zero value means "leader".
type ReplicaStatus struct {
	// Role is "leader" or "follower".
	Role string `json:"role"`
	// Connected reports a live frame stream from the leader.
	Connected bool `json:"connected"`
	// Epoch is the last applied epoch; LeaderEpoch the newest epoch the
	// follower has heard of (equal when caught up). Lag is the difference.
	Epoch       uint64 `json:"epoch"`
	LeaderEpoch uint64 `json:"leader_epoch"`
	Lag         uint64 `json:"lag"`
	// LastFrameAgeSeconds is the time since the last applied frame (-1
	// before the first frame).
	LastFrameAgeSeconds float64 `json:"last_frame_age_seconds"`
	// Reconnects counts stream re-establishments (drops + backoff).
	Reconnects uint64 `json:"reconnects"`
}

// SetReplicaStatus publishes the replication-link status (the replica
// client updates it as frames apply and connections drop).
func (s *Service) SetReplicaStatus(st ReplicaStatus) { s.repl.Store(&st) }

// replicaStatus returns the current status, nil for leaders.
func (s *Service) replicaStatus() *ReplicaStatus {
	if !s.follower {
		return nil
	}
	if st := s.repl.Load(); st != nil {
		return st
	}
	return &ReplicaStatus{Role: "follower"}
}

// Close stops the writer goroutine. In-flight Mutate calls receive
// ErrClosed; queries keep working against the last published snapshot.
func (s *Service) Close() {
	s.closeOnce.Do(func() {
		close(s.stop)
		if !s.follower {
			<-s.writerRet
		}
	})
}

// Snapshot returns the current topology snapshot. The returned value is
// immutable and remains valid (and internally consistent) indefinitely;
// hold it across related queries to get one-version semantics.
func (s *Service) Snapshot() *Snapshot { return s.snap.Load() }

// Route answers one route query against the current snapshot. Use
// Snapshot().Route directly when several queries must observe the same
// version; both paths feed the same serving counters.
func (s *Service) Route(scheme routing.Scheme, src, dst int) (RouteResult, error) {
	snap := s.Snapshot()
	if snap == nil {
		return RouteResult{}, ErrNotReady
	}
	return snap.Route(scheme, src, dst)
}

// Distance answers one exact distance query against the current snapshot
// (labels when enabled and certifiable, search fallback otherwise). Use
// Snapshot().Distance directly for one-version semantics across queries.
func (s *Service) Distance(src, dst int) (DistanceResult, error) {
	snap := s.Snapshot()
	if snap == nil {
		return DistanceResult{}, ErrNotReady
	}
	return snap.Distance(src, dst)
}

// Mutate applies a batch of topology mutations through the writer
// goroutine and returns once the resulting snapshot is published. Ops are
// applied best-effort in order: a failed op (e.g. leave of a departed
// node) is reported in its OpResult without aborting the batch.
func (s *Service) Mutate(ops []Op) (*MutateResult, error) {
	if s.follower {
		return nil, ErrReadOnly
	}
	req := &mutateReq{ops: ops, reply: make(chan *MutateResult, 1)}
	select {
	case s.reqs <- req:
		return <-req.reply, nil
	case <-s.stop:
		return nil, ErrClosed
	}
}

// writer is the single goroutine that owns the engine after New returns.
func (s *Service) writer(eng engine) {
	defer close(s.writerRet)
	if c, ok := eng.(interface{ Close() }); ok {
		defer c.Close() // a shard group stops its per-shard workers
	}
	for {
		select {
		case req := <-s.reqs:
			req.reply <- s.apply(eng, req.ops)
		case <-s.stop:
			return
		}
	}
}

// apply runs one mutation batch against the engine and publishes the
// successor snapshot. Multi-op batches go through Begin/Commit so the
// engine coalesces repair into one pass.
func (s *Service) apply(eng engine, ops []Op) *MutateResult {
	res := &MutateResult{Results: make([]OpResult, len(ops))}
	if len(ops) > 1 {
		eng.Begin()
	}
	for i, op := range ops {
		r := &res.Results[i]
		r.ID = op.ID
		var err error
		switch op.Kind {
		case OpJoin:
			r.ID, err = eng.Join(op.Point)
		case OpLeave:
			err = eng.Leave(op.ID)
		case OpMove:
			err = eng.Move(op.ID, op.Point)
		default:
			err = fmt.Errorf("service: unknown op %q", op.Kind)
		}
		if err != nil {
			r.Err = err.Error()
		} else {
			res.Applied++
		}
	}
	if len(ops) > 1 {
		eng.Commit()
	}
	s.ctr.mutBatches.Add(1)
	s.ctr.mutOps.Add(uint64(res.Applied))
	if res.Applied == 0 {
		res.Version = s.Snapshot().Version
		return res
	}
	snap := s.publish(eng)
	res.Version = snap.Version
	if s.opts.OnPublish != nil {
		applied := make([]Op, 0, res.Applied)
		for i, op := range ops {
			if res.Results[i].Err == "" {
				op.ID = res.Results[i].ID // joins: the engine-assigned slot
				applied = append(applied, op)
			}
		}
		s.opts.OnPublish(snap, applied, eng.LastExportTouched())
	}
	return res
}

// publish freezes the engine state into a fresh snapshot and swaps it in.
// The export is delta-aware: only adjacency rows the batch touched are
// re-frozen, everything else is shared with the previous snapshot. Called
// from New (before the writer starts) and then only from the writer
// goroutine.
func (s *Service) publish(eng engine) *Snapshot {
	points, alive, base, sp := eng.ExportFrozen()
	version := s.opts.InitialVersion
	if version == 0 {
		version = 1
	}
	if old := s.snap.Load(); old != nil {
		version = old.Version + 1
	}
	if s.opts.Labels {
		// Maintain the hub-label oracle from the same touched-row deltas
		// the frozen export consumed: additions-only batches extend it in
		// place (structurally shared with the predecessor), removals flip
		// it stale (queries fall back to search) until its rebuild horizon.
		if s.oracle == nil {
			s.oracle = labels.Build(sp, labels.Options{})
		} else {
			s.oracle = s.oracle.Update(sp, eng.LastExportTouched())
		}
	}
	// The router constructor only fails on a length mismatch, which Export
	// rules out (slot-indexed points and graphs share capacity).
	router, err := routing.NewRouter(sp, points)
	if err != nil {
		panic(err)
	}
	if s.oracle != nil {
		router.SetDistanceOracle(s.oracle)
	}
	snap := &Snapshot{
		Version:        version,
		T:              s.opts.T,
		Points:         points,
		Alive:          alive,
		Base:           base,
		Spanner:        sp,
		router:         router,
		searchers:      s.searchers,
		cache:          newRouteCache(s.opts.CacheSize, &s.ctr),
		ctr:            &s.ctr,
		live:           eng.N(),
		stretchSample:  s.opts.StretchSample,
		seed:           s.opts.Seed,
		oracle:         s.oracle,
		analyzeTimeout: s.opts.AnalyzeTimeout,
	}
	if s.group != nil {
		// Thread the sharded face of the same export through the
		// snapshot: per-shard frozen graphs, the portal table, one route
		// cache per shard, and the shared scratch pools. The combined
		// Base/Spanner above are the identical topology, so everything
		// version-agnostic (stats, analyze, labels, WAL) is untouched.
		snap.view = s.group.View()
		k := len(snap.view.Shards)
		per := s.opts.CacheSize / k
		snap.shardCaches = make([]*routeCache, k)
		for i := range snap.shardCaches {
			snap.shardCaches[i] = newRouteCache(per, &s.ctr)
		}
		snap.sctr = s.shardCtr
		snap.scratch = s.scratch
	}
	snap.bboxLo, snap.bboxHi = bbox(points, s.opts.Dim)
	s.snap.Store(snap)
	return snap
}

// bbox computes the axis-aligned bounding box of the live points (zeros
// when the deployment is empty).
func bbox(points []geom.Point, dim int) (lo, hi geom.Point) {
	lo, hi = make(geom.Point, dim), make(geom.Point, dim)
	first := true
	for _, p := range points {
		if p == nil {
			continue
		}
		for i := 0; i < dim && i < len(p); i++ {
			if first || p[i] < lo[i] {
				lo[i] = p[i]
			}
			if first || p[i] > hi[i] {
				hi[i] = p[i]
			}
		}
		first = false
	}
	return lo, hi
}

// Stats is the service-level statistics document served at /stats.
type Stats struct {
	Version uint64 `json:"version"`
	// Nodes is the live node count, Slots the allocated id space (route
	// and neighbor queries accept ids in [0, Slots)).
	Nodes int `json:"nodes"`
	Slots int `json:"slots"`
	// BaseEdges / SpannerEdges / SpannerWeight / MaxDegree describe the
	// current topology.
	BaseEdges     int     `json:"base_edges"`
	SpannerEdges  int     `json:"spanner_edges"`
	SpannerWeight float64 `json:"spanner_weight"`
	MaxDegree     int     `json:"max_degree"`
	// StretchBound is the configured t; StretchEstimate the worst stretch
	// observed over a base-edge sample of this snapshot (exact when
	// StretchExact; -1 when a sampled base edge had no spanner path at
	// all, i.e. the spanner is disconnected).
	StretchBound    float64 `json:"stretch_bound"`
	StretchEstimate float64 `json:"stretch_estimate"`
	StretchExact    bool    `json:"stretch_exact"`
	// StretchSampled / StretchViolationBound qualify a non-exact estimate:
	// the number of base edges evaluated, and the fraction of base edges
	// that may exceed the estimate (with confidence StretchConfidence).
	// Zero when StretchExact.
	StretchSampled        int     `json:"stretch_sampled,omitempty"`
	StretchViolationBound float64 `json:"stretch_violation_bound,omitempty"`
	StretchConfidence     float64 `json:"stretch_confidence,omitempty"`
	// BBoxLo / BBoxHi bound the live deployment (load generators draw
	// join/move targets inside this box).
	BBoxLo geom.Point `json:"bbox_lo"`
	BBoxHi geom.Point `json:"bbox_hi"`
	// Serving counters (service lifetime).
	Routes         uint64  `json:"routes"`
	Delivered      uint64  `json:"delivered"`
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheEntries   int     `json:"cache_entries"`
	MutationOps    uint64  `json:"mutation_ops"`
	MutationBatch  uint64  `json:"mutation_batches"`
	UptimeSeconds  float64 `json:"uptime_seconds"`
	// Hub-label distance oracle state (all zero when Options.Labels is
	// off). LabelHits counts /distance answers served from labels,
	// LabelFallbacks the ones that fell back to a search (oracle stale or
	// absent); LabelEntries / LabelBytesPerVertex size the current label
	// sets; LabelStale reports fallback mode pending rebuild.
	LabelsEnabled       bool    `json:"labels_enabled"`
	LabelHits           uint64  `json:"label_hits"`
	LabelFallbacks      uint64  `json:"label_fallbacks"`
	LabelEntries        int     `json:"label_entries"`
	LabelBytesPerVertex float64 `json:"label_bytes_per_vertex"`
	LabelStale          bool    `json:"label_stale"`
	// Sharding state (all empty when Options.Shards ≤ 1): ShardCount is
	// the region count, Portals the current portal-vertex count,
	// PortalsFresh whether the inter-portal table matches this snapshot
	// (false means shortest-path queries are on the global fallback),
	// and Shards the per-shard breakdown.
	ShardCount   int          `json:"shard_count,omitempty"`
	Portals      int          `json:"portals,omitempty"`
	PortalsFresh bool         `json:"portals_fresh,omitempty"`
	Shards       []ShardStats `json:"shards,omitempty"`
	// Analyze records the /analyze family per endpoint: request count and
	// worst observed duration (service lifetime, like the other counters).
	Analyze map[string]AnalyzeEndpointStats `json:"analyze"`
	// Role is "leader" or "follower"; Ready mirrors GET /readyz. Replica
	// carries the replication-link status on followers (nil on leaders).
	Role    string         `json:"role"`
	Ready   bool           `json:"ready"`
	Replica *ReplicaStatus `json:"replica,omitempty"`
}

// ShardStats is one shard's slice of the /stats document: its topology
// share, portal count, service-lifetime query counters, and the cache
// state of the current snapshot. Edge counts cover the shard's interior
// (cut edges belong to the combined graphs, not to either endpoint
// shard).
type ShardStats struct {
	Shard        int     `json:"shard"`
	Nodes        int     `json:"nodes"`
	BaseEdges    int     `json:"base_edges"`
	SpannerEdges int     `json:"spanner_edges"`
	Portals      int     `json:"portals"`
	Queries      uint64  `json:"queries"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheMisses  uint64  `json:"cache_misses"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`
	// LastSwapEpoch is the export sequence that last re-froze any of
	// this shard's adjacency rows — a shard untouched by recent churn
	// keeps its old epoch while others advance.
	LastSwapEpoch uint64 `json:"last_swap_epoch"`
}

// Stats assembles the statistics document for the current snapshot.
func (s *Service) Stats() Stats {
	role := "leader"
	if s.follower {
		role = "follower"
	}
	snap := s.Snapshot()
	if snap == nil {
		// A follower that has not applied its first frame yet has nothing
		// to describe beyond its own serving state.
		return Stats{
			Analyze:       s.ctr.analyzeStats(),
			Role:          role,
			Ready:         s.Ready(),
			Replica:       s.replicaStatus(),
			UptimeSeconds: time.Since(s.start).Seconds(),
		}
	}
	detail := snap.StretchDetail()
	est, exact := detail.Estimate, detail.Exact
	if math.IsInf(est, 1) {
		est = -1 // JSON has no Inf; -1 flags a disconnected sampled edge
	}
	var lst labels.Stats
	if snap.oracle != nil {
		lst = snap.oracle.Stats()
	}
	var shardStats []ShardStats
	var portals int
	var portalsFresh bool
	if v := snap.view; v != nil {
		portalsFresh = v.TableFresh
		if v.Table != nil {
			portals = v.Table.P
		}
		shardStats = make([]ShardStats, len(v.Shards))
		for i := range v.Shards {
			sv := &v.Shards[i]
			st := ShardStats{
				Shard:         i,
				Nodes:         sv.Live,
				BaseEdges:     sv.Base.M(),
				SpannerEdges:  sv.Spanner.M(),
				Queries:       s.shardCtr[i].queries.Load(),
				CacheHits:     s.shardCtr[i].cacheHits.Load(),
				CacheMisses:   s.shardCtr[i].cacheMiss.Load(),
				CacheEntries:  snap.shardCaches[i].len(),
				LastSwapEpoch: sv.LastChanged,
			}
			if v.Table != nil {
				st.Portals = len(v.Table.ByShard[i])
			}
			if st.Queries > 0 {
				st.CacheHitRate = float64(st.CacheHits) / float64(st.Queries)
			}
			shardStats[i] = st
		}
	}
	return Stats{
		Version:               snap.Version,
		Nodes:                 snap.live,
		Slots:                 len(snap.Alive),
		BaseEdges:             snap.Base.M(),
		SpannerEdges:          snap.Spanner.M(),
		SpannerWeight:         snap.Spanner.TotalWeight(),
		MaxDegree:             snap.Spanner.MaxDegree(),
		StretchBound:          snap.T,
		StretchEstimate:       est,
		StretchExact:          exact,
		StretchSampled:        detail.Sampled,
		StretchViolationBound: detail.ViolationFraction,
		StretchConfidence:     detail.Confidence,
		BBoxLo:                snap.bboxLo,
		BBoxHi:                snap.bboxHi,
		Routes:                s.ctr.routes.Load(),
		Delivered:             s.ctr.delivered.Load(),
		CacheHits:             s.ctr.cacheHits.Load(),
		CacheMisses:           s.ctr.cacheMiss.Load(),
		CacheEvictions:        s.ctr.cacheEvict.Load(),
		CacheEntries:          snap.cacheEntries(),
		MutationOps:           s.ctr.mutOps.Load(),
		MutationBatch:         s.ctr.mutBatches.Load(),
		UptimeSeconds:         time.Since(s.start).Seconds(),
		LabelsEnabled:         snap.oracle != nil,
		LabelHits:             s.ctr.labelHits.Load(),
		LabelFallbacks:        s.ctr.labelFalls.Load(),
		LabelEntries:          lst.Entries,
		LabelBytesPerVertex:   lst.BytesPerVertex,
		LabelStale:            lst.Stale,
		ShardCount:            len(shardStats),
		Portals:               portals,
		PortalsFresh:          portalsFresh,
		Shards:                shardStats,
		Analyze:               s.ctr.analyzeStats(),
		Role:                  role,
		Ready:                 s.Ready(),
		Replica:               s.replicaStatus(),
	}
}
