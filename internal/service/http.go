package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"topoctl/internal/analyze"
	"topoctl/internal/geom"
	"topoctl/internal/routing"
)

// RouteRequest is the POST /route body.
type RouteRequest struct {
	// Scheme is "shortest-path" (default), "greedy", or "compass".
	Scheme string `json:"scheme,omitempty"`
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
}

// RouteResponse is the POST /route reply.
type RouteResponse struct {
	Delivered bool    `json:"delivered"`
	Path      []int   `json:"path"`
	Cost      float64 `json:"cost"`
	Hops      int     `json:"hops"`
	Stretch   float64 `json:"stretch,omitempty"`
	Version   uint64  `json:"version"`
	Cached    bool    `json:"cached"`
}

// NeighborsResponse is the GET /node/{id}/neighbors reply.
type NeighborsResponse struct {
	ID         int        `json:"id"`
	Point      geom.Point `json:"point"`
	Degree     int        `json:"degree"`
	BaseDegree int        `json:"base_degree"`
	Neighbors  []Neighbor `json:"neighbors"`
	Version    uint64     `json:"version"`
}

// DistanceRequest is the POST /distance body.
type DistanceRequest struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// MutateRequest is the POST /mutate body.
type MutateRequest struct {
	Ops []Op `json:"ops"`
}

// errorBody is the JSON error envelope every non-2xx response carries.
type errorBody struct {
	Error string `json:"error"`
}

// ParseScheme maps the wire name of a forwarding scheme to its constant
// ("" defaults to shortest-path).
func ParseScheme(name string) (routing.Scheme, error) {
	switch name {
	case "", "shortest-path", "shortest":
		return routing.SchemeShortestPath, nil
	case "greedy":
		return routing.SchemeGreedy, nil
	case "compass":
		return routing.SchemeCompass, nil
	default:
		return 0, fmt.Errorf("service: unknown scheme %q", name)
	}
}

// Handler returns the HTTP surface of the service:
//
//	GET  /healthz                  liveness (200 while the process serves)
//	GET  /readyz                   readiness (503 until the first snapshot)
//	GET  /stats                    topology + serving statistics
//	GET  /node/{id}/neighbors      a node's spanner adjacency
//	POST /route                    route one packet
//	POST /distance                 exact point-to-point distance (labels
//	                               when enabled, search fallback otherwise)
//	POST /mutate                   apply a mutation batch (leader only)
//	POST /analyze/impact           failure impact of a vertex set / region
//	POST /analyze/around           k-hop neighborhood (Cytoscape elements)
//	POST /analyze/route            route explanation vs the base optimum
//	GET  /analyze/divergence       spanner-vs-base divergence report
//
// Every handler resolves the current snapshot exactly once, so each
// response is consistent with a single topology version (reported as
// "version" in the body).
//
// Every non-2xx response — including the mux's own 404/405, which the
// returned handler intercepts — carries the JSON error envelope
// {"error": "..."}.
//
// Liveness and readiness are distinct on purpose: a follower that lost
// its leader is alive (keep it in the process pool, let it keep serving
// its last topology) but a follower that has never applied a frame — or
// a leader still replaying its WAL — must not receive traffic yet, which
// is what /readyz gates.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /node/{id}/neighbors", s.handleNeighbors)
	mux.HandleFunc("POST /route", s.handleRoute)
	mux.HandleFunc("POST /distance", s.handleDistance)
	mux.HandleFunc("POST /mutate", s.handleMutate)
	mux.HandleFunc("POST /analyze/impact", s.handleAnalyzeImpact)
	mux.HandleFunc("POST /analyze/around", s.handleAnalyzeAround)
	mux.HandleFunc("POST /analyze/route", s.handleAnalyzeRoute)
	mux.HandleFunc("GET /analyze/divergence", s.handleAnalyzeDivergence)
	return errorEnvelope(mux)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{"status": "ok", "ready": s.Ready()}
	if snap := s.Snapshot(); snap != nil {
		body["version"] = snap.Version
	}
	if repl := s.replicaStatus(); repl != nil {
		body["role"] = repl.Role
		body["replica"] = repl
	} else {
		body["role"] = "leader"
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Service) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.Ready() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "starting"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ready",
		"version": s.Snapshot().Version,
	})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad node id: %w", err))
		return
	}
	snap := s.Snapshot()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, ErrNotReady)
		return
	}
	pt, nbrs, baseDeg, err := snap.Neighbors(id)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, NeighborsResponse{
		ID:         id,
		Point:      pt,
		Degree:     len(nbrs),
		BaseDegree: baseDeg,
		Neighbors:  nbrs,
		Version:    snap.Version,
	})
}

func (s *Service) handleRoute(w http.ResponseWriter, r *http.Request) {
	var req RouteRequest
	if err := decodeJSON(w, r, 1<<16, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	scheme, err := ParseScheme(req.Scheme)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.Route(scheme, req.Src, req.Dst)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, RouteResponse{
		Delivered: res.Route.Delivered,
		Path:      res.Route.Path,
		Cost:      res.Route.Cost,
		Hops:      res.Route.Hops(),
		Stretch:   res.Stretch,
		Version:   res.Version,
		Cached:    res.Cached,
	})
}

func (s *Service) handleDistance(w http.ResponseWriter, r *http.Request) {
	var req DistanceRequest
	if err := decodeJSON(w, r, 1<<16, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.Distance(req.Src, req.Dst)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req MutateRequest
	if err := decodeJSON(w, r, 8<<20, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := ValidateOps(req.Ops); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.Mutate(req.Ops)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleAnalyzeImpact(w http.ResponseWriter, r *http.Request) {
	var req analyze.ImpactRequest
	if err := decodeJSON(w, r, 1<<20, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap := s.Snapshot()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, ErrNotReady)
		return
	}
	res, err := snap.AnalyzeImpact(req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleAnalyzeAround(w http.ResponseWriter, r *http.Request) {
	var req analyze.AroundRequest
	if err := decodeJSON(w, r, 1<<16, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap := s.Snapshot()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, ErrNotReady)
		return
	}
	res, err := snap.AnalyzeAround(req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleAnalyzeRoute(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRouteRequest
	if err := decodeJSON(w, r, 1<<16, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	snap := s.Snapshot()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, ErrNotReady)
		return
	}
	res, err := snap.AnalyzeRoute(req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Service) handleAnalyzeDivergence(w http.ResponseWriter, r *http.Request) {
	var req analyze.DivergenceRequest
	q := r.URL.Query()
	for name, dst := range map[string]*int{
		"sample":    &req.Sample,
		"buckets":   &req.Buckets,
		"witnesses": &req.MaxWitnesses,
	} {
		if v := q.Get(name); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil {
				writeError(w, http.StatusBadRequest, fmt.Errorf("bad %s: %w", name, err))
				return
			}
			*dst = n
		}
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad seed: %w", err))
			return
		}
		req.Seed = n
	}
	snap := s.Snapshot()
	if snap == nil {
		writeError(w, http.StatusServiceUnavailable, ErrNotReady)
		return
	}
	res, err := snap.AnalyzeDivergence(req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// statusFor maps service errors to HTTP statuses: unknown nodes and
// vertices are 404, malformed requests 400, not-yet-ready followers 503.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownNode), errors.Is(err, analyze.ErrUnknownVertex):
		return http.StatusNotFound
	case errors.Is(err, routing.ErrOutOfRange), errors.Is(err, ErrBadOp), errors.Is(err, analyze.ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotReady), errors.Is(err, ErrReadOnly), errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errorEnvelope wraps a handler so that every error response leaves as the
// JSON envelope, including responses the wrapped handler writes itself in
// another shape — notably the mux's own text/plain 404 and 405. Successful
// responses and errors already in the envelope pass through untouched.
func errorEnvelope(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ew := &envelopeWriter{rw: w}
		next.ServeHTTP(ew, r)
		ew.flush()
	})
}

// envelopeWriter intercepts non-JSON error responses: when WriteHeader
// announces a status >= 400 without an application/json content type, the
// header write is deferred and the body buffered, then flush rewrites it
// as an errorBody.
type envelopeWriter struct {
	rw          http.ResponseWriter
	status      int
	wroteHeader bool
	intercept   bool
	buf         bytes.Buffer
}

func (e *envelopeWriter) Header() http.Header { return e.rw.Header() }

func (e *envelopeWriter) WriteHeader(status int) {
	if e.wroteHeader {
		return
	}
	e.wroteHeader = true
	e.status = status
	if status >= 400 && !strings.HasPrefix(e.rw.Header().Get("Content-Type"), "application/json") {
		e.intercept = true
		return
	}
	e.rw.WriteHeader(status)
}

func (e *envelopeWriter) Write(b []byte) (int, error) {
	if !e.wroteHeader {
		e.WriteHeader(http.StatusOK)
	}
	if e.intercept {
		return e.buf.Write(b)
	}
	return e.rw.Write(b)
}

func (e *envelopeWriter) flush() {
	if !e.intercept {
		return
	}
	msg := strings.TrimSpace(e.buf.String())
	if msg == "" {
		msg = http.StatusText(e.status)
	}
	raw, err := json.Marshal(errorBody{Error: msg})
	if err != nil {
		raw = []byte(`{"error":"internal error"}`)
	}
	h := e.rw.Header()
	h.Set("Content-Type", "application/json")
	h.Del("Content-Length") // the rewritten body has a different length
	e.rw.WriteHeader(e.status)
	e.rw.Write(append(raw, '\n'))
}

func decodeJSON(w http.ResponseWriter, r *http.Request, limit int64, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	// Marshal before touching the ResponseWriter so an unencodable value
	// (the bug class: a NaN/Inf that slipped into a stats field) becomes a
	// diagnosable 500, not a silent 200 with an empty body.
	raw, err := json.Marshal(body)
	if err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err.Error()), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(raw, '\n'))
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
