package service

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"topoctl/internal/analyze"
	"topoctl/internal/geom"
	"topoctl/internal/graph"
)

// TestConcurrentMutateWhileAnalyze is the /analyze counterpart of the
// route stress test: reader goroutines fire all four analysis queries
// while a live mutator streams batches through the writer. Every response
// must be certified against the exact snapshot that served it — version
// stamp, counts consistent with that snapshot's liveness, returned
// subgraphs and paths present in that snapshot's graphs — which is only
// possible if an analysis never observes a half-swapped topology. Run
// under -race this also exercises the parallel fan-out inside a query
// against the shared searcher pool.
func TestConcurrentMutateWhileAnalyze(t *testing.T) {
	const (
		readers  = 6
		nInitial = 120
		batches  = 60
	)
	svc := testService(t, nInitial, Options{CacheSize: 1024})

	var (
		stop     atomic.Bool
		analyzed atomic.Uint64
		wg       sync.WaitGroup
	)
	fail := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for !stop.Load() {
				snap := svc.Snapshot()
				src, dst, ok := twoLive(rng, snap.Alive)
				if !ok {
					continue
				}
				var err error
				switch rng.Intn(4) {
				case 0:
					err = certifyImpact(snap, src)
				case 1:
					err = certifyAround(snap, src, 1+rng.Intn(3))
				case 2:
					err = certifyExplain(snap, src, dst)
				default:
					err = certifyDivergence(snap)
				}
				if err != nil {
					fail <- err
					return
				}
				analyzed.Add(1)
			}
		}(int64(4000 + r))
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer stop.Store(true)
		rng := rand.New(rand.NewSource(55))
		deadline := time.Now().Add(30 * time.Second)
		snap := svc.Snapshot()
		lo, hi := snap.bboxLo, snap.bboxHi
		randPoint := func() geom.Point {
			return geom.Point{
				lo[0] + rng.Float64()*(hi[0]-lo[0]),
				lo[1] + rng.Float64()*(hi[1]-lo[1]),
			}
		}
		for b := 0; b < batches; b++ {
			cur := svc.Snapshot()
			ops := make([]Op, 0, 6)
			for k := rng.Intn(5) + 1; k > 0; k-- {
				switch x := rng.Float64(); {
				case x < 0.35:
					ops = append(ops, Op{Kind: OpJoin, Point: randPoint()})
				case x < 0.60 && cur.Live() > nInitial/2:
					if id, _, ok := twoLive(rng, cur.Alive); ok {
						ops = append(ops, Op{Kind: OpLeave, ID: id})
					}
				default:
					if id, _, ok := twoLive(rng, cur.Alive); ok {
						ops = append(ops, Op{Kind: OpMove, ID: id, Point: randPoint()})
					}
				}
			}
			if len(ops) == 0 {
				continue
			}
			if _, err := svc.Mutate(ops); err != nil {
				fail <- fmt.Errorf("mutate batch %d: %w", b, err)
				return
			}
			// Pace on reader progress so analyses genuinely interleave
			// with snapshot swaps.
			for analyzed.Load() < uint64((b+1)*4) && time.Now().Before(deadline) {
				time.Sleep(200 * time.Microsecond)
			}
		}
	}()

	wg.Wait()
	select {
	case err := <-fail:
		t.Fatal(err)
	default:
	}
	if analyzed.Load() == 0 {
		t.Fatal("stress test certified no analyses")
	}
	t.Logf("certified %d analyses across %d topology versions",
		analyzed.Load(), svc.Snapshot().Version)
}

func certifyImpact(snap *Snapshot, victim int) error {
	res, err := snap.AnalyzeImpact(analyze.ImpactRequest{Vertices: []int{victim}})
	if err != nil {
		return fmt.Errorf("impact(%d) on v%d: %w", victim, snap.Version, err)
	}
	if res.Version != snap.Version {
		return fmt.Errorf("impact version %d from snapshot %d", res.Version, snap.Version)
	}
	if res.FaultedCount != 1 || res.Faulted[0] != victim {
		return fmt.Errorf("v%d: impact faulted %v, want [%d]", snap.Version, res.Faulted, victim)
	}
	if res.Survivors != snap.Live()-1 {
		return fmt.Errorf("v%d: impact survivors %d, live %d", snap.Version, res.Survivors, snap.Live())
	}
	for _, x := range res.Unreachable {
		if x < 0 || x >= len(snap.Alive) || !snap.Alive[x] || x == victim {
			return fmt.Errorf("v%d: unreachable lists %d, not a survivor", snap.Version, x)
		}
	}
	return nil
}

func certifyAround(snap *Snapshot, center, hops int) error {
	res, err := snap.AnalyzeAround(analyze.AroundRequest{Center: center, Hops: hops})
	if err != nil {
		return fmt.Errorf("around(%d,%d) on v%d: %w", center, hops, snap.Version, err)
	}
	if res.Version != snap.Version {
		return fmt.Errorf("around version %d from snapshot %d", res.Version, snap.Version)
	}
	for _, n := range res.Elements.Nodes {
		if n.Data.Vertex < 0 || n.Data.Vertex >= len(snap.Alive) || !snap.Alive[n.Data.Vertex] {
			return fmt.Errorf("v%d: around returned dead vertex %d", snap.Version, n.Data.Vertex)
		}
	}
	for _, e := range res.Elements.Edges {
		var u, v int
		if _, err := fmt.Sscanf(e.Data.Source, "n%d", &u); err != nil {
			return fmt.Errorf("v%d: bad source id %q", snap.Version, e.Data.Source)
		}
		if _, err := fmt.Sscanf(e.Data.Target, "n%d", &v); err != nil {
			return fmt.Errorf("v%d: bad target id %q", snap.Version, e.Data.Target)
		}
		w, ok := snap.Spanner.EdgeWeight(u, v)
		if !ok || w != e.Data.Weight {
			return fmt.Errorf("v%d: around edge %d-%d weight %v not in snapshot spanner (%v, %v)",
				snap.Version, u, v, e.Data.Weight, w, ok)
		}
	}
	return nil
}

func certifyExplain(snap *Snapshot, src, dst int) error {
	res, err := snap.AnalyzeRoute(AnalyzeRouteRequest{Src: src, Dst: dst})
	if err != nil {
		return fmt.Errorf("explain(%d,%d) on v%d: %w", src, dst, snap.Version, err)
	}
	if res.Version != snap.Version {
		return fmt.Errorf("explain version %d from snapshot %d", res.Version, snap.Version)
	}
	if !res.Reachable {
		return nil
	}
	vertices := []int{src}
	for _, h := range res.Path {
		if h.From != vertices[len(vertices)-1] {
			return fmt.Errorf("v%d: hop chain broken at %+v", snap.Version, h)
		}
		vertices = append(vertices, h.To)
	}
	if vertices[len(vertices)-1] != dst {
		return fmt.Errorf("v%d: path %v does not end at %d", snap.Version, vertices, dst)
	}
	w, ok := graph.PathWeight(snap.Spanner, vertices)
	if !ok || math.Abs(w-res.SpannerCost) > 1e-9*(1+res.SpannerCost) {
		return fmt.Errorf("v%d: explained path %v invalid on its snapshot (weight %v ok=%v, cost %v)",
			snap.Version, vertices, w, ok, res.SpannerCost)
	}
	return nil
}

func certifyDivergence(snap *Snapshot) error {
	res, err := snap.AnalyzeDivergence(analyze.DivergenceRequest{Sample: 32})
	if err != nil {
		return fmt.Errorf("divergence on v%d: %w", snap.Version, err)
	}
	if res.Version != snap.Version {
		return fmt.Errorf("divergence version %d from snapshot %d", res.Version, snap.Version)
	}
	if res.BaseEdges != snap.Base.M() || res.SpannerEdges != snap.Spanner.M() {
		return fmt.Errorf("v%d: divergence counts %d/%d, snapshot %d/%d",
			snap.Version, res.BaseEdges, res.SpannerEdges, snap.Base.M(), snap.Spanner.M())
	}
	return nil
}
