package service

import (
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/routing"
)

// pickDeliveredPair returns a live pair (lo, hi) with lo < hi whose
// shortest-path route is delivered and at least two hops long (so path
// direction is observable).
func pickDeliveredPair(t *testing.T, snap *Snapshot) (int, int) {
	t.Helper()
	n := len(snap.Alive)
	for lo := 0; lo < n; lo++ {
		for hi := n - 1; hi > lo; hi-- {
			if !snap.Alive[lo] || !snap.Alive[hi] || snap.Spanner.HasEdge(lo, hi) {
				continue
			}
			r, err := snap.Route(routing.SchemeShortestPath, lo, hi)
			if err != nil || !r.Route.Delivered || len(r.Route.Path) < 3 {
				continue
			}
			return lo, hi
		}
	}
	t.Fatal("no delivered multi-hop pair found")
	return 0, 0
}

// TestRouteCacheSymmetricFlip: a shortest-path route cached in one
// orientation must serve the flipped query from the cache, with the path
// reversed and cost/stretch intact — and the reversal must not corrupt the
// stored entry.
func TestRouteCacheSymmetricFlip(t *testing.T) {
	svc := testService(t, 96, Options{})
	snap := svc.Snapshot()
	lo, hi := pickDeliveredPair(t, snap)

	fwd, err := snap.Route(routing.SchemeShortestPath, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !fwd.Cached {
		// pickDeliveredPair already routed (lo,hi), so this is a hit.
		t.Fatalf("second (lo,hi) query not cached")
	}
	rev, err := snap.Route(routing.SchemeShortestPath, hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	if !rev.Cached {
		t.Fatalf("flipped query (hi,lo) missed the canonical cache entry")
	}
	if rev.Route.Cost != fwd.Route.Cost || rev.Stretch != fwd.Stretch || rev.Route.Delivered != fwd.Route.Delivered {
		t.Fatalf("flipped hit changed scalars: %+v vs %+v", rev, fwd)
	}
	p, q := fwd.Route.Path, rev.Route.Path
	if len(p) != len(q) {
		t.Fatalf("path lengths differ: %d vs %d", len(p), len(q))
	}
	for i := range p {
		if p[i] != q[len(q)-1-i] {
			t.Fatalf("flipped path is not the reverse: %v vs %v", p, q)
		}
	}
	if q[0] != hi || q[len(q)-1] != lo {
		t.Fatalf("flipped path endpoints %d..%d, want %d..%d", q[0], q[len(q)-1], hi, lo)
	}
	// The reversed path must itself walk real spanner edges.
	if w, ok := graph.PathWeight(snap.Spanner, q); !ok || w != rev.Route.Cost {
		t.Fatalf("flipped path does not certify: weight %v ok=%v, cost %v", w, ok, rev.Route.Cost)
	}
	// Re-query the original orientation: the in-cache entry must be intact
	// (reversal happens on a copy, never in place).
	again, err := snap.Route(routing.SchemeShortestPath, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if again.Route.Path[i] != p[i] {
			t.Fatalf("cached entry mutated by flipped hit: %v vs %v", again.Route.Path, p)
		}
	}
}

// TestRouteCacheSymmetricCapacity: querying both orientations of K
// distinct shortest-path pairs must occupy K cache entries (not 2K) and
// score one hit per pair — the capacity-doubling the canonical key buys.
func TestRouteCacheSymmetricCapacity(t *testing.T) {
	svc := testService(t, 64, Options{})
	snap := svc.Snapshot()
	hits0, miss0 := svc.ctr.cacheHits.Load(), svc.ctr.cacheMiss.Load()
	pairs := 0
	for src := 0; src < 16; src++ {
		for dst := src + 1; dst < 16; dst++ {
			if _, err := snap.Route(routing.SchemeShortestPath, src, dst); err != nil {
				t.Fatal(err)
			}
			if _, err := snap.Route(routing.SchemeShortestPath, dst, src); err != nil {
				t.Fatal(err)
			}
			pairs++
		}
	}
	if got := snap.cache.len(); got != pairs {
		t.Fatalf("cache holds %d entries for %d symmetric pairs, want %d", got, pairs, pairs)
	}
	hits, miss := svc.ctr.cacheHits.Load()-hits0, svc.ctr.cacheMiss.Load()-miss0
	if hits != uint64(pairs) || miss != uint64(pairs) {
		t.Fatalf("hits/misses = %d/%d, want %d/%d", hits, miss, pairs, pairs)
	}
}

// TestRouteCacheSymmetricUndelivered: an undelivered shortest-path route
// carries only its source as the failure prefix; a flipped cache hit must
// report the flipped query's source, not the cached orientation's.
func TestRouteCacheSymmetricUndelivered(t *testing.T) {
	// Two clusters farther apart than the connectivity radius: routes
	// between them are undeliverable.
	pts := []geom.Point{{0, 0}, {0.5, 0}, {10, 0}, {10.5, 0}}
	svc, err := New(pts, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	snap := svc.Snapshot()

	first, err := snap.Route(routing.SchemeShortestPath, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if first.Route.Delivered || len(first.Route.Path) != 1 || first.Route.Path[0] != 3 {
		t.Fatalf("route 3->0 = %+v, want undelivered prefix [3]", first.Route)
	}
	flipped, err := snap.Route(routing.SchemeShortestPath, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !flipped.Cached {
		t.Fatal("flipped undelivered query missed the canonical entry")
	}
	if flipped.Route.Delivered || len(flipped.Route.Path) != 1 || flipped.Route.Path[0] != 0 {
		t.Fatalf("flipped undelivered route = %+v, want prefix [0]", flipped.Route)
	}
	// And the same starting from the flipped orientation.
	if _, err := snap.Route(routing.SchemeShortestPath, 1, 2); err != nil {
		t.Fatal(err)
	}
	back, err := snap.Route(routing.SchemeShortestPath, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Cached || back.Route.Delivered || len(back.Route.Path) != 1 || back.Route.Path[0] != 2 {
		t.Fatalf("cached undelivered 2->1 = %+v, want prefix [2]", back.Route)
	}
}

// TestRouteCacheGeographicKeepsOrientation: greedy geographic forwarding
// is direction-dependent, so its cache keys must not be canonicalized — a
// flipped query is a miss and a separate entry.
func TestRouteCacheGeographicKeepsOrientation(t *testing.T) {
	svc := testService(t, 64, Options{})
	snap := svc.Snapshot()
	lo, hi := pickDeliveredPair(t, snap)
	before := snap.cache.len()
	if _, err := snap.Route(routing.SchemeGreedy, lo, hi); err != nil {
		t.Fatal(err)
	}
	rev, err := snap.Route(routing.SchemeGreedy, hi, lo)
	if err != nil {
		t.Fatal(err)
	}
	if rev.Cached {
		t.Fatal("flipped greedy query served from cache; geographic schemes are not symmetric")
	}
	if got := snap.cache.len(); got != before+2 {
		t.Fatalf("greedy orientations share an entry: %d entries, want %d", got, before+2)
	}
}
