package service

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"topoctl/internal/analyze"
)

func TestAnalyzeHTTPEndpoints(t *testing.T) {
	svc, ts := testServer(t, 64)
	snap := svc.Snapshot()
	var src, dst int
	picked := 0
	for id, a := range snap.Alive {
		if a {
			if picked == 0 {
				src = id
			}
			dst = id
			picked++
		}
	}
	if picked < 2 {
		t.Fatal("test deployment too small")
	}

	var impact AnalyzeImpactResponse
	postJSON(t, ts.URL+"/analyze/impact",
		analyze.ImpactRequest{Vertices: []int{src}}, http.StatusOK, &impact)
	if impact.Version != snap.Version {
		t.Fatalf("impact version %d, snapshot %d", impact.Version, snap.Version)
	}
	if impact.FaultedCount != 1 || impact.Survivors != snap.Live()-1 {
		t.Fatalf("impact faulted=%d survivors=%d live=%d", impact.FaultedCount, impact.Survivors, snap.Live())
	}

	var around AnalyzeAroundResponse
	postJSON(t, ts.URL+"/analyze/around",
		analyze.AroundRequest{Center: src, Hops: 2}, http.StatusOK, &around)
	if around.Nodes == 0 || len(around.Elements.Nodes) != around.Nodes {
		t.Fatalf("around: %+v", around.AroundReport)
	}

	var route AnalyzeRouteResponse
	postJSON(t, ts.URL+"/analyze/route",
		AnalyzeRouteRequest{Src: src, Dst: dst}, http.StatusOK, &route)
	if route.Src != src || route.Dst != dst {
		t.Fatalf("route echo: %+v", route.RouteExplanation)
	}
	if route.Reachable && (route.Stretch < 1-1e-9 || len(route.Path) == 0) {
		t.Fatalf("reachable route: %+v", route.RouteExplanation)
	}

	var div AnalyzeDivergenceResponse
	getJSON(t, ts.URL+"/analyze/divergence?sample=64&buckets=4", http.StatusOK, &div)
	if div.BaseEdges != snap.Base.M() || div.SpannerEdges != snap.Spanner.M() {
		t.Fatalf("divergence edges: %+v", div.DivergenceReport)
	}
	if len(div.Histogram) != 4 {
		t.Fatalf("divergence histogram: %+v", div.Histogram)
	}

	// The /stats analyze section must have counted all four requests.
	var stats Stats
	getJSON(t, ts.URL+"/stats", http.StatusOK, &stats)
	for _, ep := range []string{"impact", "around", "route", "divergence"} {
		rec, ok := stats.Analyze[ep]
		if !ok || rec.Requests == 0 {
			t.Fatalf("stats analyze[%q] = %+v (present %v)", ep, rec, ok)
		}
	}
}

func TestAnalyzeHTTPErrors(t *testing.T) {
	_, ts := testServer(t, 16)

	var e struct {
		Error string `json:"error"`
	}
	// Unknown vertex -> 404 with the envelope.
	postJSON(t, ts.URL+"/analyze/around",
		analyze.AroundRequest{Center: 9999}, http.StatusNotFound, &e)
	if e.Error == "" {
		t.Fatal("404 carried no error envelope")
	}
	// Bad knob -> 400.
	postJSON(t, ts.URL+"/analyze/around",
		analyze.AroundRequest{Center: 0, Hops: MaxAroundHops + 1}, http.StatusBadRequest, &e)
	// Half-specified region -> 400.
	postJSON(t, ts.URL+"/analyze/impact",
		map[string]any{"box_lo": []float64{0, 0}}, http.StatusBadRequest, &e)
	// Oversized fault set -> 400.
	big := make([]int, MaxFaultVertices+1)
	postJSON(t, ts.URL+"/analyze/impact",
		analyze.ImpactRequest{Vertices: big}, http.StatusBadRequest, &e)
	// Oversized divergence sample -> 400.
	getJSON(t, ts.URL+"/analyze/divergence?sample=99999", http.StatusBadRequest, &e)
}

// TestErrorEnvelopeEverywhere pins the unified error shape: even responses
// the mux writes itself (404 unknown path, 405 method mismatch) leave as
// {"error": ...} JSON.
func TestErrorEnvelopeEverywhere(t *testing.T) {
	_, ts := testServer(t, 8)
	for _, tc := range []struct {
		method, path string
		wantStatus   int
	}{
		{"GET", "/no/such/path", http.StatusNotFound},
		{"GET", "/route", http.StatusMethodNotAllowed},
		{"POST", "/stats", http.StatusMethodNotAllowed},
		{"POST", "/analyze/divergence", http.StatusMethodNotAllowed},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != tc.wantStatus {
			t.Fatalf("%s %s: status %d, want %d", tc.method, tc.path, resp.StatusCode, tc.wantStatus)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
			t.Fatalf("%s %s: content type %q, want application/json", tc.method, tc.path, ct)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s %s: body not the JSON envelope: %v", tc.method, tc.path, err)
		}
		resp.Body.Close()
		if e.Error == "" {
			t.Fatalf("%s %s: empty error message", tc.method, tc.path)
		}
	}
}
