package service

import (
	"sync"

	"topoctl/internal/routing"
)

// routeKey identifies one cached route computation.
type routeKey struct {
	scheme   routing.Scheme
	src, dst int32
}

// cacheShards must be a power of two (the shard picker masks the hash).
const cacheShards = 16

// routeCache is a sharded fixed-capacity LRU over route results. Each
// snapshot owns a fresh cache, so cache entries can never outlive the
// topology they were computed on — the hot-swap IS the invalidation. The
// sharding keeps the lock a reader takes on the hot path uncontended well
// past the concurrency levels the stress test and load generator drive.
//
// Hit/miss/eviction counters are service-lifetime aggregates and live in
// the service's counters struct as atomics (not under the shard locks) so
// /stats can read them without touching any shard.
type routeCache struct {
	shards [cacheShards]cacheShard
	ctr    *counters
}

// cacheShard is one lock-striped LRU: a slot-addressed entry arena whose
// recency list is threaded through prev/next indices (no per-entry
// allocations, no container/list boxing).
type cacheShard struct {
	mu         sync.Mutex
	index      map[routeKey]int32
	entries    []cacheEntry
	head, tail int32 // most / least recently used; -1 when empty
	capacity   int
}

type cacheEntry struct {
	key        routeKey
	val        RouteResult
	prev, next int32
}

// newRouteCache builds a cache with roughly the given total capacity,
// counting hits, misses, and evictions into the provided service-lifetime
// counters.
func newRouteCache(capacity int, ctr *counters) *routeCache {
	per := capacity / cacheShards
	if per < 4 {
		per = 4
	}
	c := &routeCache{ctr: ctr}
	for i := range c.shards {
		s := &c.shards[i]
		s.capacity = per
		s.index = make(map[routeKey]int32, per)
		s.entries = make([]cacheEntry, 0, per)
		s.head, s.tail = -1, -1
	}
	return c
}

func (c *routeCache) shard(k routeKey) *cacheShard {
	h := uint32(k.src)*0x9e3779b1 ^ uint32(k.dst)*0x85ebca6b ^ uint32(k.scheme)
	h ^= h >> 16
	return &c.shards[h&(cacheShards-1)]
}

func (c *routeCache) get(k routeKey) (RouteResult, bool) {
	v, ok := c.shard(k).get(k)
	if ok {
		c.ctr.cacheHits.Add(1)
	} else {
		c.ctr.cacheMiss.Add(1)
	}
	return v, ok
}

func (c *routeCache) put(k routeKey, v RouteResult) {
	if c.shard(k).put(k, v) {
		c.ctr.cacheEvict.Add(1)
	}
}

func (s *cacheShard) get(k routeKey) (RouteResult, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.index[k]
	if !ok {
		return RouteResult{}, false
	}
	s.touch(i)
	return s.entries[i].val, true
}

// put inserts or refreshes k, reporting whether it evicted an entry.
func (s *cacheShard) put(k routeKey, v RouteResult) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.index[k]; ok {
		s.entries[i].val = v
		s.touch(i)
		return false
	}
	var i int32
	evicted := false
	if len(s.entries) < s.capacity {
		i = int32(len(s.entries))
		s.entries = append(s.entries, cacheEntry{})
	} else {
		i = s.tail // evict the least recently used entry in place
		s.unlink(i)
		delete(s.index, s.entries[i].key)
		evicted = true
	}
	s.entries[i] = cacheEntry{key: k, val: v, prev: -1, next: -1}
	s.index[k] = i
	s.pushFront(i)
	return evicted
}

// len reports the number of cached entries (for tests and /stats).
func (c *routeCache) len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += len(s.index)
		s.mu.Unlock()
	}
	return n
}

// touch moves entry i to the front of the recency list.
func (s *cacheShard) touch(i int32) {
	if s.head == i {
		return
	}
	s.unlink(i)
	s.pushFront(i)
}

func (s *cacheShard) unlink(i int32) {
	e := &s.entries[i]
	if e.prev >= 0 {
		s.entries[e.prev].next = e.next
	} else {
		s.head = e.next
	}
	if e.next >= 0 {
		s.entries[e.next].prev = e.prev
	} else {
		s.tail = e.prev
	}
	e.prev, e.next = -1, -1
}

func (s *cacheShard) pushFront(i int32) {
	e := &s.entries[i]
	e.prev, e.next = -1, s.head
	if s.head >= 0 {
		s.entries[s.head].prev = i
	}
	s.head = i
	if s.tail < 0 {
		s.tail = i
	}
}
