package service

import (
	"sync/atomic"

	"topoctl/internal/graph"
	"topoctl/internal/shard"
)

// searcherPool is a lazily-filled, bounded pool of searchers shared by
// every snapshot of one service. Nothing is allocated at construction:
// the first acquire on an empty pool builds a searcher on demand, and
// release keeps at most the configured number around. This matters in
// shard mode, where K per-shard scratch pools would otherwise multiply
// into K×GOMAXPROCS idle allocations per service. allocs counts the
// demand-driven constructions, pinned by the allocation test.
type searcherPool struct {
	ch     chan *graph.Searcher
	allocs atomic.Uint64
}

func newSearcherPool(size int) *searcherPool {
	if size < 1 {
		size = 1
	}
	return &searcherPool{ch: make(chan *graph.Searcher, size)}
}

// acquire returns a pooled searcher, or builds one sized for n vertices
// when the pool is empty (it never blocks: under burst load extra
// searchers are allocated and the surplus dropped on release).
func (p *searcherPool) acquire(n int) *graph.Searcher {
	select {
	case srch := <-p.ch:
		return srch
	default:
		p.allocs.Add(1)
		return graph.NewSearcher(n)
	}
}

func (p *searcherPool) release(srch *graph.Searcher) {
	select {
	case p.ch <- srch:
	default:
	}
}

// scratchPool pools the per-query workspaces of the portal-stitched
// route path, one pool per shard so concurrent readers of different
// shards never contend. Same lazy discipline as searcherPool.
type scratchPool struct {
	ch     chan *shard.Scratch
	allocs atomic.Uint64
}

func newScratchPool(size int) *scratchPool {
	if size < 1 {
		size = 1
	}
	return &scratchPool{ch: make(chan *shard.Scratch, size)}
}

func (p *scratchPool) acquire() *shard.Scratch {
	select {
	case sc := <-p.ch:
		return sc
	default:
		p.allocs.Add(1)
		return shard.NewScratch()
	}
}

func (p *scratchPool) release(sc *shard.Scratch) {
	select {
	case p.ch <- sc:
	default:
	}
}
