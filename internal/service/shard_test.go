package service

import (
	"math"
	"math/rand"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/graph"
	"topoctl/internal/routing"
)

// TestShardedRouteDifferential pins the sharded serving path at the
// service boundary: every shortest-path answer a sharded service gives
// (portal stitching, per-shard caches, pool plumbing and all) must equal
// a direct global Dijkstra over the very snapshot that served it —
// deliverability, cost, and stretch denominator — across mutation
// batches that keep re-sharding the deployment.
func TestShardedRouteDifferential(t *testing.T) {
	const n = 140
	svc := testService(t, n, Options{Shards: 3, CacheSize: 256})
	rng := rand.New(rand.NewSource(51))

	check := func(round int) {
		t.Helper()
		snap := svc.Snapshot()
		gs := graph.NewSearcher(snap.Spanner.N())
		for q := 0; q < 120; q++ {
			src, dst, ok := twoLive(rng, snap.Alive)
			if !ok {
				continue
			}
			res, err := snap.Route(routing.SchemeShortestPath, src, dst)
			if err != nil {
				t.Fatalf("round %d: route(%d,%d): %v", round, src, dst, err)
			}
			refPath, refCost, refOK := gs.AppendPathTo(nil, snap.Spanner, src, dst, graph.Inf)
			if res.Route.Delivered != refOK {
				t.Fatalf("round %d %d->%d: delivered=%v, global search says %v",
					round, src, dst, res.Route.Delivered, refOK)
			}
			if !refOK {
				continue
			}
			if math.Abs(res.Route.Cost-refCost) > 1e-9*(1+refCost) {
				t.Fatalf("round %d %d->%d: sharded cost %v, global %v (paths %v vs %v)",
					round, src, dst, res.Route.Cost, refCost, res.Route.Path, refPath)
			}
			if w, okw := graph.PathWeight(snap.Spanner, res.Route.Path); !okw || math.Abs(w-res.Route.Cost) > 1e-9 {
				t.Fatalf("round %d %d->%d: path %v invalid on snapshot (weight %v ok=%v)",
					round, src, dst, res.Route.Path, w, okw)
			}
			baseDist, bok := gs.DijkstraTarget(snap.Base, src, dst, graph.Inf)
			if !bok {
				t.Fatalf("round %d %d->%d: spanner-delivered pair base-unreachable", round, src, dst)
			}
			wantStretch := refCost / baseDist
			if math.Abs(res.Stretch-wantStretch) > 1e-9*(1+wantStretch) {
				t.Fatalf("round %d %d->%d: stretch %v, want %v", round, src, dst, res.Stretch, wantStretch)
			}
		}
	}

	check(0)
	snap := svc.Snapshot()
	lo, hi := snap.bboxLo, snap.bboxHi
	for round := 1; round <= 6; round++ {
		cur := svc.Snapshot()
		ops := make([]Op, 0, 10)
		for k := 0; k < 10; k++ {
			switch x := rng.Float64(); {
			case x < 0.3:
				ops = append(ops, Op{Kind: OpJoin, Point: geom.Point{
					lo[0] + rng.Float64()*(hi[0]-lo[0]),
					lo[1] + rng.Float64()*(hi[1]-lo[1]),
				}})
			case x < 0.5 && cur.Live() > n/2:
				if id, _, ok := twoLive(rng, cur.Alive); ok {
					ops = append(ops, Op{Kind: OpLeave, ID: id})
				}
			default:
				// Full-box moves force frequent shard-boundary crossings.
				if id, _, ok := twoLive(rng, cur.Alive); ok {
					ops = append(ops, Op{Kind: OpMove, ID: id, Point: geom.Point{
						lo[0] + rng.Float64()*(hi[0]-lo[0]),
						lo[1] + rng.Float64()*(hi[1]-lo[1]),
					}})
				}
			}
		}
		if _, err := svc.Mutate(ops); err != nil {
			t.Fatalf("mutate round %d: %v", round, err)
		}
		check(round)
	}
}

// TestShardedStats verifies the /stats shards section: shard shape and
// population bookkeeping, per-shard query/cache counters advancing with
// traffic, and the whole section absent on an unsharded service.
func TestShardedStats(t *testing.T) {
	const k = 4
	svc := testService(t, 120, Options{Shards: k, CacheSize: 256})
	st := svc.Stats()
	if st.ShardCount != k {
		t.Fatalf("ShardCount = %d, want %d", st.ShardCount, k)
	}
	if len(st.Shards) != k {
		t.Fatalf("len(Shards) = %d, want %d", len(st.Shards), k)
	}
	if !st.PortalsFresh {
		t.Fatal("PortalRefresh=1 service published a stale portal table")
	}
	nodes, portals := 0, 0
	for i, sh := range st.Shards {
		if sh.Shard != i {
			t.Fatalf("Shards[%d].Shard = %d", i, sh.Shard)
		}
		nodes += sh.Nodes
		portals += sh.Portals
		if sh.Queries != 0 || sh.CacheHits != 0 {
			t.Fatalf("shard %d has traffic before any route: %+v", i, sh)
		}
	}
	if live := svc.Snapshot().Live(); nodes != live {
		t.Fatalf("per-shard nodes sum to %d, want %d live", nodes, live)
	}
	if portals != st.Portals {
		t.Fatalf("per-shard portals sum to %d, want %d", portals, st.Portals)
	}

	// Drive the same pair twice: one miss then one hit on the owning
	// shard's cache; the counters must attribute both to exactly one shard.
	snap := svc.Snapshot()
	rng := rand.New(rand.NewSource(7))
	src, dst, ok := twoLive(rng, snap.Alive)
	if !ok {
		t.Fatal("no live pair")
	}
	for i := 0; i < 2; i++ {
		if _, err := snap.Route(routing.SchemeShortestPath, src, dst); err != nil {
			t.Fatal(err)
		}
	}
	st = svc.Stats()
	var q, hits, misses uint64
	for _, sh := range st.Shards {
		q += sh.Queries
		hits += sh.CacheHits
		misses += sh.CacheMisses
	}
	if q != 2 || hits != 1 || misses != 1 {
		t.Fatalf("shard counters after miss+hit: queries=%d hits=%d misses=%d, want 2/1/1", q, hits, misses)
	}

	// Greedy routing bypasses the shortest-path shard machinery entirely.
	if _, err := snap.Route(routing.SchemeGreedy, src, dst); err != nil {
		t.Fatal(err)
	}
	var q2 uint64
	for _, sh := range svc.Stats().Shards {
		q2 += sh.Queries
	}
	if q2 != q {
		t.Fatalf("greedy route moved shard query counter %d -> %d", q, q2)
	}

	un := testService(t, 60, Options{})
	ust := un.Stats()
	if ust.ShardCount != 0 || len(ust.Shards) != 0 || ust.Portals != 0 {
		t.Fatalf("unsharded service reports shard stats: count=%d shards=%d portals=%d",
			ust.ShardCount, len(ust.Shards), ust.Portals)
	}
}

// TestLazyPoolAllocation pins the lazy searcher/scratch pool discipline:
// constructing a service (sharded or not) allocates zero searchers and
// zero scratch workspaces; a sequential request stream allocates at most
// one of each and then reuses them.
func TestLazyPoolAllocation(t *testing.T) {
	svc := testService(t, 100, Options{Shards: 4, Searchers: 8, CacheSize: 0})
	if got := svc.searchers.allocs.Load(); got != 0 {
		t.Fatalf("construction allocated %d searchers, want 0", got)
	}
	for i, sp := range svc.scratch {
		if got := sp.allocs.Load(); got != 0 {
			t.Fatalf("construction allocated %d scratches for shard %d, want 0", got, i)
		}
	}

	snap := svc.Snapshot()
	rng := rand.New(rand.NewSource(33))
	routed := 0
	for routed < 40 {
		src, dst, ok := twoLive(rng, snap.Alive)
		if !ok {
			continue
		}
		if _, err := snap.Route(routing.SchemeShortestPath, src, dst); err != nil {
			t.Fatal(err)
		}
		routed++
	}
	// Sequential traffic: each route releases before the next acquires,
	// so demand never exceeds one searcher and one scratch per shard.
	if got := svc.searchers.allocs.Load(); got > 1 {
		t.Fatalf("sequential stream allocated %d searchers, want ≤ 1", got)
	}
	var scratches uint64
	for _, sp := range svc.scratch {
		scratches += sp.allocs.Load()
	}
	if scratches > uint64(len(svc.scratch)) {
		t.Fatalf("sequential stream allocated %d scratches across %d shards", scratches, len(svc.scratch))
	}

	un := testService(t, 60, Options{Searchers: 4})
	if got := un.searchers.allocs.Load(); got != 0 {
		t.Fatalf("unsharded construction allocated %d searchers, want 0", got)
	}
}
