package service

import (
	"errors"
	"fmt"
	"math"
)

// Validation limits for POST /mutate. Requests breaking them are rejected
// with 400 before any op reaches the engine: garbage coordinates would
// poison the grid and every distance computation (NaN comparisons are
// always false, so a NaN point can neither be found nor removed), and a
// hostile slot id or batch size would force huge allocations.
const (
	// MaxBatchOps bounds one mutation batch.
	MaxBatchOps = 4096
	// MaxNodeID bounds leave/move slot ids. The engine's slot space only
	// grows by joins, so any honest id is far below this.
	MaxNodeID = 1 << 30
	// MaxDim bounds join/move point dimensions.
	MaxDim = 64
	// MaxCoord bounds coordinate magnitude: far beyond any deployment
	// area, small enough that squared distances cannot overflow.
	MaxCoord = 1e15
)

// ErrBadOp reports a mutation batch rejected by validation.
var ErrBadOp = errors.New("service: invalid mutation")

// ValidateOps vets a mutation batch before it reaches the engine. It
// checks shape only — liveness of the named slots is the engine's call
// (and is reported per-op, not as a batch failure).
func ValidateOps(ops []Op) error {
	if len(ops) == 0 {
		return fmt.Errorf("%w: empty batch", ErrBadOp)
	}
	if len(ops) > MaxBatchOps {
		return fmt.Errorf("%w: batch of %d ops exceeds the limit of %d", ErrBadOp, len(ops), MaxBatchOps)
	}
	for i, op := range ops {
		if err := validateOp(op); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}
	return nil
}

func validateOp(op Op) error {
	switch op.Kind {
	case OpJoin:
		return validatePoint(op.Point)
	case OpLeave:
		return validateID(op.ID)
	case OpMove:
		if err := validateID(op.ID); err != nil {
			return err
		}
		return validatePoint(op.Point)
	default:
		return fmt.Errorf("%w: unknown op kind %q", ErrBadOp, op.Kind)
	}
}

func validateID(id int) error {
	if id < 0 {
		return fmt.Errorf("%w: negative node id %d", ErrBadOp, id)
	}
	if id >= MaxNodeID {
		return fmt.Errorf("%w: node id %d out of range", ErrBadOp, id)
	}
	return nil
}

func validatePoint(p []float64) error {
	if len(p) == 0 {
		return fmt.Errorf("%w: missing point", ErrBadOp)
	}
	if len(p) > MaxDim {
		return fmt.Errorf("%w: %d-dimensional point exceeds limit %d", ErrBadOp, len(p), MaxDim)
	}
	for i, c := range p {
		if math.IsNaN(c) {
			return fmt.Errorf("%w: coordinate %d is NaN", ErrBadOp, i)
		}
		if math.IsInf(c, 0) {
			return fmt.Errorf("%w: coordinate %d is infinite", ErrBadOp, i)
		}
		if c < -MaxCoord || c > MaxCoord {
			return fmt.Errorf("%w: coordinate %d magnitude exceeds %g", ErrBadOp, i, float64(MaxCoord))
		}
	}
	return nil
}
