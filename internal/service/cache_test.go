package service

import (
	"testing"

	"topoctl/internal/routing"
)

func key(src, dst int) routeKey {
	return routeKey{scheme: routing.SchemeShortestPath, src: int32(src), dst: int32(dst)}
}

func val(cost float64) RouteResult {
	return RouteResult{Route: routing.Route{Delivered: true, Cost: cost}}
}

func TestCacheLRUEviction(t *testing.T) {
	var ctr counters
	c := newRouteCache(0, &ctr) // minimum capacity: 4 per shard

	// Drive one shard directly so eviction order is observable regardless
	// of how keys hash across shards.
	s := &c.shards[0]
	s.capacity = 2
	k1, k2, k3 := key(1, 2), key(3, 4), key(5, 6)
	s.put(k1, val(1))
	s.put(k2, val(2))
	s.get(k1)         // k1 now MRU, k2 LRU
	s.put(k3, val(3)) // evicts k2
	if _, ok := s.get(k2); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if v, ok := s.get(k1); !ok || v.Route.Cost != 1 {
		t.Fatalf("recently used entry evicted: %+v %v", v, ok)
	}
	if v, ok := s.get(k3); !ok || v.Route.Cost != 3 {
		t.Fatalf("new entry missing: %+v %v", v, ok)
	}
	// Overwrite updates in place.
	s.put(k3, val(33))
	if v, _ := s.get(k3); v.Route.Cost != 33 {
		t.Fatalf("overwrite lost: %+v", v)
	}
	if len(s.index) != 2 {
		t.Fatalf("shard holds %d entries, capacity 2", len(s.index))
	}
	// More churn through the same two slots: keys must keep resolving.
	for i := 0; i < 20; i++ {
		s.put(key(10+i, 11+i), val(float64(i)))
	}
	if len(s.index) != 2 || len(s.entries) != 2 {
		t.Fatalf("arena grew past capacity: %d keys, %d slots", len(s.index), len(s.entries))
	}
}

func TestCacheGetPutAcrossShards(t *testing.T) {
	var ctr counters
	c := newRouteCache(256, &ctr)
	for i := 0; i < 200; i++ {
		c.put(key(i, i+1), val(float64(i)))
	}
	found := 0
	for i := 0; i < 200; i++ {
		if v, ok := c.get(key(i, i+1)); ok {
			found++
			if v.Route.Cost != float64(i) {
				t.Fatalf("key %d: cost %v", i, v.Route.Cost)
			}
		}
	}
	if found < 150 { // capacity 256 over 16 shards: most must survive
		t.Fatalf("only %d/200 entries survived", found)
	}
	if h, m := ctr.cacheHits.Load(), ctr.cacheMiss.Load(); h != uint64(found) || m != uint64(200-found) {
		t.Fatalf("hits %d misses %d, want %d/%d", h, m, found, 200-found)
	}
	// Every insertion beyond capacity evicted exactly one entry.
	if ev := ctr.cacheEvict.Load(); ev != uint64(200-c.len()) {
		t.Fatalf("evictions %d, want %d", ev, 200-c.len())
	}
	if c.len() != 200-(200-found) {
		t.Fatalf("len = %d, want %d", c.len(), found)
	}
}
