package service

import (
	"encoding/json"
	"errors"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestValidateOps(t *testing.T) {
	pt := func(cs ...float64) []float64 { return cs }
	big := make([]Op, MaxBatchOps+1)
	for i := range big {
		big[i] = Op{Kind: OpJoin, Point: pt(1, 2)}
	}
	hugeDim := Op{Kind: OpJoin, Point: make([]float64, MaxDim+1)}

	cases := []struct {
		name string
		ops  []Op
		ok   bool
	}{
		{"join", []Op{{Kind: OpJoin, Point: pt(3, 4)}}, true},
		{"leave", []Op{{Kind: OpLeave, ID: 7}}, true},
		{"move", []Op{{Kind: OpMove, ID: 7, Point: pt(1, 1)}}, true},
		{"mixed batch", []Op{{Kind: OpJoin, Point: pt(0, 0)}, {Kind: OpLeave, ID: 0}}, true},
		{"max batch", big[:MaxBatchOps], true},
		{"coord at limit", []Op{{Kind: OpJoin, Point: pt(MaxCoord, -MaxCoord)}}, true},
		{"empty batch", nil, false},
		{"oversized batch", big, false},
		{"unknown kind", []Op{{Kind: "merge"}}, false},
		{"join NaN", []Op{{Kind: OpJoin, Point: pt(math.NaN(), 0)}}, false},
		{"join +Inf", []Op{{Kind: OpJoin, Point: pt(0, math.Inf(1))}}, false},
		{"join -Inf", []Op{{Kind: OpJoin, Point: pt(math.Inf(-1), 0)}}, false},
		{"move NaN", []Op{{Kind: OpMove, ID: 3, Point: pt(0, math.NaN())}}, false},
		{"coord too large", []Op{{Kind: OpJoin, Point: pt(2*MaxCoord, 0)}}, false},
		{"join no point", []Op{{Kind: OpJoin}}, false},
		{"move no point", []Op{{Kind: OpMove, ID: 1}}, false},
		{"huge dim", []Op{hugeDim}, false},
		{"negative id leave", []Op{{Kind: OpLeave, ID: -1}}, false},
		{"negative id move", []Op{{Kind: OpMove, ID: -5, Point: pt(1, 1)}}, false},
		{"id out of range", []Op{{Kind: OpLeave, ID: MaxNodeID}}, false},
		{"bad op mid-batch", []Op{{Kind: OpLeave, ID: 1}, {Kind: OpJoin, Point: pt(math.NaN())}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := ValidateOps(tc.ops)
			if tc.ok && err != nil {
				t.Fatalf("ValidateOps = %v, want nil", err)
			}
			if !tc.ok {
				if err == nil {
					t.Fatal("ValidateOps = nil, want error")
				}
				if !errors.Is(err, ErrBadOp) {
					t.Fatalf("ValidateOps = %v, want ErrBadOp", err)
				}
			}
		})
	}
}

// TestMutateValidationHTTP checks that invalid batches die at the HTTP
// layer with 400 and a JSON error body, without mutating the topology.
func TestMutateValidationHTTP(t *testing.T) {
	svc, ts := testServer(t, 32)
	before := svc.Snapshot().Version

	bad := []struct {
		name string
		body string
	}{
		{"empty batch", `{"ops":[]}`},
		{"missing ops", `{}`},
		{"negative id", `{"ops":[{"op":"leave","id":-4}]}`},
		{"unknown kind", `{"ops":[{"op":"teleport","id":1}]}`},
		{"unknown field", `{"ops":[{"op":"join","point":[0,0]}],"force":true}`},
		{"non-numeric coord", `{"ops":[{"op":"join","point":["NaN","0"]}]}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/mutate", "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("decoding 400 body: %v", err)
			}
			if eb.Error == "" {
				t.Fatal("400 response carries no JSON error message")
			}
		})
	}

	if got := svc.Snapshot().Version; got != before {
		t.Fatalf("rejected batches advanced the topology: version %d -> %d", before, got)
	}

	// A valid batch still goes through after the rejections.
	postJSON(t, ts.URL+"/mutate", MutateRequest{Ops: []Op{{Kind: OpJoin, Point: []float64{0.41, 0.43}}}}, http.StatusOK, nil)
	if got := svc.Snapshot().Version; got != before+1 {
		t.Fatalf("valid batch after rejections: version %d, want %d", got, before+1)
	}
}

func TestReadyz(t *testing.T) {
	// A leader is ready the moment New returns.
	_, ts := testServer(t, 16)
	var body map[string]any
	getJSON(t, ts.URL+"/readyz", http.StatusOK, &body)
	if body["status"] != "ready" {
		t.Fatalf("readyz status = %v, want ready", body["status"])
	}

	// A fresh follower is alive but not ready: /healthz 200, /readyz 503,
	// and read endpoints refuse with 503 rather than a panic or a 500.
	fol := NewFollower(Options{})
	defer fol.Close()
	fts := httptest.NewServer(fol.Handler())
	defer fts.Close()

	getJSON(t, fts.URL+"/healthz", http.StatusOK, &body)
	if body["ready"] != false || body["role"] != "follower" {
		t.Fatalf("follower healthz = %v, want ready=false role=follower", body)
	}
	getJSON(t, fts.URL+"/readyz", http.StatusServiceUnavailable, nil)
	getJSON(t, fts.URL+"/node/0/neighbors", http.StatusServiceUnavailable, nil)
	postJSON(t, fts.URL+"/route", RouteRequest{Src: 0, Dst: 1}, http.StatusServiceUnavailable, nil)
	// Mutations are refused on followers regardless of readiness.
	postJSON(t, fts.URL+"/mutate", MutateRequest{Ops: []Op{{Kind: OpLeave, ID: 0}}}, http.StatusServiceUnavailable, nil)

	// Publishing a snapshot flips readiness.
	src := testService(t, 12, Options{})
	defer src.Close()
	snap := src.Snapshot()
	live := 0
	for _, a := range snap.Alive {
		if a {
			live++
		}
	}
	if err := fol.PublishFrozen(snap.Version, snap.Points, snap.Alive, live, snap.Base, snap.Spanner); err != nil {
		t.Fatal(err)
	}
	getJSON(t, fts.URL+"/readyz", http.StatusOK, &body)
	if body["status"] != "ready" {
		t.Fatalf("follower readyz after publish = %v, want ready", body["status"])
	}
	var rr RouteResponse
	postJSON(t, fts.URL+"/route", RouteRequest{Src: 0, Dst: 1}, http.StatusOK, &rr)
	if !rr.Delivered {
		t.Fatal("follower route after publish not delivered")
	}
}
