package service

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"

	"topoctl/internal/analyze"
	"topoctl/internal/routing"
)

// BenchmarkServiceRoute measures the in-process serving hot path on an
// n=512 deployment: snapshot load, cache probe, and (on miss) pooled
// shortest-path search plus base-cost Dijkstra. The zipf variant models a
// skewed production mix (mostly cache hits after warmup); the uniform
// variant spreads queries over all ~260k pairs so nearly every request
// misses the cache and pays for two searches.
func BenchmarkServiceRoute(b *testing.B) {
	svc := testService(b, 512, Options{})
	n := len(svc.Snapshot().Alive)
	var seed atomic.Int64

	bench := func(b *testing.B, draw func(rng *rand.Rand, zipf *rand.Zipf) (int, int)) {
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(9000 + seed.Add(1)))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
			for pb.Next() {
				src, dst := draw(rng, zipf)
				if src == dst {
					dst = (dst + 1) % n
				}
				if _, err := svc.Route(routing.SchemeShortestPath, src, dst); err != nil {
					b.Fatal(err)
				}
			}
		})
	}

	b.Run("zipf", func(b *testing.B) {
		bench(b, func(rng *rand.Rand, zipf *rand.Zipf) (int, int) {
			return int(zipf.Uint64()), int(zipf.Uint64())
		})
	})
	b.Run("uniform", func(b *testing.B) {
		bench(b, func(rng *rand.Rand, zipf *rand.Zipf) (int, int) {
			return rng.Intn(n), rng.Intn(n)
		})
	})
}

// BenchmarkServiceRouteParallel is the multi-core scaling benchmark
// behind the shard layer: the same uniform all-pairs query mix (nearly
// every request misses the cache and pays for real searches) against an
// unsharded service and a 4-shard one. Run with -cpu=1,4: at one core
// sharding must not regress; at four, per-shard snapshots and caches
// remove the shared hot path and throughput should scale near-linearly.
func BenchmarkServiceRouteParallel(b *testing.B) {
	for _, shards := range []int{1, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			svc := testService(b, 512, Options{Shards: shards})
			n := len(svc.Snapshot().Alive)
			var seed atomic.Int64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				rng := rand.New(rand.NewSource(9500 + seed.Add(1)))
				for pb.Next() {
					src, dst := rng.Intn(n), rng.Intn(n)
					if src == dst {
						dst = (dst + 1) % n
					}
					if _, err := svc.Route(routing.SchemeShortestPath, src, dst); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// BenchmarkAnalyzeImpact measures the heaviest /analyze query on an n=512
// deployment: a single-vertex fault, which re-verifies the stretch of
// every surviving base edge against the faulted spanner (parallel
// fan-out over the searcher pool) plus two component labellings.
func BenchmarkAnalyzeImpact(b *testing.B) {
	svc := testService(b, 512, Options{})
	snap := svc.Snapshot()
	n := len(snap.Alive)
	rng := rand.New(rand.NewSource(17))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snap.AnalyzeImpact(analyze.ImpactRequest{Vertices: []int{rng.Intn(n)}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzeAround measures the k-hop subgraph extraction on an
// n=512 deployment: a 2-hop BFS ball plus the induced-edge sweep and the
// Cytoscape-shaped assembly.
func BenchmarkAnalyzeAround(b *testing.B) {
	svc := testService(b, 512, Options{})
	snap := svc.Snapshot()
	n := len(snap.Alive)
	var seed atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(2600 + seed.Add(1)))
		for pb.Next() {
			if _, err := snap.AnalyzeAround(analyze.AroundRequest{Center: rng.Intn(n), Hops: 2}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServiceMutate measures the write path: one mutation batch of 4
// moves through the writer goroutine, including the snapshot deep-copy and
// swap on an n=256 deployment.
func BenchmarkServiceMutate(b *testing.B) {
	svc := testService(b, 256, Options{})
	snap := svc.Snapshot()
	lo, hi := snap.bboxLo, snap.bboxHi
	rng := rand.New(rand.NewSource(31))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ops := make([]Op, 4)
		for j := range ops {
			id := rng.Intn(len(snap.Alive)) // moves never retire ids: all alive
			ops[j] = Op{Kind: OpMove, ID: id, Point: []float64{
				lo[0] + rng.Float64()*(hi[0]-lo[0]),
				lo[1] + rng.Float64()*(hi[1]-lo[1]),
			}}
		}
		if _, err := svc.Mutate(ops); err != nil {
			b.Fatal(err)
		}
	}
}
