package service

import (
	"fmt"
	"sync/atomic"
	"time"

	"topoctl/internal/analyze"
	"topoctl/internal/graph"
)

// Validation limits for the /analyze family. Analysis queries are the most
// expensive reads the daemon serves, so every knob that scales work or
// response size is capped here; the time cap (Options.AnalyzeTimeout)
// backstops whatever the caps still let through.
const (
	// MaxFaultVertices bounds an impact request's explicit fault set.
	MaxFaultVertices = 1024
	// MaxAnalyzeWitnesses bounds witness lists in impact and divergence
	// reports.
	MaxAnalyzeWitnesses = 256
	// MaxUnreachableList bounds the newly-unreachable vertex list of an
	// impact report (the count stays exact past the cap).
	MaxUnreachableList = 4096
	// DefaultAroundHops / MaxAroundHops bound the /analyze/around BFS
	// radius; DefaultAroundNodes / MaxAroundNodes its subgraph size.
	// A zero-hop request means "default", not an empty ball.
	DefaultAroundHops  = 2
	MaxAroundHops      = 16
	DefaultAroundNodes = 512
	MaxAroundNodes     = 8192
	// MaxDivergenceSample / MaxDivergenceBuckets bound the divergence
	// stretch probe and its histogram resolution.
	MaxDivergenceSample  = 4096
	MaxDivergenceBuckets = 64
)

// analyzeEndpoint indexes the per-endpoint serving counters.
type analyzeEndpoint int

const (
	epImpact analyzeEndpoint = iota
	epAround
	epRoute
	epDivergence
	analyzeEndpoints
)

var analyzeEndpointNames = [analyzeEndpoints]string{"impact", "around", "route", "divergence"}

// analyzeCounter tracks one endpoint: request count and worst duration.
type analyzeCounter struct {
	count   atomic.Uint64
	worstNs atomic.Int64
}

func (c *analyzeCounter) observe(d time.Duration) {
	c.count.Add(1)
	ns := d.Nanoseconds()
	for {
		cur := c.worstNs.Load()
		if ns <= cur || c.worstNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// AnalyzeEndpointStats is one endpoint's serving record in /stats.
type AnalyzeEndpointStats struct {
	Requests uint64  `json:"requests"`
	WorstMs  float64 `json:"worst_ms"`
}

// analyzeStats assembles the /stats analyze section.
func (c *counters) analyzeStats() map[string]AnalyzeEndpointStats {
	out := make(map[string]AnalyzeEndpointStats, analyzeEndpoints)
	for i := range c.analyze {
		out[analyzeEndpointNames[i]] = AnalyzeEndpointStats{
			Requests: c.analyze[i].count.Load(),
			WorstMs:  float64(c.analyze[i].worstNs.Load()) / 1e6,
		}
	}
	return out
}

// snapSearchers adapts the snapshot's pool access to analyze.Searchers, so
// analysis scans reuse the same warmed scratch the route handlers do.
type snapSearchers struct{ s *Snapshot }

func (p snapSearchers) Acquire() *graph.Searcher  { return p.s.acquire() }
func (p snapSearchers) Release(s *graph.Searcher) { p.s.release(s) }

// analyzeView bundles this snapshot's frozen state for the analyze
// package. The oracle is attached only when present — assigning a nil
// *labels.Oracle into the interface field would make it non-nil.
func (s *Snapshot) analyzeView() analyze.View {
	v := analyze.View{
		Points:  s.Points,
		Alive:   s.Alive,
		Base:    s.Base,
		Spanner: s.Spanner,
		T:       s.T,
	}
	if s.oracle != nil {
		v.Oracle = s.oracle
	}
	return v
}

// analyzeOptions is the per-query resource budget: the shared searcher
// pool and the configured wall-clock cap.
func (s *Snapshot) analyzeOptions() analyze.Options {
	return analyze.Options{
		Searchers:   snapSearchers{s},
		MaxDuration: s.analyzeTimeout,
	}
}

func (s *Snapshot) observeAnalyze(ep analyzeEndpoint, start time.Time) {
	s.ctr.analyze[ep].observe(time.Since(start))
}

// AnalyzeImpactResponse is the POST /analyze/impact reply.
type AnalyzeImpactResponse struct {
	analyze.ImpactReport
	Version uint64 `json:"version"`
}

// AnalyzeImpact answers a failure-impact query against this frozen
// topology version.
func (s *Snapshot) AnalyzeImpact(req analyze.ImpactRequest) (*AnalyzeImpactResponse, error) {
	if len(req.Vertices) > MaxFaultVertices {
		return nil, fmt.Errorf("%w: fault set of %d vertices exceeds the limit of %d",
			analyze.ErrBadQuery, len(req.Vertices), MaxFaultVertices)
	}
	if req.MaxWitnesses < 0 || req.MaxWitnesses > MaxAnalyzeWitnesses {
		return nil, fmt.Errorf("%w: max_witnesses outside [0, %d]", analyze.ErrBadQuery, MaxAnalyzeWitnesses)
	}
	if req.MaxUnreachable <= 0 || req.MaxUnreachable > MaxUnreachableList {
		req.MaxUnreachable = MaxUnreachableList
	}
	defer s.observeAnalyze(epImpact, time.Now())
	rep, err := analyze.Impact(s.analyzeView(), req, s.analyzeOptions())
	if err != nil {
		return nil, err
	}
	return &AnalyzeImpactResponse{ImpactReport: *rep, Version: s.Version}, nil
}

// AnalyzeAroundResponse is the POST /analyze/around reply.
type AnalyzeAroundResponse struct {
	analyze.AroundReport
	Version uint64 `json:"version"`
}

// AnalyzeAround answers a k-hop neighborhood query against this frozen
// topology version.
func (s *Snapshot) AnalyzeAround(req analyze.AroundRequest) (*AnalyzeAroundResponse, error) {
	if req.Hops == 0 {
		req.Hops = DefaultAroundHops
	}
	if req.Hops < 0 || req.Hops > MaxAroundHops {
		return nil, fmt.Errorf("%w: hops outside [1, %d]", analyze.ErrBadQuery, MaxAroundHops)
	}
	if req.MaxNodes <= 0 || req.MaxNodes > MaxAroundNodes {
		req.MaxNodes = MaxAroundNodes
	}
	defer s.observeAnalyze(epAround, time.Now())
	rep, err := analyze.Around(s.analyzeView(), req, s.analyzeOptions())
	if err != nil {
		return nil, err
	}
	return &AnalyzeAroundResponse{AroundReport: *rep, Version: s.Version}, nil
}

// AnalyzeRouteRequest is the POST /analyze/route body.
type AnalyzeRouteRequest struct {
	Src int `json:"src"`
	Dst int `json:"dst"`
}

// AnalyzeRouteResponse is the POST /analyze/route reply.
type AnalyzeRouteResponse struct {
	analyze.RouteExplanation
	Version uint64 `json:"version"`
}

// AnalyzeRoute explains one route against this frozen topology version.
func (s *Snapshot) AnalyzeRoute(req AnalyzeRouteRequest) (*AnalyzeRouteResponse, error) {
	defer s.observeAnalyze(epRoute, time.Now())
	exp, err := analyze.Explain(s.analyzeView(), req.Src, req.Dst, s.analyzeOptions())
	if err != nil {
		return nil, err
	}
	return &AnalyzeRouteResponse{RouteExplanation: *exp, Version: s.Version}, nil
}

// AnalyzeDivergenceResponse is the GET /analyze/divergence reply.
type AnalyzeDivergenceResponse struct {
	analyze.DivergenceReport
	Version uint64 `json:"version"`
}

// AnalyzeDivergence reports the spanner-vs-base divergence of this frozen
// topology version.
func (s *Snapshot) AnalyzeDivergence(req analyze.DivergenceRequest) (*AnalyzeDivergenceResponse, error) {
	if req.Sample < 0 || req.Sample > MaxDivergenceSample {
		return nil, fmt.Errorf("%w: sample outside [0, %d]", analyze.ErrBadQuery, MaxDivergenceSample)
	}
	if req.Buckets < 0 || req.Buckets > MaxDivergenceBuckets {
		return nil, fmt.Errorf("%w: buckets outside [0, %d]", analyze.ErrBadQuery, MaxDivergenceBuckets)
	}
	if req.MaxWitnesses < 0 || req.MaxWitnesses > MaxAnalyzeWitnesses {
		return nil, fmt.Errorf("%w: max_witnesses outside [0, %d]", analyze.ErrBadQuery, MaxAnalyzeWitnesses)
	}
	defer s.observeAnalyze(epDivergence, time.Now())
	rep, err := analyze.Divergence(s.analyzeView(), req, s.analyzeOptions())
	if err != nil {
		return nil, err
	}
	return &AnalyzeDivergenceResponse{DivergenceReport: *rep, Version: s.Version}, nil
}
