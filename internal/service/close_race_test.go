package service

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"topoctl/internal/geom"
	"topoctl/internal/routing"
)

// TestCloseRacesQueries slams Close into a service under concurrent
// Mutate and Route traffic. Every in-flight Mutate must either complete
// normally or fail with ErrClosed; reads must keep serving the last
// published snapshot straight through the shutdown — never a panic, a
// deadlock, or a torn snapshot — and Close must be idempotent under
// contention. Run under -race (make race) this pins the shutdown path's
// synchronization with the writer goroutine and the reader pool.
func TestCloseRacesQueries(t *testing.T) {
	const (
		rounds   = 8
		mutators = 2
		routers  = 4
		closers  = 2
	)
	for round := 0; round < rounds; round++ {
		svc := testService(t, 64, Options{CacheSize: 128})
		start := make(chan struct{})
		var stop atomic.Bool
		var wg sync.WaitGroup
		fail := make(chan error, mutators+routers+closers)

		for m := 0; m < mutators; m++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				<-start
				for {
					_, err := svc.Mutate([]Op{
						{Kind: OpMove, ID: rng.Intn(64), Point: geom.Point{rng.Float64() * 8, rng.Float64() * 8}},
					})
					if err != nil {
						if !errors.Is(err, ErrClosed) {
							fail <- err
						}
						return
					}
				}
			}(int64(round*100 + m))
		}
		for r := 0; r < routers; r++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(seed))
				<-start
				// Reads outlive Close by design: keep routing until the
				// closers report done, across the writer shutdown.
				for !stop.Load() {
					if _, err := svc.Route(routing.SchemeShortestPath, rng.Intn(64), rng.Intn(64)); err != nil {
						fail <- err
						return
					}
				}
			}(int64(round*100 + 50 + r))
		}
		var closersDone sync.WaitGroup
		for c := 0; c < closers; c++ {
			wg.Add(1)
			closersDone.Add(1)
			go func() {
				defer wg.Done()
				defer closersDone.Done()
				<-start
				svc.Close()
			}()
		}
		go func() {
			closersDone.Wait()
			stop.Store(true)
		}()

		close(start)
		wg.Wait()
		select {
		case err := <-fail:
			t.Fatalf("round %d: concurrent call failed: %v", round, err)
		default:
		}
		// After Close: mutations answer ErrClosed, reads keep serving the
		// final snapshot.
		if _, err := svc.Mutate([]Op{{Kind: OpMove, ID: 1, Point: geom.Point{1, 1}}}); !errors.Is(err, ErrClosed) {
			t.Fatalf("round %d: Mutate after Close: %v, want ErrClosed", round, err)
		}
		if _, err := svc.Route(routing.SchemeShortestPath, 0, 1); err != nil {
			t.Fatalf("round %d: Route after Close must serve the last snapshot, got %v", round, err)
		}
	}
}
